#include "core/graph_map.hpp"

#include <gtest/gtest.h>

#include "dna/genome.hpp"

namespace pima::core {
namespace {

assembly::DeBruijnGraph random_graph(std::size_t genome_len, std::size_t k,
                                     std::uint64_t seed = 3) {
  dna::GenomeParams gp;
  gp.length = genome_len;
  gp.seed = seed;
  const auto genome = dna::generate_genome(gp);
  dna::ReadSamplerParams rp;
  rp.coverage = 6.0;
  rp.read_length = 60;
  const auto reads = dna::sample_reads(genome, rp);
  return assembly::DeBruijnGraph::from_counter(
      assembly::build_hashmap(reads, k));
}

TEST(GraphPartition, EveryVertexAssignedOnce) {
  const auto g = random_graph(1000, 15);
  const auto p = partition_graph(g, 4);
  EXPECT_EQ(p.intervals, 4u);
  ASSERT_EQ(p.vertex_interval.size(), g.node_count());
  std::size_t total = 0;
  for (const auto& iv : p.interval_vertices) total += iv.size();
  EXPECT_EQ(total, g.node_count());
  // Local indices are consistent with interval membership.
  for (assembly::NodeId v = 0; v < g.node_count(); ++v) {
    const auto i = p.vertex_interval[v];
    ASSERT_LT(i, 4u);
    EXPECT_EQ(p.interval_vertices[i][p.vertex_local[v]], v);
  }
}

TEST(GraphPartition, EveryEdgeInExactlyOneBlock) {
  const auto g = random_graph(800, 14);
  const auto p = partition_graph(g, 3);
  EXPECT_EQ(p.blocks.size(), 9u);
  std::size_t edges = 0;
  for (const auto& b : p.blocks) edges += b.edges.size();
  EXPECT_EQ(edges, g.edge_count());
}

TEST(GraphPartition, BlockEdgesRespectIntervals) {
  const auto g = random_graph(600, 13);
  const auto p = partition_graph(g, 3);
  for (std::uint32_t i = 0; i < 3; ++i)
    for (std::uint32_t j = 0; j < 3; ++j) {
      const auto& b = p.block(i, j);
      EXPECT_EQ(b.source_interval, i);
      EXPECT_EQ(b.dest_interval, j);
      for (const auto& e : b.edges) {
        EXPECT_LT(e.from, p.interval_vertices[i].size());
        EXPECT_LT(e.to, p.interval_vertices[j].size());
      }
    }
}

TEST(GraphPartition, HashSpreadIsRoughlyBalanced) {
  const auto g = random_graph(3000, 16);
  const auto p = partition_graph(g, 8);
  const double expect =
      static_cast<double>(g.node_count()) / 8.0;
  for (const auto& iv : p.interval_vertices) {
    EXPECT_GT(static_cast<double>(iv.size()), expect * 0.7);
    EXPECT_LT(static_cast<double>(iv.size()), expect * 1.3);
  }
}

TEST(GraphPartition, SingleIntervalDegenerate) {
  const auto g = random_graph(300, 12);
  const auto p = partition_graph(g, 1);
  EXPECT_EQ(p.blocks.size(), 1u);
  EXPECT_EQ(p.blocks[0].edges.size(), g.edge_count());
}

TEST(GraphPartition, ZeroIntervalsRejected) {
  const auto g = random_graph(200, 12);
  EXPECT_THROW(partition_graph(g, 0), pima::PreconditionError);
}

TEST(SubarrayAllocation, PaperFormula) {
  // Ns = ceil(N / f), f = min(a, b) (paper §III).
  dram::Geometry g;  // 1016 data rows × 256 columns → f = 256
  EXPECT_EQ(subarrays_for_vertices(1, g), 1u);
  EXPECT_EQ(subarrays_for_vertices(256, g), 1u);
  EXPECT_EQ(subarrays_for_vertices(257, g), 2u);
  EXPECT_EQ(subarrays_for_vertices(1024, g), 4u);
}

TEST(BlockAdjacency, RowsEncodeEdges) {
  EdgeBlock b;
  b.edges = {{0, 3, 1}, {0, 5, 1}, {2, 3, 1}};
  const auto rows = block_adjacency_rows(b, 3, 8);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_TRUE(rows[0].get(3));
  EXPECT_TRUE(rows[0].get(5));
  EXPECT_FALSE(rows[0].get(4));
  EXPECT_TRUE(rows[2].get(3));
  EXPECT_TRUE(rows[1].none());
}

TEST(BlockAdjacency, MultiplicityAppendsRows) {
  EdgeBlock b;
  b.edges = {{0, 1, 3}};
  const auto rows = block_adjacency_rows(b, 1, 4);
  ASSERT_EQ(rows.size(), 3u);  // 1 base row + 2 duplicates
  std::size_t ones = 0;
  for (const auto& r : rows) ones += r.popcount();
  EXPECT_EQ(ones, 3u);
}

TEST(BlockAdjacency, ColumnDegreesReference) {
  EdgeBlock b;
  b.edges = {{0, 1, 2}, {1, 1, 1}, {2, 3, 1}};
  const auto deg = block_column_degrees(b, 4);
  EXPECT_EQ(deg[1], 3u);
  EXPECT_EQ(deg[3], 1u);
  EXPECT_EQ(deg[0], 0u);
}

TEST(BlockAdjacency, OutOfRangeEdgeThrows) {
  EdgeBlock b;
  b.edges = {{5, 0, 1}};
  EXPECT_THROW(block_adjacency_rows(b, 3, 8), pima::PreconditionError);
  EdgeBlock wide;
  wide.edges = {{0, 9, 1}};
  EXPECT_THROW(block_adjacency_rows(wide, 3, 8), pima::PreconditionError);
  EXPECT_THROW(block_column_degrees(wide, 8), pima::PreconditionError);
}

}  // namespace
}  // namespace pima::core
