#include <gtest/gtest.h>

#include "dna/base.hpp"
#include "dna/sequence.hpp"

namespace pima::dna {
namespace {

TEST(Base, PaperEncodingFig7) {
  // Paper Fig. 7: T=00, G=01, A=10, C=11.
  EXPECT_EQ(to_code(Base::T), 0b00);
  EXPECT_EQ(to_code(Base::G), 0b01);
  EXPECT_EQ(to_code(Base::A), 0b10);
  EXPECT_EQ(to_code(Base::C), 0b11);
}

TEST(Base, CodeRoundTrip) {
  for (std::uint8_t c = 0; c < 4; ++c) EXPECT_EQ(to_code(from_code(c)), c);
}

TEST(Base, CharRoundTripBothCases) {
  for (const char c : {'A', 'C', 'G', 'T'})
    EXPECT_EQ(to_char(from_char(c)), c);
  EXPECT_EQ(from_char('a'), Base::A);
  EXPECT_EQ(from_char('t'), Base::T);
  EXPECT_THROW(from_char('N'), PreconditionError);
  EXPECT_THROW(from_char('x'), PreconditionError);
}

TEST(Base, ComplementPairs) {
  EXPECT_EQ(complement(Base::A), Base::T);
  EXPECT_EQ(complement(Base::T), Base::A);
  EXPECT_EQ(complement(Base::C), Base::G);
  EXPECT_EQ(complement(Base::G), Base::C);
}

TEST(Base, ComplementIsInvolution) {
  for (std::uint8_t c = 0; c < 4; ++c) {
    const Base b = from_code(c);
    EXPECT_EQ(complement(complement(b)), b);
  }
}

TEST(Base, ValidChar) {
  EXPECT_TRUE(is_valid_char('A'));
  EXPECT_TRUE(is_valid_char('g'));
  EXPECT_FALSE(is_valid_char('N'));
  EXPECT_FALSE(is_valid_char('-'));
}

TEST(Sequence, FromToString) {
  const auto s = Sequence::from_string("ACGTACGT");
  EXPECT_EQ(s.size(), 8u);
  EXPECT_EQ(s.to_string(), "ACGTACGT");
  EXPECT_EQ(s.at(0), Base::A);
  EXPECT_EQ(s.at(3), Base::T);
}

TEST(Sequence, EmptyAndErrors) {
  Sequence s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.at(0), PreconditionError);
  EXPECT_THROW(Sequence::from_string("ACGN"), PreconditionError);
}

TEST(Sequence, PushBackAcrossWordBoundary) {
  Sequence s;
  std::string expect;
  for (int i = 0; i < 70; ++i) {
    const Base b = from_code(static_cast<std::uint8_t>(i % 4));
    s.push_back(b);
    expect += to_char(b);
  }
  EXPECT_EQ(s.to_string(), expect);
}

TEST(Sequence, Subseq) {
  const auto s = Sequence::from_string("AACCGGTT");
  EXPECT_EQ(s.subseq(2, 4).to_string(), "CCGG");
  EXPECT_EQ(s.subseq(0, 0).size(), 0u);
  EXPECT_THROW(s.subseq(6, 4), PreconditionError);
}

TEST(Sequence, Append) {
  auto s = Sequence::from_string("ACG");
  s.append(Sequence::from_string("TTT"));
  EXPECT_EQ(s.to_string(), "ACGTTT");
}

TEST(Sequence, ReverseComplement) {
  EXPECT_EQ(Sequence::from_string("AACG").reverse_complement().to_string(),
            "CGTT");
  // Involution.
  const auto s = Sequence::from_string("ACGTGCTTAGG");
  EXPECT_EQ(s.reverse_complement().reverse_complement(), s);
}

TEST(Sequence, Equality) {
  EXPECT_EQ(Sequence::from_string("ACGT"), Sequence::from_string("ACGT"));
  EXPECT_FALSE(Sequence::from_string("ACGT") == Sequence::from_string("ACGA"));
  EXPECT_FALSE(Sequence::from_string("ACG") == Sequence::from_string("ACGT"));
}

TEST(Sequence, ToBitsMatchesPaperEncoding) {
  // "TGAC" → codes 00, 01, 10, 11 → LSB-first bit stream 00 10 01 11.
  const auto s = Sequence::from_string("TGAC");
  const auto bits = s.to_bits(0, 4);
  EXPECT_EQ(bits.size(), 8u);
  EXPECT_EQ(bits.to_string(), "00100111");
}

TEST(Sequence, BitsRoundTrip) {
  const auto s = Sequence::from_string("CGTGCGTGCTTACGGATTAG");
  const auto bits = s.to_bits(0, s.size());
  EXPECT_EQ(Sequence::from_bits(bits, 0, s.size()), s);
}

TEST(Sequence, BitsSubrangeRoundTrip) {
  const auto s = Sequence::from_string("CGTGCGTGCTT");
  const auto bits = s.to_bits(3, 5);  // "GCGTG"
  EXPECT_EQ(Sequence::from_bits(bits, 0, 5).to_string(), "GCGTG");
}

TEST(Sequence, ToBitsRangeChecked) {
  const auto s = Sequence::from_string("ACGT");
  EXPECT_THROW(s.to_bits(2, 3), PreconditionError);
  const auto bits = s.to_bits(0, 4);
  EXPECT_THROW(Sequence::from_bits(bits, 4, 4), PreconditionError);
}

}  // namespace
}  // namespace pima::dna
