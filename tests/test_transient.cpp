#include "circuit/transient.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pima::circuit {
namespace {

TEST(Transient, RestoredVoltageMatchesXnor) {
  const TechParams tech{};
  // Paper Fig. 3a: cell charged to Vdd for 00/11, discharged for 01/10.
  EXPECT_DOUBLE_EQ(restored_cell_voltage(tech, false, false), tech.vdd);
  EXPECT_DOUBLE_EQ(restored_cell_voltage(tech, true, true), tech.vdd);
  EXPECT_DOUBLE_EQ(restored_cell_voltage(tech, false, true), 0.0);
  EXPECT_DOUBLE_EQ(restored_cell_voltage(tech, true, false), 0.0);
}

class TransientCase
    : public ::testing::TestWithParam<std::pair<bool, bool>> {};

TEST_P(TransientCase, PhasesSettleToExpectedLevels) {
  const TechParams tech{};
  const auto [di, dj] = GetParam();
  const TransientPhases phases{};
  const auto wave = simulate_xnor2_transient(tech, di, dj, 0.05, phases);
  ASSERT_FALSE(wave.empty());

  // Samples must cover the full window at the requested spacing.
  EXPECT_NEAR(wave.front().t_ns, 0.0, 1e-9);
  EXPECT_GE(wave.back().t_ns, phases.sense_end_ns - 0.06);

  auto at = [&](double t) {
    for (const auto& p : wave)
      if (p.t_ns >= t) return p;
    return wave.back();
  };

  // End of precharge: BL at Vdd/2.
  EXPECT_NEAR(at(phases.precharge_end_ns - 0.1).v_bl, tech.vdd / 2.0,
              0.02 * tech.vdd);
  // End of sharing: BL at the charge-shared level.
  const int n = static_cast<int>(di) + static_cast<int>(dj);
  EXPECT_NEAR(at(phases.share_end_ns - 0.1).v_bl,
              share_nominal(tech, 2, n).v_bl, 0.02 * tech.vdd);
  // End of sensing: full-swing XNOR result on BL and cell.
  const double expect = restored_cell_voltage(tech, di, dj);
  EXPECT_NEAR(wave.back().v_bl, expect, 0.01 * tech.vdd);
  EXPECT_NEAR(wave.back().v_cell, expect, 0.01 * tech.vdd);
}

TEST_P(TransientCase, VoltagesStayWithinRails) {
  const TechParams tech{};
  const auto [di, dj] = GetParam();
  for (const auto& p : simulate_xnor2_transient(tech, di, dj)) {
    EXPECT_GE(p.v_bl, -1e-9);
    EXPECT_LE(p.v_bl, tech.vdd + 1e-9);
    EXPECT_GE(p.v_cell, -1e-9);
    EXPECT_LE(p.v_cell, tech.vdd + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOperands, TransientCase,
                         ::testing::Values(std::pair{false, false},
                                           std::pair{false, true},
                                           std::pair{true, false},
                                           std::pair{true, true}));

TEST(Transient, InvalidParamsThrow) {
  const TechParams tech{};
  EXPECT_THROW(simulate_xnor2_transient(tech, false, false, 0.0),
               PreconditionError);
  TransientPhases bad;
  bad.share_end_ns = bad.precharge_end_ns;  // non-increasing
  EXPECT_THROW(simulate_xnor2_transient(tech, false, false, 0.1, bad),
               PreconditionError);
}

}  // namespace
}  // namespace pima::circuit
