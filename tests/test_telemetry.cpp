// Tests of the telemetry subsystem: metric semantics (Prometheus
// upper-inclusive buckets, quantiles, deterministic merges), trace
// recording and Chrome JSON export well-formedness, session flush sinks,
// and the headline contract — the model-class metrics snapshot is
// bit-identical for any --threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/pipeline.hpp"
#include "dna/genome.hpp"
#include "runtime/engine.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/session.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace pima::telemetry {
namespace {

// ---- minimal JSON validator ----
//
// Recursive-descent checker for RFC 8259 structure: objects, arrays,
// strings with escapes, numbers, literals. Enough to prove the exporters
// emit well-formed JSON without an external parser.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') return ++pos_, true;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(s_[pos_])) return false;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() && std::isdigit(s_[pos_])) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (pos_ < s_.size() && std::isdigit(s_[pos_])) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (pos_ < s_.size() && std::isdigit(s_[pos_])) ++pos_;
    }
    return pos_ > start && std::isdigit(s_[pos_ - 1]);
  }
  bool literal(const char* word) {
    const std::size_t n = std::char_traits<char>::length(word);
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

bool json_ok(const std::string& text) { return JsonChecker(text).valid(); }

std::string temp_path(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir ? dir : "/tmp") + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(JsonChecker, SelfTest) {
  EXPECT_TRUE(json_ok(R"({"a":[1,2.5,-3e8],"b":"x\né","c":null})"));
  EXPECT_FALSE(json_ok(R"({"a":1)"));
  EXPECT_FALSE(json_ok(R"({"a":1}trailing)"));
  EXPECT_FALSE(json_ok(R"({"a":01x})"));
  EXPECT_FALSE(json_ok("{\"a\":\"\x01\"}"));
}

// ---- metrics ----

TEST(Metrics, CounterAndGaugeBasics) {
  MetricsRegistry reg;
  auto& c = reg.counter("pima_test_total", "help");
  c.increment();
  c.add(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  // Same (name, labels) returns the same handle.
  EXPECT_EQ(&reg.counter("pima_test_total", "help"), &c);
  // Different labels are a distinct instance.
  auto& c2 = reg.counter("pima_test_total", "help", {{"stage", "hashmap"}});
  EXPECT_NE(&c2, &c);
  EXPECT_DOUBLE_EQ(c2.value(), 0.0);

  auto& g = reg.gauge("pima_test_gauge", "help");
  g.set(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  EXPECT_EQ(reg.size(), 3u);
  reg.clear();
  EXPECT_EQ(reg.size(), 0u);
}

TEST(Metrics, HistogramBucketsAreUpperInclusive) {
  Histogram h({1.0, 10.0, 100.0});
  // Prometheus `le` semantics: a value equal to a bound lands in that
  // bound's bucket, not the next one.
  h.observe(1.0);
  h.observe(10.0);
  h.observe(10.0001);
  h.observe(100.0);
  h.observe(1000.0);  // +Inf overflow bucket
  EXPECT_EQ(h.bucket_count(0), 1u);  // le=1
  EXPECT_EQ(h.bucket_count(1), 1u);  // le=10
  EXPECT_EQ(h.bucket_count(2), 2u);  // le=100
  EXPECT_EQ(h.bucket_count(3), 1u);  // +Inf
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 10.0 + 10.0001 + 100.0 + 1000.0);
}

TEST(Metrics, HistogramQuantiles) {
  Histogram h({10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty
  for (int i = 0; i < 10; ++i) h.observe(5.0);    // le=10
  for (int i = 0; i < 10; ++i) h.observe(15.0);   // le=20
  // Median sits at the boundary of the first bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
  // Quantiles interpolate linearly inside the covering bucket.
  EXPECT_GT(h.quantile(0.75), 10.0);
  EXPECT_LT(h.quantile(0.75), 20.0);
  // +Inf bucket clamps to the largest finite bound.
  h.observe(1e9);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 30.0);
}

TEST(Metrics, MergeIsDeterministicFold) {
  // Shards folded in index order must reproduce the serial registry
  // bit-for-bit — same discipline as runtime::reduce_parallel.
  MetricsRegistry serial;
  serial.counter("pima_x_total", "h").add(6.0);
  serial.gauge("pima_g", "h").set(5.0);
  auto& sh = serial.histogram("pima_h_ns", "h", {1.0, 2.0});
  sh.observe(0.5);
  sh.observe(1.5);
  sh.observe(9.0);

  MetricsRegistry a, b, merged;
  a.counter("pima_x_total", "h").add(2.0);
  b.counter("pima_x_total", "h").add(4.0);
  a.gauge("pima_g", "h").set(5.0);
  b.gauge("pima_g", "h").set(3.0);  // merge takes the max
  a.histogram("pima_h_ns", "h", {1.0, 2.0}).observe(0.5);
  auto& bh = b.histogram("pima_h_ns", "h", {1.0, 2.0});
  bh.observe(1.5);
  bh.observe(9.0);
  merged.merge_from(a);
  merged.merge_from(b);
  EXPECT_EQ(merged.json_snapshot(), serial.json_snapshot());
  EXPECT_EQ(merged.prometheus_text(), serial.prometheus_text());
}

TEST(Metrics, PrometheusTextExposition) {
  MetricsRegistry reg;
  reg.counter("pima_cmds_total", "Commands issued", {{"stage", "hashmap"}})
      .add(3.0);
  reg.gauge("pima_depth", "Queue depth").set(2.0);
  auto& h = reg.histogram("pima_lat_ns", "Latency", {10.0, 100.0});
  h.observe(5.0);
  h.observe(50.0);
  h.observe(500.0);
  const auto text = reg.prometheus_text();
  EXPECT_NE(text.find("# HELP pima_cmds_total Commands issued"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE pima_cmds_total counter"), std::string::npos);
  EXPECT_NE(text.find("pima_cmds_total{stage=\"hashmap\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE pima_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pima_lat_ns histogram"), std::string::npos);
  // Buckets are cumulative and end with +Inf == _count. Bounds render via
  // the shortest-precision %g probe, so 10 is "1e+01".
  EXPECT_NE(text.find("pima_lat_ns_bucket{le=\"1e+01\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("pima_lat_ns_bucket{le=\"1e+02\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("pima_lat_ns_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("pima_lat_ns_count 3"), std::string::npos);
  EXPECT_NE(text.find("pima_lat_ns_sum 555"), std::string::npos);
}

TEST(Metrics, JsonSnapshotIsWellFormedAndClassFiltered) {
  MetricsRegistry reg;
  reg.counter("pima_model_total", "m", {}, MetricClass::kModel).add(1.0);
  reg.counter("pima_host_total", "h", {}, MetricClass::kHost).add(1.0);
  reg.histogram("pima_hist_ns", "h", {1.0}, {{"channel", "0"}}).observe(0.5);
  const auto full = reg.json_snapshot();
  const auto model = reg.json_snapshot(/*model_only=*/true);
  EXPECT_TRUE(json_ok(full)) << full;
  EXPECT_TRUE(json_ok(model)) << model;
  EXPECT_NE(full.find("pima_host_total"), std::string::npos);
  EXPECT_EQ(model.find("pima_host_total"), std::string::npos);
  EXPECT_NE(model.find("pima_model_total"), std::string::npos);
}

TEST(Metrics, BreakdownMetricsMatchBreakdownExactly) {
  dram::CommandStats stats;
  stats.counts[static_cast<std::size_t>(dram::CommandKind::kAapCopy)] = 7;
  stats.counts[static_cast<std::size_t>(dram::CommandKind::kRowWrite)] = 3;
  const auto tech = circuit::default_technology();
  const auto breakdown = dram::breakdown_from_stats(stats, 256, tech);
  MetricsRegistry reg;
  add_breakdown_metrics(reg, breakdown);
  double energy = 0.0, time_ns = 0.0, count = 0.0;
  for (const auto& row : breakdown.rows) {
    const Labels labels = {{"kind", std::string(to_string(row.kind))}};
    count += reg.counter("pima_dram_commands_total", "", labels).value();
    energy += reg.counter("pima_dram_energy_pj_total", "", labels).value();
    time_ns += reg.counter("pima_dram_time_ns_total", "", labels).value();
  }
  EXPECT_DOUBLE_EQ(count, 10.0);
  EXPECT_DOUBLE_EQ(energy, breakdown.total_energy_pj);
  EXPECT_DOUBLE_EQ(time_ns, breakdown.total_time_ns);
}

// ---- tracer ----

TEST(Tracer, RecordsSpansInstantsAndCounters) {
  Tracer t;
  t.enable();
  t.set_thread_track(0);
  t.set_track_name(0, "main");
  t.set_track_name(1, "channel 1");
  const auto start = t.now_ns();
  t.record_complete("stage:hashmap", start, 1000, "shards", 8.0);
  t.record_instant("fault:detected");
  t.record_instant("stall", 1);  // cross-track: watchdog marks a channel
  t.record_counter("queue depth", 3.0, 1);
  t.disable();
  EXPECT_EQ(t.event_count(), 4u);
  const auto json = t.chrome_json();
  EXPECT_TRUE(json_ok(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("stage:hashmap"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  // Counter tracks are disambiguated per channel.
  EXPECT_NE(json.find("queue depth [channel 1]"), std::string::npos);
  // Thread-name metadata for Perfetto track labels.
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"main\""), std::string::npos);
}

TEST(Tracer, DisabledRecordingIsANoOp) {
  Tracer t;
  t.record_complete("x", 0, 1);
  t.record_instant("y");
  t.record_counter("z", 1.0, 0);
  EXPECT_EQ(t.event_count(), 0u);
  EXPECT_TRUE(json_ok(t.chrome_json()));
}

TEST(Tracer, OverflowDropsNewestAndCounts) {
  Tracer t;
  t.enable(/*events_per_thread=*/4);
  for (int i = 0; i < 10; ++i) t.record_instant("e");
  t.disable();
  EXPECT_EQ(t.event_count(), 4u);
  EXPECT_EQ(t.dropped_count(), 6u);
  EXPECT_TRUE(json_ok(t.chrome_json()));
}

TEST(Tracer, ClearSurvivesReuse) {
  Tracer t;
  t.enable();
  t.record_instant("first");
  t.clear();
  EXPECT_EQ(t.event_count(), 0u);
  // The thread-local buffer pointer from before clear() must not be
  // reused: re-enabling re-registers via the generation counter.
  t.enable();
  t.record_instant("second");
  EXPECT_EQ(t.event_count(), 1u);
  EXPECT_NE(t.chrome_json().find("second"), std::string::npos);
  t.disable();
  t.clear();
}

TEST(Tracer, EventsFromWorkerThreadsAreMerged) {
  Tracer t;
  t.enable();
  std::vector<std::thread> workers;
  for (std::uint32_t w = 0; w < 4; ++w) {
    workers.emplace_back([&t, w] {
      t.set_thread_track(w + 1);
      for (int i = 0; i < 100; ++i) t.record_instant("tick");
    });
  }
  for (auto& th : workers) th.join();
  t.disable();
  EXPECT_EQ(t.event_count(), 400u);
  EXPECT_EQ(t.dropped_count(), 0u);
  EXPECT_TRUE(json_ok(t.chrome_json()));
}

TEST(Tracer, ScopedSpanRecordsOnDestruction) {
  auto& session = TelemetrySession::instance();
  session.reset();
  session.tracer().enable();
  { ScopedSpan span("scoped:work", "items", 3.0); }
  session.tracer().disable();
  EXPECT_EQ(session.tracer().event_count(), 1u);
  const auto json = session.tracer().chrome_json();
  EXPECT_NE(json.find("scoped:work"), std::string::npos);
  EXPECT_NE(json.find("\"items\""), std::string::npos);
  session.reset();
}

// ---- session ----

TEST(Session, FlushWritesAllConfiguredSinks) {
  auto& session = TelemetrySession::instance();
  session.reset();
  const auto trace_path = temp_path("tel_trace.json");
  const auto metrics_path = temp_path("tel_metrics.prom");
  session.set_trace_path(trace_path);
  session.set_metrics_path(metrics_path);
  session.tracer().enable();
  session.enable_metrics();
  // Direct API, not PIMA_TEL_INSTANT: the sinks must work even when the
  // hot-path instrumentation macros are compiled out.
  session.tracer().record_instant("flush:test");
  session.metrics().counter("pima_flush_total", "h").increment();
  session.tracer().disable();
  session.flush();

  const auto trace = slurp(trace_path);
  EXPECT_TRUE(json_ok(trace)) << trace;
  EXPECT_NE(trace.find("flush:test"), std::string::npos);
  const auto prom = slurp(metrics_path);
  EXPECT_NE(prom.find("pima_flush_total 1"), std::string::npos);
  const auto json = slurp(metrics_path + ".json");
  EXPECT_TRUE(json_ok(json)) << json;
  EXPECT_NE(json.find("pima_flush_total"), std::string::npos);
  session.reset();
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
  std::remove((metrics_path + ".json").c_str());
}

// ---- engine stall leaves a readable trace behind ----

TEST(EngineTelemetry, StallFlushesTraceWithStallEvent) {
#if !PIMA_TELEMETRY
  GTEST_SKIP() << "engine instrumentation compiled out (PIMA_TELEMETRY=OFF)";
#endif
  auto& session = TelemetrySession::instance();
  session.reset();
  const auto trace_path = temp_path("tel_stall_trace.json");
  session.set_trace_path(trace_path);
  session.tracer().enable();

  dram::Geometry g;
  g.rows = 512;
  g.compute_rows = 8;
  g.columns = 256;
  g.subarrays_per_mat = 16;
  g.mats_per_bank = 4;
  g.banks = 2;
  dram::Device device(g);
  runtime::EngineOptions opt;
  opt.channels = 2;
  opt.queue_capacity = 4;
  opt.stall_timeout_ms = 50.0;
  std::atomic<bool> release{false};
  std::atomic<bool> task_done{false};
  {
    runtime::Engine engine(device, opt);
    engine.submit_to_subarray(1, [&] {
      while (!release.load()) std::this_thread::yield();
      task_done = true;
    });
    EXPECT_THROW(engine.drain(), EngineStalledError);
    // The watchdog flushed before drain() rethrew: the trace on disk
    // already carries the stall marker even though the process would
    // normally die on this exception.
    const auto trace = slurp(trace_path);
    EXPECT_TRUE(json_ok(trace)) << trace;
    EXPECT_NE(trace.find("\"stall\""), std::string::npos);
    release = true;
    while (!task_done.load()) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  session.reset();
  std::remove(trace_path.c_str());
}

// ---- pipeline metrics determinism ----

std::string model_snapshot_for_threads(std::size_t threads) {
  auto& session = TelemetrySession::instance();
  session.reset();
  session.enable_metrics();

  dna::GenomeParams gp;
  gp.length = 900;
  gp.repeat_count = 0;
  const auto genome = dna::generate_genome(gp);
  dna::ReadSamplerParams rp;
  rp.coverage = 6.0;
  rp.read_length = 70;
  const auto reads = dna::sample_reads(genome, rp);

  dram::Geometry g;
  g.rows = 512;
  g.compute_rows = 8;
  g.columns = 256;
  g.subarrays_per_mat = 16;
  g.mats_per_bank = 4;
  g.banks = 2;
  dram::Device device(g);
  core::PipelineOptions opt;
  opt.k = 15;
  opt.hash_shards = 8;
  opt.threads = threads;
  (void)core::run_pipeline(device, reads, opt);

  auto snapshot = session.metrics().json_snapshot(/*model_only=*/true);
  session.reset();
  return snapshot;
}

TEST(PipelineTelemetry, ModelMetricsBitIdenticalAcrossThreadCounts) {
  const auto serial = model_snapshot_for_threads(1);
  const auto parallel = model_snapshot_for_threads(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_TRUE(json_ok(serial)) << serial;
  // Model-class metrics derive only from simulated state, so the snapshot
  // is a determinism oracle: any thread count must produce these bytes.
  EXPECT_EQ(serial, parallel);
  // The interesting families actually showed up.
  EXPECT_NE(serial.find("pima_stage_commands_total"), std::string::npos);
  EXPECT_NE(serial.find("pima_dram_energy_pj_total"), std::string::npos);
  EXPECT_NE(serial.find("pima_reads_total"), std::string::npos);
}

}  // namespace
}  // namespace pima::telemetry
