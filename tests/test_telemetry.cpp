// Tests of the telemetry subsystem: metric semantics (Prometheus
// upper-inclusive buckets, quantiles, deterministic merges), trace
// recording and Chrome JSON export well-formedness, session flush sinks,
// and the headline contract — the model-class metrics snapshot is
// bit-identical for any --threads.
#include <gtest/gtest.h>

#include <csignal>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/pipeline.hpp"
#include "dna/genome.hpp"
#include "runtime/engine.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/progress.hpp"
#include "telemetry/session.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace pima::telemetry {
namespace {

// ---- minimal JSON validator ----
//
// Recursive-descent checker for RFC 8259 structure: objects, arrays,
// strings with escapes, numbers, literals. Enough to prove the exporters
// emit well-formed JSON without an external parser.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') return ++pos_, true;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(s_[pos_])) return false;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() && std::isdigit(s_[pos_])) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (pos_ < s_.size() && std::isdigit(s_[pos_])) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (pos_ < s_.size() && std::isdigit(s_[pos_])) ++pos_;
    }
    return pos_ > start && std::isdigit(s_[pos_ - 1]);
  }
  bool literal(const char* word) {
    const std::size_t n = std::char_traits<char>::length(word);
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

bool json_ok(const std::string& text) { return JsonChecker(text).valid(); }

std::string temp_path(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir ? dir : "/tmp") + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(JsonChecker, SelfTest) {
  EXPECT_TRUE(json_ok(R"({"a":[1,2.5,-3e8],"b":"x\né","c":null})"));
  EXPECT_FALSE(json_ok(R"({"a":1)"));
  EXPECT_FALSE(json_ok(R"({"a":1}trailing)"));
  EXPECT_FALSE(json_ok(R"({"a":01x})"));
  EXPECT_FALSE(json_ok("{\"a\":\"\x01\"}"));
}

// ---- metrics ----

TEST(Metrics, CounterAndGaugeBasics) {
  MetricsRegistry reg;
  auto& c = reg.counter("pima_test_total", "help");
  c.increment();
  c.add(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  // Same (name, labels) returns the same handle.
  EXPECT_EQ(&reg.counter("pima_test_total", "help"), &c);
  // Different labels are a distinct instance.
  auto& c2 = reg.counter("pima_test_total", "help", {{"stage", "hashmap"}});
  EXPECT_NE(&c2, &c);
  EXPECT_DOUBLE_EQ(c2.value(), 0.0);

  auto& g = reg.gauge("pima_test_gauge", "help");
  g.set(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  EXPECT_EQ(reg.size(), 3u);
  reg.clear();
  EXPECT_EQ(reg.size(), 0u);
}

TEST(Metrics, HistogramBucketsAreUpperInclusive) {
  Histogram h({1.0, 10.0, 100.0});
  // Prometheus `le` semantics: a value equal to a bound lands in that
  // bound's bucket, not the next one.
  h.observe(1.0);
  h.observe(10.0);
  h.observe(10.0001);
  h.observe(100.0);
  h.observe(1000.0);  // +Inf overflow bucket
  EXPECT_EQ(h.bucket_count(0), 1u);  // le=1
  EXPECT_EQ(h.bucket_count(1), 1u);  // le=10
  EXPECT_EQ(h.bucket_count(2), 2u);  // le=100
  EXPECT_EQ(h.bucket_count(3), 1u);  // +Inf
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 10.0 + 10.0001 + 100.0 + 1000.0);
}

TEST(Metrics, HistogramQuantiles) {
  Histogram h({10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty
  for (int i = 0; i < 10; ++i) h.observe(5.0);    // le=10
  for (int i = 0; i < 10; ++i) h.observe(15.0);   // le=20
  // Median sits at the boundary of the first bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
  // Quantiles interpolate linearly inside the covering bucket.
  EXPECT_GT(h.quantile(0.75), 10.0);
  EXPECT_LT(h.quantile(0.75), 20.0);
  // +Inf bucket clamps to the largest finite bound.
  h.observe(1e9);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 30.0);
}

TEST(Metrics, MergeIsDeterministicFold) {
  // Shards folded in index order must reproduce the serial registry
  // bit-for-bit — same discipline as runtime::reduce_parallel.
  MetricsRegistry serial;
  serial.counter("pima_x_total", "h").add(6.0);
  serial.gauge("pima_g", "h").set(5.0);
  auto& sh = serial.histogram("pima_h_ns", "h", {1.0, 2.0});
  sh.observe(0.5);
  sh.observe(1.5);
  sh.observe(9.0);

  MetricsRegistry a, b, merged;
  a.counter("pima_x_total", "h").add(2.0);
  b.counter("pima_x_total", "h").add(4.0);
  a.gauge("pima_g", "h").set(5.0);
  b.gauge("pima_g", "h").set(3.0);  // merge takes the max
  a.histogram("pima_h_ns", "h", {1.0, 2.0}).observe(0.5);
  auto& bh = b.histogram("pima_h_ns", "h", {1.0, 2.0});
  bh.observe(1.5);
  bh.observe(9.0);
  merged.merge_from(a);
  merged.merge_from(b);
  EXPECT_EQ(merged.json_snapshot(), serial.json_snapshot());
  EXPECT_EQ(merged.prometheus_text(), serial.prometheus_text());
}

TEST(Metrics, PrometheusTextExposition) {
  MetricsRegistry reg;
  reg.counter("pima_cmds_total", "Commands issued", {{"stage", "hashmap"}})
      .add(3.0);
  reg.gauge("pima_depth", "Queue depth").set(2.0);
  auto& h = reg.histogram("pima_lat_ns", "Latency", {10.0, 100.0});
  h.observe(5.0);
  h.observe(50.0);
  h.observe(500.0);
  const auto text = reg.prometheus_text();
  EXPECT_NE(text.find("# HELP pima_cmds_total Commands issued"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE pima_cmds_total counter"), std::string::npos);
  EXPECT_NE(text.find("pima_cmds_total{stage=\"hashmap\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE pima_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pima_lat_ns histogram"), std::string::npos);
  // Buckets are cumulative and end with +Inf == _count. Bounds render via
  // the shortest-precision %g probe, so 10 is "1e+01".
  EXPECT_NE(text.find("pima_lat_ns_bucket{le=\"1e+01\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("pima_lat_ns_bucket{le=\"1e+02\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("pima_lat_ns_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("pima_lat_ns_count 3"), std::string::npos);
  EXPECT_NE(text.find("pima_lat_ns_sum 555"), std::string::npos);
}

TEST(Metrics, JsonSnapshotIsWellFormedAndClassFiltered) {
  MetricsRegistry reg;
  reg.counter("pima_model_total", "m", {}, MetricClass::kModel).add(1.0);
  reg.counter("pima_host_total", "h", {}, MetricClass::kHost).add(1.0);
  reg.histogram("pima_hist_ns", "h", {1.0}, {{"channel", "0"}}).observe(0.5);
  const auto full = reg.json_snapshot();
  const auto model = reg.json_snapshot(/*model_only=*/true);
  EXPECT_TRUE(json_ok(full)) << full;
  EXPECT_TRUE(json_ok(model)) << model;
  EXPECT_NE(full.find("pima_host_total"), std::string::npos);
  EXPECT_EQ(model.find("pima_host_total"), std::string::npos);
  EXPECT_NE(model.find("pima_model_total"), std::string::npos);
}

TEST(Metrics, BreakdownMetricsMatchBreakdownExactly) {
  dram::CommandStats stats;
  stats.counts[static_cast<std::size_t>(dram::CommandKind::kAapCopy)] = 7;
  stats.counts[static_cast<std::size_t>(dram::CommandKind::kRowWrite)] = 3;
  const auto tech = circuit::default_technology();
  const auto breakdown = dram::breakdown_from_stats(stats, 256, tech);
  MetricsRegistry reg;
  add_breakdown_metrics(reg, breakdown);
  double energy = 0.0, time_ns = 0.0, count = 0.0;
  for (const auto& row : breakdown.rows) {
    const Labels labels = {{"kind", std::string(to_string(row.kind))}};
    count += reg.counter("pima_dram_commands_total", "", labels).value();
    energy += reg.counter("pima_dram_energy_pj_total", "", labels).value();
    time_ns += reg.counter("pima_dram_time_ns_total", "", labels).value();
  }
  EXPECT_DOUBLE_EQ(count, 10.0);
  EXPECT_DOUBLE_EQ(energy, breakdown.total_energy_pj);
  EXPECT_DOUBLE_EQ(time_ns, breakdown.total_time_ns);
}

// ---- tracer ----

TEST(Tracer, RecordsSpansInstantsAndCounters) {
  Tracer t;
  t.enable();
  t.set_thread_track(0);
  t.set_track_name(0, "main");
  t.set_track_name(1, "channel 1");
  const auto start = t.now_ns();
  t.record_complete("stage:hashmap", start, 1000, "shards", 8.0);
  t.record_instant("fault:detected");
  t.record_instant("stall", 1);  // cross-track: watchdog marks a channel
  t.record_counter("queue depth", 3.0, 1);
  t.disable();
  EXPECT_EQ(t.event_count(), 4u);
  const auto json = t.chrome_json();
  EXPECT_TRUE(json_ok(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("stage:hashmap"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  // Counter tracks are disambiguated per channel.
  EXPECT_NE(json.find("queue depth [channel 1]"), std::string::npos);
  // Thread-name metadata for Perfetto track labels.
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"main\""), std::string::npos);
}

TEST(Tracer, DisabledRecordingIsANoOp) {
  Tracer t;
  t.record_complete("x", 0, 1);
  t.record_instant("y");
  t.record_counter("z", 1.0, 0);
  EXPECT_EQ(t.event_count(), 0u);
  EXPECT_TRUE(json_ok(t.chrome_json()));
}

TEST(Tracer, OverflowDropsNewestAndCounts) {
  Tracer t;
  t.enable(/*events_per_thread=*/4);
  for (int i = 0; i < 10; ++i) t.record_instant("e");
  t.disable();
  EXPECT_EQ(t.event_count(), 4u);
  EXPECT_EQ(t.dropped_count(), 6u);
  EXPECT_TRUE(json_ok(t.chrome_json()));
}

TEST(Tracer, ClearSurvivesReuse) {
  Tracer t;
  t.enable();
  t.record_instant("first");
  t.clear();
  EXPECT_EQ(t.event_count(), 0u);
  // The thread-local buffer pointer from before clear() must not be
  // reused: re-enabling re-registers via the generation counter.
  t.enable();
  t.record_instant("second");
  EXPECT_EQ(t.event_count(), 1u);
  EXPECT_NE(t.chrome_json().find("second"), std::string::npos);
  t.disable();
  t.clear();
}

TEST(Tracer, EventsFromWorkerThreadsAreMerged) {
  Tracer t;
  t.enable();
  std::vector<std::thread> workers;
  for (std::uint32_t w = 0; w < 4; ++w) {
    workers.emplace_back([&t, w] {
      t.set_thread_track(w + 1);
      for (int i = 0; i < 100; ++i) t.record_instant("tick");
    });
  }
  for (auto& th : workers) th.join();
  t.disable();
  EXPECT_EQ(t.event_count(), 400u);
  EXPECT_EQ(t.dropped_count(), 0u);
  EXPECT_TRUE(json_ok(t.chrome_json()));
}

TEST(Tracer, ScopedSpanRecordsOnDestruction) {
  auto& session = TelemetrySession::instance();
  session.reset();
  session.tracer().enable();
  { ScopedSpan span("scoped:work", "items", 3.0); }
  session.tracer().disable();
  EXPECT_EQ(session.tracer().event_count(), 1u);
  const auto json = session.tracer().chrome_json();
  EXPECT_NE(json.find("scoped:work"), std::string::npos);
  EXPECT_NE(json.find("\"items\""), std::string::npos);
  session.reset();
}

// ---- session ----

TEST(Session, FlushWritesAllConfiguredSinks) {
  auto& session = TelemetrySession::instance();
  session.reset();
  const auto trace_path = temp_path("tel_trace.json");
  const auto metrics_path = temp_path("tel_metrics.prom");
  session.set_trace_path(trace_path);
  session.set_metrics_path(metrics_path);
  session.tracer().enable();
  session.enable_metrics();
  // Direct API, not PIMA_TEL_INSTANT: the sinks must work even when the
  // hot-path instrumentation macros are compiled out.
  session.tracer().record_instant("flush:test");
  session.metrics().counter("pima_flush_total", "h").increment();
  session.tracer().disable();
  session.flush();

  const auto trace = slurp(trace_path);
  EXPECT_TRUE(json_ok(trace)) << trace;
  EXPECT_NE(trace.find("flush:test"), std::string::npos);
  const auto prom = slurp(metrics_path);
  EXPECT_NE(prom.find("pima_flush_total 1"), std::string::npos);
  const auto json = slurp(metrics_path + ".json");
  EXPECT_TRUE(json_ok(json)) << json;
  EXPECT_NE(json.find("pima_flush_total"), std::string::npos);
  session.reset();
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
  std::remove((metrics_path + ".json").c_str());
}

// ---- engine stall leaves a readable trace behind ----

TEST(EngineTelemetry, StallFlushesTraceWithStallEvent) {
#if !PIMA_TELEMETRY
  GTEST_SKIP() << "engine instrumentation compiled out (PIMA_TELEMETRY=OFF)";
#endif
  auto& session = TelemetrySession::instance();
  session.reset();
  const auto trace_path = temp_path("tel_stall_trace.json");
  session.set_trace_path(trace_path);
  session.tracer().enable();

  dram::Geometry g;
  g.rows = 512;
  g.compute_rows = 8;
  g.columns = 256;
  g.subarrays_per_mat = 16;
  g.mats_per_bank = 4;
  g.banks = 2;
  dram::Device device(g);
  runtime::EngineOptions opt;
  opt.channels = 2;
  opt.queue_capacity = 4;
  opt.stall_timeout_ms = 50.0;
  std::atomic<bool> release{false};
  std::atomic<bool> task_done{false};
  {
    runtime::Engine engine(device, opt);
    engine.submit_to_subarray(1, [&] {
      while (!release.load()) std::this_thread::yield();
      task_done = true;
    });
    EXPECT_THROW(engine.drain(), EngineStalledError);
    // The watchdog flushed before drain() rethrew: the trace on disk
    // already carries the stall marker even though the process would
    // normally die on this exception.
    const auto trace = slurp(trace_path);
    EXPECT_TRUE(json_ok(trace)) << trace;
    EXPECT_NE(trace.find("\"stall\""), std::string::npos);
    release = true;
    while (!task_done.load()) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  session.reset();
  std::remove(trace_path.c_str());
}

// ---- pipeline metrics determinism ----

std::string model_snapshot_for_threads(std::size_t threads) {
  auto& session = TelemetrySession::instance();
  session.reset();
  session.enable_metrics();

  dna::GenomeParams gp;
  gp.length = 900;
  gp.repeat_count = 0;
  const auto genome = dna::generate_genome(gp);
  dna::ReadSamplerParams rp;
  rp.coverage = 6.0;
  rp.read_length = 70;
  const auto reads = dna::sample_reads(genome, rp);

  dram::Geometry g;
  g.rows = 512;
  g.compute_rows = 8;
  g.columns = 256;
  g.subarrays_per_mat = 16;
  g.mats_per_bank = 4;
  g.banks = 2;
  dram::Device device(g);
  core::PipelineOptions opt;
  opt.k = 15;
  opt.hash_shards = 8;
  opt.threads = threads;
  (void)core::run_pipeline(device, reads, opt);

  auto snapshot = session.metrics().json_snapshot(/*model_only=*/true);
  session.reset();
  return snapshot;
}

TEST(PipelineTelemetry, ModelMetricsBitIdenticalAcrossThreadCounts) {
  const auto serial = model_snapshot_for_threads(1);
  const auto parallel = model_snapshot_for_threads(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_TRUE(json_ok(serial)) << serial;
  // Model-class metrics derive only from simulated state, so the snapshot
  // is a determinism oracle: any thread count must produce these bytes.
  EXPECT_EQ(serial, parallel);
  // The interesting families actually showed up.
  EXPECT_NE(serial.find("pima_stage_commands_total"), std::string::npos);
  EXPECT_NE(serial.find("pima_dram_energy_pj_total"), std::string::npos);
  EXPECT_NE(serial.find("pima_reads_total"), std::string::npos);
}

// ---- histogram quantile edges ----

TEST(Metrics, QuantileEdgeCases) {
  // Empty histogram: every quantile (including out-of-range q) is 0.
  Histogram empty({10.0, 20.0});
  EXPECT_DOUBLE_EQ(empty.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(-3.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(42.0), 0.0);

  // Single finite bucket: linear interpolation from 0 to the bound.
  Histogram single({100.0});
  for (int i = 0; i < 4; ++i) single.observe(50.0);
  EXPECT_DOUBLE_EQ(single.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(single.quantile(1.0), 100.0);
  // q clamps: 5.0 behaves like 1.0, -1.0 like 0.0.
  EXPECT_DOUBLE_EQ(single.quantile(5.0), single.quantile(1.0));
  EXPECT_DOUBLE_EQ(single.quantile(-1.0), single.quantile(0.0));

  // All mass in the +Inf bucket: clamps to the largest finite bound.
  Histogram overflow({10.0});
  overflow.observe(1e12);
  EXPECT_DOUBLE_EQ(overflow.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(overflow.quantile(1.0), 10.0);

  // No finite bounds at all: only the +Inf bucket exists, quantile 0.
  Histogram unbounded({});
  unbounded.observe(7.0);
  EXPECT_DOUBLE_EQ(unbounded.quantile(0.5), 0.0);
}

// ---- progress reporter ----

TEST(Progress, FormatLineRatesAndEta) {
  ProgressSnapshot s;
  s.reads = 50.0;
  s.expected = 100.0;
  s.kmers = 500.0;
  // 50 reads and 500 k-mers in 10 s → 5/s and 50/s; 50 reads left at
  // 5/s → eta 10.0s.
  EXPECT_EQ(format_progress_line(s, 0.0, 0.0, 10.0),
            "[pima] reads 50/100 (5/s) kmers 500 (50/s) eta 10.0s "
            "faults det=0 retry=0 host=0");
  // No progress this tick → rate 0 → no eta estimate.
  EXPECT_EQ(format_progress_line(s, 50.0, 500.0, 10.0),
            "[pima] reads 50/100 (0/s) kmers 500 (0/s) eta -- "
            "faults det=0 retry=0 host=0");
  // Counters behind the last tick (a registry swap) clamp to rate 0, not
  // a negative rate.
  EXPECT_EQ(format_progress_line(s, 80.0, 900.0, 10.0),
            "[pima] reads 50/100 (0/s) kmers 500 (0/s) eta -- "
            "faults det=0 retry=0 host=0");
  // Caught up: eta flips to done regardless of rate.
  s.reads = 100.0;
  s.kmers = 1000.0;
  s.detected = 3.0;
  s.retried = 2.0;
  s.fallbacks = 1.0;
  EXPECT_EQ(format_progress_line(s, 50.0, 500.0, 10.0),
            "[pima] reads 100/100 (5/s) kmers 1000 (50/s) eta done "
            "faults det=3 retry=2 host=1");
  // Unknown stream size: eta stays "--".
  s.expected = 0.0;
  EXPECT_EQ(format_progress_line(s, 50.0, 500.0, 10.0),
            "[pima] reads 100/0 (5/s) kmers 1000 (50/s) eta -- "
            "faults det=3 retry=2 host=1");
}

TEST(Progress, ReporterWritesFinalLineOnDestruction) {
  MetricsRegistry registry;
  registry.counter(kReadsTotal, "reads").add(42.0);
  registry.counter(kReadsExpected, "expected").add(42.0);
  registry.counter(kKmersTotal, "kmers").add(420.0);
  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  {
    ProgressReporter::Options options;
    options.interval_s = 3600.0;  // never ticks; only the final flush runs
    options.out = out;
    ProgressReporter reporter(registry, options);
  }
  std::rewind(out);
  char buf[256] = {0};
  ASSERT_NE(std::fgets(buf, sizeof buf, out), nullptr);
  EXPECT_EQ(std::string(buf),
            "[pima] reads 42/42 (0/s) kmers 420 (0/s) eta done "
            "faults det=0 retry=0 host=0\n");
  std::fclose(out);
}

// ---- structured event log ----

TEST(Log, NdjsonSinkEmitsValidTypedLines) {
  auto& logger = Logger::instance();
  logger.reset_for_tests();
  logger.set_stderr_enabled(false);
  const std::string path = ::testing::TempDir() + "/pima_log_sink.ndjson";
  std::remove(path.c_str());
  logger.set_json_path(path);
  log_event(LogLevel::kWarn, "test.event", "quoted \"payload\"\nline two",
            {LogField::uint("device", 3), LogField::str("class", "torn"),
             LogField::num("backoff_ms", 12.5)});
  logger.reset_for_tests();  // closes the sink

  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_TRUE(json_ok(line)) << line;
  EXPECT_NE(line.find("\"level\": \"warn\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"code\": \"test.event\""), std::string::npos);
  EXPECT_NE(line.find("\"device\": 3"), std::string::npos);
  EXPECT_NE(line.find("\"class\": \"torn\""), std::string::npos);
  EXPECT_NE(line.find("\"backoff_ms\": 12.5"), std::string::npos);
  EXPECT_NE(line.find("\\n"), std::string::npos);  // newline escaped
  EXPECT_FALSE(std::getline(in, line));            // exactly one event
  std::remove(path.c_str());
}

TEST(Log, LevelGateIsAllocationFreeFastPath) {
  auto& logger = Logger::instance();
  logger.reset_for_tests();
  logger.set_stderr_enabled(false);
  logger.set_level(LogLevel::kError);
  EXPECT_FALSE(logger.would_log(LogLevel::kWarn));
  EXPECT_TRUE(logger.would_log(LogLevel::kError));
  const std::string path = ::testing::TempDir() + "/pima_log_gate.ndjson";
  std::remove(path.c_str());
  logger.set_json_path(path);
  log_event(LogLevel::kInfo, "test.below", "filtered");
  log_event(LogLevel::kError, "test.kept", "kept");
  logger.reset_for_tests();

  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(all.find("test.below"), std::string::npos);
  EXPECT_NE(all.find("test.kept"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Log, PerCodeTokenBucketSuppressesAndCounts) {
  auto& logger = Logger::instance();
  logger.reset_for_tests();
  logger.set_stderr_enabled(false);
  logger.set_rate_limit(/*tokens_per_s=*/0.0001, /*burst=*/2.0);
  const std::string path = ::testing::TempDir() + "/pima_log_rate.ndjson";
  std::remove(path.c_str());
  logger.set_json_path(path);
  for (int i = 0; i < 10; ++i)
    log_event(LogLevel::kWarn, "test.flood", "repeated failure");
  // A different code has its own bucket and still passes.
  log_event(LogLevel::kWarn, "test.other", "unrelated");
  EXPECT_EQ(logger.suppressed_total(), 8u);
  logger.reset_for_tests();

  std::ifstream in(path);
  std::string line;
  std::size_t flood = 0, other = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(json_ok(line)) << line;
    if (line.find("test.flood") != std::string::npos) ++flood;
    if (line.find("test.other") != std::string::npos) ++other;
  }
  EXPECT_EQ(flood, 2u);  // burst
  EXPECT_EQ(other, 1u);
  std::remove(path.c_str());
}

TEST(Log, CodeForExceptionMirrorsErrorTaxonomy) {
  EXPECT_STREQ(log_code_for(IoError("x")), "error.io");
  EXPECT_STREQ(log_code_for(InputFormatError("x")), "error.input_format");
  EXPECT_STREQ(log_code_for(SimulationError("x")), "error.simulation");
  EXPECT_STREQ(log_code_for(std::runtime_error("x")), "error.unknown");
}

// ---- flight recorder ----

TEST(Flight, RenderIsSchemaValidAndIncludesProviders) {
  auto& flight = FlightRecorder::instance();
  flight.reset_for_tests();
  flight.note("{\"code\": \"test.one\"}", 20);
  const int good =
      flight.add_snapshot_provider("widget", [] {
        return std::string("{\"gears\": 3}");
      });
  const int bad = flight.add_snapshot_provider(
      "broken", []() -> std::string { throw std::runtime_error("boom"); });
  const std::string report = flight.render("unit_test", "just checking");
  EXPECT_TRUE(json_ok(report)) << report;
  EXPECT_NE(report.find("\"schema\": \"pima.crash_report.v1\""),
            std::string::npos);
  EXPECT_NE(report.find("\"reason\": \"unit_test\""), std::string::npos);
  EXPECT_NE(report.find("test.one"), std::string::npos);
  EXPECT_NE(report.find("\"gears\": 3"), std::string::npos);
  // A throwing provider contributes an error marker, not a dead dump.
  EXPECT_NE(report.find("\"broken\""), std::string::npos);
  EXPECT_NE(report.find("boom"), std::string::npos);
  flight.remove_snapshot_provider(good);
  flight.remove_snapshot_provider(bad);
  flight.reset_for_tests();
}

TEST(Flight, RingKeepsTheMostRecentEvents) {
  auto& flight = FlightRecorder::instance();
  flight.reset_for_tests();
  for (int i = 0; i < 300; ++i) {
    const std::string line = "{\"seq\": " + std::to_string(i) + "}";
    flight.note(line.c_str(), line.size());
  }
  const std::string report = flight.render("overflow", "");
  EXPECT_TRUE(json_ok(report)) << report;
  // 300 events through a 256-slot ring: the newest survive, the oldest
  // are gone.
  EXPECT_NE(report.find("{\"seq\": 299}"), std::string::npos);
  EXPECT_EQ(report.find("{\"seq\": 0}"), std::string::npos);
  flight.reset_for_tests();
}

TEST(Flight, OversizedEventBecomesTruncationMarker) {
  auto& flight = FlightRecorder::instance();
  flight.reset_for_tests();
  const std::string huge =
      "{\"pad\": \"" + std::string(2 * FlightRecorder::kSlotBytes, 'x') +
      "\"}";
  flight.note(huge.c_str(), huge.size());
  const std::string report = flight.render("oversized", "");
  EXPECT_TRUE(json_ok(report)) << report;
  EXPECT_NE(report.find("log.oversized"), std::string::npos);
  flight.reset_for_tests();
}

TEST(Flight, DumpWritesAtomicallyAndCounts) {
  auto& flight = FlightRecorder::instance();
  flight.reset_for_tests();
  const std::string path = ::testing::TempDir() + "/pima_crash_report.json";
  std::remove(path.c_str());
  flight.set_output_path(path);
  flight.note("{\"code\": \"test.dump\"}", 21);
  EXPECT_TRUE(flight.dump("unit_test", "dump path"));
  EXPECT_EQ(flight.dump_count(), 1u);
  std::ifstream in(path);
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_TRUE(json_ok(body)) << body;
  EXPECT_NE(body.find("test.dump"), std::string::npos);
  std::remove(path.c_str());
  flight.reset_for_tests();
}

TEST(Flight, SignalDumpPathWritesParseableJson) {
  auto& flight = FlightRecorder::instance();
  flight.reset_for_tests();
  const std::string path = ::testing::TempDir() + "/pima_signal_report.json";
  std::remove(path.c_str());
  flight.set_output_path(path);
  flight.note("{\"code\": \"test.signal\"}", 23);
  flight.signal_dump(SIGSEGV);  // normal-context call of the raw-write path
  std::ifstream in(path);
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_TRUE(json_ok(body)) << body;
  EXPECT_NE(body.find("test.signal"), std::string::npos);
  std::remove(path.c_str());
  flight.reset_for_tests();
}

// ---- cross-process trace stitching ----

TEST(Tracer, PutProcessStitchesForeignTracksAndFlows) {
  Tracer t;
  t.enable();
  t.set_thread_track(0);
  t.set_track_name(0, "main");
  const auto start = t.now_ns();
  t.record_complete("rpc:kmers", start, 1000);
  t.record_flow("rpc", 's', 42, start);

  ProcessTrace pt;
  pt.pid = 4242;
  pt.name = "pima_devd d=0";
  pt.sort_index = 1;
  pt.track_names[0] = "rpc loop";
  ExportedTraceEvent span;
  span.name = "devd:kmers";
  span.phase = 'X';
  span.track = 0;
  span.ts_ns = start + 100;
  span.dur_ns = 500;
  pt.events.push_back(span);
  ExportedTraceEvent flow;
  flow.name = "rpc";
  flow.phase = 'f';
  flow.track = 0;
  flow.ts_ns = start + 100;
  flow.flow_id = 42;
  pt.events.push_back(flow);
  t.put_process(pt);
  EXPECT_EQ(t.process_count(), 1u);
  // Cumulative harvests replace the same incarnation wholesale.
  t.put_process(pt);
  EXPECT_EQ(t.process_count(), 1u);
  t.disable();

  const std::string json = t.chrome_json();
  EXPECT_TRUE(json_ok(json)) << json;
  // Both processes present, each under its own pid with track metadata.
  EXPECT_NE(json.find("\"controller\""), std::string::npos);
  EXPECT_NE(json.find("\"pima_devd d=0\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 4242"), std::string::npos);
  EXPECT_NE(json.find("\"rpc loop\""), std::string::npos);
  EXPECT_NE(json.find("devd:kmers"), std::string::npos);
  // The rpc flow link: start on the controller, finish on the worker.
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\": \"e\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"rpc\""), std::string::npos);
  EXPECT_NE(json.find("\"id\": 42"), std::string::npos);
}

TEST(Tracer, ControllerMetadataOnlyWhenForeignProcessesExist) {
  Tracer t;
  t.enable();
  t.set_thread_track(0);
  t.record_complete("solo", t.now_ns(), 10);
  t.disable();
  // Single-process traces keep the historical shape: no process metadata.
  EXPECT_EQ(t.chrome_json().find("process_name"), std::string::npos);

  t.enable();
  t.set_thread_track(0);
  t.record_complete("solo", t.now_ns(), 10);
  ProcessTrace pt;
  pt.pid = 77;
  pt.name = "pima_devd d=1 (restart 1)";
  pt.sort_index = 2;
  t.put_process(pt);
  t.disable();
  const std::string json = t.chrome_json();
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("(restart 1)"), std::string::npos);
}

}  // namespace
}  // namespace pima::telemetry
