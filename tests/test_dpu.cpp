#include "dram/dpu.hpp"

#include <gtest/gtest.h>

#include "dram/subarray.hpp"

namespace pima::dram {
namespace {

Geometry tiny() {
  Geometry g;
  g.rows = 32;
  g.compute_rows = 8;
  g.columns = 64;
  return g;
}

class DpuTest : public ::testing::Test {
 protected:
  DpuTest() : sa_(tiny(), circuit::default_technology()) {}
  Subarray sa_;
};

TEST_F(DpuTest, AndReduceFullRow) {
  BitVector ones(64);
  ones.fill(true);
  sa_.write_row(0, ones);
  EXPECT_TRUE(Dpu::and_reduce(sa_, 0, 64));
  ones.set(63, false);
  sa_.write_row(0, ones);
  EXPECT_FALSE(Dpu::and_reduce(sa_, 0, 64));
}

TEST_F(DpuTest, AndReducePrefixIgnoresTail) {
  // The paper's k-mer compare only reduces the first 2k bits; a mismatch
  // in padding must not matter.
  BitVector v(64);
  for (std::size_t i = 0; i < 32; ++i) v.set(i, true);
  sa_.write_row(0, v);
  EXPECT_TRUE(Dpu::and_reduce(sa_, 0, 32));
  EXPECT_FALSE(Dpu::and_reduce(sa_, 0, 33));
}

TEST_F(DpuTest, OrReduce) {
  BitVector v(64);
  sa_.write_row(0, v);
  EXPECT_FALSE(Dpu::or_reduce(sa_, 0, 64));
  v.set(40, true);
  sa_.write_row(0, v);
  EXPECT_TRUE(Dpu::or_reduce(sa_, 0, 64));
  EXPECT_FALSE(Dpu::or_reduce(sa_, 0, 40));  // prefix excludes bit 40
}

TEST_F(DpuTest, Popcount) {
  BitVector v(64);
  v.set(0, true);
  v.set(10, true);
  v.set(63, true);
  sa_.write_row(0, v);
  EXPECT_EQ(Dpu::popcount(sa_, 0, 64), 3u);
  EXPECT_EQ(Dpu::popcount(sa_, 0, 11), 2u);
}

TEST_F(DpuTest, WidthValidated) {
  EXPECT_THROW(Dpu::and_reduce(sa_, 0, 65), pima::PreconditionError);
}

TEST_F(DpuTest, EmptyWidthReductions) {
  // Width 0: AND over nothing is vacuously true, OR is false, count is 0 —
  // the identities of the respective reductions.
  BitVector v(64);
  v.fill(true);
  sa_.write_row(0, v);
  EXPECT_TRUE(Dpu::and_reduce(sa_, 0, 0));
  EXPECT_FALSE(Dpu::or_reduce(sa_, 0, 0));
  EXPECT_EQ(Dpu::popcount(sa_, 0, 0), 0u);
}

TEST_F(DpuTest, SingleColumnReductions) {
  BitVector v(64);
  v.set(0, true);
  sa_.write_row(0, v);
  EXPECT_TRUE(Dpu::and_reduce(sa_, 0, 1));
  EXPECT_TRUE(Dpu::or_reduce(sa_, 0, 1));
  EXPECT_EQ(Dpu::popcount(sa_, 0, 1), 1u);
  v.set(0, false);
  sa_.write_row(0, v);
  EXPECT_FALSE(Dpu::and_reduce(sa_, 0, 1));
  EXPECT_FALSE(Dpu::or_reduce(sa_, 0, 1));
  EXPECT_EQ(Dpu::popcount(sa_, 0, 1), 0u);
}

TEST_F(DpuTest, ReduceIsCosted) {
  sa_.write_row(0, BitVector(64));
  sa_.clear_stats();
  Dpu::and_reduce(sa_, 0, 64);
  EXPECT_EQ(
      sa_.stats().counts[static_cast<std::size_t>(CommandKind::kDpuReduce)],
      1u);
  EXPECT_GT(sa_.stats().energy_pj, 0.0);
}

}  // namespace
}  // namespace pima::dram
