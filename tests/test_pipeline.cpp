#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "assembly/verify.hpp"
#include "dna/genome.hpp"

namespace pima::core {
namespace {

dram::Geometry pipeline_geometry() {
  dram::Geometry g;
  g.rows = 512;
  g.compute_rows = 8;
  g.columns = 256;
  g.subarrays_per_mat = 16;
  g.mats_per_bank = 4;
  g.banks = 2;
  return g;
}

struct TestWorkload {
  dna::Sequence genome;
  std::vector<dna::Sequence> reads;
};

TestWorkload small_workload(std::size_t genome_len = 1200,
                            double coverage = 8.0) {
  TestWorkload w;
  dna::GenomeParams gp;
  gp.length = genome_len;
  gp.repeat_count = 0;
  const auto genome = dna::generate_genome(gp);
  dna::ReadSamplerParams rp;
  rp.coverage = coverage;
  rp.read_length = 70;
  w.genome = genome;
  w.reads = dna::sample_reads(genome, rp);
  return w;
}

TEST(Pipeline, EndToEndAssemblyVerifies) {
  const auto w = small_workload();
  dram::Device dev(pipeline_geometry());
  PipelineOptions opt;
  opt.k = 17;
  opt.hash_shards = 8;
  const auto result = run_pipeline(dev, w.reads, opt);

  EXPECT_GT(result.distinct_kmers, 1000u);
  EXPECT_EQ(result.graph_edges, result.distinct_kmers);
  const auto report =
      assembly::verify_contigs(w.genome, result.contigs, 2 * opt.k);
  EXPECT_TRUE(report.all_match());
  EXPECT_GT(report.reference_coverage, 0.9);
}

TEST(Pipeline, MatchesSoftwareAssembler) {
  const auto w = small_workload(900, 7.0);
  dram::Device dev(pipeline_geometry());
  PipelineOptions popt;
  popt.k = 15;
  popt.hash_shards = 8;
  const auto pim = run_pipeline(dev, w.reads, popt);

  assembly::AssemblyOptions sopt;
  sopt.k = 15;
  const auto sw = assemble(w.reads, sopt);

  EXPECT_EQ(pim.distinct_kmers, sw.distinct_kmers);
  EXPECT_EQ(pim.graph_nodes, sw.graph_nodes);
  EXPECT_EQ(pim.graph_edges, sw.graph_edges);
  EXPECT_EQ(pim.contig_stats.total_length, sw.stats.total_length);
  EXPECT_EQ(pim.contig_stats.count, sw.stats.count);
}

TEST(Pipeline, StageStatsAreAllPopulated) {
  const auto w = small_workload(600, 6.0);
  dram::Device dev(pipeline_geometry());
  PipelineOptions opt;
  opt.k = 15;
  opt.hash_shards = 6;
  const auto result = run_pipeline(dev, w.reads, opt);

  for (const auto* stage : {&result.hashmap, &result.debruijn,
                            &result.traverse}) {
    EXPECT_GT(stage->device.commands, 0u) << stage->name;
    EXPECT_GT(stage->device.time_ns, 0.0) << stage->name;
    EXPECT_GT(stage->device.energy_pj, 0.0) << stage->name;
  }
  // Hashmap dominates, as the paper reports (>60% of time on GPU; the PIM
  // run keeps it the largest stage too at these scales).
  EXPECT_GT(result.hashmap.device.time_ns, result.debruijn.device.time_ns);

  const auto total = result.total();
  EXPECT_NEAR(total.time_ns,
              result.hashmap.device.time_ns + result.debruijn.device.time_ns +
                  result.traverse.device.time_ns,
              1e-6);
  EXPECT_EQ(total.commands, result.hashmap.device.commands +
                                result.debruijn.device.commands +
                                result.traverse.device.commands);
}

TEST(Pipeline, ParallelShardsReduceCriticalPath) {
  const auto w = small_workload(900, 6.0);
  PipelineOptions narrow;
  narrow.k = 15;
  narrow.hash_shards = 6;
  PipelineOptions wide = narrow;
  wide.hash_shards = 24;

  dram::Device dev_a(pipeline_geometry());
  dram::Device dev_b(pipeline_geometry());
  const auto slow = run_pipeline(dev_a, w.reads, narrow);
  const auto fast = run_pipeline(dev_b, w.reads, wide);
  // Same total work, spread over more sub-arrays → shorter critical path.
  EXPECT_LT(fast.hashmap.device.time_ns, slow.hashmap.device.time_ns);
  EXPECT_EQ(fast.distinct_kmers, slow.distinct_kmers);
}

TEST(Pipeline, UnitigModeProducesVerifiedContigs) {
  const auto w = small_workload(800, 8.0);
  dram::Device dev(pipeline_geometry());
  PipelineOptions opt;
  opt.k = 15;
  opt.hash_shards = 8;
  opt.euler_contigs = false;
  const auto result = run_pipeline(dev, w.reads, opt);
  const auto report =
      assembly::verify_contigs(w.genome, result.contigs, 2 * opt.k);
  EXPECT_TRUE(report.all_match());
}

TEST(Pipeline, ExplicitIntervalCountHonored) {
  const auto w = small_workload(500, 6.0);
  dram::Device dev(pipeline_geometry());
  PipelineOptions opt;
  opt.k = 13;
  opt.hash_shards = 6;
  opt.graph_intervals = 6;
  EXPECT_NO_THROW(run_pipeline(dev, w.reads, opt));
}

}  // namespace
}  // namespace pima::core
