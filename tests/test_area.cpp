#include "circuit/area.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pima::circuit {
namespace {

TEST(Area, PaperBoundHolds) {
  // Paper §II.B: at most 51 row-equivalents per sub-array, ~5% of chip area.
  const auto r = estimate_area();
  EXPECT_LE(r.rows_equivalent, 51.0 + 1e-9);
  EXPECT_GT(r.rows_equivalent, 49.0);  // 50 rows of SA add-ons + ctrl
  EXPECT_NEAR(r.overhead_fraction, 0.05, 0.005);
}

TEST(Area, TransistorAccounting) {
  const auto r = estimate_area();
  // 50 × 256 SA + 16 MRD + controller remainder of one row.
  EXPECT_GE(r.addon_transistors, 50u * 256u + 16u);
  EXPECT_LE(r.addon_transistors, 51u * 256u);
}

TEST(Area, ScalesWithSaCost) {
  AreaModelParams cheap;
  cheap.sa_addon_per_bitline = 10;
  const auto small = estimate_area(cheap);
  const auto full = estimate_area();
  EXPECT_LT(small.overhead_fraction, full.overhead_fraction);
}

TEST(Area, ExplicitCtrlBudget) {
  AreaModelParams p;
  p.ctrl_addon_rows_equiv = 2;
  const auto r = estimate_area(p);
  EXPECT_GT(r.rows_equivalent, 51.0);
}

TEST(Area, InvalidGeometryThrows) {
  AreaModelParams p;
  p.columns = 0;
  EXPECT_THROW(estimate_area(p), PreconditionError);
}

}  // namespace
}  // namespace pima::circuit
