// End-to-end run resilience: a run killed mid-pipeline (literally SIGKILL,
// no destructors) resumes from its stage checkpoint and reproduces the
// uninterrupted run bit-for-bit — contigs, per-stage DeviceStats,
// FaultStats — for both serial and parallel engines. Plus the resume
// contract's refusal paths.
#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <string>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/error.hpp"
#include "core/pipeline.hpp"
#include "dna/genome.hpp"

namespace pima::core {
namespace {

namespace fs = std::filesystem;

dram::Geometry pipeline_geometry() {
  dram::Geometry g;
  g.rows = 512;
  g.compute_rows = 8;
  g.columns = 256;
  g.subarrays_per_mat = 16;
  g.mats_per_bank = 4;
  g.banks = 2;
  return g;
}

std::vector<dna::Sequence> workload_reads() {
  dna::GenomeParams gp;
  gp.length = 700;
  gp.repeat_count = 0;
  dna::ReadSamplerParams rp;
  rp.coverage = 6.0;
  rp.read_length = 70;
  return dna::sample_reads(dna::generate_genome(gp), rp);
}

PipelineOptions base_options(std::size_t threads) {
  PipelineOptions opt;
  opt.k = 15;
  opt.hash_shards = 8;
  opt.threads = threads;
  return opt;
}

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("pima_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// The whole point of checkpoint/restart: everything the caller can observe
// must be indistinguishable from the uninterrupted run.
void expect_bit_identical(const PipelineResult& a, const PipelineResult& b) {
  EXPECT_EQ(a.contigs, b.contigs);
  EXPECT_EQ(a.distinct_kmers, b.distinct_kmers);
  EXPECT_EQ(a.graph_nodes, b.graph_nodes);
  EXPECT_EQ(a.graph_edges, b.graph_edges);
  EXPECT_EQ(a.hashmap.device, b.hashmap.device);
  EXPECT_EQ(a.debruijn.device, b.debruijn.device);
  EXPECT_EQ(a.traverse.device, b.traverse.device);
  EXPECT_EQ(a.fault_stats, b.fault_stats);
  EXPECT_EQ(a.contig_stats.count, b.contig_stats.count);
  EXPECT_EQ(a.contig_stats.n50, b.contig_stats.n50);
  EXPECT_EQ(a.contig_stats.total_length, b.contig_stats.total_length);
}

// Forks a child that runs the pipeline with checkpointing and SIGKILLs
// itself the instant the snapshot for `kill_after_stage` is durable —
// the hardest crash there is: no stack unwinding, no flushes. Then
// resumes in-process and compares against the golden uninterrupted run.
void kill_and_resume(std::size_t kill_threads, std::size_t resume_threads,
                     std::uint32_t kill_after_stage,
                     std::size_t devices = 1) {
  const auto reads = workload_reads();
  const std::string dir =
      fresh_dir("kill_s" + std::to_string(kill_after_stage) + "_t" +
                std::to_string(kill_threads) + "_" +
                std::to_string(resume_threads) + "_d" +
                std::to_string(devices));

  // Golden: uninterrupted, no checkpointing at all. The fingerprint pins
  // the device count (sharding changes what a snapshot means), so the
  // golden run shards the same way.
  PipelineOptions golden_opt = base_options(resume_threads);
  golden_opt.devices = devices;
  dram::Device golden_dev(pipeline_geometry());
  const auto golden = run_pipeline(golden_dev, reads, golden_opt);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: die the moment the target stage's checkpoint hits disk.
    PipelineOptions opt = base_options(kill_threads);
    opt.devices = devices;
    opt.checkpoint_dir = dir;
    opt.on_checkpoint = [&](std::uint32_t stage, const std::string&) {
      if (stage == kill_after_stage) raise(SIGKILL);
    };
    try {
      dram::Device dev(pipeline_geometry());
      (void)run_pipeline(dev, reads, opt);
    } catch (...) {
    }
    _exit(42);  // reaching here means the kill never fired
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of dying";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // Resume — possibly at a different thread count than the killed run; the
  // runtime's determinism contract makes that legal.
  PipelineOptions opt = base_options(resume_threads);
  opt.devices = devices;
  opt.checkpoint_dir = dir;
  opt.resume = true;
  dram::Device dev(pipeline_geometry());
  const auto resumed = run_pipeline(dev, reads, opt);
  expect_bit_identical(resumed, golden);
  fs::remove_all(dir);
}

TEST(Resilience, KillAfterStage1ResumesBitIdenticalSerial) {
  kill_and_resume(/*kill_threads=*/1, /*resume_threads=*/1, 1);
}

TEST(Resilience, KillAfterStage1ResumesBitIdenticalParallel) {
  kill_and_resume(/*kill_threads=*/4, /*resume_threads=*/4, 1);
}

TEST(Resilience, KillAfterStage2ResumesAcrossThreadCounts) {
  // Checkpointed at 4 channels, resumed at 1 — the fingerprint
  // deliberately excludes the channel count.
  kill_and_resume(/*kill_threads=*/4, /*resume_threads=*/1, 2);
}

TEST(Resilience, KillShardedRunResumesAcrossThreadCounts) {
  // A 4-device sharded run killed after stage 1 and resumed at a
  // different per-device channel count: devices are pinned by the
  // fingerprint, threads are not, and the resumed output must still be
  // bit-identical to the uninterrupted sharded run.
  kill_and_resume(/*kill_threads=*/2, /*resume_threads=*/1, 1,
                  /*devices=*/4);
}

TEST(Resilience, ResumeWithMismatchedDevicesRejected) {
  // The device count changes snapshot meaning (owner_of partitions the
  // flat space), so resuming a 4-device checkpoint on 1 device must be
  // refused as corrupt configuration, not silently re-sharded.
  const auto reads = workload_reads();
  const std::string dir = fresh_dir("mismatch_devices");
  {
    PipelineOptions opt = base_options(1);
    opt.devices = 4;
    opt.checkpoint_dir = dir;
    dram::Device dev(pipeline_geometry());
    (void)run_pipeline(dev, reads, opt);
  }
  PipelineOptions other = base_options(1);
  other.devices = 1;  // not the checkpointed run's device count
  other.checkpoint_dir = dir;
  other.resume = true;
  dram::Device dev(pipeline_geometry());
  EXPECT_THROW((void)run_pipeline(dev, reads, other), CorruptCheckpointError);
  fs::remove_all(dir);
}

TEST(Resilience, ResumeFromEveryStageBoundaryMatchesGolden) {
  // No crash needed: capture the snapshot after each stage, then re-run
  // from each one and demand the golden result every time.
  const auto reads = workload_reads();
  const std::string dir = fresh_dir("stagewise");

  dram::Device golden_dev(pipeline_geometry());
  const auto golden = run_pipeline(golden_dev, reads, base_options(1));

  PipelineOptions record = base_options(1);
  record.checkpoint_dir = dir;
  record.on_checkpoint = [&](std::uint32_t stage, const std::string& path) {
    fs::copy_file(path, dir + "/stage" + std::to_string(stage) + ".ckpt",
                  fs::copy_options::overwrite_existing);
  };
  dram::Device record_dev(pipeline_geometry());
  const auto recorded = run_pipeline(record_dev, reads, record);
  expect_bit_identical(recorded, golden);  // checkpointing is observation-free

  for (std::uint32_t stage : {1u, 2u, 3u}) {
    fs::copy_file(dir + "/stage" + std::to_string(stage) + ".ckpt",
                  dir + "/pipeline.ckpt",
                  fs::copy_options::overwrite_existing);
    PipelineOptions resume = base_options(1);
    resume.checkpoint_dir = dir;
    resume.resume = true;
    dram::Device dev(pipeline_geometry());
    const auto resumed = run_pipeline(dev, reads, resume);
    expect_bit_identical(resumed, golden);
  }
  fs::remove_all(dir);
}

TEST(Resilience, ResumeWithoutSnapshotStartsFresh) {
  const auto reads = workload_reads();
  const std::string dir = fresh_dir("fresh");
  dram::Device golden_dev(pipeline_geometry());
  const auto golden = run_pipeline(golden_dev, reads, base_options(1));

  PipelineOptions opt = base_options(1);
  opt.checkpoint_dir = dir;
  opt.resume = true;  // nothing to resume from — must simply run
  dram::Device dev(pipeline_geometry());
  expect_bit_identical(run_pipeline(dev, reads, opt), golden);
  fs::remove_all(dir);
}

TEST(Resilience, ResumeWithMismatchedConfigRejected) {
  const auto reads = workload_reads();
  const std::string dir = fresh_dir("mismatch");
  {
    PipelineOptions opt = base_options(1);
    opt.checkpoint_dir = dir;
    dram::Device dev(pipeline_geometry());
    (void)run_pipeline(dev, reads, opt);
  }
  PipelineOptions other = base_options(1);
  other.k = 17;  // not the checkpointed run's k
  other.checkpoint_dir = dir;
  other.resume = true;
  dram::Device dev(pipeline_geometry());
  EXPECT_THROW((void)run_pipeline(dev, reads, other), CorruptCheckpointError);
  fs::remove_all(dir);
}

TEST(Resilience, ResumeWithFaultInjectionRefused) {
  // Fault streams' RNG positions are not checkpointed, so a faulty run can
  // never resume bit-identically — it must refuse loudly, not drift.
  const auto reads = workload_reads();
  const std::string dir = fresh_dir("faulty");
  PipelineOptions opt = base_options(1);
  opt.checkpoint_dir = dir;
  opt.resume = true;
  opt.fault.variation = 0.10;
  opt.recovery.mode = runtime::RecoveryMode::kRetry;
  dram::Device dev(pipeline_geometry());
  EXPECT_THROW((void)run_pipeline(dev, reads, opt), SimulationError);
  fs::remove_all(dir);
}

TEST(Resilience, FaultFreeRecoveryModeStillCheckpoints) {
  // recovery != off with faults off draws no randomness, so checkpointed
  // overhead-measurement runs stay resumable.
  const auto reads = workload_reads();
  const std::string dir = fresh_dir("recovery_on");
  PipelineOptions opt = base_options(1);
  opt.recovery.mode = runtime::RecoveryMode::kRetry;
  dram::Device golden_dev(pipeline_geometry());
  const auto golden = run_pipeline(golden_dev, reads, opt);

  PipelineOptions record = opt;
  record.checkpoint_dir = dir;
  record.on_checkpoint = [&](std::uint32_t stage, const std::string&) {
    if (stage == 1) raise(SIGKILL);  // replaced by fork below
  };
  // Run the interrupted half in a child so SIGKILL cannot take the test
  // runner down with it.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    try {
      dram::Device dev(pipeline_geometry());
      (void)run_pipeline(dev, reads, record);
    } catch (...) {
    }
    _exit(42);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

  PipelineOptions resume = opt;
  resume.checkpoint_dir = dir;
  resume.resume = true;
  dram::Device dev(pipeline_geometry());
  expect_bit_identical(run_pipeline(dev, reads, resume), golden);
  fs::remove_all(dir);
}

TEST(Resilience, PipelineWatchdogQuiescentOnHealthyRun) {
  // PipelineOptions::stall_timeout_ms arms the engine watchdog (the
  // stall-detection path itself is exercised in test_runtime); an armed
  // watchdog over a healthy run must change nothing.
  const auto reads = workload_reads();
  PipelineOptions opt = base_options(4);
  opt.stall_timeout_ms = 10000.0;  // generous: healthy tasks finish in µs
  dram::Device dev(pipeline_geometry());
  const auto result = run_pipeline(dev, reads, opt);
  dram::Device ref_dev(pipeline_geometry());
  expect_bit_identical(result, run_pipeline(ref_dev, reads, base_options(4)));
}

}  // namespace
}  // namespace pima::core
