#include "assembly/spectrum.hpp"

#include <gtest/gtest.h>

#include "assembly/assembler.hpp"
#include "dna/genome.hpp"

namespace pima::assembly {
namespace {

TEST(Spectrum, HistogramCountsExactly) {
  // Fig. 5b table: CGTGC:2, five others:1.
  const auto s = dna::Sequence::from_string("CGTGCGTGCTT");
  const auto spec = compute_spectrum(build_hashmap({s}, 5));
  EXPECT_EQ(spec.count_at(1), 5u);
  EXPECT_EQ(spec.count_at(2), 1u);
  EXPECT_EQ(spec.count_at(3), 0u);
  EXPECT_EQ(spec.distinct_kmers, 6u);
  EXPECT_EQ(spec.total_kmers, 7u);
}

TEST(Spectrum, TailAggregates) {
  KmerCounter c(16);
  const auto seq = dna::Sequence::from_string("ACGTA");
  const auto km = Kmer::from_sequence(seq, 0, 5);
  for (int i = 0; i < 10; ++i) c.insert_or_increment(km);
  const auto spec = compute_spectrum(c, 4);
  EXPECT_EQ(spec.count_at(4), 1u);  // 10 clamps into the last bin
  EXPECT_EQ(spec.total_kmers, 10u);
}

TEST(Spectrum, MaxFreqValidated) {
  KmerCounter c(4);
  EXPECT_THROW(compute_spectrum(c, 1), pima::PreconditionError);
}

TEST(Spectrum, EmptyAnalysisIsBenign) {
  KmerCounter c(4);
  const auto a = analyze_spectrum(compute_spectrum(c));
  EXPECT_EQ(a.error_cutoff, 1u);
  EXPECT_EQ(a.genome_size_estimate, 0.0);
}

TEST(Spectrum, CleanReadsHaveCoveragePeak) {
  dna::GenomeParams gp;
  gp.length = 5000;
  gp.repeat_count = 0;
  const auto genome = dna::generate_genome(gp);
  dna::ReadSamplerParams rp;
  rp.coverage = 20.0;
  rp.read_length = 100;
  const auto reads = dna::sample_reads(genome, rp);
  const auto spec = compute_spectrum(build_hashmap(reads, 21), 64);
  const auto a = analyze_spectrum(spec);
  // k-mer coverage ≈ base coverage × (1 − (k−1)/L) = 20 × 0.8 = 16.
  EXPECT_NEAR(a.coverage_peak, 16.0, 4.0);
  EXPECT_NEAR(a.genome_size_estimate, 5000.0, 1000.0);
}

TEST(Spectrum, ErroredReadsShowValleyAndCutoff) {
  dna::GenomeParams gp;
  gp.length = 5000;
  gp.repeat_count = 0;
  const auto genome = dna::generate_genome(gp);
  dna::ReadSamplerParams rp;
  rp.coverage = 30.0;
  rp.read_length = 100;
  rp.error_rate = 0.01;
  const auto reads = dna::sample_reads(genome, rp);
  const auto spec = compute_spectrum(build_hashmap(reads, 21), 64);
  const auto a = analyze_spectrum(spec);
  // Error k-mers pile up at f=1..2; the cutoff must separate them.
  EXPECT_GT(a.error_cutoff, 1u);
  EXPECT_LT(a.error_cutoff, 10u);
  EXPECT_GT(a.coverage_peak, a.error_cutoff);
  EXPECT_GT(a.error_kmer_fraction, 0.3);  // errors dominate distinct kmers
  EXPECT_NEAR(a.genome_size_estimate, 5000.0, 1500.0);
}

TEST(Spectrum, CutoffFeedsAssemblyFilter) {
  // The analysis output plugs directly into AssemblyOptions::min_kmer_freq
  // and the resulting assembly verifies.
  dna::GenomeParams gp;
  gp.length = 3000;
  gp.repeat_count = 0;
  gp.seed = 5;
  const auto genome = dna::generate_genome(gp);
  dna::ReadSamplerParams rp;
  rp.coverage = 30.0;
  rp.read_length = 90;
  rp.error_rate = 0.005;
  const auto reads = dna::sample_reads(genome, rp);

  const auto a =
      analyze_spectrum(compute_spectrum(build_hashmap(reads, 21), 64));
  ASSERT_GT(a.error_cutoff, 1u);
  AssemblyOptions opt;
  opt.k = 21;
  opt.min_kmer_freq = a.error_cutoff;
  opt.euler_contigs = false;
  const auto result = assemble(reads, opt);
  EXPECT_GT(result.stats.n50, 500u);
}

}  // namespace
}  // namespace pima::assembly
