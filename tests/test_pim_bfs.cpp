#include "core/pim_bfs.hpp"

#include <gtest/gtest.h>

#include <queue>

#include "common/rng.hpp"
#include "dram/device.hpp"

namespace pima::core {
namespace {

dram::Geometry bfs_geometry() {
  dram::Geometry g;
  g.rows = 128;
  g.compute_rows = 8;
  g.columns = 64;
  return g;
}

std::vector<BitVector> adjacency_of(
    std::size_t n, const std::vector<std::pair<std::size_t, std::size_t>>& edges,
    std::size_t width = 64) {
  std::vector<BitVector> adj(n, BitVector(width));
  for (const auto& [u, v] : edges) adj[u].set(v, true);
  return adj;
}

std::vector<bool> software_bfs(const std::vector<BitVector>& adj,
                               std::size_t start) {
  std::vector<bool> seen(adj.size(), false);
  std::queue<std::size_t> q;
  q.push(start);
  seen[start] = true;
  while (!q.empty()) {
    const auto u = q.front();
    q.pop();
    for (std::size_t v = 0; v < adj.size(); ++v)
      if (adj[u].get(v) && !seen[v]) {
        seen[v] = true;
        q.push(v);
      }
  }
  return seen;
}

TEST(PimBfs, ChainReachability) {
  // 0 → 1 → 2 → 3; 4 isolated.
  const auto adj = adjacency_of(5, {{0, 1}, {1, 2}, {2, 3}});
  dram::Device dev(bfs_geometry());
  const auto r = pim_reachability(dev.subarray(0), adj, 0);
  EXPECT_EQ(r.reachable, (std::vector<bool>{true, true, true, true, false}));
  EXPECT_GE(r.levels, 3u);
}

TEST(PimBfs, DirectionMatters) {
  const auto adj = adjacency_of(3, {{0, 1}, {1, 2}});
  dram::Device dev(bfs_geometry());
  const auto from_end = pim_reachability(dev.subarray(0), adj, 2);
  EXPECT_EQ(from_end.reachable, (std::vector<bool>{false, false, true}));
}

TEST(PimBfs, CycleTerminates) {
  const auto adj = adjacency_of(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  dram::Device dev(bfs_geometry());
  const auto r = pim_reachability(dev.subarray(0), adj, 0);
  EXPECT_EQ(r.reachable, (std::vector<bool>{true, true, true, true}));
  EXPECT_LE(r.levels, 5u);  // fixed point, no infinite loop
}

TEST(PimBfs, SelfLoopHandled) {
  const auto adj = adjacency_of(2, {{0, 0}, {0, 1}});
  dram::Device dev(bfs_geometry());
  const auto r = pim_reachability(dev.subarray(0), adj, 0);
  EXPECT_EQ(r.reachable, (std::vector<bool>{true, true}));
}

TEST(PimBfs, MatchesSoftwareOnRandomGraphs) {
  Rng rng(404);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 8 + rng.uniform(40);
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    const std::size_t m = n + rng.uniform(2 * n);
    for (std::size_t e = 0; e < m; ++e)
      edges.emplace_back(rng.uniform(n), rng.uniform(n));
    const auto adj = adjacency_of(n, edges);
    const std::size_t start = rng.uniform(n);

    dram::Device dev(bfs_geometry());
    const auto pim = pim_reachability(dev.subarray(0), adj, start);
    EXPECT_EQ(pim.reachable, software_bfs(adj, start)) << "trial " << trial;
  }
}

TEST(PimBfs, ComponentsPartitionVertices) {
  // Two triangles and one isolated vertex → 3 components.
  const auto adj = adjacency_of(
      7, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  dram::Device dev(bfs_geometry());
  const auto comp = pim_components(dev.subarray(0), adj);
  ASSERT_EQ(comp.size(), 7u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[6], comp[0]);
  EXPECT_NE(comp[6], comp[3]);
}

TEST(PimBfs, ComponentsIgnoreEdgeDirection) {
  // 0→1 and 2→1: weakly connected as one component.
  const auto adj = adjacency_of(3, {{0, 1}, {2, 1}});
  dram::Device dev(bfs_geometry());
  const auto comp = pim_components(dev.subarray(0), adj);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
}

TEST(PimBfs, CommandsAreCosted) {
  const auto adj = adjacency_of(4, {{0, 1}, {1, 2}, {2, 3}});
  dram::Device dev(bfs_geometry());
  dev.clear_stats();
  pim_reachability(dev.subarray(0), adj, 0);
  const auto stats = dev.roll_up();
  EXPECT_GT(stats.commands, 10u);
  // TRA is the OR workhorse.
  EXPECT_GT(dev.subarray(0).stats().counts[static_cast<std::size_t>(
                dram::CommandKind::kAapTra)],
            3u);
}

TEST(PimBfs, ValidatesInput) {
  dram::Device dev(bfs_geometry());
  EXPECT_THROW(pim_reachability(dev.subarray(0), {}, 0),
               pima::PreconditionError);
  const auto adj = adjacency_of(3, {});
  EXPECT_THROW(pim_reachability(dev.subarray(0), adj, 3),
               pima::PreconditionError);
  const auto wide = adjacency_of(65, {});
  EXPECT_THROW(pim_reachability(dev.subarray(0), wide, 0),
               pima::PreconditionError);
}

}  // namespace
}  // namespace pima::core
