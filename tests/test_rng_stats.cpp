#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace pima {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(13), 13u);
}

TEST(Rng, UniformZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(0), PreconditionError);
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(11);
  std::size_t counts[8] = {};
  constexpr int kN = 80000;
  for (int i = 0; i < kN; ++i) ++counts[rng.uniform(8)];
  for (const auto c : counts) {
    EXPECT_GT(c, kN / 8 * 0.9);
    EXPECT_LT(c, kN / 8 * 1.1);
  }
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform_real();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, GaussianMomentsMatch) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.stddev(), 1.0, 0.03);
}

TEST(Rng, ScaledGaussian) {
  Rng rng(9);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.gaussian(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 50000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.02);
}

TEST(Rng, ForkIsIndependentAndStable) {
  Rng base(21);
  Rng f1 = base.fork(0);
  Rng f2 = base.fork(1);
  Rng f1_again = base.fork(0);
  EXPECT_EQ(f1(), f1_again());
  EXPECT_NE(f1(), f2());
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-5.0);   // clamps into first bin
  h.add(100.0);  // clamps into last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(9), 10.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 10.0, 0), PreconditionError);
  EXPECT_THROW(Histogram(5.0, 5.0, 4), PreconditionError);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1);
  h.add(0.9);
  h.add(0.95);
  const auto text = h.render(10);
  EXPECT_NE(text.find(" 1\n"), std::string::npos);
  EXPECT_NE(text.find(" 2\n"), std::string::npos);
}

TEST(GeometricMean, KnownValuesAndErrors) {
  EXPECT_NEAR(geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geometric_mean({2.0, 2.0, 2.0}), 2.0, 1e-12);
  EXPECT_THROW(geometric_mean({}), PreconditionError);
  EXPECT_THROW(geometric_mean({1.0, -1.0}), PreconditionError);
}

}  // namespace
}  // namespace pima
