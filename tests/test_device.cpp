#include "dram/device.hpp"

#include <gtest/gtest.h>

namespace pima::dram {
namespace {

Geometry small() {
  Geometry g;
  g.rows = 32;
  g.compute_rows = 8;
  g.columns = 64;
  g.subarrays_per_mat = 2;
  g.mats_per_bank = 2;
  g.banks = 2;
  return g;
}

TEST(Geometry, DerivedCounts) {
  const auto g = small();
  EXPECT_EQ(g.data_rows(), 24u);
  EXPECT_EQ(g.subarrays_per_bank(), 4u);
  EXPECT_EQ(g.total_subarrays(), 8u);
  EXPECT_EQ(g.row_bits(), 64u);
}

TEST(Geometry, PaperDefaults) {
  const Geometry g;
  EXPECT_EQ(g.rows, 1024u);         // paper §II.A
  EXPECT_EQ(g.data_rows(), 1016u);  // 1016 data + 8 compute
  EXPECT_EQ(g.columns, 256u);
  EXPECT_EQ(g.banks, 8u);
}

TEST(Geometry, ValidationCatchesBadShapes) {
  Geometry g = small();
  g.compute_rows = 2;  // too few for TRA + scratch
  EXPECT_THROW(g.validate(), pima::PreconditionError);
  g = small();
  g.rows = g.compute_rows;
  EXPECT_THROW(g.validate(), pima::PreconditionError);
}

TEST(Geometry, FlatIndexBijective) {
  const auto g = small();
  std::vector<bool> seen(g.total_subarrays(), false);
  for (std::size_t b = 0; b < g.banks; ++b)
    for (std::size_t m = 0; m < g.mats_per_bank; ++m)
      for (std::size_t s = 0; s < g.subarrays_per_mat; ++s) {
        const auto idx = flat_index(g, {b, m, s});
        ASSERT_LT(idx, seen.size());
        EXPECT_FALSE(seen[idx]);
        seen[idx] = true;
      }
  EXPECT_THROW(flat_index(g, {2, 0, 0}), pima::PreconditionError);
}

TEST(Device, LazyInstantiation) {
  Device dev(small());
  EXPECT_EQ(dev.instantiated_count(), 0u);
  dev.subarray(3);
  dev.subarray(SubarrayId{1, 1, 1});
  EXPECT_EQ(dev.instantiated_count(), 2u);
  EXPECT_EQ(dev.subarray_if(0), nullptr);
  EXPECT_NE(dev.subarray_if(3), nullptr);
  EXPECT_THROW(dev.subarray(8), pima::PreconditionError);
}

TEST(Device, RollUpParallelismSemantics) {
  Device dev(small());
  // Two sub-arrays each do one copy: time = max (parallel), energy = sum.
  dev.subarray(0).aap_copy(0, 1);
  dev.subarray(1).aap_copy(0, 1);
  const auto s = dev.roll_up();
  EXPECT_EQ(s.subarrays_used, 2u);
  EXPECT_EQ(s.commands, 2u);
  const double aap = circuit::default_technology().timing.aap_ns();
  EXPECT_DOUBLE_EQ(s.time_ns, aap);
  EXPECT_DOUBLE_EQ(s.serial_ns, 2.0 * aap);
  EXPECT_GT(s.energy_pj, 0.0);
}

TEST(Device, SerialCommandsAccumulateOnOneSubarray) {
  Device dev(small());
  dev.subarray(0).aap_copy(0, 1);
  dev.subarray(0).aap_copy(1, 2);
  const auto s = dev.roll_up();
  const double aap = circuit::default_technology().timing.aap_ns();
  EXPECT_DOUBLE_EQ(s.time_ns, 2.0 * aap);
  EXPECT_EQ(s.subarrays_used, 1u);
}

TEST(Device, ClearStatsPreservesContents) {
  Device dev(small());
  BitVector bits(64);
  bits.set(5, true);
  dev.subarray(0).write_row(3, bits);
  dev.clear_stats();
  EXPECT_EQ(dev.roll_up().commands, 0u);
  EXPECT_EQ(dev.subarray(0).peek_row(3), bits);
}

TEST(DeviceStats, DynamicPower) {
  DeviceStats s;
  s.energy_pj = 1000.0;  // 1e-9 J over 1e-8 s = 0.1 W
  s.time_ns = 10.0;
  EXPECT_DOUBLE_EQ(s.dynamic_power_w(), 0.1);
  s.time_ns = 0.0;
  EXPECT_DOUBLE_EQ(s.dynamic_power_w(), 0.0);
}

}  // namespace
}  // namespace pima::dram
