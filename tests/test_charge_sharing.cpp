#include "circuit/charge_sharing.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/error.hpp"

namespace pima::circuit {
namespace {

TEST(ChargeSharing, MonotoneInOnesCount) {
  const TechParams tech{};
  double prev = -1.0;
  for (int n = 0; n <= 3; ++n) {
    const auto r = share_nominal(tech, 3, n);
    EXPECT_GT(r.v_bl, prev);
    prev = r.v_bl;
  }
}

TEST(ChargeSharing, MidpointIsHalfVdd) {
  const TechParams tech{};
  // One '1' of two cells: symmetric around the precharge level.
  EXPECT_NEAR(share_nominal(tech, 2, 1).v_bl_frac, 0.5, 1e-12);
}

TEST(ChargeSharing, TwoRowLevelsSymmetric) {
  const TechParams tech{};
  const double v0 = share_nominal(tech, 2, 0).v_bl_frac;
  const double v2 = share_nominal(tech, 2, 2).v_bl_frac;
  EXPECT_NEAR(v0 + v2, 1.0, 1e-12);
}

TEST(ChargeSharing, TraMajorityPointIsHalfVdd) {
  const TechParams tech{};
  const double v1 = share_nominal(tech, 3, 1).v_bl_frac;
  const double v2 = share_nominal(tech, 3, 2).v_bl_frac;
  EXPECT_NEAR((v1 + v2) / 2.0, 0.5, 1e-12);
}

TEST(ChargeSharing, PaperLimitWithoutBitline) {
  // With C_bl → 0 the paper's Vi = n·Vdd/C expression must emerge.
  TechParams tech{};
  tech.bitline_cap_ff = 1e-9;
  for (int n = 0; n <= 2; ++n)
    EXPECT_NEAR(share_nominal(tech, 2, n).v_bl_frac, n / 2.0, 1e-6);
  for (int n = 0; n <= 3; ++n)
    EXPECT_NEAR(share_nominal(tech, 3, n).v_bl_frac, n / 3.0, 1e-6);
}

TEST(ChargeSharing, TraMarginSmallerThanTwoRow) {
  // The structural reason two-row activation tolerates more variation
  // (paper Table I): adjacent-level separation shrinks with more cells.
  const TechParams tech{};
  const double sep2 = share_nominal(tech, 2, 1).v_bl -
                      share_nominal(tech, 2, 0).v_bl;
  const double sep3 = share_nominal(tech, 3, 1).v_bl -
                      share_nominal(tech, 3, 0).v_bl;
  EXPECT_GT(sep2, sep3);
}

TEST(ChargeSharing, InvalidArgumentsThrow) {
  const TechParams tech{};
  EXPECT_THROW(share_nominal(tech, 0, 0), PreconditionError);
  EXPECT_THROW(share_nominal(tech, 2, 3), PreconditionError);
  EXPECT_THROW(share_nominal(tech, 2, -1), PreconditionError);
}

TEST(ChargeSharing, VariedMatchesNominalWhenUniform) {
  const TechParams tech{};
  const std::vector<double> caps(2, tech.cell_cap_ff);
  const std::array<bool, 2> vals{true, false};
  const auto varied = share_varied(tech.vdd, tech.bitline_cap_ff,
                                   std::span(caps), std::span(vals));
  EXPECT_NEAR(varied.v_bl, share_nominal(tech, 2, 1).v_bl, 1e-12);
}

TEST(ChargeSharing, VariedRespondsToCapMismatch) {
  const TechParams tech{};
  const std::vector<double> heavy{tech.cell_cap_ff * 1.5, tech.cell_cap_ff};
  const std::array<bool, 2> vals{true, false};
  const auto r = share_varied(tech.vdd, tech.bitline_cap_ff,
                              std::span(heavy), std::span(vals));
  // The '1' cell is bigger, so the level rises above nominal.
  EXPECT_GT(r.v_bl, share_nominal(tech, 2, 1).v_bl);
}

TEST(ChargeSharing, VariedValidatesSpans) {
  const std::vector<double> caps{22.0};
  const std::array<bool, 2> vals{true, false};
  EXPECT_THROW(share_varied(1.2, 85.0, std::span(caps), std::span(vals)),
               PreconditionError);
}

TEST(InverterOut, ThresholdDecision) {
  EXPECT_TRUE(inverter_out(0.2, 0.5));
  EXPECT_FALSE(inverter_out(0.8, 0.5));
  EXPECT_TRUE(inverter_out(0.5, 0.5));  // boundary: at/below → high
}

}  // namespace
}  // namespace pima::circuit
