#include "assembly/euler.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "dna/genome.hpp"

namespace pima::assembly {
namespace {

DeBruijnGraph graph_of(const std::vector<std::string>& reads, std::size_t k,
                       bool multiplicity = false) {
  std::vector<dna::Sequence> seqs;
  for (const auto& r : reads) seqs.push_back(dna::Sequence::from_string(r));
  return DeBruijnGraph::from_counter(build_hashmap(seqs, k), multiplicity);
}

std::uint64_t covered_instances(const DeBruijnGraph& g,
                                const std::vector<EdgeWalk>& walks) {
  std::uint64_t n = 0;
  for (const auto& w : walks) n += w.size();
  return n;
}

class EulerAlgo : public ::testing::TestWithParam<TraversalAlgorithm> {};

TEST_P(EulerAlgo, LinearSequenceYieldsOneWalk) {
  const auto g = graph_of({"ACGGTCAGGTTT"}, 4);
  const auto walks = euler_walks(g, GetParam());
  ASSERT_EQ(walks.size(), 1u);
  EXPECT_TRUE(is_valid_trail(g, walks[0]));
  EXPECT_EQ(walks[0].size(), g.edge_instances());
  // The single walk spells the original sequence back.
  EXPECT_EQ(spell_walk(g, walks[0]).to_string(), "ACGGTCAGGTTT");
}

TEST_P(EulerAlgo, CoversEveryEdgeInstanceExactlyOnce) {
  const auto g = graph_of({"CGTGCTTACGG", "CGTGCTTAGG"}, 4);
  const auto walks = euler_walks(g, GetParam());
  EXPECT_EQ(covered_instances(g, walks), g.edge_instances());
  std::vector<std::uint32_t> used(g.edge_count(), 0);
  for (const auto& w : walks) {
    EXPECT_TRUE(is_valid_trail(g, w));
    for (const auto e : w) ++used[e];
  }
  for (std::size_t e = 0; e < g.edge_count(); ++e)
    EXPECT_EQ(used[e], g.edge(e).multiplicity);
}

TEST_P(EulerAlgo, MultiplicityAwareTraversal) {
  // CGTGCGTGCTT revisits CGTG: the Euler walk over multiplicities must
  // reconstruct the full 11-base sequence.
  const auto g = graph_of({"CGTGCGTGCTT"}, 5, /*multiplicity=*/true);
  const auto walks = euler_walks(g, GetParam());
  ASSERT_EQ(walks.size(), 1u);
  EXPECT_EQ(spell_walk(g, walks[0]).to_string(), "CGTGCGTGCTT");
}

TEST_P(EulerAlgo, EulerianCycleHandled) {
  // Circular sequence: every node balanced ⇒ one closed walk.
  const auto g = graph_of({"ACGTGGCAACG"}, 3);  // starts/ends with ACG...
  const auto walks = euler_walks(g, GetParam());
  EXPECT_EQ(covered_instances(g, walks), g.edge_instances());
  for (const auto& w : walks) EXPECT_TRUE(is_valid_trail(g, w));
}

TEST_P(EulerAlgo, DisconnectedComponentsGetSeparateWalks) {
  const auto g = graph_of({"AAAACCCC", "GGTGTGTT"}, 5);
  const auto walks = euler_walks(g, GetParam());
  EXPECT_GE(walks.size(), 2u);
  EXPECT_EQ(covered_instances(g, walks), g.edge_instances());
}

TEST_P(EulerAlgo, RandomGenomeFullCoverage) {
  dna::GenomeParams gp;
  gp.length = 1500;
  gp.repeat_count = 3;
  gp.repeat_length = 60;
  const auto genome = dna::generate_genome(gp);
  dna::ReadSamplerParams rp;
  rp.coverage = 10.0;
  rp.read_length = 75;
  const auto reads = dna::sample_reads(genome, rp);
  const auto g = DeBruijnGraph::from_counter(build_hashmap(reads, 15));
  const auto walks = euler_walks(g, GetParam());
  EXPECT_EQ(covered_instances(g, walks), g.edge_instances());
  for (const auto& w : walks) EXPECT_TRUE(is_valid_trail(g, w));
}

INSTANTIATE_TEST_SUITE_P(BothAlgorithms, EulerAlgo,
                         ::testing::Values(TraversalAlgorithm::kHierholzer,
                                           TraversalAlgorithm::kFleury));

TEST(Euler, HierholzerAndFleuryAgreeOnEdgeMultisets) {
  // The two algorithms may order walks differently but must cover the
  // same multiset of edges (the paper names Fleury; we default to
  // Hierholzer — this is the equivalence that justifies the swap).
  const auto g = graph_of({"CGTGCGTGCTTACGGATTAGCGT"}, 5, true);
  const auto h = euler_walks(g, TraversalAlgorithm::kHierholzer);
  const auto f = euler_walks(g, TraversalAlgorithm::kFleury);
  auto edge_multiset = [&](const std::vector<EdgeWalk>& walks) {
    std::vector<std::uint32_t> all;
    for (const auto& w : walks) all.insert(all.end(), w.begin(), w.end());
    std::sort(all.begin(), all.end());
    return all;
  };
  EXPECT_EQ(edge_multiset(h), edge_multiset(f));
}

TEST(Euler, SpellWalkValidation) {
  const auto g = graph_of({"ACGGT"}, 4);
  EXPECT_THROW(spell_walk(g, {}), pima::PreconditionError);
}

TEST(Euler, IsValidTrailRejectsBadWalks) {
  const auto g = graph_of({"ACGGTCA"}, 4);  // linear chain of 4 edges
  const auto walks = euler_walks(g);
  ASSERT_EQ(walks.size(), 1u);
  auto walk = walks[0];
  ASSERT_GE(walk.size(), 2u);
  // Duplicated edge exceeds multiplicity.
  EdgeWalk dup = {walk[0], walk[0]};
  EXPECT_FALSE(is_valid_trail(g, dup));
  // Discontinuous trail.
  EdgeWalk skip = {walk[0], walk[2]};
  EXPECT_FALSE(is_valid_trail(g, skip));
  // Out-of-range edge id.
  EXPECT_FALSE(is_valid_trail(g, {static_cast<std::uint32_t>(
                                     g.edge_count())}));
  EXPECT_TRUE(is_valid_trail(g, {}));
}

}  // namespace
}  // namespace pima::assembly
