// Chaos suite for the I/O and service plane (DESIGN.md §13): the fsio
// fault-injection layer itself (grammar, determinism, passthrough), the
// hardened persistence paths under injected ENOSPC/EIO/torn-write crash
// points (old-or-new, never corrupt), EINTR storms and peer hangups on the
// wire, client deadlines (exit code 9), and the idempotent-submit dedupe
// protocol across daemon restarts.
//
// Crash-point tests fork: the child installs a FaultPlan whose `crash`
// action lands half a write and _exit(86)s, the parent asserts the
// survivor state is recoverable and the resumed output bit-identical to an
// uninterrupted golden run. NOT ThreadSanitizer-safe (fork + threads);
// test_chaos is deliberately absent from the CI tsan job.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/error.hpp"
#include "common/fsio.hpp"
#include "core/pipeline.hpp"
#include "dna/fasta.hpp"
#include "dna/genome.hpp"
#include "dram/device.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/job.hpp"
#include "service/json.hpp"
#include "service/socket.hpp"

namespace pima {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Every test runs with a clean process-wide plan and counters; a test
/// that installs a plan cannot leak it into the next.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fsio::clear_plan();
    fsio::reset_counters();
  }
  void TearDown() override {
    fsio::clear_plan();
    fsio::reset_counters();
  }
};

// ------------------------------------------------- FaultPlan grammar ----

TEST_F(ChaosTest, GrammarParsesSeedAndRules) {
  const auto plan = fsio::FaultPlan::parse(
      "seed=7;write@checkpoint:nth=3:errno=ENOSPC;"
      "send@wire:p=0.25:errno=EPIPE;read:nth=5:eintr=3;"
      "rename@job.json:nth=1:crash;*:p=0.001:short");
  EXPECT_EQ(plan.seed(), 7u);
  EXPECT_EQ(plan.rule_count(), 5u);
}

TEST_F(ChaosTest, GrammarRejectsMalformedSpecsTyped) {
  for (const char* bad :
       {"write", "write:nth=3", "write:nth=3:errno=EWHAT",
        "write:sometimes:errno=EIO", "flush:nth=1:errno=EIO",
        "write:nth=0:errno=EIO", "write:p=1.5:errno=EIO",
        "write:nth=1:explode", "seed=;write:always:short", ";;"}) {
    EXPECT_THROW((void)fsio::FaultPlan::parse(bad), InputFormatError)
        << "spec not rejected: " << bad;
  }
  // The thrown message names PIMA_IOFAULT so a bad env var is diagnosable.
  try {
    (void)fsio::FaultPlan::parse("write:nth=1:errno=EWHAT");
    FAIL() << "expected InputFormatError";
  } catch (const InputFormatError& e) {
    EXPECT_NE(std::string(e.what()).find("PIMA_IOFAULT"), std::string::npos);
  }
}

TEST_F(ChaosTest, NthTriggerFiresExactlyOnceAtSiteMatchesOnly) {
  auto plan = fsio::FaultPlan::parse("write@checkpoint:nth=2:errno=ENOSPC");
  using Kind = fsio::FaultPlan::Decision::Kind;
  // Calls at other sites or ops do not advance the trigger.
  EXPECT_EQ(plan.decide(fsio::Op::kWrite, "wire").kind, Kind::kNone);
  EXPECT_EQ(plan.decide(fsio::Op::kFsync, "checkpoint").kind, Kind::kNone);
  EXPECT_EQ(plan.decide(fsio::Op::kWrite, "checkpoint").kind, Kind::kNone);
  const auto hit = plan.decide(fsio::Op::kWrite, "checkpoint");
  EXPECT_EQ(hit.kind, Kind::kErrno);
  EXPECT_EQ(hit.err, ENOSPC);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(plan.decide(fsio::Op::kWrite, "checkpoint").kind, Kind::kNone)
        << "nth trigger fired more than once";
}

TEST_F(ChaosTest, ProbabilityTriggerIsSeedDeterministic) {
  const auto run = [](std::uint64_t seed) {
    auto plan = fsio::FaultPlan::parse("seed=" + std::to_string(seed) +
                                       ";write:p=0.3:errno=EIO");
    std::string fates;
    for (int i = 0; i < 64; ++i)
      fates += plan.decide(fsio::Op::kWrite, "x").kind ==
                       fsio::FaultPlan::Decision::Kind::kNone
                   ? '.'
                   : 'X';
    return fates;
  };
  EXPECT_EQ(run(11), run(11));  // same seed → identical schedule
  EXPECT_NE(run(11), run(12));  // different seed → different schedule
  EXPECT_NE(run(11).find('X'), std::string::npos);  // p=0.3 over 64 fires
  EXPECT_NE(run(11).find('.'), std::string::npos);  // ...but not always
}

TEST_F(ChaosTest, EintrStormDeliversExactlyKInterruptions) {
  auto plan = fsio::FaultPlan::parse("read@wire:nth=2:eintr=3");
  using Kind = fsio::FaultPlan::Decision::Kind;
  EXPECT_EQ(plan.decide(fsio::Op::kRead, "wire").kind, Kind::kNone);
  for (int i = 0; i < 3; ++i) {
    const auto d = plan.decide(fsio::Op::kRead, "wire");
    EXPECT_EQ(d.kind, Kind::kErrno);
    EXPECT_EQ(d.err, EINTR);
  }
  EXPECT_EQ(plan.decide(fsio::Op::kRead, "wire").kind, Kind::kNone);
}

TEST_F(ChaosTest, PassthroughWithNoPlanInjectsNothing) {
  ASSERT_FALSE(fsio::plan_active());
  const auto path =
      (fs::temp_directory_path() / "chaos_passthrough.txt").string();
  fsio::atomic_write_file(path, "payload", "artifact");
  EXPECT_EQ(slurp(path), "payload");
  const auto c = fsio::counters();
  EXPECT_EQ(c.injected_total, 0u);
  EXPECT_EQ(c.errno_injected, 0u);
  EXPECT_EQ(c.eintr_injected, 0u);
  EXPECT_EQ(c.short_injected, 0u);
  EXPECT_EQ(c.crash_points, 0u);
  fs::remove(path);
}

// --------------------------------------------- atomic_write_file --------

TEST_F(ChaosTest, AtomicWriteEnospcPreservesOldContentAndCleansTmp) {
  const auto path = (fs::temp_directory_path() / "chaos_enospc.txt").string();
  fsio::atomic_write_file(path, "old content", "artifact");
  fsio::install_plan(
      fsio::FaultPlan::parse("write@artifact:nth=1:errno=ENOSPC"));
  EXPECT_THROW(fsio::atomic_write_file(path, "new content", "artifact"),
               IoError);
  fsio::clear_plan();
  EXPECT_EQ(slurp(path), "old content");
  EXPECT_FALSE(fs::exists(path + ".tmp")) << "tmp file leaked";
  EXPECT_GE(fsio::counters().errno_injected, 1u);
  fs::remove(path);
}

TEST_F(ChaosTest, AtomicWriteRenameEioPreservesOldContent) {
  const auto path = (fs::temp_directory_path() / "chaos_rename.txt").string();
  fsio::atomic_write_file(path, "old content", "artifact");
  fsio::install_plan(fsio::FaultPlan::parse("rename@artifact:nth=1:errno=EIO"));
  EXPECT_THROW(fsio::atomic_write_file(path, "new content", "artifact"),
               IoError);
  fsio::clear_plan();
  EXPECT_EQ(slurp(path), "old content");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  fs::remove(path);
}

TEST_F(ChaosTest, AtomicWriteSurvivesShortWritesAndEintr) {
  const auto path = (fs::temp_directory_path() / "chaos_short.txt").string();
  const std::string content(8192, 'q');
  fsio::install_plan(fsio::FaultPlan::parse(
      "seed=3;write@artifact:p=0.5:short;fsync@artifact:nth=1:eintr=2"));
  fsio::atomic_write_file(path, content, "artifact");
  fsio::clear_plan();
  EXPECT_EQ(slurp(path), content);
  EXPECT_GE(fsio::counters().short_injected, 1u);
  EXPECT_GE(fsio::counters().eintr_injected, 1u);
  fs::remove(path);
}

TEST_F(ChaosTest, SaveJobRecordFaultLeavesOldRecordLoadable) {
  const auto dir = (fs::temp_directory_path() / "chaos_jobrec").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  service::JobRecord rec;
  rec.id = "j0007";
  rec.spec.reads_path = "/data/reads.fa";
  rec.state = service::JobState::kRunning;
  rec.stages_done = 1;
  rec.idempotency_key = "ck-test";
  service::save_job_record(dir, rec);
  rec.stages_done = 2;
  fsio::install_plan(
      fsio::FaultPlan::parse("rename@job.json:nth=1:errno=EIO"));
  EXPECT_THROW(service::save_job_record(dir, rec), IoError);
  fsio::clear_plan();
  const auto loaded = service::load_job_record(dir);
  EXPECT_EQ(loaded.stages_done, 1u) << "torn transition leaked";
  EXPECT_EQ(loaded.idempotency_key, "ck-test");
  fs::remove_all(dir);
}

// ------------------------------------------------------------ wire ------

struct SocketPair {
  int a = -1, b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST_F(ChaosTest, LineChannelSurvivesEintrStorm) {
  SocketPair sp;
  service::LineChannel writer(sp.a);
  service::LineChannel reader(sp.b);
  fsio::install_plan(fsio::FaultPlan::parse(
      "read@wire:nth=1:eintr=4;send@wire:nth=1:eintr=4"));
  writer.write_line("hello through the storm");
  std::string line;
  ASSERT_TRUE(reader.read_line(line));
  fsio::clear_plan();
  EXPECT_EQ(line, "hello through the storm");
  EXPECT_GE(fsio::counters().eintr_injected, 8u);
}

TEST_F(ChaosTest, LineChannelPeerHangupIsTypedIoError) {
  SocketPair sp;
  service::LineChannel writer(sp.a);
  fsio::install_plan(fsio::FaultPlan::parse("send@wire:nth=1:errno=EPIPE"));
  EXPECT_THROW(writer.write_line("into the void"), IoError);
}

TEST_F(ChaosTest, LineGuardRejectsOversizedLineTyped) {
  SocketPair sp;
  service::LineChannel reader(sp.b);
  // Feed just over the 64 MiB guard with no newline from a writer thread
  // (the socket buffer is far smaller than the payload).
  const std::size_t total = service::LineChannel::kMaxLineBytes + 8192;
  std::thread writer([&] {
    const std::string chunk(1 << 20, 'a');
    std::size_t sent = 0;
    while (sent < total) {
      const std::size_t n = std::min(chunk.size(), total - sent);
      ssize_t w = ::send(sp.a, chunk.data(), n, MSG_NOSIGNAL);
      if (w <= 0) break;  // reader threw and closed — done
      sent += static_cast<std::size_t>(w);
    }
  });
  std::string line;
  EXPECT_THROW((void)reader.read_line(line), IoError);
  ::close(sp.b);  // unblock the writer if it is still sending
  sp.b = -1;
  writer.join();
}

TEST_F(ChaosTest, ReadDeadlineThrowsDeadlineExceededMappedToExit9) {
  SocketPair sp;
  service::LineChannel reader(sp.b);
  reader.set_deadline(0.05);  // 50 ms; the peer never writes
  const auto t0 = std::chrono::steady_clock::now();
  try {
    std::string line;
    (void)reader.read_line(line);
    FAIL() << "expected DeadlineExceededError";
  } catch (const DeadlineExceededError& e) {
    EXPECT_EQ(exit_code_for(e), kExitDeadlineExceeded);
    EXPECT_EQ(kExitDeadlineExceeded, 9);
  }
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(waited, 40ms) << "deadline fired early";
  EXPECT_LT(waited, 5s) << "deadline did not bound the wait";
}

TEST_F(ChaosTest, ConnectRefusedNamesTheServeCommand) {
  const auto missing =
      (fs::temp_directory_path() / "chaos_no_daemon.sock").string();
  fs::remove(missing);
  try {
    (void)service::connect_unix(missing, 1.0);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("pima_asm serve"), std::string::npos)
        << "error not actionable: " << e.what();
  }
}

TEST_F(ChaosTest, InjectedConnectRefusalAlsoCarriesTheHint) {
  // Even when the endpoint EXISTS, an injected ECONNREFUSED must surface
  // the same actionable message.
  const auto dir = (fs::temp_directory_path() / "chaos_refuse").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto sock = dir + "/d.sock";
  service::ScopedFd listener = service::listen_unix(sock);
  fsio::install_plan(
      fsio::FaultPlan::parse("connect@connect:nth=1:errno=ECONNREFUSED"));
  try {
    (void)service::connect_unix(sock, 1.0);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("pima_asm serve"), std::string::npos);
  }
  fsio::clear_plan();
  fs::remove_all(dir);
}

// ------------------------------------------------- pipeline + crashes ---

dram::Geometry chaos_geometry() {
  dram::Geometry g;
  g.rows = 512;
  g.compute_rows = 8;
  g.columns = 256;
  g.subarrays_per_mat = 16;
  g.mats_per_bank = 4;
  g.banks = 2;
  return g;
}

void write_small_reads(const std::string& path) {
  dna::GenomeParams gp;
  gp.length = 700;
  gp.repeat_count = 0;
  dna::ReadSamplerParams rp;
  rp.coverage = 6.0;
  rp.read_length = 70;
  const auto reads = dna::sample_reads(dna::generate_genome(gp), rp);
  std::vector<dna::Record> records;
  records.reserve(reads.size());
  for (std::size_t i = 0; i < reads.size(); ++i)
    records.push_back({"read_" + std::to_string(i), reads[i]});
  dna::write_fasta_file(path, records);
}

std::vector<dna::Sequence> load_reads(const std::string& path) {
  const auto records = dna::read_fasta_file(path);
  std::vector<dna::Sequence> reads;
  reads.reserve(records.size());
  for (const auto& r : records) reads.push_back(r.seq);
  return reads;
}

core::PipelineOptions chaos_pipeline_options(const std::string& ckpt_dir,
                                             bool resume) {
  core::PipelineOptions opt;
  opt.k = 15;
  opt.hash_shards = 8;
  opt.threads = 1;
  opt.checkpoint_dir = ckpt_dir;
  opt.resume = resume;
  return opt;
}

std::string contigs_fasta(const core::PipelineResult& result) {
  std::vector<dna::Record> contigs;
  contigs.reserve(result.contigs.size());
  for (std::size_t i = 0; i < result.contigs.size(); ++i)
    contigs.push_back({"contig_" + std::to_string(i), result.contigs[i]});
  std::ostringstream out;
  dna::write_fasta(out, contigs);
  return out.str();
}

TEST_F(ChaosTest, CheckpointEnospcIsTypedAndRunResumesBitIdentical) {
  const auto dir = (fs::temp_directory_path() / "chaos_ckpt_enospc").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto reads_path = dir + "/reads.fa";
  write_small_reads(reads_path);
  const auto reads = load_reads(reads_path);

  const std::string golden = [&] {
    dram::Device device(chaos_geometry());
    return contigs_fasta(
        core::run_pipeline(device, reads, chaos_pipeline_options("", false)));
  }();

  // Let the first stage checkpoint through, then ENOSPC the next write.
  fsio::install_plan(
      fsio::FaultPlan::parse("write@checkpoint:nth=3:errno=ENOSPC"));
  {
    dram::Device device(chaos_geometry());
    EXPECT_THROW((void)core::run_pipeline(
                     device, reads, chaos_pipeline_options(dir, false)),
                 IoError);
  }
  fsio::clear_plan();

  // The disk freed up; --resume continues from whatever stage survived and
  // the output is bit-identical to the uninterrupted run.
  dram::Device device(chaos_geometry());
  const auto result =
      core::run_pipeline(device, reads, chaos_pipeline_options(dir, true));
  EXPECT_EQ(contigs_fasta(result), golden);
  fs::remove_all(dir);
}

/// Forks, runs `child` in the child process, returns its exit status.
/// The child must only _exit(); gtest assertions there would be lost.
template <typename Fn>
int run_forked(Fn&& child) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    int code = 99;
    try {
      code = child();
    } catch (...) {
      code = 97;
    }
    std::_Exit(code);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : 98;
}

TEST_F(ChaosTest, CrashAtEveryCheckpointWritePointResumesBitIdentical) {
  const auto root = (fs::temp_directory_path() / "chaos_crash_sweep").string();
  fs::remove_all(root);
  fs::create_directories(root);
  const auto reads_path = root + "/reads.fa";
  write_small_reads(reads_path);
  const auto reads = load_reads(reads_path);

  const std::string golden = [&] {
    dram::Device device(chaos_geometry());
    return contigs_fasta(
        core::run_pipeline(device, reads, chaos_pipeline_options("", false)));
  }();

  // Sweep the crash point across every checkpoint write the run performs:
  // k = 1, 2, ... until a child completes without hitting its nth trigger
  // (exit 0) — the loop terminates by construction after the run's total
  // write count. Every crash must leave the directory resumable and the
  // resumed output bit-identical.
  int points_hit = 0;
  for (std::uint64_t k = 1; k <= 64; ++k) {
    const std::string dir = root + "/k" + std::to_string(k);
    fs::create_directories(dir);
    const int first = run_forked([&]() -> int {
      fsio::install_plan(fsio::FaultPlan::parse(
          "write@checkpoint:nth=" + std::to_string(k) + ":crash"));
      dram::Device device(chaos_geometry());
      (void)core::run_pipeline(device, reads,
                               chaos_pipeline_options(dir, false));
      return 0;  // nth never fired: the sweep is past the last write
    });
    if (first == 0) break;
    ASSERT_EQ(first, fsio::kCrashExitCode)
        << "crash point k=" << k << " died differently";
    ++points_hit;

    // Survivor run: no plan, resume from whatever the crash left behind.
    const auto out_path = dir + "/resumed.fa";
    const int second = run_forked([&]() -> int {
      dram::Device device(chaos_geometry());
      const auto result = core::run_pipeline(device, reads,
                                             chaos_pipeline_options(dir, true));
      std::ofstream out(out_path, std::ios::binary);
      out << contigs_fasta(result);
      return out ? 0 : 1;
    });
    ASSERT_EQ(second, 0) << "resume after crash point k=" << k << " failed";
    EXPECT_EQ(slurp(out_path), golden)
        << "resume after crash point k=" << k << " diverged";
  }
  EXPECT_GE(points_hit, 3) << "sweep never reached a checkpoint write";
  fs::remove_all(root);
}

TEST_F(ChaosTest, TornRenameCrashLeavesCheckpointOldOrAbsentNeverCorrupt) {
  const auto dir = (fs::temp_directory_path() / "chaos_torn_rename").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto reads_path = dir + "/reads.fa";
  write_small_reads(reads_path);
  const auto reads = load_reads(reads_path);

  const std::string golden = [&] {
    dram::Device device(chaos_geometry());
    return contigs_fasta(
        core::run_pipeline(device, reads, chaos_pipeline_options("", false)));
  }();

  const int first = run_forked([&]() -> int {
    fsio::install_plan(
        fsio::FaultPlan::parse("rename@checkpoint:nth=1:crash"));
    dram::Device device(chaos_geometry());
    (void)core::run_pipeline(device, reads, chaos_pipeline_options(dir, false));
    return 0;
  });
  ASSERT_EQ(first, fsio::kCrashExitCode);

  dram::Device device(chaos_geometry());
  const auto result =
      core::run_pipeline(device, reads, chaos_pipeline_options(dir, true));
  EXPECT_EQ(contigs_fasta(result), golden);
  fs::remove_all(dir);
}

// --------------------------------------------- daemon: chaos harness ----

service::AdmissionPolicy chaos_policy() {
  service::AdmissionPolicy p;
  p.queue_depth = 8;
  p.max_jobs = 2;
  p.channel_budget = 4;
  return p;
}

/// Like test_service's harness, but the state dir persists across daemon
/// incarnations so restart-survival properties are testable.
class ChaosDaemon {
 public:
  explicit ChaosDaemon(const std::string& state_dir) : state_dir_(state_dir) {
    fs::create_directories(state_dir_);
    service::DaemonOptions opt;
    opt.state_dir = state_dir_;
    opt.socket_path = state_dir_ + "/pima.sock";
    opt.admission = chaos_policy();
    opt.geometry = chaos_geometry();
    daemon_ = std::make_unique<service::Daemon>(std::move(opt));
    thread_ = std::thread([this] { daemon_->run(); });
    wait_until_serving();
  }
  ~ChaosDaemon() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      daemon_->request_shutdown();
      thread_.join();
    }
  }

  const std::string& socket() const { return daemon_->options().socket_path; }

  service::Json request(service::Json req) {
    return service::Client::connect_unix_socket(socket(), 30.0)
        .request(req);
  }

  service::Json submit(const std::string& reads, const std::string& idem_key) {
    service::Json req = service::Json::object();
    req.set("verb", "submit").set("reads", reads).set("k", 15).set("shards", 8);
    if (!idem_key.empty()) req.set("idempotency_key", idem_key);
    return request(std::move(req));
  }

  service::Json wait_terminal(const std::string& id) {
    const auto deadline = std::chrono::steady_clock::now() + 120s;
    while (std::chrono::steady_clock::now() < deadline) {
      service::Json req = service::Json::object();
      req.set("verb", "status").set("job", id);
      const auto resp = request(std::move(req));
      if (resp.get_bool("ok", false) &&
          service::is_terminal(
              service::parse_job_state(resp.get_string("state"))))
        return resp;
      std::this_thread::sleep_for(20ms);
    }
    ADD_FAILURE() << "job " << id << " never terminal";
    return service::Json();
  }

 private:
  void wait_until_serving() {
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (std::chrono::steady_clock::now() < deadline) {
      try {
        service::Json req = service::Json::object();
        req.set("verb", "ping");
        (void)request(std::move(req));
        return;
      } catch (const IoError&) {
        std::this_thread::sleep_for(5ms);
      }
    }
    FAIL() << "daemon never served on " << socket();
  }

  std::string state_dir_;
  std::unique_ptr<service::Daemon> daemon_;
  std::thread thread_;
};

TEST_F(ChaosTest, IdempotentSubmitDedupesToOneJobAndOneExecution) {
  const auto dir = (fs::temp_directory_path() / "chaos_idem").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto reads = dir + "/reads.fa";
  write_small_reads(reads);
  {
    ChaosDaemon d(dir);
    const auto first = d.submit(reads, "ck-retry-1");
    ASSERT_TRUE(first.get_bool("ok", false)) << first.dump();
    const std::string id = first.get_string("job");
    EXPECT_FALSE(first.get_bool("deduped", false));

    // Retried submit (same key) — even concurrently with the run — lands
    // on the SAME job.
    const auto dup = d.submit(reads, "ck-retry-1");
    ASSERT_TRUE(dup.get_bool("ok", false)) << dup.dump();
    EXPECT_EQ(dup.get_string("job"), id);
    EXPECT_TRUE(dup.get_bool("deduped", false));

    (void)d.wait_terminal(id);
    const auto after = d.submit(reads, "ck-retry-1");
    EXPECT_EQ(after.get_string("job"), id);
    EXPECT_TRUE(after.get_bool("deduped", false));

    // Exactly one job exists: the retries executed nothing.
    service::Json list = service::Json::object();
    list.set("verb", "list");
    EXPECT_EQ(d.request(std::move(list)).get("jobs").items().size(), 1u);

    // A different key is a different job.
    const auto other = d.submit(reads, "ck-retry-2");
    EXPECT_NE(other.get_string("job"), id);
    EXPECT_FALSE(other.get_bool("deduped", false));
    (void)d.wait_terminal(other.get_string("job"));
  }
  fs::remove_all(dir);
}

TEST_F(ChaosTest, IdempotencyKeySurvivesDaemonRestart) {
  const auto dir = (fs::temp_directory_path() / "chaos_idem_restart").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto reads = dir + "/reads.fa";
  write_small_reads(reads);
  std::string id;
  {
    ChaosDaemon d(dir);
    const auto first = d.submit(reads, "ck-survives");
    ASSERT_TRUE(first.get_bool("ok", false)) << first.dump();
    id = first.get_string("job");
    (void)d.wait_terminal(id);
  }  // graceful stop; job.json (with the key) persists
  {
    ChaosDaemon d(dir);  // fresh incarnation, same state dir
    const auto dup = d.submit(reads, "ck-survives");
    ASSERT_TRUE(dup.get_bool("ok", false)) << dup.dump();
    EXPECT_EQ(dup.get_string("job"), id) << "dedupe index not rebuilt";
    EXPECT_TRUE(dup.get_bool("deduped", false));
  }
  fs::remove_all(dir);
}

TEST_F(ChaosTest, InvalidIdempotencyKeyRejectedTyped) {
  const auto dir = (fs::temp_directory_path() / "chaos_idem_bad").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto reads = dir + "/reads.fa";
  write_small_reads(reads);
  {
    ChaosDaemon d(dir);
    const auto bad = d.submit(reads, "spaces and ! chars");
    EXPECT_FALSE(bad.get_bool("ok", true));
    EXPECT_EQ(bad.get_string("error"), "InputFormatError");
    const auto long_key = d.submit(reads, std::string(200, 'a'));
    EXPECT_FALSE(long_key.get_bool("ok", true));
    EXPECT_EQ(long_key.get_string("error"), "InputFormatError");
  }
  fs::remove_all(dir);
}

TEST_F(ChaosTest, MalformedRequestCorpusGetsOneTypedErrorLineEach) {
  const auto dir = (fs::temp_directory_path() / "chaos_malformed").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  ChaosDaemon d(dir);

  const std::vector<std::string> corpus = {
      R"({"verb":"ping")",                       // truncated JSON
      R"({"verb":42})",                          // wrong-typed verb
      R"({"verb":["ping"]})",                    // array verb
      R"({})",                                   // missing verb
      R"({"verb":"frobnicate"})",                // unknown verb
      R"({"verb":"status","job":{"k":1}})",      // wrong-typed field
      R"({"verb":"status","job":"a","job":"b"})",// duplicate keys
      std::string("{\"verb\":\"\x80\xfe\"}"),    // non-UTF8 bytes
      R"("just a string")",
      R"(12345)",
  };
  for (const auto& line : corpus) {
    service::ScopedFd fd = service::connect_unix(d.socket(), 10.0);
    service::LineChannel ch(fd.get());
    ch.set_deadline(10.0);
    ch.write_line(line);
    std::string resp_line;
    ASSERT_TRUE(ch.read_line(resp_line)) << "no response for: " << line;
    const auto resp = service::Json::parse(resp_line);  // must parse
    EXPECT_FALSE(resp.get_bool("ok", true)) << line;
    EXPECT_FALSE(resp.get_string("error").empty()) << line;
    // The connection stays usable: a good request after a bad one works.
    service::Json ping = service::Json::object();
    ping.set("verb", "ping");
    ch.write_line(ping.dump());
    ASSERT_TRUE(ch.read_line(resp_line));
    EXPECT_TRUE(service::Json::parse(resp_line).get_bool("ok", false));
  }
  fs::remove_all(dir);
}

TEST_F(ChaosTest, ClientDeadlineAgainstSilentPeerExitsNine) {
  // A listener that accepts but never responds: the client's --timeout
  // must bound the wait and map to exit code 9.
  const auto dir = (fs::temp_directory_path() / "chaos_silent").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto sock = dir + "/silent.sock";
  service::ScopedFd listener = service::listen_unix(sock);
  std::thread accepter([&] {
    service::ScopedFd conn = service::accept_connection(listener.get());
    std::this_thread::sleep_for(2s);  // hold the socket open, say nothing
  });
  auto client = service::Client::connect_unix_socket(sock, 0.1);
  service::Json ping = service::Json::object();
  ping.set("verb", "ping");
  try {
    (void)client.request(ping);
    FAIL() << "expected DeadlineExceededError";
  } catch (const DeadlineExceededError& e) {
    EXPECT_EQ(exit_code_for(e), 9);
  }
  accepter.join();
  fs::remove_all(dir);
}

TEST_F(ChaosTest, DaemonWireFaultsDoNotPoisonOtherConnections) {
  const auto dir = (fs::temp_directory_path() / "chaos_wire_faults").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  ChaosDaemon d(dir);
  // Every 4th wire send EPIPEs (both directions share the plan): clients
  // see transport errors, but the daemon itself must keep serving.
  fsio::install_plan(
      fsio::FaultPlan::parse("seed=5;send@wire:p=0.25:errno=EPIPE"));
  int served = 0;
  for (int i = 0; i < 20; ++i) {
    try {
      service::Json ping = service::Json::object();
      ping.set("verb", "ping");
      if (d.request(std::move(ping)).get_bool("ok", false)) ++served;
    } catch (const IoError&) {
      // injected hangup — expected some of the time
    }
  }
  fsio::clear_plan();
  EXPECT_GT(served, 0) << "no request survived p=0.25 wire faults";
  // With the plan gone the daemon is fully healthy.
  service::Json ping = service::Json::object();
  ping.set("verb", "ping");
  EXPECT_TRUE(d.request(std::move(ping)).get_bool("ok", false));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace pima
