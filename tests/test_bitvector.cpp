#include "common/bitvector.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace pima {
namespace {

TEST(BitVector, DefaultIsEmpty) {
  BitVector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.none());
  EXPECT_TRUE(v.all());  // vacuously
}

TEST(BitVector, ConstructedZeroed) {
  BitVector v(200);
  EXPECT_EQ(v.size(), 200u);
  EXPECT_EQ(v.popcount(), 0u);
  for (std::size_t i = 0; i < 200; ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVector, SetGetRoundTrip) {
  BitVector v(130);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_EQ(v.popcount(), 4u);
  v.set(63, false);
  EXPECT_FALSE(v.get(63));
  EXPECT_EQ(v.popcount(), 3u);
}

TEST(BitVector, OutOfRangeThrows) {
  BitVector v(10);
  EXPECT_THROW(v.get(10), PreconditionError);
  EXPECT_THROW(v.set(10, true), PreconditionError);
}

TEST(BitVector, FromStringAndToString) {
  const auto v = BitVector::from_string("10110");
  EXPECT_EQ(v.size(), 5u);
  EXPECT_TRUE(v.get(0));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.to_string(), "10110");
  EXPECT_THROW(BitVector::from_string("10x"), PreconditionError);
}

TEST(BitVector, FillKeepsTailClear) {
  BitVector v(70);
  v.fill(true);
  EXPECT_EQ(v.popcount(), 70u);
  EXPECT_TRUE(v.all());
  // Tail bits beyond size must stay zero so popcount over words is exact.
  EXPECT_EQ(v.word(1) >> 6, 0u);
  v.fill(false);
  EXPECT_TRUE(v.none());
}

TEST(BitVector, SetWordClearsTail) {
  BitVector v(68);
  v.set_word(1, ~std::uint64_t{0});
  EXPECT_EQ(v.popcount(), 4u);  // only 4 valid bits in the last word
}

TEST(BitVector, EqualityIsValueBased) {
  BitVector a(100), b(100);
  a.set(42, true);
  EXPECT_NE(a, b);
  b.set(42, true);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, BitVector(101));
}

TEST(BitVector, XnorTruthTable) {
  const auto a = BitVector::from_string("0011");
  const auto b = BitVector::from_string("0101");
  EXPECT_EQ(BitVector::bit_xnor(a, b).to_string(), "1001");
}

TEST(BitVector, XorTruthTable) {
  const auto a = BitVector::from_string("0011");
  const auto b = BitVector::from_string("0101");
  EXPECT_EQ(BitVector::bit_xor(a, b).to_string(), "0110");
}

TEST(BitVector, AndOrNotTruthTables) {
  const auto a = BitVector::from_string("0011");
  const auto b = BitVector::from_string("0101");
  EXPECT_EQ(BitVector::bit_and(a, b).to_string(), "0001");
  EXPECT_EQ(BitVector::bit_or(a, b).to_string(), "0111");
  EXPECT_EQ(BitVector::bit_not(a).to_string(), "1100");
}

TEST(BitVector, Maj3TruthTable) {
  const auto a = BitVector::from_string("00001111");
  const auto b = BitVector::from_string("00110011");
  const auto c = BitVector::from_string("01010101");
  EXPECT_EQ(BitVector::bit_maj3(a, b, c).to_string(), "00010111");
}

TEST(BitVector, MismatchedSizesThrow) {
  BitVector a(10), b(11);
  EXPECT_THROW(BitVector::bit_xnor(a, b), PreconditionError);
  EXPECT_THROW(BitVector::bit_maj3(a, a, b), PreconditionError);
}

TEST(BitVector, NotKeepsTailClear) {
  BitVector a(70);
  const auto r = BitVector::bit_not(a);
  EXPECT_EQ(r.popcount(), 70u);
}

TEST(BitVector, XnorKeepsTailClear) {
  BitVector a(70), b(70);
  const auto r = BitVector::bit_xnor(a, b);  // ~(0^0) = all ones
  EXPECT_EQ(r.popcount(), 70u);
  EXPECT_TRUE(r.all());
}

TEST(BitVector, CopyRangeAndSlice) {
  BitVector dst(32);
  const auto src = BitVector::from_string("1101");
  dst.copy_range_from(src, 10);
  EXPECT_EQ(dst.slice(10, 4), src);
  EXPECT_EQ(dst.popcount(), 3u);
  EXPECT_THROW(dst.copy_range_from(src, 30), PreconditionError);
  EXPECT_THROW(dst.slice(30, 4), PreconditionError);
}

// Property: XNOR is an involution partner of XOR, MAJ3 is symmetric, and
// De Morgan identities hold on random vectors.
class BitVectorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitVectorProperty, AlgebraicIdentities) {
  Rng rng(GetParam());
  const std::size_t n = 64 + rng.uniform(200);
  BitVector a(n), b(n), c(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.set(i, rng.bernoulli(0.5));
    b.set(i, rng.bernoulli(0.5));
    c.set(i, rng.bernoulli(0.5));
  }
  EXPECT_EQ(BitVector::bit_xnor(a, b),
            BitVector::bit_not(BitVector::bit_xor(a, b)));
  EXPECT_EQ(BitVector::bit_maj3(a, b, c), BitVector::bit_maj3(c, a, b));
  EXPECT_EQ(BitVector::bit_xor(a, a), BitVector(n));
  EXPECT_EQ(BitVector::bit_xnor(a, a).popcount(), n);
  // MAJ(a,b,c) = (a&b) | (b&c) | (a&c).
  const auto maj = BitVector::bit_or(
      BitVector::bit_or(BitVector::bit_and(a, b), BitVector::bit_and(b, c)),
      BitVector::bit_and(a, c));
  EXPECT_EQ(BitVector::bit_maj3(a, b, c), maj);
  // Popcount consistency under NOT.
  EXPECT_EQ(a.popcount() + BitVector::bit_not(a).popcount(), n);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, BitVectorProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace pima
