#include "dna/fasta.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace pima::dna {
namespace {

TEST(Fasta, ParsesSingleRecord) {
  std::istringstream in(">chr1 test\nACGT\nACGT\n");
  const auto recs = read_fasta(in);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].id, "chr1 test");
  EXPECT_EQ(recs[0].seq.to_string(), "ACGTACGT");
}

TEST(Fasta, ParsesMultipleRecords) {
  std::istringstream in(">a\nAC\n>b\nGGTT\n>c\nA\n");
  const auto recs = read_fasta(in);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[1].id, "b");
  EXPECT_EQ(recs[1].seq.to_string(), "GGTT");
}

TEST(Fasta, SkipsBlankLinesAndCarriageReturns) {
  std::istringstream in(">a\r\nAC\r\n\nGT\r\n");
  const auto recs = read_fasta(in);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].seq.to_string(), "ACGT");
}

TEST(Fasta, SkipRecordPolicyDropsAmbiguous) {
  std::istringstream in(">good\nACGT\n>bad\nACNT\n>good2\nTTTT\n");
  const auto recs = read_fasta(in, AmbiguityPolicy::kSkipRecord);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].id, "good");
  EXPECT_EQ(recs[1].id, "good2");
}

TEST(Fasta, SubstitutePolicyKeepsRecord) {
  std::istringstream in(">r\nANNT\n");
  const auto recs = read_fasta(in, AmbiguityPolicy::kSubstitute);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].seq.size(), 4u);
  EXPECT_EQ(recs[0].seq.at(0), Base::A);
  EXPECT_EQ(recs[0].seq.at(3), Base::T);
  // Substitution is deterministic.
  std::istringstream in2(">r\nANNT\n");
  const auto recs2 = read_fasta(in2, AmbiguityPolicy::kSubstitute);
  EXPECT_EQ(recs[0].seq, recs2[0].seq);
}

TEST(Fasta, ThrowPolicyRejects) {
  std::istringstream in(">r\nACNT\n");
  try {
    read_fasta(in, AmbiguityPolicy::kThrow);
    FAIL() << "expected InputFormatError";
  } catch (const InputFormatError& e) {
    // Errors carry source:line context for operators.
    EXPECT_NE(std::string(e.what()).find("<fasta>:2"), std::string::npos)
        << e.what();
  }
}

TEST(Fasta, MalformedInputTable) {
  // Fuzz-style table over malformed inputs: every row must throw
  // InputFormatError (never crash, never silently return records).
  const char* kMalformed[] = {
      "",                          // empty file
      "\n\r\n\n",                  // blank lines only
      "ACGT\n>r\nACGT\n",          // data before the first header
      ">only-header\n",            // truncated record: header, no data
      ">a\nACGT\n>trunc\n",        // truncated final record
      ">a\nAC*GT\n",               // illegal character (not IUPAC)
      ">a\nACGT\x01\n",            // non-printable byte in data
      ">a\nacgq\n",                // lowercase non-IUPAC
  };
  for (const char* text : kMalformed) {
    std::istringstream in(text);
    EXPECT_THROW(read_fasta(in, AmbiguityPolicy::kSubstitute),
                 InputFormatError)
        << "input: " << text;
  }
}

TEST(Fasta, CrlfAndAmbiguityCodesAccepted) {
  // CRLF endings and the full IUPAC ambiguity set are tolerated (policy
  // decides what happens to ambiguous records; they are never a format
  // error).
  std::istringstream in(">r1\r\nACGT\r\n>r2\r\nRYSWKM\r\n>r3\r\nACGT\r\n");
  const auto recs = read_fasta(in, AmbiguityPolicy::kSkipRecord);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].id, "r1");
  EXPECT_EQ(recs[1].id, "r3");
}

TEST(Fasta, WriteReadRoundTrip) {
  std::vector<Record> recs;
  recs.push_back({"alpha", Sequence::from_string("ACGTACGTACGT")});
  recs.push_back({"beta", Sequence::from_string("TT")});
  std::ostringstream out;
  write_fasta(out, recs, 5);  // exercise line wrapping
  std::istringstream in(out.str());
  const auto back = read_fasta(in);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].id, "alpha");
  EXPECT_EQ(back[0].seq, recs[0].seq);
  EXPECT_EQ(back[1].seq, recs[1].seq);
}

TEST(Fasta, MissingFileThrows) {
  EXPECT_THROW(read_fasta_file("/nonexistent/path.fa"), IoError);
}

TEST(Fastq, ParsesRecords) {
  std::istringstream in("@r1\nACGT\n+\nIIII\n@r2\nGG\n+r2\nII\n");
  const auto recs = read_fastq(in);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].id, "r1");
  EXPECT_EQ(recs[0].seq.to_string(), "ACGT");
  EXPECT_EQ(recs[1].seq.to_string(), "GG");
}

TEST(Fastq, RejectsMalformed) {
  std::istringstream truncated("@r1\nACGT\n+\n");
  EXPECT_THROW(read_fastq(truncated), InputFormatError);
  std::istringstream bad_sep("@r1\nACGT\nX\nIIII\n");
  EXPECT_THROW(read_fastq(bad_sep), InputFormatError);
  std::istringstream bad_qual("@r1\nACGT\n+\nII\n");
  EXPECT_THROW(read_fastq(bad_qual), InputFormatError);
  std::istringstream empty("");
  EXPECT_THROW(read_fastq(empty), InputFormatError);
}

TEST(Fastq, AmbiguousReadSkipped) {
  std::istringstream in("@r1\nACNT\n+\nIIII\n@r2\nAAAA\n+\nIIII\n");
  const auto recs = read_fastq(in, AmbiguityPolicy::kSkipRecord);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].id, "r2");
}

}  // namespace
}  // namespace pima::dna
