// Process-isolation battery (ctest -L procpool, DESIGN.md §15).
//
// The contract under test: a pipeline run whose device shards live in
// pima_devd worker processes is bit-identical to the in-process run — and
// stays bit-identical when workers are SIGKILLed, SIGSEGV, crash-exited,
// torn mid-write, or chaos-injected mid-stage, because the supervisor
// restarts them from their shard checkpoints and replays their journals.
// Plus the seams: WorkerInit / typed-error / shard-checkpoint wire and
// disk round-trips, exit classification, and the degrade path when the
// restart budget runs dry.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/pipeline.hpp"
#include "core/shard_worker.hpp"
#include "dna/genome.hpp"
#include "dram/device.hpp"
#include "net/json.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/procpool.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/session.hpp"

namespace pima {
namespace {

namespace fs = std::filesystem;

// RAII environment-variable override (the devd test hook travels to the
// workers through the environment they inherit).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (saved_.empty())
      ::unsetenv(name_);
    else
      ::setenv(name_, saved_.c_str(), 1);
  }

 private:
  const char* name_;
  std::string saved_;
};

dram::Geometry pipeline_geometry() {
  dram::Geometry g;
  g.rows = 512;
  g.compute_rows = 8;
  g.columns = 256;
  g.subarrays_per_mat = 16;
  g.mats_per_bank = 4;
  g.banks = 2;
  return g;
}

std::vector<dna::Sequence> workload_reads(std::uint64_t seed) {
  dna::GenomeParams gp;
  gp.length = 600;
  gp.repeat_count = 0;
  gp.seed = seed;
  dna::ReadSamplerParams rp;
  rp.coverage = 5.0;
  rp.read_length = 70;
  rp.seed = seed + 1;
  return dna::sample_reads(dna::generate_genome(gp), rp);
}

struct RunOutput {
  core::PipelineResult result;
  std::string model_snapshot;  ///< json_snapshot(model_only) — byte oracle
};

RunOutput run_config(const std::vector<dna::Sequence>& reads, bool isolate,
                     std::size_t devices,
                     const core::PipelineOptions::IsolateOptions& iso = {},
                     bool capture = false) {
  auto& session = telemetry::TelemetrySession::instance();
  session.reset();
  session.enable_metrics();
  dram::Device device(pipeline_geometry());
  core::PipelineOptions opt;
  opt.k = 15;
  opt.hash_shards = 8;
  opt.devices = devices;
  opt.threads = 2;
  opt.isolate = isolate;
  opt.isolate_opts = iso;
  opt.capture_trace = capture;
  RunOutput out;
  out.result = core::run_pipeline(device, reads, opt);
  out.model_snapshot = session.metrics().json_snapshot(/*model_only=*/true);
  session.reset();
  return out;
}

void expect_bit_identical(const core::PipelineResult& a,
                          const core::PipelineResult& b) {
  EXPECT_EQ(a.contigs, b.contigs);
  EXPECT_EQ(a.distinct_kmers, b.distinct_kmers);
  EXPECT_EQ(a.graph_nodes, b.graph_nodes);
  EXPECT_EQ(a.graph_edges, b.graph_edges);
  EXPECT_EQ(a.hashmap.device, b.hashmap.device);
  EXPECT_EQ(a.debruijn.device, b.debruijn.device);
  EXPECT_EQ(a.traverse.device, b.traverse.device);
}

// ---- crash-free identity ----------------------------------------------------

TEST(ProcPoolIdentity, IsolatedMatchesInProcessAndSingleDevice) {
  const auto reads = workload_reads(11);
  const auto single = run_config(reads, /*isolate=*/false, 1);
  const auto pooled = run_config(reads, /*isolate=*/false, 4);
  const auto isolated = run_config(reads, /*isolate=*/true, 4);
  ASSERT_FALSE(isolated.result.contigs.empty());
  expect_bit_identical(isolated.result, pooled.result);
  expect_bit_identical(isolated.result, single.result);
  // The model-class metrics snapshot derives only from simulated state —
  // equal bytes whether the shards ran in-process or in worker processes.
  ASSERT_FALSE(isolated.model_snapshot.empty());
  EXPECT_EQ(isolated.model_snapshot, pooled.model_snapshot);
  EXPECT_EQ(isolated.model_snapshot, single.model_snapshot);
}

TEST(ProcPoolIdentity, CapturedTraceMatchesInProcess) {
  const auto reads = workload_reads(12);
  const auto pooled =
      run_config(reads, /*isolate=*/false, 3, {}, /*capture=*/true);
  const auto isolated =
      run_config(reads, /*isolate=*/true, 3, {}, /*capture=*/true);
  ASSERT_FALSE(isolated.result.trace.empty());
  EXPECT_EQ(isolated.result.trace, pooled.result.trace);
}

// ---- kill-and-recover: every crash class, bit-identical output --------------

TEST(ProcPoolRecovery, CrashedWorkersRestartAndOutputIsBitIdentical) {
  const auto reads = workload_reads(13);
  const auto baseline = run_config(reads, /*isolate=*/false, 4);
  const auto scratch = fs::temp_directory_path() / "procpool_hooks";
  fs::remove_all(scratch);
  fs::create_directories(scratch);
  for (const char* action : {"sigkill", "segv", "exit86", "torn"}) {
    SCOPED_TRACE(action);
    const auto flag = (scratch / (std::string("flag_") + action)).string();
    // Device 2 dies after its 8th request — mid stage 1 — then the flag
    // file makes the respawned worker healthy.
    ScopedEnv hook("PIMA_DEVD_TEST_HOOK", std::string("dev=2:after=8:action=") +
                                              action + ":flag=" + flag);
    core::PipelineOptions::IsolateOptions iso;
    iso.allow_degrade = false;  // a degrade here would mask a replay bug
    const auto run = run_config(reads, /*isolate=*/true, 4, iso);
    EXPECT_TRUE(fs::exists(flag)) << "hook never fired";
    expect_bit_identical(run.result, baseline.result);
    EXPECT_EQ(run.model_snapshot, baseline.model_snapshot);
  }
  fs::remove_all(scratch);
}

TEST(ProcPoolRecovery, RecoveryPreservesCapturedTrace) {
  const auto reads = workload_reads(14);
  const auto baseline =
      run_config(reads, /*isolate=*/false, 4, {}, /*capture=*/true);
  const auto scratch = fs::temp_directory_path() / "procpool_trace_hook";
  fs::remove_all(scratch);
  fs::create_directories(scratch);
  const auto flag = (scratch / "flag").string();
  ScopedEnv hook("PIMA_DEVD_TEST_HOOK",
                 "dev=1:after=6:action=sigkill:flag=" + flag);
  core::PipelineOptions::IsolateOptions iso;
  iso.allow_degrade = false;
  // capture_trace disables journal truncation: the respawned worker must
  // replay every command so its trace capture is complete.
  const auto run = run_config(reads, /*isolate=*/true, 4, iso, /*capture=*/true);
  EXPECT_TRUE(fs::exists(flag)) << "hook never fired";
  EXPECT_EQ(run.result.trace, baseline.result.trace);
  fs::remove_all(scratch);
}

// ---- chaos: a fault plan aimed at the workers' wire -------------------------

TEST(ProcPoolChaos, ChildIofaultTornWriteIsSurvivedWithReplay) {
  // Supervisor-level: every worker instance tears its socket mid-write on
  // its 4th send (fsio `crash` = half the bytes, then _exit(86)). Progress
  // still happens because stage boundaries truncate the journal, so each
  // respawned worker replays less than its predecessor wrote.
  runtime::ProcPoolOptions opt;
  opt.devices = 1;
  opt.restart_budget = 30;
  opt.restart_backoff_ms = 1.0;
  opt.child_iofault = "send@wire:nth=4:crash";
  core::WorkerInit init;
  init.geometry = pipeline_geometry();
  init.k = 15;
  init.hash_shards = 4;
  init.channels = 1;
  runtime::ProcSupervisor sup(opt, [&](std::size_t d) {
    core::WorkerInit wi = init;
    wi.device = d;
    return core::worker_init_to_json(wi);
  });
  sup.start();
  net::Json clear = net::Json::object();
  clear.set("op", "clear_stats");
  for (std::uint32_t i = 1; i <= 10; ++i) {
    const auto response = sup.rpc(0, clear);
    EXPECT_TRUE(response.get_bool("ok", false));
    sup.mark_stage_done(i);  // truncate: bounds the next replay
  }
  EXPECT_GE(sup.restarts_used(), 1u);
  net::Json ping = net::Json::object();
  ping.set("op", "ping");
  EXPECT_TRUE(sup.query(0, ping).get_bool("ok", false));
  sup.shutdown();
}

// ---- restart budget exhaustion: degrade or typed failure --------------------

TEST(ProcPoolDegrade, BudgetExhaustionFallsBackToInProcessPool) {
  const auto reads = workload_reads(15);
  const auto baseline = run_config(reads, /*isolate=*/false, 4);
  // No flag file: device 0 dies after every respawn, exhausting the budget.
  ScopedEnv hook("PIMA_DEVD_TEST_HOOK", "dev=0:after=4:action=exit86");
  core::PipelineOptions::IsolateOptions iso;
  iso.restart_budget = 2;
  const auto run = run_config(reads, /*isolate=*/true, 4, iso);
  expect_bit_identical(run.result, baseline.result);
}

TEST(ProcPoolDegrade, DisallowedDegradeThrowsWorkerCrashedError) {
  const auto reads = workload_reads(15);
  ScopedEnv hook("PIMA_DEVD_TEST_HOOK", "dev=0:after=4:action=sigkill");
  core::PipelineOptions::IsolateOptions iso;
  iso.restart_budget = 1;
  iso.allow_degrade = false;
  try {
    (void)run_config(reads, /*isolate=*/true, 4, iso);
    FAIL() << "expected WorkerCrashedError";
  } catch (const WorkerCrashedError& e) {
    EXPECT_EQ(e.device(), 0u);
    EXPECT_EQ(e.classification(), "killed by signal");
    EXPECT_EQ(exit_code_for(e), kExitWorkerCrashed);
  }
  telemetry::TelemetrySession::instance().reset();
}

// ---- distributed observability ----------------------------------------------

TEST(ProcPoolObservability, StitchedTraceHasWorkerSpansFlowsAndRestartTracks) {
  const auto reads = workload_reads(16);
  const auto baseline = run_config(reads, /*isolate=*/false, 3);
  auto& session = telemetry::TelemetrySession::instance();
  session.reset();
  session.enable_metrics();
  session.tracer().enable();
  const auto scratch = fs::temp_directory_path() / "procpool_obs_trace";
  fs::remove_all(scratch);
  fs::create_directories(scratch);
  const auto flag = (scratch / "flag").string();
  // Worker 1 dies mid stage 1; its replacement appears as a new process
  // track with a restart-suffixed name.
  ScopedEnv hook("PIMA_DEVD_TEST_HOOK",
                 "dev=1:after=6:action=sigkill:flag=" + flag);
  dram::Device device(pipeline_geometry());
  core::PipelineOptions opt;
  opt.k = 15;
  opt.hash_shards = 8;
  opt.devices = 3;
  opt.threads = 2;
  opt.isolate = true;
  opt.isolate_opts.allow_degrade = false;
  const auto result = core::run_pipeline(device, reads, opt);
  EXPECT_TRUE(fs::exists(flag)) << "hook never fired";
  expect_bit_identical(result, baseline.result);
  // Tracing is host-side observation: the model-class oracle must not
  // move because spans were recorded and harvested.
  EXPECT_EQ(session.metrics().json_snapshot(/*model_only=*/true),
            baseline.model_snapshot);

  auto& tracer = session.tracer();
  EXPECT_GE(tracer.process_count(), 3u);  // one track group per live worker
  const std::string json = tracer.chrome_json();
  EXPECT_NE(json.find("\"pima_devd d=0\""), std::string::npos);
  EXPECT_NE(json.find("(restart 1)"), std::string::npos);
  EXPECT_NE(json.find("devd:kmers"), std::string::npos);  // worker-side span
  EXPECT_NE(json.find("rpc:kmers"), std::string::npos);   // controller span
  // Flow links tie each controller rpc span to its worker execution.
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\": \"e\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"rpc\""), std::string::npos);
  session.reset();
  fs::remove_all(scratch);
}

TEST(ProcPoolObservability, WorkerCrashDumpsSchemaValidCrashReport) {
  auto& flight = telemetry::FlightRecorder::instance();
  flight.reset_for_tests();
  const auto scratch = fs::temp_directory_path() / "procpool_obs_flight";
  fs::remove_all(scratch);
  fs::create_directories(scratch);
  const auto report_path = (scratch / "crash_report.json").string();
  flight.set_output_path(report_path);
  const auto flag = (scratch / "flag").string();
  ScopedEnv hook("PIMA_DEVD_TEST_HOOK",
                 "dev=2:after=8:action=sigkill:flag=" + flag);
  const auto reads = workload_reads(17);
  core::PipelineOptions::IsolateOptions iso;
  iso.allow_degrade = false;
  const auto run = run_config(reads, /*isolate=*/true, 4, iso);
  ASSERT_FALSE(run.result.contigs.empty());
  EXPECT_GE(flight.dump_count(), 1u);
  ASSERT_TRUE(fs::exists(report_path));

  std::ifstream in(report_path);
  const std::string body((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const net::Json j = net::Json::parse(body);  // throws if invalid
  EXPECT_EQ(j.get_string("schema"), "pima.crash_report.v1");
  EXPECT_EQ(j.get_string("reason"), "worker_failure");
  ASSERT_TRUE(j.has("events"));
  EXPECT_FALSE(j.get("events").items().empty());
  EXPECT_NE(body.find("worker.failed"), std::string::npos);
  // The supervisor's state snapshot rode along.
  ASSERT_TRUE(j.has("state"));
  EXPECT_TRUE(j.get("state").has("procpool"));
  flight.reset_for_tests();
  fs::remove_all(scratch);
}

// ---- wire round-trips -------------------------------------------------------

TEST(ProcPoolWire, WorkerInitRoundTripsThroughJson) {
  core::WorkerInit init;
  init.geometry = pipeline_geometry();
  init.technology.tech.vdd = 1.05;
  init.technology.timing.t_rcd_ns = 14.5;
  init.device = 3;
  init.devices = 4;
  init.k = 21;
  init.hash_shards = 32;
  init.channels = 5;
  init.queue_capacity = 17;
  init.program_chunk = 100;
  init.capture_trace = true;
  init.stall_timeout_ms = 1234.5;
  const auto wire = core::worker_init_to_json(init);
  const auto parsed = core::worker_init_from_json(wire);
  // Geometry/Technology carry no operator==; a second serialization is the
  // byte oracle (net::Json renders doubles shortest-round-trip-exact).
  EXPECT_EQ(core::worker_init_to_json(parsed).dump(), wire.dump());
  EXPECT_EQ(parsed.device, 3u);
  EXPECT_EQ(parsed.k, 21u);
  EXPECT_TRUE(parsed.capture_trace);
}

TEST(ProcPoolWire, TypedErrorsRoundTripThroughResponses) {
  const auto roundtrip = [](const std::exception& e) -> std::string {
    const auto response = core::worker_error_response(e);
    try {
      runtime::throw_worker_error(response);
    } catch (const EngineStalledError& stalled) {
      EXPECT_EQ(stalled.channel(), 2u);
      EXPECT_EQ(stalled.subarray(), 7u);
      EXPECT_EQ(stalled.last_retired(), 41u);
      EXPECT_EQ(stalled.timeout_ms(), 250.0);
      return "EngineStalledError";
    } catch (const InputFormatError&) {
      return "InputFormatError";
    } catch (const CorruptCheckpointError&) {
      return "CorruptCheckpointError";
    } catch (const SimulationError&) {
      return "SimulationError";
    }
    return "no-throw";
  };
  EXPECT_EQ(roundtrip(EngineStalledError(2, 7, 41, 250.0)),
            "EngineStalledError");
  EXPECT_EQ(roundtrip(InputFormatError("bad")), "InputFormatError");
  EXPECT_EQ(roundtrip(CorruptCheckpointError("crc")), "CorruptCheckpointError");
  EXPECT_EQ(roundtrip(SimulationError("boom")), "SimulationError");
}

// ---- shard checkpoints ------------------------------------------------------

TEST(ProcPoolCheckpoint, ShardCheckpointRoundTripsAndPinsShard) {
  const auto dir = fs::temp_directory_path() / "procpool_shard_ckpt";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto path = (dir / "shard-2.ckpt").string();
  runtime::ShardCheckpoint sc;
  sc.fingerprint.k = 15;
  sc.fingerprint.hash_shards = 8;
  sc.fingerprint.devices = 4;
  sc.fingerprint.shard = 2;
  sc.stages_done = 2;
  runtime::save_shard_checkpoint(path, sc);
  EXPECT_EQ(runtime::load_shard_checkpoint(path), sc);

  // A whole-run snapshot is not a shard checkpoint: different magic.
  EXPECT_THROW(runtime::load_checkpoint(path), CorruptCheckpointError);

  // Flip one byte of the body: the CRC must reject it.
  auto bytes = [&] {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }();
  bytes[bytes.size() - 3] ^= 0x40;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  EXPECT_THROW(runtime::load_shard_checkpoint(path), CorruptCheckpointError);
  fs::remove_all(dir);
}

TEST(ProcPoolCheckpoint, ForeignShardCheckpointRefusesStart) {
  // A shard checkpoint from a different run shape must stop the supervisor
  // before any worker touches state (stale checkpoints from a *finished*
  // run are removed by the pipeline's fresh-run cleanup; this exercises
  // the guard itself).
  const auto dir = fs::temp_directory_path() / "procpool_foreign_ckpt";
  fs::remove_all(dir);
  fs::create_directories(dir);
  runtime::ShardCheckpoint stale;
  stale.fingerprint.k = 99;  // anything but the run's k
  stale.fingerprint.shard = 0;
  stale.stages_done = 1;
  runtime::save_shard_checkpoint((dir / "shard-0.ckpt").string(), stale);

  runtime::ProcPoolOptions opt;
  opt.devices = 1;
  opt.checkpoint_dir = dir.string();
  opt.fingerprint.k = 15;
  core::WorkerInit init;
  init.geometry = pipeline_geometry();
  init.k = 15;
  init.hash_shards = 4;
  init.channels = 1;
  runtime::ProcSupervisor sup(opt, [&](std::size_t d) {
    core::WorkerInit wi = init;
    wi.device = d;
    return core::worker_init_to_json(wi);
  });
  EXPECT_THROW(sup.start(), CorruptCheckpointError);
  fs::remove_all(dir);
}

// ---- exit classification ----------------------------------------------------

TEST(ProcPoolClassify, ExitClassNamesAreStable) {
  using runtime::WorkerExitClass;
  EXPECT_STREQ(runtime::to_string(WorkerExitClass::kClean), "clean exit");
  EXPECT_STREQ(runtime::to_string(WorkerExitClass::kStalled), "engine stall");
  EXPECT_STREQ(runtime::to_string(WorkerExitClass::kCrashExit), "crash exit");
  EXPECT_STREQ(runtime::to_string(WorkerExitClass::kSignal),
               "killed by signal");
  EXPECT_STREQ(runtime::to_string(WorkerExitClass::kTorn), "torn protocol");
  EXPECT_STREQ(runtime::to_string(WorkerExitClass::kWedged),
               "wedged (liveness deadline)");
}

}  // namespace
}  // namespace pima
