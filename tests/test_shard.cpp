// Cross-shard determinism battery (ctest -L shard, DESIGN.md §14).
//
// The multi-device contract: a run sharded over any number of simulated
// devices is indistinguishable — bit for bit — from the single-device run.
// The battery pins every observable surface: contigs, per-stage DeviceStats
// roll-ups, the model-class Prometheus snapshot, the merged command trace,
// and the per-device command sub-streams replayed through the golden model.
// Plus the algebra the device-indexed reductions rely on: DeviceStats /
// FaultStats fold properties and the Exchange merge discipline.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/bitvector.hpp"
#include "core/pipeline.hpp"
#include "dna/genome.hpp"
#include "dram/device.hpp"
#include "dram/isa.hpp"
#include "runtime/recovery.hpp"
#include "runtime/shard.hpp"
#include "telemetry/session.hpp"
#include "verify/fuzz.hpp"

namespace pima {
namespace {

dram::Geometry pipeline_geometry() {
  dram::Geometry g;
  g.rows = 512;
  g.compute_rows = 8;
  g.columns = 256;
  g.subarrays_per_mat = 16;
  g.mats_per_bank = 4;
  g.banks = 2;
  return g;
}

std::vector<dna::Sequence> workload_reads(std::uint64_t seed) {
  dna::GenomeParams gp;
  gp.length = 700;
  gp.repeat_count = 0;
  gp.seed = seed;
  dna::ReadSamplerParams rp;
  rp.coverage = 6.0;
  rp.read_length = 70;
  rp.seed = seed + 1;
  return dna::sample_reads(dna::generate_genome(gp), rp);
}

struct RunOutput {
  core::PipelineResult result;
  std::string model_snapshot;  ///< json_snapshot(model_only) — byte oracle
};

RunOutput run_config(const std::vector<dna::Sequence>& reads,
                     std::size_t devices, std::size_t threads,
                     bool capture = false) {
  auto& session = telemetry::TelemetrySession::instance();
  session.reset();
  session.enable_metrics();
  dram::Device device(pipeline_geometry());
  core::PipelineOptions opt;
  opt.k = 15;
  opt.hash_shards = 8;
  opt.devices = devices;
  opt.threads = threads;
  opt.capture_trace = capture;
  RunOutput out;
  out.result = core::run_pipeline(device, reads, opt);
  out.model_snapshot = session.metrics().json_snapshot(/*model_only=*/true);
  session.reset();
  return out;
}

void expect_bit_identical(const core::PipelineResult& a,
                          const core::PipelineResult& b) {
  EXPECT_EQ(a.contigs, b.contigs);
  EXPECT_EQ(a.distinct_kmers, b.distinct_kmers);
  EXPECT_EQ(a.graph_nodes, b.graph_nodes);
  EXPECT_EQ(a.graph_edges, b.graph_edges);
  EXPECT_EQ(a.hashmap.device, b.hashmap.device);
  EXPECT_EQ(a.debruijn.device, b.debruijn.device);
  EXPECT_EQ(a.traverse.device, b.traverse.device);
  EXPECT_EQ(a.fault_stats, b.fault_stats);
}

// ---- the battery: devices × threads × seeds --------------------------------

TEST(ShardBattery, OutputsBitIdenticalAcrossDeviceAndThreadCounts) {
  for (const std::uint64_t seed : {std::uint64_t{101}, std::uint64_t{202}}) {
    const auto reads = workload_reads(seed);
    const auto baseline = run_config(reads, 1, 1);
    ASSERT_FALSE(baseline.result.contigs.empty());
    ASSERT_FALSE(baseline.model_snapshot.empty());
    for (const std::size_t devices : {1u, 2u, 4u, 16u}) {
      for (const std::size_t threads : {1u, 4u}) {
        if (devices == 1 && threads == 1) continue;
        const auto run = run_config(reads, devices, threads);
        SCOPED_TRACE("seed=" + std::to_string(seed) +
                     " devices=" + std::to_string(devices) +
                     " threads=" + std::to_string(threads));
        expect_bit_identical(run.result, baseline.result);
        // The model-class metrics snapshot derives only from simulated
        // state — equal bytes for every (devices, threads) combination.
        EXPECT_EQ(run.model_snapshot, baseline.model_snapshot);
      }
    }
  }
}

// ---- per-device differential: captured sub-streams vs golden model ---------

TEST(ShardDifferential, PerDeviceTraceReplaysThroughGoldenModel) {
  const auto reads = workload_reads(303);
  const auto single = run_config(reads, 1, 1, /*capture=*/true);
  const auto sharded = run_config(reads, 4, 1, /*capture=*/true);
  // The merged capture is itself a determinism oracle: logical flat order,
  // so equal streams for any device count.
  ASSERT_FALSE(sharded.result.trace.empty());
  EXPECT_EQ(sharded.result.trace, single.result.trace);

  verify::FuzzOptions opts;
  opts.geometry = pipeline_geometry();
  // Every captured command already executed once on the production pool,
  // so a rejection during replay is a divergence, not an agreement.
  opts.diff.accept_symmetric_rejection = false;
  for (std::size_t d = 0; d < 4; ++d) {
    dram::Program part;
    for (const auto& inst : sharded.result.trace)
      if (inst.subarray % 4 == d) part.push_back(inst);
    ASSERT_FALSE(part.empty()) << "device " << d << " ran nothing";
    const auto divergence = verify::run_candidate(part, opts);
    EXPECT_FALSE(divergence.has_value())
        << "device " << d << ": " << divergence->report();
  }
}

// ---- DevicePool folds vs a single device -----------------------------------

dram::Geometry tiny_geometry() {
  dram::Geometry g;
  g.rows = 64;
  g.compute_rows = 8;
  g.columns = 64;
  g.subarrays_per_mat = 4;
  g.mats_per_bank = 2;
  g.banks = 1;
  return g;
}

// The same command sequence issued through a 3-device pool and through one
// bare device must produce identical roll-ups (identical doubles — the
// pool folds in logical flat order, not device order).
TEST(DevicePoolFolds, MatchSingleDeviceBitForBit) {
  const auto geom = tiny_geometry();
  dram::Device single(geom);
  dram::Device primary(geom);
  runtime::DevicePool pool(primary, 3);

  const auto issue = [&](auto&& subarray_of) {
    for (const std::size_t flat : {0u, 1u, 2u, 5u, 7u}) {
      auto& sa = subarray_of(flat);
      sa.write_row(0, BitVector(geom.columns));
      sa.write_row(1, BitVector(geom.columns));
      sa.aap_copy(0, sa.compute_row(0));
      sa.aap_copy(1, sa.compute_row(1));
      sa.aap_xor(sa.compute_row(0), sa.compute_row(1), 2);
    }
  };
  issue([&](std::size_t flat) -> dram::Subarray& {
    return single.subarray(flat);
  });
  issue([&](std::size_t flat) -> dram::Subarray& {
    return pool.subarray(flat);
  });

  EXPECT_EQ(pool.roll_up(), single.roll_up());
  EXPECT_EQ(pool.instantiated_count(), single.instantiated_count());
  const auto pc = pool.command_roll_up();
  const auto sc = single.command_roll_up();
  EXPECT_EQ(pc.total_commands(), sc.total_commands());
  EXPECT_EQ(pc.busy_ns, sc.busy_ns);
  EXPECT_EQ(pc.energy_pj, sc.energy_pj);
  for (std::size_t k = 0; k < dram::kCommandKindCount; ++k)
    EXPECT_EQ(pc.counts[k], sc.counts[k]) << "command kind " << k;

  // The device axis: per-device partials recombine to the pool totals.
  const auto parts = pool.per_device_roll_up();
  ASSERT_EQ(parts.size(), 3u);
  const auto reduced = runtime::reduce_devices(parts);
  const auto total = pool.roll_up();
  EXPECT_EQ(reduced.commands, total.commands);
  EXPECT_EQ(reduced.subarrays_used, total.subarrays_used);
  EXPECT_EQ(reduced.time_ns, total.time_ns);  // max over disjoint shards
}

// ---- fold algebra -----------------------------------------------------------

// Integer-valued doubles below 2^40 add exactly, so the associativity of
// the device-indexed reduction is testable bit-for-bit (the production
// folds sidestep rounding entirely by folding in a fixed logical order).
dram::DeviceStats random_stats(std::mt19937_64& rng) {
  dram::DeviceStats s;
  s.time_ns = static_cast<double>(rng() % (1u << 20));
  s.serial_ns = static_cast<double>(rng() % (1u << 20));
  s.energy_pj = static_cast<double>(rng() % (1u << 20));
  s.commands = rng() % 1000;
  s.subarrays_used = rng() % 64;
  return s;
}

runtime::FaultStats random_fault_stats(std::mt19937_64& rng) {
  runtime::FaultStats f;
  f.injected = rng() % 1000;
  f.detected = rng() % 1000;
  f.retried = rng() % 1000;
  f.remapped = rng() % 1000;
  f.escaped = rng() % 1000;
  f.vote_corrections = rng() % 1000;
  f.host_fallbacks = rng() % 1000;
  f.degraded_subarrays = rng() % 1000;
  return f;
}

TEST(FoldAlgebra, DeviceStatsAssociativeCommutativeWithIdentity) {
  std::mt19937_64 rng{7};
  for (int i = 0; i < 100; ++i) {
    const auto a = random_stats(rng), b = random_stats(rng),
               c = random_stats(rng);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a + dram::DeviceStats{}, a);
    EXPECT_EQ(dram::DeviceStats{} + a, a);
  }
}

TEST(FoldAlgebra, FaultStatsAssociativeCommutativeWithIdentity) {
  std::mt19937_64 rng{8};
  for (int i = 0; i < 100; ++i) {
    const auto a = random_fault_stats(rng), b = random_fault_stats(rng),
               c = random_fault_stats(rng);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a + runtime::FaultStats{}, a);
    EXPECT_EQ(runtime::FaultStats{} + a, a);
  }
}

TEST(FoldAlgebra, ReduceDevicesTakesMaxTimeAndAddsTheRest) {
  dram::DeviceStats a, b;
  a.time_ns = 10.0;
  a.serial_ns = 10.0;
  a.energy_pj = 1.0;
  a.commands = 3;
  a.subarrays_used = 2;
  b.time_ns = 25.0;
  b.serial_ns = 25.0;
  b.energy_pj = 2.0;
  b.commands = 4;
  b.subarrays_used = 1;
  const auto r = runtime::reduce_devices({a, b});
  EXPECT_EQ(r.time_ns, 25.0);    // devices run concurrently
  EXPECT_EQ(r.serial_ns, 35.0);  // 1-sub-array equivalent adds
  EXPECT_EQ(r.energy_pj, 3.0);
  EXPECT_EQ(r.commands, 7u);
  EXPECT_EQ(r.subarrays_used, 3u);  // disjoint shards
}

// ---- Exchange merge discipline ---------------------------------------------

TEST(ShardExchange, MergesByKeyThenSrcThenPushOrder) {
  runtime::Exchange<int> ex(3);
  ex.push(2, 0, 5, 20);
  ex.push(0, 0, 5, 10);  // same key: lower src first
  ex.push(1, 0, 1, 30);  // lowest key first
  ex.push(0, 0, 5, 11);  // same (key, src): push order
  EXPECT_EQ(ex.gather(0), (std::vector<int>{30, 10, 11, 20}));
  EXPECT_TRUE(ex.gather(0).empty());  // gather consumes
}

TEST(ShardExchange, MergedOrderInvariantUnderDeviceCount) {
  // The pipeline's usage pattern: item i is produced by its owner and
  // keyed by a global sequence number. The gathered stream must be the
  // same ascending-key stream for every device count.
  const std::vector<int> expected = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  for (const std::size_t devices : {1u, 2u, 4u, 7u}) {
    runtime::Exchange<int> ex(devices);
    // Push in per-owner bursts (the order a real sharded run produces).
    for (std::size_t owner = 0; owner < devices; ++owner)
      for (int i = 0; i < 10; ++i)
        if (static_cast<std::size_t>(i) % devices == owner)
          ex.push(owner, 0, static_cast<std::uint64_t>(i), i);
    EXPECT_EQ(ex.gather(0), expected) << devices << " devices";
  }
}

TEST(ShardExchange, ConcurrentProducersMergeDeterministically) {
  // The pipeline hands one Exchange to N engine worker threads, each
  // pushing only with its own `src` index (per-(src,dst) buffers make
  // that the whole synchronization contract — TSan enforces it here).
  // The merged stream must still be the device-count-invariant
  // ascending-key order, regardless of thread interleaving.
  std::vector<int> expected(512);
  for (int i = 0; i < 512; ++i) expected[i] = i;
  std::vector<int> reference;
  for (const std::size_t devices : {2u, 3u, 8u}) {
    runtime::Exchange<int> ex(devices);
    std::vector<std::thread> producers;
    for (std::size_t src = 0; src < devices; ++src)
      producers.emplace_back([&ex, src, devices] {
        for (int i = 0; i < 512; ++i)
          if (static_cast<std::size_t>(i) % devices == src)
            ex.push(src, 0, static_cast<std::uint64_t>(i), i);
      });
    for (auto& t : producers) t.join();
    const auto merged = ex.gather(0);
    EXPECT_EQ(merged, expected) << devices << " devices";
    if (reference.empty())
      reference = merged;
    else
      EXPECT_EQ(merged, reference) << devices << " devices";
  }
}

TEST(ShardPlanBasics, OwnerPartitionsFlatSpace) {
  runtime::ShardPlan one;
  EXPECT_FALSE(one.sharded());
  EXPECT_EQ(one.owner_of(17), 0u);
  runtime::ShardPlan four{4};
  EXPECT_TRUE(four.sharded());
  for (std::size_t flat = 0; flat < 32; ++flat)
    EXPECT_EQ(four.owner_of(flat), flat % 4);
}

}  // namespace
}  // namespace pima
