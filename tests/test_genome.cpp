#include "dna/genome.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pima::dna {
namespace {

TEST(Genome, GeneratesRequestedLength) {
  GenomeParams p;
  p.length = 5000;
  p.repeat_count = 0;
  EXPECT_EQ(generate_genome(p).size(), 5000u);
}

TEST(Genome, DeterministicForSeed) {
  GenomeParams p;
  p.length = 2000;
  EXPECT_EQ(generate_genome(p), generate_genome(p));
  GenomeParams q = p;
  q.seed = p.seed + 1;
  EXPECT_FALSE(generate_genome(p) == generate_genome(q));
}

TEST(Genome, GcContentNearTarget) {
  GenomeParams p;
  p.length = 200000;
  p.gc_content = 0.42;
  p.repeat_count = 0;
  const double gc = gc_fraction(generate_genome(p));
  EXPECT_NEAR(gc, 0.42, 0.02);
}

TEST(Genome, GcTargetIsRespectedAcrossRange) {
  for (const double target : {0.30, 0.50, 0.65}) {
    GenomeParams p;
    p.length = 150000;
    p.gc_content = target;
    p.repeat_count = 0;
    EXPECT_NEAR(gc_fraction(generate_genome(p)), target, 0.03);
  }
}

TEST(Genome, RepeatsCreateDuplicateWindows) {
  GenomeParams p;
  p.length = 50000;
  p.repeat_length = 200;
  p.repeat_count = 10;
  const auto g = generate_genome(p);
  // With 10 planted copies of a 200 bp element, some 50-mers must recur.
  const std::string s = g.to_string();
  bool found_dup = false;
  for (std::size_t probe = 0; probe < 10 && !found_dup; ++probe) {
    // Sample windows inside likely repeat copies by scanning for any
    // 50-mer that appears twice.
    const auto w = s.substr(probe * 4000, 50);
    const auto first = s.find(w);
    if (s.find(w, first + 1) != std::string::npos) found_dup = true;
  }
  // The stronger check: count distinct 64-mers < total 64-mers.
  std::size_t dups = 0;
  for (std::size_t i = 0; i + 64 < s.size(); i += 64) {
    const auto w = s.substr(i, 64);
    if (s.find(w, i + 1) != std::string::npos) ++dups;
  }
  EXPECT_GT(dups, 0u);
}

TEST(Genome, InvalidParamsThrow) {
  GenomeParams p;
  p.length = 0;
  EXPECT_THROW(generate_genome(p), PreconditionError);
  p.length = 100;
  p.gc_content = 1.5;
  EXPECT_THROW(generate_genome(p), PreconditionError);
}

TEST(Reads, CountFromCoverage) {
  GenomeParams gp;
  gp.length = 10000;
  gp.repeat_count = 0;
  const auto g = generate_genome(gp);
  ReadSamplerParams rp;
  rp.read_length = 100;
  rp.coverage = 10.0;
  const auto reads = sample_reads(g, rp);
  EXPECT_EQ(reads.size(), 1000u);  // 10 × 10000 / 100
  for (const auto& r : reads) EXPECT_EQ(r.size(), 100u);
}

TEST(Reads, ExplicitCountWins) {
  GenomeParams gp;
  gp.length = 5000;
  gp.repeat_count = 0;
  const auto g = generate_genome(gp);
  ReadSamplerParams rp;
  rp.read_count = 37;
  EXPECT_EQ(sample_reads(g, rp).size(), 37u);
}

TEST(Reads, AreSubstringsOfGenome) {
  GenomeParams gp;
  gp.length = 4000;
  gp.repeat_count = 0;
  const auto g = generate_genome(gp);
  const std::string gs = g.to_string();
  ReadSamplerParams rp;
  rp.read_count = 50;
  rp.read_length = 80;
  for (const auto& r : sample_reads(g, rp))
    EXPECT_NE(gs.find(r.to_string()), std::string::npos);
}

TEST(Reads, ErrorsPerturbBases) {
  GenomeParams gp;
  gp.length = 3000;
  gp.repeat_count = 0;
  const auto g = generate_genome(gp);
  ReadSamplerParams clean, noisy;
  clean.read_count = noisy.read_count = 200;
  noisy.error_rate = 0.05;
  const auto clean_reads = sample_reads(g, clean);
  const std::string gs = g.to_string();
  std::size_t mismatched_reads = 0;
  for (const auto& r : sample_reads(g, noisy))
    if (gs.find(r.to_string()) == std::string::npos) ++mismatched_reads;
  // 101 bases at 5% error: essentially every read mutates.
  EXPECT_GT(mismatched_reads, 150u);
  (void)clean_reads;
}

TEST(Reads, BothStrandsProducesReverseComplements) {
  GenomeParams gp;
  gp.length = 3000;
  gp.repeat_count = 0;
  const auto g = generate_genome(gp);
  const std::string fwd = g.to_string();
  const std::string rc = g.reverse_complement().to_string();
  ReadSamplerParams rp;
  rp.read_count = 100;
  rp.both_strands = true;
  std::size_t on_rc = 0;
  for (const auto& r : sample_reads(g, rp)) {
    const auto s = r.to_string();
    const bool in_fwd = fwd.find(s) != std::string::npos;
    const bool in_rc = rc.find(s) != std::string::npos;
    EXPECT_TRUE(in_fwd || in_rc);
    if (!in_fwd && in_rc) ++on_rc;
  }
  EXPECT_GT(on_rc, 20u);
}

TEST(Reads, DeterministicForSeed) {
  GenomeParams gp;
  gp.length = 2000;
  const auto g = generate_genome(gp);
  ReadSamplerParams rp;
  rp.read_count = 20;
  const auto a = sample_reads(g, rp);
  const auto b = sample_reads(g, rp);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Reads, InvalidParamsThrow) {
  GenomeParams gp;
  gp.length = 50;
  gp.repeat_count = 0;
  const auto g = generate_genome(gp);
  ReadSamplerParams rp;
  rp.read_length = 100;  // longer than genome
  EXPECT_THROW(sample_reads(g, rp), PreconditionError);
}

TEST(GcFraction, KnownValues) {
  EXPECT_DOUBLE_EQ(gc_fraction(Sequence::from_string("GGCC")), 1.0);
  EXPECT_DOUBLE_EQ(gc_fraction(Sequence::from_string("AATT")), 0.0);
  EXPECT_DOUBLE_EQ(gc_fraction(Sequence::from_string("ACGT")), 0.5);
  EXPECT_DOUBLE_EQ(gc_fraction(Sequence{}), 0.0);
}

}  // namespace
}  // namespace pima::dna
