#include "assembly/contig.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace pima::assembly {
namespace {

DeBruijnGraph graph_of(const std::vector<std::string>& reads, std::size_t k) {
  std::vector<dna::Sequence> seqs;
  for (const auto& r : reads) seqs.push_back(dna::Sequence::from_string(r));
  return DeBruijnGraph::from_counter(build_hashmap(seqs, k));
}

bool contains(const std::vector<dna::Sequence>& contigs,
              const std::string& s) {
  return std::any_of(contigs.begin(), contigs.end(),
                     [&](const auto& c) { return c.to_string() == s; });
}

TEST(Contigs, PaperFig5cUnitigs) {
  // Paper Fig. 5c: the k-mer set {CGTG GTGC TGCT GCTT CTTA TTAC TACG ACGG
  // TTAG TAGG} branches at node TTA and yields three contigs:
  // Contig-II "TTACGG" and Contig-III "TTAGG" exactly as in the figure;
  // the first unitig runs CGTG...CTT into the junction ("CGTGCTTA" here —
  // the figure's Contig-I "CGTGCTT" stops one base earlier at the branch).
  const auto g = graph_of({"CGTGCTTACGG", "CGTGCTTAGG"}, 4);
  const auto contigs = contigs_from_unitigs(g);
  EXPECT_TRUE(contains(contigs, "TTACGG"));
  EXPECT_TRUE(contains(contigs, "TTAGG"));
  EXPECT_TRUE(contains(contigs, "CGTGCTTA"));
}

TEST(Contigs, UnitigsUseEveryEdgeOnce) {
  const auto g = graph_of({"CGTGCTTACGG", "CGTGCTTAGG"}, 4);
  const auto contigs = contigs_from_unitigs(g);
  std::size_t spelled_edges = 0;
  for (const auto& c : contigs) spelled_edges += c.size() - 3;  // k-1 = 3
  EXPECT_EQ(spelled_edges, g.edge_count());
}

TEST(Contigs, UnitigsStopAtJunctions) {
  const auto g = graph_of({"CGTGCTTACGG", "CGTGCTTAGG"}, 4);
  // No unitig may contain the junction TTA in its interior... i.e. every
  // contig containing "TTAC" or "TTAG" must start with TTA.
  for (const auto& c : contigs_from_unitigs(g)) {
    const auto s = c.to_string();
    const auto pos = s.find("TTA");
    if (pos != std::string::npos && pos + 4 <= s.size() &&
        (s[pos + 3] == 'C' || s[pos + 3] == 'G')) {
      EXPECT_EQ(pos, 0u) << s;
    }
  }
}

TEST(Contigs, PerfectCycleBecomesOneContig) {
  // A circular 3-mer chain with no junctions: the cycle-sweep must pick
  // it up (ACG→CGT→GTA→TAC→ACG).
  std::vector<dna::Sequence> seqs{dna::Sequence::from_string("ACGTACG")};
  const auto g = DeBruijnGraph::from_counter(build_hashmap(seqs, 4));
  const auto contigs = contigs_from_unitigs(g);
  ASSERT_EQ(contigs.size(), 1u);
  EXPECT_EQ(contigs[0].size(), 7u);
}

TEST(Contigs, EulerContigsReconstructLinearSequence) {
  const auto g = graph_of({"ACGGTCAGGTTT"}, 4);
  const auto contigs = contigs_from_euler(g);
  ASSERT_EQ(contigs.size(), 1u);
  EXPECT_EQ(contigs[0].to_string(), "ACGGTCAGGTTT");
}

TEST(ContigStats, EmptyInput) {
  const auto s = compute_stats({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.n50, 0u);
  EXPECT_EQ(s.total_length, 0u);
}

TEST(ContigStats, KnownValues) {
  std::vector<dna::Sequence> contigs;
  for (const auto len : {10, 20, 30, 40}) {
    dna::Sequence s;
    for (int i = 0; i < len; ++i) s.push_back(dna::Base::A);
    contigs.push_back(std::move(s));
  }
  const auto st = compute_stats(contigs);
  EXPECT_EQ(st.count, 4u);
  EXPECT_EQ(st.total_length, 100u);
  EXPECT_EQ(st.longest, 40u);
  EXPECT_DOUBLE_EQ(st.mean_length, 25.0);
  // Sorted desc: 40 (40), +30 = 70 ≥ 50 ⇒ N50 = 30.
  EXPECT_EQ(st.n50, 30u);
}

TEST(ContigStats, N50SingleContig) {
  std::vector<dna::Sequence> contigs{dna::Sequence::from_string("ACGTACGT")};
  EXPECT_EQ(compute_stats(contigs).n50, 8u);
}

}  // namespace
}  // namespace pima::assembly
