#include "assembly/kmer.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dna/genome.hpp"

namespace pima::assembly {
namespace {

TEST(Kmer, FromSequenceAndBack) {
  const auto seq = dna::Sequence::from_string("CGTGC");
  const auto km = Kmer::from_sequence(seq, 0, 5);
  EXPECT_EQ(km.k(), 5u);
  EXPECT_EQ(km.to_string(), "CGTGC");
  EXPECT_EQ(km.base(0), dna::Base::C);
  EXPECT_EQ(km.base(4), dna::Base::C);
}

TEST(Kmer, WindowOffsets) {
  const auto seq = dna::Sequence::from_string("CGTGCGTGCTT");
  EXPECT_EQ(Kmer::from_sequence(seq, 1, 5).to_string(), "GTGCG");
  EXPECT_EQ(Kmer::from_sequence(seq, 6, 5).to_string(), "TGCTT");
  EXPECT_THROW(Kmer::from_sequence(seq, 7, 5), pima::PreconditionError);
}

TEST(Kmer, PackedEncodingMatchesPaper) {
  // "TG" → T=00 in bits [0,2), G=01 in bits [2,4) → packed 0b0100.
  const auto seq = dna::Sequence::from_string("TG");
  EXPECT_EQ(Kmer::from_sequence(seq, 0, 2).packed(), 0b0100u);
}

TEST(Kmer, ConstructorValidation) {
  EXPECT_THROW(Kmer(0, 0), pima::PreconditionError);
  EXPECT_THROW(Kmer(0, 33), pima::PreconditionError);
  EXPECT_THROW(Kmer(0b10000, 2), pima::PreconditionError);  // stray bits
  EXPECT_NO_THROW(Kmer(~std::uint64_t{0}, 32));
}

TEST(Kmer, RollingMatchesFresh) {
  const auto seq = dna::Sequence::from_string("CGTGCGTGCTTACGGA");
  const std::size_t k = 5;
  Kmer window = Kmer::from_sequence(seq, 0, k);
  for (std::size_t i = 1; i + k <= seq.size(); ++i) {
    window = window.rolled(seq.at(i + k - 1));
    EXPECT_EQ(window, Kmer::from_sequence(seq, i, k)) << "pos " << i;
  }
}

TEST(Kmer, RollingAtMaxK) {
  dna::GenomeParams gp;
  gp.length = 100;
  gp.repeat_count = 0;
  const auto seq = dna::generate_genome(gp);
  Kmer window = Kmer::from_sequence(seq, 0, 32);
  for (std::size_t i = 1; i + 32 <= seq.size(); ++i) {
    window = window.rolled(seq.at(i + 31));
    ASSERT_EQ(window, Kmer::from_sequence(seq, i, 32)) << i;
  }
}

TEST(Kmer, PrefixSuffix) {
  const auto seq = dna::Sequence::from_string("CGTG");
  const auto km = Kmer::from_sequence(seq, 0, 4);
  EXPECT_EQ(km.prefix().to_string(), "CGT");
  EXPECT_EQ(km.suffix().to_string(), "GTG");
  EXPECT_EQ(km.prefix().k(), 3u);
}

TEST(Kmer, ReverseComplement) {
  const auto seq = dna::Sequence::from_string("AACGT");
  const auto km = Kmer::from_sequence(seq, 0, 5);
  EXPECT_EQ(km.reverse_complement().to_string(), "ACGTT");
  EXPECT_EQ(km.reverse_complement().reverse_complement(), km);
}

TEST(Kmer, CanonicalIsStrandInvariant) {
  const auto seq = dna::Sequence::from_string("AACGT");
  const auto km = Kmer::from_sequence(seq, 0, 5);
  EXPECT_EQ(km.canonical(), km.reverse_complement().canonical());
}

TEST(Kmer, EqualityIncludesK) {
  EXPECT_NE(Kmer(0, 3), Kmer(0, 4));
  EXPECT_EQ(Kmer(5, 3), Kmer(5, 3));
}

TEST(Kmer, HashSpreads) {
  // Consecutive k-mers must land in different buckets almost always.
  pima::Rng rng(1);
  dna::GenomeParams gp;
  gp.length = 2000;
  gp.repeat_count = 0;
  const auto seq = dna::generate_genome(gp);
  std::size_t collisions = 0;
  constexpr std::size_t kBuckets = 64;
  for (std::size_t i = 0; i + 17 <= seq.size(); ++i) {
    const auto a = Kmer::from_sequence(seq, i, 16);
    const auto b = Kmer::from_sequence(seq, i + 1, 16);
    if (a.hash() % kBuckets == b.hash() % kBuckets) ++collisions;
  }
  // Expected collision rate 1/64 ≈ 1.6%; allow up to 4%.
  EXPECT_LT(collisions, (seq.size() * 4) / 100);
}

// Round-trip property across all evaluated k values (paper: 16/22/26/32).
class KmerRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KmerRoundTrip, SequenceRoundTripAndDbInvariants) {
  const std::size_t k = GetParam();
  dna::GenomeParams gp;
  gp.length = 500;
  gp.repeat_count = 0;
  gp.seed = 77 + k;
  const auto seq = dna::generate_genome(gp);
  for (std::size_t i = 0; i + k <= seq.size(); i += 13) {
    const auto km = Kmer::from_sequence(seq, i, k);
    EXPECT_EQ(km.to_string(), seq.subseq(i, k).to_string());
    // de Bruijn identity: suffix of prefix == prefix of suffix.
    if (k >= 3)
      EXPECT_EQ(km.prefix().suffix(), km.suffix().prefix());
  }
}

INSTANTIATE_TEST_SUITE_P(PaperKValues, KmerRoundTrip,
                         ::testing::Values(2, 5, 16, 22, 26, 31, 32));

}  // namespace
}  // namespace pima::assembly
