#include "core/layout.hpp"

#include <gtest/gtest.h>

namespace pima::core {
namespace {

TEST(Layout, PaperGeometryShard) {
  const dram::Geometry g;  // 1024×256, 8 compute rows
  const auto l = ShardLayout::for_geometry(g);
  // 977 keys + 31 value rows + 8 temp = 1016 data rows (paper Fig. 6
  // sketches 980/32/8 over a 4-compute-row array; see layout.hpp).
  EXPECT_EQ(l.kmer_rows, 977u);
  EXPECT_EQ(l.value_rows, 31u);
  EXPECT_EQ(l.temp_rows, 8u);
  EXPECT_EQ(l.counter_bits, 8u);
  EXPECT_LE(l.rows_used(), g.data_rows());
  // Counter capacity covers every key slot.
  EXPECT_GE(l.value_rows * l.counters_per_row(), l.kmer_rows);
}

TEST(Layout, RegionsAreDisjointAndOrdered) {
  const dram::Geometry g;
  const auto l = ShardLayout::for_geometry(g);
  EXPECT_EQ(l.kmer_row(0), 0u);
  EXPECT_EQ(l.kmer_row(l.kmer_rows - 1), l.kmer_rows - 1);
  EXPECT_EQ(l.value_row(0), l.kmer_rows);
  EXPECT_EQ(l.value_row(l.kmer_rows - 1),
            l.kmer_rows + l.value_rows - 1);
  EXPECT_EQ(l.temp_row(0), l.kmer_rows + l.value_rows);
  EXPECT_LT(l.temp_row(l.temp_rows - 1), g.data_rows());
}

TEST(Layout, CounterAddressing) {
  const dram::Geometry g;
  const auto l = ShardLayout::for_geometry(g);
  // 32 counters per row at 8 bits each.
  EXPECT_EQ(l.counters_per_row(), 32u);
  EXPECT_EQ(l.value_row(0), l.value_row(31));
  EXPECT_NE(l.value_row(31), l.value_row(32));
  EXPECT_EQ(l.value_bit_offset(0), 0u);
  EXPECT_EQ(l.value_bit_offset(1), 8u);
  EXPECT_EQ(l.value_bit_offset(33), 8u);
}

TEST(Layout, BoundsChecked) {
  const dram::Geometry g;
  const auto l = ShardLayout::for_geometry(g);
  EXPECT_THROW(l.kmer_row(l.kmer_rows), pima::PreconditionError);
  EXPECT_THROW(l.value_row(l.kmer_rows), pima::PreconditionError);
  EXPECT_THROW(l.temp_row(l.temp_rows), pima::PreconditionError);
}

TEST(Layout, AdaptsToSmallGeometry) {
  dram::Geometry g;
  g.rows = 64;
  g.compute_rows = 8;
  g.columns = 64;
  const auto l = ShardLayout::for_geometry(g);
  EXPECT_LE(l.rows_used(), g.data_rows());
  EXPECT_GT(l.kmer_rows, 0u);
  EXPECT_GE(l.value_rows * l.counters_per_row(), l.kmer_rows);
}

}  // namespace
}  // namespace pima::core
