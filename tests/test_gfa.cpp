#include "assembly/gfa.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "dna/genome.hpp"

namespace pima::assembly {
namespace {

DeBruijnGraph graph_of(const std::vector<std::string>& reads, std::size_t k) {
  std::vector<dna::Sequence> seqs;
  for (const auto& r : reads) seqs.push_back(dna::Sequence::from_string(r));
  return DeBruijnGraph::from_counter(build_hashmap(seqs, k), true);
}

TEST(Gfa, LinearSequenceIsOneSegment) {
  const auto g = graph_of({"ACGGTCAGTTT"}, 4);
  const auto gfa = build_gfa(g);
  ASSERT_EQ(gfa.segments.size(), 1u);
  EXPECT_EQ(gfa.segments[0].sequence.to_string(), "ACGGTCAGTTT");
  EXPECT_TRUE(gfa.links.empty());
  EXPECT_DOUBLE_EQ(gfa.segments[0].mean_coverage, 1.0);
}

TEST(Gfa, BranchingGraphHasLinksAtJunction) {
  // Paper Fig. 5c topology: three unitigs joined at the TTA junction.
  const auto g = graph_of({"CGTGCTTACGG", "CGTGCTTAGG"}, 4);
  const auto gfa = build_gfa(g);
  ASSERT_EQ(gfa.segments.size(), 3u);
  // The trunk links into both branches.
  EXPECT_EQ(gfa.links.size(), 2u);
  for (const auto& l : gfa.links) {
    EXPECT_EQ(l.overlap, 3u);  // (k-1)-mer junction overlap
    EXPECT_NE(l.from, l.to);
  }
  // Every edge appears in exactly one segment.
  std::size_t edges = 0;
  for (const auto& s : gfa.segments) edges += s.edges.size();
  EXPECT_EQ(edges, g.edge_count());
}

TEST(Gfa, CoverageReflectsMultiplicity) {
  const auto g = graph_of({"ACGGTCAG", "ACGGTCAG", "ACGGTCAG"}, 4);
  const auto gfa = build_gfa(g);
  ASSERT_EQ(gfa.segments.size(), 1u);
  EXPECT_DOUBLE_EQ(gfa.segments[0].mean_coverage, 3.0);
}

TEST(Gfa, SerializedFormatIsWellFormed) {
  const auto g = graph_of({"CGTGCTTACGG", "CGTGCTTAGG"}, 4);
  const auto text = to_gfa(g);
  std::istringstream in(text);
  std::string line;
  std::size_t s_lines = 0, l_lines = 0;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "H\tVN:Z:1.0");
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == 'S') {
      ++s_lines;
      EXPECT_NE(line.find("LN:i:"), std::string::npos);
      EXPECT_NE(line.find("dc:f:"), std::string::npos);
    } else if (line[0] == 'L') {
      ++l_lines;
      EXPECT_NE(line.find("\t+\t"), std::string::npos);
      EXPECT_EQ(line.back(), 'M');
    } else {
      FAIL() << "unexpected GFA record: " << line;
    }
  }
  EXPECT_EQ(s_lines, 3u);
  EXPECT_EQ(l_lines, 2u);
}

TEST(Gfa, SegmentsSpellWholeRandomGenome) {
  dna::GenomeParams gp;
  gp.length = 2000;
  gp.repeat_count = 2;
  gp.repeat_length = 60;
  const auto genome = dna::generate_genome(gp);
  dna::ReadSamplerParams rp;
  rp.coverage = 10.0;
  rp.read_length = 80;
  const auto reads = dna::sample_reads(genome, rp);
  const auto g = DeBruijnGraph::from_counter(build_hashmap(reads, 17), true);
  const auto gfa = build_gfa(g);
  std::size_t edges = 0;
  for (const auto& s : gfa.segments) {
    EXPECT_EQ(s.sequence.size(), s.edges.size() + 16);  // k-1 prefix
    edges += s.edges.size();
  }
  EXPECT_EQ(edges, g.edge_count());
  // Links only join segments that truly share the junction (k-1)-mer.
  for (const auto& l : gfa.links) {
    const auto& from = gfa.segments[l.from].sequence;
    const auto& to = gfa.segments[l.to].sequence;
    EXPECT_EQ(from.subseq(from.size() - l.overlap, l.overlap),
              to.subseq(0, l.overlap));
  }
}

}  // namespace
}  // namespace pima::assembly
