#include "circuit/montecarlo.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pima::circuit {
namespace {

constexpr std::size_t kTrials = 4000;  // fast but statistically meaningful

TEST(MonteCarlo, NoFailuresWithoutVariation) {
  const TechParams tech{};
  for (const auto mech :
       {Mechanism::kTripleRowActivation, Mechanism::kTwoRowActivation}) {
    const auto r = run_variation_trials(tech, mech, 0.0, 1000, 1);
    EXPECT_EQ(r.failures, 0u);
  }
}

TEST(MonteCarlo, SmallVariationIsSafe) {
  // Paper Table I: ±5% → 0.00 for both mechanisms.
  const TechParams tech{};
  EXPECT_EQ(run_variation_trials(tech, Mechanism::kTripleRowActivation, 0.05,
                                 kTrials, 2)
                .failures,
            0u);
  EXPECT_EQ(run_variation_trials(tech, Mechanism::kTwoRowActivation, 0.05,
                                 kTrials, 3)
                .failures,
            0u);
}

TEST(MonteCarlo, FailureRateMonotoneInVariation) {
  const TechParams tech{};
  for (const auto mech :
       {Mechanism::kTripleRowActivation, Mechanism::kTwoRowActivation}) {
    double prev = -1.0;
    for (const double x : {0.10, 0.20, 0.30}) {
      const auto r = run_variation_trials(tech, mech, x, kTrials, 42);
      EXPECT_GE(r.failure_percent, prev);
      prev = r.failure_percent;
    }
  }
}

TEST(MonteCarlo, TwoRowMoreRobustThanTra) {
  // The structural claim of Table I: at every nonzero level the two-row
  // mechanism fails no more often than TRA.
  const TechParams tech{};
  for (const double x : {0.15, 0.20, 0.30}) {
    const auto tra = run_variation_trials(
        tech, Mechanism::kTripleRowActivation, x, kTrials, 7);
    const auto two = run_variation_trials(tech, Mechanism::kTwoRowActivation,
                                          x, kTrials, 7);
    EXPECT_LT(two.failure_percent, tra.failure_percent) << "x=" << x;
  }
}

TEST(MonteCarlo, LargeVariationFailsNoticeably) {
  // At ±30% the paper reports double-digit failure percentages.
  const TechParams tech{};
  const auto tra = run_variation_trials(
      tech, Mechanism::kTripleRowActivation, 0.30, kTrials, 11);
  EXPECT_GT(tra.failure_percent, 10.0);
  EXPECT_LT(tra.failure_percent, 50.0);
}

TEST(MonteCarlo, DeterministicInSeed) {
  const TechParams tech{};
  const auto a = run_variation_trials(tech, Mechanism::kTwoRowActivation,
                                      0.2, 2000, 99);
  const auto b = run_variation_trials(tech, Mechanism::kTwoRowActivation,
                                      0.2, 2000, 99);
  EXPECT_EQ(a.failures, b.failures);
}

TEST(MonteCarlo, TableSweepShape) {
  const TechParams tech{};
  const auto table = run_variation_table(tech, 2000, 5);
  ASSERT_EQ(table.levels.size(), 5u);
  EXPECT_DOUBLE_EQ(table.levels.front(), 0.05);
  EXPECT_DOUBLE_EQ(table.levels.back(), 0.30);
  ASSERT_EQ(table.tra.size(), 5u);
  ASSERT_EQ(table.two_row.size(), 5u);
  // Monotone failure growth on both mechanisms across the sweep.
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_GE(table.tra[i].failure_percent,
              table.tra[i - 1].failure_percent);
    EXPECT_GE(table.two_row[i].failure_percent,
              table.two_row[i - 1].failure_percent);
  }
}

TEST(MonteCarlo, InvalidArgumentsThrow) {
  const TechParams tech{};
  EXPECT_THROW(run_variation_trials(tech, Mechanism::kTwoRowActivation, -0.1,
                                    10, 1),
               PreconditionError);
  EXPECT_THROW(
      run_variation_trials(tech, Mechanism::kTwoRowActivation, 0.1, 0, 1),
      PreconditionError);
}

}  // namespace
}  // namespace pima::circuit
