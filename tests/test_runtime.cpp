// Tests of the multi-channel PIM runtime: bounded-queue backpressure,
// engine routing/drain semantics, deterministic stats reduction, and the
// headline contract — pipeline results bit-identical for any channel count.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "assembly/gfa.hpp"
#include "common/error.hpp"
#include "core/pipeline.hpp"
#include "dna/genome.hpp"
#include "runtime/bounded_queue.hpp"
#include "runtime/engine.hpp"
#include "runtime/recovery.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/stats.hpp"

namespace pima::runtime {
namespace {

dram::Geometry small_geometry() {
  dram::Geometry g;
  g.rows = 512;
  g.compute_rows = 8;
  g.columns = 256;
  g.subarrays_per_mat = 16;
  g.mats_per_bank = 4;
  g.banks = 2;
  return g;
}

// ---- BoundedQueue ----

TEST(BoundedQueue, FifoAndCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: backpressure point
  EXPECT_EQ(q.pop(), 1);
  EXPECT_TRUE(q.try_push(3));
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

TEST(BoundedQueue, BlockingPushResumesWhenConsumerDrains) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(0));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.push(1));  // blocks until the consumer pops
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop(), 0);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop(), 1);
}

TEST(BoundedQueue, CloseDrainsThenEnds) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(7));
  q.close();
  EXPECT_FALSE(q.push(8));
  EXPECT_EQ(q.pop(), 7);
  EXPECT_EQ(q.pop(), std::nullopt);
}

// ---- Scheduler ----

TEST(Scheduler, InterleavedChannelOwnership) {
  Scheduler s(128, 4);
  EXPECT_EQ(s.channel_of(0), 0u);
  EXPECT_EQ(s.channel_of(5), 1u);
  EXPECT_EQ(s.channel_of(127), 3u);
  // The block placement matches the degree kernel's historical layout.
  EXPECT_EQ(s.block_subarray(2, 3, 5), (2 * 5 + 3) % 128u);
  EXPECT_EQ(s.block_subarray(3, 2, 5, 25), (3 * 5 + 2 + 25) % 128u);
  EXPECT_EQ(block_subarray(128, 2, 3, 5), s.block_subarray(2, 3, 5));
}

TEST(Scheduler, SplitPreservesPerSubarrayOrder) {
  Scheduler s(8, 3);
  dram::Program p;
  for (std::size_t i = 0; i < 20; ++i) {
    dram::Instruction inst;
    inst.op = dram::Opcode::kRowRead;
    inst.subarray = i % 8;
    inst.src1 = i;  // encodes submission order
    p.push_back(inst);
  }
  const auto parts = s.split(p);
  ASSERT_EQ(parts.size(), 3u);
  std::size_t total = 0;
  for (std::size_t c = 0; c < parts.size(); ++c) {
    dram::RowAddr last_per_sa[8] = {};
    for (const auto& inst : parts[c]) {
      EXPECT_EQ(s.channel_of(inst.subarray), c);
      EXPECT_GE(inst.src1, last_per_sa[inst.subarray]);
      last_per_sa[inst.subarray] = inst.src1;
      ++total;
    }
  }
  EXPECT_EQ(total, p.size());
}

// ---- Stats reduction ----

TEST(StatsReduction, ParallelAndSerialSemantics) {
  dram::DeviceStats a{}, b{};
  a.time_ns = 10;
  a.serial_ns = 12;
  a.energy_pj = 5;
  a.commands = 100;
  a.subarrays_used = 3;
  b.time_ns = 4;
  b.serial_ns = 4;
  b.energy_pj = 2;
  b.commands = 40;
  b.subarrays_used = 2;

  const auto par = reduce_parallel({a, b});
  EXPECT_DOUBLE_EQ(par.time_ns, 10);       // critical path: max
  EXPECT_DOUBLE_EQ(par.serial_ns, 16);     // 1-sub-array equivalent: sum
  EXPECT_DOUBLE_EQ(par.energy_pj, 7);
  EXPECT_EQ(par.commands, 140u);
  EXPECT_EQ(par.subarrays_used, 5u);       // disjoint ownership: sum

  const auto ser = reduce_serial({a, b});
  EXPECT_DOUBLE_EQ(ser.time_ns, 14);       // phases back to back: sum
  EXPECT_EQ(ser.subarrays_used, 3u);       // widest phase
  EXPECT_EQ(ser, a + b);                   // reduce_serial == operator+
}

// ---- Engine ----

TEST(Engine, BackpressuredSubmissionRetiresEverything) {
  dram::Device device(small_geometry());
  EngineOptions opt;
  opt.channels = 2;
  opt.queue_capacity = 2;  // tiny: producer must block and resume
  Engine engine(device, opt);
  std::atomic<int> retired{0};
  for (int i = 0; i < 500; ++i)
    engine.submit(static_cast<std::size_t>(i) % 2, [&] { ++retired; });
  engine.drain();
  EXPECT_EQ(retired.load(), 500);
}

TEST(Engine, TaskExceptionSurfacesOnDrain) {
  dram::Device device(small_geometry());
  EngineOptions opt;
  opt.channels = 2;
  Engine engine(device, opt);
  engine.submit(0, [] { throw SimulationError("channel fault"); });
  EXPECT_THROW(engine.drain(), SimulationError);
  // The engine survives a task failure and keeps executing.
  std::atomic<int> retired{0};
  engine.submit(0, [&] { ++retired; });
  engine.drain();
  EXPECT_EQ(retired.load(), 1);
}

TEST(Engine, FailFastRejectsSubmissionAfterChannelFailure) {
  dram::Device device(small_geometry());
  Engine engine(device, {.channels = 2, .queue_capacity = 4});
  engine.submit(0, [] { throw SimulationError("channel fault"); });
  while (!engine.channel_failed(0))
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // New work on the dead channel is rejected immediately...
  EXPECT_THROW(engine.submit(0, [] {}), SimulationError);
  // ...while the healthy channel keeps accepting.
  std::atomic<int> retired{0};
  engine.submit(1, [&] { ++retired; });
  // drain() collects the original failure without hanging, then resets.
  EXPECT_THROW(engine.drain(), SimulationError);
  engine.drain();
  EXPECT_EQ(retired.load(), 1);
  engine.submit(0, [&] { ++retired; });
  engine.drain();
  EXPECT_EQ(retired.load(), 2);
}

TEST(Engine, DrainResetsEveryChannelAfterMultiChannelFailure) {
  // Regression: drain() used to stop at the first failed channel, leaving
  // later channels' failure flags set — the next submit()/drain() cycle on
  // them was rejected forever. One drain() must reset ALL channels.
  dram::Device device(small_geometry());
  Engine engine(device, {.channels = 3, .queue_capacity = 4});
  engine.submit(0, [] { throw SimulationError("fault on channel 0"); });
  engine.submit(1, [] { throw SimulationError("fault on channel 1"); });
  // One drain throws exactly one error (channel 0's — lowest wins)…
  try {
    engine.drain();
    FAIL() << "expected drain() to rethrow the channel failure";
  } catch (const SimulationError& e) {
    EXPECT_NE(std::string(e.what()).find("channel 0"), std::string::npos);
  }
  // …and afterwards every channel, including channel 1, accepts work again.
  EXPECT_FALSE(engine.channel_failed(0));
  EXPECT_FALSE(engine.channel_failed(1));
  std::atomic<int> retired{0};
  engine.submit(0, [&] { ++retired; });
  engine.submit(1, [&] { ++retired; });
  engine.submit(2, [&] { ++retired; });
  engine.drain();
  EXPECT_EQ(retired.load(), 3);
}

TEST(Engine, WatchdogSurfacesStalledChannel) {
  dram::Device device(small_geometry());
  EngineOptions opt;
  opt.channels = 2;
  opt.queue_capacity = 4;
  opt.stall_timeout_ms = 50.0;
  std::atomic<bool> release{false};
  std::atomic<bool> task_done{false};
  const auto started = std::chrono::steady_clock::now();
  {
    Engine engine(device, opt);
    // Wedge channel 1's worker inside a task; the watchdog must convert the
    // hang into a typed error instead of letting drain() block forever.
    engine.submit_to_subarray(1, [&] {
      while (!release.load()) std::this_thread::yield();
      task_done = true;
    });
    try {
      engine.drain();
      FAIL() << "expected EngineStalledError";
    } catch (const EngineStalledError& e) {
      EXPECT_EQ(e.channel(), engine.channel_of(1));
      EXPECT_EQ(e.subarray(), 1u);
      EXPECT_EQ(e.last_retired(), 0u);
    }
    const auto waited = std::chrono::steady_clock::now() - started;
    // Detection is prompt: well under 20x the 50 ms deadline even on a
    // loaded CI machine, nowhere near an indefinite hang.
    EXPECT_LT(waited, std::chrono::seconds(5));
    EXPECT_TRUE(engine.stalled());
    // The poisoned engine refuses further work.
    EXPECT_THROW(engine.submit(0, [] {}), SimulationError);
    EXPECT_THROW(engine.drain(), SimulationError);
    // Un-wedge the worker before destruction so the test leaks nothing
    // (the destructor only abandons workers that are still stuck).
    release = true;
    while (!task_done.load()) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

TEST(Engine, WatchdogLeavesHealthyRunAlone) {
  dram::Device device(small_geometry());
  EngineOptions opt;
  opt.channels = 2;
  opt.stall_timeout_ms = 200.0;
  Engine engine(device, opt);
  std::atomic<int> retired{0};
  for (int i = 0; i < 100; ++i)
    engine.submit(static_cast<std::size_t>(i) % 2, [&] { ++retired; });
  engine.drain();
  EXPECT_EQ(retired.load(), 100);
  EXPECT_FALSE(engine.stalled());
}

TEST(RecoveryBackoff, ExponentialClampedAtCap) {
  RecoveryOptions opt;
  opt.backoff_base_ns = 100.0;
  opt.backoff_cap_ns = 1e6;
  EXPECT_DOUBLE_EQ(recovery_backoff_ns(opt, 0), 100.0);
  EXPECT_DOUBLE_EQ(recovery_backoff_ns(opt, 1), 200.0);
  EXPECT_DOUBLE_EQ(recovery_backoff_ns(opt, 10), 102400.0);
  // At the boundary: 100 * 2^13 = 819200 < cap, 100 * 2^14 = 1638400 > cap.
  EXPECT_DOUBLE_EQ(recovery_backoff_ns(opt, 13), 819200.0);
  EXPECT_DOUBLE_EQ(recovery_backoff_ns(opt, 14), 1e6);
  // The old `base << attempt` integer shift overflowed past attempt 63;
  // the clamped form stays finite and capped for any attempt count.
  EXPECT_DOUBLE_EQ(recovery_backoff_ns(opt, 63), 1e6);
  EXPECT_DOUBLE_EQ(recovery_backoff_ns(opt, 64), 1e6);
  EXPECT_DOUBLE_EQ(recovery_backoff_ns(opt, 100000), 1e6);
}

TEST(Engine, TasksQueuedBehindFailureAreDroppedNotExecuted) {
  dram::Device device(small_geometry());
  Engine engine(device, {.channels = 2, .queue_capacity = 8});
  // Gate the worker so the failure and its followers are all enqueued
  // before anything runs.
  std::atomic<bool> gate{false};
  std::atomic<int> ran{0};
  engine.submit(0, [&] {
    while (!gate.load()) std::this_thread::yield();
    throw SimulationError("dead task stream");
  });
  engine.submit(0, [&] { ++ran; });
  engine.submit(0, [&] { ++ran; });
  gate = true;
  EXPECT_THROW(engine.drain(), SimulationError);
  // The queued followers were dropped, not silently executed after the
  // failure — and drain() returned instead of hanging on them.
  EXPECT_EQ(ran.load(), 0);
}

TEST(Engine, ProgramSubmissionMatchesInlineExecution) {
  auto build_program = [] {
    dram::Program p;
    for (std::size_t i = 0; i < 64; ++i) {
      dram::Instruction inst;
      inst.op = dram::Opcode::kRowWrite;
      inst.subarray = i % 8;
      inst.src1 = i / 8;
      inst.payload = BitVector(256);
      inst.payload.set(i % 256, true);
      p.push_back(std::move(inst));
    }
    return p;
  };

  dram::Device serial_dev(small_geometry());
  {
    Engine serial(serial_dev, {.channels = 1, .queue_capacity = 4});
    serial.submit_program(build_program());
    serial.drain();
  }
  dram::Device parallel_dev(small_geometry());
  {
    Engine parallel(parallel_dev,
                    {.channels = 4, .queue_capacity = 4, .program_chunk = 8});
    parallel.submit_program(build_program());
    parallel.drain();
  }
  for (std::size_t sa = 0; sa < 8; ++sa) {
    const auto* a = serial_dev.subarray_if(sa);
    const auto* b = parallel_dev.subarray_if(sa);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    for (std::size_t r = 0; r < 8; ++r)
      EXPECT_EQ(a->peek_row(r).to_string(), b->peek_row(r).to_string());
    EXPECT_EQ(a->stats().total_commands(), b->stats().total_commands());
    EXPECT_DOUBLE_EQ(a->stats().busy_ns, b->stats().busy_ns);
  }
}

TEST(Engine, ChannelRollUpRefinesDeviceRollUp) {
  dram::Device device(small_geometry());
  Engine engine(device, {.channels = 4, .queue_capacity = 8});
  dram::Program p;
  for (std::size_t i = 0; i < 40; ++i) {
    dram::Instruction inst;
    inst.op = dram::Opcode::kRowRead;
    inst.subarray = i % 10;
    inst.src1 = 0;
    p.push_back(inst);
  }
  engine.submit_program(std::move(p));
  engine.drain();

  const auto per_channel = engine.channel_roll_up();
  ASSERT_EQ(per_channel.size(), 4u);
  const auto reduced = reduce_parallel(per_channel);
  const auto device_view = device.roll_up();
  EXPECT_DOUBLE_EQ(reduced.time_ns, device_view.time_ns);
  EXPECT_DOUBLE_EQ(reduced.energy_pj, device_view.energy_pj);
  EXPECT_EQ(reduced.commands, device_view.commands);
  EXPECT_EQ(reduced.subarrays_used, device_view.subarrays_used);
}

// ---- Pipeline-level contracts ----

struct PipelineRun {
  core::PipelineResult result;
  std::string gfa;
};

PipelineRun run_with_threads(std::size_t threads, std::size_t queue_capacity =
                                                      core::PipelineOptions{}
                                                          .queue_capacity) {
  dna::GenomeParams gp;
  gp.length = 1500;
  gp.repeat_count = 0;
  const auto genome = dna::generate_genome(gp);
  dna::ReadSamplerParams rp;
  rp.coverage = 8.0;
  rp.read_length = 70;
  const auto reads = dna::sample_reads(genome, rp);

  dram::Device device(small_geometry());
  core::PipelineOptions opt;
  opt.k = 17;
  opt.hash_shards = 8;
  opt.threads = threads;
  opt.queue_capacity = queue_capacity;
  PipelineRun run{core::run_pipeline(device, reads, opt), ""};
  std::ostringstream gfa;
  assembly::write_gfa(gfa, assembly::build_gfa(run.result.graph));
  run.gfa = gfa.str();
  return run;
}

void expect_identical(const PipelineRun& a, const PipelineRun& b) {
  EXPECT_EQ(a.result.distinct_kmers, b.result.distinct_kmers);
  EXPECT_EQ(a.result.graph_nodes, b.result.graph_nodes);
  EXPECT_EQ(a.result.graph_edges, b.result.graph_edges);
  ASSERT_EQ(a.result.contigs.size(), b.result.contigs.size());
  for (std::size_t i = 0; i < a.result.contigs.size(); ++i)
    EXPECT_EQ(a.result.contigs[i].to_string(), b.result.contigs[i].to_string());
  EXPECT_EQ(a.gfa, b.gfa);
  // DeviceStats are bit-identical, not merely close: per-sub-array command
  // sequences are unchanged, so every double accumulates in the same order.
  EXPECT_EQ(a.result.hashmap.device, b.result.hashmap.device);
  EXPECT_EQ(a.result.debruijn.device, b.result.debruijn.device);
  EXPECT_EQ(a.result.traverse.device, b.result.traverse.device);
  EXPECT_EQ(a.result.total(), b.result.total());
}

TEST(RuntimePipeline, SerialAndParallelAreBitIdentical) {
  const auto serial = run_with_threads(1);
  const auto parallel = run_with_threads(4);
  expect_identical(serial, parallel);
}

TEST(RuntimePipeline, RepeatedParallelRunsAreDeterministic) {
  const auto first = run_with_threads(4);
  const auto second = run_with_threads(4);
  expect_identical(first, second);
}

TEST(RuntimePipeline, TinyQueueCapacityStillCompletes) {
  const auto roomy = run_with_threads(3);
  const auto tight = run_with_threads(3, /*queue_capacity=*/2);
  expect_identical(roomy, tight);
}

}  // namespace
}  // namespace pima::runtime
