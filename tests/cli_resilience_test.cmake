# Drives pima_asm's resilience surface end to end and pins the documented
# exit codes (DESIGN.md §10): 0 ok, 2 usage, 3 malformed input, 4 I/O,
# 5 corrupt/incompatible checkpoint. Any other code on these paths is a
# regression — undocumented exit codes fail the run.
file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})

function(expect_exit code)
  # remaining args: the command line
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL ${code})
    message(FATAL_ERROR "expected exit ${code}, got '${rc}' from: ${ARGN}\n"
                        "stdout: ${out}\nstderr: ${err}")
  endif()
endfunction()

# Usage errors -> 2.
expect_exit(2 ${CLI})
expect_exit(2 ${CLI} pim-run)

# Missing input file -> 4 (I/O).
expect_exit(4 ${CLI} pim-run --reads ${WORK}/nonexistent.fa)

# Malformed FASTA -> 3 (input format), for several corruption shapes.
file(WRITE ${WORK}/truncated.fa ">only_a_header\n")
expect_exit(3 ${CLI} pim-run --reads ${WORK}/truncated.fa)
file(WRITE ${WORK}/garbage.fa ">r\nAC!GT\n")
expect_exit(3 ${CLI} pim-run --reads ${WORK}/garbage.fa)
file(WRITE ${WORK}/headerless.fa "ACGTACGT\n")
expect_exit(3 ${CLI} pim-run --reads ${WORK}/headerless.fa)
file(WRITE ${WORK}/empty.fa "")
expect_exit(3 ${CLI} pim-run --reads ${WORK}/empty.fa)

# A real workload for the checkpoint flow.
expect_exit(0 ${CLI} generate --genome ${WORK}/g.fa --reads ${WORK}/r.fa
            --length 3000 --coverage 8)

# --resume without --checkpoint-dir -> 2 (usage).
expect_exit(2 ${CLI} pim-run --reads ${WORK}/r.fa --k 15 --resume)

# Checkpointed run, then resume (skips all three stages) -> 0 both times.
expect_exit(0 ${CLI} pim-run --reads ${WORK}/r.fa --k 15 --threads 2
            --stall-timeout 30000 --checkpoint-dir ${WORK}/ckpt)
if(NOT EXISTS ${WORK}/ckpt/pipeline.ckpt)
  message(FATAL_ERROR "checkpoint file not written")
endif()
expect_exit(0 ${CLI} pim-run --reads ${WORK}/r.fa --k 15 --threads 1
            --checkpoint-dir ${WORK}/ckpt --resume)

# Resume under a different k -> 5 (incompatible checkpoint).
expect_exit(5 ${CLI} pim-run --reads ${WORK}/r.fa --k 17
            --checkpoint-dir ${WORK}/ckpt --resume)

# Sharded checkpointed run, resumed at a different thread count -> 0; the
# device count is pinned by the fingerprint, so resuming under a
# different --devices -> 5 (incompatible checkpoint).
expect_exit(0 ${CLI} pim-run --reads ${WORK}/r.fa --k 15 --threads 2
            --devices 4 --checkpoint-dir ${WORK}/ckpt_dev)
expect_exit(0 ${CLI} pim-run --reads ${WORK}/r.fa --k 15 --threads 1
            --devices 4 --checkpoint-dir ${WORK}/ckpt_dev --resume)
expect_exit(5 ${CLI} pim-run --reads ${WORK}/r.fa --k 15
            --checkpoint-dir ${WORK}/ckpt_dev --resume)

# Damaged checkpoint -> 5. Trailing garbage breaks the header's payload
# size; overwriting breaks the magic. (Exhaustive single-byte-flip coverage
# lives in test_checkpoint.cpp.)
file(APPEND ${WORK}/ckpt/pipeline.ckpt "garbage")
expect_exit(5 ${CLI} pim-run --reads ${WORK}/r.fa --k 15
            --checkpoint-dir ${WORK}/ckpt --resume)
file(WRITE ${WORK}/ckpt/pipeline.ckpt "this is not a checkpoint")
expect_exit(5 ${CLI} pim-run --reads ${WORK}/r.fa --k 15
            --checkpoint-dir ${WORK}/ckpt --resume)

# Resume combined with fault injection -> 1 (documented unsupported).
expect_exit(1 ${CLI} pim-run --reads ${WORK}/r.fa --k 15
            --checkpoint-dir ${WORK}/ckpt2 --resume --fault-variation 0.10)
