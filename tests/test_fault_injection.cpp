// Reliability / failure-injection tests: corrupt stored cells between
// operations and check the system's observable behaviour. The paper's
// Table I quantifies sensing failures; these tests exercise what a stored-
// bit failure does to the algorithms built on top.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/pim_hash_table.hpp"
#include "core/pipeline.hpp"
#include "dna/genome.hpp"
#include "dram/dpu.hpp"
#include "dram/subarray.hpp"

namespace pima {
namespace {

dram::Geometry geometry() {
  dram::Geometry g;
  g.rows = 256;
  g.compute_rows = 8;
  g.columns = 256;
  g.subarrays_per_mat = 4;
  g.mats_per_bank = 1;
  g.banks = 1;
  return g;
}

TEST(FaultInjection, FlipIsVisibleAndReversible) {
  dram::Subarray sa(geometry(), circuit::default_technology());
  EXPECT_FALSE(sa.peek_row(3).get(17));
  sa.inject_bit_flip(3, 17);
  EXPECT_TRUE(sa.peek_row(3).get(17));
  sa.inject_bit_flip(3, 17);
  EXPECT_FALSE(sa.peek_row(3).get(17));
  EXPECT_THROW(sa.inject_bit_flip(3, 256), PreconditionError);
  EXPECT_THROW(sa.inject_bit_flip(999, 0), PreconditionError);
}

TEST(FaultInjection, FlipDoesNotCostCommands) {
  dram::Subarray sa(geometry(), circuit::default_technology());
  sa.inject_bit_flip(0, 0);
  EXPECT_EQ(sa.stats().total_commands(), 0u);
}

TEST(FaultInjection, ComparatorDetectsCorruptedKey) {
  // A stored key row gets one flipped cell; the row-parallel XNOR + DPU
  // AND must report a mismatch against the original query.
  dram::Subarray sa(geometry(), circuit::default_technology());
  BitVector key(256);
  for (std::size_t i = 0; i < 32; ++i) key.set(i, (i * 7) % 3 == 0);
  sa.write_row(0, key);
  sa.write_row(1, key);
  sa.compare_rows(0, 1, 10);
  EXPECT_TRUE(dram::Dpu::and_reduce(sa, 10, 32));

  sa.inject_bit_flip(1, 13);
  sa.compare_rows(0, 1, 10);
  EXPECT_FALSE(dram::Dpu::and_reduce(sa, 10, 32));
  // The fault position is identifiable from the match bits.
  EXPECT_FALSE(sa.peek_row(10).get(13));
  EXPECT_EQ(sa.peek_row(10).popcount(), 255u);
}

TEST(FaultInjection, FaultOutsideKeyBitsIsMasked) {
  // The DPU reduces only the first 2k bits; padding faults must not
  // produce false mismatches.
  dram::Subarray sa(geometry(), circuit::default_technology());
  BitVector key(256);
  key.set(0, true);
  sa.write_row(0, key);
  sa.write_row(1, key);
  sa.inject_bit_flip(1, 200);  // beyond a 32-bit key
  sa.compare_rows(0, 1, 10);
  EXPECT_TRUE(dram::Dpu::and_reduce(sa, 10, 32));
  EXPECT_FALSE(dram::Dpu::and_reduce(sa, 10, 256));
}

TEST(FaultInjection, HashTableTreatsCorruptedKeyAsDistinct) {
  // After a key-row bit flip, the stored key no longer equals the logical
  // k-mer: the next arrival of that k-mer probes past it and re-inserts.
  dram::Device dev(geometry());
  core::PimHashTable table(dev, 1);
  const auto seq = dna::Sequence::from_string("ACGTACGTACGTACGT");
  const auto km = assembly::Kmer::from_sequence(seq, 0, 16);
  table.insert_or_increment(km);
  EXPECT_EQ(table.lookup(km).value(), 1u);

  // Find the occupied key row and corrupt it.
  bool corrupted = false;
  for (std::size_t slot = 0; slot < table.layout().kmer_rows && !corrupted;
       ++slot) {
    if (table.peek_slot(0, slot)) {
      dev.subarray(0).inject_bit_flip(table.layout().kmer_row(slot), 5);
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted);
  // The logical k-mer is no longer found...
  EXPECT_FALSE(table.lookup(km).has_value());
  // ...and a new arrival creates a fresh entry rather than corrupting the
  // old count.
  EXPECT_EQ(table.insert_or_increment(km), 1u);
  EXPECT_EQ(table.distinct_kmers(), 2u);
}

TEST(FaultInjection, ComputeRowFlipCorruptsTwoRowActivation) {
  // A weak cell in a staged operand (x1..x8) corrupts the activation it
  // feeds: the XNOR result flips in exactly the faulted column.
  dram::Subarray sa(geometry(), circuit::default_technology());
  const dram::RowAddr x1 = sa.compute_row(0);
  const dram::RowAddr x2 = sa.compute_row(1);
  const dram::RowAddr dst = sa.compute_row(2);
  BitVector a(256), b(256);
  for (std::size_t i = 0; i < 256; ++i) {
    a.set(i, i % 3 == 0);
    b.set(i, i % 5 == 0);
  }
  sa.write_row(x1, a);
  sa.write_row(x2, b);
  sa.aap_xnor(x1, x2, dst);
  const BitVector clean = sa.peek_row(dst);

  sa.write_row(x1, a);
  sa.write_row(x2, b);
  sa.inject_bit_flip(x1, 42);
  sa.aap_xnor(x1, x2, dst);
  const BitVector& faulty = sa.peek_row(dst);
  for (std::size_t c = 0; c < 256; ++c)
    EXPECT_EQ(faulty.get(c), c == 42 ? !clean.get(c) : clean.get(c)) << c;
}

TEST(FaultInjection, LatchFlipPropagatesThroughSumCycle) {
  // An upset carry latch bit is consumed by the next sum cycle:
  // dst ← a ⊕ b ⊕ latch feels the flip in exactly that column.
  dram::Subarray sa(geometry(), circuit::default_technology());
  const dram::RowAddr x1 = sa.compute_row(0);
  const dram::RowAddr x2 = sa.compute_row(1);
  const dram::RowAddr dst = sa.compute_row(2);
  BitVector ones(256), zeros(256);
  ones.fill(true);
  sa.write_row(x1, ones);
  sa.write_row(x2, zeros);
  sa.reset_latch();
  sa.inject_latch_flip(7);
  EXPECT_TRUE(sa.peek_latch().get(7));
  sa.sum_cycle(x1, x2, dst);  // 1 ⊕ 0 ⊕ latch
  for (std::size_t c = 0; c < 256; ++c)
    EXPECT_EQ(sa.peek_row(dst).get(c), c != 7) << c;
}

TEST(FaultInjection, LatchFlipIsZeroCostAndBoundsChecked) {
  dram::Subarray sa(geometry(), circuit::default_technology());
  sa.inject_latch_flip(0);
  EXPECT_EQ(sa.stats().total_commands(), 0u);
  EXPECT_THROW(sa.inject_latch_flip(256), PreconditionError);
}

TEST(FaultInjection, AdditionPropagatesFaultyOperandBit) {
  // Corrupting bit row i of an operand changes the vertical sum by 2^i in
  // exactly the faulted column — arithmetic felt end to end.
  dram::Subarray sa(geometry(), circuit::default_technology());
  const std::vector<dram::RowAddr> a{0, 1}, b{4, 5}, s{8, 9};
  BitVector zero(256);
  for (const auto r : {0u, 1u, 4u, 5u}) sa.write_row(r, zero);
  // a = 1 everywhere (bit0 set), b = 0.
  BitVector ones(256);
  ones.fill(true);
  sa.write_row(0, ones);
  sa.inject_bit_flip(4, 99);  // b gains +1 in column 99
  sa.add_vertical(a, b, s, 20);
  for (std::size_t c = 0; c < 256; ++c) {
    const int sum = (sa.peek_row(8).get(c) ? 1 : 0) +
                    (sa.peek_row(9).get(c) ? 2 : 0);
    EXPECT_EQ(sum, c == 99 ? 2 : 1) << c;
  }
}

// ---- Fault-path determinism under randomized configurations --------------
//
// The determinism contract extends to the stochastic fault process: every
// FaultInjector RNG is forked from (config seed, sub-array flat index), and
// per-sub-array command sequences are channel-count invariant — so the
// whole FaultStats roll-up must be bit-identical for any --threads value,
// whatever the configuration. Checked over randomized fault configs, not
// just one hand-picked point.
TEST(FaultInjection, RandomizedConfigsAreThreadCountInvariant) {
  dna::GenomeParams gp;
  gp.length = 700;
  gp.repeat_count = 0;
  const auto genome = dna::generate_genome(gp);
  dna::ReadSamplerParams rp;
  rp.coverage = 5.0;
  rp.read_length = 70;
  const auto reads = dna::sample_reads(genome, rp);

  dram::Geometry g;
  g.rows = 512;
  g.compute_rows = 8;
  g.columns = 256;
  g.subarrays_per_mat = 8;
  g.mats_per_bank = 1;
  g.banks = 1;

  Rng rng(4242);
  for (int trial = 0; trial < 3; ++trial) {
    core::PipelineOptions opt;
    opt.k = 15;
    opt.hash_shards = 4;
    opt.fault.variation = 0.10 + 0.05 * static_cast<double>(rng.uniform(4));
    opt.fault.seed = rng();
    opt.fault.retention_flip_per_op = rng.bernoulli(0.5) ? 1e-4 : 0.0;
    opt.fault.weak_row_fraction = rng.bernoulli(0.5) ? 0.02 : 0.0;
    opt.recovery.mode = rng.bernoulli(0.5) ? runtime::RecoveryMode::kRetry
                                           : runtime::RecoveryMode::kVote;

    auto run = [&](std::size_t threads) {
      core::PipelineOptions o = opt;
      o.threads = threads;
      dram::Device dev(g);
      return core::run_pipeline(dev, reads, o);
    };
    const auto serial = run(1);
    const auto parallel = run(3);
    EXPECT_EQ(serial.fault_stats, parallel.fault_stats)
        << "trial " << trial << " variation " << opt.fault.variation
        << " seed " << opt.fault.seed;
    EXPECT_GT(serial.fault_stats.injected, 0u) << "trial " << trial;
  }
}

}  // namespace
}  // namespace pima
