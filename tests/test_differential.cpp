// Differential verification: the production DRAM model against the golden
// oracle, over fuzzed command streams, captured traces and injected faults.
#include "verify/differential.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "dram/isa.hpp"
#include "verify/fuzz.hpp"

namespace pima::verify {
namespace {

dram::Geometry tiny() {
  dram::Geometry g;
  g.rows = 64;
  g.compute_rows = 8;
  g.columns = 64;
  g.subarrays_per_mat = 4;
  g.mats_per_bank = 2;
  g.banks = 2;
  return g;
}

FuzzOptions tiny_fuzz(std::uint64_t seed, std::size_t ops) {
  FuzzOptions o;
  o.seed = seed;
  o.ops = ops;
  o.subarrays = 2;
  o.geometry = tiny();
  return o;
}

// The headline property: over >= 1000 independently seeded random command
// sequences, the word-parallel production model and the naive golden model
// never disagree — not in any touched row, not in the carry latch, not in
// any read or reduction result.
TEST(Differential, ThousandSeededSequencesNoDivergence) {
  for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
    const FuzzOptions opts = tiny_fuzz(seed, 40);
    const auto program = generate_program(opts);
    const auto d = run_candidate(program, opts);
    ASSERT_FALSE(d.has_value()) << "seed " << seed << ": " << d->report();
  }
}

// A handful of long sequences exercise the periodic full-state diff path
// (every 64 instructions) and deeper latch histories.
TEST(Differential, LongSequencesNoDivergence) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    FuzzOptions opts = tiny_fuzz(seed * 101, 1000);
    opts.subarrays = 3;
    const auto d = run_candidate(generate_program(opts), opts);
    ASSERT_FALSE(d.has_value()) << "seed " << opts.seed << ": " << d->report();
  }
}

TEST(Differential, GeneratedProgramsAreValidByConstruction) {
  const FuzzOptions opts = tiny_fuzz(42, 500);
  const auto program = generate_program(opts);
  ASSERT_EQ(program.size(), 500u);
  dram::Device device(opts.geometry);
  EXPECT_NO_THROW(dram::execute(device, program));
}

TEST(Differential, InjectedRowBitFlipIsDetected) {
  const FuzzOptions opts = tiny_fuzz(3, 50);
  const Prelude flip = [](dram::Device& device) {
    device.subarray(std::size_t{0}).inject_bit_flip(5, 17);
  };
  const auto d = run_candidate(generate_program(opts), opts, flip);
  ASSERT_TRUE(d.has_value());
}

TEST(Differential, InjectedLatchFlipDetectedAndShrunkToTinyRepro) {
  FuzzOptions opts = tiny_fuzz(7, 120);
  auto program = generate_program(opts);
  // Front a sum cycle so the corrupted latch provably propagates into a row
  // before any TRA / latch reset can overwrite it in both models.
  dram::Instruction observe;
  observe.op = dram::Opcode::kSum;
  observe.subarray = 0;
  observe.src1 = opts.geometry.data_rows();
  observe.src2 = opts.geometry.data_rows() + 1;
  observe.dst = 0;
  program.insert(program.begin(), observe);

  const Prelude flip = [](dram::Device& device) {
    device.subarray(std::size_t{0}).inject_latch_flip(0);
  };
  const auto d = run_candidate(program, opts, flip);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->command_index, 0u);  // caught at the very first sum cycle

  const auto shrunk = shrink(program, opts, flip);
  ASSERT_TRUE(shrunk.has_value());
  // The flip lives in the device state itself, so the minimal repro needs
  // at most the observing command — far under the 10-command bound.
  EXPECT_LE(shrunk->program.size(), 10u);
  EXPECT_TRUE(shrunk->divergence.report().find("latch") != std::string::npos ||
              shrunk->divergence.report().find("row") != std::string::npos);
}

TEST(Differential, ShrinkReturnsNulloptForPassingProgram) {
  const FuzzOptions opts = tiny_fuzz(11, 30);
  EXPECT_FALSE(shrink(generate_program(opts), opts).has_value());
}

TEST(Differential, SymmetricRejectionIsAgreement) {
  // XNOR on data rows is illegal on both models: agreement, not divergence.
  dram::Instruction bad;
  bad.op = dram::Opcode::kAapXnor;
  bad.src1 = 1;
  bad.src2 = 2;
  bad.dst = 3;
  EXPECT_FALSE(run_differential(tiny(), {bad}).has_value());

  // Aliased AAP copy is rejected by both models too.
  dram::Instruction aliased;
  aliased.op = dram::Opcode::kAapCopy;
  aliased.src1 = 4;
  aliased.dst = 4;
  EXPECT_FALSE(run_differential(tiny(), {aliased}).has_value());
}

TEST(Differential, StrictModeReportsSymmetricRejection) {
  // Replaying a captured trace under the wrong geometry makes both models
  // reject compute-row activations that were legal at capture time. In
  // strict mode that is a finding, not agreement.
  dram::Instruction bad;
  bad.op = dram::Opcode::kAapXnor;
  bad.src1 = 1;
  bad.src2 = 2;
  bad.dst = 3;
  DifferentialOptions strict;
  strict.accept_symmetric_rejection = false;
  const auto d = run_differential(tiny(), {bad}, strict);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->site, DivergenceSite::kRejection);
  EXPECT_NE(d->detail.find("both models rejected"), std::string::npos);
}

TEST(Differential, DivergenceReportPinpointsCommandRowAndBit) {
  const dram::Geometry g = tiny();
  dram::Device device(g);
  golden::GoldenDevice golden(g);
  // Make the models disagree by hand: flip a stored bit on the device only.
  device.subarray(std::size_t{0}).inject_bit_flip(9, 13);
  dram::Instruction copy;  // copies the corrupted row: caught immediately
  copy.op = dram::Opcode::kAapCopy;
  copy.src1 = 9;
  copy.dst = 20;
  const auto d = run_differential(device, golden, {copy});
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->site, DivergenceSite::kRow);
  EXPECT_EQ(d->command_index, 0u);
  EXPECT_EQ(d->subarray, 0u);
  EXPECT_EQ(d->bit, 13u);
  EXPECT_TRUE(d->device_bit);
  EXPECT_FALSE(d->golden_bit);
  EXPECT_NE(d->report().find("command 0"), std::string::npos);
  EXPECT_NE(d->report().find("bit 13"), std::string::npos);
}

TEST(Differential, ReadAndReductionResultsAreCompared) {
  const FuzzOptions opts = tiny_fuzz(1, 0);
  dram::Program program;
  dram::Instruction w;
  w.op = dram::Opcode::kRowWrite;
  w.src1 = 2;
  w.payload = BitVector(tiny().columns);
  w.payload.set(3, true);
  program.push_back(w);
  dram::Instruction rd;
  rd.op = dram::Opcode::kRowRead;
  rd.src1 = 2;
  program.push_back(rd);
  dram::Instruction pc;
  pc.op = dram::Opcode::kDpuPopcount;
  pc.src1 = 2;
  pc.width = tiny().columns;
  program.push_back(pc);
  EXPECT_FALSE(run_candidate(program, opts).has_value());
}

// ---- Trace capture / replay round trip ----------------------------------

TEST(Differential, CapturedTraceReplaysCleanThroughBothModels) {
  const dram::Geometry g = tiny();
  dram::Device device(g);
  device.enable_tracing();
  auto& sa = device.subarray(std::size_t{1});
  const auto x1 = sa.compute_row(0), x2 = sa.compute_row(1),
             x3 = sa.compute_row(2);
  BitVector bits(g.columns);
  for (std::size_t c = 0; c < g.columns; c += 3) bits.set(c, true);
  sa.write_row(5, bits);
  sa.aap_copy(5, 6);
  sa.aap_copy(5, x1);
  sa.aap_copy(6, x2);
  sa.aap_tra_carry(x1, x2, x3, 7);
  sa.aap_copy(5, x1);
  sa.aap_copy(6, x2);
  sa.sum_cycle(x1, x2, 8);
  sa.reset_latch();
  sa.compare_rows(5, 6, 9);

  const auto program = dram::captured_program(device);
  ASSERT_FALSE(program.empty());
  // The replay reproduces the exact final state on a fresh device pair.
  auto divergence = run_differential(g, program);
  EXPECT_FALSE(divergence.has_value()) << divergence->report();

  // And the replayed device matches the original, row for row.
  dram::Device replayed(g);
  dram::execute(replayed, program);
  for (dram::RowAddr r = 0; r < g.rows; ++r)
    EXPECT_EQ(replayed.subarray(std::size_t{1}).peek_row(r), sa.peek_row(r))
        << "row " << r;
  EXPECT_EQ(replayed.subarray(std::size_t{1}).peek_latch(), sa.peek_latch());
}

TEST(Differential, CapturedProgramSurvivesTextRoundTrip) {
  const dram::Geometry g = tiny();
  dram::Device device(g);
  device.enable_tracing();
  auto& sa = device.subarray(std::size_t{0});
  BitVector bits(g.columns);
  bits.set(0, true);
  bits.set(g.columns - 1, true);
  sa.write_row(3, bits);
  sa.aap_copy(3, sa.compute_row(0));
  sa.aap_copy(3, sa.compute_row(1));
  sa.aap_xnor(sa.compute_row(0), sa.compute_row(1), 4);
  sa.reset_latch();

  const auto program = dram::captured_program(device);
  std::istringstream in(dram::to_text(program));
  const auto parsed = dram::parse_program(in);
  EXPECT_EQ(parsed, program);
}

TEST(Differential, CapturedProgramRequiresTracing) {
  dram::Device device(tiny());
  EXPECT_THROW((void)dram::captured_program(device), PreconditionError);
}

}  // namespace
}  // namespace pima::verify
