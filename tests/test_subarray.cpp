#include "dram/subarray.hpp"

#include <gtest/gtest.h>

#include "circuit/sense_amp.hpp"
#include "common/rng.hpp"

namespace pima::dram {
namespace {

Geometry small_geometry() {
  Geometry g;
  g.rows = 64;
  g.compute_rows = 8;
  g.columns = 64;
  g.subarrays_per_mat = 1;
  g.mats_per_bank = 1;
  g.banks = 1;
  return g;
}

BitVector random_row(Rng& rng, std::size_t n) {
  BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

class SubarrayTest : public ::testing::Test {
 protected:
  SubarrayTest() : sa_(small_geometry(), circuit::default_technology()) {}
  Subarray sa_;
};

TEST_F(SubarrayTest, GeometryRegions) {
  EXPECT_EQ(sa_.geometry().data_rows(), 56u);
  EXPECT_EQ(sa_.compute_row(0), 56u);
  EXPECT_EQ(sa_.compute_row(7), 63u);
  EXPECT_THROW(sa_.compute_row(8), pima::PreconditionError);
  EXPECT_FALSE(sa_.is_compute_row(55));
  EXPECT_TRUE(sa_.is_compute_row(56));
}

TEST_F(SubarrayTest, WriteReadRoundTrip) {
  Rng rng(1);
  const auto bits = random_row(rng, 64);
  sa_.write_row(5, bits);
  EXPECT_EQ(sa_.read_row(5), bits);
  EXPECT_EQ(sa_.peek_row(5), bits);
}

TEST_F(SubarrayTest, WriteValidatesWidthAndAddress) {
  EXPECT_THROW(sa_.write_row(5, BitVector(63)), pima::PreconditionError);
  EXPECT_THROW(sa_.write_row(64, BitVector(64)), pima::PreconditionError);
  EXPECT_THROW(sa_.read_row(100), pima::PreconditionError);
}

TEST_F(SubarrayTest, AapCopyClones) {
  Rng rng(2);
  const auto bits = random_row(rng, 64);
  sa_.write_row(3, bits);
  sa_.aap_copy(3, 40);
  EXPECT_EQ(sa_.peek_row(40), bits);
  EXPECT_EQ(sa_.peek_row(3), bits);  // source preserved (RowClone)
}

TEST_F(SubarrayTest, XnorComputesAndDestroysOperands) {
  Rng rng(3);
  const auto a = random_row(rng, 64);
  const auto b = random_row(rng, 64);
  const auto x1 = sa_.compute_row(0), x2 = sa_.compute_row(1);
  sa_.write_row(x1, a);
  sa_.write_row(x2, b);
  sa_.aap_xnor(x1, x2, 10);
  const auto expect = BitVector::bit_xnor(a, b);
  EXPECT_EQ(sa_.peek_row(10), expect);
  // Charge sharing destroyed the operands; SA restored the result.
  EXPECT_EQ(sa_.peek_row(x1), expect);
  EXPECT_EQ(sa_.peek_row(x2), expect);
}

TEST_F(SubarrayTest, XorVariant) {
  Rng rng(4);
  const auto a = random_row(rng, 64);
  const auto b = random_row(rng, 64);
  sa_.write_row(sa_.compute_row(0), a);
  sa_.write_row(sa_.compute_row(1), b);
  sa_.aap_xor(sa_.compute_row(0), sa_.compute_row(1), 11);
  EXPECT_EQ(sa_.peek_row(11), BitVector::bit_xor(a, b));
}

TEST_F(SubarrayTest, MultiRowActivationRestrictedToComputeRows) {
  // The modified row decoder only spans x1..x8 (paper Fig. 1b).
  EXPECT_THROW(sa_.aap_xnor(1, 2, 10), pima::PreconditionError);
  EXPECT_THROW(sa_.aap_xnor(sa_.compute_row(0), 2, 10),
               pima::PreconditionError);
  EXPECT_THROW(sa_.aap_tra_carry(1, 2, 3, 10), pima::PreconditionError);
  EXPECT_THROW(sa_.sum_cycle(1, 2, 10), pima::PreconditionError);
  // Distinct-row requirements.
  const auto x1 = sa_.compute_row(0);
  EXPECT_THROW(sa_.aap_xnor(x1, x1, 10), pima::PreconditionError);
  EXPECT_THROW(sa_.aap_tra_carry(x1, x1, sa_.compute_row(2), 10),
               pima::PreconditionError);
}

TEST_F(SubarrayTest, TraMajorityAndLatch) {
  Rng rng(5);
  const auto a = random_row(rng, 64);
  const auto b = random_row(rng, 64);
  const auto c = random_row(rng, 64);
  const auto x1 = sa_.compute_row(0), x2 = sa_.compute_row(1),
             x3 = sa_.compute_row(2);
  sa_.write_row(x1, a);
  sa_.write_row(x2, b);
  sa_.write_row(x3, c);
  sa_.aap_tra_carry(x1, x2, x3, 12);
  const auto maj = BitVector::bit_maj3(a, b, c);
  EXPECT_EQ(sa_.peek_row(12), maj);
  EXPECT_EQ(sa_.peek_latch(), maj);
  // Ambit semantics: all three activated rows hold the majority.
  EXPECT_EQ(sa_.peek_row(x1), maj);
  EXPECT_EQ(sa_.peek_row(x2), maj);
  EXPECT_EQ(sa_.peek_row(x3), maj);
}

// dst may alias one of the activated rows (add_vertical issues TRA with
// dst == xc); the result must land regardless of which store is elided.
TEST_F(SubarrayTest, TwoRowOpsAllowDstAliasingAnOperand) {
  Rng rng(21);
  const auto a = random_row(rng, 64);
  const auto b = random_row(rng, 64);
  const auto x1 = sa_.compute_row(0), x2 = sa_.compute_row(1);

  sa_.write_row(x1, a);
  sa_.write_row(x2, b);
  sa_.aap_xnor(x1, x2, x1);  // dst == first operand
  const auto xnor = BitVector::bit_xnor(a, b);
  EXPECT_EQ(sa_.peek_row(x1), xnor);
  EXPECT_EQ(sa_.peek_row(x2), xnor);

  sa_.write_row(x1, a);
  sa_.write_row(x2, b);
  sa_.aap_xor(x1, x2, x2);  // dst == second operand
  const auto xorr = BitVector::bit_xor(a, b);
  EXPECT_EQ(sa_.peek_row(x1), xorr);
  EXPECT_EQ(sa_.peek_row(x2), xorr);

  sa_.reset_latch();  // zero carry → sum cycle degenerates to XOR
  sa_.write_row(x1, a);
  sa_.write_row(x2, b);
  sa_.sum_cycle(x1, x2, x2);  // dst == second operand
  EXPECT_EQ(sa_.peek_row(x1), xorr);
  EXPECT_EQ(sa_.peek_row(x2), xorr);
}

TEST_F(SubarrayTest, TraCarryAllowsDstAliasingThirdOperand) {
  // The add_vertical production pattern: aap_tra_carry(x1, x2, x3, x3).
  Rng rng(22);
  const auto a = random_row(rng, 64);
  const auto b = random_row(rng, 64);
  const auto c = random_row(rng, 64);
  const auto x1 = sa_.compute_row(0), x2 = sa_.compute_row(1),
             x3 = sa_.compute_row(2);
  sa_.write_row(x1, a);
  sa_.write_row(x2, b);
  sa_.write_row(x3, c);
  sa_.aap_tra_carry(x1, x2, x3, x3);
  const auto maj = BitVector::bit_maj3(a, b, c);
  EXPECT_EQ(sa_.peek_row(x1), maj);
  EXPECT_EQ(sa_.peek_row(x2), maj);
  EXPECT_EQ(sa_.peek_row(x3), maj);
  EXPECT_EQ(sa_.peek_latch(), maj);
}

TEST_F(SubarrayTest, SumCycleCombinesLatch) {
  Rng rng(6);
  const auto a = random_row(rng, 64);
  const auto b = random_row(rng, 64);
  const auto carry = random_row(rng, 64);
  const auto x1 = sa_.compute_row(0), x2 = sa_.compute_row(1),
             x3 = sa_.compute_row(2);
  // Load the latch with `carry` via TRA(x,x,x)... use three copies.
  sa_.write_row(x1, carry);
  sa_.write_row(x2, carry);
  sa_.write_row(x3, carry);
  sa_.aap_tra_carry(x1, x2, x3, 13);
  ASSERT_EQ(sa_.peek_latch(), carry);
  sa_.write_row(x1, a);
  sa_.write_row(x2, b);
  sa_.sum_cycle(x1, x2, 14);
  const auto expect =
      BitVector::bit_xor(BitVector::bit_xor(a, b), carry);
  EXPECT_EQ(sa_.peek_row(14), expect);
}

TEST_F(SubarrayTest, ResetLatchClears) {
  const auto x1 = sa_.compute_row(0), x2 = sa_.compute_row(1),
             x3 = sa_.compute_row(2);
  BitVector ones(64);
  ones.fill(true);
  sa_.write_row(x1, ones);
  sa_.write_row(x2, ones);
  sa_.write_row(x3, ones);
  sa_.aap_tra_carry(x1, x2, x3, 12);
  EXPECT_TRUE(sa_.peek_latch().all());
  sa_.reset_latch();
  EXPECT_TRUE(sa_.peek_latch().none());
}

TEST_F(SubarrayTest, CompareRowsLeavesMatchBits) {
  Rng rng(7);
  const auto a = random_row(rng, 64);
  auto b = a;
  b.set(17, !b.get(17));
  sa_.write_row(1, a);
  sa_.write_row(2, b);
  sa_.compare_rows(1, 2, 20);
  const auto& result = sa_.peek_row(20);
  EXPECT_FALSE(result.get(17));
  EXPECT_EQ(result.popcount(), 63u);
  // Data rows a, b must be intact (compare staged copies, not originals).
  EXPECT_EQ(sa_.peek_row(1), a);
  EXPECT_EQ(sa_.peek_row(2), b);
}

TEST_F(SubarrayTest, StatsAccumulateAndClear) {
  sa_.write_row(1, BitVector(64));
  sa_.aap_copy(1, 2);
  sa_.compare_rows(1, 2, 20);
  const auto& st = sa_.stats();
  EXPECT_EQ(st.counts[static_cast<std::size_t>(CommandKind::kRowWrite)], 1u);
  EXPECT_EQ(st.counts[static_cast<std::size_t>(CommandKind::kAapCopy)], 3u);
  EXPECT_EQ(st.counts[static_cast<std::size_t>(CommandKind::kAapTwoRow)], 1u);
  EXPECT_GT(st.busy_ns, 0.0);
  EXPECT_GT(st.energy_pj, 0.0);
  sa_.clear_stats();
  EXPECT_EQ(sa_.stats().total_commands(), 0u);
}

TEST_F(SubarrayTest, CommandCostsMatchTimingModel) {
  const auto& t = circuit::default_technology().timing;
  sa_.aap_copy(1, 2);
  EXPECT_DOUBLE_EQ(sa_.stats().busy_ns, t.aap_ns());
  sa_.clear_stats();
  sa_.write_row(sa_.compute_row(0), BitVector(64));
  sa_.write_row(sa_.compute_row(1), BitVector(64));
  sa_.clear_stats();
  sa_.aap_xnor(sa_.compute_row(0), sa_.compute_row(1), 3);
  EXPECT_DOUBLE_EQ(sa_.stats().busy_ns, t.aap_ns());
}

// Vertical multi-bit addition: property test against software addition on
// random operands, sweeping operand widths.
class AddVertical : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AddVertical, MatchesSoftwareAddition) {
  const std::size_t m = GetParam();
  Subarray sa(small_geometry(), circuit::default_technology());
  const std::size_t cols = sa.geometry().columns;
  Rng rng(100 + m);

  // Build two m-bit vertical operands: element j lives in column j.
  std::vector<std::uint64_t> a_vals(cols), b_vals(cols);
  const std::uint64_t mask = (std::uint64_t{1} << m) - 1;
  for (std::size_t j = 0; j < cols; ++j) {
    a_vals[j] = rng() & mask;
    b_vals[j] = rng() & mask;
  }
  std::vector<RowAddr> a_rows, b_rows, s_rows;
  for (std::size_t bit = 0; bit < m; ++bit) {
    BitVector ar(cols), br(cols);
    for (std::size_t j = 0; j < cols; ++j) {
      ar.set(j, (a_vals[j] >> bit) & 1u);
      br.set(j, (b_vals[j] >> bit) & 1u);
    }
    sa.write_row(bit, ar);
    sa.write_row(16 + bit, br);
    a_rows.push_back(bit);
    b_rows.push_back(16 + bit);
    s_rows.push_back(32 + bit);
  }
  const RowAddr carry_row = 50;
  sa.add_vertical(a_rows, b_rows, s_rows, carry_row);

  for (std::size_t j = 0; j < cols; ++j) {
    std::uint64_t got = 0;
    for (std::size_t bit = 0; bit < m; ++bit)
      if (sa.peek_row(s_rows[bit]).get(j)) got |= std::uint64_t{1} << bit;
    if (sa.peek_row(carry_row).get(j)) got |= std::uint64_t{1} << m;
    EXPECT_EQ(got, a_vals[j] + b_vals[j]) << "column " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AddVertical,
                         ::testing::Values(1, 2, 3, 4, 8, 12));

TEST_F(SubarrayTest, AapCopyRejectsAliasedRows) {
  // src == des would activate the same row twice — electrically a refresh,
  // not a RowClone — so the model rejects it instead of silently absorbing
  // a controller bug.
  EXPECT_THROW(sa_.aap_copy(3, 3), pima::PreconditionError);
  const auto x1 = sa_.compute_row(0);
  EXPECT_THROW(sa_.aap_copy(x1, x1), pima::PreconditionError);
  EXPECT_NO_THROW(sa_.aap_copy(3, 4));
}

TEST_F(SubarrayTest, SumCycleAllOnesOperandsWithCarry) {
  // Edge of the carry chain: 1 ⊕ 1 ⊕ 1 = 1 in every column.
  const auto x1 = sa_.compute_row(0), x2 = sa_.compute_row(1),
             x3 = sa_.compute_row(2);
  BitVector ones(64);
  ones.fill(true);
  sa_.write_row(x1, ones);
  sa_.write_row(x2, ones);
  sa_.write_row(x3, ones);
  sa_.aap_tra_carry(x1, x2, x3, 12);  // latch ← all ones
  sa_.write_row(x1, ones);
  sa_.write_row(x2, ones);
  sa_.sum_cycle(x1, x2, 14);
  EXPECT_TRUE(sa_.peek_row(14).all());
  // The latch is consumed, not cleared: a second sum sees it again.
  EXPECT_TRUE(sa_.peek_latch().all());
  BitVector zeros(64);
  sa_.write_row(x1, zeros);
  sa_.write_row(x2, zeros);
  sa_.sum_cycle(x1, x2, 15);
  EXPECT_TRUE(sa_.peek_row(15).all());  // 0 ⊕ 0 ⊕ 1 = 1
}

// Full carry ripple: all-ones + 1 = 0 with carry-out in every column — the
// longest possible carry chain through the vertical adder.
TEST(AddVerticalEdges, AllOnesPlusOneRipplesThroughEveryBit) {
  Subarray sa(small_geometry(), circuit::default_technology());
  const std::size_t cols = sa.geometry().columns;
  const std::size_t m = 12;
  std::vector<RowAddr> a_rows, b_rows, s_rows;
  BitVector ones(cols), zeros(cols);
  ones.fill(true);
  for (std::size_t bit = 0; bit < m; ++bit) {
    sa.write_row(bit, ones);                      // a = 2^m - 1
    sa.write_row(16 + bit, bit == 0 ? ones : zeros);  // b = 1
    a_rows.push_back(bit);
    b_rows.push_back(16 + bit);
    s_rows.push_back(32 + bit);
  }
  sa.add_vertical(a_rows, b_rows, s_rows, 50);
  for (std::size_t bit = 0; bit < m; ++bit)
    EXPECT_TRUE(sa.peek_row(s_rows[bit]).none()) << "sum bit " << bit;
  EXPECT_TRUE(sa.peek_row(50).all());  // carry-out in every column
}

// All-ones + all-ones: sum = 2^m+1 - 2, i.e. bit 0 clear, bits 1..m-1 set,
// carry-out set — exercises simultaneous generate+propagate in every stage.
TEST(AddVerticalEdges, AllOnesPlusAllOnes) {
  Subarray sa(small_geometry(), circuit::default_technology());
  const std::size_t cols = sa.geometry().columns;
  const std::size_t m = 12;
  std::vector<RowAddr> a_rows, b_rows, s_rows;
  BitVector ones(cols);
  ones.fill(true);
  for (std::size_t bit = 0; bit < m; ++bit) {
    sa.write_row(bit, ones);
    sa.write_row(16 + bit, ones);
    a_rows.push_back(bit);
    b_rows.push_back(16 + bit);
    s_rows.push_back(32 + bit);
  }
  sa.add_vertical(a_rows, b_rows, s_rows, 50);
  EXPECT_TRUE(sa.peek_row(s_rows[0]).none());
  for (std::size_t bit = 1; bit < m; ++bit)
    EXPECT_TRUE(sa.peek_row(s_rows[bit]).all()) << "sum bit " << bit;
  EXPECT_TRUE(sa.peek_row(50).all());
}

TEST(AddVerticalErrors, MismatchedSpansThrow) {
  Subarray sa(small_geometry(), circuit::default_technology());
  EXPECT_THROW(sa.add_vertical({1, 2}, {3}, {4, 5}, 6),
               pima::PreconditionError);
  EXPECT_THROW(sa.add_vertical({}, {}, {}, 6), pima::PreconditionError);
}

// Cross-validation: the word-parallel functional kernels must agree with
// the analog SenseAmp model bit-for-bit on random rows.
TEST(SubarrayCrossValidation, FunctionalMatchesAnalogModel) {
  Subarray sa(small_geometry(), circuit::default_technology());
  circuit::SenseAmp analog(circuit::default_technology().tech);
  Rng rng(2024);
  const std::size_t cols = sa.geometry().columns;
  const auto a = random_row(rng, cols);
  const auto b = random_row(rng, cols);
  const auto c = random_row(rng, cols);

  const auto x1 = sa.compute_row(0), x2 = sa.compute_row(1),
             x3 = sa.compute_row(2);
  sa.write_row(x1, a);
  sa.write_row(x2, b);
  sa.aap_xnor(x1, x2, 10);
  for (std::size_t i = 0; i < cols; ++i)
    EXPECT_EQ(sa.peek_row(10).get(i), analog.xnor2(a.get(i), b.get(i)));

  sa.write_row(x1, a);
  sa.write_row(x2, b);
  sa.write_row(x3, c);
  sa.aap_tra_carry(x1, x2, x3, 11);
  for (std::size_t i = 0; i < cols; ++i)
    EXPECT_EQ(sa.peek_row(11).get(i),
              analog.carry(a.get(i), b.get(i), c.get(i)));
}

}  // namespace
}  // namespace pima::dram
