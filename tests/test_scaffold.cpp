#include "assembly/scaffold.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "assembly/assembler.hpp"
#include "dna/genome.hpp"

namespace pima::assembly {
namespace {

// Builds a genome, cuts it into known contigs with coverage gaps, and
// returns genome + contigs in genome order.
struct Fixture {
  dna::Sequence genome;
  std::vector<dna::Sequence> contigs;   // in genome order
  std::vector<std::size_t> starts;
};

Fixture make_fixture(std::size_t n_contigs = 4, std::size_t contig_len = 1500,
                     std::size_t gap = 120, std::uint64_t seed = 9) {
  Fixture f;
  dna::GenomeParams gp;
  gp.length = n_contigs * (contig_len + gap) + 500;
  gp.repeat_count = 0;
  gp.seed = seed;
  f.genome = dna::generate_genome(gp);
  for (std::size_t i = 0; i < n_contigs; ++i) {
    const std::size_t start = i * (contig_len + gap);
    f.starts.push_back(start);
    f.contigs.push_back(f.genome.subseq(start, contig_len));
  }
  return f;
}

std::vector<dna::ReadPair> make_pairs(const dna::Sequence& genome,
                                      std::size_t count = 3000) {
  dna::PairedReadParams pp;
  pp.pair_count = count;
  pp.read_length = 90;
  pp.insert_mean = 400.0;
  pp.insert_sd = 25.0;
  return dna::sample_read_pairs(genome, pp);
}

TEST(Scaffold, OrdersContigsAlongGenome) {
  const auto f = make_fixture();
  const auto pairs = make_pairs(f.genome);
  ScaffoldParams sp;
  sp.insert_mean = 400.0;
  const auto result = scaffold_contigs(f.contigs, pairs, sp);

  EXPECT_GT(result.pairs_placed, result.pairs_total / 2);
  EXPECT_GE(result.links_used, f.contigs.size() - 1);
  // One chain containing every contig, in genome order, all forward.
  ASSERT_EQ(result.scaffolds.size(), 1u);
  const auto& s = result.scaffolds[0];
  ASSERT_EQ(s.entries.size(), f.contigs.size());
  for (std::size_t i = 0; i < s.entries.size(); ++i) {
    EXPECT_EQ(s.entries[i].contig, i) << i;
    EXPECT_FALSE(s.entries[i].reverse);
  }
}

TEST(Scaffold, GapEstimatesNearTruth) {
  const auto f = make_fixture(3, 2000, 150);
  const auto pairs = make_pairs(f.genome, 4000);
  ScaffoldParams sp;
  sp.insert_mean = 400.0;
  const auto result = scaffold_contigs(f.contigs, pairs, sp);
  ASSERT_EQ(result.scaffolds.size(), 1u);
  const auto& entries = result.scaffolds[0].entries;
  for (std::size_t i = 0; i + 1 < entries.size(); ++i)
    EXPECT_NEAR(static_cast<double>(entries[i].gap_after), 150.0, 60.0);
}

TEST(Scaffold, ShuffledContigsStillOrdered) {
  auto f = make_fixture();
  // Shuffle contig order; the pairs must put them back.
  std::vector<std::size_t> perm = {2, 0, 3, 1};
  std::vector<dna::Sequence> shuffled;
  for (const auto p : perm) shuffled.push_back(f.contigs[p]);
  const auto pairs = make_pairs(f.genome);
  ScaffoldParams sp;
  sp.insert_mean = 400.0;
  const auto result = scaffold_contigs(shuffled, pairs, sp);
  ASSERT_EQ(result.scaffolds.size(), 1u);
  const auto& entries = result.scaffolds[0].entries;
  ASSERT_EQ(entries.size(), 4u);
  // entry order must correspond to genome order 0,1,2,3 of the originals.
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(perm[entries[i].contig], i) << i;
}

TEST(Scaffold, ReverseComplementedContigDetected) {
  auto f = make_fixture(3);
  std::vector<dna::Sequence> contigs = f.contigs;
  contigs[1] = contigs[1].reverse_complement();
  const auto pairs = make_pairs(f.genome, 4000);
  ScaffoldParams sp;
  sp.insert_mean = 400.0;
  const auto result = scaffold_contigs(contigs, pairs, sp);
  ASSERT_EQ(result.scaffolds.size(), 1u);
  const auto& entries = result.scaffolds[0].entries;
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[1].contig, 1u);
  EXPECT_TRUE(entries[1].reverse);
  EXPECT_FALSE(entries[0].reverse);
  EXPECT_FALSE(entries[2].reverse);
}

TEST(Scaffold, SpellRendersNsBetweenContigs) {
  const auto f = make_fixture(2, 800, 50);
  const auto pairs = make_pairs(f.genome, 3000);
  ScaffoldParams sp;
  sp.insert_mean = 400.0;
  const auto result = scaffold_contigs(f.contigs, pairs, sp);
  ASSERT_EQ(result.scaffolds.size(), 1u);
  const auto text = result.scaffolds[0].spell(f.contigs);
  EXPECT_NE(text.find('N'), std::string::npos);
  // Contig bases surround the gap.
  EXPECT_EQ(text.substr(0, 800), f.contigs[0].to_string());
  EXPECT_EQ(result.scaffolds[0].contig_length(f.contigs), 1600u);
}

TEST(Scaffold, UnlinkedContigsStaySingletons) {
  // Pairs from one half of the genome only: the far contig gets no links.
  const auto f = make_fixture(2, 1000, 3000);
  dna::PairedReadParams pp;
  pp.pair_count = 1500;
  pp.read_length = 90;
  pp.insert_mean = 300.0;
  const auto genome_half = f.genome.subseq(0, 1400);
  const auto pairs = dna::sample_read_pairs(genome_half, pp);
  ScaffoldParams sp;
  sp.insert_mean = 300.0;
  const auto result = scaffold_contigs(f.contigs, pairs, sp);
  EXPECT_EQ(result.scaffolds.size(), 2u);  // no cross links possible
  EXPECT_EQ(result.links_used, 0u);
}

TEST(Scaffold, EmptyInputs) {
  const auto result = scaffold_contigs({}, {}, {});
  EXPECT_TRUE(result.scaffolds.empty());
  EXPECT_EQ(result.pairs_total, 0u);
}

TEST(Scaffold, ParamsValidated) {
  EXPECT_THROW(
      scaffold_contigs({dna::Sequence::from_string("ACGT")}, {},
                       ScaffoldParams{.k = 4}),
      pima::PreconditionError);
}

TEST(Scaffold, EndToEndWithAssembler) {
  // Full stage-1..3 pipeline: assemble unitigs from single-end reads, then
  // scaffold them with mate pairs.
  dna::GenomeParams gp;
  gp.length = 6000;
  gp.repeat_count = 0;
  gp.seed = 31;
  const auto genome = dna::generate_genome(gp);

  dna::ReadSamplerParams rp;
  rp.coverage = 12.0;
  rp.read_length = 90;
  const auto reads = dna::sample_reads(genome, rp);
  AssemblyOptions opt;
  opt.k = 23;
  opt.euler_contigs = false;
  const auto assembly = assemble(reads, opt);
  ASSERT_GE(assembly.contigs.size(), 1u);

  dna::PairedReadParams pp;
  pp.pair_count = 2500;
  pp.read_length = 90;
  pp.insert_mean = 450.0;
  const auto pairs = dna::sample_read_pairs(genome, pp);
  ScaffoldParams sp;
  sp.insert_mean = 450.0;
  const auto result = scaffold_contigs(assembly.contigs, pairs, sp);
  // Scaffolding can only reduce (or keep) the number of pieces.
  EXPECT_LE(result.scaffolds.size(), assembly.contigs.size());
  std::size_t placed = 0;
  for (const auto& s : result.scaffolds) placed += s.entries.size();
  // Every contig appears in exactly one scaffold.
  EXPECT_EQ(placed, assembly.contigs.size());
}

}  // namespace
}  // namespace pima::assembly
