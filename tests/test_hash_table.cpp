#include "assembly/hash_table.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "dna/genome.hpp"

namespace pima::assembly {
namespace {

TEST(KmerCounter, PaperFig5bExample) {
  // Paper Fig. 5b: S = CGTGCGTGCTT, k = 5 →
  // CGTGC:2, GTGCG:1, TGCGT:1, GCGTG:1, GTGCT:1, TGCTT:1.
  const auto s = dna::Sequence::from_string("CGTGCGTGCTT");
  const auto table = build_hashmap({s}, 5);
  EXPECT_EQ(table.distinct_kmers(), 6u);
  EXPECT_EQ(table.total_kmers(), 7u);
  auto freq = [&](const char* txt) {
    const auto seq = dna::Sequence::from_string(txt);
    return table.lookup(Kmer::from_sequence(seq, 0, 5)).value_or(0);
  };
  EXPECT_EQ(freq("CGTGC"), 2u);
  EXPECT_EQ(freq("GTGCG"), 1u);
  EXPECT_EQ(freq("TGCGT"), 1u);
  EXPECT_EQ(freq("GCGTG"), 1u);
  EXPECT_EQ(freq("GTGCT"), 1u);
  EXPECT_EQ(freq("TGCTT"), 1u);
  const auto absent = dna::Sequence::from_string("AAAAA");
  EXPECT_FALSE(table.lookup(Kmer::from_sequence(absent, 0, 5)).has_value());
}

TEST(KmerCounter, InsertReturnsRunningFrequency) {
  KmerCounter t(16);
  const auto seq = dna::Sequence::from_string("ACGTA");
  const auto km = Kmer::from_sequence(seq, 0, 5);
  EXPECT_EQ(t.insert_or_increment(km), 1u);
  EXPECT_EQ(t.insert_or_increment(km), 2u);
  EXPECT_EQ(t.insert_or_increment(km), 3u);
  EXPECT_EQ(t.total_kmers(), 3u);
  EXPECT_EQ(t.distinct_kmers(), 1u);
}

TEST(KmerCounter, SaturatingCounters) {
  KmerCounter t(16, 2);  // 2-bit counters saturate at 3
  const auto seq = dna::Sequence::from_string("ACGTA");
  const auto km = Kmer::from_sequence(seq, 0, 5);
  for (int i = 0; i < 10; ++i) t.insert_or_increment(km);
  EXPECT_EQ(t.lookup(km).value(), 3u);
  EXPECT_EQ(t.total_kmers(), 10u);  // total still counts all arrivals
}

TEST(KmerCounter, CounterBitsValidated) {
  EXPECT_THROW(KmerCounter(16, 0), pima::PreconditionError);
  EXPECT_THROW(KmerCounter(16, 33), pima::PreconditionError);
}

TEST(KmerCounter, GrowsBeyondInitialCapacity) {
  KmerCounter t(4);
  dna::GenomeParams gp;
  gp.length = 3000;
  gp.repeat_count = 0;
  const auto g = dna::generate_genome(gp);
  for (std::size_t i = 0; i + 16 <= g.size(); ++i)
    t.insert_or_increment(Kmer::from_sequence(g, i, 16));
  EXPECT_GT(t.distinct_kmers(), 2500u);
  // Load factor below 0.7 after growth.
  EXPECT_LT(t.distinct_kmers() * 10, t.capacity() * 7 + t.capacity());
}

TEST(KmerCounter, MatchesUnorderedMapOnRandomReads) {
  dna::GenomeParams gp;
  gp.length = 5000;
  const auto g = dna::generate_genome(gp);
  dna::ReadSamplerParams rp;
  rp.read_length = 80;
  rp.coverage = 6.0;
  const auto reads = dna::sample_reads(g, rp);

  const std::size_t k = 17;
  const auto table = build_hashmap(reads, k);

  std::unordered_map<Kmer, std::uint32_t> ref;
  for (const auto& r : reads)
    for (std::size_t i = 0; i + k <= r.size(); ++i)
      ++ref[Kmer::from_sequence(r, i, k)];

  EXPECT_EQ(table.distinct_kmers(), ref.size());
  for (const auto& [km, freq] : ref)
    EXPECT_EQ(table.lookup(km).value_or(0), freq) << km.to_string();
}

TEST(KmerCounter, ForEachVisitsEverything) {
  const auto s = dna::Sequence::from_string("CGTGCGTGCTT");
  const auto table = build_hashmap({s}, 5);
  std::size_t seen = 0;
  std::uint64_t total = 0;
  table.for_each([&](const Kmer&, std::uint32_t f) {
    ++seen;
    total += f;
  });
  EXPECT_EQ(seen, 6u);
  EXPECT_EQ(total, 7u);
}

TEST(KmerCounter, CanonicalCountingMergesStrands) {
  // Non-palindromic read: AAACGT (its RC is ACGTTT, no shared k-mers).
  const auto fwd = dna::Sequence::from_string("AAACGT");
  const auto rc = fwd.reverse_complement();
  const auto plain = build_hashmap({fwd, rc}, 5, /*canonical=*/false);
  const auto canon = build_hashmap({fwd, rc}, 5, /*canonical=*/true);
  EXPECT_GE(plain.distinct_kmers(), canon.distinct_kmers());
  std::uint64_t max_freq = 0;
  canon.for_each([&](const Kmer&, std::uint32_t f) {
    max_freq = std::max<std::uint64_t>(max_freq, f);
  });
  EXPECT_EQ(max_freq, 2u);  // each canonical k-mer seen from both strands
}

TEST(KmerCounter, OpCountsTrackWorkload) {
  KmerCounter t(16);
  const auto seq = dna::Sequence::from_string("ACGTA");
  const auto km = Kmer::from_sequence(seq, 0, 5);
  t.insert_or_increment(km);  // 1 insert
  t.insert_or_increment(km);  // ≥1 comparison + 1 increment
  const auto& ops = t.op_counts();
  EXPECT_EQ(ops.inserts, 1u);
  EXPECT_EQ(ops.increments, 1u);
  EXPECT_GE(ops.comparisons, 1u);
  t.reset_op_counts();
  EXPECT_EQ(t.op_counts().inserts, 0u);
}

TEST(KmerCounter, SkipsShortReads) {
  const auto tiny = dna::Sequence::from_string("ACG");
  const auto table = build_hashmap({tiny}, 5);
  EXPECT_EQ(table.distinct_kmers(), 0u);
}

TEST(HashOpCounts, Accumulate) {
  HashOpCounts a{1, 2, 3}, b{10, 20, 30};
  a += b;
  EXPECT_EQ(a.comparisons, 11u);
  EXPECT_EQ(a.increments, 22u);
  EXPECT_EQ(a.inserts, 33u);
}

}  // namespace
}  // namespace pima::assembly
