# Drives the CLI end to end: generate -> assemble -> verify exit codes.
file(MAKE_DIRECTORY ${WORK})
execute_process(
  COMMAND ${CLI} generate --genome ${WORK}/g.fa --reads ${WORK}/r.fa
          --length 6000 --coverage 10 --repeats 2
  RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "generate failed: ${rc1}")
endif()
execute_process(
  COMMAND ${CLI} assemble --reads ${WORK}/r.fa --k 21
          --out ${WORK}/contigs.fa --reference ${WORK}/g.fa
  RESULT_VARIABLE rc2 OUTPUT_VARIABLE out2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "assemble failed: ${rc2}")
endif()
if(NOT out2 MATCHES "reference coverage")
  message(FATAL_ERROR "assemble output missing verification line")
endif()
if(NOT EXISTS ${WORK}/contigs.fa)
  message(FATAL_ERROR "contigs.fa not written")
endif()
