#include "core/cost_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/pd_optimizer.hpp"
#include "platforms/presets.hpp"

namespace pima::core {
namespace {

using platforms::ambit;
using platforms::drisa_1t1c;
using platforms::drisa_3t1c;
using platforms::gpu_1080ti;
using platforms::pim_assembler;

WorkloadParams chr14(std::size_t k) {
  WorkloadParams w;
  w.k = k;
  return w;
}

TEST(Workload, Chr14Derived) {
  const auto w = chr14(16);
  EXPECT_NEAR(w.coverage(), 53.0, 1.0);  // 45.7M × 101 / 87.2M
  EXPECT_NEAR(w.queries(), 45'711'162.0 * 86.0, 1.0);
  EXPECT_NEAR(w.distinct_kmers(), 87'191'201.0, 1.0);
}

TEST(CostModel, HeadlineSpeedupOverGpu) {
  // Paper: P-A reduces execution time ~5× vs GPU on average over k.
  std::vector<double> ratios;
  for (const std::size_t k : {16u, 22u, 26u, 32u}) {
    const auto gpu = estimate_application(gpu_1080ti(), chr14(k));
    const auto pa = estimate_application(pim_assembler(), chr14(k));
    ratios.push_back(gpu.total_time_s / pa.total_time_s);
  }
  const double avg =
      (ratios[0] + ratios[1] + ratios[2] + ratios[3]) / 4.0;
  EXPECT_GT(avg, 3.5);
  EXPECT_LT(avg, 7.5);
}

TEST(CostModel, HeadlinePowerReduction) {
  // Paper: ~7.5× lower power than GPU; ~2.8× lower than the best PIM.
  const auto gpu = estimate_application(gpu_1080ti(), chr14(16));
  const auto pa = estimate_application(pim_assembler(), chr14(16));
  EXPECT_NEAR(gpu.avg_power_w / pa.avg_power_w, 7.5, 1.5);
  double best_pim_power = 1e9;
  for (const auto& p : {ambit(), drisa_1t1c(), drisa_3t1c()})
    best_pim_power = std::min(
        best_pim_power, estimate_application(p, chr14(16)).avg_power_w);
  EXPECT_NEAR(best_pim_power / pa.avg_power_w, 2.8, 0.9);
}

TEST(CostModel, SpeedupGrowsWithK) {
  // Paper: hashmap acceleration 5.2× at k=16 rising to 9.8× at k=32 — the
  // structural effect is that the ratio must grow with k.
  const auto g16 = estimate_application(gpu_1080ti(), chr14(16));
  const auto p16 = estimate_application(pim_assembler(), chr14(16));
  const auto g32 = estimate_application(gpu_1080ti(), chr14(32));
  const auto p32 = estimate_application(pim_assembler(), chr14(32));
  const double r16 = g16.hashmap.time_s / p16.hashmap.time_s;
  const double r32 = g32.hashmap.time_s / p32.hashmap.time_s;
  EXPECT_GT(r16, 3.5);
  EXPECT_GT(r32, r16 * 1.2);
  EXPECT_LT(r32, 12.0);
}

TEST(CostModel, HashmapDominatesGpuTime) {
  // Paper: stage 1 takes over 60% of GPU execution time.
  const auto gpu = estimate_application(gpu_1080ti(), chr14(16));
  EXPECT_GT(gpu.hashmap.time_s, 0.6 * gpu.total_time_s);
}

TEST(CostModel, PaBeatsEveryPimBaseline) {
  for (const std::size_t k : {16u, 32u}) {
    const auto pa = estimate_application(pim_assembler(), chr14(k));
    for (const auto& p : {ambit(), drisa_1t1c(), drisa_3t1c()}) {
      const auto other = estimate_application(p, chr14(k));
      EXPECT_GT(other.total_time_s, pa.total_time_s) << p.name << " k=" << k;
      EXPECT_GT(other.avg_power_w, pa.avg_power_w) << p.name;
    }
  }
}

TEST(CostModel, GpuExecutionTimeInPaperRange) {
  // Paper Fig. 9a y-axis: total GPU time is on the order of 100–200 s.
  for (const std::size_t k : {16u, 22u, 26u, 32u}) {
    const auto gpu = estimate_application(gpu_1080ti(), chr14(k));
    EXPECT_GT(gpu.total_time_s, 60.0) << k;
    EXPECT_LT(gpu.total_time_s, 250.0) << k;
  }
}

TEST(CostModel, PaPowerNearPaperValue) {
  // Paper: P-A averages 38.4 W over the three procedures.
  const auto pa = estimate_application(pim_assembler(), chr14(22));
  EXPECT_NEAR(pa.avg_power_w, 38.4, 8.0);
}

TEST(CostModel, MbrShapeMatchesFig11) {
  // Paper Fig. 11a: P-A ~9% at k=16 and under ~16% at k=32; GPU rises to
  // ~70% at k=32; every PIM is far below the GPU.
  const auto pa16 = estimate_application(pim_assembler(), chr14(16));
  const auto pa32 = estimate_application(pim_assembler(), chr14(32));
  EXPECT_NEAR(pa16.mbr, 0.09, 0.02);
  EXPECT_LE(pa32.mbr, 0.17);
  const auto gpu32 = estimate_application(gpu_1080ti(), chr14(32));
  EXPECT_NEAR(gpu32.mbr, 0.70, 0.05);
  for (const auto& p : {ambit(), drisa_1t1c(), drisa_3t1c()})
    EXPECT_LT(estimate_application(p, chr14(32)).mbr, gpu32.mbr);
}

TEST(CostModel, RurShapeMatchesFig11) {
  // Paper Fig. 11b: P-A up to ~65% at k=16; PIM solutions above 45%, GPU
  // well below.
  const auto pa16 = estimate_application(pim_assembler(), chr14(16));
  EXPECT_NEAR(pa16.rur, 0.65, 0.05);
  for (const auto& p : {ambit(), drisa_1t1c(), drisa_3t1c()})
    EXPECT_GT(estimate_application(p, chr14(16)).rur, 0.40) << p.name;
  const auto gpu16 = estimate_application(gpu_1080ti(), chr14(16));
  EXPECT_LT(gpu16.rur, 0.30);
  // P-A has the highest RUR of all platforms.
  for (const auto& p : platforms::application_platforms())
    EXPECT_GE(pa16.rur, estimate_application(p, chr14(16)).rur) << p.name;
}

TEST(CostModel, EnergyConsistentWithPowerAndTime) {
  const auto pa = estimate_application(pim_assembler(), chr14(16));
  const double e = pa.hashmap.energy_j + pa.debruijn.energy_j +
                   pa.traverse.energy_j;
  EXPECT_NEAR(e, pa.avg_power_w * pa.total_time_s, 1e-6);
}

TEST(CostModel, InvalidInputsThrow) {
  EXPECT_THROW(estimate_application(pim_assembler(), chr14(16), 0),
               pima::PreconditionError);
  WorkloadParams w;
  w.k = 200;  // longer than the reads
  EXPECT_THROW(estimate_application(pim_assembler(), w),
               pima::PreconditionError);
}

TEST(PdSweep, DelayFallsPowerRises) {
  // Fig. 10: larger Pd → smaller delay, higher power, for k=16 and k=32.
  for (const std::size_t k : {16u, 32u}) {
    const auto points = sweep_parallelism(pim_assembler(), chr14(k));
    ASSERT_EQ(points.size(), 4u);
    for (std::size_t i = 1; i < points.size(); ++i) {
      EXPECT_LT(points[i].delay_s, points[i - 1].delay_s) << "k=" << k;
      EXPECT_GT(points[i].power_w, points[i - 1].power_w) << "k=" << k;
    }
  }
}

TEST(PdSweep, DelaySaturates) {
  // The Amdahl floor: Pd 4→8 gains less than Pd 1→2.
  const auto points = sweep_parallelism(pim_assembler(), chr14(16));
  const double gain_12 = points[0].delay_s / points[1].delay_s;
  const double gain_48 = points[2].delay_s / points[3].delay_s;
  EXPECT_GT(gain_12, gain_48);
}

TEST(PdOptimizer, PicksModerateParallelism) {
  // Paper: optimum at Pd ≈ 2.
  const auto best = optimal_parallelism(pim_assembler(), chr14(16));
  EXPECT_EQ(best.pd, 2u);
}

}  // namespace
}  // namespace pima::core
