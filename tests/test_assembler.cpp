#include "assembly/assembler.hpp"

#include <gtest/gtest.h>

#include "assembly/verify.hpp"
#include "dna/genome.hpp"

namespace pima::assembly {
namespace {

std::vector<dna::Sequence> make_reads(const dna::Sequence& genome,
                                      double coverage, std::size_t len,
                                      std::uint64_t seed = 101) {
  dna::ReadSamplerParams rp;
  rp.coverage = coverage;
  rp.read_length = len;
  rp.seed = seed;
  return dna::sample_reads(genome, rp);
}

TEST(Assembler, ReconstructsRepeatFreeGenome) {
  dna::GenomeParams gp;
  gp.length = 2000;
  gp.repeat_count = 0;
  const auto genome = dna::generate_genome(gp);
  const auto reads = make_reads(genome, 15.0, 80);

  AssemblyOptions opt;
  opt.k = 21;  // long k: a 2 kb random genome is almost surely repeat-free
  const auto result = assemble(reads, opt);

  // At 15× coverage the genome should come back as one (or very few)
  // contigs covering essentially everything.
  const auto report = verify_contigs(genome, result.contigs, 2 * opt.k);
  EXPECT_TRUE(report.all_match());
  EXPECT_GT(report.reference_coverage, 0.95);
  EXPECT_LE(result.stats.count, 5u);
  EXPECT_GE(result.stats.longest, 1800u);
}

TEST(Assembler, UnitigModeAlsoVerifies) {
  dna::GenomeParams gp;
  gp.length = 3000;
  gp.repeat_count = 4;
  gp.repeat_length = 120;
  const auto genome = dna::generate_genome(gp);
  const auto reads = make_reads(genome, 12.0, 90);

  AssemblyOptions opt;
  opt.k = 25;
  opt.euler_contigs = false;  // unitigs stop at repeat junctions
  const auto result = assemble(reads, opt);
  const auto report = verify_contigs(genome, result.contigs, 2 * opt.k);
  EXPECT_TRUE(report.all_match());
  EXPECT_GT(report.reference_coverage, 0.85);
}

TEST(Assembler, ReportsStageOpCounts) {
  dna::GenomeParams gp;
  gp.length = 1000;
  gp.repeat_count = 0;
  const auto genome = dna::generate_genome(gp);
  const auto reads = make_reads(genome, 8.0, 60);
  AssemblyOptions opt;
  opt.k = 17;
  const auto result = assemble(reads, opt);

  const std::uint64_t expected_kmers =
      reads.size() * (60 - opt.k + 1);
  EXPECT_EQ(result.ops.kmers_processed, expected_kmers);
  EXPECT_EQ(result.ops.hash.inserts, result.distinct_kmers);
  EXPECT_EQ(result.ops.hash.increments,
            expected_kmers - result.distinct_kmers);
  EXPECT_EQ(result.ops.edge_inserts, result.graph_edges);
  EXPECT_EQ(result.ops.node_inserts, 2 * result.graph_edges);
  EXPECT_GT(result.ops.degree_additions, 0u);
  EXPECT_EQ(result.ops.edges_walked, result.graph_edges);  // multiplicity off
}

TEST(Assembler, MinFrequencyFilterDropsErrors) {
  dna::GenomeParams gp;
  gp.length = 2000;
  gp.repeat_count = 0;
  const auto genome = dna::generate_genome(gp);
  // High coverage + 1% errors: true k-mers recur, error k-mers are rare.
  dna::ReadSamplerParams rp;
  rp.coverage = 25.0;
  rp.read_length = 80;
  rp.error_rate = 0.01;
  const auto reads = dna::sample_reads(genome, rp);

  AssemblyOptions no_filter;
  no_filter.k = 21;
  AssemblyOptions filtered = no_filter;
  filtered.min_kmer_freq = 3;

  const auto raw = assemble(reads, no_filter);
  const auto clean = assemble(reads, filtered);
  EXPECT_LT(clean.graph_edges, raw.graph_edges);
  const auto report = verify_contigs(genome, clean.contigs, 3 * 21);
  // Filtered contigs of meaningful length should align to the reference.
  EXPECT_GT(report.reference_coverage, 0.7);
}

TEST(Assembler, FilterByFrequencyExact) {
  KmerCounter c(16);
  const auto s = dna::Sequence::from_string("CGTGCGTGCTT");
  for (std::size_t i = 0; i + 5 <= s.size(); ++i)
    c.insert_or_increment(Kmer::from_sequence(s, i, 5));
  const auto f = filter_by_frequency(c, 2);
  EXPECT_EQ(f.distinct_kmers(), 1u);  // only CGTGC has frequency 2
  const auto key = dna::Sequence::from_string("CGTGC");
  EXPECT_EQ(f.lookup(Kmer::from_sequence(key, 0, 5)).value(), 2u);
}

TEST(Assembler, ShortReadsIgnored) {
  std::vector<dna::Sequence> reads{dna::Sequence::from_string("ACG")};
  AssemblyOptions opt;
  opt.k = 15;
  const auto result = assemble(reads, opt);
  EXPECT_EQ(result.distinct_kmers, 0u);
  EXPECT_TRUE(result.contigs.empty());
}

// Paper k sweep: assembly must verify at every evaluated k.
class AssemblerKSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AssemblerKSweep, VerifiesAtPaperK) {
  dna::GenomeParams gp;
  gp.length = 1500;
  gp.repeat_count = 0;
  gp.seed = 7;
  const auto genome = dna::generate_genome(gp);
  const auto reads = make_reads(genome, 14.0, 101);
  AssemblyOptions opt;
  opt.k = GetParam();
  const auto result = assemble(reads, opt);
  const auto report =
      verify_contigs(genome, result.contigs, 2 * opt.k);
  EXPECT_TRUE(report.all_match());
  EXPECT_GT(report.reference_coverage, 0.9);
}

INSTANTIATE_TEST_SUITE_P(PaperKValues, AssemblerKSweep,
                         ::testing::Values(16, 22, 26, 32));

}  // namespace
}  // namespace pima::assembly
