#include "platforms/platform.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "platforms/presets.hpp"

namespace pima::platforms {
namespace {

TEST(Presets, AllSevenPlatformsPresent) {
  const auto all = all_platforms();
  ASSERT_EQ(all.size(), 7u);
  EXPECT_EQ(all[0].name, "CPU");
  EXPECT_EQ(all[6].name, "P-A");
}

TEST(Presets, ApplicationPlatformsMatchPaperFig9Order) {
  const auto app = application_platforms();
  ASSERT_EQ(app.size(), 5u);
  EXPECT_EQ(app[0].name, "GPU");
  EXPECT_EQ(app[1].name, "P-A");
  EXPECT_EQ(app[2].name, "Ambit");
  EXPECT_EQ(app[3].name, "DRISA-3T1C");
  EXPECT_EQ(app[4].name, "DRISA-1T1C");
}

TEST(Presets, PimPlatformsShareMemoryConfiguration) {
  // Paper: "an identical physical memory configuration is also considered".
  const auto pa = pim_assembler();
  for (const auto& p : {ambit(), drisa_1t1c(), drisa_3t1c()}) {
    EXPECT_EQ(p.row_cycle_ns, pa.row_cycle_ns);
    EXPECT_EQ(p.row_bits, pa.row_bits);
    EXPECT_EQ(p.concurrent_subarrays, pa.concurrent_subarrays);
  }
}

TEST(Presets, MechanismCycleCounts) {
  // Paper §I: Ambit imposes 7 memory cycles for X(N)OR; P-A needs a single
  // compute cycle plus two staging copies.
  EXPECT_DOUBLE_EQ(ambit().xnor_cycles, 7.0);
  EXPECT_DOUBLE_EQ(pim_assembler().xnor_cycles, 3.0);
  EXPECT_DOUBLE_EQ(pim_assembler().add_cycles_per_bit, 6.0);
}

TEST(Throughput, PimRatiosMatchPaperFig3b) {
  // Paper: P-A improves XNOR throughput by 2.3× vs Ambit, 1.9× vs D1,
  // 3.7× vs D3 (we allow ±15% of the reported ratios).
  const double bits = 1 << 27;
  const double pa =
      bulk_throughput_bits_per_s(pim_assembler(), BulkOp::kXnor, bits);
  EXPECT_NEAR(pa / bulk_throughput_bits_per_s(ambit(), BulkOp::kXnor, bits),
              2.3, 0.35);
  EXPECT_NEAR(
      pa / bulk_throughput_bits_per_s(drisa_1t1c(), BulkOp::kXnor, bits), 1.9,
      0.3);
  EXPECT_NEAR(
      pa / bulk_throughput_bits_per_s(drisa_3t1c(), BulkOp::kXnor, bits), 3.7,
      0.55);
}

TEST(Throughput, PaBeatsCpuByHeadlineFactor) {
  // Paper abstract: 8.4× higher XNOR throughput than CPU (±25%).
  const double bits = 1 << 28;
  const double ratio =
      bulk_throughput_bits_per_s(pim_assembler(), BulkOp::kXnor, bits) /
      bulk_throughput_bits_per_s(cpu_corei7(), BulkOp::kXnor, bits);
  EXPECT_GT(ratio, 8.4 * 0.75);
  EXPECT_LT(ratio, 8.4 * 1.25);
}

TEST(Throughput, PaWinsAgainstEveryPlatform) {
  const double bits = 1 << 29;
  const double pa =
      bulk_throughput_bits_per_s(pim_assembler(), BulkOp::kXnor, bits);
  for (const auto& p : all_platforms()) {
    if (p.name == "P-A") continue;
    EXPECT_GT(pa, bulk_throughput_bits_per_s(p, BulkOp::kXnor, bits))
        << p.name;
  }
}

TEST(Throughput, BandwidthBoundPlatformsAreVectorLengthInvariant) {
  const auto cpu = cpu_corei7();
  EXPECT_DOUBLE_EQ(
      bulk_throughput_bits_per_s(cpu, BulkOp::kXnor, 1 << 27),
      bulk_throughput_bits_per_s(cpu, BulkOp::kXnor, 1 << 29));
}

TEST(Throughput, GpuIsStagingLimited) {
  // With PCIe staging the GPU cannot use its full GDDR5X bandwidth.
  auto gpu = gpu_1080ti();
  const double staged =
      bulk_throughput_bits_per_s(gpu, BulkOp::kXnor, 1 << 27);
  gpu.staging_bw_gbs = 0.0;  // data already resident
  const double resident =
      bulk_throughput_bits_per_s(gpu, BulkOp::kXnor, 1 << 27);
  EXPECT_LT(staged, resident / 5.0);
}

TEST(Throughput, CpuMathIsExplicit) {
  // 34.1 GB/s × 8 bits × 0.7 efficiency / 3 bytes touched per result byte.
  const auto cpu = cpu_corei7();
  EXPECT_NEAR(bulk_throughput_bits_per_s(cpu, BulkOp::kXnor, 1024),
              34.1e9 * 8.0 * 0.7 / 3.0, 1.0);
}

TEST(Throughput, PimAdditionSlowerThanXnor) {
  // Addition costs more row cycles per result bit on every PIM design.
  for (const auto& p : {pim_assembler(), ambit(), drisa_1t1c(),
                        drisa_3t1c()}) {
    EXPECT_LT(bulk_throughput_bits_per_s(p, BulkOp::kAdd, 1 << 27, 32),
              bulk_throughput_bits_per_s(p, BulkOp::kXnor, 1 << 27))
        << p.name;
  }
}

TEST(Throughput, AdditionElementWidthInvariantForPim) {
  // Vertical addition throughput in result bits/s is width-independent
  // (cycles and produced bits both scale with m).
  const auto pa = pim_assembler();
  EXPECT_NEAR(bulk_throughput_bits_per_s(pa, BulkOp::kAdd, 1 << 27, 16),
              bulk_throughput_bits_per_s(pa, BulkOp::kAdd, 1 << 27, 32),
              1.0);
}

TEST(Throughput, TimeIsConsistentWithThroughput) {
  const auto pa = pim_assembler();
  const double bits = 1 << 27;
  EXPECT_NEAR(bulk_time_s(pa, BulkOp::kXnor, bits) *
                  bulk_throughput_bits_per_s(pa, BulkOp::kXnor, bits),
              bits, 1e-3);
}

TEST(Throughput, InvalidSpecsThrow) {
  PlatformSpec p;
  p.kind = PlatformKind::kVonNeumann;  // no bandwidth set
  EXPECT_THROW(bulk_throughput_bits_per_s(p, BulkOp::kXnor, 1024),
               pima::PreconditionError);
  PlatformSpec q = pim_assembler();
  q.xnor_cycles = 0.0;
  EXPECT_THROW(bulk_throughput_bits_per_s(q, BulkOp::kXnor, 1024),
               pima::PreconditionError);
  EXPECT_THROW(bulk_throughput_bits_per_s(pim_assembler(), BulkOp::kXnor, 0),
               pima::PreconditionError);
}

TEST(Power, BulkPowerOrdering) {
  // P-A runs the bulk benchmark at a fraction of the others' power.
  const double pa = bulk_power_w(pim_assembler(), BulkOp::kXnor);
  EXPECT_LT(pa, bulk_power_w(gpu_1080ti(), BulkOp::kXnor));
  EXPECT_LT(pa, bulk_power_w(ambit(), BulkOp::kXnor));
}

}  // namespace
}  // namespace pima::platforms
