// Assembly service: wire-protocol JSON, job model, admission control, and
// the daemon end to end over its unix socket — including the two service
// acceptance contracts: concurrent jobs are bit-identical to a standalone
// pipeline run, and a SIGKILLed daemon resumes interrupted jobs from their
// stage checkpoints on restart.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/error.hpp"
#include "core/pipeline.hpp"
#include "dna/fasta.hpp"
#include "dna/genome.hpp"
#include "service/admission.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/job.hpp"
#include "service/json.hpp"

namespace pima::service {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

// ---------------------------------------------------------------- Json --

TEST(ServiceJson, RoundTripPreservesStructureAndOrder) {
  Json inner = Json::object();
  inner.set("b", 2).set("a", 1);
  Json arr = Json::array();
  arr.push_back(true).push_back(Json()).push_back("x");
  Json j = Json::object();
  j.set("num", 0.1).set("obj", inner).set("arr", std::move(arr));
  const std::string text = j.dump();
  EXPECT_EQ(Json::parse(text).dump(), text);  // writer is deterministic
  // Keys keep insertion order, not sorted order.
  EXPECT_LT(text.find("\"b\""), text.find("\"a\""));
}

TEST(ServiceJson, NumbersRenderRoundTripExact) {
  for (const double v : {0.1, 1e-9, 1.0, 16777217.0, -2.5e300}) {
    const Json parsed = Json::parse(Json(v).dump());
    EXPECT_EQ(parsed.as_number(), v);
  }
}

TEST(ServiceJson, EscapesAndUnicode) {
  const std::string raw = "line1\nline2\t\"quoted\" \\slash\x01";
  const Json parsed = Json::parse(Json(raw).dump());
  EXPECT_EQ(parsed.as_string(), raw);
  EXPECT_EQ(Json::parse("\"\\u0041\\u00e9\"").as_string(), "A\xc3\xa9");
}

TEST(ServiceJson, Uint64CountersExactAboveDoublePrecision) {
  // 2^53 + 1 is the first integer a double cannot represent; the exact
  // integer view must carry it (and everything up to 2^64 - 1) untouched.
  const std::uint64_t big = (1ULL << 53) + 1;
  EXPECT_EQ(Json(big).dump(), "9007199254740993");
  EXPECT_EQ(Json::parse(Json(big).dump()).as_uint64(), big);
  EXPECT_EQ(Json::parse("18446744073709551615").as_uint64(),
            ~std::uint64_t{0});
  // Small integers agree between the double and exact views.
  EXPECT_EQ(Json::parse("42").as_uint64(), 42u);
  EXPECT_EQ(Json::parse("42").as_number(), 42.0);
  // Fractional and negative numbers have no exact u64 view.
  EXPECT_THROW((void)Json(0.5).as_uint64(), InputFormatError);
  EXPECT_THROW((void)Json::parse("-4").as_uint64(), InputFormatError);
}

TEST(ServiceJson, MalformedInputThrowsTyped) {
  EXPECT_THROW((void)Json::parse("{"), InputFormatError);
  EXPECT_THROW((void)Json::parse("{\"a\":1} trailing"), InputFormatError);
  EXPECT_THROW((void)Json::parse("nul"), InputFormatError);
  EXPECT_THROW((void)Json(1.0).as_string(), InputFormatError);  // type mismatch
}

// ----------------------------------------------------------- job model --

TEST(ServiceJob, SpecValidationNamesTheBadField) {
  JobSpec spec;
  spec.reads_path = "/tmp/reads.fa";
  spec.k = 3;  // below the documented 4..64 range
  try {
    spec.validate();
    FAIL() << "expected InputFormatError";
  } catch (const InputFormatError& e) {
    EXPECT_NE(std::string(e.what()).find("k"), std::string::npos);
  }
  spec.k = 17;
  spec.channels = 0;
  EXPECT_THROW(spec.validate(), InputFormatError);
}

TEST(ServiceJob, SpecJsonRoundTrip) {
  JobSpec spec;
  spec.reads_path = "/data/reads.fa";
  spec.k = 21;
  spec.hash_shards = 64;
  spec.channels = 4;
  spec.euler = true;
  spec.priority = -2;
  spec.stall_timeout_ms = 1500.0;
  EXPECT_EQ(JobSpec::from_json(spec.to_json()), spec);
}

TEST(ServiceJob, RecordPersistsAtomically) {
  const fs::path dir = fs::temp_directory_path() / "pima_svc_record";
  fs::remove_all(dir);
  fs::create_directories(dir);
  JobRecord rec;
  rec.id = "j0042";
  rec.spec.reads_path = "/data/reads.fa";
  rec.spec.k = 19;
  rec.state = JobState::kFailed;
  rec.seq = 7;
  rec.stages_done = 2;
  rec.error_type = "EngineStalledError";
  rec.error_message = "channel 1 stalled";
  save_job_record(dir.string(), rec);
  const JobRecord loaded = load_job_record(dir.string());
  EXPECT_EQ(loaded.id, rec.id);
  EXPECT_EQ(loaded.spec, rec.spec);
  EXPECT_EQ(loaded.state, rec.state);
  EXPECT_EQ(loaded.seq, rec.seq);
  EXPECT_EQ(loaded.stages_done, rec.stages_done);
  EXPECT_EQ(loaded.error_type, rec.error_type);
  EXPECT_EQ(loaded.error_message, rec.error_message);
  fs::remove_all(dir);
}

TEST(ServiceJob, RecordU64CountersSurviveAboveDoublePrecision) {
  // total_length / distinct_kmers on large inputs can exceed 2^53; the
  // persisted record must not round them through a double.
  const fs::path dir = fs::temp_directory_path() / "pima_svc_record_u64";
  fs::remove_all(dir);
  fs::create_directories(dir);
  JobRecord rec;
  rec.id = "j9000";
  rec.spec.reads_path = "/data/reads.fa";
  rec.state = JobState::kDone;
  rec.seq = (1ULL << 60) + 7;
  rec.stages_done = 3;
  rec.contigs = 12;
  rec.n50 = (1ULL << 53) + 1;
  rec.total_length = (1ULL << 53) + 3;
  rec.distinct_kmers = (1ULL << 62) + 9;
  save_job_record(dir.string(), rec);
  const JobRecord loaded = load_job_record(dir.string());
  EXPECT_EQ(loaded.seq, rec.seq);
  EXPECT_EQ(loaded.n50, rec.n50);
  EXPECT_EQ(loaded.total_length, rec.total_length);
  EXPECT_EQ(loaded.distinct_kmers, rec.distinct_kmers);
  fs::remove_all(dir);
}

TEST(ServiceJob, StateNamesRoundTrip) {
  for (const JobState s :
       {JobState::kQueued, JobState::kAdmitted, JobState::kRunning,
        JobState::kDone, JobState::kFailed, JobState::kCancelled})
    EXPECT_EQ(parse_job_state(to_string(s)), s);
  EXPECT_THROW((void)parse_job_state("limbo"), InputFormatError);
}

// ------------------------------------------------------------ admission --

AdmissionPolicy policy(std::size_t depth, std::size_t jobs,
                       std::size_t budget) {
  AdmissionPolicy p;
  p.queue_depth = depth;
  p.max_jobs = jobs;
  p.channel_budget = budget;
  return p;
}

TEST(ServiceAdmission, PriorityFirstFifoWithin) {
  AdmissionQueue q(policy(8, 8, 64));
  q.push("a", 0, 0, 1);
  q.push("b", 1, 1, 1);
  q.push("c", 1, 2, 1);
  q.push("d", 0, 3, 1);
  EXPECT_EQ(q.pop_admissible(0, 0), "b");
  EXPECT_EQ(q.pop_admissible(0, 0), "c");
  EXPECT_EQ(q.pop_admissible(0, 0), "a");
  EXPECT_EQ(q.pop_admissible(0, 0), "d");
  EXPECT_TRUE(q.empty());
}

TEST(ServiceAdmission, DepthBoundRejectsSynchronously) {
  AdmissionQueue q(policy(2, 1, 8));
  q.push("a", 0, 0, 1);
  q.push("b", 0, 1, 1);
  EXPECT_THROW(q.push("c", 0, 2, 1), AdmissionRejectedError);
  EXPECT_EQ(q.size(), 2u);
}

TEST(ServiceAdmission, BudgetAndJobBoundsGateDispatch) {
  AdmissionQueue q(policy(8, 2, 4));
  q.push("wide", 0, 0, 4);
  q.push("narrow", 0, 1, 1);
  // Channel budget partly used: the wide head does not fit, and strict
  // ordering means the narrow job behind it must NOT be backfilled.
  EXPECT_EQ(q.pop_admissible(1, 2), "");
  // max_jobs reached: nothing dispatches even with budget to spare.
  EXPECT_EQ(q.pop_admissible(2, 0), "");
  // Budget free again: the head goes first.
  EXPECT_EQ(q.pop_admissible(0, 0), "wide");
  EXPECT_EQ(q.pop_admissible(1, 4), "");  // narrow blocked by budget now
  EXPECT_EQ(q.pop_admissible(0, 0), "narrow");
}

TEST(ServiceAdmission, QuotaWiderThanBudgetRejected) {
  AdmissionQueue q(policy(8, 2, 4));
  EXPECT_THROW(q.push("hog", 0, 0, 5), AdmissionRejectedError);
}

TEST(ServiceAdmission, RestoreBypassesDepthNotBudget) {
  AdmissionQueue q(policy(1, 1, 4));
  q.push("a", 0, 0, 1);
  q.restore("recovered", 0, 1, 1);  // depth bound waived for recovery
  EXPECT_EQ(q.size(), 2u);
  // ...but a quota that can never fit is still rejected.
  EXPECT_THROW(q.restore("hog", 0, 2, 5), AdmissionRejectedError);
}

TEST(ServiceAdmission, RemoveCancelsQueuedEntry) {
  AdmissionQueue q(policy(8, 1, 8));
  q.push("a", 0, 0, 1);
  EXPECT_TRUE(q.remove("a"));
  EXPECT_FALSE(q.remove("a"));
  EXPECT_TRUE(q.empty());
}

// ------------------------------------------------------ daemon (e2e) ----

dram::Geometry service_geometry() {
  dram::Geometry g;
  g.rows = 512;
  g.compute_rows = 8;
  g.columns = 256;
  g.subarrays_per_mat = 16;
  g.mats_per_bank = 4;
  g.banks = 2;
  return g;
}

// Small workload: jobs finish in well under a second.
void write_small_reads(const std::string& path) {
  dna::GenomeParams gp;
  gp.length = 700;
  gp.repeat_count = 0;
  dna::ReadSamplerParams rp;
  rp.coverage = 6.0;
  rp.read_length = 70;
  const auto reads = dna::sample_reads(dna::generate_genome(gp), rp);
  std::vector<dna::Record> records;
  records.reserve(reads.size());
  for (std::size_t i = 0; i < reads.size(); ++i)
    records.push_back({"read_" + std::to_string(i), reads[i]});
  dna::write_fasta_file(path, records);
}

// Medium workload: long enough (hundreds of ms) that a test can reliably
// observe/interrupt a job mid-run.
void write_medium_reads(const std::string& path) {
  dna::GenomeParams gp;
  gp.length = 6'000;
  gp.repeat_count = 2;
  gp.repeat_length = 150;
  dna::ReadSamplerParams rp;
  rp.coverage = 10.0;
  rp.read_length = 101;
  const auto reads = dna::sample_reads(dna::generate_genome(gp), rp);
  std::vector<dna::Record> records;
  records.reserve(reads.size());
  for (std::size_t i = 0; i < reads.size(); ++i)
    records.push_back({"read_" + std::to_string(i), reads[i]});
  dna::write_fasta_file(path, records);
}

// What the daemon's contigs.fa must contain for `spec`: a standalone
// in-process pipeline run (no daemon, no checkpointing) through the same
// FASTA writer. This is the acceptance bar — service output bit-identical
// to `pima_asm pim-run`.
std::string golden_fasta(const std::string& reads_path, const JobSpec& spec) {
  const auto records = dna::read_fasta_file(reads_path);
  std::vector<dna::Sequence> reads;
  reads.reserve(records.size());
  for (const auto& r : records) reads.push_back(r.seq);
  core::PipelineOptions opt;
  opt.k = spec.k;
  opt.hash_shards = spec.hash_shards;
  opt.threads = spec.channels;
  opt.euler_contigs = spec.euler;
  dram::Device device(service_geometry());
  const auto result = core::run_pipeline(device, reads, opt);
  std::vector<dna::Record> contigs;
  contigs.reserve(result.contigs.size());
  for (std::size_t i = 0; i < result.contigs.size(); ++i)
    contigs.push_back({"contig_" + std::to_string(i), result.contigs[i]});
  std::ostringstream out;
  dna::write_fasta(out, contigs);
  return out.str();
}

// In-process daemon running on its own thread, serving a throwaway state
// dir. stop() is idempotent; the destructor always joins.
class DaemonHarness {
 public:
  explicit DaemonHarness(const std::string& name, AdmissionPolicy admission,
                         std::size_t max_connections = 64,
                         std::uint16_t http_port = 0) {
    state_dir_ = (fs::temp_directory_path() / ("pima_svc_" + name)).string();
    fs::remove_all(state_dir_);
    fs::create_directories(state_dir_);
    DaemonOptions opt;
    opt.state_dir = state_dir_;
    opt.socket_path = state_dir_ + "/pima.sock";
    opt.admission = admission;
    opt.max_connections = max_connections;
    opt.http_port = http_port;
    opt.geometry = service_geometry();
    daemon_ = std::make_unique<Daemon>(std::move(opt));
    thread_ = std::thread([this] { daemon_->run(); });
    wait_until_serving();
  }

  ~DaemonHarness() {
    stop();
    fs::remove_all(state_dir_);
  }

  const std::string& state_dir() const { return state_dir_; }
  const std::string& socket() const { return daemon_->options().socket_path; }
  Daemon& daemon() { return *daemon_; }

  void stop() {
    if (thread_.joinable()) {
      daemon_->request_shutdown();
      thread_.join();
    }
  }

  /// Waits for run() to return on its own (drain/shutdown verb paths).
  void join() {
    if (thread_.joinable()) thread_.join();
  }

  Client connect() { return Client::connect_unix_socket(socket()); }

  Json request(Json req) { return connect().request(req); }

  std::string submit(const std::string& reads_path, std::size_t k,
                     std::size_t shards, std::size_t threads,
                     int priority = 0) {
    Json req = Json::object();
    req.set("verb", "submit")
        .set("reads", reads_path)
        .set("k", k)
        .set("shards", shards)
        .set("threads", threads)
        .set("priority", priority);
    const Json resp = request(std::move(req));
    EXPECT_TRUE(resp.get_bool("ok")) << resp.dump();
    return resp.get_string("job");
  }

  Json status(const std::string& id) {
    Json req = Json::object();
    req.set("verb", "status").set("job", id);
    return request(std::move(req));
  }

  Json wait_terminal(const std::string& id,
                     std::chrono::seconds timeout = 120s) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      const Json resp = status(id);
      if (resp.get_bool("ok") &&
          is_terminal(parse_job_state(resp.get_string("state"))))
        return resp;
      std::this_thread::sleep_for(20ms);
    }
    ADD_FAILURE() << "job " << id << " did not reach a terminal state";
    return status(id);
  }

  std::string fetch_fasta(const std::string& id) {
    Json req = Json::object();
    req.set("verb", "result").set("job", id).set("fetch", true);
    const Json resp = request(std::move(req));
    EXPECT_TRUE(resp.get_bool("ok")) << resp.dump();
    return resp.get_string("fasta");
  }

 private:
  void wait_until_serving() {
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (std::chrono::steady_clock::now() < deadline) {
      try {
        Json req = Json::object();
        req.set("verb", "ping");
        (void)Client::connect_unix_socket(socket()).request(req);
        return;
      } catch (const IoError&) {
        std::this_thread::sleep_for(5ms);
      }
    }
    FAIL() << "daemon never started serving on " << socket();
  }

  std::string state_dir_;
  std::unique_ptr<Daemon> daemon_;
  std::thread thread_;
};

/// One blocking HTTP GET against loopback `port`; returns the raw
/// response (head + body). The daemon closes after each response, so
/// read-to-EOF frames it.
std::string http_get(std::uint16_t port, const std::string& target) {
  ScopedFd fd = connect_tcp(port);
  const std::string req =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t n =
        ::send(fd.get(), req.data() + off, req.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("http test send failed");
    }
    off += static_cast<std::size_t>(n);
  }
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd.get(), chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("http test read failed");
    }
    if (n == 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  return response;
}

std::string http_body(const std::string& response) {
  const std::size_t head_end = response.find("\r\n\r\n");
  return head_end == std::string::npos ? std::string()
                                       : response.substr(head_end + 4);
}

TEST(ServiceDaemon, HttpPlaneServesMetricsHealthzAndJobs) {
  const auto port =
      static_cast<std::uint16_t>(21000 + (::getpid() % 20000));
  DaemonHarness h("http", policy(8, 2, 6), 64, port);
  const std::string reads = h.state_dir() + "/reads.fa";
  write_small_reads(reads);
  const std::string id = h.submit(reads, 15, 8, 2);
  h.wait_terminal(id);

  const std::string health = http_get(port, "/healthz");
  EXPECT_EQ(health.substr(0, 15), "HTTP/1.1 200 OK");
  EXPECT_NE(health.find("Connection: close"), std::string::npos);
  EXPECT_EQ(http_body(health), "ok\n");

  // /metrics must be byte-identical to the NDJSON `metrics` verb — both
  // run the same deterministic fold over the same registries.
  const std::string http_metrics = http_body(http_get(port, "/metrics"));
  Json req = Json::object();
  req.set("verb", "metrics");
  const Json verb_resp = h.request(std::move(req));
  ASSERT_TRUE(verb_resp.get_bool("ok")) << verb_resp.dump();
  EXPECT_EQ(http_metrics, verb_resp.get_string("body"));
  EXPECT_NE(http_metrics.find("pima_reads_total"), std::string::npos);

  const std::string jobs_body = http_body(http_get(port, "/jobs"));
  const Json jobs = Json::parse(jobs_body);
  ASSERT_TRUE(jobs.get_bool("ok"));
  ASSERT_TRUE(jobs.has("jobs"));
  ASSERT_EQ(jobs.get("jobs").items().size(), 1u);
  EXPECT_EQ(jobs.get("jobs").items()[0].get_string("job"), id);

  const std::string missing = http_get(port, "/nope");
  EXPECT_EQ(missing.substr(0, 12), "HTTP/1.1 404");
}

TEST(ServiceDaemon, ThreeConcurrentJobsBitIdenticalToStandalone) {
  DaemonHarness h("concurrent", policy(8, 3, 6));
  const std::string reads = h.state_dir() + "/reads.fa";
  write_small_reads(reads);

  JobSpec spec;
  spec.reads_path = reads;
  spec.k = 15;
  spec.hash_shards = 8;
  spec.channels = 2;
  const std::string golden = golden_fasta(reads, spec);

  std::vector<std::string> ids;
  for (int i = 0; i < 3; ++i)
    ids.push_back(h.submit(reads, spec.k, spec.hash_shards, spec.channels));
  for (const auto& id : ids) {
    const Json final_status = h.wait_terminal(id);
    ASSERT_EQ(final_status.get_string("state"), "done") << final_status.dump();
    EXPECT_EQ(final_status.get_number("stages_done"), 3.0);
    EXPECT_EQ(h.fetch_fasta(id), golden) << "job " << id
                                         << " diverged from standalone run";
  }

  // The daemon-wide metrics fold carries every job's labelled series plus
  // the service counters.
  Json req = Json::object();
  req.set("verb", "metrics").set("format", "prometheus");
  const std::string body = h.request(std::move(req)).get_string("body");
  EXPECT_NE(body.find("pima_service_jobs_submitted_total"), std::string::npos);
  EXPECT_NE(body.find("job=\"" + ids.front() + "\""), std::string::npos);
  EXPECT_NE(body.find("job=\"" + ids.back() + "\""), std::string::npos);
}

TEST(ServiceDaemon, SubmitBeyondQueueDepthRejectedTyped) {
  // One running slot, one queue slot: the third concurrent submit must be
  // rejected synchronously with the typed admission error.
  DaemonHarness h("reject", policy(1, 1, 1));
  const std::string reads = h.state_dir() + "/reads.fa";
  write_medium_reads(reads);

  const std::string running = h.submit(reads, 17, 32, 1);
  const std::string queued = h.submit(reads, 17, 32, 1);

  Json req = Json::object();
  req.set("verb", "submit").set("reads", reads).set("k", 17).set("shards", 32);
  const Json rejected = h.request(std::move(req));
  EXPECT_FALSE(rejected.get_bool("ok"));
  EXPECT_EQ(rejected.get_string("error"), "AdmissionRejectedError");

  // A malformed spec is the input-format class, not admission.
  Json bad = Json::object();
  bad.set("verb", "submit").set("reads", reads).set("k", 3);
  EXPECT_EQ(h.request(std::move(bad)).get_string("error"), "InputFormatError");

  // Cancelling the queued job frees the slot and the next submit lands.
  Json cancel = Json::object();
  cancel.set("verb", "cancel").set("job", queued);
  const Json cancelled = h.request(std::move(cancel));
  EXPECT_TRUE(cancelled.get_bool("ok")) << cancelled.dump();
  EXPECT_EQ(cancelled.get_string("state"), "cancelled");
  const std::string retry = h.submit(reads, 17, 32, 1);
  EXPECT_FALSE(retry.empty());
  (void)running;
}

TEST(ServiceDaemon, DrainRunsQueueDryThenStops) {
  DaemonHarness h("drain", policy(8, 1, 2));
  const std::string reads = h.state_dir() + "/reads.fa";
  write_small_reads(reads);
  const std::string a = h.submit(reads, 15, 8, 1);
  const std::string b = h.submit(reads, 15, 8, 1);

  Json req = Json::object();
  req.set("verb", "drain");
  const Json resp = h.request(std::move(req));
  EXPECT_TRUE(resp.get_bool("ok")) << resp.dump();
  EXPECT_TRUE(resp.get_bool("drained"));
  EXPECT_EQ(resp.get_number("done"), 2.0) << resp.dump();
  h.join();  // drain shuts the daemon down; run() must return by itself

  // Both jobs' results are durable in the state dir.
  for (const auto& id : {a, b}) {
    const JobRecord rec = load_job_record(h.state_dir() + "/jobs/" + id);
    EXPECT_EQ(rec.state, JobState::kDone);
    EXPECT_TRUE(fs::exists(h.state_dir() + "/jobs/" + id + "/contigs.fa"));
  }
}

TEST(ServiceDaemon, FollowStreamsChangesAndSurvivesEarlyHangup) {
  DaemonHarness h("follow", policy(8, 1, 2));
  const std::string reads = h.state_dir() + "/reads.fa";
  write_small_reads(reads);

  // A follower that hangs up after the first line must not wedge the
  // daemon: status writes happen with the daemon lock released, and a
  // failed write ends the follow loop.
  const std::string id = h.submit(reads, 15, 8, 1);
  {
    Json req = Json::object();
    req.set("verb", "status").set("job", id).set("follow", true);
    Client quitter = h.connect();
    (void)quitter.stream(req, [](const Json&) { return false; });
  }
  EXPECT_TRUE(h.status(id).get_bool("ok"));  // daemon still answering

  // A patient follower streams every observed change through to the
  // terminal state, then the daemon closes the stream.
  const std::string id2 = h.submit(reads, 15, 8, 1);
  Json req = Json::object();
  req.set("verb", "status").set("job", id2).set("follow", true);
  std::vector<std::string> states;
  const Json last = h.connect().stream(req, [&](const Json& line) {
    states.push_back(line.get_string("state"));
    return true;
  });
  EXPECT_EQ(last.get_string("state"), "done") << last.dump();
  EXPECT_EQ(last.get_number("stages_done"), 3.0);
  ASSERT_FALSE(states.empty());
  EXPECT_EQ(states.back(), "done");
}

TEST(ServiceDaemon, ConnectionCapRefusesThenReapsClosedSlots) {
  DaemonHarness h("conncap", policy(8, 1, 2), /*max_connections=*/2);
  Json ping = Json::object();
  ping.set("verb", "ping");
  {
    // Two live connections fill the cap (a completed request proves each
    // handler thread is registered, not just queued in the backlog).
    // Earlier short-lived connections — the harness's own startup ping —
    // may not be reaped yet, so retry until both clients hold slots
    // simultaneously.
    std::optional<Client> a;
    std::optional<Client> b;
    const auto setup_deadline = std::chrono::steady_clock::now() + 10s;
    for (;;) {
      try {
        a.emplace(h.connect());
        b.emplace(h.connect());
        if (a->request(ping).get_bool("ok") &&
            b->request(ping).get_bool("ok"))
          break;
      } catch (const IoError&) {
      }
      a.reset();
      b.reset();
      ASSERT_LT(std::chrono::steady_clock::now(), setup_deadline)
          << "could not occupy both connection slots";
      std::this_thread::sleep_for(5ms);
    }
    // The third is refused with the typed transport-admission error —
    // written unprompted, so read it without sending a request.
    ScopedFd raw = connect_unix(h.socket());
    LineChannel refused_channel(raw.get());
    std::string line;
    ASSERT_TRUE(refused_channel.read_line(line));
    const Json refused = Json::parse(line);
    EXPECT_FALSE(refused.get_bool("ok"));
    EXPECT_EQ(refused.get_string("error"), "AdmissionRejectedError");
  }
  // Both slots hung up; the accept loop reaps them (the daemon may not
  // have observed the EOFs yet, so allow a grace window) and then a
  // sequential churn of connections through the 2-slot cap all succeed —
  // slots are reclaimed, not accumulated.
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  for (;;) {
    try {
      if (h.request(ping).get_bool("ok")) break;
    } catch (const IoError&) {
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "daemon never reclaimed closed connection slots";
    std::this_thread::sleep_for(5ms);
  }
  for (int i = 0; i < 10; ++i) {
    const auto retry_deadline = std::chrono::steady_clock::now() + 10s;
    for (;;) {
      bool ok = false;
      try {
        ok = h.request(ping).get_bool("ok");
      } catch (const IoError&) {
      }
      if (ok) break;
      ASSERT_LT(std::chrono::steady_clock::now(), retry_deadline)
          << "connection churn iteration " << i << " starved out";
      std::this_thread::sleep_for(5ms);
    }
  }
}

TEST(ServiceDaemon, KilledDaemonRestartResumesFromStageCheckpoint) {
  // The hardest crash: SIGKILL the whole daemon process mid-job (no
  // destructors, no flushes), restart on the same state dir, and demand
  // the job finish bit-identical to an uninterrupted standalone run.
  const std::string state_dir =
      (fs::temp_directory_path() / "pima_svc_kill").string();
  fs::remove_all(state_dir);
  fs::create_directories(state_dir);
  const std::string socket_path = state_dir + "/pima.sock";
  const std::string reads = state_dir + "/reads.fa";
  write_medium_reads(reads);

  JobSpec spec;
  spec.reads_path = reads;
  spec.k = 17;
  spec.hash_shards = 32;
  spec.channels = 2;
  const std::string golden = golden_fasta(reads, spec);

  DaemonOptions opt;
  opt.state_dir = state_dir;
  opt.socket_path = socket_path;
  opt.admission = policy(8, 1, 2);
  opt.geometry = service_geometry();

  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    try {
      Daemon daemon(opt);
      daemon.run();
    } catch (...) {
    }
    _exit(42);  // only reached if the parent's SIGKILL never lands
  }

  // Submit over the socket (retry until the child daemon is up), then
  // watch the persisted record until the first stage checkpoint is
  // durable.
  std::string id;
  {
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    for (;;) {
      try {
        Json req = Json::object();
        req.set("verb", "submit")
            .set("reads", reads)
            .set("k", spec.k)
            .set("shards", spec.hash_shards)
            .set("threads", spec.channels);
        const Json resp =
            Client::connect_unix_socket(socket_path).request(req);
        ASSERT_TRUE(resp.get_bool("ok")) << resp.dump();
        id = resp.get_string("job");
        break;
      } catch (const IoError&) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "child daemon never came up";
        std::this_thread::sleep_for(5ms);
      }
    }
  }
  const std::string job_dir = state_dir + "/jobs/" + id;
  {
    const auto deadline = std::chrono::steady_clock::now() + 60s;
    for (;;) {
      try {
        if (load_job_record(job_dir).stages_done >= 1) break;
      } catch (const std::exception&) {
        // job.json mid-rename — retry
      }
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "job never reached its first stage checkpoint";
      std::this_thread::sleep_for(2ms);
    }
  }
  ASSERT_EQ(kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

  // The record on disk must show an interrupted, non-terminal job.
  const JobRecord at_kill = load_job_record(job_dir);
  ASSERT_FALSE(is_terminal(at_kill.state))
      << "job finished before the kill — state " << to_string(at_kill.state);
  ASSERT_GE(at_kill.stages_done, 1u);

  // Restart in-process on the same state dir: recovery must re-queue the
  // job and the pipeline must resume from the snapshot, not start over.
  Daemon daemon(opt);
  std::thread runner([&] { daemon.run(); });
  std::string fasta;
  {
    const auto deadline = std::chrono::steady_clock::now() + 120s;
    for (;;) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "recovered job never finished";
      try {
        Json req = Json::object();
        req.set("verb", "status").set("job", id);
        const Json resp = Client::connect_unix_socket(socket_path).request(req);
        if (resp.get_bool("ok") &&
            is_terminal(parse_job_state(resp.get_string("state")))) {
          ASSERT_EQ(resp.get_string("state"), "done") << resp.dump();
          Json fetch = Json::object();
          fetch.set("verb", "result").set("job", id).set("fetch", true);
          fasta = Client::connect_unix_socket(socket_path)
                      .request(fetch)
                      .get_string("fasta");
          break;
        }
      } catch (const IoError&) {
        // restarted daemon still binding
      }
      std::this_thread::sleep_for(20ms);
    }
  }
  daemon.request_shutdown();
  runner.join();

  EXPECT_EQ(fasta, golden)
      << "resumed job diverged from the uninterrupted standalone run";
  fs::remove_all(state_dir);
}

}  // namespace
}  // namespace pima::service
