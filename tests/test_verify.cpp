#include "assembly/verify.hpp"

#include <gtest/gtest.h>

namespace pima::assembly {
namespace {

dna::Sequence seq(const std::string& s) {
  return dna::Sequence::from_string(s);
}

TEST(Verify, ContainsSubsequence) {
  EXPECT_TRUE(contains_subsequence(seq("ACGTACGT"), seq("GTAC")));
  EXPECT_FALSE(contains_subsequence(seq("ACGTACGT"), seq("GGGG")));
  EXPECT_FALSE(contains_subsequence(seq("ACG"), seq("ACGT")));
  EXPECT_TRUE(contains_subsequence(seq("ACG"), dna::Sequence{}));
}

TEST(Verify, ExactContigsMatch) {
  const auto ref = seq("ACGTACGGTTCAGT");
  const auto report =
      verify_contigs(ref, {seq("ACGTAC"), seq("GTTCAGT")});
  EXPECT_EQ(report.contigs_checked, 2u);
  EXPECT_EQ(report.contigs_matching, 2u);
  EXPECT_TRUE(report.all_match());
}

TEST(Verify, ReverseComplementContigCounts) {
  const auto ref = seq("AACCGGTTAC");
  // RC of AACCGG is CCGGTT — wait, take RC of a ref slice directly.
  const auto rc_contig = ref.subseq(0, 6).reverse_complement();
  const auto report = verify_contigs(ref, {rc_contig});
  EXPECT_EQ(report.contigs_matching, 1u);
  EXPECT_NEAR(report.reference_coverage, 0.6, 1e-9);
}

TEST(Verify, MismatchDetected) {
  // GTGTGT appears neither in the reference nor in its reverse complement.
  const auto report = verify_contigs(seq("AAAACCCC"), {seq("GTGTGT")});
  EXPECT_EQ(report.contigs_matching, 0u);
  EXPECT_FALSE(report.all_match());
  EXPECT_DOUBLE_EQ(report.reference_coverage, 0.0);
}

TEST(Verify, CoverageAccountsOverlaps) {
  const auto ref = seq("AACCGGTT");
  const auto report = verify_contigs(ref, {seq("AACCG"), seq("CCGGT")});
  // Union covers positions 0..6 (7 of 8).
  EXPECT_NEAR(report.reference_coverage, 7.0 / 8.0, 1e-9);
}

TEST(Verify, RepeatedContigMarksAllOccurrences) {
  const auto ref = seq("ACGTTTACGT");
  const auto report = verify_contigs(ref, {seq("ACGT")});
  // ACGT occurs at 0 and 6: coverage 8/10.
  EXPECT_NEAR(report.reference_coverage, 0.8, 1e-9);
}

TEST(Verify, MinLengthSkipsFragments) {
  const auto ref = seq("AACCGGTT");
  const auto report = verify_contigs(ref, {seq("AA"), seq("AACCGGTT")}, 4);
  EXPECT_EQ(report.contigs_checked, 1u);
  EXPECT_EQ(report.contigs_matching, 1u);
  EXPECT_DOUBLE_EQ(report.reference_coverage, 1.0);
}

}  // namespace
}  // namespace pima::assembly
