#include "assembly/simplify.hpp"

#include <gtest/gtest.h>

#include "assembly/assembler.hpp"
#include "assembly/contig.hpp"
#include "assembly/verify.hpp"
#include "dna/genome.hpp"

namespace pima::assembly {
namespace {

DeBruijnGraph graph_of(const std::vector<std::string>& reads, std::size_t k,
                       bool multiplicity = true) {
  std::vector<dna::Sequence> seqs;
  for (const auto& r : reads) seqs.push_back(dna::Sequence::from_string(r));
  return DeBruijnGraph::from_counter(build_hashmap(seqs, k), multiplicity);
}

TEST(Simplify, NoArtifactsNoChanges) {
  const auto g = graph_of({"ACGGTCAGGTTT"}, 4);
  const auto result = simplify_graph(g);
  EXPECT_EQ(result.graph.edge_count(), g.edge_count());
  EXPECT_EQ(result.stats.tips_removed, 0u);
  EXPECT_EQ(result.stats.bubbles_popped, 0u);
}

TEST(Simplify, CoverageFilterDropsWeakEdges) {
  // Main sequence seen 3x, chimeric read once.
  const auto g = graph_of(
      {"ACGGTCAGGTTT", "ACGGTCAGGTTT", "ACGGTCAGGTTT", "TTTTGGGG"}, 5);
  SimplifyParams p;
  p.min_edge_multiplicity = 2;
  p.max_tip_length = 0;
  p.max_bubble_length = 0;
  const auto result = simplify_graph(g, p);
  EXPECT_GT(result.stats.low_coverage_removed, 0u);
  for (const auto& e : result.graph.edges())
    EXPECT_GE(e.multiplicity, 2u);
}

TEST(Simplify, ClipsForwardTip) {
  // Trunk TTTACGGTCAG (seen twice) with a weak spur CATAC joining the
  // trunk at node TAC (an error near a read start creates an in-degree-0
  // source whose coverage is below the trunk's).
  const auto g = graph_of({"TTTACGGTCAG", "TTTACGGTCAG", "CATAC"}, 4);
  SimplifyParams p;
  p.max_tip_length = 3;
  p.max_bubble_length = 0;
  const auto result = simplify_graph(g, p);
  EXPECT_GT(result.stats.tips_removed, 0u);
  // The trunk must survive intact: its contig still spells through.
  const auto contigs = contigs_from_unitigs(result.graph);
  bool trunk = false;
  for (const auto& c : contigs)
    if (c.to_string() == "TTTACGGTCAG") trunk = true;
  EXPECT_TRUE(trunk);
}

TEST(Simplify, ClipsBackwardTip) {
  // Weak spur leaving the trunk: trunk ACGGTCAGGT (x2) plus read TCAGAA
  // branching at node CAG and dead-ending.
  const auto g = graph_of({"ACGGTCAGGT", "ACGGTCAGGT", "TCAGAA"}, 4);
  SimplifyParams p;
  p.max_tip_length = 3;
  p.max_bubble_length = 0;
  const auto result = simplify_graph(g, p);
  EXPECT_GT(result.stats.tips_removed, 0u);
  // The spur is gone and every surviving unitig is trunk sequence (the
  // trunk splits at its internal GGT repeat node, which is fine).
  for (const auto& c : contigs_from_unitigs(result.graph)) {
    const auto s = c.to_string();
    EXPECT_NE(std::string("ACGGTCAGGT").find(s), std::string::npos) << s;
    EXPECT_EQ(s.find("GAA"), std::string::npos) << s;
  }
}

TEST(Simplify, LongTipPreserved) {
  const auto g = graph_of({"TTTACGGTCAG", "TTTACGGTCAG", "CATAC"}, 4);
  SimplifyParams p;
  p.max_tip_length = 1;  // spur is 2 edges: too long to clip
  p.max_bubble_length = 0;
  const auto result = simplify_graph(g, p);
  EXPECT_EQ(result.stats.tips_removed, 0u);
  EXPECT_EQ(result.graph.edge_count(), g.edge_count());
}

TEST(Simplify, PopsBubble) {
  // Same sequence with and without a single-base substitution mid-read:
  // creates two equal-length parallel paths (a bubble). The erroneous
  // variant is seen once, the true one three times.
  const std::string true_seq = "AACCGGTTCAGTACGT";
  std::string err_seq = true_seq;
  err_seq[8] = 'G';  // C -> G mid-sequence
  const auto g =
      graph_of({true_seq, true_seq, true_seq, err_seq}, 5);
  SimplifyParams p;
  p.max_tip_length = 0;
  p.max_bubble_length = 6;
  const auto result = simplify_graph(g, p);
  EXPECT_GE(result.stats.bubbles_popped, 1u);
  // The surviving graph spells the true sequence as one unitig.
  const auto contigs = contigs_from_unitigs(result.graph);
  ASSERT_EQ(contigs.size(), 1u);
  EXPECT_EQ(contigs[0].to_string(), true_seq);
}

TEST(Simplify, BubbleKeepsStrongerBranch) {
  const std::string true_seq = "AACCGGTTCAGTACGT";
  std::string err_seq = true_seq;
  err_seq[8] = 'G';
  // Erroneous variant dominant (3x) — the popper keeps multiplicity, not
  // truth; here it must keep the dominant branch.
  const auto g = graph_of({err_seq, err_seq, err_seq, true_seq}, 5);
  SimplifyParams p;
  p.max_tip_length = 0;
  p.max_bubble_length = 6;
  const auto result = simplify_graph(g, p);
  const auto contigs = contigs_from_unitigs(result.graph);
  ASSERT_EQ(contigs.size(), 1u);
  EXPECT_EQ(contigs[0].to_string(), err_seq);
}

TEST(Simplify, ErroredReadsAssembleCleanly) {
  // The integration payoff: 1% substitution errors at 25x coverage. The
  // raw graph fragments into many contigs; filter+clean recovers long,
  // verifiable contigs.
  dna::GenomeParams gp;
  gp.length = 4000;
  gp.repeat_count = 0;
  gp.seed = 77;
  const auto genome = dna::generate_genome(gp);
  dna::ReadSamplerParams rp;
  rp.coverage = 25.0;
  rp.read_length = 90;
  rp.error_rate = 0.01;
  const auto reads = dna::sample_reads(genome, rp);

  AssemblyOptions raw;
  raw.k = 21;
  raw.euler_contigs = false;
  raw.use_multiplicity = true;
  AssemblyOptions clean = raw;
  clean.min_kmer_freq = 3;
  clean.simplify = true;
  clean.simplify_params.max_tip_length = 4;
  clean.simplify_params.max_bubble_length = 6;

  const auto raw_result = assemble(reads, raw);
  const auto clean_result = assemble(reads, clean);
  EXPECT_LT(clean_result.graph_edges, raw_result.graph_edges);
  EXPECT_GT(clean_result.stats.n50, raw_result.stats.n50);
  const auto report =
      verify_contigs(genome, clean_result.contigs, 3 * clean.k);
  EXPECT_GT(report.reference_coverage, 0.85);
  // Long contigs must be genuine (no chimeras from error edges).
  EXPECT_GT(static_cast<double>(report.contigs_matching),
            0.9 * static_cast<double>(report.contigs_checked));
}

TEST(Simplify, FromEdgesValidatesMultiplicity) {
  EXPECT_THROW(DeBruijnGraph::from_edges(
                   {{Kmer(0b0100, 2), 0u}}),
               pima::PreconditionError);
}

TEST(Simplify, RoundsTerminate) {
  const auto g =
      graph_of({"TTTACGGTCAG", "TTTACGGTCAG", "CATAC", "TTACGGA"}, 4);
  SimplifyParams p;
  p.max_rounds = 10;
  const auto result = simplify_graph(g, p);
  EXPECT_LE(result.stats.rounds, 10u);
  EXPECT_GE(result.stats.rounds, 1u);
}

}  // namespace
}  // namespace pima::assembly
