#include "assembly/debruijn.hpp"

#include <gtest/gtest.h>

#include "dna/genome.hpp"

namespace pima::assembly {
namespace {

DeBruijnGraph graph_of(const std::vector<std::string>& reads, std::size_t k,
                       bool multiplicity = false) {
  std::vector<dna::Sequence> seqs;
  for (const auto& r : reads) seqs.push_back(dna::Sequence::from_string(r));
  return DeBruijnGraph::from_counter(build_hashmap(seqs, k), multiplicity);
}

TEST(DeBruijn, PaperFig5bGraph) {
  // From S = CGTGCGTGCTT with k = 5: 6 distinct k-mers ⇒ 6 edges over
  // 4-mer nodes {CGTG, GTGC, TGCG, GCGT, TGCT, GCTT... } (prefix/suffix).
  const auto g = graph_of({"CGTGCGTGCTT"}, 5);
  EXPECT_EQ(g.edge_count(), 6u);
  // Distinct 4-mer nodes: CGTG GTGC TGCG GCGT TGCT GCTT.
  EXPECT_EQ(g.node_count(), 6u);
  // Node CGTG must exist and have out-degree 1 (edge CGTGC).
  const auto seq = dna::Sequence::from_string("CGTG");
  const auto node = g.find_node(Kmer::from_sequence(seq, 0, 4));
  ASSERT_TRUE(node.has_value());
  EXPECT_EQ(g.out_degree(*node), 1u);
}

TEST(DeBruijn, EdgeEndpointsAreKmerAffixes) {
  const auto g = graph_of({"CGTGCGTGCTT"}, 5);
  for (const auto& e : g.edges()) {
    EXPECT_EQ(g.node_kmer(e.from), e.kmer.prefix());
    EXPECT_EQ(g.node_kmer(e.to), e.kmer.suffix());
  }
}

TEST(DeBruijn, DegreeSumsEqualEdgeInstances) {
  const auto g = graph_of({"CGTGCTTACGG", "CGTGCTTAGG"}, 4);
  std::uint64_t in_sum = 0, out_sum = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    in_sum += g.in_degree(v);
    out_sum += g.out_degree(v);
  }
  EXPECT_EQ(in_sum, g.edge_instances());
  EXPECT_EQ(out_sum, g.edge_instances());
}

TEST(DeBruijn, MultiplicityCarriesFrequency) {
  const auto plain = graph_of({"CGTGCGTGCTT"}, 5, false);
  const auto multi = graph_of({"CGTGCGTGCTT"}, 5, true);
  EXPECT_EQ(plain.edge_instances(), 6u);   // distinct edges only
  EXPECT_EQ(multi.edge_instances(), 7u);   // CGTGC counted twice
  EXPECT_EQ(plain.edge_count(), multi.edge_count());
}

TEST(DeBruijn, UnbalancedNodesOfLinearSequence) {
  // A repeat-free linear sequence has exactly two unbalanced nodes: the
  // start (out > in) and the end (in > out).
  const auto g = graph_of({"ACGGTCAGGTTT"}, 4);
  const auto unbal = g.unbalanced_nodes();
  EXPECT_EQ(unbal.size(), 2u);
}

TEST(DeBruijn, BranchingAtRepeatNode) {
  // Paper Fig. 5c: after CTT the graph branches to TTA→{TAC, TAG}.
  const auto g = graph_of({"CGTGCTTACGG", "CGTGCTTAGG"}, 4);
  const auto seq = dna::Sequence::from_string("TTA");
  const auto node = g.find_node(Kmer::from_sequence(seq, 0, 3));
  ASSERT_TRUE(node.has_value());
  EXPECT_EQ(g.out_degree(*node), 2u);
  EXPECT_EQ(g.in_degree(*node), 1u);
}

TEST(DeBruijn, WeakComponentsSeparateContigs) {
  // Two reads with no shared k-mers form two weak components.
  const auto g = graph_of({"AAAACCCC", "GGGGTGTG"}, 5);
  const auto comp = g.weak_components();
  ASSERT_EQ(comp.size(), g.node_count());
  std::uint32_t max_comp = 0;
  for (const auto c : comp) max_comp = std::max(max_comp, c);
  EXPECT_EQ(max_comp, 1u);  // components 0 and 1
  // Endpoints of every edge share a component.
  for (const auto& e : g.edges()) EXPECT_EQ(comp[e.from], comp[e.to]);
}

TEST(DeBruijn, FindNodeMissing) {
  const auto g = graph_of({"CGTGCGTGCTT"}, 5);
  const auto seq = dna::Sequence::from_string("AAAA");
  EXPECT_FALSE(g.find_node(Kmer::from_sequence(seq, 0, 4)).has_value());
}

TEST(DeBruijn, DeterministicConstruction) {
  const auto a = graph_of({"CGTGCTTACGG", "CGTGCTTAGG"}, 4);
  const auto b = graph_of({"CGTGCTTACGG", "CGTGCTTAGG"}, 4);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (std::size_t e = 0; e < a.edge_count(); ++e)
    EXPECT_EQ(a.edge(e).kmer, b.edge(e).kmer);
}

TEST(DeBruijn, LargeRandomGraphInvariants) {
  dna::GenomeParams gp;
  gp.length = 4000;
  gp.repeat_count = 2;  // default 20×300 bp would dominate a 4 kb genome
  const auto genome = dna::generate_genome(gp);
  dna::ReadSamplerParams rp;
  rp.coverage = 8.0;
  rp.read_length = 90;
  const auto reads = dna::sample_reads(genome, rp);
  const auto g = DeBruijnGraph::from_counter(build_hashmap(reads, 21));
  EXPECT_GT(g.node_count(), 3000u);
  EXPECT_GE(g.edge_count() + 1, g.node_count());  // connected-ish chain
  for (const auto& e : g.edges()) {
    EXPECT_LT(e.from, g.node_count());
    EXPECT_LT(e.to, g.node_count());
  }
}

}  // namespace
}  // namespace pima::assembly
