#include "dram/isa.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pima::dram {
namespace {

Geometry tiny() {
  Geometry g;
  g.rows = 64;
  g.compute_rows = 8;
  g.columns = 32;
  return g;
}

Instruction copy_inst(std::size_t sa, RowAddr src, RowAddr dst,
                      std::size_t size = 1) {
  Instruction i;
  i.op = Opcode::kAapCopy;
  i.subarray = sa;
  i.src1 = src;
  i.dst = dst;
  i.size = size;
  return i;
}

TEST(Isa, TextRoundTripEveryOpcode) {
  std::vector<Instruction> insts;
  for (const auto op :
       {Opcode::kAapCopy, Opcode::kAapXnor, Opcode::kAapXor, Opcode::kAapTra,
        Opcode::kSum, Opcode::kResetLatch, Opcode::kRowRead, Opcode::kDpuAnd,
        Opcode::kDpuOr, Opcode::kDpuPopcount}) {
    Instruction i;
    i.op = op;
    i.subarray = 3;
    i.src1 = 10;
    i.src2 = 11;
    i.src3 = 12;
    i.dst = 20;
    i.size = 1;
    i.width = 16;
    insts.push_back(i);
  }
  for (const auto& i : insts) {
    const auto parsed = parse_instruction(to_text(i));
    ASSERT_TRUE(parsed.has_value()) << to_text(i);
    EXPECT_EQ(parsed->op, i.op) << to_text(i);
    EXPECT_EQ(parsed->subarray, i.subarray);
  }
}

TEST(Isa, RowWriteCarriesPayload) {
  Instruction i;
  i.op = Opcode::kRowWrite;
  i.subarray = 1;
  i.src1 = 5;
  i.payload = BitVector::from_string("10110011");
  const auto parsed = parse_instruction(to_text(i));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->payload, i.payload);
}

TEST(Isa, PaperSyntaxExamples) {
  // The three AAP types from §II.B, in this text encoding.
  const auto t1 = parse_instruction("AAP_COPY sa=0 src1=7 dst=42 size=4");
  ASSERT_TRUE(t1.has_value());
  EXPECT_EQ(t1->op, Opcode::kAapCopy);
  EXPECT_EQ(t1->size, 4u);
  const auto t2 =
      parse_instruction("AAP2_XNOR sa=0 src1=56 src2=57 dst=9 size=1");
  ASSERT_TRUE(t2.has_value());
  EXPECT_EQ(t2->op, Opcode::kAapXnor);
  const auto t3 =
      parse_instruction("AAP3_TRA sa=0 src1=56 src2=57 src3=58 dst=9 size=1");
  ASSERT_TRUE(t3.has_value());
  EXPECT_EQ(t3->src3, 58u);
}

TEST(Isa, CommentsAndBlanksSkipped) {
  EXPECT_FALSE(parse_instruction("").has_value());
  EXPECT_FALSE(parse_instruction("   ").has_value());
  EXPECT_FALSE(parse_instruction("# a comment").has_value());
}

TEST(Isa, MalformedInputThrows) {
  EXPECT_THROW(parse_instruction("BOGUS sa=0"), pima::PreconditionError);
  EXPECT_THROW(parse_instruction("AAP_COPY sa"), pima::PreconditionError);
  EXPECT_THROW(parse_instruction("AAP_COPY sa=x"), pima::PreconditionError);
  EXPECT_THROW(parse_instruction("AAP_COPY bad=1"), pima::PreconditionError);
  EXPECT_THROW(parse_instruction("AAP_COPY sa=0 size=0"),
               pima::PreconditionError);
}

TEST(Isa, ProgramRoundTrip) {
  Program prog;
  prog.push_back(copy_inst(0, 1, 2));
  Instruction rst;
  rst.op = Opcode::kResetLatch;
  prog.push_back(rst);
  const auto text = to_text(prog);
  std::istringstream in(text);
  const auto parsed = parse_program(in);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].op, Opcode::kAapCopy);
  EXPECT_EQ(parsed[1].op, Opcode::kResetLatch);
}

TEST(Isa, ExecuteCopyAndRead) {
  Device dev(tiny());
  BitVector bits(32);
  bits.set(3, true);
  Instruction wr;
  wr.op = Opcode::kRowWrite;
  wr.src1 = 0;
  wr.payload = bits;
  Instruction rd;
  rd.op = Opcode::kRowRead;
  rd.src1 = 9;
  const Program prog{wr, copy_inst(0, 0, 9), rd};
  const auto results = execute(dev, prog);
  ASSERT_EQ(results.rows_read.size(), 1u);
  EXPECT_EQ(results.rows_read[0], bits);
}

TEST(Isa, ExecuteXnorProgramMatchesKernel) {
  Device dev(tiny());
  Subarray& sa = dev.subarray(0);
  BitVector a(32), b(32);
  a.set(0, true);
  b.set(0, true);
  b.set(1, true);
  sa.write_row(1, a);
  sa.write_row(2, b);

  const std::string text =
      "# PIM_XNOR of rows 1 and 2\n"
      "AAP_COPY sa=0 src1=1 dst=56 size=1\n"
      "AAP_COPY sa=0 src1=2 dst=57 size=1\n"
      "AAP2_XNOR sa=0 src1=56 src2=57 dst=10 size=1\n"
      "DPU_AND sa=0 src1=10 size=1 width=32\n"
      "DPU_POPCOUNT sa=0 src1=10 size=1 width=32\n";
  std::istringstream in(text);
  const auto results = execute(dev, parse_program(in));
  EXPECT_EQ(dev.subarray(0).peek_row(10), BitVector::bit_xnor(a, b));
  ASSERT_EQ(results.reductions.size(), 1u);
  EXPECT_FALSE(results.reductions[0]);  // rows differ at bit 1
  ASSERT_EQ(results.popcounts.size(), 1u);
  EXPECT_EQ(results.popcounts[0], 31u);
}

TEST(Isa, ExecuteAdditionProgram) {
  // Full bit-serial addition of 3 + 1 via the ISA (paper's 2-cycle/bit
  // protocol with explicit staging).
  Device dev(tiny());
  Subarray& sa = dev.subarray(0);
  // Operand A = 3 (bits at rows 0-1), operand B = 1 (rows 4-5), carry row
  // 20, sum rows 30-31; all columns hold the same value.
  BitVector ones(32), zeros(32);
  ones.fill(true);
  sa.write_row(0, ones);   // a0 = 1
  sa.write_row(1, ones);   // a1 = 1
  sa.write_row(4, ones);   // b0 = 1
  sa.write_row(5, zeros);  // b1 = 0
  sa.write_row(20, zeros); // carry-in = 0

  const std::string text =
      "RST_LATCH sa=0\n"
      "AAP_COPY sa=0 src1=20 dst=58 size=1\n"  // c0 into x3
      // bit 0: sum then carry
      "AAP_COPY sa=0 src1=0 dst=56 size=1\n"
      "AAP_COPY sa=0 src1=4 dst=57 size=1\n"
      "SUM sa=0 src1=56 src2=57 dst=30 size=1\n"
      "AAP_COPY sa=0 src1=0 dst=56 size=1\n"
      "AAP_COPY sa=0 src1=4 dst=57 size=1\n"
      "AAP3_TRA sa=0 src1=56 src2=57 src3=58 dst=58 size=1\n"
      // bit 1
      "AAP_COPY sa=0 src1=1 dst=56 size=1\n"
      "AAP_COPY sa=0 src1=5 dst=57 size=1\n"
      "SUM sa=0 src1=56 src2=57 dst=31 size=1\n"
      "AAP_COPY sa=0 src1=1 dst=56 size=1\n"
      "AAP_COPY sa=0 src1=5 dst=57 size=1\n"
      "AAP3_TRA sa=0 src1=56 src2=57 src3=58 dst=21 size=1\n";
  std::istringstream in(text);
  execute(dev, parse_program(in));
  // 3 + 1 = 4 = 0b100: sum bits 0, carry-out 1.
  EXPECT_TRUE(sa.peek_row(30).none());
  EXPECT_TRUE(sa.peek_row(31).none());
  EXPECT_TRUE(sa.peek_row(21).all());
}

TEST(Isa, BulkSizeRejectedOnComputeOps) {
  Device dev(tiny());
  Instruction i;
  i.op = Opcode::kAapXnor;
  i.src1 = 56;
  i.src2 = 57;
  i.dst = 10;
  i.size = 2;
  EXPECT_THROW(execute(dev, {i}), pima::PreconditionError);
}

TEST(Isa, BulkCopyExpandsConsecutiveRows) {
  Device dev(tiny());
  Subarray& sa = dev.subarray(0);
  for (RowAddr r = 0; r < 4; ++r) {
    BitVector v(32);
    v.set(r, true);
    sa.write_row(r, v);
  }
  execute(dev, {copy_inst(0, 0, 40, 4)});
  for (RowAddr r = 0; r < 4; ++r) EXPECT_EQ(sa.peek_row(40 + r), sa.peek_row(r));
}

TEST(Isa, ExecutionIsCosted) {
  Device dev(tiny());
  execute(dev, {copy_inst(0, 0, 1), copy_inst(1, 0, 1)});
  const auto stats = dev.roll_up();
  EXPECT_EQ(stats.commands, 2u);
  EXPECT_EQ(stats.subarrays_used, 2u);
}

}  // namespace
}  // namespace pima::dram
