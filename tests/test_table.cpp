#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"

namespace pima {
namespace {

TEST(TextTable, RendersTitleHeaderAndRows) {
  TextTable t("Demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const auto out = t.render();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTable, ColumnsAreAligned) {
  TextTable t("T");
  t.set_header({"a", "b"});
  t.add_row({"xxxx", "1"});
  const auto out = t.render();
  // Header 'b' must start at the same column as '1'.
  const auto header_line = out.substr(out.find('\n') + 1);
  const auto row_line = out.substr(out.rfind('\n', out.size() - 2) + 1);
  EXPECT_EQ(header_line.find('b'), row_line.find('1'));
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t("T");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(TextTable, NumFormatsCompactly) {
  EXPECT_EQ(TextTable::num(1.0), "1");
  EXPECT_EQ(TextTable::num(2.5), "2.5");
  EXPECT_EQ(TextTable::num(0.123456, 3), "0.123");
}

TEST(Units, PowerAndThroughput) {
  // 1000 pJ over 10 ns = 1e-9 J / 1e-8 s = 0.1 W.
  EXPECT_DOUBLE_EQ(power_watts(1000.0, 10.0), 0.1);
  EXPECT_DOUBLE_EQ(power_watts(1000.0, 0.0), 0.0);
  // 100 ops in 100 ns = 1e9 ops/s.
  EXPECT_DOUBLE_EQ(ops_per_second(100.0, 100.0), 1e9);
  EXPECT_DOUBLE_EQ(ns_to_s(1e9), 1.0);
  EXPECT_DOUBLE_EQ(j_to_pj(pj_to_j(123.0)), 123.0);
}

}  // namespace
}  // namespace pima
