// Tests of the checkpoint snapshot format: round-trip fidelity, atomic
// write hygiene, and — the point of the CRC — detection of every
// single-byte corruption anywhere in the file.
#include "runtime/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/error.hpp"

namespace pima::runtime {
namespace {

std::string temp_path(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir ? dir : "/tmp") + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

CheckpointFingerprint sample_fingerprint() {
  CheckpointFingerprint f;
  f.k = 17;
  f.hash_shards = 16;
  f.graph_intervals = 4;
  f.use_multiplicity = true;
  f.euler_contigs = true;
  f.traversal = 1;
  f.rows = 512;
  f.compute_rows = 8;
  f.columns = 256;
  f.subarrays_per_mat = 16;
  f.mats_per_bank = 4;
  f.banks = 2;
  f.fault_variation = 0.1;
  f.fault_seed = 2020;
  f.fault_retention = 1e-6;
  f.fault_weak_rows = 0.02;
  f.recovery_mode = 1;
  return f;
}

PipelineSnapshot sample_snapshot(std::uint32_t stages = 3) {
  PipelineSnapshot s;
  s.fingerprint = sample_fingerprint();
  s.stages_done = stages;
  s.hashmap = {.time_ns = 123.5, .serial_ns = 456.25, .energy_pj = 7.75,
               .commands = 1000, .subarrays_used = 16};
  s.debruijn = {.time_ns = 23.0, .serial_ns = 46.0, .energy_pj = 1.5,
                .commands = 200, .subarrays_used = 8};
  s.traverse = {.time_ns = 11.0, .serial_ns = 22.0, .energy_pj = 0.5,
                .commands = 100, .subarrays_used = 4};
  s.fault_stats.injected = 7;
  s.fault_stats.detected = 5;
  s.fault_stats.retried = 3;
  s.distinct_kmers = 3;
  s.kmer_entries = {{assembly::Kmer(0b0011, 2), 4},
                    {assembly::Kmer(0b1100, 2), 1},
                    {assembly::Kmer(0b0110, 2), 9}};
  s.graph_edges = {{assembly::Kmer(0b0011, 2), 1},
                   {assembly::Kmer(0b0110, 2), 2}};
  s.contigs = {dna::Sequence::from_string("ACGTACGT"),
               dna::Sequence::from_string("TTTT")};
  return s;
}

TEST(Checkpoint, RoundTripReproducesEveryField) {
  const std::string path = temp_path("ckpt_roundtrip.ckpt");
  const PipelineSnapshot original = sample_snapshot();
  save_checkpoint(path, original);
  const PipelineSnapshot loaded = load_checkpoint(path);
  EXPECT_EQ(loaded, original);
  // Atomic write leaves no temp litter behind.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(Checkpoint, PartialStageSnapshotsRoundTrip) {
  const std::string path = temp_path("ckpt_partial.ckpt");
  for (std::uint32_t stage : {1u, 2u}) {
    PipelineSnapshot s = sample_snapshot(stage);
    if (stage < 2) s.graph_edges.clear();
    s.contigs.clear();
    save_checkpoint(path, s);
    EXPECT_EQ(load_checkpoint(path), s) << "stage " << stage;
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileIsIoErrorNotCorruption) {
  EXPECT_THROW(load_checkpoint("/nonexistent/dir/pipeline.ckpt"), IoError);
}

TEST(Checkpoint, EverySingleByteFlipIsDetected) {
  const std::string path = temp_path("ckpt_flip.ckpt");
  save_checkpoint(path, sample_snapshot());
  const std::string good = slurp(path);
  ASSERT_GT(good.size(), 24u);
  // Flip one byte at a time — header, length, CRC and payload alike — and
  // demand a typed rejection at every position. A load must never return a
  // snapshot from a damaged file.
  for (std::size_t pos = 0; pos < good.size(); ++pos) {
    for (const char mask : {char(0x01), char(0xff)}) {
      std::string bad = good;
      bad[pos] = static_cast<char>(bad[pos] ^ mask);
      spit(path, bad);
      EXPECT_THROW(load_checkpoint(path), CorruptCheckpointError)
          << "undetected flip of byte " << pos;
    }
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, TruncationAtAnyLengthIsDetected) {
  const std::string path = temp_path("ckpt_trunc.ckpt");
  save_checkpoint(path, sample_snapshot());
  const std::string good = slurp(path);
  for (std::size_t len = 0; len < good.size(); ++len) {
    spit(path, good.substr(0, len));
    EXPECT_THROW(load_checkpoint(path), CorruptCheckpointError)
        << "undetected truncation to " << len << " bytes";
  }
  // Trailing garbage is rejected too.
  spit(path, good + "x");
  EXPECT_THROW(load_checkpoint(path), CorruptCheckpointError);
  std::remove(path.c_str());
}

TEST(Checkpoint, VersionMismatchRejected) {
  const std::string path = temp_path("ckpt_version.ckpt");
  save_checkpoint(path, sample_snapshot());
  std::string bytes = slurp(path);
  bytes[8] = static_cast<char>(kCheckpointVersion + 1);  // version u32 LSB
  spit(path, bytes);
  try {
    load_checkpoint(path);
    FAIL() << "expected CorruptCheckpointError";
  } catch (const CorruptCheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, FingerprintMismatchesRejectedWithFieldName) {
  const PipelineSnapshot snap = sample_snapshot();
  const struct {
    const char* field;
    void (*mutate)(CheckpointFingerprint&);
  } kCases[] = {
      {"k", [](CheckpointFingerprint& f) { f.k = 21; }},
      {"hash_shards", [](CheckpointFingerprint& f) { f.hash_shards = 8; }},
      {"device geometry", [](CheckpointFingerprint& f) { f.rows = 1024; }},
      {"fault seed", [](CheckpointFingerprint& f) { f.fault_seed = 1; }},
      {"recovery mode",
       [](CheckpointFingerprint& f) { f.recovery_mode = 2; }},
  };
  for (const auto& c : kCases) {
    CheckpointFingerprint current = sample_fingerprint();
    c.mutate(current);
    try {
      validate_compatible(snap, current);
      FAIL() << "expected mismatch on " << c.field;
    } catch (const CorruptCheckpointError& e) {
      EXPECT_NE(std::string(e.what()).find(c.field), std::string::npos)
          << e.what();
    }
  }
  // Matching fingerprints pass.
  EXPECT_NO_THROW(validate_compatible(snap, sample_fingerprint()));
}

TEST(Checkpoint, StageCountOutOfRangeRejected) {
  const std::string path = temp_path("ckpt_stage.ckpt");
  PipelineSnapshot s = sample_snapshot();
  s.stages_done = 4;  // save doesn't validate; load must
  save_checkpoint(path, s);
  EXPECT_THROW(load_checkpoint(path), CorruptCheckpointError);
  std::remove(path.c_str());
}

TEST(Checkpoint, Crc32MatchesIeeeReferenceVector) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

}  // namespace
}  // namespace pima::runtime
