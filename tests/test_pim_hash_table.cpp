#include "core/pim_hash_table.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "dna/genome.hpp"
#include "dram/command.hpp"

namespace pima::core {
namespace {

using assembly::Kmer;

dram::Geometry test_geometry() {
  dram::Geometry g;
  g.rows = 256;  // 248 data rows → ~200-key shards, fast tests
  g.compute_rows = 8;
  g.columns = 256;
  g.subarrays_per_mat = 8;
  g.mats_per_bank = 1;
  g.banks = 1;
  return g;
}

Kmer kmer_of(const std::string& s) {
  const auto seq = dna::Sequence::from_string(s);
  return Kmer::from_sequence(seq, 0, seq.size());
}

TEST(PimHashTable, InsertAndIncrement) {
  dram::Device dev(test_geometry());
  PimHashTable table(dev, 2);
  EXPECT_EQ(table.insert_or_increment(kmer_of("CGTGC")), 1u);
  EXPECT_EQ(table.insert_or_increment(kmer_of("CGTGC")), 2u);
  EXPECT_EQ(table.insert_or_increment(kmer_of("GTGCG")), 1u);
  EXPECT_EQ(table.distinct_kmers(), 2u);
  EXPECT_EQ(table.lookup(kmer_of("CGTGC")).value(), 2u);
  EXPECT_EQ(table.lookup(kmer_of("GTGCG")).value(), 1u);
  EXPECT_FALSE(table.lookup(kmer_of("AAAAA")).has_value());
}

TEST(PimHashTable, PaperFig5bExampleInDram) {
  dram::Device dev(test_geometry());
  PimHashTable table(dev, 2);
  const auto s = dna::Sequence::from_string("CGTGCGTGCTT");
  for (std::size_t i = 0; i + 5 <= s.size(); ++i)
    table.insert_or_increment(Kmer::from_sequence(s, i, 5));
  EXPECT_EQ(table.distinct_kmers(), 6u);
  EXPECT_EQ(table.lookup(kmer_of("CGTGC")).value(), 2u);
  EXPECT_EQ(table.lookup(kmer_of("TGCTT")).value(), 1u);
}

TEST(PimHashTable, KeysLiveInDramRows) {
  dram::Device dev(test_geometry());
  PimHashTable table(dev, 1);
  table.insert_or_increment(kmer_of("CGTGCGTGCTTACGG"));
  // Find the occupied slot and decode the row image.
  bool found = false;
  for (std::size_t slot = 0; slot < table.layout().kmer_rows; ++slot) {
    const auto entry = table.peek_slot(0, slot);
    if (!entry) continue;
    EXPECT_EQ(entry->first.to_string(), "CGTGCGTGCTTACGG");
    EXPECT_EQ(entry->second, 1u);
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(PimHashTable, SaturatingEightBitCounter) {
  dram::Device dev(test_geometry());
  PimHashTable table(dev, 1);
  const auto km = kmer_of("ACGTACGTACGT");
  for (int i = 0; i < 300; ++i) table.insert_or_increment(km);
  EXPECT_EQ(table.lookup(km).value(), 255u);  // saturates, never wraps
}

TEST(PimHashTable, MixedKRejected) {
  dram::Device dev(test_geometry());
  PimHashTable table(dev, 1);
  table.insert_or_increment(kmer_of("ACGTA"));
  EXPECT_THROW(table.insert_or_increment(kmer_of("ACGTAC")),
               pima::PreconditionError);
  EXPECT_FALSE(table.lookup(kmer_of("ACGTAC")).has_value());
}

TEST(PimHashTable, OverlongKmerRejected) {
  dram::Geometry g = test_geometry();
  g.columns = 32;  // 16 bp max
  dram::Device dev(g);
  PimHashTable table(dev, 1);
  EXPECT_THROW(table.insert_or_increment(kmer_of("ACGTACGTACGTACGTACGTA")),
               pima::PreconditionError);
}

TEST(PimHashTable, ShardFullThrows) {
  dram::Geometry g = test_geometry();
  g.rows = 32;  // tiny shard (≈12 keys)
  dram::Device dev(g);
  PimHashTable table(dev, 1);
  dna::GenomeParams gp;
  gp.length = 600;
  gp.repeat_count = 0;
  const auto genome = dna::generate_genome(gp);
  EXPECT_THROW(
      {
        for (std::size_t i = 0; i + 16 <= genome.size(); ++i)
          table.insert_or_increment(Kmer::from_sequence(genome, i, 16));
      },
      pima::SimulationError);
}

TEST(PimHashTable, MatchesSoftwareCounterOnRandomReads) {
  dram::Device dev(test_geometry());
  PimHashTable table(dev, 8);

  dna::GenomeParams gp;
  gp.length = 1200;
  gp.repeat_count = 2;
  gp.repeat_length = 80;
  const auto genome = dna::generate_genome(gp);
  dna::ReadSamplerParams rp;
  rp.coverage = 6.0;
  rp.read_length = 70;
  const auto reads = dna::sample_reads(genome, rp);

  const std::size_t k = 16;
  std::unordered_map<Kmer, std::uint32_t> ref;
  for (const auto& r : reads) {
    for (std::size_t i = 0; i + k <= r.size(); ++i) {
      const auto km = Kmer::from_sequence(r, i, k);
      table.insert_or_increment(km);
      ++ref[km];
    }
  }
  EXPECT_EQ(table.distinct_kmers(), ref.size());
  for (const auto& [km, freq] : ref)
    ASSERT_EQ(table.lookup(km).value_or(0), std::min<std::uint32_t>(freq, 255))
        << km.to_string();

  // extract() returns exactly the reference multiset.
  const auto entries = table.extract();
  EXPECT_EQ(entries.size(), ref.size());
  for (const auto& [km, freq] : entries)
    EXPECT_EQ(std::min<std::uint32_t>(ref.at(km), 255), freq);
}

TEST(PimHashTable, CommandsAreCosted) {
  dram::Device dev(test_geometry());
  PimHashTable table(dev, 1);
  table.insert_or_increment(kmer_of("ACGTACGT"));
  table.insert_or_increment(kmer_of("ACGTACGT"));
  const auto stats = dev.roll_up();
  EXPECT_GT(stats.commands, 0u);
  EXPECT_GT(stats.energy_pj, 0.0);
  EXPECT_GT(stats.time_ns, 0.0);
  // The second arrival must have used the single-cycle compare + DPU path.
  const auto& sa_stats = dev.subarray(0).stats();
  EXPECT_GE(sa_stats.counts[static_cast<std::size_t>(
                dram::CommandKind::kAapTwoRow)],
            1u);
  EXPECT_GE(sa_stats.counts[static_cast<std::size_t>(
                dram::CommandKind::kDpuReduce)],
            1u);
}

TEST(PimHashTable, ShardsSpreadAcrossSubarrays) {
  dram::Device dev(test_geometry());
  PimHashTable table(dev, 8);
  dna::GenomeParams gp;
  gp.length = 800;
  gp.repeat_count = 0;
  const auto genome = dna::generate_genome(gp);
  for (std::size_t i = 0; i + 20 <= genome.size(); i += 3)
    table.insert_or_increment(Kmer::from_sequence(genome, i, 20));
  // Hash routing must touch most shards.
  EXPECT_GE(dev.roll_up().subarrays_used, 6u);
}

TEST(PimHashTable, ConstructorValidation) {
  dram::Device dev(test_geometry());
  EXPECT_THROW(PimHashTable(dev, 0), pima::PreconditionError);
  EXPECT_THROW(PimHashTable(dev, 9), pima::PreconditionError);  // > 8 arrays
  EXPECT_NO_THROW(PimHashTable(dev, 4, 4));
}

}  // namespace
}  // namespace pima::core
