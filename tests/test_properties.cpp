// Algebraic property tests of the PIM primitives, checked on the production
// model and the golden oracle side by side: operand symmetry of the
// commutative ops, host-arithmetic equivalence of the vertical adder, and
// serial == parallel determinism of the runtime engine.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "dram/dpu.hpp"
#include "dram/isa.hpp"
#include "golden/golden.hpp"
#include "runtime/engine.hpp"
#include "verify/fuzz.hpp"

namespace pima {
namespace {

dram::Geometry tiny() {
  dram::Geometry g;
  g.rows = 64;
  g.compute_rows = 8;
  g.columns = 64;
  g.subarrays_per_mat = 4;
  g.mats_per_bank = 2;
  g.banks = 2;
  return g;
}

BitVector random_bits(Rng& rng, std::size_t n) {
  BitVector bits(n);
  for (std::size_t i = 0; i < n; ++i) bits.set(i, rng.uniform(2) == 1);
  return bits;
}

// XNOR and XOR are commutative: swapping the staged operands must give a
// bit-identical result row on both models.
TEST(Properties, TwoRowActivationIsCommutative) {
  const auto g = tiny();
  Rng rng(2020);
  for (int trial = 0; trial < 50; ++trial) {
    const BitVector a = random_bits(rng, g.columns);
    const BitVector b = random_bits(rng, g.columns);
    const bool use_xor = (trial % 2) == 0;

    auto run = [&](const BitVector& first, const BitVector& second) {
      dram::Subarray sa(g, circuit::default_technology());
      const auto x1 = sa.compute_row(0), x2 = sa.compute_row(1);
      sa.write_row(x1, first);
      sa.write_row(x2, second);
      if (use_xor)
        sa.aap_xor(x1, x2, 5);
      else
        sa.aap_xnor(x1, x2, 5);
      return sa.peek_row(5);
    };
    EXPECT_EQ(run(a, b), run(b, a)) << "trial " << trial;

    golden::GoldenSubArray gsa(g);
    const auto x1 = gsa.compute_row(0), x2 = gsa.compute_row(1);
    gsa.write_row(x1, a);
    gsa.write_row(x2, b);
    if (use_xor)
      gsa.aap_xor(x1, x2, 5);
    else
      gsa.aap_xnor(x1, x2, 5);
    EXPECT_EQ(gsa.row_bits(5), run(a, b)) << "trial " << trial;
  }
}

// MAJ3 is symmetric under every permutation of its three operands; both
// the result row and the captured carry latch must be identical.
TEST(Properties, TraMajorityIsSymmetricUnderOperandPermutation) {
  const auto g = tiny();
  Rng rng(14);
  const BitVector ops[3] = {random_bits(rng, g.columns),
                            random_bits(rng, g.columns),
                            random_bits(rng, g.columns)};
  const int perms[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                           {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  BitVector reference_row, reference_latch;
  for (int p = 0; p < 6; ++p) {
    dram::Subarray sa(g, circuit::default_technology());
    const auto x1 = sa.compute_row(0), x2 = sa.compute_row(1),
               x3 = sa.compute_row(2);
    sa.write_row(x1, ops[perms[p][0]]);
    sa.write_row(x2, ops[perms[p][1]]);
    sa.write_row(x3, ops[perms[p][2]]);
    sa.aap_tra_carry(x1, x2, x3, 7);
    if (p == 0) {
      reference_row = sa.peek_row(7);
      reference_latch = sa.peek_latch();
      // The golden model agrees with the reference permutation.
      golden::GoldenSubArray gsa(g);
      gsa.write_row(x1, ops[0]);
      gsa.write_row(x2, ops[1]);
      gsa.write_row(x3, ops[2]);
      gsa.aap_tra_carry(x1, x2, x3, 7);
      EXPECT_EQ(gsa.row_bits(7), reference_row);
      EXPECT_EQ(gsa.latch_bits(), reference_latch);
    } else {
      EXPECT_EQ(sa.peek_row(7), reference_row) << "permutation " << p;
      EXPECT_EQ(sa.peek_latch(), reference_latch) << "permutation " << p;
    }
  }
}

// The in-array vertical adder equals plain host addition for random 128-bit
// operands (held as two 64-bit halves — one addition per column, 64 columns
// of independent 128-bit adds per trial).
TEST(Properties, VerticalAddMatchesHostAdd128Bit) {
  dram::Geometry g;
  g.rows = 400;
  g.compute_rows = 8;
  g.columns = 64;
  const std::size_t m = 128;
  std::vector<dram::RowAddr> a_rows, b_rows, sum_rows;
  for (std::size_t i = 0; i < m; ++i) {
    a_rows.push_back(i);
    b_rows.push_back(130 + i);
    sum_rows.push_back(260 + i);
  }
  const dram::RowAddr carry_row = 390;

  Rng rng(7);
  dram::Subarray sa(g, circuit::default_technology());
  golden::GoldenSubArray gsa(g);
  for (std::size_t i = 0; i < m; ++i) {
    const BitVector arow = random_bits(rng, g.columns);
    const BitVector brow = random_bits(rng, g.columns);
    sa.write_row(a_rows[i], arow);
    sa.write_row(b_rows[i], brow);
    gsa.write_row(a_rows[i], arow);
    gsa.write_row(b_rows[i], brow);
  }

  sa.add_vertical(a_rows, b_rows, sum_rows, carry_row);
  gsa.add_vertical(a_rows, b_rows, sum_rows, carry_row);

  const std::vector<dram::RowAddr> lo_rows(sum_rows.begin(),
                                           sum_rows.begin() + 64);
  const std::vector<dram::RowAddr> hi_rows(sum_rows.begin() + 64,
                                           sum_rows.end());
  auto column_half = [&](const dram::Subarray& s,
                         const std::vector<dram::RowAddr>& rows,
                         std::size_t col) {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < rows.size(); ++i)
      if (s.peek_row(rows[i]).get(col)) v |= std::uint64_t{1} << i;
    return v;
  };

  for (std::size_t col = 0; col < g.columns; ++col) {
    // Host reference: 128-bit add via two 64-bit halves with manual carry.
    std::uint64_t a_lo = 0, a_hi = 0, b_lo = 0, b_hi = 0;
    for (std::size_t i = 0; i < 64; ++i) {
      if (sa.peek_row(a_rows[i]).get(col)) a_lo |= std::uint64_t{1} << i;
      if (sa.peek_row(a_rows[64 + i]).get(col)) a_hi |= std::uint64_t{1} << i;
      if (sa.peek_row(b_rows[i]).get(col)) b_lo |= std::uint64_t{1} << i;
      if (sa.peek_row(b_rows[64 + i]).get(col)) b_hi |= std::uint64_t{1} << i;
    }
    const std::uint64_t want_lo = a_lo + b_lo;
    const bool carry_lo = want_lo < a_lo;
    const std::uint64_t hi_pair = a_hi + b_hi;
    const std::uint64_t want_hi = hi_pair + (carry_lo ? 1u : 0u);
    const bool carry_out = (hi_pair < a_hi) || (want_hi < hi_pair);

    EXPECT_EQ(column_half(sa, lo_rows, col), want_lo) << "col " << col;
    EXPECT_EQ(column_half(sa, hi_rows, col), want_hi) << "col " << col;
    EXPECT_EQ(sa.peek_row(carry_row).get(col), carry_out) << "col " << col;
    // Golden adder lands on the same bits.
    EXPECT_EQ(golden::column_value(gsa, lo_rows, col), want_lo);
    EXPECT_EQ(golden::column_value(gsa, hi_rows, col), want_hi);
    EXPECT_EQ(gsa.get(carry_row, col), carry_out);
  }
}

// Golden XNOR-compare + DPU AND reduction equals the production pair.
TEST(Properties, RowsMatchEqualsCompareAndReduce) {
  const auto g = tiny();
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    BitVector a = random_bits(rng, g.columns);
    BitVector b = (trial % 3 == 0) ? a : random_bits(rng, g.columns);
    if (trial % 5 == 0 && trial % 3 != 0) {
      b = a;
      b.set(rng.uniform(g.columns), !a.get(0));  // near-miss
    }
    dram::Subarray sa(g, circuit::default_technology());
    golden::GoldenSubArray gsa(g);
    sa.write_row(1, a);
    sa.write_row(2, b);
    gsa.write_row(1, a);
    gsa.write_row(2, b);
    sa.compare_rows(1, 2, 10);
    gsa.compare_rows(1, 2, 10);
    EXPECT_EQ(gsa.row_bits(10), sa.peek_row(10));
    const bool device_match = dram::Dpu::and_reduce(sa, 10, g.columns);
    EXPECT_EQ(gsa.rows_match(1, 2, g.columns), device_match);
    EXPECT_EQ(device_match, a == b);
  }
}

// The engine's determinism contract: a program run through 1 channel and
// through 4 channels leaves every sub-array in a bit-identical state, and
// the captured per-sub-array command streams are identical too.
TEST(Properties, SerialAndParallelEngineProduceIdenticalState) {
  verify::FuzzOptions fopts;
  fopts.seed = 5;
  fopts.ops = 600;
  fopts.subarrays = 8;
  fopts.geometry = tiny();
  const auto program = verify::generate_program(fopts);

  auto run = [&](std::size_t channels) {
    auto device = std::make_unique<dram::Device>(fopts.geometry);
    runtime::EngineOptions eopts;
    eopts.channels = channels;
    eopts.capture_trace = true;
    runtime::Engine engine(*device, eopts);
    engine.submit_program(program);
    engine.drain();
    return device;
  };
  const auto serial = run(1);
  const auto parallel = run(4);

  for (std::size_t flat = 0; flat < fopts.subarrays; ++flat) {
    const auto* s = serial->subarray_if(flat);
    const auto* p = parallel->subarray_if(flat);
    ASSERT_EQ(s == nullptr, p == nullptr) << "sub-array " << flat;
    if (s == nullptr) continue;
    for (dram::RowAddr r = 0; r < fopts.geometry.rows; ++r)
      ASSERT_EQ(s->peek_row(r), p->peek_row(r))
          << "sub-array " << flat << " row " << r;
    EXPECT_EQ(s->peek_latch(), p->peek_latch()) << "sub-array " << flat;
    EXPECT_EQ(s->stats().total_commands(), p->stats().total_commands());
  }
  // Same capture, command for command — replay order is canonical.
  EXPECT_EQ(dram::captured_program(*serial),
            dram::captured_program(*parallel));
  // And the parallel capture replays clean against the golden model.
  const auto d =
      verify::run_differential(fopts.geometry,
                               dram::captured_program(*parallel));
  EXPECT_FALSE(d.has_value()) << d->report();
}

// Golden column_sums is a correct degree oracle.
TEST(Properties, ColumnSumsCountsSetBitsPerColumn) {
  Rng rng(3);
  std::vector<BitVector> rows;
  for (int i = 0; i < 9; ++i) rows.push_back(random_bits(rng, 32));
  const auto sums = golden::column_sums(rows);
  ASSERT_EQ(sums.size(), 32u);
  for (std::size_t c = 0; c < 32; ++c) {
    std::uint32_t want = 0;
    for (const auto& r : rows)
      if (r.get(c)) ++want;
    EXPECT_EQ(sums[c], want) << "col " << c;
  }
  EXPECT_TRUE(golden::column_sums({}).empty());
}

}  // namespace
}  // namespace pima
