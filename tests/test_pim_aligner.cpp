#include "core/pim_aligner.hpp"

#include <gtest/gtest.h>

#include "dna/genome.hpp"

namespace pima::core {
namespace {

dram::Geometry aligner_geometry() {
  dram::Geometry g;
  g.rows = 256;
  g.compute_rows = 8;
  g.columns = 256;  // 128 bp per row
  g.subarrays_per_mat = 8;
  g.mats_per_bank = 2;
  g.banks = 1;
  return g;
}

struct Fixture {
  Fixture() : device(aligner_geometry()) {
    dna::GenomeParams gp;
    gp.length = 5000;
    gp.repeat_count = 0;
    gp.seed = 55;
    reference = dna::generate_genome(gp);
  }
  dram::Device device;
  dna::Sequence reference;
};

TEST(PimAligner, ExactReadsAlignAtTruePosition) {
  Fixture f;
  PimAligner aligner(f.device, f.reference);
  Rng rng(1);
  for (int i = 0; i < 40; ++i) {
    const std::size_t pos = rng.uniform(f.reference.size() - 100);
    const auto read = f.reference.subseq(pos, 100);
    const auto hit = aligner.align(read);
    ASSERT_TRUE(hit.has_value()) << "read at " << pos;
    EXPECT_EQ(hit->reference_pos, pos);
    EXPECT_FALSE(hit->reverse);
    EXPECT_EQ(hit->mismatches, 0u);
  }
}

TEST(PimAligner, ReverseStrandReadsDetected) {
  Fixture f;
  PimAligner aligner(f.device, f.reference);
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    const std::size_t pos = rng.uniform(f.reference.size() - 90);
    const auto read = f.reference.subseq(pos, 90).reverse_complement();
    const auto hit = aligner.align(read);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->reference_pos, pos);
    EXPECT_TRUE(hit->reverse);
    EXPECT_EQ(hit->mismatches, 0u);
  }
}

TEST(PimAligner, MismatchesCountedExactly) {
  Fixture f;
  PimAligner aligner(f.device, f.reference);
  const std::size_t pos = 1234;
  std::string s = f.reference.subseq(pos, 100).to_string();
  // Two substitutions away from the anchor seed (which must stay intact).
  auto flip = [](char c) { return c == 'A' ? 'C' : 'A'; };
  s[60] = flip(s[60]);
  s[85] = flip(s[85]);
  const auto hit = aligner.align(dna::Sequence::from_string(s));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->reference_pos, pos);
  EXPECT_EQ(hit->mismatches, 2u);
}

TEST(PimAligner, TooManyMismatchesRejected) {
  Fixture f;
  AlignerParams p;
  p.max_mismatches = 1;
  PimAligner aligner(f.device, f.reference, p);
  std::string s = f.reference.subseq(777, 100).to_string();
  auto flip = [](char c) { return c == 'A' ? 'C' : 'A'; };
  s[50] = flip(s[50]);
  s[70] = flip(s[70]);
  s[90] = flip(s[90]);
  EXPECT_FALSE(aligner.align(dna::Sequence::from_string(s)).has_value());
}

TEST(PimAligner, ForeignReadDoesNotAlign) {
  Fixture f;
  PimAligner aligner(f.device, f.reference);
  dna::GenomeParams gp;
  gp.length = 200;
  gp.repeat_count = 0;
  gp.seed = 999;  // unrelated sequence
  const auto foreign = dna::generate_genome(gp).subseq(0, 100);
  EXPECT_FALSE(aligner.align(foreign).has_value());
}

TEST(PimAligner, WindowTilingCoversReference) {
  Fixture f;
  PimAligner aligner(f.device, f.reference);
  EXPECT_GT(aligner.window_count(), f.reference.size() / 128);
  EXPECT_GE(aligner.subarrays_used(), 1u);
  // Every position (up to the tail) must be alignable: sample the edges.
  for (const std::size_t pos : {0ul, 127ul, 128ul, 129ul, 2500ul,
                                f.reference.size() - 100}) {
    const auto hit = aligner.align(f.reference.subseq(pos, 100));
    ASSERT_TRUE(hit.has_value()) << pos;
    EXPECT_EQ(hit->reference_pos, pos);
  }
}

TEST(PimAligner, AlignAllSortsByDistance) {
  // Reference with an internal duplication: a read from the repeat aligns
  // to both copies with 0 mismatches; a read one substitution away still
  // reports both, sorted by distance then position.
  const std::string unit = "ACGGTTCAGGCTAACGGATCCGTAGGTTCACCAT";
  std::string text;
  for (int i = 0; i < 3; ++i) text += unit;
  text += std::string(200, 'A') + text;  // two copies of the repeat block
  dram::Device device(aligner_geometry());
  const auto ref = dna::Sequence::from_string(text);
  AlignerParams p;
  p.max_candidates = 64;
  PimAligner aligner(device, ref, p);
  const auto read = ref.subseq(0, 60);
  const auto hits = aligner.align_all(read);
  ASSERT_GE(hits.size(), 2u);
  EXPECT_EQ(hits[0].mismatches, 0u);
  for (std::size_t i = 1; i < hits.size(); ++i)
    EXPECT_GE(hits[i].mismatches, hits[i - 1].mismatches);
}

TEST(PimAligner, ShortReadRejected) {
  Fixture f;
  PimAligner aligner(f.device, f.reference);
  EXPECT_TRUE(aligner.align_all(f.reference.subseq(0, 10)).empty());
}

TEST(PimAligner, CostsAccrueOnDevice) {
  Fixture f;
  PimAligner aligner(f.device, f.reference);
  f.device.clear_stats();
  aligner.align(f.reference.subseq(100, 100));
  const auto stats = f.device.roll_up();
  EXPECT_GT(stats.commands, 0u);
  EXPECT_GT(stats.energy_pj, 0.0);
}

TEST(PimAligner, ValidatesParameters) {
  Fixture f;
  AlignerParams p;
  p.seed_k = 4;  // too short
  EXPECT_THROW(PimAligner(f.device, f.reference, p), pima::PreconditionError);
  EXPECT_THROW(PimAligner(f.device, dna::Sequence{}, {}),
               pima::PreconditionError);
}

}  // namespace
}  // namespace pima::core
