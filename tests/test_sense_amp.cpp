#include "circuit/sense_amp.hpp"

#include <gtest/gtest.h>

namespace pima::circuit {
namespace {

TEST(SenseAmp, EnableSetsMatchPaperTable) {
  // Fig. 2a: memory mode keeps the MUX off; compute modes drive it.
  const auto mem = enables_for(SaMode::kMemory);
  EXPECT_TRUE(mem.en_m);
  EXPECT_FALSE(mem.en_mux);
  const auto xnor = enables_for(SaMode::kXnor2);
  EXPECT_TRUE(xnor.en_mux);
  EXPECT_FALSE(xnor.en_m);
  const auto carry = enables_for(SaMode::kCarry);
  EXPECT_TRUE(carry.en_c2);
  const auto sum = enables_for(SaMode::kSum);
  EXPECT_TRUE(sum.en_mux);
  EXPECT_FALSE(sum.en_c2);
}

TEST(SenseAmp, DesignedThresholdsOrdered) {
  const TechParams tech{};
  const auto th = design_thresholds(tech);
  EXPECT_LT(th.low_vs, th.normal_vs);
  EXPECT_LT(th.normal_vs, th.high_vs);
  EXPECT_NEAR(th.normal_vs, tech.vdd / 2.0, 1e-9);
}

TEST(SenseAmp, ThresholdsReduceToPaperIdealWithoutBitline) {
  TechParams tech{};
  tech.bitline_cap_ff = 1e-9;
  const auto th = design_thresholds(tech);
  EXPECT_NEAR(th.low_vs / tech.vdd, 0.25, 1e-6);   // paper: Vdd/4
  EXPECT_NEAR(th.high_vs / tech.vdd, 0.75, 1e-6);  // paper: 3Vdd/4
}

TEST(SenseAmp, Xnor2TruthTable) {
  SenseAmp sa(TechParams{});
  EXPECT_TRUE(sa.xnor2(false, false));
  EXPECT_FALSE(sa.xnor2(false, true));
  EXPECT_FALSE(sa.xnor2(true, false));
  EXPECT_TRUE(sa.xnor2(true, true));
}

TEST(SenseAmp, TwoRowGateOutputs) {
  const TechParams tech{};
  SenseAmp sa(tech);
  // n = 0 (both zero): NOR fires, NAND fires, XOR low.
  auto out = sa.sense_two_row(share_nominal(tech, 2, 0).v_bl);
  EXPECT_TRUE(out.nor2);
  EXPECT_TRUE(out.nand2);
  EXPECT_FALSE(out.xor2);
  EXPECT_TRUE(out.xnor2);
  // n = 1: NOR low, NAND high → XOR fires.
  out = sa.sense_two_row(share_nominal(tech, 2, 1).v_bl);
  EXPECT_FALSE(out.nor2);
  EXPECT_TRUE(out.nand2);
  EXPECT_TRUE(out.xor2);
  // n = 2: both detectors low.
  out = sa.sense_two_row(share_nominal(tech, 2, 2).v_bl);
  EXPECT_FALSE(out.nor2);
  EXPECT_FALSE(out.nand2);
  EXPECT_FALSE(out.xor2);
  EXPECT_TRUE(out.xnor2);
}

TEST(SenseAmp, CarryIsMajority) {
  SenseAmp sa(TechParams{});
  for (int mask = 0; mask < 8; ++mask) {
    const bool a = mask & 1, b = mask & 2, c = mask & 4;
    const bool expect = (static_cast<int>(a) + b + c) >= 2;
    EXPECT_EQ(sa.carry(a, b, c), expect) << "mask=" << mask;
    EXPECT_EQ(sa.latched_carry(), expect);
  }
}

TEST(SenseAmp, SumUsesLatchedCarry) {
  SenseAmp sa(TechParams{});
  sa.reset_latch();
  // carry=0: sum = a ⊕ b.
  EXPECT_FALSE(sa.sum(false, false));
  EXPECT_TRUE(sa.sum(true, false));
  // Latch a carry of 1 and re-check: sum = a ⊕ b ⊕ 1.
  sa.carry(true, true, false);
  ASSERT_TRUE(sa.latched_carry());
  EXPECT_TRUE(sa.sum(false, false));
  EXPECT_FALSE(sa.sum(true, false));
  sa.reset_latch();
  EXPECT_FALSE(sa.latched_carry());
}

// Full-adder property over all 8 input combinations: the paper's 2-cycle
// protocol (sum cycle consuming the previously latched carry, then TRA
// latching the next carry) must implement exact binary addition.
class FullAdder : public ::testing::TestWithParam<int> {};

TEST_P(FullAdder, TwoCycleProtocolMatchesAddition) {
  const int mask = GetParam();
  const bool a = mask & 1, b = mask & 2, cin = mask & 4;
  SenseAmp sa(TechParams{});
  // Cycle 0 of the previous bit latched cin.
  sa.carry(cin, cin, cin);  // MAJ(x,x,x) = x: loads the latch with cin
  ASSERT_EQ(sa.latched_carry(), cin);
  const bool sum = sa.sum(a, b);
  const bool cout = sa.carry(a, b, cin);
  const int total = static_cast<int>(a) + static_cast<int>(b) +
                    static_cast<int>(cin);
  EXPECT_EQ(static_cast<int>(sum), total & 1);
  EXPECT_EQ(static_cast<int>(cout), total >> 1);
}

INSTANTIATE_TEST_SUITE_P(AllInputs, FullAdder, ::testing::Range(0, 8));

// Multi-bit ripple addition through one SA: verifies the bit-serial
// protocol end-to-end for every pair of 4-bit operands.
class RippleAdd : public ::testing::TestWithParam<int> {};

TEST_P(RippleAdd, FourBitExhaustive) {
  const int x = GetParam() & 0xF, y = (GetParam() >> 4) & 0xF;
  SenseAmp sa(TechParams{});
  sa.reset_latch();
  bool carry_row = false;  // the paper keeps c_i in a compute row too
  int result = 0;
  for (int bit = 0; bit < 5; ++bit) {
    const bool ai = (x >> bit) & 1, bi = (y >> bit) & 1;
    const bool s = sa.sum(ai, bi);           // uses latched c_i
    const bool c = sa.carry(ai, bi, carry_row);  // latches c_{i+1}
    carry_row = c;
    result |= static_cast<int>(s) << bit;
  }
  EXPECT_EQ(result, x + y) << x << "+" << y;
}

INSTANTIATE_TEST_SUITE_P(AllPairs, RippleAdd, ::testing::Range(0, 256));

}  // namespace
}  // namespace pima::circuit
