#include "core/degree.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dna/genome.hpp"

namespace pima::core {
namespace {

dram::Geometry degree_geometry() {
  dram::Geometry g;
  g.rows = 512;
  g.compute_rows = 8;
  g.columns = 64;
  g.subarrays_per_mat = 16;
  g.mats_per_bank = 4;
  g.banks = 2;
  return g;
}

TEST(ColumnSums, EmptyInputIsZero) {
  dram::Device dev(degree_geometry());
  const auto sums = pim_column_sums(dev.subarray(0), {});
  for (const auto s : sums) EXPECT_EQ(s, 0u);
}

TEST(ColumnSums, SingleRowPassesThrough) {
  dram::Device dev(degree_geometry());
  BitVector row(64);
  row.set(0, true);
  row.set(63, true);
  const auto sums = pim_column_sums(dev.subarray(0), {row});
  EXPECT_EQ(sums[0], 1u);
  EXPECT_EQ(sums[63], 1u);
  EXPECT_EQ(sums[10], 0u);
}

TEST(ColumnSums, PaperFig8Example) {
  // Fig. 8 sums the adjacency matrix of a 6-vertex graph; the final row of
  // per-column degrees reads 4 3 3 2 3 1.
  const char* matrix[6] = {"011110", "100011", "100110",
                           "101000", "111000", "010000"};
  std::vector<BitVector> rows;
  for (const auto* r : matrix) {
    BitVector row(64);
    for (std::size_t c = 0; c < 6; ++c) row.set(c, r[c] == '1');
    rows.push_back(std::move(row));
  }
  dram::Device dev(degree_geometry());
  const auto sums = pim_column_sums(dev.subarray(0), rows);
  const std::uint32_t expect[6] = {4, 3, 3, 2, 3, 1};
  for (std::size_t c = 0; c < 6; ++c) EXPECT_EQ(sums[c], expect[c]) << c;
}

TEST(ColumnSums, MismatchedWidthThrows) {
  dram::Device dev(degree_geometry());
  EXPECT_THROW(pim_column_sums(dev.subarray(0), {BitVector(32)}),
               pima::PreconditionError);
}

TEST(ColumnSums, CommandsAreAccounted) {
  dram::Device dev(degree_geometry());
  BitVector a(64), b(64), c(64);
  a.fill(true);
  b.set(3, true);
  pim_column_sums(dev.subarray(0), {a, b, c});
  const auto& st = dev.subarray(0).stats();
  // A 3-row compression must issue at least one TRA and two-row XORs.
  EXPECT_GE(
      st.counts[static_cast<std::size_t>(dram::CommandKind::kAapTra)], 1u);
  EXPECT_GE(
      st.counts[static_cast<std::size_t>(dram::CommandKind::kAapTwoRow)], 2u);
}

// Property: column sums computed in-memory equal the software popcount per
// column, across row-count regimes that exercise single numbers, one
// compression level, and deep carry-save trees with recycling.
class ColumnSumProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ColumnSumProperty, MatchesSoftware) {
  const std::size_t n_rows = GetParam();
  dram::Device dev(degree_geometry());
  Rng rng(1000 + n_rows);
  std::vector<BitVector> rows;
  std::vector<std::uint32_t> expect(64, 0);
  for (std::size_t r = 0; r < n_rows; ++r) {
    BitVector row(64);
    for (std::size_t c = 0; c < 64; ++c) {
      const bool bit = rng.bernoulli(0.4);
      row.set(c, bit);
      if (bit) ++expect[c];
    }
    rows.push_back(std::move(row));
  }
  const auto sums = pim_column_sums(dev.subarray(0), rows);
  for (std::size_t c = 0; c < 64; ++c) EXPECT_EQ(sums[c], expect[c]) << c;
}

INSTANTIATE_TEST_SUITE_P(RowCounts, ColumnSumProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 9, 16, 33, 64));

TEST(PimDegrees, MatchesGraphDegrees) {
  dna::GenomeParams gp;
  gp.length = 400;
  gp.repeat_count = 2;
  gp.repeat_length = 40;
  const auto genome = dna::generate_genome(gp);
  dna::ReadSamplerParams rp;
  rp.coverage = 6.0;
  rp.read_length = 50;
  const auto reads = dna::sample_reads(genome, rp);
  const auto g = assembly::DeBruijnGraph::from_counter(
      assembly::build_hashmap(reads, 12));

  dram::Device dev(degree_geometry());
  const auto partition = partition_graph(g, 12);  // intervals ≤ 64 columns
  const auto degrees = pim_degrees(dev, g, partition);

  ASSERT_EQ(degrees.in_degree.size(), g.node_count());
  for (assembly::NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(degrees.in_degree[v], g.in_degree(v)) << "in " << v;
    EXPECT_EQ(degrees.out_degree[v], g.out_degree(v)) << "out " << v;
  }
}

TEST(PimDegrees, MultiplicityContributes) {
  // One read with a repeated k-mer: multiplicity-2 edge must count twice.
  std::vector<dna::Sequence> reads{
      dna::Sequence::from_string("CGTGCGTGCTT")};
  const auto g = assembly::DeBruijnGraph::from_counter(
      assembly::build_hashmap(reads, 5), /*use_multiplicity=*/true);
  dram::Device dev(degree_geometry());
  const auto degrees = pim_degrees(dev, g, partition_graph(g, 2));
  std::uint64_t in_total = 0;
  for (const auto d : degrees.in_degree) in_total += d;
  EXPECT_EQ(in_total, g.edge_instances());
}

}  // namespace
}  // namespace pima::core
