// Fault-aware execution tests: Table-I-calibrated fault model, per-sub-array
// injection determinism, and the runtime's verify-retry / vote / degradation
// recovery — up to end-to-end faulty assemblies reproducing the fault-free
// contig set.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "dna/genome.hpp"
#include "dram/device.hpp"
#include "dram/fault.hpp"
#include "runtime/recovery.hpp"

namespace pima {
namespace {

dram::Geometry small_geometry() {
  dram::Geometry g;
  g.rows = 256;
  g.compute_rows = 8;
  g.columns = 256;
  g.subarrays_per_mat = 4;
  g.mats_per_bank = 1;
  g.banks = 1;
  return g;
}

dram::FaultConfig fault_config(double variation, double rate_multiplier = 1.0,
                               std::uint64_t seed = 2020) {
  dram::FaultConfig c;
  c.variation = variation;
  c.rate_multiplier = rate_multiplier;
  c.seed = seed;
  c.calibration_trials = 500;  // keep the Monte-Carlo calibration fast
  return c;
}

BitVector pattern_row(std::size_t columns, std::size_t stride) {
  BitVector v(columns);
  for (std::size_t i = 0; i < columns; ++i) v.set(i, i % stride == 0);
  return v;
}

// ---- FaultModel calibration -------------------------------------------

TEST(FaultModel, ZeroVariationIsFaultFree) {
  const dram::FaultModel m(circuit::TechParams{}, fault_config(0.0));
  EXPECT_EQ(m.tra_column_error(), 0.0);
  EXPECT_EQ(m.two_row_column_error(), 0.0);
  EXPECT_FALSE(m.config().enabled());
}

TEST(FaultModel, TraDominatesTwoRowPerTableI) {
  // Paper Table I: the 3-cell charge share of TRA has strictly smaller
  // sensing margins — its calibrated error rate must exceed two-row's.
  const dram::FaultModel m(circuit::TechParams{}, fault_config(0.20));
  EXPECT_GT(m.tra_column_error(), m.two_row_column_error());
  EXPECT_GT(m.two_row_column_error(), 0.0);
}

TEST(FaultModel, RatesGrowWithVariation) {
  const dram::FaultModel lo(circuit::TechParams{}, fault_config(0.15));
  const dram::FaultModel hi(circuit::TechParams{}, fault_config(0.30));
  EXPECT_GT(hi.tra_column_error(), lo.tra_column_error());
  EXPECT_GT(hi.two_row_column_error(), lo.two_row_column_error());
}

TEST(FaultModel, ColumnErrorPerCommandKind) {
  const dram::FaultModel m(circuit::TechParams{}, fault_config(0.20));
  EXPECT_EQ(m.column_error(dram::CommandKind::kAapTra),
            m.tra_column_error());
  EXPECT_EQ(m.column_error(dram::CommandKind::kAapTwoRow),
            m.two_row_column_error());
  EXPECT_EQ(m.column_error(dram::CommandKind::kSumCycle),
            m.two_row_column_error());
  // Copies and host row accesses have no multi-row activation to fail.
  EXPECT_EQ(m.column_error(dram::CommandKind::kAapCopy), 0.0);
  EXPECT_EQ(m.column_error(dram::CommandKind::kRowRead), 0.0);
}

TEST(FaultModel, RejectsOutOfRangeConfig) {
  dram::FaultConfig bad = fault_config(1.5);
  EXPECT_THROW(dram::FaultModel(circuit::TechParams{}, bad),
               PreconditionError);
  bad = fault_config(0.1);
  bad.retention_flip_per_op = 2.0;
  EXPECT_THROW(dram::FaultModel(circuit::TechParams{}, bad),
               PreconditionError);
}

// ---- Injection determinism --------------------------------------------

TEST(FaultInjector, SameSubarrayStreamIsReproducible) {
  const auto model = std::make_shared<const dram::FaultModel>(
      circuit::TechParams{}, fault_config(0.30));
  const auto geom = small_geometry();
  dram::FaultInjector a(model, 2, geom);
  dram::FaultInjector b(model, 2, geom);
  for (int op = 0; op < 8; ++op) {
    BitVector ra = pattern_row(geom.columns, 3);
    BitVector rb = pattern_row(geom.columns, 3);
    a.corrupt_activation(dram::CommandKind::kAapTwoRow, {0, 1}, ra);
    b.corrupt_activation(dram::CommandKind::kAapTwoRow, {0, 1}, rb);
    EXPECT_TRUE(ra == rb) << "op " << op;
  }
  EXPECT_EQ(a.counters().compute_flips, b.counters().compute_flips);
  EXPECT_EQ(a.counters().faulty_ops, b.counters().faulty_ops);
}

TEST(FaultInjector, DistinctSubarraysGetDistinctStreams) {
  const auto model = std::make_shared<const dram::FaultModel>(
      circuit::TechParams{}, fault_config(0.30));
  const auto geom = small_geometry();
  dram::FaultInjector a(model, 0, geom);
  dram::FaultInjector b(model, 1, geom);
  bool differed = false;
  for (int op = 0; op < 8 && !differed; ++op) {
    BitVector ra(geom.columns), rb(geom.columns);
    a.corrupt_activation(dram::CommandKind::kAapTwoRow, {0, 1}, ra);
    b.corrupt_activation(dram::CommandKind::kAapTwoRow, {0, 1}, rb);
    differed = !(ra == rb);
  }
  EXPECT_TRUE(differed);
}

TEST(FaultInjector, SubarrayStaysExactWithoutInjector) {
  // The default (no injector attached) path must be bit-exact.
  dram::Subarray sa(small_geometry(), circuit::default_technology());
  const auto a = pattern_row(256, 3);
  const auto b = pattern_row(256, 5);
  sa.write_row(sa.compute_row(0), a);
  sa.write_row(sa.compute_row(1), b);
  sa.aap_xnor(sa.compute_row(0), sa.compute_row(1), sa.compute_row(2));
  EXPECT_TRUE(sa.peek_row(sa.compute_row(2)) == BitVector::bit_xnor(a, b));
}

TEST(FaultInjector, AttachedInjectorCorruptsActivations) {
  dram::Device dev(small_geometry());
  // ±30% two-row rate (~18%): a 256-column activation is corrupted with
  // near certainty.
  dev.enable_faults(fault_config(0.30));
  dram::Subarray& sa = dev.subarray(0);
  const auto a = pattern_row(256, 3);
  const auto b = pattern_row(256, 5);
  sa.write_row(sa.compute_row(0), a);
  sa.write_row(sa.compute_row(1), b);
  sa.aap_xnor(sa.compute_row(0), sa.compute_row(1), sa.compute_row(2));
  EXPECT_FALSE(sa.peek_row(sa.compute_row(2)) == BitVector::bit_xnor(a, b));
  EXPECT_GT(dev.injection_roll_up().compute_flips, 0u);
  EXPECT_GT(dev.injection_roll_up().faulty_ops, 0u);
}

TEST(FaultInjector, DisablingFaultsDetaches) {
  dram::Device dev(small_geometry());
  dev.enable_faults(fault_config(0.30));
  EXPECT_NE(dev.subarray(0).fault_injector(), nullptr);
  dev.enable_faults(dram::FaultConfig{});
  EXPECT_EQ(dev.subarray(0).fault_injector(), nullptr);
  EXPECT_EQ(dev.fault_model(), nullptr);
}

TEST(FaultInjector, RetentionProcessFlipsStoredCells) {
  dram::Device dev(small_geometry());
  dram::FaultConfig c;  // sensing off, retention on
  c.retention_flip_per_op = 1.0;
  dev.enable_faults(c);
  dram::Subarray& sa = dev.subarray(0);
  // Every command ticks the retention process once at probability 1.
  for (int i = 0; i < 16; ++i) sa.aap_copy(0, 1);
  EXPECT_EQ(dev.injection_roll_up().retention_flips, 16u);
}

// ---- Recovery executor -------------------------------------------------

runtime::RecoveryOptions recovery_options(runtime::RecoveryMode mode) {
  runtime::RecoveryOptions o;
  o.mode = mode;
  return o;
}

TEST(Recovery, ParseMode) {
  EXPECT_EQ(runtime::parse_recovery_mode("off"), runtime::RecoveryMode::kOff);
  EXPECT_EQ(runtime::parse_recovery_mode("retry"),
            runtime::RecoveryMode::kRetry);
  EXPECT_EQ(runtime::parse_recovery_mode("vote"),
            runtime::RecoveryMode::kVote);
  EXPECT_FALSE(runtime::parse_recovery_mode("bogus").has_value());
}

TEST(Recovery, RetryReproducesGoldenUnderModerateFaults) {
  dram::Device dev(small_geometry());
  // ~0.2% per-column rate: ~37% of 256-column ops faulty, retries succeed.
  dev.enable_faults(fault_config(0.30, 0.01));
  runtime::RecoveryManager mgr(dev,
                               recovery_options(runtime::RecoveryMode::kRetry));
  dram::Subarray& sa = dev.subarray(0);
  auto& ex = mgr.executor_for(0);
  const dram::RowAddr dst = sa.compute_row(3);
  for (int op = 0; op < 200; ++op) {
    const auto a = pattern_row(256, 2 + op % 7);
    const auto b = pattern_row(256, 3 + op % 5);
    sa.write_row(0, a);
    sa.write_row(1, b);
    ex.compare_rows(0, 1, dst);
    ASSERT_TRUE(sa.peek_row(dst) == BitVector::bit_xnor(a, b)) << op;
  }
  EXPECT_GT(ex.stats().detected, 0u);
  EXPECT_GT(ex.stats().retried, 0u);
  EXPECT_EQ(ex.stats().escaped, 0u);
  EXPECT_FALSE(ex.degraded());
}

TEST(Recovery, TraMajorityIsVerifiedToo) {
  dram::Device dev(small_geometry());
  dev.enable_faults(fault_config(0.30, 0.01));
  runtime::RecoveryManager mgr(dev,
                               recovery_options(runtime::RecoveryMode::kRetry));
  dram::Subarray& sa = dev.subarray(0);
  auto& ex = mgr.executor_for(0);
  const dram::RowAddr dst = sa.compute_row(3);
  for (int op = 0; op < 100; ++op) {
    const auto a = pattern_row(256, 2 + op % 7);
    const auto b = pattern_row(256, 3 + op % 5);
    const auto c = pattern_row(256, 2 + op % 3);
    sa.write_row(0, a);
    sa.write_row(1, b);
    sa.write_row(2, c);
    ex.tra_majority(0, 1, 2, dst);
    ASSERT_TRUE(sa.peek_row(dst) == BitVector::bit_maj3(a, b, c)) << op;
  }
  EXPECT_EQ(ex.stats().escaped, 0u);
  EXPECT_GT(ex.stats().detected, 0u);
}

TEST(Recovery, OffModeLetsFaultsEscape) {
  dram::Device dev(small_geometry());
  dev.enable_faults(fault_config(0.30));  // every op corrupted
  runtime::RecoveryManager mgr(dev,
                               recovery_options(runtime::RecoveryMode::kOff));
  dram::Subarray& sa = dev.subarray(0);
  auto& ex = mgr.executor_for(0);
  const auto a = pattern_row(256, 3);
  const auto b = pattern_row(256, 5);
  sa.write_row(0, a);
  sa.write_row(1, b);
  for (int op = 0; op < 8; ++op) ex.compare_rows(0, 1, sa.compute_row(3));
  EXPECT_GT(ex.stats().escaped, 0u);
  EXPECT_EQ(ex.stats().retried, 0u);
  EXPECT_EQ(ex.stats().detected, 0u);  // nobody looked
}

TEST(Recovery, VoteModeAcceptsMajorityAndAccountsEscapes) {
  dram::Device dev(small_geometry());
  dev.enable_faults(fault_config(0.30, 0.01));
  runtime::RecoveryManager mgr(dev,
                               recovery_options(runtime::RecoveryMode::kVote));
  dram::Subarray& sa = dev.subarray(0);
  auto& ex = mgr.executor_for(0);
  const dram::RowAddr dst = sa.compute_row(3);
  std::size_t escaped_before = 0;
  for (int op = 0; op < 100; ++op) {
    const auto a = pattern_row(256, 2 + op % 7);
    const auto b = pattern_row(256, 3 + op % 5);
    sa.write_row(0, a);
    sa.write_row(1, b);
    ex.compare_rows(0, 1, dst);
    // Invariant: an accepted-but-wrong majority is always accounted.
    if (ex.stats().escaped == escaped_before)
      ASSERT_TRUE(sa.peek_row(dst) == BitVector::bit_xnor(a, b)) << op;
    escaped_before = ex.stats().escaped;
  }
  EXPECT_GT(ex.stats().detected, 0u);  // disagreements seen
  EXPECT_EQ(ex.stats().retried, 0u);   // vote mode never retries
}

TEST(Recovery, PersistentFailuresRemapStagingRows) {
  dram::Device dev(small_geometry());
  dev.enable_faults(fault_config(0.30));  // every execution fails
  runtime::RecoveryOptions opts = recovery_options(runtime::RecoveryMode::kRetry);
  opts.weak_row_threshold = 1;  // first blame remaps
  runtime::RecoveryManager mgr(dev, opts);
  dram::Subarray& sa = dev.subarray(0);
  auto& ex = mgr.executor_for(0);
  EXPECT_EQ(ex.staging_row(0), 0u);
  sa.write_row(0, pattern_row(256, 3));
  sa.write_row(1, pattern_row(256, 5));
  ex.compare_rows(0, 1, sa.compute_row(3));
  EXPECT_GT(ex.stats().remapped, 0u);
  EXPECT_GE(ex.staging_row(0), 4u);  // retired onto a spare (x5..x8)
}

TEST(Recovery, BlownBudgetDegradesToHostFallback) {
  dram::Device dev(small_geometry());
  dev.enable_faults(fault_config(0.30));  // every execution fails
  runtime::RecoveryOptions opts = recovery_options(runtime::RecoveryMode::kRetry);
  opts.subarray_failure_budget = 0;  // first detection blows the budget
  runtime::RecoveryManager mgr(dev, opts);
  dram::Subarray& sa = dev.subarray(0);
  auto& ex = mgr.executor_for(0);
  const dram::RowAddr dst = sa.compute_row(3);
  for (int op = 0; op < 4; ++op) {
    const auto a = pattern_row(256, 2 + op);
    const auto b = pattern_row(256, 3 + op);
    sa.write_row(0, a);
    sa.write_row(1, b);
    ex.compare_rows(0, 1, dst);
    // Degraded or not, the pipeline keeps getting correct results.
    ASSERT_TRUE(sa.peek_row(dst) == BitVector::bit_xnor(a, b)) << op;
  }
  EXPECT_TRUE(ex.degraded());
  EXPECT_EQ(ex.stats().degraded_subarrays, 1u);
  EXPECT_GT(ex.stats().host_fallbacks, 0u);
  EXPECT_EQ(ex.stats().escaped, 0u);
}

TEST(Recovery, StatsFoldDeterministically) {
  runtime::FaultStats a;
  a.injected = 3;
  a.detected = 2;
  a.retried = 1;
  runtime::FaultStats b;
  b.injected = 5;
  b.escaped = 4;
  b.host_fallbacks = 7;
  const auto sum = runtime::reduce_fault_stats({a, b});
  EXPECT_EQ(sum.injected, 8u);
  EXPECT_EQ(sum.detected, 2u);
  EXPECT_EQ(sum.retried, 1u);
  EXPECT_EQ(sum.escaped, 4u);
  EXPECT_EQ(sum.host_fallbacks, 7u);
  EXPECT_EQ(sum, a + b);
}

// ---- Seed discipline & end-to-end --------------------------------------

core::PipelineOptions faulty_pipeline_options(double variation,
                                              runtime::RecoveryMode mode,
                                              std::size_t threads) {
  core::PipelineOptions opt;
  opt.k = 15;
  opt.hash_shards = 4;
  opt.threads = threads;
  opt.fault = fault_config(variation);
  opt.recovery.mode = mode;
  return opt;
}

std::vector<std::string> contig_strings(
    const std::vector<dna::Sequence>& contigs) {
  std::vector<std::string> out;
  out.reserve(contigs.size());
  for (const auto& c : contigs) out.push_back(c.to_string());
  std::sort(out.begin(), out.end());
  return out;
}

struct SmallWorkload {
  dna::Sequence genome;
  std::vector<dna::Sequence> reads;
};

SmallWorkload small_workload() {
  SmallWorkload w;
  dna::GenomeParams gp;
  gp.length = 900;
  gp.repeat_count = 0;
  w.genome = dna::generate_genome(gp);
  dna::ReadSamplerParams rp;
  rp.coverage = 6.0;
  rp.read_length = 70;
  w.reads = dna::sample_reads(w.genome, rp);
  return w;
}

dram::Geometry pipeline_geometry() {
  dram::Geometry g;
  g.rows = 512;
  g.compute_rows = 8;
  g.columns = 256;
  g.subarrays_per_mat = 8;
  g.mats_per_bank = 1;
  g.banks = 1;
  return g;
}

TEST(FaultPipeline, SameSeedProducesIdenticalFaultStats) {
  const auto w = small_workload();
  const auto opt = faulty_pipeline_options(0.20, runtime::RecoveryMode::kRetry,
                                           /*threads=*/1);
  dram::Device dev1(pipeline_geometry());
  const auto r1 = core::run_pipeline(dev1, w.reads, opt);
  dram::Device dev2(pipeline_geometry());
  const auto r2 = core::run_pipeline(dev2, w.reads, opt);
  EXPECT_GT(r1.fault_stats.injected, 0u);
  EXPECT_EQ(r1.fault_stats, r2.fault_stats);
  EXPECT_EQ(contig_strings(r1.contigs), contig_strings(r2.contigs));
}

TEST(FaultPipeline, DifferentSeedChangesInjection) {
  const auto w = small_workload();
  auto opt = faulty_pipeline_options(0.20, runtime::RecoveryMode::kRetry,
                                     /*threads=*/1);
  dram::Device dev1(pipeline_geometry());
  const auto r1 = core::run_pipeline(dev1, w.reads, opt);
  opt.fault.seed = 777;
  dram::Device dev2(pipeline_geometry());
  const auto r2 = core::run_pipeline(dev2, w.reads, opt);
  EXPECT_NE(r1.fault_stats.injected, r2.fault_stats.injected);
}

TEST(FaultPipeline, FaultyRunIsChannelCountInvariant) {
  const auto w = small_workload();
  const auto serial = faulty_pipeline_options(
      0.20, runtime::RecoveryMode::kRetry, /*threads=*/1);
  const auto parallel = faulty_pipeline_options(
      0.20, runtime::RecoveryMode::kRetry, /*threads=*/3);
  dram::Device dev1(pipeline_geometry());
  const auto r1 = core::run_pipeline(dev1, w.reads, serial);
  dram::Device dev2(pipeline_geometry());
  const auto r2 = core::run_pipeline(dev2, w.reads, parallel);
  EXPECT_EQ(r1.fault_stats, r2.fault_stats);
  EXPECT_EQ(contig_strings(r1.contigs), contig_strings(r2.contigs));
}

TEST(FaultPipeline, RetryAtTenPercentReproducesFaultFreeContigs) {
  // The acceptance bar: ±10% variation with verify-retry recovers the
  // fault-free assembly exactly on the reference seed.
  const auto w = small_workload();
  core::PipelineOptions clean;
  clean.k = 15;
  clean.hash_shards = 4;
  dram::Device dev_clean(pipeline_geometry());
  const auto fault_free = core::run_pipeline(dev_clean, w.reads, clean);

  const auto faulty = faulty_pipeline_options(
      0.10, runtime::RecoveryMode::kRetry, /*threads=*/1);
  dram::Device dev_faulty(pipeline_geometry());
  const auto recovered = core::run_pipeline(dev_faulty, w.reads, faulty);
  EXPECT_EQ(recovered.fault_stats.escaped, 0u);
  EXPECT_EQ(contig_strings(fault_free.contigs),
            contig_strings(recovered.contigs));
}

TEST(FaultPipeline, DisabledFaultsLeaveResultUntouched) {
  // recovery mode retry with no faults: the checked path runs but changes
  // nothing and detects nothing.
  const auto w = small_workload();
  core::PipelineOptions clean;
  clean.k = 15;
  clean.hash_shards = 4;
  dram::Device dev_clean(pipeline_geometry());
  const auto baseline = core::run_pipeline(dev_clean, w.reads, clean);

  auto checked = faulty_pipeline_options(0.0, runtime::RecoveryMode::kRetry,
                                         /*threads=*/1);
  dram::Device dev_checked(pipeline_geometry());
  const auto verified = core::run_pipeline(dev_checked, w.reads, checked);
  EXPECT_EQ(verified.fault_stats.injected, 0u);
  EXPECT_EQ(verified.fault_stats.detected, 0u);
  EXPECT_EQ(verified.fault_stats.escaped, 0u);
  EXPECT_EQ(contig_strings(baseline.contigs),
            contig_strings(verified.contigs));
}

}  // namespace
}  // namespace pima
