#include "dna/paired.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dna/genome.hpp"

namespace pima::dna {
namespace {

Sequence test_genome(std::size_t len = 8000) {
  GenomeParams gp;
  gp.length = len;
  gp.repeat_count = 0;
  return generate_genome(gp);
}

TEST(PairedReads, CountFromCoverage) {
  const auto g = test_genome();
  PairedReadParams pp;
  pp.read_length = 100;
  pp.coverage = 10.0;
  const auto pairs = sample_read_pairs(g, pp);
  EXPECT_EQ(pairs.size(), 400u);  // 10 × 8000 / (2 × 100)
}

TEST(PairedReads, FrProtocolGeometry) {
  const auto g = test_genome();
  const std::string gs = g.to_string();
  PairedReadParams pp;
  pp.pair_count = 100;
  for (const auto& pair : sample_read_pairs(g, pp)) {
    EXPECT_EQ(pair.first.size(), pp.read_length);
    EXPECT_EQ(pair.second.size(), pp.read_length);
    // First read is a forward substring.
    const auto p1 = gs.find(pair.first.to_string());
    ASSERT_NE(p1, std::string::npos);
    // The forward image of the second read ends the fragment, exactly
    // true_insert bases downstream of the fragment start.
    const auto fwd2 = pair.second.reverse_complement().to_string();
    const auto p2 = gs.find(fwd2, p1);
    ASSERT_NE(p2, std::string::npos);
    EXPECT_EQ(p2 + pp.read_length - p1, pair.true_insert);
  }
}

TEST(PairedReads, InsertDistribution) {
  const auto g = test_genome(20000);
  PairedReadParams pp;
  pp.pair_count = 2000;
  pp.insert_mean = 600.0;
  pp.insert_sd = 40.0;
  double sum = 0.0;
  for (const auto& pair : sample_read_pairs(g, pp))
    sum += static_cast<double>(pair.true_insert);
  EXPECT_NEAR(sum / 2000.0, 600.0, 10.0);
}

TEST(PairedReads, Deterministic) {
  const auto g = test_genome();
  PairedReadParams pp;
  pp.pair_count = 10;
  const auto a = sample_read_pairs(g, pp);
  const auto b = sample_read_pairs(g, pp);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);
    EXPECT_EQ(a[i].second, b[i].second);
  }
}

TEST(PairedReads, ValidatesParameters) {
  const auto g = test_genome(1000);
  PairedReadParams pp;
  pp.insert_mean = 150.0;  // < 2 × read length
  EXPECT_THROW(sample_read_pairs(g, pp), pima::PreconditionError);
  PairedReadParams big;
  big.insert_mean = 900.0;  // distribution does not fit the genome
  big.insert_sd = 50.0;
  EXPECT_THROW(sample_read_pairs(g, big), pima::PreconditionError);
}

}  // namespace
}  // namespace pima::dna
