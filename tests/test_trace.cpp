#include "dram/trace.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dram/isa.hpp"
#include "dram/subarray.hpp"

namespace pima::dram {
namespace {

Geometry tiny() {
  Geometry g;
  g.rows = 64;
  g.compute_rows = 8;
  g.columns = 32;
  return g;
}

TEST(Trace, RecordsEveryCommandInOrder) {
  Subarray sa(tiny(), circuit::default_technology());
  TraceSink sink;
  sa.attach_trace(&sink);
  sa.write_row(1, BitVector(32));
  sa.aap_copy(1, 2);
  sa.compare_rows(1, 2, 10);
  ASSERT_EQ(sink.size(), 5u);  // write, copy, 2 staging copies, xnor
  EXPECT_EQ(sink.entries()[0].kind, CommandKind::kRowWrite);
  EXPECT_EQ(sink.entries()[1].kind, CommandKind::kAapCopy);
  EXPECT_EQ(sink.entries()[1].row_a, 1u);
  EXPECT_EQ(sink.entries()[1].dst, 2u);
  EXPECT_EQ(sink.entries()[4].kind, CommandKind::kAapTwoRow);
  EXPECT_EQ(sink.entries()[4].dst, 10u);
}

TEST(Trace, TimestampsAreMonotone) {
  Subarray sa(tiny(), circuit::default_technology());
  TraceSink sink;
  sa.attach_trace(&sink);
  for (int i = 0; i < 5; ++i) sa.aap_copy(0, 1);
  double prev = -1.0;
  for (const auto& e : sink.entries()) {
    EXPECT_GT(e.start_ns, prev);
    EXPECT_GT(e.latency_ns, 0.0);
    EXPECT_GT(e.energy_pj, 0.0);
    prev = e.start_ns;
  }
}

TEST(Trace, DetachStopsRecording) {
  Subarray sa(tiny(), circuit::default_technology());
  TraceSink sink;
  sa.attach_trace(&sink);
  sa.aap_copy(0, 1);
  sa.attach_trace(nullptr);
  sa.aap_copy(0, 1);
  EXPECT_EQ(sink.size(), 1u);
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
}

TEST(Trace, CsvHasHeaderAndRows) {
  Subarray sa(tiny(), circuit::default_technology());
  TraceSink sink;
  sa.attach_trace(&sink);
  sa.aap_copy(3, 7);
  const auto csv = sink.to_csv();
  EXPECT_NE(csv.find("kind,row_a"), std::string::npos);
  EXPECT_NE(csv.find("AAP_COPY,3,0,0,7"), std::string::npos);
}

TEST(Trace, CsvRoundTripsExactly) {
  Subarray sa(tiny(), circuit::default_technology());
  TraceSink sink;
  sa.attach_trace(&sink);
  BitVector bits(32);
  bits.set(7, true);
  sa.write_row(1, bits);
  sa.aap_copy(1, 2);
  sa.compare_rows(1, 2, 10);
  sa.aap_tra_carry(sa.compute_row(0), sa.compute_row(1), sa.compute_row(2), 3);
  const auto csv = sink.to_csv();
  const auto parsed = TraceSink::parse_csv(csv);
  ASSERT_EQ(parsed.size(), sink.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    const auto& a = sink.entries()[i];
    const auto& b = parsed[i];
    EXPECT_EQ(a.kind, b.kind) << "entry " << i;
    EXPECT_EQ(a.row_a, b.row_a);
    EXPECT_EQ(a.row_b, b.row_b);
    EXPECT_EQ(a.row_c, b.row_c);
    EXPECT_EQ(a.dst, b.dst);
    // %.6f fixes the granularity; the model's values are exact at ns/fJ
    // scale, so the round trip is equality, not approximation.
    EXPECT_DOUBLE_EQ(a.start_ns, b.start_ns);
    EXPECT_DOUBLE_EQ(a.latency_ns, b.latency_ns);
    EXPECT_DOUBLE_EQ(a.energy_pj, b.energy_pj);
  }
  // Re-serializing the parsed entries is byte-identical (op/payload are
  // not part of the CSV contract).
  TraceSink again;
  for (const auto& e : parsed) again.record(e);
  EXPECT_EQ(again.to_csv(), csv);
}

TEST(Trace, CsvParseRejectsMalformedInput) {
  EXPECT_THROW(TraceSink::parse_csv("not,a,trace\n"), InputFormatError);
  std::string csv(TraceSink::kCsvHeader);
  csv += "\nNO_SUCH_KIND,0,0,0,0,1.0,1.0,1.0\n";
  EXPECT_THROW(TraceSink::parse_csv(csv), InputFormatError);
  std::string truncated(TraceSink::kCsvHeader);
  truncated += "\nAAP_COPY,3,0\n";
  EXPECT_THROW(TraceSink::parse_csv(truncated), InputFormatError);
}

TEST(Trace, BreakdownFromTraceAggregates) {
  Subarray sa(tiny(), circuit::default_technology());
  TraceSink sink;
  sa.attach_trace(&sink);
  sa.aap_copy(0, 1);
  sa.aap_copy(1, 2);
  sa.write_row(3, BitVector(32));
  const auto b = breakdown_from_trace(sink.entries());
  ASSERT_EQ(b.rows.size(), 2u);  // copies and writes
  double total = 0.0;
  for (const auto& row : b.rows) {
    EXPECT_GT(row.count, 0u);
    total += row.energy_pj;
  }
  EXPECT_DOUBLE_EQ(total, b.total_energy_pj);
  EXPECT_DOUBLE_EQ(b.total_energy_pj, sa.stats().energy_pj);
  EXPECT_DOUBLE_EQ(b.total_time_ns, sa.stats().busy_ns);
}

TEST(Trace, BreakdownFromStatsMatchesTrace) {
  Subarray sa(tiny(), circuit::default_technology());
  TraceSink sink;
  sa.attach_trace(&sink);
  sa.compare_rows(0, 1, 10);
  sa.write_row(5, BitVector(32));
  const auto from_trace = breakdown_from_trace(sink.entries());
  const auto from_stats = breakdown_from_stats(
      sa.stats(), sa.geometry().columns, circuit::default_technology());
  EXPECT_DOUBLE_EQ(from_trace.total_energy_pj, from_stats.total_energy_pj);
  EXPECT_DOUBLE_EQ(from_trace.total_time_ns, from_stats.total_time_ns);
  EXPECT_EQ(from_trace.rows.size(), from_stats.rows.size());
}

TEST(Trace, EntriesCarryReplayExactOpcodes) {
  // XNOR and XOR share CommandKind::kAapTwoRow (same cost class) but must
  // stay distinguishable in the trace for exact replay.
  Subarray sa(tiny(), circuit::default_technology());
  TraceSink sink;
  sa.attach_trace(&sink);
  const auto x1 = sa.compute_row(0), x2 = sa.compute_row(1);
  sa.aap_xnor(x1, x2, 5);
  sa.aap_xor(x1, x2, 6);
  ASSERT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.entries()[0].kind, CommandKind::kAapTwoRow);
  EXPECT_EQ(sink.entries()[1].kind, CommandKind::kAapTwoRow);
  EXPECT_EQ(sink.entries()[0].op, Opcode::kAapXnor);
  EXPECT_EQ(sink.entries()[1].op, Opcode::kAapXor);
}

TEST(Trace, LatchResetIsTraceOnlyAndUncosted) {
  Subarray sa(tiny(), circuit::default_technology());
  TraceSink sink;
  sa.attach_trace(&sink);
  sa.reset_latch();
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.entries()[0].kind, CommandKind::kLatchReset);
  EXPECT_EQ(sink.entries()[0].op, Opcode::kResetLatch);
  EXPECT_DOUBLE_EQ(sink.entries()[0].latency_ns, 0.0);
  EXPECT_DOUBLE_EQ(sink.entries()[0].energy_pj, 0.0);
  // The Rst pulse rides the surrounding AAP envelope: no command counted,
  // no time, no energy.
  EXPECT_EQ(sa.stats().total_commands(), 0u);
  EXPECT_DOUBLE_EQ(sa.stats().busy_ns, 0.0);
}

TEST(Trace, RowWritePayloadIsCaptured) {
  Subarray sa(tiny(), circuit::default_technology());
  TraceSink sink;
  sa.attach_trace(&sink);
  BitVector bits(32);
  bits.set(0, true);
  bits.set(31, true);
  sa.write_row(4, bits);
  sa.aap_copy(4, 5);
  ASSERT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.entries()[0].payload, bits);
  EXPECT_TRUE(sink.entries()[1].payload.empty());  // only writes carry data
}

TEST(Trace, ProgramFromTraceReplaysIdenticalState) {
  const auto g = tiny();
  Subarray sa(g, circuit::default_technology());
  TraceSink sink;
  sa.attach_trace(&sink);
  BitVector bits(32);
  for (std::size_t i = 0; i < 32; i += 2) bits.set(i, true);
  sa.write_row(1, bits);
  sa.aap_copy(1, sa.compute_row(0));
  sa.aap_copy(1, sa.compute_row(1));
  sa.aap_copy(1, sa.compute_row(2));
  sa.aap_tra_carry(sa.compute_row(0), sa.compute_row(1), sa.compute_row(2), 2);
  sa.sum_cycle(sa.compute_row(0), sa.compute_row(1), 3);
  sa.reset_latch();
  (void)sa.read_row(3);

  const auto program = program_from_trace(sink.entries(), 0, g.columns);
  ASSERT_EQ(program.size(), sink.size());
  Device replay(g);
  execute(replay, program);
  auto& rsa = replay.subarray(std::size_t{0});
  for (RowAddr r = 0; r < g.rows; ++r)
    ASSERT_EQ(rsa.peek_row(r), sa.peek_row(r)) << "row " << r;
  EXPECT_EQ(rsa.peek_latch(), sa.peek_latch());
}

TEST(Trace, RenderContainsShares) {
  Subarray sa(tiny(), circuit::default_technology());
  TraceSink sink;
  sa.attach_trace(&sink);
  sa.aap_copy(0, 1);
  const auto text = breakdown_from_trace(sink.entries()).render("demo");
  EXPECT_NE(text.find("AAP_COPY"), std::string::npos);
  EXPECT_NE(text.find("100%"), std::string::npos);
}

}  // namespace
}  // namespace pima::dram
