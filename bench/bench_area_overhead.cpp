// Reproduces the paper's §II.B area-overhead estimate: ~50 add-on
// transistors per sense amplifier, 16 for the modified row decoder, plus
// controller logic — "51 DRAM rows (51×256 transistors) per sub-array at
// the most, which can be interpreted as ~5% of DRAM chip area".
#include <cstdio>

#include "circuit/area.hpp"
#include "common/table.hpp"

using namespace pima;

int main() {
  const auto report = circuit::estimate_area();
  TextTable table("Area overhead per computational sub-array");
  table.set_header({"quantity", "paper", "measured"});
  table.add_row({"add-on transistors", "<= 51x256 = 13056",
                 std::to_string(report.addon_transistors)});
  table.add_row({"row-equivalents", "51 (at most)",
                 TextTable::num(report.rows_equivalent, 4)});
  table.add_row({"chip-area overhead", "~5%",
                 TextTable::num(report.overhead_fraction * 100.0, 3) + "%"});
  std::fputs(table.render().c_str(), stdout);

  // Breakdown of the three cost sources.
  TextTable breakdown("Cost-source breakdown");
  breakdown.set_header({"source", "transistors"});
  const circuit::AreaModelParams p{};
  breakdown.add_row({"reconfigurable SA add-ons (50/bit-line x 256)",
                     std::to_string(p.sa_addon_per_bitline * p.columns)});
  breakdown.add_row({"modified row decoder (2/WL driver x 8 rows)",
                     std::to_string(p.mrd_addon_total)});
  breakdown.add_row(
      {"controller (enable-bit drivers, FSM)",
       std::to_string(report.addon_transistors -
                      p.sa_addon_per_bitline * p.columns -
                      p.mrd_addon_total)});
  std::fputs(breakdown.render().c_str(), stdout);
  return 0;
}
