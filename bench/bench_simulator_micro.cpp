// google-benchmark microbenchmarks of the simulator itself: throughput of
// the functional kernels the experiments are built on. These measure the
// host-side simulation speed (how fast *we* simulate), not the modelled
// hardware performance — useful when scaling workloads up.
#include <benchmark/benchmark.h>

#include "assembly/hash_table.hpp"
#include "common/rng.hpp"
#include "core/degree.hpp"
#include "core/pim_hash_table.hpp"
#include "dna/genome.hpp"
#include "dram/subarray.hpp"

using namespace pima;

namespace {

dram::Geometry micro_geometry() {
  dram::Geometry g;
  g.rows = 512;
  g.compute_rows = 8;
  g.columns = 256;
  g.subarrays_per_mat = 16;
  g.mats_per_bank = 4;
  g.banks = 2;
  return g;
}

void BM_SubarrayXnor(benchmark::State& state) {
  dram::Subarray sa(micro_geometry(), circuit::default_technology());
  BitVector ones(256);
  ones.fill(true);
  sa.write_row(0, ones);
  sa.write_row(1, BitVector(256));
  for (auto _ : state) {
    sa.compare_rows(0, 1, 10);
    benchmark::DoNotOptimize(sa.peek_row(10));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_SubarrayXnor);

void BM_SubarrayAddVertical(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  dram::Subarray sa(micro_geometry(), circuit::default_technology());
  std::vector<dram::RowAddr> a, b, s;
  for (std::size_t i = 0; i < m; ++i) {
    a.push_back(i);
    b.push_back(64 + i);
    s.push_back(128 + i);
  }
  for (auto _ : state) {
    sa.add_vertical(a, b, s, 200);
    benchmark::DoNotOptimize(sa.peek_row(200));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_SubarrayAddVertical)->Arg(8)->Arg(16)->Arg(32);

void BM_PimHashInsert(benchmark::State& state) {
  dna::GenomeParams gp;
  gp.length = 2000;
  gp.repeat_count = 0;
  const auto genome = dna::generate_genome(gp);
  std::vector<assembly::Kmer> kmers;
  for (std::size_t i = 0; i + 16 <= genome.size(); ++i)
    kmers.push_back(assembly::Kmer::from_sequence(genome, i, 16));
  for (auto _ : state) {
    state.PauseTiming();
    dram::Device dev(micro_geometry());
    core::PimHashTable table(dev, 8);
    state.ResumeTiming();
    for (const auto& km : kmers)
      benchmark::DoNotOptimize(table.insert_or_increment(km));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kmers.size()));
}
BENCHMARK(BM_PimHashInsert);

void BM_SoftwareKmerCounting(benchmark::State& state) {
  dna::GenomeParams gp;
  gp.length = 20000;
  gp.repeat_count = 0;
  const auto genome = dna::generate_genome(gp);
  dna::ReadSamplerParams rp;
  rp.coverage = 8.0;
  rp.read_length = 100;
  const auto reads = dna::sample_reads(genome, rp);
  for (auto _ : state) {
    const auto table = assembly::build_hashmap(reads, 21);
    benchmark::DoNotOptimize(table.distinct_kmers());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(reads.size() * 80));
}
BENCHMARK(BM_SoftwareKmerCounting);

void BM_PimColumnSums(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dram::Device dev(micro_geometry());
  Rng rng(5);
  std::vector<BitVector> rows;
  for (std::size_t r = 0; r < n; ++r) {
    BitVector row(256);
    for (std::size_t c = 0; c < 256; ++c) row.set(c, rng.bernoulli(0.3));
    rows.push_back(std::move(row));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::pim_column_sums(dev.subarray(0), rows));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 256);
}
BENCHMARK(BM_PimColumnSums)->Arg(16)->Arg(64);

}  // namespace
