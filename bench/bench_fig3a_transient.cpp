// Reproduces paper Fig. 3a: transient simulation of the in-memory XNOR2
// operation. For each operand combination DiDj the bit-line settles through
// precharge → two-row charge sharing → sense amplification, ending at Vdd
// when XNOR2(Di,Dj)=1 (00/11) and at GND when 0 (01/10).
#include <cstdio>

#include "circuit/transient.hpp"
#include "common/table.hpp"

using namespace pima;

int main() {
  const circuit::TechParams tech{};
  const circuit::TransientPhases phases{};

  std::printf("PIM-Assembler — Fig. 3a: XNOR2 transient (Vdd = %.2f V)\n",
              tech.vdd);
  std::printf(
      "phases: precharge ends %.1f ns, charge share ends %.1f ns, sense "
      "ends %.1f ns\n\n",
      phases.precharge_end_ns, phases.share_end_ns, phases.sense_end_ns);

  TextTable table("BL voltage over time (V)");
  table.set_header({"t (ns)", "Di=0,Dj=0", "Di=0,Dj=1", "Di=1,Dj=0",
                    "Di=1,Dj=1"});

  const bool combos[4][2] = {
      {false, false}, {false, true}, {true, false}, {true, true}};
  std::vector<std::vector<circuit::TransientPoint>> waves;
  for (const auto& c : combos)
    waves.push_back(
        circuit::simulate_xnor2_transient(tech, c[0], c[1], 0.5, phases));

  for (std::size_t i = 0; i < waves[0].size(); i += 4) {
    std::vector<std::string> row{TextTable::num(waves[0][i].t_ns, 3)};
    for (const auto& w : waves) row.push_back(TextTable::num(w[i].v_bl, 3));
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);

  TextTable final_table("Restored cell voltage after sensing");
  final_table.set_header({"DiDj", "cell voltage (V)", "paper expectation"});
  const char* names[4] = {"00", "01", "10", "11"};
  for (int c = 0; c < 4; ++c) {
    const double v =
        circuit::restored_cell_voltage(tech, combos[c][0], combos[c][1]);
    final_table.add_row({names[c], TextTable::num(v, 3),
                         (c == 0 || c == 3) ? "charged to Vdd (XNOR=1)"
                                            : "discharged to GND (XNOR=0)"});
  }
  std::fputs(final_table.render().c_str(), stdout);
  return 0;
}
