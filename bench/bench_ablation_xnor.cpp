// Ablation (DESIGN.md §5): how much of PIM-Assembler's application speedup
// comes from the single-cycle two-row X(N)OR sense amplifier? We run the
// full chr14 cost model on the P-A platform but swap in Ambit-style X(N)OR
// cycle counts (7 cycles + row init/readout overhead) while keeping
// everything else — mapping, DPU, addition datapath — identical.
#include <cstdio>

#include "common/table.hpp"
#include "core/cost_model.hpp"
#include "platforms/presets.hpp"

using namespace pima;

int main() {
  auto pa = platforms::pim_assembler();
  auto crippled = pa;
  crippled.name = "P-A w/ Ambit XNOR";
  crippled.xnor_cycles = platforms::ambit().xnor_cycles;
  crippled.pim_aux_cycles = platforms::ambit().pim_aux_cycles;

  TextTable table("Ablation: single-cycle XNOR SA vs Ambit-style XNOR");
  table.set_header({"k", "variant", "hashmap (s)", "total (s)",
                    "slowdown vs P-A"});
  for (const std::size_t k : {16u, 22u, 26u, 32u}) {
    core::WorkloadParams w;
    w.k = k;
    const auto base = core::estimate_application(pa, w);
    const auto abl = core::estimate_application(crippled, w);
    table.add_row({std::to_string(k), pa.name,
                   TextTable::num(base.hashmap.time_s, 4),
                   TextTable::num(base.total_time_s, 4), "1x"});
    table.add_row({std::to_string(k), crippled.name,
                   TextTable::num(abl.hashmap.time_s, 4),
                   TextTable::num(abl.total_time_s, 4),
                   TextTable::num(abl.total_time_s / base.total_time_s, 3) +
                       "x"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\ninterpretation: the reconfigurable-SA XNOR accounts for the bulk "
      "of P-A's advantage over Ambit on the comparison-heavy hashmap "
      "stage; the rest comes from the DPU reduction path.");
  return 0;
}
