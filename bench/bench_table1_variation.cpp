// Reproduces paper Table I: Monte-Carlo process-variation failure rates of
// the Ambit-style triple-row activation (TRA) vs PIM-Assembler's two-row
// activation, 10,000 trials per point, variation ±5%…±30%.
//
// Usage: bench_table1_variation [trials] [seed]
#include <cstdio>
#include <cstdlib>

#include "circuit/montecarlo.hpp"
#include "common/table.hpp"

using namespace pima;

int main(int argc, char** argv) {
  const circuit::TechParams tech{};
  // paper: 10000 Monte-Carlo trials
  const std::size_t trials =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10000;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2020;
  std::printf("monte-carlo: trials=%zu seed=%llu\n", trials,
              static_cast<unsigned long long>(seed));
  const auto result = circuit::run_variation_table(tech, trials, seed);

  // Paper Table I rows for side-by-side comparison.
  const double paper_tra[] = {0.00, 0.18, 5.5, 17.1, 28.4};
  const double paper_two[] = {0.00, 0.00, 1.6, 11.2, 18.1};

  TextTable table("Table I: test error (%) under process variation, " +
                  std::to_string(trials) + " trials");
  table.set_header({"variation", "TRA (paper)", "TRA (measured)",
                    "2-row (paper)", "2-row (measured)"});
  for (std::size_t i = 0; i < result.levels.size(); ++i) {
    table.add_row({"±" + TextTable::num(result.levels[i] * 100, 3) + "%",
                   TextTable::num(paper_tra[i], 3),
                   TextTable::num(result.tra[i].failure_percent, 3),
                   TextTable::num(paper_two[i], 3),
                   TextTable::num(result.two_row[i].failure_percent, 3)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nstructural check: 2-row activation tolerates more variation than "
      "TRA at every level (smaller margins of the 3-cell charge share).");
  return 0;
}
