// Reproduces paper Fig. 3b: raw throughput of bulk bit-wise XNOR2 and
// addition on CPU, GPU, HMC 2.0, Ambit, DRISA-1T1C (D1), DRISA-3T1C (D3)
// and PIM-Assembler (P-A), for 2^27 / 2^28 / 2^29-bit input vectors, with
// every platform configured with the identical physical memory
// configuration (8 banks of 1024×256 computational sub-arrays).
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "platforms/presets.hpp"

using namespace pima;
using platforms::BulkOp;

int main() {
  const auto all = platforms::all_platforms();
  const double lengths[] = {double(1ull << 27), double(1ull << 28),
                            double(1ull << 29)};

  for (const auto op : {BulkOp::kXnor, BulkOp::kAdd}) {
    TextTable table(op == BulkOp::kXnor
                        ? "Fig. 3b (left): XNOR2 throughput (Gbit/s)"
                        : "Fig. 3b (right): addition throughput (Gbit/s)");
    table.set_header({"platform", "2^27-bit", "2^28-bit", "2^29-bit"});
    for (const auto& p : all) {
      std::vector<std::string> row{p.name};
      for (const double bits : lengths)
        row.push_back(TextTable::num(
            platforms::bulk_throughput_bits_per_s(p, op, bits) / 1e9, 4));
      table.add_row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);
    std::fputs("\n", stdout);
  }

  // Paper headline ratios for XNOR2.
  const auto pa = platforms::pim_assembler();
  const double pa_tp =
      platforms::bulk_throughput_bits_per_s(pa, BulkOp::kXnor, 1ull << 28);
  TextTable ratios("XNOR2 throughput ratios (paper-reported vs measured)");
  ratios.set_header({"comparison", "paper", "measured"});
  auto ratio_to = [&](const platforms::PlatformSpec& p) {
    return pa_tp /
           platforms::bulk_throughput_bits_per_s(p, BulkOp::kXnor, 1ull << 28);
  };
  ratios.add_row({"P-A vs CPU", "8.4x",
                  TextTable::num(ratio_to(platforms::cpu_corei7()), 3) + "x"});
  ratios.add_row({"P-A vs Ambit", "2.3x",
                  TextTable::num(ratio_to(platforms::ambit()), 3) + "x"});
  ratios.add_row(
      {"P-A vs DRISA-1T1C", "1.9x",
       TextTable::num(ratio_to(platforms::drisa_1t1c()), 3) + "x"});
  ratios.add_row(
      {"P-A vs DRISA-3T1C", "3.7x",
       TextTable::num(ratio_to(platforms::drisa_3t1c()), 3) + "x"});
  const double pim_avg = geometric_mean({ratio_to(platforms::ambit()),
                                         ratio_to(platforms::drisa_1t1c()),
                                         ratio_to(platforms::drisa_3t1c())});
  ratios.add_row({"P-A vs recent PIM (avg)", "2.3x",
                  TextTable::num(pim_avg, 3) + "x"});
  std::fputs(ratios.render().c_str(), stdout);
  return 0;
}
