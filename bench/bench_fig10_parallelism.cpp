// Reproduces paper Fig. 10: trade-off between power consumption and delay
// as the parallelism degree Pd (replicated sub-array groups) grows, for
// k = 16 and k = 32, plus the mapping optimizer's chosen operating point
// (the paper determines the optimum at Pd ≈ 2).
#include <cstdio>

#include "common/table.hpp"
#include "core/pd_optimizer.hpp"
#include "platforms/presets.hpp"

using namespace pima;

int main() {
  const auto pa = platforms::pim_assembler();
  TextTable table("Fig. 10: power/delay vs parallelism degree");
  table.set_header({"k", "Pd", "delay (s)", "power (W)", "energy (J)"});
  for (const std::size_t k : {16u, 32u}) {
    core::WorkloadParams w;
    w.k = k;
    for (const auto& pt : core::sweep_parallelism(pa, w)) {
      table.add_row({std::to_string(k), std::to_string(pt.pd),
                     TextTable::num(pt.delay_s, 4),
                     TextTable::num(pt.power_w, 4),
                     TextTable::num(pt.energy_j, 4)});
    }
  }
  std::fputs(table.render().c_str(), stdout);

  TextTable opt("\nMapping-optimizer operating point");
  opt.set_header({"k", "paper optimum", "chosen Pd", "delay (s)",
                  "power (W)"});
  for (const std::size_t k : {16u, 32u}) {
    core::WorkloadParams w;
    w.k = k;
    const auto best = core::optimal_parallelism(pa, w);
    opt.add_row({std::to_string(k), "Pd ~ 2", std::to_string(best.pd),
                 TextTable::num(best.delay_s, 4),
                 TextTable::num(best.power_w, 4)});
  }
  std::fputs(opt.render().c_str(), stdout);
  return 0;
}
