// Reproduces paper Fig. 10: trade-off between power consumption and delay
// as the parallelism degree Pd (replicated sub-array groups) grows, for
// k = 16 and k = 32, plus the mapping optimizer's chosen operating point
// (the paper determines the optimum at Pd ≈ 2).
//
// The analytic sweep is followed by a *measured* section: the bit-accurate
// pipeline is executed through the multi-channel runtime at increasing
// channel counts and timed with a wall clock, so the modelled parallelism
// is checked against parallelism we actually exploit on the host.
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/table.hpp"
#include "core/pd_optimizer.hpp"
#include "core/pipeline.hpp"
#include "dna/genome.hpp"
#include "platforms/presets.hpp"

using namespace pima;

namespace {

struct MeasuredRun {
  double wall_ms = 0.0;
  core::PipelineResult result;
};

MeasuredRun run_measured(const std::vector<dna::Sequence>& reads,
                         std::size_t threads, std::size_t devices = 1) {
  dram::Geometry geom;
  geom.rows = 512;
  geom.compute_rows = 8;
  geom.columns = 256;
  geom.subarrays_per_mat = 16;
  geom.mats_per_bank = 4;
  geom.banks = 2;
  dram::Device device(geom);

  core::PipelineOptions opt;
  opt.k = 17;
  opt.hash_shards = 64;
  opt.threads = threads;
  opt.devices = devices;

  const auto start = std::chrono::steady_clock::now();
  MeasuredRun run;
  run.result = core::run_pipeline(device, reads, opt);
  run.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return run;
}

void measured_speedup() {
  // Bundled workload: synthetic 12 kb chromosome at 12x coverage. The
  // PIM-executed stages (hash inserts and the m^2 degree blocks) account
  // for ~98% of the host wall time at this size, so the measured speedup
  // tracks the runtime's channel parallelism rather than serial overhead.
  dna::GenomeParams gp;
  gp.length = 12'000;
  gp.repeat_count = 4;
  gp.repeat_length = 200;
  const auto genome = dna::generate_genome(gp);
  dna::ReadSamplerParams rp;
  rp.coverage = 12.0;
  rp.read_length = 101;
  const auto reads = dna::sample_reads(genome, rp);

  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<std::size_t> counts{1, 2, 4};
  if (hw > 4) counts.push_back(std::min<std::size_t>(hw, 8));

  TextTable table("\nMeasured multi-channel runtime (bit-accurate pipeline)");
  table.set_header({"channels", "wall (ms)", "speedup", "contigs", "N50",
                    "identical"});
  MeasuredRun baseline;
  for (const std::size_t threads : counts) {
    const auto run = run_measured(reads, threads);
    if (threads == 1) baseline = run;
    const bool identical =
        run.result.contig_stats.count == baseline.result.contig_stats.count &&
        run.result.contig_stats.n50 == baseline.result.contig_stats.n50 &&
        run.result.total() == baseline.result.total();
    table.add_row({std::to_string(threads), TextTable::num(run.wall_ms, 1),
                   TextTable::num(baseline.wall_ms / run.wall_ms, 2) + "x",
                   std::to_string(run.result.contig_stats.count),
                   std::to_string(run.result.contig_stats.n50),
                   identical ? "yes" : "NO"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("(reads: %zu, k=17, 64 hash shards; host threads: %u)\n",
              reads.size(), hw);

  // Device-scaling axis: the same pipeline sharded over N simulated
  // devices (one channel each; total workers = N). The load-bearing check
  // is 'identical' — every sharded output must be bit-equal to 1 device.
  TextTable dt("\nMeasured multi-device sharding (--devices axis)");
  dt.set_header({"devices", "wall (ms)", "speedup", "contigs", "N50",
                 "identical"});
  MeasuredRun dev_baseline;
  for (const std::size_t devices : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    const auto run = run_measured(reads, 1, devices);
    if (devices == 1) dev_baseline = run;
    const bool identical =
        run.result.contig_stats.count ==
            dev_baseline.result.contig_stats.count &&
        run.result.contig_stats.n50 == dev_baseline.result.contig_stats.n50 &&
        run.result.total() == dev_baseline.result.total();
    dt.add_row({std::to_string(devices), TextTable::num(run.wall_ms, 1),
                TextTable::num(dev_baseline.wall_ms / run.wall_ms, 2) + "x",
                std::to_string(run.result.contig_stats.count),
                std::to_string(run.result.contig_stats.n50),
                identical ? "yes" : "NO"});
  }
  std::fputs(dt.render().c_str(), stdout);

  if (hw <= 1) {
    std::printf(
        "note: this host exposes a single CPU, so wall-clock speedup cannot\n"
        "manifest here; the 'identical' column is the load-bearing check on\n"
        "this machine, and the speedup columns become meaningful on any\n"
        "multi-core host (e.g. the CI runners).\n");
  }
}

}  // namespace

int main() {
  const auto pa = platforms::pim_assembler();
  TextTable table("Fig. 10: power/delay vs parallelism degree");
  table.set_header({"k", "Pd", "delay (s)", "power (W)", "energy (J)"});
  for (const std::size_t k : {16u, 32u}) {
    core::WorkloadParams w;
    w.k = k;
    for (const auto& pt : core::sweep_parallelism(pa, w)) {
      table.add_row({std::to_string(k), std::to_string(pt.pd),
                     TextTable::num(pt.delay_s, 4),
                     TextTable::num(pt.power_w, 4),
                     TextTable::num(pt.energy_j, 4)});
    }
  }
  std::fputs(table.render().c_str(), stdout);

  TextTable opt("\nMapping-optimizer operating point");
  opt.set_header({"k", "paper optimum", "chosen Pd", "delay (s)",
                  "power (W)"});
  for (const std::size_t k : {16u, 32u}) {
    core::WorkloadParams w;
    w.k = k;
    const auto best = core::optimal_parallelism(pa, w);
    opt.add_row({std::to_string(k), "Pd ~ 2", std::to_string(best.pd),
                 TextTable::num(best.delay_s, 4),
                 TextTable::num(best.power_w, 4)});
  }
  std::fputs(opt.render().c_str(), stdout);

  measured_speedup();
  return 0;
}
