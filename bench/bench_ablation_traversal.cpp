// Ablation (DESIGN.md §5): the paper names the Fleury algorithm for its
// Traverse(G) stage; this reproduction defaults to Hierholzer. The swap is
// justified here: both algorithms cover the identical edge multiset (the
// contigs' content is the same), but Fleury's per-step bridge detection is
// O(E) per edge, so its controller-side cost explodes quadratically while
// Hierholzer stays linear.
#include <chrono>
#include <cstdio>

#include "assembly/contig.hpp"
#include "common/table.hpp"
#include "dna/genome.hpp"

using namespace pima;

namespace {

assembly::DeBruijnGraph make_graph(std::size_t genome_len, std::size_t k) {
  dna::GenomeParams gp;
  gp.length = genome_len;
  gp.repeat_count = genome_len / 500;
  gp.repeat_length = 80;
  const auto genome = dna::generate_genome(gp);
  dna::ReadSamplerParams rp;
  rp.coverage = 8.0;
  rp.read_length = 80;
  const auto reads = dna::sample_reads(genome, rp);
  return assembly::DeBruijnGraph::from_counter(
      assembly::build_hashmap(reads, k), true);
}

double time_ms(assembly::TraversalAlgorithm algo,
               const assembly::DeBruijnGraph& g, std::uint64_t& covered) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto walks = assembly::euler_walks(g, algo);
  const auto t1 = std::chrono::steady_clock::now();
  covered = 0;
  for (const auto& w : walks) covered += w.size();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main() {
  TextTable table("Ablation: Hierholzer (used) vs Fleury (paper's name)");
  table.set_header({"graph edges", "Hierholzer (ms)", "Fleury (ms)",
                    "slowdown", "identical coverage"});
  for (const std::size_t len : {1000u, 2000u, 4000u, 8000u}) {
    const auto g = make_graph(len, 15);
    std::uint64_t cov_h = 0, cov_f = 0;
    const double t_h =
        time_ms(assembly::TraversalAlgorithm::kHierholzer, g, cov_h);
    const double t_f =
        time_ms(assembly::TraversalAlgorithm::kFleury, g, cov_f);
    table.add_row({std::to_string(g.edge_count()), TextTable::num(t_h, 4),
                   TextTable::num(t_f, 4),
                   TextTable::num(t_f / std::max(t_h, 1e-6), 3) + "x",
                   cov_h == cov_f && cov_h == g.edge_instances() ? "yes"
                                                                 : "NO"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nboth traversals cover every edge instance exactly once; Fleury's "
      "bridge checks grow quadratically, which is why the pipeline uses "
      "Hierholzer.");
  return 0;
}
