// Summarizes every headline claim of the paper's abstract/conclusion
// against this reproduction's measured values (E10 in DESIGN.md):
//   * 8.4× XNOR throughput vs CPU, 2.3× vs recent processing-in-DRAM,
//   * ~5× execution-time and ~7.5× power reduction vs GPU on chr14,
//   * ~5% DRAM chip-area overhead,
//   * two-row activation robust to ±10% process variation (0% failures).
#include <cstdio>

#include "circuit/area.hpp"
#include "circuit/montecarlo.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/cost_model.hpp"
#include "platforms/presets.hpp"

using namespace pima;
using platforms::BulkOp;

int main() {
  TextTable table("PIM-Assembler headline claims: paper vs this reproduction");
  table.set_header({"claim", "paper", "measured"});

  // Bulk XNOR throughput ratios.
  const double bits = 1ull << 28;
  const auto pa = platforms::pim_assembler();
  const double pa_tp = platforms::bulk_throughput_bits_per_s(pa, BulkOp::kXnor, bits);
  const double vs_cpu =
      pa_tp / platforms::bulk_throughput_bits_per_s(platforms::cpu_corei7(),
                                                    BulkOp::kXnor, bits);
  const double vs_pim = geometric_mean(
      {pa_tp / platforms::bulk_throughput_bits_per_s(platforms::ambit(),
                                                     BulkOp::kXnor, bits),
       pa_tp / platforms::bulk_throughput_bits_per_s(platforms::drisa_1t1c(),
                                                     BulkOp::kXnor, bits),
       pa_tp / platforms::bulk_throughput_bits_per_s(platforms::drisa_3t1c(),
                                                     BulkOp::kXnor, bits)});
  table.add_row({"bulk XNOR throughput vs CPU", "8.4x",
                 TextTable::num(vs_cpu, 3) + "x"});
  table.add_row({"bulk XNOR throughput vs recent PIM", "2.3x",
                 TextTable::num(vs_pim, 3) + "x"});

  // Application-level vs GPU, averaged over the paper's k sweep.
  double time_ratio = 0.0, power_ratio = 0.0;
  for (const std::size_t k : {16u, 22u, 26u, 32u}) {
    core::WorkloadParams w;
    w.k = k;
    const auto gpu = core::estimate_application(platforms::gpu_1080ti(), w);
    const auto pac = core::estimate_application(pa, w);
    time_ratio += gpu.total_time_s / pac.total_time_s / 4.0;
    power_ratio += gpu.avg_power_w / pac.avg_power_w / 4.0;
  }
  table.add_row({"chr14 execution time vs GPU", "~5x",
                 TextTable::num(time_ratio, 3) + "x"});
  table.add_row({"chr14 power vs GPU", "~7.5x",
                 TextTable::num(power_ratio, 3) + "x"});

  // Area overhead.
  const auto area = circuit::estimate_area();
  table.add_row({"DRAM chip area overhead", "~5%",
                 TextTable::num(area.overhead_fraction * 100.0, 3) + "%"});

  // Variation robustness at ±10%.
  const auto var = circuit::run_variation_trials(
      circuit::TechParams{}, circuit::Mechanism::kTwoRowActivation, 0.10,
      10000, 7);
  table.add_row({"2-row failures at ±10% variation", "0.00%",
                 TextTable::num(var.failure_percent, 3) + "%"});

  std::fputs(table.render().c_str(), stdout);
  return 0;
}
