// Summarizes every headline claim of the paper's abstract/conclusion
// against this reproduction's measured values (E10 in DESIGN.md):
//   * 8.4× XNOR throughput vs CPU, 2.3× vs recent processing-in-DRAM,
//   * ~5× execution-time and ~7.5× power reduction vs GPU on chr14,
//   * ~5% DRAM chip-area overhead,
//   * two-row activation robust to ±10% process variation (0% failures).
//
// Besides the human-readable table, writes `BENCH_headline.json` (path
// overridable as argv[1]): the same measurements as machine-readable
// fields — commands & commands/s, serial/parallel wall-clock, simulated
// energy, the headline ratios — so CI can diff runs without scraping the
// table.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "circuit/area.hpp"
#include "circuit/montecarlo.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/cost_model.hpp"
#include "core/pipeline.hpp"
#include "dna/genome.hpp"
#include "platforms/presets.hpp"
#include "service/json.hpp"

using namespace pima;
using platforms::BulkOp;

namespace {

// Measured wall-clock speedup of the bit-accurate pipeline when sharded
// over the multi-channel runtime (see bench_fig10_parallelism for the
// full sweep). On a single-core host the ratio degenerates to ~1x; the
// accompanying "identical" flag still certifies the parallel path.
struct RuntimeSpeedup {
  double speedup = 0.0;
  bool identical = false;
  std::size_t channels = 0;
  double serial_wall_ms = 0.0;
  double parallel_wall_ms = 0.0;
  dram::DeviceStats device;  ///< simulated totals (same serial & parallel)
  // --devices scaling axis: the same pipeline sharded over N simulated
  // devices at one channel each, against the 1-device serial baseline.
  std::size_t devices = 0;
  double devices_wall_ms = 0.0;
  double devices_speedup = 0.0;
  bool devices_identical = false;
};

RuntimeSpeedup measure_runtime_speedup() {
  dna::GenomeParams gp;
  gp.length = 6'000;
  gp.repeat_count = 2;
  gp.repeat_length = 150;
  const auto genome = dna::generate_genome(gp);
  dna::ReadSamplerParams rp;
  rp.coverage = 10.0;
  rp.read_length = 101;
  const auto reads = dna::sample_reads(genome, rp);

  auto run = [&](std::size_t threads, std::size_t devices, double& wall_ms) {
    dram::Geometry geom;
    geom.rows = 512;
    geom.compute_rows = 8;
    geom.columns = 256;
    geom.subarrays_per_mat = 16;
    geom.mats_per_bank = 4;
    geom.banks = 2;
    dram::Device device(geom);
    core::PipelineOptions opt;
    opt.k = 17;
    opt.hash_shards = 32;
    opt.threads = threads;
    opt.devices = devices;
    const auto start = std::chrono::steady_clock::now();
    auto result = core::run_pipeline(device, reads, opt);
    wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
    return result;
  };

  RuntimeSpeedup out;
  out.channels = std::max(4u, std::thread::hardware_concurrency());
  const auto serial = run(1, 1, out.serial_wall_ms);
  const auto parallel = run(out.channels, 1, out.parallel_wall_ms);
  out.speedup = out.serial_wall_ms / out.parallel_wall_ms;
  out.identical =
      serial.contig_stats.count == parallel.contig_stats.count &&
      serial.contig_stats.n50 == parallel.contig_stats.n50 &&
      serial.total() == parallel.total();
  out.device = serial.total();

  // Device-scaling axis: the pipeline sharded over 4 simulated devices
  // (1 channel each) against the 1-device serial baseline above.
  out.devices = 4;
  double sharded_wall_ms = 0.0;
  const auto sharded = run(1, out.devices, sharded_wall_ms);
  out.devices_wall_ms = sharded_wall_ms;
  out.devices_speedup = out.serial_wall_ms / sharded_wall_ms;
  out.devices_identical =
      sharded.contig_stats.count == serial.contig_stats.count &&
      sharded.contig_stats.n50 == serial.contig_stats.n50 &&
      sharded.total() == serial.total();
  return out;
}

// Machine-readable mirror of the table for CI diffing. Written with the
// service Json writer (shortest round-trip-exact numbers) so equal
// measurements always produce equal bytes.
void write_headline_json(const char* path, double vs_cpu, double vs_pim,
                         double time_ratio, double power_ratio,
                         double area_overhead_percent,
                         double variation_failure_percent,
                         const RuntimeSpeedup& rt) {
  using service::Json;
  Json runtime = Json::object();
  runtime.set("channels", rt.channels)
      .set("serial_wall_ms", rt.serial_wall_ms)
      .set("parallel_wall_ms", rt.parallel_wall_ms)
      .set("speedup", rt.speedup)
      .set("identical", rt.identical)
      .set("commands", rt.device.commands)
      .set("commands_per_s",
           rt.parallel_wall_ms > 0.0
               ? static_cast<double>(rt.device.commands) /
                     (rt.parallel_wall_ms / 1e3)
               : 0.0)
      .set("simulated_time_ns", rt.device.time_ns)
      .set("simulated_energy_pj", rt.device.energy_pj);
  Json scaling = Json::object();
  scaling.set("devices", rt.devices)
      .set("serial_wall_ms", rt.serial_wall_ms)
      .set("sharded_wall_ms", rt.devices_wall_ms)
      .set("speedup", rt.devices_speedup)
      .set("identical", rt.devices_identical);
  Json root = Json::object();
  root.set("bench", "headline_claims")
      .set("xnor_throughput_vs_cpu", vs_cpu)
      .set("xnor_throughput_vs_pim", vs_pim)
      .set("chr14_time_ratio_vs_gpu", time_ratio)
      .set("chr14_power_ratio_vs_gpu", power_ratio)
      .set("area_overhead_percent", area_overhead_percent)
      .set("variation_failure_percent", variation_failure_percent)
      .set("runtime", std::move(runtime))
      .set("device_scaling", std::move(scaling));
  std::ofstream out(path);
  out << root.dump() << "\n";
  if (!out)
    std::fprintf(stderr, "warning: could not write %s\n", path);
  else
    std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  TextTable table("PIM-Assembler headline claims: paper vs this reproduction");
  table.set_header({"claim", "paper", "measured"});

  // Bulk XNOR throughput ratios.
  const double bits = 1ull << 28;
  const auto pa = platforms::pim_assembler();
  const double pa_tp = platforms::bulk_throughput_bits_per_s(pa, BulkOp::kXnor, bits);
  const double vs_cpu =
      pa_tp / platforms::bulk_throughput_bits_per_s(platforms::cpu_corei7(),
                                                    BulkOp::kXnor, bits);
  const double vs_pim = geometric_mean(
      {pa_tp / platforms::bulk_throughput_bits_per_s(platforms::ambit(),
                                                     BulkOp::kXnor, bits),
       pa_tp / platforms::bulk_throughput_bits_per_s(platforms::drisa_1t1c(),
                                                     BulkOp::kXnor, bits),
       pa_tp / platforms::bulk_throughput_bits_per_s(platforms::drisa_3t1c(),
                                                     BulkOp::kXnor, bits)});
  table.add_row({"bulk XNOR throughput vs CPU", "8.4x",
                 TextTable::num(vs_cpu, 3) + "x"});
  table.add_row({"bulk XNOR throughput vs recent PIM", "2.3x",
                 TextTable::num(vs_pim, 3) + "x"});

  // Application-level vs GPU, averaged over the paper's k sweep.
  double time_ratio = 0.0, power_ratio = 0.0;
  for (const std::size_t k : {16u, 22u, 26u, 32u}) {
    core::WorkloadParams w;
    w.k = k;
    const auto gpu = core::estimate_application(platforms::gpu_1080ti(), w);
    const auto pac = core::estimate_application(pa, w);
    time_ratio += gpu.total_time_s / pac.total_time_s / 4.0;
    power_ratio += gpu.avg_power_w / pac.avg_power_w / 4.0;
  }
  table.add_row({"chr14 execution time vs GPU", "~5x",
                 TextTable::num(time_ratio, 3) + "x"});
  table.add_row({"chr14 power vs GPU", "~7.5x",
                 TextTable::num(power_ratio, 3) + "x"});

  // Area overhead.
  const auto area = circuit::estimate_area();
  table.add_row({"DRAM chip area overhead", "~5%",
                 TextTable::num(area.overhead_fraction * 100.0, 3) + "%"});

  // Variation robustness at ±10%.
  const auto var = circuit::run_variation_trials(
      circuit::TechParams{}, circuit::Mechanism::kTwoRowActivation, 0.10,
      10000, 7);
  table.add_row({"2-row failures at ±10% variation", "0.00%",
                 TextTable::num(var.failure_percent, 3) + "%"});

  // Multi-channel runtime: measured host speedup of the bit-accurate
  // pipeline, plus the determinism contract (parallel == serial output).
  const auto rt = measure_runtime_speedup();
  table.add_row({"runtime wall-clock speedup, " + std::to_string(rt.channels) +
                     " channels",
                 "scales", TextTable::num(rt.speedup, 2) + "x" +
                     (rt.identical ? " (bit-identical)" : " (MISMATCH)")});
  table.add_row({"sharded speedup, " + std::to_string(rt.devices) +
                     " devices",
                 "scales", TextTable::num(rt.devices_speedup, 2) + "x" +
                     (rt.devices_identical ? " (bit-identical)"
                                           : " (MISMATCH)")});

  std::fputs(table.render().c_str(), stdout);
  write_headline_json(argc > 1 ? argv[1] : "BENCH_headline.json", vs_cpu,
                      vs_pim, time_ratio, power_ratio,
                      area.overhead_fraction * 100.0, var.failure_percent,
                      rt);
  if (std::thread::hardware_concurrency() <= 1)
    std::printf("note: single-core host — runtime speedup cannot exceed ~1x "
                "here; see bench_fig10_parallelism.\n");
  return 0;
}
