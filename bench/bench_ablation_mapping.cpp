// Ablation (DESIGN.md §5): value of the correlated data partitioning and
// mapping methodology (paper Fig. 6). Two functional hash-table builds on
// the bit-accurate simulator process the same read set:
//   * correlated — counters co-located with keys (the paper's layout);
//   * central values — counters in one dedicated sub-array (naive layout).
// With central values every counter read-modify-write serializes on the
// value array, which becomes the critical path; the correlated layout keeps
// updates local and parallel.
#include <cstdio>

#include "common/table.hpp"
#include "core/pim_hash_table.hpp"
#include "dna/genome.hpp"

using namespace pima;

namespace {

dram::Geometry bench_geometry() {
  dram::Geometry g;
  g.rows = 512;
  g.compute_rows = 8;
  g.columns = 256;
  g.subarrays_per_mat = 16;
  g.mats_per_bank = 4;
  g.banks = 2;
  return g;
}

dram::DeviceStats run_build(core::MappingPolicy policy,
                            const std::vector<dna::Sequence>& reads,
                            std::size_t k) {
  dram::Device dev(bench_geometry());
  core::PimHashTable table(dev, 12, 0, policy);
  for (const auto& read : reads) {
    if (read.size() < k) continue;
    auto window = assembly::Kmer::from_sequence(read, 0, k);
    for (std::size_t i = 0;; ++i) {
      table.insert_or_increment(window);
      if (i + k >= read.size()) break;
      window = window.rolled(read.at(i + k));
    }
  }
  return dev.roll_up();
}

}  // namespace

int main() {
  dna::GenomeParams gp;
  gp.length = 3000;
  gp.repeat_count = 2;
  const auto genome = dna::generate_genome(gp);
  dna::ReadSamplerParams rp;
  rp.coverage = 8.0;
  rp.read_length = 80;
  const auto reads = dna::sample_reads(genome, rp);
  const std::size_t k = 16;

  const auto corr = run_build(core::MappingPolicy::kCorrelated, reads, k);
  const auto central =
      run_build(core::MappingPolicy::kCentralValues, reads, k);

  TextTable table("Ablation: correlated mapping vs central value array");
  table.set_header({"layout", "commands", "critical path (us)",
                    "energy (nJ)", "sub-arrays used"});
  auto add = [&](const char* name, const dram::DeviceStats& s) {
    table.add_row({name, std::to_string(s.commands),
                   TextTable::num(s.time_ns / 1000.0, 4),
                   TextTable::num(s.energy_pj / 1000.0, 4),
                   std::to_string(s.subarrays_used)});
  };
  add("correlated (paper Fig. 6)", corr);
  add("central values (naive)", central);
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\ncorrelated mapping shortens the critical path by %.2fx (counter "
      "updates stay local instead of serializing on one value array).\n",
      central.time_ns / corr.time_ns);
  return 0;
}
