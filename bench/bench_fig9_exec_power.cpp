// Reproduces paper Fig. 9: execution-time (a) and power (b) breakdown of
// the chr14 genome-assembly run (45,711,162 reads × 101 bp) for GPU,
// PIM-Assembler (P-A), Ambit, DRISA-3T1C (D3) and DRISA-1T1C (D1) at
// k ∈ {16, 22, 26, 32}, per pipeline stage (hashmap / deBruijn / traverse).
#include <cstdio>
#include <cstring>
#include <string>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/cost_model.hpp"
#include "platforms/presets.hpp"
#include "telemetry/session.hpp"

using namespace pima;

int main(int argc, char** argv) {
  // `--metrics-out=out.prom` (or `--metrics-out out.prom`) additionally
  // exports every projected figure through the shared metrics registry:
  // Prometheus text at the given path plus a JSON snapshot at <path>.json.
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-out=", 14) == 0)
      metrics_out = argv[i] + 14;
    else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc)
      metrics_out = argv[++i];
  }

  const auto apps = platforms::application_platforms();
  const std::size_t ks[] = {16, 22, 26, 32};

  TextTable exec("Fig. 9a: execution time breakdown (s)");
  exec.set_header({"k", "platform", "hashmap", "deBruijn", "traverse",
                   "total"});
  TextTable power("Fig. 9b: power consumption (W)");
  power.set_header({"k", "platform", "power"});

  auto& registry = telemetry::metrics();
  for (const auto k : ks) {
    core::WorkloadParams w;
    w.k = k;
    for (const auto& p : apps) {
      const auto cost = core::estimate_application(p, w);
      exec.add_row({std::to_string(k), p.name,
                    TextTable::num(cost.hashmap.time_s, 4),
                    TextTable::num(cost.debruijn.time_s, 4),
                    TextTable::num(cost.traverse.time_s, 4),
                    TextTable::num(cost.total_time_s, 4)});
      power.add_row({std::to_string(k), p.name,
                     TextTable::num(cost.avg_power_w, 4)});
      if (!metrics_out.empty()) {
        const telemetry::Labels base = {{"platform", p.name},
                                        {"k", std::to_string(k)}};
        const struct {
          const char* stage;
          double time_s;
        } stages[] = {{"hashmap", cost.hashmap.time_s},
                      {"debruijn", cost.debruijn.time_s},
                      {"traverse", cost.traverse.time_s}};
        for (const auto& s : stages) {
          telemetry::Labels labels = base;
          labels.emplace_back("stage", s.stage);
          registry
              .gauge("pima_fig9_stage_time_seconds",
                     "Projected per-stage execution time (Fig. 9a)", labels)
              .set(s.time_s);
        }
        registry
            .gauge("pima_fig9_total_time_seconds",
                   "Projected end-to-end execution time (Fig. 9a)", base)
            .set(cost.total_time_s);
        registry
            .gauge("pima_fig9_power_watts",
                   "Projected average power draw (Fig. 9b)", base)
            .set(cost.avg_power_w);
      }
    }
  }
  std::fputs(exec.render().c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(power.render().c_str(), stdout);

  // Paper-reported summary ratios.
  TextTable summary("\nSummary vs paper");
  summary.set_header({"claim", "paper", "measured"});
  std::vector<double> time_ratio_gpu, hash_ratio_by_k;
  std::vector<double> time_ratio_ambit, time_ratio_d3, time_ratio_d1;
  double pa_power_sum = 0.0, gpu_power_over_pa_sum = 0.0;
  for (const auto k : ks) {
    core::WorkloadParams w;
    w.k = k;
    const auto gpu = core::estimate_application(platforms::gpu_1080ti(), w);
    const auto pa = core::estimate_application(platforms::pim_assembler(), w);
    const auto am = core::estimate_application(platforms::ambit(), w);
    const auto d3 = core::estimate_application(platforms::drisa_3t1c(), w);
    const auto d1 = core::estimate_application(platforms::drisa_1t1c(), w);
    time_ratio_gpu.push_back(gpu.total_time_s / pa.total_time_s);
    time_ratio_ambit.push_back(am.total_time_s / pa.total_time_s);
    time_ratio_d3.push_back(d3.total_time_s / pa.total_time_s);
    time_ratio_d1.push_back(d1.total_time_s / pa.total_time_s);
    hash_ratio_by_k.push_back(gpu.hashmap.time_s / pa.hashmap.time_s);
    pa_power_sum += pa.avg_power_w;
    gpu_power_over_pa_sum += gpu.avg_power_w / pa.avg_power_w;
  }
  auto avg = [](const std::vector<double>& v) {
    double s = 0;
    for (const double x : v) s += x;
    return s / static_cast<double>(v.size());
  };
  summary.add_row({"exec time vs GPU (avg)", "~5x",
                   TextTable::num(avg(time_ratio_gpu), 3) + "x"});
  summary.add_row({"exec time vs Ambit (avg)", "2.9x",
                   TextTable::num(avg(time_ratio_ambit), 3) + "x"});
  summary.add_row({"exec time vs D3 (avg)", "2.5x",
                   TextTable::num(avg(time_ratio_d3), 3) + "x"});
  summary.add_row({"exec time vs D1 (avg)", "2.8x",
                   TextTable::num(avg(time_ratio_d1), 3) + "x"});
  summary.add_row({"hashmap speedup @k=16", "5.2x",
                   TextTable::num(hash_ratio_by_k.front(), 3) + "x"});
  summary.add_row({"hashmap speedup @k=32", "9.8x",
                   TextTable::num(hash_ratio_by_k.back(), 3) + "x"});
  summary.add_row({"P-A average power", "38.4 W",
                   TextTable::num(pa_power_sum / 4.0, 4) + " W"});
  summary.add_row({"power vs GPU", "~7.5x lower",
                   TextTable::num(gpu_power_over_pa_sum / 4.0, 3) +
                       "x lower"});
  std::fputs(summary.render().c_str(), stdout);

  if (!metrics_out.empty()) {
    telemetry::TelemetrySession::instance().write_metrics(metrics_out);
    std::fprintf(stderr, "metrics: %s (+ %s.json)\n", metrics_out.c_str(),
                 metrics_out.c_str());
  }
  return 0;
}
