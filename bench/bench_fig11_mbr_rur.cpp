// Reproduces paper Fig. 11: (a) Memory Bottleneck Ratio — the fraction of
// time computation waits on data and on-/off-chip transfer — and (b)
// Resource Utilization Ratio, for GPU, P-A, Ambit, D3 and D1 at k = 16 and
// k = 32.
#include <cstdio>

#include "common/table.hpp"
#include "core/cost_model.hpp"
#include "platforms/presets.hpp"

using namespace pima;

int main() {
  const auto apps = platforms::application_platforms();

  TextTable mbr("Fig. 11a: memory bottleneck ratio (%)");
  mbr.set_header({"platform", "k=16", "k=32"});
  TextTable rur("Fig. 11b: resource utilization ratio (%)");
  rur.set_header({"platform", "k=16", "k=32"});

  for (const auto& p : apps) {
    core::WorkloadParams w16, w32;
    w16.k = 16;
    w32.k = 32;
    const auto c16 = core::estimate_application(p, w16);
    const auto c32 = core::estimate_application(p, w32);
    mbr.add_row({p.name, TextTable::num(c16.mbr * 100, 3),
                 TextTable::num(c32.mbr * 100, 3)});
    rur.add_row({p.name, TextTable::num(c16.rur * 100, 3),
                 TextTable::num(c32.rur * 100, 3)});
  }
  std::fputs(mbr.render().c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(rur.render().c_str(), stdout);

  std::puts(
      "\npaper checkpoints: P-A MBR ~9% @k=16 and <16% @k=32; GPU MBR ~70% "
      "@k=32; P-A RUR up to ~65% @k=16; PIM RUR > 45%.");
  return 0;
}
