// Fault-tolerance sweep: assembly correctness and recovery overhead under
// Table-I process variation.
//
// For each variation level × recovery mode the full PIM pipeline assembles
// the same synthetic workload; the contig set is compared against the
// fault-free baseline and the recovery layer's latency/energy overhead is
// reported next to its FaultStats. `off` at high variation is allowed to
// fail outright (escaped probe faults can overflow a hash shard) — that row
// reports "failed", which is the point of the comparison.
//
// Usage: bench_fault_tolerance [--quick] [seed]
//   --quick  tiny workload + calibration (CI smoke); default is the full
//            sweep.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "dna/genome.hpp"
#include "runtime/recovery.hpp"

using namespace pima;

namespace {

std::vector<std::string> contig_strings(
    const std::vector<dna::Sequence>& contigs) {
  std::vector<std::string> out;
  out.reserve(contigs.size());
  for (const auto& c : contigs) out.push_back(c.to_string());
  std::sort(out.begin(), out.end());
  return out;
}

dram::Geometry bench_geometry() {
  dram::Geometry g;
  g.rows = 512;
  g.compute_rows = 8;
  g.columns = 256;
  g.subarrays_per_mat = 16;
  g.mats_per_bank = 2;
  g.banks = 1;
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::uint64_t seed = 2020;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0)
      quick = true;
    else
      seed = std::strtoull(argv[i], nullptr, 10);
  }

  // Workload: synthetic chromosome + reads, shared by every configuration.
  dna::GenomeParams gp;
  gp.length = quick ? 800 : 2'500;
  gp.repeat_count = 0;
  const auto genome = dna::generate_genome(gp);
  dna::ReadSamplerParams rp;
  rp.coverage = quick ? 6.0 : 8.0;
  rp.read_length = 70;
  const auto reads = dna::sample_reads(genome, rp);

  core::PipelineOptions base;
  base.k = 15;
  base.hash_shards = 8;
  base.threads = 1;

  std::printf("fault-tolerance sweep: %zu reads, k=%zu, seed=%llu%s\n",
              reads.size(), base.k, static_cast<unsigned long long>(seed),
              quick ? " (quick)" : "");

  // Fault-free baseline: reference contigs and reference cost.
  dram::Device baseline_dev(bench_geometry());
  const auto baseline = core::run_pipeline(baseline_dev, reads, base);
  const auto baseline_contigs = contig_strings(baseline.contigs);
  const auto baseline_total = baseline.total();
  std::printf("baseline: %zu contigs, %.1f us, %.1f nJ\n",
              baseline_contigs.size(), baseline_total.time_ns / 1e3,
              baseline_total.energy_pj / 1e3);

  const std::vector<double> levels =
      quick ? std::vector<double>{0.10, 0.20}
            : std::vector<double>{0.05, 0.10, 0.15, 0.20};
  const runtime::RecoveryMode modes[] = {runtime::RecoveryMode::kOff,
                                         runtime::RecoveryMode::kRetry,
                                         runtime::RecoveryMode::kVote};

  TextTable table("assembly under process variation (vs fault-free run)");
  table.set_header({"variation", "recovery", "contigs", "injected",
                    "detected", "retried", "escaped", "fallbacks",
                    "time +%", "energy +%"});
  for (const double level : levels) {
    for (const auto mode : modes) {
      core::PipelineOptions opt = base;
      opt.fault.variation = level;
      opt.fault.seed = seed;
      opt.fault.calibration_trials = quick ? 500 : 4000;
      opt.recovery.mode = mode;

      std::string contigs_cell;
      runtime::FaultStats fs;
      double time_overhead = 0.0, energy_overhead = 0.0;
      try {
        dram::Device dev(bench_geometry());
        const auto result = core::run_pipeline(dev, reads, opt);
        fs = result.fault_stats;
        const auto total = result.total();
        time_overhead =
            100.0 * (total.time_ns - baseline_total.time_ns) /
            baseline_total.time_ns;
        energy_overhead =
            100.0 * (total.energy_pj - baseline_total.energy_pj) /
            baseline_total.energy_pj;
        contigs_cell = contig_strings(result.contigs) == baseline_contigs
                           ? "identical"
                           : "DIVERGED";
      } catch (const std::exception&) {
        // Unprotected escapes corrupted the table beyond recovery — the
        // pipeline died. Graceful degradation exists to prevent this.
        contigs_cell = "failed";
      }
      table.add_row({"±" + TextTable::num(level * 100, 3) + "%",
                     std::string(runtime::to_string(mode)), contigs_cell,
                     std::to_string(fs.injected), std::to_string(fs.detected),
                     std::to_string(fs.retried), std::to_string(fs.escaped),
                     std::to_string(fs.host_fallbacks),
                     TextTable::num(time_overhead, 3),
                     TextTable::num(energy_overhead, 3)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nstructural check: retry keeps the contig set identical to the "
      "fault-free run while off lets faults escape into the assembly "
      "(or kill it) as variation grows.");
  return 0;
}
