// The paper's chr14 experiment, scaled: assembles a scaled synthetic
// chromosome functionally at every paper k (16/22/26/32), then projects
// the measured per-query workload profile to the full chr14 configuration
// (45,711,162 reads x 101 bp) with the calibrated cost model, reporting
// the GPU-vs-P-A comparison the paper's Fig. 9 makes.
#include <cstdio>

#include "assembly/assembler.hpp"
#include "assembly/verify.hpp"
#include "common/table.hpp"
#include "core/cost_model.hpp"
#include "dna/genome.hpp"
#include "platforms/presets.hpp"

int main() {
  using namespace pima;

  // Scaled chromosome: 50 kb with Alu-like repeats, human GC content.
  dna::GenomeParams gp;
  gp.length = 50'000;
  gp.gc_content = 0.41;
  gp.repeat_count = 12;
  gp.repeat_length = 300;
  const auto genome = dna::generate_genome(gp);
  dna::ReadSamplerParams rp;
  rp.read_length = 101;
  rp.coverage = 20.0;
  const auto reads = dna::sample_reads(genome, rp);
  std::printf("scaled chr14 stand-in: %zu bp, %zu reads x 101 bp\n\n",
              genome.size(), reads.size());

  TextTable func("functional assembly across the paper's k sweep");
  func.set_header({"k", "distinct k-mers", "contigs", "N50 (bp)",
                   "ref coverage", "hash compares/query"});
  for (const std::size_t k : {16u, 22u, 26u, 32u}) {
    assembly::AssemblyOptions opt;
    opt.k = k;
    const auto result = assembly::assemble(reads, opt);
    const auto report =
        assembly::verify_contigs(genome, result.contigs, 2 * k);
    const double compares_per_query =
        static_cast<double>(result.ops.hash.comparisons) /
        static_cast<double>(result.ops.kmers_processed);
    func.add_row({std::to_string(k), std::to_string(result.distinct_kmers),
                  std::to_string(result.stats.count),
                  std::to_string(result.stats.n50),
                  TextTable::num(100.0 * report.reference_coverage, 4) + "%",
                  TextTable::num(compares_per_query, 3)});
  }
  std::fputs(func.render().c_str(), stdout);

  // Full-scale projection (paper Fig. 9 configuration).
  TextTable proj("\nfull chr14 projection: GPU vs PIM-Assembler");
  proj.set_header({"k", "GPU time (s)", "P-A time (s)", "speedup",
                   "GPU power (W)", "P-A power (W)"});
  for (const std::size_t k : {16u, 22u, 26u, 32u}) {
    core::WorkloadParams w;
    w.k = k;
    const auto gpu = core::estimate_application(platforms::gpu_1080ti(), w);
    const auto pa = core::estimate_application(platforms::pim_assembler(), w);
    proj.add_row({std::to_string(k), TextTable::num(gpu.total_time_s, 4),
                  TextTable::num(pa.total_time_s, 4),
                  TextTable::num(gpu.total_time_s / pa.total_time_s, 3) + "x",
                  TextTable::num(gpu.avg_power_w, 4),
                  TextTable::num(pa.avg_power_w, 4)});
  }
  std::fputs(proj.render().c_str(), stdout);
  return 0;
}
