// Runs the full PIM-Assembler pipeline on the bit-accurate DRAM simulator:
// reads are chopped into k-mers, counted in in-memory hash shards with the
// single-cycle row comparator, the de Bruijn graph is built and traversed
// with in-memory degree computation, and the resulting contigs are checked
// against the reference. Per-stage command/time/energy statistics come
// straight from the simulated sub-arrays.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "assembly/verify.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "dna/genome.hpp"
#include "telemetry/session.hpp"

int main(int argc, char** argv) {
  using namespace pima;

  // Telemetry and sharding flags (`--trace-json=out.json`,
  // `--metrics-out=out.prom`, `--progress[=seconds]`, `--devices=N`,
  // `--isolate`) are peeled off before the positional arguments below are
  // interpreted, so they can appear anywhere on the line.
  auto& session = telemetry::TelemetrySession::instance();
  std::string trace_json, metrics_out;
  double progress_interval_s = 0.0;
  std::size_t devices = 1;
  bool isolate = false;
  std::vector<char*> positional;
  for (int i = 0; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--trace-json=", 13) == 0) {
      trace_json = a + 13;
    } else if (std::strncmp(a, "--metrics-out=", 14) == 0) {
      metrics_out = a + 14;
    } else if (std::strncmp(a, "--progress=", 11) == 0) {
      progress_interval_s = std::strtod(a + 11, nullptr);
    } else if (std::strcmp(a, "--progress") == 0) {
      progress_interval_s = 1.0;
    } else if (std::strncmp(a, "--devices=", 10) == 0) {
      devices = static_cast<std::size_t>(std::strtoul(a + 10, nullptr, 10));
    } else if (std::strcmp(a, "--isolate") == 0) {
      isolate = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(positional.size());
  argv = positional.data();
  if (!trace_json.empty()) {
    session.set_trace_path(trace_json);
    session.tracer().enable();
  }
  if (!metrics_out.empty()) session.set_metrics_path(metrics_out);
  if (!metrics_out.empty() || progress_interval_s > 0.0)
    session.enable_metrics();

  // Synthetic 3 kb chromosome and 8x read set.
  dna::GenomeParams gp;
  gp.length = 3'000;
  gp.repeat_count = 2;
  gp.repeat_length = 100;
  const auto genome = dna::generate_genome(gp);
  dna::ReadSamplerParams rp;
  rp.coverage = 8.0;
  rp.read_length = 101;
  const auto reads = dna::sample_reads(genome, rp);

  // A small PIM device: 2 banks x 4 MATs x 16 sub-arrays of 512x256.
  dram::Geometry geom;
  geom.rows = 512;
  geom.compute_rows = 8;
  geom.columns = 256;
  geom.subarrays_per_mat = 16;
  geom.mats_per_bank = 4;
  geom.banks = 2;
  dram::Device device(geom);

  core::PipelineOptions options;
  options.k = 17;
  options.hash_shards = 16;
  options.euler_contigs = false;  // unitigs: exact across repeats
  // Usage: `pim_assembly [threads [fault-variation [recovery [fault-seed
  //                        [checkpoint-dir [resume]]]]]]`
  // threads 0 = hardware concurrency; the output is bit-identical for every
  // choice. fault-variation is the ±% of paper Table I (0.10 = ±10%);
  // recovery is off/retry/vote. A checkpoint-dir makes the pipeline snapshot
  // after every stage; resume=1 skips the stages an existing snapshot
  // already covers (fault-free runs only).
  options.threads =
      argc > 1 ? static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10))
               : 0;
  if (argc > 2) options.fault.variation = std::strtod(argv[2], nullptr);
  if (argc > 3) {
    const auto mode = runtime::parse_recovery_mode(argv[3]);
    if (!mode) {
      std::fprintf(stderr, "unknown recovery mode '%s' (off|retry|vote)\n",
                   argv[3]);
      return 2;
    }
    options.recovery.mode = *mode;
  }
  if (argc > 4)
    options.fault.seed = std::strtoull(argv[4], nullptr, 10);
  if (argc > 5) options.checkpoint_dir = argv[5];
  if (argc > 6) options.resume = std::strtoul(argv[6], nullptr, 10) != 0;
  options.progress_interval_s = progress_interval_s;
  // `--devices=N` shards the run over N simulated devices; `--isolate`
  // additionally moves each shard into its own pima_devd worker process
  // under the crash-containing supervisor. Output is bit-identical either
  // way (and for any N), so the flags compose with every positional knob.
  options.devices = devices == 0 ? 1 : devices;
  options.isolate = isolate;
  const auto result = core::run_pipeline(device, reads, options);
  if (!trace_json.empty() || !metrics_out.empty()) {
    session.tracer().disable();
    session.flush();
    std::fprintf(stderr, "telemetry: wrote%s%s%s%s\n",
                 trace_json.empty() ? "" : " ",
                 trace_json.c_str(),
                 metrics_out.empty() ? "" : " ",
                 metrics_out.c_str());
  }

  std::printf("PIM-Assembler functional run (%zu reads, k=%zu, threads=%zu)\n",
              reads.size(), options.k, options.threads);
  if (options.fault.enabled() ||
      options.recovery.mode != runtime::RecoveryMode::kOff) {
    const auto& fs = result.fault_stats;
    // Echo of the stochastic inputs first, so runs are reproducible.
    std::printf(
        "fault model: variation=±%.0f%%  seed=%llu  recovery=%s\n"
        "fault stats: injected=%zu detected=%zu retried=%zu remapped=%zu "
        "host-fallback=%zu escaped=%zu\n",
        100.0 * options.fault.variation,
        static_cast<unsigned long long>(options.fault.seed),
        runtime::to_string(options.recovery.mode), fs.injected, fs.detected,
        fs.retried, fs.remapped, fs.host_fallbacks, fs.escaped);
  }
  std::printf("distinct k-mers: %zu   graph: %zu nodes / %zu edges\n\n",
              result.distinct_kmers, result.graph_nodes, result.graph_edges);

  TextTable table("per-stage simulated cost");
  table.set_header({"stage", "commands", "time (us)", "energy (nJ)",
                    "sub-arrays", "dyn. power (W)"});
  for (const auto* stage :
       {&result.hashmap, &result.debruijn, &result.traverse}) {
    const auto& d = stage->device;
    table.add_row({stage->name, std::to_string(d.commands),
                   TextTable::num(d.time_ns / 1e3, 4),
                   TextTable::num(d.energy_pj / 1e3, 4),
                   std::to_string(d.subarrays_used),
                   TextTable::num(d.dynamic_power_w(), 3)});
  }
  const auto total = result.total();
  table.add_row({"total", std::to_string(total.commands),
                 TextTable::num(total.time_ns / 1e3, 4),
                 TextTable::num(total.energy_pj / 1e3, 4),
                 std::to_string(total.subarrays_used),
                 TextTable::num(total.dynamic_power_w(), 3)});
  std::fputs(table.render().c_str(), stdout);

  const auto report =
      assembly::verify_contigs(genome, result.contigs, 2 * options.k);
  std::printf(
      "\ncontigs: %zu (N50 %zu bp) — %zu/%zu verified, %.1f%% reference "
      "coverage\n",
      result.contig_stats.count, result.contig_stats.n50,
      report.contigs_matching, report.contigs_checked,
      100.0 * report.reference_coverage);
  return report.all_match() ? 0 : 1;
}
