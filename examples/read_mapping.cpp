// Read mapping on the PIM substrate: assemble contigs from one read set,
// then align a fresh read set back onto the assembly entirely in memory
// (seed on the controller, verify with single-cycle row compares + DPU
// Hamming popcount). This is the short-read-alignment workload class the
// paper's introduction contrasts against (AlignS et al.), served by the
// same PIM-Assembler hardware.
#include <cstdio>

#include "assembly/assembler.hpp"
#include "common/table.hpp"
#include "core/pim_aligner.hpp"
#include "dna/genome.hpp"

int main() {
  using namespace pima;

  // Genome and assembly (software reference pipeline, unitig contigs).
  dna::GenomeParams gp;
  gp.length = 20'000;
  gp.repeat_count = 3;
  gp.repeat_length = 150;
  const auto genome = dna::generate_genome(gp);
  dna::ReadSamplerParams rp;
  rp.coverage = 15.0;
  rp.read_length = 101;
  const auto assembly_reads = dna::sample_reads(genome, rp);
  assembly::AssemblyOptions opt;
  opt.k = 25;
  opt.euler_contigs = false;
  const auto result = assembly::assemble(assembly_reads, opt);
  std::printf("assembled %zu contigs (N50 %zu bp) from %zu reads\n",
              result.stats.count, result.stats.n50, assembly_reads.size());

  // Load the longest contig into the PIM aligner.
  std::size_t best = 0;
  for (std::size_t i = 0; i < result.contigs.size(); ++i)
    if (result.contigs[i].size() > result.contigs[best].size()) best = i;
  const auto& contig = result.contigs[best];

  dram::Geometry geom;
  geom.rows = 512;
  geom.compute_rows = 8;
  geom.columns = 256;
  geom.subarrays_per_mat = 16;
  geom.mats_per_bank = 4;
  geom.banks = 2;
  dram::Device device(geom);
  core::PimAligner aligner(device, contig);
  std::printf("reference contig: %zu bp in %zu window rows (%zu sub-arrays)\n",
              contig.size(), aligner.window_count(),
              aligner.subarrays_used());

  // Fresh reads (different seed, both strands, 0.5% errors).
  dna::ReadSamplerParams qp;
  qp.read_count = 400;
  qp.read_length = 100;
  qp.error_rate = 0.005;
  qp.both_strands = true;
  qp.seed = 777;
  const auto queries = dna::sample_reads(genome, qp);

  device.clear_stats();
  std::size_t mapped = 0, reverse_hits = 0, with_mismatches = 0;
  for (const auto& read : queries) {
    const auto hit = aligner.align(read);
    if (!hit) continue;
    ++mapped;
    if (hit->reverse) ++reverse_hits;
    if (hit->mismatches > 0) ++with_mismatches;
  }
  const auto stats = device.roll_up();

  TextTable table("in-memory read mapping");
  table.set_header({"metric", "value"});
  table.add_row({"queries", std::to_string(queries.size())});
  table.add_row({"mapped to contig", std::to_string(mapped)});
  table.add_row({"reverse-strand hits", std::to_string(reverse_hits)});
  table.add_row({"hits with mismatches", std::to_string(with_mismatches)});
  table.add_row({"PIM commands", std::to_string(stats.commands)});
  table.add_row({"simulated time", TextTable::num(stats.time_ns / 1e3, 4) +
                                       " us"});
  table.add_row({"energy", TextTable::num(stats.energy_pj / 1e3, 4) + " nJ"});
  std::fputs(table.render().c_str(), stdout);

  // Reads sampled outside the chosen contig legitimately miss; the mapped
  // fraction should roughly match the contig's share of the genome.
  const double contig_share =
      static_cast<double>(contig.size()) / static_cast<double>(genome.size());
  std::printf("\nmapped fraction %.2f vs contig share of genome %.2f\n",
              static_cast<double>(mapped) /
                  static_cast<double>(queries.size()),
              contig_share);
  return mapped > 0 ? 0 : 1;
}
