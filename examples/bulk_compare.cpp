// Drives the DRAM substrate directly: stores a batch of 128 bp DNA
// fragments in a computational sub-array and finds which of them match a
// query fragment using the paper's PIM_XNOR flow — RowClone staging,
// single-cycle two-row XNOR, and the MAT-level DPU AND-reduction — then
// reports the exact AAP command mix, latency and energy the operation
// cost, next to what the same scan would cost with Ambit-style 7-cycle
// XNOR (platform model).
#include <cstdio>

#include "common/table.hpp"
#include "dna/genome.hpp"
#include "dram/device.hpp"
#include "dram/dpu.hpp"
#include "platforms/presets.hpp"

int main() {
  using namespace pima;

  dram::Geometry geom;  // one paper-shaped sub-array
  geom.rows = 1024;
  geom.compute_rows = 8;
  geom.columns = 256;
  geom.subarrays_per_mat = 1;
  geom.mats_per_bank = 1;
  geom.banks = 1;
  dram::Device device(geom);
  dram::Subarray& sa = device.subarray(0);

  // Fill 64 data rows with random 128 bp fragments.
  dna::GenomeParams gp;
  gp.length = 128 * 64;
  gp.repeat_count = 0;
  const auto pool = dna::generate_genome(gp);
  constexpr std::size_t kFragments = 64;
  for (std::size_t r = 0; r < kFragments; ++r)
    sa.write_row(r, pool.to_bits(r * 128, 128));

  // Query = fragment 17 (so exactly one row must match).
  const auto query = pool.subseq(17 * 128, 128);
  const dram::RowAddr temp = 100;
  sa.write_row(temp, query.to_bits(0, 128));
  sa.clear_stats();

  std::size_t matches = 0, match_row = 0;
  for (std::size_t r = 0; r < kFragments; ++r) {
    sa.compare_rows(temp, r, sa.compute_row(3));
    if (dram::Dpu::and_reduce(sa, sa.compute_row(3), 256)) {
      ++matches;
      match_row = r;
    }
  }
  std::printf("scanned %zu fragments, %zu match (row %zu)\n\n", kFragments,
              matches, match_row);

  const auto& st = sa.stats();
  TextTable table("PIM_XNOR scan cost (bit-accurate simulation)");
  table.set_header({"metric", "value"});
  table.add_row({"AAP copies (staging)",
                 std::to_string(st.counts[static_cast<std::size_t>(
                     dram::CommandKind::kAapCopy)])});
  table.add_row({"two-row XNOR cycles",
                 std::to_string(st.counts[static_cast<std::size_t>(
                     dram::CommandKind::kAapTwoRow)])});
  table.add_row({"DPU reductions",
                 std::to_string(st.counts[static_cast<std::size_t>(
                     dram::CommandKind::kDpuReduce)])});
  table.add_row({"latency", TextTable::num(st.busy_ns / 1e3, 4) + " us"});
  table.add_row({"energy", TextTable::num(st.energy_pj / 1e3, 4) + " nJ"});
  std::fputs(table.render().c_str(), stdout);

  // The same scan under Ambit's 7-cycle X(N)OR (per-row cycles from the
  // platform model), for contrast.
  const auto ambit = platforms::ambit();
  const auto pa = platforms::pim_assembler();
  const double pa_cycles = kFragments * (pa.xnor_cycles + 1.0);
  const double ambit_cycles = kFragments * (ambit.xnor_cycles +
                                            ambit.pim_aux_cycles + 1.0);
  std::printf(
      "\nplatform-model contrast: P-A %.0f row cycles vs Ambit-style %.0f "
      "(%.2fx) for the same scan\n",
      pa_cycles, ambit_cycles, ambit_cycles / pa_cycles);
  return matches == 1 ? 0 : 1;
}
