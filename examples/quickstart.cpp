// Quickstart: generate a synthetic genome, sample short reads, assemble
// them with the software reference pipeline, and verify the contigs
// against the ground truth. This exercises the public API end to end in
// ~40 lines; see pim_assembly.cpp for the same flow on the simulated
// PIM-Assembler hardware.
#include <cstdio>

#include "assembly/assembler.hpp"
#include "assembly/verify.hpp"
#include "dna/genome.hpp"

int main() {
  using namespace pima;

  // 1. A 10 kb synthetic chromosome (human-like GC content, a few repeats).
  dna::GenomeParams genome_params;
  genome_params.length = 10'000;
  genome_params.gc_content = 0.42;
  genome_params.repeat_count = 4;
  genome_params.repeat_length = 150;
  const dna::Sequence genome = dna::generate_genome(genome_params);
  std::printf("genome: %zu bp, GC = %.1f%%\n", genome.size(),
              100.0 * dna::gc_fraction(genome));

  // 2. Sample 101 bp reads at 15x coverage (the paper's read length).
  dna::ReadSamplerParams read_params;
  read_params.read_length = 101;
  read_params.coverage = 15.0;
  const auto reads = dna::sample_reads(genome, read_params);
  std::printf("reads:  %zu x %zu bp (%.0fx coverage)\n", reads.size(),
              read_params.read_length, read_params.coverage);

  // 3. Assemble: k-mer analysis -> de Bruijn graph -> traversal. Unitig
  // contigs stop at repeat junctions and therefore verify exactly; set
  // euler_contigs = true for the paper's Euler-path traversal (which can
  // spell chimeric joins across repeats).
  assembly::AssemblyOptions options;
  options.k = 25;
  options.euler_contigs = false;
  const auto result = assembly::assemble(reads, options);
  std::printf(
      "assembly: %zu distinct %zu-mers, %zu graph nodes, %zu edges\n",
      result.distinct_kmers, options.k, result.graph_nodes,
      result.graph_edges);
  std::printf(
      "contigs: %zu pieces, N50 = %zu bp, longest = %zu bp, total = %zu "
      "bp\n",
      result.stats.count, result.stats.n50, result.stats.longest,
      result.stats.total_length);

  // 4. Verify against the ground truth.
  const auto report =
      assembly::verify_contigs(genome, result.contigs, 2 * options.k);
  std::printf("verify: %zu/%zu contigs match, %.1f%% of reference covered\n",
              report.contigs_matching, report.contigs_checked,
              100.0 * report.reference_coverage);
  return report.all_match() ? 0 : 1;
}
