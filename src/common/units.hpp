// Unit conventions used across the simulator.
//
// All quantities are carried as doubles in fixed base units with suffixed
// variable/field names rather than wrapper types (the models do a lot of
// arithmetic that wrapper types would only obscure):
//   time    — nanoseconds   (ns)
//   energy  — picojoules    (pJ)
//   power   — watts         (W)
//   area    — square micrometers (um2)
//   voltage — volts         (V)
//   capacitance — femtofarads (fF)
// The helpers below convert between those base units and human-facing ones.
#pragma once

namespace pima {

constexpr double ns_to_s(double ns) { return ns * 1e-9; }
constexpr double s_to_ns(double s) { return s * 1e9; }
constexpr double pj_to_j(double pj) { return pj * 1e-12; }
constexpr double j_to_pj(double j) { return j * 1e12; }

/// Average power in watts from energy (pJ) over time (ns).
constexpr double power_watts(double energy_pj, double time_ns) {
  return time_ns > 0.0 ? (energy_pj * 1e-12) / (time_ns * 1e-9) : 0.0;
}

/// Throughput in operations/second from an op count over time (ns).
constexpr double ops_per_second(double ops, double time_ns) {
  return time_ns > 0.0 ? ops / (time_ns * 1e-9) : 0.0;
}

constexpr double GIGA = 1e9;
constexpr double MEGA = 1e6;
constexpr double KILO = 1e3;

}  // namespace pima
