#include "common/bitvector.hpp"

#include <bit>

namespace pima {

BitVector BitVector::from_string(const std::string& bits) {
  BitVector v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    PIMA_CHECK(bits[i] == '0' || bits[i] == '1', "expected 0/1 string");
    v.set(i, bits[i] == '1');
  }
  return v;
}

void BitVector::fill(bool v) {
  const std::uint64_t pattern = v ? ~std::uint64_t{0} : 0;
  for (auto& w : words_) w = pattern;
  clear_tail();
}

std::size_t BitVector::popcount() const {
  std::size_t n = 0;
  for (const auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool BitVector::all() const { return popcount() == size_; }

void BitVector::set_word(std::size_t w, std::uint64_t v) {
  PIMA_CHECK(w < words_.size(), "word index out of range");
  words_[w] = v;
  if (w + 1 == words_.size()) clear_tail();
}

void BitVector::copy_range_from(const BitVector& src, std::size_t lo) {
  PIMA_CHECK(lo + src.size() <= size_, "range copy overflows destination");
  for (std::size_t i = 0; i < src.size(); ++i) set(lo + i, src.get(i));
}

BitVector BitVector::slice(std::size_t lo, std::size_t len) const {
  PIMA_CHECK(lo + len <= size_, "slice out of range");
  BitVector out(len);
  for (std::size_t i = 0; i < len; ++i) out.set(i, get(lo + i));
  return out;
}

std::string BitVector::to_string() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i)
    if (get(i)) s[i] = '1';
  return s;
}

void BitVector::clear_tail() {
  const std::size_t rem = size_ % 64;
  if (rem != 0 && !words_.empty())
    words_.back() &= (std::uint64_t{1} << rem) - 1;
}

void BitVector::check_same_size(const BitVector& a, const BitVector& b) {
  PIMA_CHECK(a.size() == b.size(), "bulk logic operands differ in size");
}

BitVector BitVector::bit_xnor(const BitVector& a, const BitVector& b) {
  check_same_size(a, b);
  BitVector r(a.size());
  for (std::size_t w = 0; w < r.words_.size(); ++w)
    r.words_[w] = ~(a.words_[w] ^ b.words_[w]);
  r.clear_tail();
  return r;
}

BitVector BitVector::bit_xor(const BitVector& a, const BitVector& b) {
  check_same_size(a, b);
  BitVector r(a.size());
  for (std::size_t w = 0; w < r.words_.size(); ++w)
    r.words_[w] = a.words_[w] ^ b.words_[w];
  return r;
}

BitVector BitVector::bit_and(const BitVector& a, const BitVector& b) {
  check_same_size(a, b);
  BitVector r(a.size());
  for (std::size_t w = 0; w < r.words_.size(); ++w)
    r.words_[w] = a.words_[w] & b.words_[w];
  return r;
}

BitVector BitVector::bit_or(const BitVector& a, const BitVector& b) {
  check_same_size(a, b);
  BitVector r(a.size());
  for (std::size_t w = 0; w < r.words_.size(); ++w)
    r.words_[w] = a.words_[w] | b.words_[w];
  return r;
}

BitVector BitVector::bit_not(const BitVector& a) {
  BitVector r(a.size());
  for (std::size_t w = 0; w < r.words_.size(); ++w) r.words_[w] = ~a.words_[w];
  r.clear_tail();
  return r;
}

BitVector BitVector::bit_maj3(const BitVector& a, const BitVector& b,
                              const BitVector& c) {
  check_same_size(a, b);
  check_same_size(b, c);
  BitVector r(a.size());
  for (std::size_t w = 0; w < r.words_.size(); ++w) {
    const auto x = a.words_[w], y = b.words_[w], z = c.words_[w];
    r.words_[w] = (x & y) | (y & z) | (x & z);
  }
  return r;
}

}  // namespace pima
