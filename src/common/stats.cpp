#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace pima {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  PIMA_CHECK(bins > 0, "histogram needs at least one bin");
  PIMA_CHECK(hi > lo, "histogram range must be non-empty");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_low(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t bin) const { return bin_low(bin + 1); }

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    char line[64];
    std::snprintf(line, sizeof line, "[%8.3g, %8.3g) ", bin_low(b), bin_high(b));
    out += line;
    const auto bar = counts_[b] * width / peak;
    out.append(bar, '#');
    out += " " + std::to_string(counts_[b]) + "\n";
  }
  return out;
}

double geometric_mean(const std::vector<double>& values) {
  PIMA_CHECK(!values.empty(), "geometric mean of empty set");
  double log_sum = 0.0;
  for (const double v : values) {
    PIMA_CHECK(v > 0.0, "geometric mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace pima
