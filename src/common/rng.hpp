// Deterministic pseudo-random number generation.
//
// All stochastic parts of the simulator (synthetic genomes, read sampling,
// Monte-Carlo process variation) draw from this xoshiro256** generator so
// that every experiment is reproducible from a single seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

#include "common/error.hpp"

namespace pima {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t x = seed;
    for (auto& s : state_) s = splitmix64(x);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0. Uses rejection to avoid modulo bias.
  std::uint64_t uniform(std::uint64_t n) {
    PIMA_CHECK(n > 0, "uniform(0) is ill-defined");
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform double in [0, 1).
  double uniform_real() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Standard normal via Box–Muller (no state caching; simple and exact).
  double gaussian() {
    double u1 = uniform_real();
    while (u1 <= 0.0) u1 = uniform_real();
    const double u2 = uniform_real();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Normal with given mean and standard deviation.
  double gaussian(double mean, double sigma) {
    return mean + sigma * gaussian();
  }

  /// Bernoulli(p).
  bool bernoulli(double p) { return uniform_real() < p; }

  /// Derives an independent stream for a sub-task (stable fork).
  Rng fork(std::uint64_t stream_id) {
    return Rng(state_[0] ^ (0xbf58476d1ce4e5b9ull * (stream_id + 1)));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static std::uint64_t splitmix64(std::uint64_t& x) {
    std::uint64_t z = (x += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  std::uint64_t state_[4] = {};
};

}  // namespace pima
