#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace pima {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  PIMA_CHECK(header_.empty() || row.size() == header_.size(),
             "row width differs from header width");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out = "== " + title_ + " ==\n";
  if (!header_.empty()) {
    out += emit_row(header_);
    std::size_t rule = 0;
    for (const auto w : widths) rule += w + 2;
    out.append(rule > 2 ? rule - 2 : rule, '-');
    out += "\n";
  }
  for (const auto& r : rows_) out += emit_row(r);
  return out;
}

}  // namespace pima
