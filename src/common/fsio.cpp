#include "common/fsio.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string_view>

#include "common/error.hpp"

namespace pima::fsio {

namespace {

// ---- counters --------------------------------------------------------------

struct AtomicCounters {
  std::atomic<std::uint64_t> injected_total{0};
  std::atomic<std::uint64_t> errno_injected{0};
  std::atomic<std::uint64_t> eintr_injected{0};
  std::atomic<std::uint64_t> short_injected{0};
  std::atomic<std::uint64_t> crash_points{0};
  std::atomic<std::uint64_t> dirsync_failed{0};
};

AtomicCounters& counter_state() {
  static AtomicCounters c;
  return c;
}

void count_decision(const FaultPlan::Decision& d) {
  auto& c = counter_state();
  c.injected_total.fetch_add(1, std::memory_order_relaxed);
  switch (d.kind) {
    case FaultPlan::Decision::Kind::kErrno:
      if (d.err == EINTR)
        c.eintr_injected.fetch_add(1, std::memory_order_relaxed);
      else
        c.errno_injected.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultPlan::Decision::Kind::kShort:
      c.short_injected.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultPlan::Decision::Kind::kCrash:
      c.crash_points.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultPlan::Decision::Kind::kNone: break;
  }
}

// ---- spec parsing ----------------------------------------------------------

[[noreturn]] void bad_spec(const std::string& token, const std::string& why) {
  throw InputFormatError("PIMA_IOFAULT: bad token '" + token + "': " + why);
}

Op parse_op(const std::string& name) {
  if (name == "open") return Op::kOpen;
  if (name == "read") return Op::kRead;
  if (name == "write") return Op::kWrite;
  if (name == "fsync") return Op::kFsync;
  if (name == "rename") return Op::kRename;
  if (name == "unlink") return Op::kUnlink;
  if (name == "send") return Op::kSend;
  if (name == "recv") return Op::kRecv;
  if (name == "connect") return Op::kConnect;
  if (name == "socketpair") return Op::kSocketpair;
  if (name == "waitpid") return Op::kWaitpid;
  if (name == "kill") return Op::kKill;
  if (name == "*") return Op::kAny;
  bad_spec(name,
           "unknown op (open|read|write|fsync|rename|unlink|send|recv|"
           "connect|socketpair|waitpid|kill|*)");
}

int parse_errno_name(const std::string& name) {
  struct Entry {
    const char* name;
    int value;
  };
  static constexpr Entry kTable[] = {
      {"ENOSPC", ENOSPC},       {"EIO", EIO},
      {"EINTR", EINTR},         {"EPIPE", EPIPE},
      {"ECONNREFUSED", ECONNREFUSED},
      {"ECONNRESET", ECONNRESET},
      {"ENOENT", ENOENT},       {"EACCES", EACCES},
      {"EBADF", EBADF},         {"EMFILE", EMFILE},
      {"ETIMEDOUT", ETIMEDOUT}, {"EAGAIN", EAGAIN},
      {"EDQUOT", EDQUOT},       {"EROFS", EROFS},
  };
  for (const auto& e : kTable)
    if (name == e.name) return e.value;
  bad_spec(name, "unknown errno name");
}

std::uint64_t parse_u64(const std::string& token, const std::string& value) {
  std::size_t pos = 0;
  unsigned long long n = 0;
  try {
    n = std::stoull(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != value.size() || value.empty()) bad_spec(token, "expected an integer");
  return static_cast<std::uint64_t>(n);
}

double parse_probability(const std::string& token, const std::string& value) {
  std::size_t pos = 0;
  double p = 0.0;
  try {
    p = std::stod(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != value.size() || !(p >= 0.0) || !(p <= 1.0))
    bad_spec(token, "expected a probability in [0, 1]");
  return p;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const auto end = s.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, end - start));
    start = end + 1;
  }
}

// splitmix64: tiny, seedable, and stateful enough for per-call coin flips.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// ---- diagnostics hook ------------------------------------------------------

std::atomic<LogFn> g_log_fn{nullptr};

// ---- global plan -----------------------------------------------------------

std::atomic<FaultPlan*> g_plan{nullptr};

// Set once the environment has been consulted — by load_env_plan() from a
// tool's main(), or by active_plan()'s lazy fallback — so the plan is
// parsed, installed, and announced exactly once per process.
std::atomic<bool> g_env_consulted{false};

void install_env_plan_or_die() {
  if (g_env_consulted.exchange(true, std::memory_order_acq_rel)) return;
  const char* spec = std::getenv("PIMA_IOFAULT");
  if (spec == nullptr || spec[0] == '\0') return;
  try {
    install_plan(FaultPlan::parse(spec));
    emit_log(LogSeverity::kInfo, "iofault.active",
             (std::string("I/O fault injection ACTIVE (PIMA_IOFAULT=") +
              spec + ")")
                 .c_str());
  } catch (const std::exception& e) {
    // Surfacing a typed error from an arbitrary syscall wrapper would hand
    // callers an exception they never expected from write(2); fail the
    // whole process loudly instead. Tools that want the typed path call
    // load_env_plan() from main() first.
    emit_log(LogSeverity::kError, "iofault.bad_plan", e.what());
    std::exit(2);
  }
}

FaultPlan* active_plan() {
  // One guarded init ever; afterwards this is a flag check plus a relaxed
  // atomic load — the "no plan" passthrough cost.
  static const bool env_loaded = [] {
    install_env_plan_or_die();
    return true;
  }();
  (void)env_loaded;
  return g_plan.load(std::memory_order_acquire);
}

[[noreturn]] void crash_now() {
  counter_state().crash_points.fetch_add(1, std::memory_order_relaxed);
  counter_state().injected_total.fetch_add(1, std::memory_order_relaxed);
  // No atexit handlers, no stream flushes, no destructors: the closest
  // portable stand-in for SIGKILL-at-this-instruction.
  std::_Exit(kCrashExitCode);
}

}  // namespace

// ---- FaultPlan -------------------------------------------------------------

struct FaultPlan::Impl {
  std::mutex mutex;
};

const char* to_string(Op op) {
  switch (op) {
    case Op::kOpen: return "open";
    case Op::kRead: return "read";
    case Op::kWrite: return "write";
    case Op::kFsync: return "fsync";
    case Op::kRename: return "rename";
    case Op::kUnlink: return "unlink";
    case Op::kSend: return "send";
    case Op::kRecv: return "recv";
    case Op::kConnect: return "connect";
    case Op::kSocketpair: return "socketpair";
    case Op::kWaitpid: return "waitpid";
    case Op::kKill: return "kill";
    case Op::kAny: return "*";
  }
  return "?";
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  plan.spec_ = spec;
  plan.impl_ = std::make_shared<Impl>();
  for (const std::string& raw : split(spec, ';')) {
    if (raw.empty()) continue;
    if (raw.rfind("seed=", 0) == 0) {
      plan.seed_ = parse_u64(raw, raw.substr(5));
      continue;
    }
    const auto fields = split(raw, ':');
    if (fields.size() != 3)
      bad_spec(raw, "expected op[@site]:trigger:action");
    Rule rule;
    // op[@site]
    const auto at = fields[0].find('@');
    rule.op = parse_op(fields[0].substr(0, at));
    if (at != std::string::npos) rule.site = fields[0].substr(at + 1);
    // trigger
    const std::string& trigger = fields[1];
    if (trigger.rfind("nth=", 0) == 0) {
      rule.nth = parse_u64(trigger, trigger.substr(4));
      if (rule.nth == 0) bad_spec(trigger, "nth is 1-based");
    } else if (trigger.rfind("p=", 0) == 0) {
      rule.probability = parse_probability(trigger, trigger.substr(2));
    } else if (trigger == "always") {
      rule.always = true;
    } else {
      bad_spec(trigger, "expected nth=K, p=F or always");
    }
    // action
    const std::string& action = fields[2];
    if (action.rfind("errno=", 0) == 0) {
      rule.action = Decision::Kind::kErrno;
      rule.err = parse_errno_name(action.substr(6));
    } else if (action.rfind("eintr=", 0) == 0) {
      rule.action = Decision::Kind::kErrno;
      rule.err = EINTR;
      rule.eintr_burst = parse_u64(action, action.substr(6));
      if (rule.eintr_burst == 0) bad_spec(action, "eintr burst must be >= 1");
    } else if (action == "short") {
      rule.action = Decision::Kind::kShort;
    } else if (action == "crash") {
      rule.action = Decision::Kind::kCrash;
    } else {
      bad_spec(action, "expected errno=NAME, eintr=K, short or crash");
    }
    plan.rules_.push_back(std::move(rule));
  }
  if (plan.rules_.empty())
    throw InputFormatError("PIMA_IOFAULT: spec contains no rules: '" + spec +
                           "'");
  plan.rng_state_ = plan.seed_;
  return plan;
}

FaultPlan::Decision FaultPlan::decide(Op op, const char* site) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (Rule& rule : rules_) {
    if (rule.op != Op::kAny && rule.op != op) continue;
    if (!rule.site.empty() &&
        (site == nullptr ||
         std::string_view(site).find(rule.site) == std::string_view::npos))
      continue;
    ++rule.calls_seen;
    // An armed EINTR storm consumes matching calls before new triggers.
    if (rule.storm_left > 0) {
      --rule.storm_left;
      return Decision{Decision::Kind::kErrno, EINTR};
    }
    bool fire = false;
    if (rule.nth > 0) {
      fire = !rule.fired && rule.calls_seen == rule.nth;
    } else if (rule.probability >= 0.0) {
      const double u =
          static_cast<double>(splitmix64(rng_state_) >> 11) * 0x1.0p-53;
      fire = u < rule.probability;
    } else {
      fire = rule.always;
    }
    if (!fire) continue;
    rule.fired = true;
    if (rule.eintr_burst > 0) {
      rule.storm_left = rule.eintr_burst - 1;  // this call is the first
      return Decision{Decision::Kind::kErrno, EINTR};
    }
    return Decision{rule.action, rule.err};
  }
  return Decision{};
}

// ---- plan installation -----------------------------------------------------

void install_plan(FaultPlan plan) {
  if (!plan.impl_) plan.impl_ = std::make_shared<FaultPlan::Impl>();
  FaultPlan* next = new FaultPlan(std::move(plan));
  FaultPlan* prev = g_plan.exchange(next, std::memory_order_acq_rel);
  delete prev;
}

void clear_plan() {
  FaultPlan* prev = g_plan.exchange(nullptr, std::memory_order_acq_rel);
  delete prev;
}

bool plan_active() { return active_plan() != nullptr; }

void set_log_fn(LogFn fn) { g_log_fn.store(fn, std::memory_order_release); }

void emit_log(LogSeverity severity, const char* code, const char* message) {
  const LogFn fn = g_log_fn.load(std::memory_order_acquire);
  if (fn != nullptr) {
    fn(severity, code, message);
    return;
  }
  std::fprintf(stderr, "fsio: %s\n", message);
}

void load_env_plan() {
  if (g_env_consulted.exchange(true, std::memory_order_acq_rel)) return;
  const char* spec = std::getenv("PIMA_IOFAULT");
  if (spec == nullptr || spec[0] == '\0') return;
  install_plan(FaultPlan::parse(spec));  // throws InputFormatError
  emit_log(LogSeverity::kInfo, "iofault.active",
           (std::string("I/O fault injection ACTIVE (PIMA_IOFAULT=") + spec +
            ")")
               .c_str());
}

Counters counters() {
  const auto& c = counter_state();
  Counters out;
  out.injected_total = c.injected_total.load(std::memory_order_relaxed);
  out.errno_injected = c.errno_injected.load(std::memory_order_relaxed);
  out.eintr_injected = c.eintr_injected.load(std::memory_order_relaxed);
  out.short_injected = c.short_injected.load(std::memory_order_relaxed);
  out.crash_points = c.crash_points.load(std::memory_order_relaxed);
  out.dirsync_failed = c.dirsync_failed.load(std::memory_order_relaxed);
  return out;
}

void reset_counters() {
  auto& c = counter_state();
  c.injected_total.store(0, std::memory_order_relaxed);
  c.errno_injected.store(0, std::memory_order_relaxed);
  c.eintr_injected.store(0, std::memory_order_relaxed);
  c.short_injected.store(0, std::memory_order_relaxed);
  c.crash_points.store(0, std::memory_order_relaxed);
  c.dirsync_failed.store(0, std::memory_order_relaxed);
}

// ---- wrapped syscalls ------------------------------------------------------

namespace {

/// Shared prologue: returns true (with *out / errno set) when the plan
/// decided this call's fate; false = execute the raw syscall.
/// `transferred` is the byte count a short transfer should report; pass 0
/// for non-transfer ops (short then degrades to EIO — a short fsync makes
/// no sense).
bool intercept(Op op, const char* site, std::size_t count,
               std::size_t* short_count, int* err) {
  FaultPlan* plan = active_plan();
  if (plan == nullptr) [[likely]]
    return false;
  const FaultPlan::Decision d = plan->decide(op, site);
  if (d.kind == FaultPlan::Decision::Kind::kNone) return false;
  if (d.kind == FaultPlan::Decision::Kind::kCrash) {
    // The caller handles the torn-write half itself for write/send (so
    // bytes genuinely land before the cut); everything else dies here,
    // just before the syscall would have happened.
    if (op == Op::kWrite || op == Op::kSend) {
      count_decision(d);
      *short_count = count / 2;
      *err = -1;  // sentinel: torn write then crash
      return true;
    }
    crash_now();
  }
  count_decision(d);
  if (d.kind == FaultPlan::Decision::Kind::kShort && count > 1) {
    *short_count = count / 2;
    *err = 0;
    return true;
  }
  *err = d.kind == FaultPlan::Decision::Kind::kErrno ? d.err : EIO;
  return true;
}

}  // namespace

int open(const char* path, int flags, unsigned mode, const char* site) {
  std::size_t short_count = 0;
  int err = 0;
  if (intercept(Op::kOpen, site, 0, &short_count, &err)) {
    errno = err;
    return -1;
  }
  return ::open(path, flags, static_cast<mode_t>(mode));
}

ssize_t read(int fd, void* buf, std::size_t count, const char* site) {
  std::size_t short_count = 0;
  int err = 0;
  if (intercept(Op::kRead, site, count, &short_count, &err)) {
    if (err == 0) return static_cast<ssize_t>(
        ::read(fd, buf, short_count));  // genuine short read
    errno = err;
    return -1;
  }
  return ::read(fd, buf, count);
}

ssize_t write(int fd, const void* buf, std::size_t count, const char* site) {
  std::size_t short_count = 0;
  int err = 0;
  if (intercept(Op::kWrite, site, count, &short_count, &err)) {
    if (err == -1) {  // torn write: land a prefix, then die
      if (short_count > 0) (void)::write(fd, buf, short_count);
      (void)::fsync(fd);  // make the torn prefix durable — worst case
      std::_Exit(kCrashExitCode);
    }
    if (err == 0) return static_cast<ssize_t>(::write(fd, buf, short_count));
    errno = err;
    return -1;
  }
  return ::write(fd, buf, count);
}

int fsync(int fd, const char* site) {
  std::size_t short_count = 0;
  int err = 0;
  if (intercept(Op::kFsync, site, 0, &short_count, &err)) {
    errno = err;
    return -1;
  }
  return ::fsync(fd);
}

int rename(const char* from, const char* to, const char* site) {
  std::size_t short_count = 0;
  int err = 0;
  if (intercept(Op::kRename, site, 0, &short_count, &err)) {
    errno = err;
    return -1;
  }
  return ::rename(from, to);
}

int unlink(const char* path, const char* site) {
  std::size_t short_count = 0;
  int err = 0;
  if (intercept(Op::kUnlink, site, 0, &short_count, &err)) {
    errno = err;
    return -1;
  }
  return ::unlink(path);
}

ssize_t send(int fd, const void* buf, std::size_t count, int flags,
             const char* site) {
  std::size_t short_count = 0;
  int err = 0;
  if (intercept(Op::kSend, site, count, &short_count, &err)) {
    if (err == -1) {  // torn send then crash
      if (short_count > 0) (void)::send(fd, buf, short_count, flags);
      std::_Exit(kCrashExitCode);
    }
    if (err == 0)
      return static_cast<ssize_t>(::send(fd, buf, short_count, flags));
    errno = err;
    return -1;
  }
  return ::send(fd, buf, count, flags);
}

ssize_t recv(int fd, void* buf, std::size_t count, int flags,
             const char* site) {
  std::size_t short_count = 0;
  int err = 0;
  if (intercept(Op::kRecv, site, count, &short_count, &err)) {
    if (err == 0)
      return static_cast<ssize_t>(::recv(fd, buf, short_count, flags));
    errno = err;
    return -1;
  }
  return ::recv(fd, buf, count, flags);
}

int connect(int fd, const struct sockaddr* addr, socklen_t len,
            const char* site) {
  std::size_t short_count = 0;
  int err = 0;
  if (intercept(Op::kConnect, site, 0, &short_count, &err)) {
    errno = err;
    return -1;
  }
  return ::connect(fd, addr, len);
}

int socketpair(int domain, int type, int protocol, int sv[2],
               const char* site) {
  std::size_t short_count = 0;
  int err = 0;
  if (intercept(Op::kSocketpair, site, 0, &short_count, &err) && err > 0) {
    errno = err;
    return -1;
  }
  return ::socketpair(domain, type, protocol, sv);
}

pid_t waitpid(pid_t pid, int* status, int options, const char* site) {
  std::size_t short_count = 0;
  int err = 0;
  if (intercept(Op::kWaitpid, site, 0, &short_count, &err) && err > 0) {
    errno = err;
    return -1;
  }
  return ::waitpid(pid, status, options);
}

int kill(pid_t pid, int sig, const char* site) {
  std::size_t short_count = 0;
  int err = 0;
  if (intercept(Op::kKill, site, 0, &short_count, &err) && err > 0) {
    errno = err;
    return -1;
  }
  return ::kill(pid, sig);
}

// ---- hardened helpers ------------------------------------------------------

void atomic_write_file(const std::string& path, const std::string& content,
                       const char* site) {
  const std::string tmp = path + ".tmp";
  const int fd = fsio::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644,
                            site);
  if (fd < 0)
    throw IoError("cannot create " + tmp + ": " + std::strerror(errno));
  const char* data = content.data();
  std::size_t left = content.size();
  while (left > 0) {
    const ssize_t n = fsio::write(fd, data, left, site);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw IoError("write failed for " + tmp + ": " + std::strerror(err));
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  while (fsio::fsync(fd, site) != 0) {
    if (errno == EINTR) continue;
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    throw IoError("fsync failed for " + tmp + ": " + std::strerror(err));
  }
  ::close(fd);
  while (fsio::rename(tmp.c_str(), path.c_str(), site) != 0) {
    if (errno == EINTR) continue;
    const int err = errno;
    ::unlink(tmp.c_str());
    throw IoError("cannot rename " + tmp + " to " + path + ": " +
                  std::strerror(err));
  }
  fsync_parent_dir(path, site);
}

void fsync_parent_dir(const std::string& path, const char* site) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  static std::atomic<bool> logged_once{false};
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0 || fsio::fsync(dfd, site) != 0) {
    counter_state().dirsync_failed.fetch_add(1, std::memory_order_relaxed);
    if (!logged_once.exchange(true, std::memory_order_acq_rel))
      emit_log(LogSeverity::kWarn, "io.dirsync_failed",
               ("directory fsync failed for " + dir + " (" +
                std::strerror(errno) +
                ") — renames are crash-atomic but their durability is not "
                "guaranteed on this filesystem (logged once; counted in "
                "pima_io_fault_dirsync_failed_total)")
                   .c_str());
  }
  if (dfd >= 0) ::close(dfd);
}

}  // namespace pima::fsio
