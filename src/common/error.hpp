// Error handling helpers for PIM-Assembler.
//
// The library reports precondition violations and unrecoverable state errors
// by throwing std::logic_error / std::runtime_error subclasses. Simulation
// code is exception-free on the hot path; checks compile to a branch + cold
// throw helper.
//
// The taxonomy below maps one-to-one onto the CLI's documented exit codes
// (see exit_code_for / DESIGN.md §10): front-end tools catch at main() and
// translate the dynamic type into a stable process exit status, so scripts
// and CI can distinguish "your input file is broken" from "the engine
// stalled" without parsing stderr.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace pima {

/// Thrown when an API precondition is violated (caller bug).
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when the simulated machine reaches an inconsistent state
/// (configuration error, resource exhaustion of the modelled hardware).
class SimulationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when an operating-system I/O operation fails (open/write/rename
/// of checkpoints, traces, FASTA files).
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a checkpoint snapshot fails validation — bad magic, version
/// mismatch, truncation, checksum mismatch, or an incompatible run
/// configuration (geometry/k/seed). The load is all-or-nothing: a snapshot
/// that throws this has had no partial effect on the caller's state.
class CorruptCheckpointError : public IoError {
 public:
  using IoError::IoError;
};

/// Thrown when user-supplied input data (FASTA/FASTQ) or a command-line
/// value is malformed. The message carries source:line (or --flag) context.
class InputFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by cooperative cancellation points (runtime/cancel.hpp) when a
/// CancelToken has been triggered — by a SIGINT/SIGTERM handler, a service
/// `cancel` verb, or daemon shutdown. Work interrupted this way is clean:
/// stage checkpoints already written stay valid, so a cancelled run resumes
/// exactly like a crashed one.
class CancelledError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by the service client when a connect or a wait for a response
/// line exceeds the caller's --timeout budget. Distinct from IoError: the
/// daemon may be healthy but slow (or wedged); the caller chose to stop
/// waiting. Maps to exit code 9 so scripts can tell "deadline expired"
/// from "transport broke".
class DeadlineExceededError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by the service admission controller when a job cannot be accepted
/// — the bounded queue is full, or the daemon is draining. The submitter
/// should back off and retry; nothing about the job was recorded.
class AdmissionRejectedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by runtime::Engine::drain() when the watchdog detects that a
/// channel worker has made no progress within the configured stall timeout.
/// Carries enough context to locate the wedged work: the channel, the
/// sub-array the stuck task was routed to (kNoSubarray for untargeted
/// closures), and the index of the last command the channel retired.
class EngineStalledError : public SimulationError {
 public:
  static constexpr std::size_t kNoSubarray = static_cast<std::size_t>(-1);

  EngineStalledError(std::size_t channel, std::size_t subarray,
                     std::uint64_t last_retired, double timeout_ms)
      : SimulationError(format(channel, subarray, last_retired, timeout_ms)),
        channel_(channel),
        subarray_(subarray),
        last_retired_(last_retired),
        timeout_ms_(timeout_ms) {}

  std::size_t channel() const { return channel_; }
  std::size_t subarray() const { return subarray_; }
  std::uint64_t last_retired() const { return last_retired_; }
  double timeout_ms() const { return timeout_ms_; }

 private:
  static std::string format(std::size_t channel, std::size_t subarray,
                            std::uint64_t last_retired, double timeout_ms) {
    std::string msg = "engine stalled: channel " + std::to_string(channel) +
                      " made no progress for " + std::to_string(timeout_ms) +
                      " ms (last retired task index " +
                      std::to_string(last_retired);
    if (subarray != kNoSubarray)
      msg += ", stuck task targets sub-array " + std::to_string(subarray);
    msg += ")";
    return msg;
  }

  std::size_t channel_;
  std::size_t subarray_;
  std::uint64_t last_retired_;
  double timeout_ms_;
};

/// Thrown by the process-pool supervisor (runtime/procpool.hpp) when a
/// device worker keeps crashing past the restart budget and degrading to
/// the in-process pool is disabled. Carries the device index and the
/// typed exit classification of the final crash, so operators can tell a
/// SIGKILLed worker from a torn protocol stream in the exit status alone.
class WorkerCrashedError : public SimulationError {
 public:
  WorkerCrashedError(std::size_t device, const std::string& classification,
                     const std::string& detail)
      : SimulationError("device worker " + std::to_string(device) +
                        " crashed (" + classification +
                        ") and the restart budget is exhausted" +
                        (detail.empty() ? "" : ": " + detail)),
        device_(device),
        classification_(classification) {}

  std::size_t device() const { return device_; }
  const std::string& classification() const { return classification_; }

 private:
  std::size_t device_;
  std::string classification_;
};

/// Documented process exit codes of the CLI tools (DESIGN.md §10).
enum ExitCode : int {
  kExitOk = 0,                ///< success
  kExitFailure = 1,           ///< unclassified runtime/logic error
  kExitUsage = 2,             ///< bad command line
  kExitInputFormat = 3,       ///< malformed FASTA/FASTQ input
  kExitIo = 4,                ///< OS-level I/O failure
  kExitCorruptCheckpoint = 5, ///< checkpoint rejected (checksum/version/compat)
  kExitEngineStalled = 6,     ///< watchdog converted a hang into a failure
  kExitInterrupted = 7,       ///< cancelled (signal / cancel verb); resumable
  kExitAdmissionRejected = 8, ///< service refused the job (queue full/draining)
  kExitDeadlineExceeded = 9,  ///< client --timeout expired before a response
  kExitWorkerCrashed = 10,    ///< isolated device worker crashed past budget
};

/// Maps an exception to its documented exit code. Most-derived types are
/// tested first, so CorruptCheckpointError wins over its IoError base.
inline int exit_code_for(const std::exception& e) {
  if (dynamic_cast<const CorruptCheckpointError*>(&e) != nullptr)
    return kExitCorruptCheckpoint;
  if (dynamic_cast<const IoError*>(&e) != nullptr) return kExitIo;
  if (dynamic_cast<const InputFormatError*>(&e) != nullptr)
    return kExitInputFormat;
  if (dynamic_cast<const EngineStalledError*>(&e) != nullptr)
    return kExitEngineStalled;
  if (dynamic_cast<const WorkerCrashedError*>(&e) != nullptr)
    return kExitWorkerCrashed;
  if (dynamic_cast<const CancelledError*>(&e) != nullptr)
    return kExitInterrupted;
  if (dynamic_cast<const AdmissionRejectedError*>(&e) != nullptr)
    return kExitAdmissionRejected;
  if (dynamic_cast<const DeadlineExceededError*>(&e) != nullptr)
    return kExitDeadlineExceeded;
  return kExitFailure;
}

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  throw PreconditionError(std::string(file) + ":" + std::to_string(line) +
                          ": precondition failed: " + expr +
                          (msg.empty() ? "" : " — " + msg));
}
}  // namespace detail

}  // namespace pima

/// Precondition check: throws pima::PreconditionError with location info.
#define PIMA_CHECK(expr, msg)                                              \
  do {                                                                     \
    if (!(expr)) [[unlikely]]                                              \
      ::pima::detail::throw_precondition(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
