// Error handling helpers for PIM-Assembler.
//
// The library reports precondition violations and unrecoverable state errors
// by throwing std::logic_error / std::runtime_error subclasses. Simulation
// code is exception-free on the hot path; checks compile to a branch + cold
// throw helper.
#pragma once

#include <stdexcept>
#include <string>

namespace pima {

/// Thrown when an API precondition is violated (caller bug).
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when the simulated machine reaches an inconsistent state
/// (configuration error, resource exhaustion of the modelled hardware).
class SimulationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  throw PreconditionError(std::string(file) + ":" + std::to_string(line) +
                          ": precondition failed: " + expr +
                          (msg.empty() ? "" : " — " + msg));
}
}  // namespace detail

}  // namespace pima

/// Precondition check: throws pima::PreconditionError with location info.
#define PIMA_CHECK(expr, msg)                                              \
  do {                                                                     \
    if (!(expr)) [[unlikely]]                                              \
      ::pima::detail::throw_precondition(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
