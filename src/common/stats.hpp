// Small statistics helpers used by the Monte-Carlo engine and benchmark
// reporting: running mean/variance (Welford) and fixed-bin histograms.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pima {

/// Numerically stable running mean / variance / min / max accumulator.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-range histogram with uniform bins; values outside the range are
/// clamped into the first/last bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_[bin]; }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t bin) const;
  double bin_high(std::size_t bin) const;

  /// ASCII rendering for reports.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Geometric mean of a non-empty set of positive values.
double geometric_mean(const std::vector<double>& values);

}  // namespace pima
