// Packed bit vector used throughout the DRAM model as row storage and by the
// bulk bit-wise kernels. Bits are stored LSB-first in 64-bit words; the
// vector has a fixed size chosen at construction (DRAM rows never resize).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace pima {

/// Fixed-size packed bit vector with word-parallel logic operations.
///
/// This is the fundamental data type of the functional DRAM model: one
/// BitVector of width `cols` represents the charge state of one sub-array
/// row. All bulk in-memory operations (two-row XNOR, triple-row majority,
/// RowClone copy) are expressed as word-parallel operations over rows.
class BitVector {
 public:
  BitVector() = default;

  /// Creates a vector of `size` bits, all zero.
  explicit BitVector(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  /// Creates a vector from a 0/1 string, e.g. "1011" (index 0 = first char).
  static BitVector from_string(const std::string& bits);

  /// Number of bits.
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool get(std::size_t i) const {
    PIMA_CHECK(i < size_, "bit index out of range");
    return (words_[i / 64] >> (i % 64)) & 1u;
  }

  void set(std::size_t i, bool v) {
    PIMA_CHECK(i < size_, "bit index out of range");
    const std::uint64_t mask = std::uint64_t{1} << (i % 64);
    if (v)
      words_[i / 64] |= mask;
    else
      words_[i / 64] &= ~mask;
  }

  /// Sets all bits to `v`.
  void fill(bool v);

  /// Number of set bits.
  std::size_t popcount() const;

  /// True if every bit is 1 (empty vector => true).
  bool all() const;
  /// True if at least one bit is 1.
  bool any() const { return popcount() > 0; }
  /// True if no bit is 1.
  bool none() const { return !any(); }

  /// Word-level access for the kernels. `word_count()` words; bits beyond
  /// `size()` in the last word are kept zero (class invariant).
  std::size_t word_count() const { return words_.size(); }
  std::uint64_t word(std::size_t w) const { return words_[w]; }
  void set_word(std::size_t w, std::uint64_t v);

  /// Writes a bit range [lo, lo+src.size()) from `src` (src must fit).
  void copy_range_from(const BitVector& src, std::size_t lo);

  /// Reads a bit range [lo, lo+len) into a new vector.
  BitVector slice(std::size_t lo, std::size_t len) const;

  /// "1011..." rendering (index 0 first). For diagnostics/tests.
  std::string to_string() const;

  bool operator==(const BitVector& o) const = default;

  // -- Word-parallel bulk logic; all operands must have equal size. --

  /// r = a XNOR b  (the PIM-Assembler single-cycle primitive).
  static BitVector bit_xnor(const BitVector& a, const BitVector& b);
  /// r = a XOR b.
  static BitVector bit_xor(const BitVector& a, const BitVector& b);
  static BitVector bit_and(const BitVector& a, const BitVector& b);
  static BitVector bit_or(const BitVector& a, const BitVector& b);
  static BitVector bit_not(const BitVector& a);
  /// r = MAJ(a,b,c) — Ambit triple-row-activation semantics.
  static BitVector bit_maj3(const BitVector& a, const BitVector& b,
                            const BitVector& c);

 private:
  void clear_tail();
  static void check_same_size(const BitVector& a, const BitVector& b);

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace pima
