// Plain-text table rendering for benchmark harnesses. Every bench binary
// prints its table/figure as an aligned text table so the output can be
// diffed against the paper's reported rows.
#pragma once

#include <string>
#include <vector>

namespace pima {

/// Column-aligned text table with a title and header row.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);

  std::string render() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pima
