// Injectable syscall shim for the I/O and service plane (DESIGN.md §13).
//
// Every syscall the persistence and socket layers depend on — open, read,
// write, fsync, rename, unlink, send, recv, connect — goes through the
// thin wrappers below. With no fault plan installed they are a
// passthrough: one relaxed atomic load, then the raw syscall. With a plan
// installed (programmatically or via the PIMA_IOFAULT environment
// variable) each call first consults a deterministic, seeded FaultPlan
// that can fail it with a chosen errno, inject EINTR storms, shorten the
// transfer, or cut the process dead mid-write — the same
// inject-and-verify discipline the compute plane got in PR 2/3, applied
// to the host I/O path so crash-anywhere claims are testable.
//
// FaultPlan spec grammar (PIMA_IOFAULT):
//
//   spec    := [ 'seed=' N ';' ] rule ( ';' rule )*
//   rule    := op [ '@' site ] ':' trigger ':' action
//   op      := open|read|write|fsync|rename|unlink|send|recv|connect|*
//   site    := substring matched against the call-site tag
//              ("checkpoint", "job.json", "wire", "connect", "artifact")
//   trigger := 'nth=' K      the K-th matching call (1-based), fires once
//            | 'p=' F        each matching call with probability F (seeded)
//            | 'always'      every matching call
//   action  := 'errno=' NAME fail with that errno (ENOSPC, EIO, EPIPE, …)
//            | 'eintr=' K    this and the next K-1 matching calls EINTR
//            | 'short'       transfer only half the requested bytes
//            | 'crash'       torn-write crash point: write half, then
//                            _exit(kCrashExitCode) with no cleanup
//
// Examples:
//   PIMA_IOFAULT='write@checkpoint:nth=3:errno=ENOSPC'
//   PIMA_IOFAULT='seed=7;send@wire:p=0.01:errno=EPIPE;read@wire:nth=5:eintr=3'
//   PIMA_IOFAULT='rename@job.json:nth=1:crash'
//
// The wrappers return exactly like the raw syscalls (-1 + errno), so
// hardened callers keep one error path for real and injected failures.
// Fault decisions and injection counters are thread-safe; installing or
// clearing a plan is not safe concurrently with in-flight wrapped calls
// (install before spawning workers, as the tools and tests do).
#pragma once

#include <sys/socket.h>
#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pima::fsio {

/// Process exit status of an injected `crash` action. Distinctive so a
/// test harness can tell an injected torn-write crash from a real one.
inline constexpr int kCrashExitCode = 86;

enum class Op : std::uint8_t {
  kOpen,
  kRead,
  kWrite,
  kFsync,
  kRename,
  kUnlink,
  kSend,
  kRecv,
  kConnect,
  kSocketpair,
  kWaitpid,
  kKill,
  kAny,  ///< `*` in a rule: matches every op
};

const char* to_string(Op op);

/// Deterministic, seeded injection schedule. Parse once, install
/// process-wide; decide() is called by every wrapped syscall.
class FaultPlan {
 public:
  struct Decision {
    enum class Kind : std::uint8_t { kNone, kErrno, kShort, kCrash };
    Kind kind = Kind::kNone;
    int err = 0;  ///< errno to inject for kErrno
  };

  /// Parses the spec grammar above. Throws InputFormatError naming the
  /// offending token on any malformed rule.
  static FaultPlan parse(const std::string& spec);

  /// The fate of one call at `site`. Thread-safe; mutates trigger state
  /// (nth counters, EINTR storms, RNG stream).
  Decision decide(Op op, const char* site);

  std::uint64_t seed() const { return seed_; }
  std::size_t rule_count() const { return rules_.size(); }
  const std::string& spec() const { return spec_; }

 private:
  struct Rule {
    Op op = Op::kAny;
    std::string site;           ///< empty = any site
    std::uint64_t nth = 0;      ///< 0 = not an nth trigger
    double probability = -1.0;  ///< <0 = not a probability trigger
    bool always = false;
    Decision::Kind action = Decision::Kind::kErrno;
    int err = 0;
    std::uint64_t eintr_burst = 0;  ///< >0: action arms an EINTR storm
    // Mutable trigger state (guarded by FaultPlan::mutex_).
    std::uint64_t calls_seen = 0;
    bool fired = false;
    std::uint64_t storm_left = 0;
  };

  std::uint64_t seed_ = 2020;
  std::uint64_t rng_state_ = 0;
  std::string spec_;
  std::vector<Rule> rules_;
  struct Impl;  // mutex lives in the .cpp to keep this header light
  std::shared_ptr<Impl> impl_;

  // install_plan backfills impl_ for default-constructed plans.
  friend void install_plan(FaultPlan plan);
};

/// Installs `plan` as the process-wide plan (replacing any previous one).
void install_plan(FaultPlan plan);
/// Removes the active plan; wrappers revert to zero-overhead passthrough.
void clear_plan();
/// True when a plan is active (installed or loaded from PIMA_IOFAULT).
bool plan_active();
/// Forces the lazy PIMA_IOFAULT load now so a malformed spec surfaces as a
/// typed InputFormatError at startup instead of mid-run.
void load_env_plan();

// ---- diagnostics hook ------------------------------------------------------
// common/ sits below telemetry/ in the layering, so fsio's few warnings
// (fault-plan activation, directory-fsync degradation) go through a
// pluggable sink instead of including the structured logger directly.
// telemetry::Logger installs itself here on first use; the default
// rendering is the historical fprintf(stderr, "fsio: ...") form.

enum class LogSeverity { kInfo, kWarn, kError };
/// `code` is a stable dot-separated event code (e.g. "iofault.active");
/// `message` is the human-readable text without the "fsio: " prefix.
using LogFn = void (*)(LogSeverity, const char* code, const char* message);
/// Installs the diagnostics sink; nullptr restores the default stderr
/// rendering. The hook may be called from any thread but never from
/// signal handlers.
void set_log_fn(LogFn fn);
/// Routes one diagnostic through the installed sink (or the default).
void emit_log(LogSeverity severity, const char* code, const char* message);

/// Injection counters, exported as `pima_io_fault_*` telemetry by the
/// daemon's metrics fold. Plain atomics here — common/ sits below
/// telemetry/ in the layering.
struct Counters {
  std::uint64_t injected_total = 0;  ///< every non-passthrough decision
  std::uint64_t errno_injected = 0;
  std::uint64_t eintr_injected = 0;
  std::uint64_t short_injected = 0;
  std::uint64_t crash_points = 0;    ///< crash actions taken (pre-_exit)
  std::uint64_t dirsync_failed = 0;  ///< directory fsyncs that failed
};
Counters counters();
void reset_counters();

// ---- wrapped syscalls ------------------------------------------------------
// Same contract as the raw calls: -1 + errno on failure (injected or
// real), byte counts on success. `site` tags the call site for FaultPlan
// rule matching and never reaches the kernel.

int open(const char* path, int flags, unsigned mode, const char* site);
ssize_t read(int fd, void* buf, std::size_t count, const char* site);
ssize_t write(int fd, const void* buf, std::size_t count, const char* site);
int fsync(int fd, const char* site);
int rename(const char* from, const char* to, const char* site);
int unlink(const char* path, const char* site);
ssize_t send(int fd, const void* buf, std::size_t count, int flags,
             const char* site);
ssize_t recv(int fd, void* buf, std::size_t count, int flags,
             const char* site);
int connect(int fd, const struct sockaddr* addr, socklen_t len,
            const char* site);

// Process-control wrappers for the process-pool supervisor: spawning
// (socketpair), reaping (waitpid) and terminating (kill) device workers go
// through the same fault shim, so chaos plans can starve the supervisor of
// fds or make reaps/kills fail with typed errnos.
int socketpair(int domain, int type, int protocol, int sv[2],
               const char* site);
pid_t waitpid(pid_t pid, int* status, int options, const char* site);
int kill(pid_t pid, int sig, const char* site);

// ---- hardened helpers ------------------------------------------------------

/// Crash-safe whole-file write: <path>.tmp + fsync + rename + directory
/// fsync, all through the wrappers above, retrying EINTR. A reader sees
/// the old content or the new content, never a truncated file. Throws
/// IoError (the tmp file is removed) on any failure.
void atomic_write_file(const std::string& path, const std::string& content,
                       const char* site);

/// Best-effort durability of a rename: fsync the directory containing
/// `path`. A failure (some filesystems reject directory fsync) is not an
/// error for the caller, but it IS counted (Counters::dirsync_failed →
/// `pima_io_fault_dirsync_failed_total`) and logged once per process, so
/// operators can see when rename durability is not guaranteed.
void fsync_parent_dir(const std::string& path, const char* site);

}  // namespace pima::fsio
