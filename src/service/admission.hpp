// Admission control for the assembly service: a bounded priority queue
// plus the resource-budget policy that decides when a queued job may
// start.
//
// Policy (DESIGN.md §12):
//   * The queue holds at most `queue_depth` jobs. A submit beyond that is
//     rejected *synchronously* with AdmissionRejectedError — the client
//     learns immediately instead of the daemon buffering unbounded work
//     (the same backpressure discipline as the engine's bounded task
//     queues, one level up).
//   * At most `max_jobs` jobs run concurrently, and the sum of running
//     jobs' channel quotas never exceeds `channel_budget` — the daemon
//     never oversubscribes the host threads the simulated channels map
//     onto.
//   * Dispatch order is strict: highest priority first, FIFO within a
//     priority (submission seq breaks ties). Head-of-line blocking is
//     deliberate — a wide job at the head waits for budget rather than
//     being starved by an endless stream of narrow jobs backfilled past
//     it.
//
// The queue is not thread-safe by itself; the daemon serializes access
// under its job-table mutex.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pima::service {

struct AdmissionPolicy {
  std::size_t queue_depth = 8;     ///< queued (not yet running) job bound
  std::size_t max_jobs = 2;        ///< concurrently running job bound
  std::size_t channel_budget = 8;  ///< total channels across running jobs
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(AdmissionPolicy policy) : policy_(policy) {}

  const AdmissionPolicy& policy() const { return policy_; }

  /// Enqueues a job. Throws AdmissionRejectedError when the queue is at
  /// its depth bound, naming the bound so the client can report it. A
  /// job's channel quota wider than the whole budget is also rejected
  /// here — it could never be dispatched.
  void push(const std::string& job_id, int priority, std::uint64_t seq,
            std::size_t channels);

  /// The next job that may start given current usage, or "" when none
  /// fits. Strict priority order: only the head (highest priority, lowest
  /// seq) is considered. The caller commits to running it — the entry is
  /// removed and the caller's accounting (running count, used channels)
  /// takes over.
  std::string pop_admissible(std::size_t running_jobs,
                             std::size_t used_channels);

  /// Recovery-path enqueue: a job re-queued after a daemon restart was
  /// already admitted once, so the depth bound does not apply (rejecting
  /// it now would lose accepted work). Quota-vs-budget still holds — a
  /// restart with a smaller budget must not wedge the queue head forever,
  /// so an unfittable job is rejected like a fresh submit.
  void restore(const std::string& job_id, int priority, std::uint64_t seq,
               std::size_t channels);

  /// Removes a queued job (cancel verb). Returns false if absent.
  bool remove(const std::string& job_id);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  struct Entry {
    std::string job_id;
    int priority = 0;
    std::uint64_t seq = 0;
    std::size_t channels = 1;
  };

  /// Index of the dispatch head: max priority, min seq.
  std::size_t head_index() const;

  AdmissionPolicy policy_;
  std::vector<Entry> entries_;
};

}  // namespace pima::service
