// Client side of the service wire protocol: connect, send one request
// object, read the response line(s). Used by the `pima_asm` client verbs
// (submit/status/result/cancel/list/drain/metrics) and by the tests; the
// transport (unix socket vs loopback TCP) is fixed at connect time and
// invisible afterwards.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "service/json.hpp"
#include "service/socket.hpp"

namespace pima::service {

class Client {
 public:
  static Client connect_unix_socket(const std::string& path);
  static Client connect_tcp_port(std::uint16_t port);

  /// One request, one response line. Throws IoError if the daemon hangs
  /// up before responding.
  Json request(const Json& req);

  /// One request, streamed responses (`status --follow`): `on_line` is
  /// called per response object until the daemon closes the stream or
  /// returns false from the callback. Returns the last response seen.
  Json stream(const Json& req, const std::function<bool(const Json&)>& on_line);

 private:
  explicit Client(ScopedFd fd) : fd_(std::move(fd)), channel_(fd_.get()) {}

  ScopedFd fd_;
  LineChannel channel_;
};

}  // namespace pima::service
