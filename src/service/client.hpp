// Client side of the service wire protocol: connect, send one request
// object, read the response line(s). Used by the `pima_asm` client verbs
// (submit/status/result/cancel/list/drain/metrics) and by the tests; the
// transport (unix socket vs loopback TCP) is fixed at connect time and
// invisible afterwards.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "service/json.hpp"
#include "service/socket.hpp"

namespace pima::service {

class Client {
 public:
  /// `timeout_s` > 0 bounds the connect AND every subsequent wait for a
  /// response line; expiry throws DeadlineExceededError (exit code 9).
  /// 0 (the default) waits forever — the pre-deadline behaviour.
  static Client connect_unix_socket(const std::string& path,
                                    double timeout_s = 0.0);
  static Client connect_tcp_port(std::uint16_t port, double timeout_s = 0.0);

  /// One request, one response line. Throws IoError if the daemon hangs
  /// up before responding.
  Json request(const Json& req);

  /// One request, streamed responses (`status --follow`): `on_line` is
  /// called per response object until the daemon closes the stream or
  /// returns false from the callback. Returns the last response seen.
  Json stream(const Json& req, const std::function<bool(const Json&)>& on_line);

 private:
  Client(ScopedFd fd, double timeout_s)
      : fd_(std::move(fd)), channel_(fd_.get()) {
    channel_.set_deadline(timeout_s);
  }

  ScopedFd fd_;
  LineChannel channel_;
};

}  // namespace pima::service
