#include "service/admission.hpp"

#include "common/error.hpp"

namespace pima::service {

void AdmissionQueue::push(const std::string& job_id, int priority,
                          std::uint64_t seq, std::size_t channels) {
  if (entries_.size() >= policy_.queue_depth)
    throw AdmissionRejectedError(
        "admission queue full (" + std::to_string(policy_.queue_depth) +
        " jobs queued); retry after a job finishes");
  if (channels > policy_.channel_budget)
    throw AdmissionRejectedError(
        "job requests " + std::to_string(channels) +
        " channels but the daemon's budget is " +
        std::to_string(policy_.channel_budget) + "; lower --threads");
  entries_.push_back({job_id, priority, seq, channels});
}

void AdmissionQueue::restore(const std::string& job_id, int priority,
                             std::uint64_t seq, std::size_t channels) {
  if (channels > policy_.channel_budget)
    throw AdmissionRejectedError(
        "recovered job " + job_id + " requests " + std::to_string(channels) +
        " channels but the daemon's budget is " +
        std::to_string(policy_.channel_budget));
  entries_.push_back({job_id, priority, seq, channels});
}

std::size_t AdmissionQueue::head_index() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    const Entry& b = entries_[best];
    if (e.priority > b.priority ||
        (e.priority == b.priority && e.seq < b.seq))
      best = i;
  }
  return best;
}

std::string AdmissionQueue::pop_admissible(std::size_t running_jobs,
                                           std::size_t used_channels) {
  if (entries_.empty() || running_jobs >= policy_.max_jobs) return {};
  const std::size_t head = head_index();
  if (used_channels + entries_[head].channels > policy_.channel_budget)
    return {};  // head-of-line: wait for budget, no backfill past it
  std::string id = entries_[head].job_id;
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(head));
  return id;
}

bool AdmissionQueue::remove(const std::string& job_id) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].job_id == job_id) {
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

}  // namespace pima::service
