// Assembly-as-a-service daemon: a long-lived process serving assembly
// jobs over a newline-delimited-JSON protocol on a unix socket (plus an
// optional loopback TCP port).
//
// Composition of the existing machinery (DESIGN.md §12):
//   * every job runs the normal core::run_pipeline on its **own**
//     simulated Device, under a per-job channel quota — the runtime's
//     determinism contract makes its output bit-identical to a standalone
//     `pima_asm pim-run` on the same input, whatever else the daemon is
//     running concurrently;
//   * each job owns a checkpoint directory (`<state>/jobs/<id>/`), so the
//     PR-4 stage snapshots double as *per-job crash recovery*: a daemon
//     restart re-queues every non-terminal job with resume=true and the
//     pipeline continues from its last durable stage;
//   * each job gets its own watchdog stall budget
//     (JobSpec::stall_timeout_ms → EngineOptions) and its own
//     MetricsRegistry tagged {job="<id>"}; the daemon's `metrics` verb
//     folds all job registries plus the service counters with merge_from
//     into one Prometheus exposition — `GET /metrics` semantics over the
//     socket protocol;
//   * admission control (service/admission.hpp) bounds queued jobs,
//     concurrently running jobs, and the total channel quota; a submit
//     past a bound is rejected synchronously with a typed error.
//
// Shutdown: request_shutdown() is async-signal-safe (SIGTERM/SIGINT
// handlers call it). The daemon stops accepting, cancels running jobs at
// their next cancellation point (their completed-stage checkpoints stay
// valid), persists them back to `queued`, and exits; the next start
// resumes them.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dram/geometry.hpp"
#include "runtime/cancel.hpp"
#include "service/admission.hpp"
#include "service/job.hpp"
#include "service/socket.hpp"
#include "telemetry/metrics.hpp"

namespace pima::service {

struct DaemonOptions {
  std::string socket_path;        ///< unix socket (required)
  std::uint16_t tcp_port = 0;     ///< loopback TCP, 0 = disabled
  /// Loopback HTTP introspection plane (GET /metrics, /healthz, /jobs);
  /// 0 = disabled. /metrics serves the same deterministic fold as the
  /// `metrics` verb, byte for byte.
  std::uint16_t http_port = 0;
  std::string state_dir;          ///< job dirs + checkpoints (required)
  AdmissionPolicy admission;
  /// Cap on concurrently open client connections; a connection past the
  /// cap is refused with a typed error line. Admission control for the
  /// transport, like AdmissionPolicy is for jobs.
  std::size_t max_connections = 64;
  /// Simulated device geometry every job runs on. Part of each job's
  /// checkpoint fingerprint — restart the daemon with the same geometry
  /// or interrupted jobs will refuse to resume (typed, recorded failure).
  dram::Geometry geometry;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Serves until shutdown: recovers persisted jobs, listens, dispatches.
  /// Returns after the full graceful-shutdown sequence (jobs cancelled &
  /// persisted, threads joined, socket unlinked). Throws IoError if the
  /// listeners cannot be opened.
  void run();

  /// Initiates graceful shutdown. Async-signal-safe: one atomic store and
  /// one pipe write. Callable from any thread, any number of times.
  void request_shutdown();

  /// True from the first request_shutdown()/drain until run() returns.
  bool stopping() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  const DaemonOptions& options() const { return options_; }

 private:
  struct JobEntry {
    JobRecord record;  ///< guarded by Daemon::mutex_
    telemetry::MetricsRegistry registry;
    runtime::CancelToken cancel;
    std::thread runner;
    bool requeue_on_cancel = false;  ///< shutdown vs user cancel
  };

  // ---- job lifecycle (mutex_ held unless noted) ----
  void recover_jobs();
  std::string job_dir(const std::string& id) const;
  void persist(const JobEntry& entry) const;
  void maybe_dispatch();
  void run_job(JobEntry& entry);  // runner thread body (takes mutex_ itself)
  void update_service_gauges();
  Json status_json(const JobEntry& entry) const;

  // ---- protocol (called from connection threads) ----
  struct ConnSlot;
  void handle_connection(ConnSlot* slot);
  /// HTTP introspection connection: one GET, one response, close.
  void handle_http(ConnSlot* slot);
  /// Returns false when the connection should close after this response.
  bool dispatch_verb(const Json& request, LineChannel& channel);
  Json verb_submit(const Json& request);
  Json verb_status(const Json& request, LineChannel& channel, bool& close);
  Json verb_result(const Json& request);
  Json verb_cancel(const Json& request);
  Json verb_list() const;
  Json verb_metrics(const Json& request);
  Json verb_drain();

  /// Deterministic daemon-wide fold: service registry + every job
  /// registry in job-id order.
  std::string aggregate_metrics(bool as_json);

  DaemonOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;  ///< job state changes; drain/follow wake
  std::map<std::string, std::unique_ptr<JobEntry>> jobs_;  // never erased
  /// idempotency_key → job id. Rebuilt from job.json records on restart,
  /// so a client retrying a submit across a daemon crash still dedupes.
  std::map<std::string, std::string> idem_index_;
  AdmissionQueue queue_;
  std::size_t running_jobs_ = 0;
  std::size_t used_channels_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  bool draining_ = false;

  telemetry::MetricsRegistry service_registry_;

  // Shutdown machinery: flag + self-pipe to break the poll/accept loop.
  // The write end is atomic because request_shutdown() reads it from a
  // signal handler; both ends stay open until the destructor (after the
  // caller has detached its signal-handler pointer to this daemon), so a
  // late signal can never write(2) into a closed or recycled fd.
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<int> wake_write_{-1};
  int wake_read_ = -1;

  // Connection bookkeeping: fds are shutdown() on daemon stop so blocked
  // readers unblock and their threads join. A connection thread closes its
  // own fd under conn_mutex_ (storing -1 first), so the shutdown sweep can
  // never race the close and hit a recycled descriptor; the accept loop
  // reaps finished slots so a long-lived daemon does not accumulate dead
  // threads.
  std::mutex conn_mutex_;
  struct ConnSlot {
    std::thread thread;
    std::atomic<int> fd{-1};
  };
  std::vector<std::unique_ptr<ConnSlot>> connections_;
  void reap_connections();
};

}  // namespace pima::service
