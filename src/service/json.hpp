// Forwarding header: the JSON value moved to src/net (net/json.hpp) so the
// process-pool runtime can speak the wire format without linking the
// service layer. Service code keeps its historical spellings
// (service::Json) via aliases.
#pragma once

#include "net/json.hpp"

namespace pima::service {

using net::Json;

}  // namespace pima::service
