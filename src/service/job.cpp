#include "service/job.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/fsio.hpp"

namespace pima::service {

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kAdmitted: return "admitted";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

JobState parse_job_state(const std::string& name) {
  for (const JobState s :
       {JobState::kQueued, JobState::kAdmitted, JobState::kRunning,
        JobState::kDone, JobState::kFailed, JobState::kCancelled})
    if (name == to_string(s)) return s;
  throw InputFormatError("unknown job state '" + name + "'");
}

namespace {

// Shared clamp helper: the same bounds the CLI's typed flag validation
// enforces, so a value that passes `pima_asm submit` also passes the
// daemon and vice versa.
void check_range(const char* field, double value, double min, double max,
                 bool integral) {
  if (!std::isfinite(value) || value < min || value > max ||
      (integral && value != std::floor(value)))
    throw InputFormatError(
        std::string(field) + " must be " + (integral ? "an integer " : "") +
        "in [" + std::to_string(static_cast<long long>(min)) + ", " +
        std::to_string(static_cast<long long>(max)) + "], got " +
        std::to_string(value));
}

}  // namespace

void JobSpec::validate() const {
  if (reads_path.empty())
    throw InputFormatError("job spec: reads path must not be empty");
  check_range("k", static_cast<double>(k), 4, 64, true);
  check_range("shards", static_cast<double>(hash_shards), 1, 4096, true);
  check_range("threads", static_cast<double>(channels), 1, 1024, true);
  check_range("devices", static_cast<double>(devices), 1, 64, true);
  check_range("priority", priority, -1000, 1000, true);
  check_range("stall-timeout", stall_timeout_ms, 0.0, 86'400'000.0, false);
  if (isolation != "none" && isolation != "process")
    throw InputFormatError("job spec: isolation must be \"none\" or "
                           "\"process\", got \"" +
                           isolation + "\"");
}

Json JobSpec::to_json() const {
  Json j = Json::object();
  j.set("reads", reads_path);
  j.set("k", k);
  j.set("shards", hash_shards);
  j.set("threads", channels);
  j.set("devices", devices);
  j.set("euler", euler);
  j.set("priority", priority);
  j.set("stall_timeout_ms", stall_timeout_ms);
  j.set("isolation", isolation);
  return j;
}

JobSpec JobSpec::from_json(const Json& j) {
  JobSpec spec;
  spec.reads_path = j.get_string("reads");
  spec.k = static_cast<std::size_t>(j.get_number("k", 17));
  spec.hash_shards = static_cast<std::size_t>(j.get_number("shards", 16));
  spec.channels = static_cast<std::size_t>(j.get_number("threads", 1));
  spec.devices = static_cast<std::size_t>(j.get_number("devices", 1));
  spec.euler = j.get_bool("euler", false);
  spec.priority = static_cast<int>(j.get_number("priority", 0));
  spec.stall_timeout_ms = j.get_number("stall_timeout_ms", 0.0);
  // Missing (pre-isolation clients and persisted pre-isolation records)
  // defaults to in-process; a non-string value falls back the same way,
  // but a present string must name a known mode (validate below).
  spec.isolation = j.get_string("isolation", "none");
  spec.validate();
  return spec;
}

const char* JobRecord::current_stage() const {
  if (is_terminal(state)) return to_string(state);
  switch (stages_done) {
    case 0: return "hashmap";
    case 1: return "debruijn";
    case 2: return "traverse";
    default: return "finalize";
  }
}

Json JobRecord::to_json() const {
  Json j = Json::object();
  j.set("id", id);
  j.set("spec", spec.to_json());
  j.set("state", to_string(state));
  j.set("seq", seq);
  j.set("stages_done", static_cast<std::uint64_t>(stages_done));
  if (!idempotency_key.empty()) j.set("idempotency_key", idempotency_key);
  if (state == JobState::kFailed) {
    j.set("error_type", error_type);
    j.set("error_message", error_message);
  }
  if (state == JobState::kDone) {
    j.set("contigs", contigs);
    j.set("n50", n50);
    j.set("total_length", total_length);
    j.set("distinct_kmers", distinct_kmers);
  }
  return j;
}

JobRecord JobRecord::from_json(const Json& j) {
  JobRecord r;
  r.id = j.get_string("id");
  if (r.id.empty()) throw InputFormatError("job record: missing id");
  r.spec = JobSpec::from_json(j.get("spec"));
  r.state = parse_job_state(j.get_string("state"));
  // u64 counters use the exact integer accessor: total_length /
  // distinct_kmers on large inputs can exceed 2^53, where the double view
  // would silently round.
  r.seq = j.get_uint64("seq", 0);
  r.stages_done = static_cast<std::uint32_t>(j.get_uint64("stages_done", 0));
  r.idempotency_key = j.get_string("idempotency_key");
  r.error_type = j.get_string("error_type");
  r.error_message = j.get_string("error_message");
  r.contigs = j.get_uint64("contigs", 0);
  r.n50 = j.get_uint64("n50", 0);
  r.total_length = j.get_uint64("total_length", 0);
  r.distinct_kmers = j.get_uint64("distinct_kmers", 0);
  return r;
}

void save_job_record(const std::string& dir, const JobRecord& record) {
  // Torn-write-safe (tmp + fsync + rename + dir fsync) and fault-injectable:
  // chaos tests target the "job.json" site to tear state transitions.
  fsio::atomic_write_file(dir + "/job.json", record.to_json().dump() + "\n",
                          "job.json");
}

JobRecord load_job_record(const std::string& dir) {
  const std::string path = dir + "/job.json";
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return JobRecord::from_json(Json::parse(buf.str()));
}

}  // namespace pima::service
