// Job model for the assembly service: what a client submits (JobSpec),
// where it is in its lifecycle (JobState), and everything the daemon
// tracks/persists about it (JobRecord).
//
// Lifecycle (DESIGN.md §12):
//
//   queued ──admit──> admitted ──runner──> running ──┬──> done
//     │                  │                  │        ├──> failed
//     └──────cancel──────┴──────────────────┘        └──> cancelled
//
// `running` advances through the paper's Fig. 5 stages (hashmap →
// debruijn → traverse); `stages_done` counts durable stage checkpoints.
// A daemon restart re-queues every non-terminal job and the pipeline's
// checkpoint/resume machinery (PR 4) continues from the last snapshot —
// the resumed output is bit-identical to an uninterrupted run.
//
// JobRecord persists as `<job dir>/job.json`, rewritten atomically
// (tmp + rename) at every state transition, so a SIGKILLed daemon can
// reconstruct its whole job table on restart.
#pragma once

#include <cstdint>
#include <string>

#include "service/json.hpp"

namespace pima::service {

enum class JobState {
  kQueued,     ///< accepted into the bounded admission queue
  kAdmitted,   ///< picked by the scheduler, runner starting
  kRunning,    ///< pipeline executing (see JobRecord::stages_done)
  kDone,       ///< contigs written, result available
  kFailed,     ///< pipeline raised; error_type/error_message say why
  kCancelled,  ///< cancel verb; never restarted
};

const char* to_string(JobState state);
/// Parses a state name; throws InputFormatError on an unknown name.
JobState parse_job_state(const std::string& name);
inline bool is_terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kCancelled;
}

/// What a client submits. Paths are daemon-side (the daemon and client
/// share a host — unix socket transport). Validation mirrors the CLI's
/// flag clamps: bad values throw InputFormatError naming the field.
struct JobSpec {
  std::string reads_path;          ///< FASTA/FASTQ the daemon reads
  std::size_t k = 17;              ///< k-mer length (4..64)
  std::size_t hash_shards = 16;    ///< hash-table sub-arrays (1..4096)
  std::size_t channels = 1;        ///< per-device channel quota (1..1024)
  std::size_t devices = 1;         ///< simulated devices the job shards
                                   ///< over (1..64); admission charges
                                   ///< devices × channels against the
                                   ///< daemon's --channel-budget
  bool euler = false;              ///< Euler walks vs unitigs
  int priority = 0;                ///< higher runs first; FIFO within equal
  double stall_timeout_ms = 0.0;   ///< per-job watchdog budget (0 = off)
  /// "none" runs the job's device shards in the daemon's address space;
  /// "process" runs each shard in a pima_devd worker process under the
  /// crash-containing supervisor (runtime/procpool.hpp). Either way the
  /// job charges devices × channels against --channel-budget — isolation
  /// moves the work, it does not multiply it.
  std::string isolation = "none";

  /// Field-by-field validation; throws InputFormatError on the first bad
  /// field. Called on submit (server side) and by from_json.
  void validate() const;

  Json to_json() const;
  static JobSpec from_json(const Json& j);

  bool operator==(const JobSpec&) const = default;
};

/// Everything the daemon knows about one job. The daemon mutates records
/// under its own lock; this struct is plain data.
struct JobRecord {
  std::string id;        ///< "j0001", monotonically assigned, never reused
  JobSpec spec;
  JobState state = JobState::kQueued;
  std::uint64_t seq = 0;          ///< submission order (FIFO tie-break)
  std::uint32_t stages_done = 0;  ///< durable stage checkpoints (0..3)
  /// Client-chosen dedupe token (may be empty). A resubmit carrying the
  /// same key returns this job instead of creating a new one; persisted
  /// so the dedupe table survives daemon restarts.
  std::string idempotency_key;

  // Failure context (state == kFailed).
  std::string error_type;     ///< exception class name
  std::string error_message;

  // Result summary (state == kDone).
  std::uint64_t contigs = 0;
  std::uint64_t n50 = 0;
  std::uint64_t total_length = 0;
  std::uint64_t distinct_kmers = 0;

  /// Human name of the Fig. 5 stage the job is in (from stages_done).
  const char* current_stage() const;

  Json to_json() const;
  static JobRecord from_json(const Json& j);
};

/// Atomic (tmp + rename) persistence of `record` to `<dir>/job.json`.
/// Throws IoError on OS failures.
void save_job_record(const std::string& dir, const JobRecord& record);

/// Loads `<dir>/job.json`; throws IoError if unreadable and
/// InputFormatError if it does not parse as a job record.
JobRecord load_job_record(const std::string& dir);

}  // namespace pima::service
