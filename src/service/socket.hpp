// Forwarding header: the socket/line-framing layer moved to src/net
// (net/socket.hpp) so the process-pool runtime can reuse it without
// linking the service layer. Service code keeps its historical spellings
// (service::LineChannel, service::ScopedFd, ...) via aliases.
#pragma once

#include "net/socket.hpp"

namespace pima::service {

using net::LineChannel;
using net::ScopedFd;
using net::accept_connection;
using net::connect_tcp;
using net::connect_unix;
using net::listen_tcp;
using net::listen_unix;

}  // namespace pima::service
