// Thin POSIX socket layer for the service wire protocol.
//
// The daemon listens on a unix-domain stream socket (the default: local,
// permission-guarded by the filesystem) and optionally on a loopback TCP
// port. Both carry the same newline-delimited JSON protocol, so the
// client code is transport-agnostic once connected.
//
// Everything here throws IoError on OS failures (mapping to the
// documented I/O exit code) and retries EINTR, so callers never see
// partial reads/writes or signal-induced short counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace pima::service {

/// Owning file descriptor (move-only). -1 = empty.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { close_fd(); }
  ScopedFd(ScopedFd&& other) noexcept : fd_(other.release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      close_fd();
      fd_ = other.release();
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void close_fd();

 private:
  int fd_ = -1;
};

/// Binds and listens on a unix stream socket. An existing socket file at
/// `path` is unlinked first (a daemon SIGKILLed mid-run leaves one
/// behind); a live daemon on the same path would lose its listener, so
/// callers use distinct state dirs per daemon. Throws IoError if the path
/// exceeds sockaddr_un limits or any syscall fails.
ScopedFd listen_unix(const std::string& path, int backlog = 16);

/// Binds and listens on loopback (127.0.0.1) TCP with SO_REUSEADDR.
ScopedFd listen_tcp(std::uint16_t port, int backlog = 16);

/// Connects to a unix socket / loopback TCP port. Throws IoError.
ScopedFd connect_unix(const std::string& path);
ScopedFd connect_tcp(std::uint16_t port);

/// Accepts one connection; retries EINTR. Returns an empty fd when the
/// listener has been closed/shut down (daemon shutdown path).
ScopedFd accept_connection(int listener_fd);

/// Buffered line-framed I/O over a connected socket. One LineChannel per
/// connection, single-threaded use.
class LineChannel {
 public:
  explicit LineChannel(int fd) : fd_(fd) {}

  /// Reads up to and including the next '\n'; the returned line excludes
  /// it. Returns false on clean EOF with no buffered partial line. A
  /// closed-by-peer mid-line counts as EOF (the partial line is dropped —
  /// NDJSON frames are only valid once terminated). Lines beyond
  /// kMaxLineBytes throw IoError (protocol abuse guard).
  bool read_line(std::string& line);

  /// Writes `line` plus '\n', looping over partial writes. Throws IoError
  /// on any socket error (including EPIPE when the peer vanished).
  void write_line(const std::string& line);

  static constexpr std::size_t kMaxLineBytes = 64u << 20;  // 64 MiB

 private:
  int fd_;
  std::string buffer_;
  std::size_t scan_from_ = 0;
};

}  // namespace pima::service
