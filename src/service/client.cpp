#include "service/client.hpp"

#include "common/error.hpp"

namespace pima::service {

Client Client::connect_unix_socket(const std::string& path,
                                   double timeout_s) {
  return Client(connect_unix(path, timeout_s), timeout_s);
}

Client Client::connect_tcp_port(std::uint16_t port, double timeout_s) {
  return Client(connect_tcp(port, timeout_s), timeout_s);
}

Json Client::request(const Json& req) {
  channel_.write_line(req.dump());
  std::string line;
  if (!channel_.read_line(line))
    throw IoError("daemon closed the connection before responding");
  return Json::parse(line);
}

Json Client::stream(const Json& req,
                    const std::function<bool(const Json&)>& on_line) {
  channel_.write_line(req.dump());
  std::string line;
  Json last;
  bool any = false;
  while (channel_.read_line(line)) {
    last = Json::parse(line);
    any = true;
    if (!on_line(last)) break;
  }
  if (!any) throw IoError("daemon closed the connection before responding");
  return last;
}

}  // namespace pima::service
