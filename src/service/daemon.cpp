#include "service/daemon.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/fsio.hpp"
#include "core/pipeline.hpp"
#include "dna/fasta.hpp"
#include "dram/device.hpp"
#include "net/http.hpp"
#include "telemetry/log.hpp"
#include "telemetry/session.hpp"

namespace pima::service {

using net::HttpRequest;
using net::http_response;
using net::read_http_request;

namespace fs = std::filesystem;

namespace {

constexpr const char* kContigsFile = "contigs.fa";

/// What a job charges against the daemon's --channel-budget: a sharded job
/// runs `devices` engines of `channels` workers each, so it occupies the
/// full product while running.
std::size_t channel_cost(const JobSpec& spec) {
  return spec.devices * spec.channels;
}

/// Exception class name recorded in JobRecord::error_type — the same
/// taxonomy exit_code_for maps to process exit codes, here as a string so
/// a client can branch on it.
const char* error_type_name(const std::exception& e) {
  if (dynamic_cast<const InputFormatError*>(&e) != nullptr)
    return "InputFormatError";
  if (dynamic_cast<const CorruptCheckpointError*>(&e) != nullptr)
    return "CorruptCheckpointError";
  if (dynamic_cast<const IoError*>(&e) != nullptr) return "IoError";
  if (dynamic_cast<const EngineStalledError*>(&e) != nullptr)
    return "EngineStalledError";
  if (dynamic_cast<const SimulationError*>(&e) != nullptr)
    return "SimulationError";
  if (dynamic_cast<const AdmissionRejectedError*>(&e) != nullptr)
    return "AdmissionRejectedError";
  if (dynamic_cast<const CancelledError*>(&e) != nullptr)
    return "CancelledError";
  if (dynamic_cast<const DeadlineExceededError*>(&e) != nullptr)
    return "DeadlineExceededError";
  return "RuntimeError";
}

/// Idempotency keys travel in JSON and become part of job.json; keep them
/// to a safe charset and a sane length so a hostile key cannot smuggle
/// structure into logs or filenames.
void validate_idempotency_key(const std::string& key) {
  if (key.size() > 128)
    throw InputFormatError("idempotency_key exceeds 128 bytes");
  for (const char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok)
      throw InputFormatError(
          "idempotency_key may only contain [A-Za-z0-9._-]");
  }
}

Json error_response(const char* type, const std::string& message) {
  Json j = Json::object();
  j.set("ok", false);
  j.set("error", std::string(type));
  j.set("message", message);
  return j;
}

}  // namespace

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)), queue_(options_.admission) {
  if (options_.socket_path.empty())
    throw InputFormatError("daemon: socket path must not be empty");
  if (options_.state_dir.empty())
    throw InputFormatError("daemon: state dir must not be empty");
  if (options_.max_connections == 0)
    throw InputFormatError("daemon: max connections must be positive");
  options_.geometry.validate();
}

Daemon::~Daemon() {
  // run() joins everything before returning; nothing left to do here
  // unless run() was never called.
  for (auto& [id, entry] : jobs_)
    if (entry->runner.joinable()) entry->runner.join();
  // The wake pipe outlives run(): the caller detaches its signal-handler
  // pointer to this daemon after run() returns, and only then is closing
  // the fd request_shutdown() writes to safe. Swap to -1 first so a
  // handler that still fires observes an invalid fd, never a closed one.
  const int wake_write = wake_write_.exchange(-1, std::memory_order_acq_rel);
  if (wake_write >= 0) ::close(wake_write);
  if (wake_read_ >= 0) ::close(wake_read_);
}

std::string Daemon::job_dir(const std::string& id) const {
  return options_.state_dir + "/jobs/" + id;
}

void Daemon::persist(const JobEntry& entry) const {
  save_job_record(job_dir(entry.record.id), entry.record);
}

void Daemon::recover_jobs() {
  const fs::path jobs_root = fs::path(options_.state_dir) / "jobs";
  std::error_code ec;
  fs::create_directories(jobs_root, ec);
  if (ec) throw IoError("cannot create " + jobs_root.string());

  // Deterministic recovery order: sorted job ids (== submission order,
  // ids are zero-padded monotonics).
  std::vector<std::string> ids;
  for (const auto& dirent : fs::directory_iterator(jobs_root)) {
    if (!dirent.is_directory()) continue;
    if (fs::exists(dirent.path() / "job.json"))
      ids.push_back(dirent.path().filename().string());
  }
  std::sort(ids.begin(), ids.end());

  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::string& id : ids) {
    JobRecord record;
    try {
      record = load_job_record(job_dir(id));
    } catch (const std::exception& e) {
      telemetry::log_event(telemetry::LogLevel::kWarn, "job.unreadable",
                           "skipping unreadable job " + id + ": " + e.what(),
                           {telemetry::LogField::str("job", id)});
      continue;
    }
    auto entry = std::make_unique<JobEntry>();
    entry->record = std::move(record);
    entry->registry.set_default_labels({{"job", id}});
    next_seq_ = std::max(next_seq_, entry->record.seq + 1);
    if (id.size() > 1 && id[0] == 'j') {
      const std::uint64_t n = std::strtoull(id.c_str() + 1, nullptr, 10);
      next_id_ = std::max(next_id_, n + 1);
    }
    if (!is_terminal(entry->record.state)) {
      // The daemon died (or was SIGKILLed) with this job in flight. Its
      // stage checkpoints are durable; re-queue it and the pipeline's
      // resume path continues from the last snapshot.
      try {
        queue_.restore(id, entry->record.spec.priority, entry->record.seq,
                       channel_cost(entry->record.spec));
        entry->record.state = JobState::kQueued;
        service_registry_
            .counter("pima_service_jobs_recovered_total",
                     "jobs re-queued after a daemon restart", {},
                     telemetry::MetricClass::kHost)
            .increment();
      } catch (const AdmissionRejectedError& e) {
        // Daemon restarted with a smaller channel budget than this job's
        // quota: it can never run here. Typed terminal failure.
        entry->record.state = JobState::kFailed;
        entry->record.error_type = "AdmissionRejectedError";
        entry->record.error_message = e.what();
      }
      persist(*entry);
    }
    // Rebuild the idempotency index from the persisted records (emplace
    // keeps the first — lowest-id — job if a key somehow appears twice).
    if (!entry->record.idempotency_key.empty())
      idem_index_.emplace(entry->record.idempotency_key, id);
    jobs_.emplace(id, std::move(entry));
  }
  update_service_gauges();
}

void Daemon::update_service_gauges() {
  service_registry_
      .gauge("pima_service_queue_depth", "jobs waiting for admission", {},
             telemetry::MetricClass::kHost)
      .set(static_cast<double>(queue_.size()));
  service_registry_
      .gauge("pima_service_jobs_running", "jobs currently executing", {},
             telemetry::MetricClass::kHost)
      .set(static_cast<double>(running_jobs_));
  service_registry_
      .gauge("pima_service_channels_in_use",
             "sum of running jobs' channel quotas", {},
             telemetry::MetricClass::kHost)
      .set(static_cast<double>(used_channels_));
}

void Daemon::maybe_dispatch() {
  // Note: draining_ does NOT stop dispatch — drain means "run the queue
  // dry, then stop", so already-accepted jobs keep starting; only new
  // submits are refused. Shutdown is the opposite: stop starting work.
  while (!stopping()) {
    const std::string id = queue_.pop_admissible(running_jobs_, used_channels_);
    if (id.empty()) break;
    JobEntry& entry = *jobs_.at(id);
    entry.record.state = JobState::kAdmitted;
    persist(entry);
    ++running_jobs_;
    used_channels_ += channel_cost(entry.record.spec);
    if (entry.runner.joinable()) entry.runner.join();  // prior incarnation
    entry.runner = std::thread([this, &entry] { run_job(entry); });
  }
  update_service_gauges();
  cv_.notify_all();
}

void Daemon::run_job(JobEntry& entry) {
  const std::string dir = job_dir(entry.record.id);
  JobSpec spec;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entry.record.state = JobState::kRunning;
    persist(entry);
    spec = entry.record.spec;
    cv_.notify_all();
  }

  try {
    // Every metric the pipeline/engine registers from this thread (and
    // from the engine's worker/watchdog threads, which inherit the
    // override) lands in the job's own registry, tagged {job="<id>"}.
    telemetry::ScopedMetricsRegistry scope(&entry.registry);

    const auto reads = [&] {
      const auto records = dna::read_fasta_file(spec.reads_path);
      std::vector<dna::Sequence> seqs;
      seqs.reserve(records.size());
      for (const auto& r : records) seqs.push_back(r.seq);
      return seqs;
    }();

    dram::Device device(options_.geometry);
    core::PipelineOptions opt;
    opt.k = spec.k;
    opt.hash_shards = spec.hash_shards;
    opt.euler_contigs = spec.euler;
    opt.threads = spec.channels;
    opt.devices = spec.devices;
    // "process" isolation: the job's device shards run in pima_devd
    // children of the daemon; a crashing shard is restarted (or the job
    // degrades to in-process) instead of taking the daemon down.
    opt.isolate = spec.isolation == "process";
    opt.stall_timeout_ms = spec.stall_timeout_ms;
    opt.checkpoint_dir = dir;
    opt.resume = true;  // continue from any durable stage snapshot
    opt.cancel = &entry.cancel;
    opt.on_checkpoint = [this, &entry](std::uint32_t stage,
                                       const std::string&) {
      std::lock_guard<std::mutex> lock(mutex_);
      entry.record.stages_done = std::max(entry.record.stages_done, stage);
      persist(entry);
      cv_.notify_all();
    };

    const auto result = core::run_pipeline(device, reads, opt);

    std::vector<dna::Record> records;
    records.reserve(result.contigs.size());
    for (std::size_t i = 0; i < result.contigs.size(); ++i)
      records.push_back({"contig_" + std::to_string(i), result.contigs[i]});
    dna::write_fasta_file(dir + "/" + kContigsFile, records);

    std::lock_guard<std::mutex> lock(mutex_);
    entry.record.state = JobState::kDone;
    entry.record.stages_done = 3;
    entry.record.contigs = result.contig_stats.count;
    entry.record.n50 = result.contig_stats.n50;
    entry.record.total_length = result.contig_stats.total_length;
    entry.record.distinct_kmers = result.distinct_kmers;
    persist(entry);
  } catch (const CancelledError&) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (entry.requeue_on_cancel) {
      // Shutdown-path cancellation: the job did nothing wrong. Back to
      // queued; the next daemon start resumes it from its checkpoints.
      entry.record.state = JobState::kQueued;
    } else {
      entry.record.state = JobState::kCancelled;
    }
    persist(entry);
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(mutex_);
    entry.record.state = JobState::kFailed;
    entry.record.error_type = error_type_name(e);
    entry.record.error_message = e.what();
    persist(entry);
  }

  std::lock_guard<std::mutex> lock(mutex_);
  service_registry_
      .counter("pima_service_jobs_finished_total",
               "jobs that reached a terminal state (or were re-queued by "
               "shutdown), by state",
               {{"state", to_string(entry.record.state)}},
               telemetry::MetricClass::kHost)
      .increment();
  --running_jobs_;
  used_channels_ -= channel_cost(entry.record.spec);
  maybe_dispatch();  // a finished job may unblock the queue head
}

Json Daemon::status_json(const JobEntry& entry) const {
  Json j = Json::object();
  j.set("ok", true);
  j.set("job", entry.record.id);
  j.set("state", std::string(to_string(entry.record.state)));
  j.set("stage", std::string(entry.record.current_stage()));
  j.set("stages_done", static_cast<std::uint64_t>(entry.record.stages_done));
  j.set("priority", entry.record.spec.priority);
  if (entry.record.state == JobState::kFailed) {
    j.set("error", entry.record.error_type);
    j.set("message", entry.record.error_message);
  }
  if (entry.record.state == JobState::kDone) {
    j.set("contigs", entry.record.contigs);
    j.set("n50", entry.record.n50);
    j.set("total_length", entry.record.total_length);
    j.set("distinct_kmers", entry.record.distinct_kmers);
  }
  return j;
}

Json Daemon::verb_submit(const Json& request) {
  const JobSpec spec = JobSpec::from_json(request);  // validates
  const std::string idem_key = request.get_string("idempotency_key");
  validate_idempotency_key(idem_key);
  std::lock_guard<std::mutex> lock(mutex_);
  service_registry_
      .counter("pima_service_jobs_submitted_total", "submit verbs received",
               {}, telemetry::MetricClass::kHost)
      .increment();
  if (!idem_key.empty()) {
    // Idempotent submit: a key the daemon has already accepted (this
    // incarnation or a recovered one) returns the original job instead of
    // creating a duplicate — even while draining, since the work was
    // already admitted. The client's retry loop relies on this.
    const auto hit = idem_index_.find(idem_key);
    if (hit != idem_index_.end()) {
      service_registry_
          .counter("pima_service_submits_deduped_total",
                   "submits answered by an existing job via idempotency_key",
                   {}, telemetry::MetricClass::kHost)
          .increment();
      Json response = status_json(*jobs_.at(hit->second));
      response.set("deduped", true);
      return response;
    }
  }
  const auto reject = [this](const std::string& message) {
    service_registry_
        .counter("pima_service_jobs_rejected_total",
                 "submits refused by admission control", {},
                 telemetry::MetricClass::kHost)
        .increment();
    throw AdmissionRejectedError(message);
  };
  if (draining_ || stopping()) reject("daemon is draining; not accepting jobs");

  char id_buf[16];
  std::snprintf(id_buf, sizeof(id_buf), "j%04llu",
                static_cast<unsigned long long>(next_id_));
  const std::string id = id_buf;
  const std::uint64_t seq = next_seq_;
  try {
    queue_.push(id, spec.priority, seq, channel_cost(spec));
  } catch (const AdmissionRejectedError& e) {
    reject(e.what());
  }
  ++next_id_;
  ++next_seq_;

  auto entry = std::make_unique<JobEntry>();
  entry->record.id = id;
  entry->record.spec = spec;
  entry->record.state = JobState::kQueued;
  entry->record.seq = seq;
  entry->record.idempotency_key = idem_key;
  entry->registry.set_default_labels({{"job", id}});

  std::error_code ec;
  fs::create_directories(job_dir(id), ec);
  if (ec) {
    queue_.remove(id);
    throw IoError("cannot create job dir " + job_dir(id));
  }
  persist(*entry);  // key lands in job.json BEFORE the index — crash-safe
  if (!idem_key.empty()) idem_index_.emplace(idem_key, id);
  Json response = status_json(*entry);
  jobs_.emplace(id, std::move(entry));
  maybe_dispatch();
  return response;
}

Json Daemon::verb_status(const Json& request, LineChannel& channel,
                         bool& close) {
  const std::string id = request.get_string("job");
  const bool follow = request.get_bool("follow", false);
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    return error_response("NotFound", "no such job: " + id);
  if (!follow) return status_json(*it->second);

  // Streaming status: one line per observed change, final line is the
  // terminal state (or the latest state if the daemon stops first), then
  // the connection closes — a client can `submit` + `status --follow` and
  // block until completion.
  //
  // Every write happens with mutex_ RELEASED: write_line blocks when the
  // peer stops draining its socket, and a slow follow client must not be
  // able to wedge the daemon-wide lock (every verb, job state transition,
  // and graceful shutdown acquires it). The snapshot is taken under the
  // lock, the bytes go out without it. A failed write means the client is
  // gone; stop following. Entry pointers are stable (jobs_ never erases),
  // so holding `entry` across the unlock window is safe.
  JobEntry& entry = *it->second;
  const auto send_unlocked = [&](const std::string& snapshot) {
    lock.unlock();
    bool sent = true;
    try {
      channel.write_line(snapshot);
    } catch (const std::exception&) {
      sent = false;
    }
    lock.lock();
    return sent;
  };
  JobState last_state = entry.record.state;
  std::uint32_t last_stages = entry.record.stages_done;
  bool client_alive = send_unlocked(status_json(entry).dump());
  while (client_alive && !is_terminal(entry.record.state) && !stopping()) {
    cv_.wait_for(lock, std::chrono::milliseconds(200));
    if (entry.record.state != last_state ||
        entry.record.stages_done != last_stages) {
      last_state = entry.record.state;
      last_stages = entry.record.stages_done;
      client_alive = send_unlocked(status_json(entry).dump());
    }
  }
  if (client_alive && (entry.record.state != last_state ||
                       entry.record.stages_done != last_stages))
    send_unlocked(status_json(entry).dump());
  close = true;
  return Json();  // null sentinel: responses already streamed
}

Json Daemon::verb_result(const Json& request) {
  const std::string id = request.get_string("job");
  const bool fetch = request.get_bool("fetch", false);
  std::string contigs_path;
  Json response;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
      return error_response("NotFound", "no such job: " + id);
    const JobEntry& entry = *it->second;
    if (entry.record.state != JobState::kDone) {
      Json err = error_response(
          "JobNotDone", "job " + id + " is " + to_string(entry.record.state));
      err.set("state", std::string(to_string(entry.record.state)));
      return err;
    }
    response = status_json(entry);
    contigs_path = job_dir(id) + "/" + kContigsFile;
    response.set("contigs_path", contigs_path);
  }
  if (fetch) {
    std::ifstream in(contigs_path, std::ios::binary);
    if (!in) return error_response("IoError", "cannot open " + contigs_path);
    std::ostringstream buf;
    buf << in.rdbuf();
    response.set("fasta", buf.str());
  }
  return response;
}

Json Daemon::verb_cancel(const Json& request) {
  const std::string id = request.get_string("job");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    return error_response("NotFound", "no such job: " + id);
  JobEntry& entry = *it->second;
  if (queue_.remove(id)) {
    entry.record.state = JobState::kCancelled;
    persist(entry);
    service_registry_
        .counter("pima_service_jobs_finished_total",
                 "jobs that reached a terminal state (or were re-queued by "
                 "shutdown), by state",
                 {{"state", to_string(entry.record.state)}},
                 telemetry::MetricClass::kHost)
        .increment();
    update_service_gauges();
    cv_.notify_all();
  } else if (!is_terminal(entry.record.state)) {
    // Running (or admitted): cooperative — the pipeline raises
    // CancelledError at its next cancellation point.
    entry.cancel.request("cancel verb");
  }
  return status_json(entry);
}

Json Daemon::verb_list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json arr = Json::array();
  for (const auto& [id, entry] : jobs_) arr.push_back(status_json(*entry));
  Json j = Json::object();
  j.set("ok", true);
  j.set("jobs", arr);
  return j;
}

std::string Daemon::aggregate_metrics(bool as_json) {
  telemetry::MetricsRegistry aggregate;
  std::lock_guard<std::mutex> lock(mutex_);
  aggregate.merge_from(service_registry_);
  for (const auto& [id, entry] : jobs_) aggregate.merge_from(entry->registry);
  // Fold the fsio shim's process-wide injection counters. common/ sits
  // below telemetry/, so fsio keeps plain atomics; publishing absolute
  // snapshots into this per-call fresh registry preserves counter
  // semantics. dirsync_failed also counts REAL failures (filesystems that
  // reject directory fsync), plan or no plan — satellite 3.
  const fsio::Counters io = fsio::counters();
  const auto fold = [&](const char* name, const char* help,
                        std::uint64_t value) {
    aggregate
        .counter(name, help, {}, telemetry::MetricClass::kHost)
        .add(static_cast<double>(value));
  };
  fold("pima_io_fault_injected_total",
       "syscall faults injected by the fsio shim (all kinds)",
       io.injected_total);
  fold("pima_io_fault_errno_total", "injected hard errno failures",
       io.errno_injected);
  fold("pima_io_fault_eintr_total", "injected EINTR interruptions",
       io.eintr_injected);
  fold("pima_io_fault_short_total", "injected short reads/writes",
       io.short_injected);
  fold("pima_io_fault_crash_points_total",
       "torn-write crash points taken (counted just before _exit)",
       io.crash_points);
  fold("pima_io_fault_dirsync_failed_total",
       "directory fsyncs that failed after a rename (real or injected)",
       io.dirsync_failed);
  return as_json ? aggregate.json_snapshot() : aggregate.prometheus_text();
}

Json Daemon::verb_metrics(const Json& request) {
  const std::string format = request.get_string("format", "prometheus");
  Json j = Json::object();
  j.set("ok", true);
  j.set("format", format);
  if (format == "prometheus") {
    j.set("body", aggregate_metrics(false));
  } else if (format == "json") {
    j.set("body", aggregate_metrics(true));
  } else {
    return error_response("InputFormatError",
                          "unknown metrics format '" + format +
                              "' (prometheus|json)");
  }
  return j;
}

Json Daemon::verb_drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  draining_ = true;
  cv_.wait(lock, [this] {
    return (queue_.empty() && running_jobs_ == 0) || stopping();
  });
  Json j = Json::object();
  j.set("ok", true);
  j.set("drained", queue_.empty() && running_jobs_ == 0);
  std::uint64_t done = 0, failed = 0, cancelled = 0;
  for (const auto& [id, entry] : jobs_) {
    switch (entry->record.state) {
      case JobState::kDone: ++done; break;
      case JobState::kFailed: ++failed; break;
      case JobState::kCancelled: ++cancelled; break;
      default: break;
    }
  }
  j.set("done", done);
  j.set("failed", failed);
  j.set("cancelled", cancelled);
  return j;
}

bool Daemon::dispatch_verb(const Json& request, LineChannel& channel) {
  std::string verb;
  Json response;
  bool close = false;
  try {
    verb = request.get_string("verb");
    if (verb.empty())
      throw InputFormatError("request is missing the 'verb' field");
    if (verb == "ping") {
      response = Json::object();
      response.set("ok", true);
      response.set("service", std::string("pima_asm"));
      response.set("protocol", static_cast<std::int64_t>(1));
    } else if (verb == "submit") {
      response = verb_submit(request);
    } else if (verb == "status") {
      response = verb_status(request, channel, close);
    } else if (verb == "result") {
      response = verb_result(request);
    } else if (verb == "cancel") {
      response = verb_cancel(request);
    } else if (verb == "list") {
      response = verb_list();
    } else if (verb == "metrics") {
      response = verb_metrics(request);
    } else if (verb == "drain") {
      // Reply before signaling shutdown — the shutdown path SHUT_RDWRs
      // every connection, and the client must still see this response.
      channel.write_line(verb_drain().dump());
      request_shutdown();
      return false;
    } else if (verb == "shutdown") {
      response = Json::object();
      response.set("ok", true);
      response.set("stopping", true);
      channel.write_line(response.dump());
      request_shutdown();
      return false;
    } else {
      throw InputFormatError("unknown verb '" + verb + "'");
    }
  } catch (const std::exception& e) {
    response = error_response(error_type_name(e), e.what());
  }
  if (response.type() != Json::Type::kNull)
    channel.write_line(response.dump());
  return !close;
}

void Daemon::handle_connection(ConnSlot* slot) {
  LineChannel channel(slot->fd.load(std::memory_order_acquire));
  std::string line;
  try {
    while (channel.read_line(line)) {
      if (line.empty()) continue;
      Json request;
      try {
        request = Json::parse(line);
      } catch (const std::exception& e) {
        channel.write_line(
            error_response("InputFormatError", e.what()).dump());
        continue;
      }
      if (!dispatch_verb(request, channel)) break;
    }
  } catch (const std::exception&) {
    // Peer vanished mid-write or abused the protocol; drop the connection.
  }
  // The slot owns the fd; retract it and close under conn_mutex_ so the
  // shutdown sweep's ::shutdown() can never race this close and hit a
  // recycled descriptor.
  std::lock_guard<std::mutex> lock(conn_mutex_);
  const int fd = slot->fd.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

void Daemon::handle_http(ConnSlot* slot) {
  const int conn_fd = slot->fd.load(std::memory_order_acquire);
  try {
    HttpRequest request;
    // A scraper that connects and stalls must not pin a slot forever.
    if (read_http_request(conn_fd, request, /*timeout_s=*/10.0)) {
      std::string response;
      if (request.method != "GET" && request.method != "HEAD") {
        response = http_response(405, "text/plain; charset=utf-8",
                                 "only GET is served here\n");
      } else if (request.target == "/metrics") {
        // Byte-identical to the `metrics` verb's prometheus body: both
        // call the same deterministic fold.
        response = http_response(200,
                                 "text/plain; version=0.0.4; charset=utf-8",
                                 aggregate_metrics(/*as_json=*/false));
      } else if (request.target == "/healthz") {
        response = http_response(200, "text/plain; charset=utf-8",
                                 stopping() ? "draining\n" : "ok\n");
      } else if (request.target == "/jobs") {
        response = http_response(200, "application/json",
                                 verb_list().dump() + "\n");
      } else {
        response = http_response(404, "text/plain; charset=utf-8",
                                 "not found (try /metrics, /healthz, "
                                 "/jobs)\n");
      }
      if (request.method == "HEAD") {
        const std::size_t head_end = response.find("\r\n\r\n");
        if (head_end != std::string::npos) response.resize(head_end + 4);
      }
      std::size_t off = 0;
      while (off < response.size()) {
        const ssize_t n = fsio::send(conn_fd, response.data() + off,
                                     response.size() - off, MSG_NOSIGNAL,
                                     "http");
        if (n < 0) {
          if (errno == EINTR) continue;
          break;  // peer gone; nothing to salvage
        }
        off += static_cast<std::size_t>(n);
      }
    }
  } catch (const std::exception&) {
    // Malformed request, deadline, or a vanished peer: drop it.
  }
  std::lock_guard<std::mutex> lock(conn_mutex_);
  const int fd = slot->fd.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

void Daemon::reap_connections() {
  // Harvest slots whose connection thread is done (fd already retracted
  // to -1 under conn_mutex_, so nothing but the thread's return remains);
  // join outside the lock. Called from the accept loop, keeping the live
  // slot count bounded by the actual number of open connections.
  std::vector<std::unique_ptr<ConnSlot>> finished;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    auto it = connections_.begin();
    while (it != connections_.end()) {
      if ((*it)->fd.load(std::memory_order_acquire) < 0) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& slot : finished)
    if (slot->thread.joinable()) slot->thread.join();
}

void Daemon::request_shutdown() {
  // Async-signal-safe: errno save/restore, atomic ops, write(2) — nothing
  // else. wake_write_ stays valid until the destructor, after the caller
  // has detached any signal-handler pointer to this daemon.
  const int saved_errno = errno;
  shutdown_requested_.store(true, std::memory_order_release);
  const int fd = wake_write_.load(std::memory_order_acquire);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
  errno = saved_errno;
}

void Daemon::run() {
  // Metric recording is gated process-wide; the daemon always collects
  // (that's half its point — a /metrics endpoint over every job). Which
  // registry a sample lands in is per-thread (ScopedMetricsRegistry).
  telemetry::TelemetrySession::instance().enable_metrics();
  recover_jobs();

  int wake_pipe[2] = {-1, -1};
  if (::pipe(wake_pipe) != 0) throw IoError("cannot create wake pipe");
  wake_read_ = wake_pipe[0];
  wake_write_.store(wake_pipe[1], std::memory_order_release);

  ScopedFd unix_listener = listen_unix(options_.socket_path);
  ScopedFd tcp_listener;
  if (options_.tcp_port != 0) tcp_listener = listen_tcp(options_.tcp_port);
  ScopedFd http_listener;
  if (options_.http_port != 0) http_listener = listen_tcp(options_.http_port);

  {
    // Recovered jobs may start immediately.
    std::lock_guard<std::mutex> lock(mutex_);
    maybe_dispatch();
  }

  while (!stopping()) {
    struct pollfd fds[4];
    fds[0] = {wake_read_, POLLIN, 0};
    fds[1] = {unix_listener.get(), POLLIN, 0};
    nfds_t nfds = 2;
    if (tcp_listener.valid()) fds[nfds++] = {tcp_listener.get(), POLLIN, 0};
    if (http_listener.valid()) fds[nfds++] = {http_listener.get(), POLLIN, 0};

    if (::poll(fds, nfds, -1) < 0) {
      if (errno == EINTR) continue;
      throw IoError("poll failed on the daemon listeners");
    }
    if ((fds[0].revents & POLLIN) != 0) break;  // request_shutdown woke us

    for (nfds_t i = 1; i < nfds; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      ScopedFd conn = accept_connection(fds[i].fd);
      if (!conn.valid()) continue;
      reap_connections();
      bool at_cap = false;
      {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        at_cap = connections_.size() >= options_.max_connections;
      }
      if (at_cap) {
        // Transport-level admission control: refuse with a typed error
        // line (best effort — the peer may already be gone) and close.
        try {
          LineChannel refuse(conn.get());
          refuse.write_line(
              error_response("AdmissionRejectedError",
                             "too many concurrent connections")
                  .dump());
        } catch (const std::exception&) {
        }
        continue;
      }
      auto slot = std::make_unique<ConnSlot>();
      ConnSlot* raw = slot.get();
      raw->fd.store(conn.release(), std::memory_order_release);
      {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        connections_.push_back(std::move(slot));
      }
      // HTTP connections share the slot machinery (cap, shutdown sweep,
      // reaping) with NDJSON ones; only the protocol handler differs.
      const bool is_http =
          http_listener.valid() && fds[i].fd == http_listener.get();
      raw->thread = std::thread([this, raw, is_http] {
        is_http ? handle_http(raw) : handle_connection(raw);
      });
    }
  }

  // ---- graceful shutdown ----
  // 1. Stop accepting; wake every waiter (follow watchers, drain).
  unix_listener = ScopedFd();
  tcp_listener = ScopedFd();
  http_listener = ScopedFd();
  cv_.notify_all();

  // 2. Cancel running jobs in shutdown mode: they persist back to
  //    `queued` and resume from their stage checkpoints on next start.
  //    Entry pointers are stable (map of unique_ptr, never erased), so the
  //    join loop can run unlocked — run_job itself needs the mutex to
  //    finish. No new runners start after the flag (maybe_dispatch checks
  //    stopping() under the same lock).
  std::vector<JobEntry*> to_join;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [id, entry] : jobs_) {
      if (entry->record.state == JobState::kAdmitted ||
          entry->record.state == JobState::kRunning) {
        entry->requeue_on_cancel = true;
        entry->cancel.request("daemon shutdown");
      }
      to_join.push_back(entry.get());
    }
  }
  for (JobEntry* entry : to_join)
    if (entry->runner.joinable()) entry->runner.join();

  // 3. Unblock idle connections (blocked in read) and join their threads.
  //    The shutdown() runs under conn_mutex_, the same lock each thread
  //    closes its fd under — it can never hit a closed/recycled fd.
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (auto& slot : connections_) {
      const int fd = slot->fd.load(std::memory_order_acquire);
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  for (auto& slot : connections_)
    if (slot->thread.joinable()) slot->thread.join();

  // The wake pipe deliberately stays open (the destructor closes it): a
  // signal handler may still call request_shutdown() until the caller
  // detaches its pointer to this daemon, which only happens after run()
  // returns.
  ::unlink(options_.socket_path.c_str());
}

}  // namespace pima::service
