#include "service/socket.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.hpp"

namespace pima::service {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

}  // namespace

void ScopedFd::close_fd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ScopedFd listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw IoError("unix socket path too long (" + std::to_string(path.size()) +
                  " bytes, limit " + std::to_string(sizeof(addr.sun_path) - 1) +
                  "): " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  ScopedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(AF_UNIX)");
  // A SIGKILLed daemon leaves its socket file behind; rebinding requires
  // removing it. A *live* daemon is protected by the per-daemon state dir
  // convention, not by this call.
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    throw_errno("bind(" + path + ")");
  if (::listen(fd.get(), backlog) != 0) throw_errno("listen(" + path + ")");
  return fd;
}

ScopedFd listen_tcp(std::uint16_t port, int backlog) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    throw_errno("bind(127.0.0.1:" + std::to_string(port) + ")");
  if (::listen(fd.get(), backlog) != 0)
    throw_errno("listen(tcp:" + std::to_string(port) + ")");
  return fd;
}

ScopedFd connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw IoError("unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ScopedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(AF_UNIX)");
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0)
    throw_errno("connect(" + path + ")");
  return fd;
}

ScopedFd connect_tcp(std::uint16_t port) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0)
    throw_errno("connect(127.0.0.1:" + std::to_string(port) + ")");
  return fd;
}

ScopedFd accept_connection(int listener_fd) {
  for (;;) {
    const int fd = ::accept(listener_fd, nullptr, nullptr);
    if (fd >= 0) return ScopedFd(fd);
    if (errno == EINTR) continue;
    // The daemon shuts its listener down (shutdown()/close()) to break the
    // accept loop; every resulting errno means "stop accepting".
    return ScopedFd();
  }
}

bool LineChannel::read_line(std::string& line) {
  for (;;) {
    const auto nl = buffer_.find('\n', scan_from_);
    if (nl != std::string::npos) {
      line.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      scan_from_ = 0;
      return true;
    }
    scan_from_ = buffer_.size();
    if (buffer_.size() > kMaxLineBytes)
      throw IoError("wire line exceeds " + std::to_string(kMaxLineBytes) +
                    " bytes");
    char chunk[4096];
    ssize_t n;
    do {
      n = ::read(fd_, chunk, sizeof chunk);
    } while (n < 0 && errno == EINTR);
    if (n < 0) throw_errno("read");
    if (n == 0) return false;  // EOF; any partial line is dropped
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void LineChannel::write_line(const std::string& line) {
  std::string framed = line;
  framed += '\n';
  std::size_t off = 0;
  while (off < framed.size()) {
    ssize_t n;
    do {
      // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE → IoError instead
      // of SIGPIPE killing the daemon.
      n = ::send(fd_, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) throw_errno("send");
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace pima::service
