// Golden reference model for differential verification.
//
// A deliberately-naive, obviously-correct re-implementation of the
// computational sub-array: every cell is one byte, every operation is an
// explicit per-column loop of plain host boolean logic, and there is no
// cost model, no tracing, no fault hook — nothing shared with the
// word-parallel production model in dram::Subarray beyond the geometry and
// the documented AAP semantics. SIMDRAM validates its in-DRAM operations
// against exactly this kind of bit-serial reference; here the golden model
// is the oracle the fuzzer and the property tests diff dram::Device
// against (src/verify/differential.hpp).
//
// The model mirrors the production contracts bit for bit:
//   * AAP copy: destination ← source; src == des rejected.
//   * Two-row activation (XNOR/XOR): both activated computation rows are
//     destroyed and restored to the SA result; destination gets it too.
//   * TRA: all three rows, the destination and the carry latch get MAJ3.
//   * Sum cycle: dst/xa/xb ← xa ⊕ xb ⊕ latch; the latch is preserved.
//   * Multi-row activation is legal only on computation rows.
// Precondition violations throw the same PreconditionError the production
// model throws — a program either executes on both models or is rejected
// by both, and either asymmetry is a reportable divergence.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/bitvector.hpp"
#include "dram/geometry.hpp"
#include "dram/isa.hpp"

namespace pima::golden {

/// Naive bit-accurate model of one computational sub-array.
class GoldenSubArray {
 public:
  explicit GoldenSubArray(const dram::Geometry& geometry);

  const dram::Geometry& geometry() const { return geom_; }

  dram::RowAddr compute_row(std::size_t i) const;
  bool is_compute_row(dram::RowAddr r) const;

  bool get(dram::RowAddr r, std::size_t col) const;
  void set(dram::RowAddr r, std::size_t col, bool v);
  bool latch(std::size_t col) const;

  /// Row/latch contents as BitVector for diffing against the production
  /// model (conversion only — storage stays byte-per-cell).
  BitVector row_bits(dram::RowAddr r) const;
  BitVector latch_bits() const;

  void write_row(dram::RowAddr r, const BitVector& bits);
  BitVector read_row(dram::RowAddr r) const;

  // ---- AAP primitives (same contracts as dram::Subarray) ----
  void aap_copy(dram::RowAddr src, dram::RowAddr dst);
  void aap_xnor(dram::RowAddr xa, dram::RowAddr xb, dram::RowAddr dst);
  void aap_xor(dram::RowAddr xa, dram::RowAddr xb, dram::RowAddr dst);
  void aap_tra_carry(dram::RowAddr xa, dram::RowAddr xb, dram::RowAddr xc,
                     dram::RowAddr dst);
  void sum_cycle(dram::RowAddr xa, dram::RowAddr xb, dram::RowAddr dst);
  void reset_latch();

  // ---- Naive composite kernels (golden counterparts of the production
  //      composites; result regions match, scratch state is not modelled) --

  /// Per-column host addition of the vertical numbers in `a_rows`/`b_rows`
  /// (LSB-first): writes the m-bit sums into `sum_rows` and the carry-out
  /// into `carry_out_row` using grade-school binary addition per column.
  void add_vertical(const std::vector<dram::RowAddr>& a_rows,
                    const std::vector<dram::RowAddr>& b_rows,
                    const std::vector<dram::RowAddr>& sum_rows,
                    dram::RowAddr carry_out_row);

  /// Golden PIM_XNOR: per-column equality of rows a and b into result_row.
  void compare_rows(dram::RowAddr a, dram::RowAddr b,
                    dram::RowAddr result_row);

  /// Golden XNOR-compare + DPU AND reduction: true iff the first `width`
  /// columns of rows a and b agree.
  bool rows_match(dram::RowAddr a, dram::RowAddr b, std::size_t width) const;

 private:
  void check_row(dram::RowAddr r) const;
  void check_compute(dram::RowAddr r) const;

  dram::Geometry geom_;
  std::vector<std::vector<std::uint8_t>> rows_;  ///< one byte per cell
  std::vector<std::uint8_t> latch_;
};

/// Device-level mirror: a lazy collection of golden sub-arrays addressed by
/// flat index, exactly like dram::Device.
class GoldenDevice {
 public:
  explicit GoldenDevice(const dram::Geometry& geometry);

  const dram::Geometry& geometry() const { return geom_; }

  GoldenSubArray& subarray(std::size_t flat);
  const GoldenSubArray* subarray_if(std::size_t flat) const;
  std::size_t instantiated_count() const { return subarrays_.size(); }

 private:
  dram::Geometry geom_;
  std::map<std::size_t, GoldenSubArray> subarrays_;
};

/// Result values of the read/reduce instructions, mirroring
/// dram::ExecutionResults field for field.
struct GoldenResults {
  std::vector<BitVector> rows_read;
  std::vector<bool> reductions;
  std::vector<std::size_t> popcounts;
};

/// Executes an AAP program against the golden model with the same
/// consecutive-row `size` expansion and the same validity checks as
/// dram::execute. Reductions are computed with explicit per-bit loops.
GoldenResults execute(GoldenDevice& device, const dram::Program& program);

// ---- Host-arithmetic oracles for the composite kernels -------------------

/// Column sums of 1-bit-per-column adjacency rows — the oracle for the
/// degree kernel (core::pim_column_sums): plain per-column counting.
std::vector<std::uint32_t> column_sums(const std::vector<BitVector>& rows);

/// Reads the vertical number stored LSB-first across `rows` at `col`.
/// rows.size() must be <= 64.
std::uint64_t column_value(const GoldenSubArray& sa,
                           const std::vector<dram::RowAddr>& rows,
                           std::size_t col);

}  // namespace pima::golden
