#include "golden/golden.hpp"

#include "common/error.hpp"

namespace pima::golden {

GoldenSubArray::GoldenSubArray(const dram::Geometry& geometry)
    : geom_(geometry) {
  geom_.validate();
  rows_.assign(geom_.rows, std::vector<std::uint8_t>(geom_.columns, 0));
  latch_.assign(geom_.columns, 0);
}

dram::RowAddr GoldenSubArray::compute_row(std::size_t i) const {
  PIMA_CHECK(i < geom_.compute_rows, "compute row index out of range");
  return geom_.data_rows() + i;
}

bool GoldenSubArray::is_compute_row(dram::RowAddr r) const {
  return r >= geom_.data_rows() && r < geom_.rows;
}

void GoldenSubArray::check_row(dram::RowAddr r) const {
  PIMA_CHECK(r < geom_.rows, "row address out of sub-array");
}

void GoldenSubArray::check_compute(dram::RowAddr r) const {
  check_row(r);
  PIMA_CHECK(is_compute_row(r),
             "multi-row activation outside computation rows");
}

bool GoldenSubArray::get(dram::RowAddr r, std::size_t col) const {
  check_row(r);
  return rows_.at(r).at(col) != 0;
}

void GoldenSubArray::set(dram::RowAddr r, std::size_t col, bool v) {
  check_row(r);
  rows_.at(r).at(col) = v ? 1 : 0;
}

bool GoldenSubArray::latch(std::size_t col) const {
  return latch_.at(col) != 0;
}

BitVector GoldenSubArray::row_bits(dram::RowAddr r) const {
  check_row(r);
  BitVector bits(geom_.columns);
  for (std::size_t c = 0; c < geom_.columns; ++c)
    bits.set(c, rows_[r][c] != 0);
  return bits;
}

BitVector GoldenSubArray::latch_bits() const {
  BitVector bits(geom_.columns);
  for (std::size_t c = 0; c < geom_.columns; ++c) bits.set(c, latch_[c] != 0);
  return bits;
}

void GoldenSubArray::write_row(dram::RowAddr r, const BitVector& bits) {
  check_row(r);
  PIMA_CHECK(bits.size() == geom_.columns, "row width mismatch");
  for (std::size_t c = 0; c < geom_.columns; ++c)
    rows_[r][c] = bits.get(c) ? 1 : 0;
}

BitVector GoldenSubArray::read_row(dram::RowAddr r) const {
  return row_bits(r);
}

void GoldenSubArray::aap_copy(dram::RowAddr src, dram::RowAddr dst) {
  check_row(src);
  check_row(dst);
  PIMA_CHECK(src != dst,
             "AAP copy with src == des aliases the activated row; a "
             "self-copy is a refresh, not a RowClone — issue it explicitly "
             "if that is what the controller means");
  for (std::size_t c = 0; c < geom_.columns; ++c) rows_[dst][c] = rows_[src][c];
}

void GoldenSubArray::aap_xnor(dram::RowAddr xa, dram::RowAddr xb,
                              dram::RowAddr dst) {
  check_compute(xa);
  check_compute(xb);
  check_row(dst);
  PIMA_CHECK(xa != xb, "two-row activation needs two distinct rows");
  for (std::size_t c = 0; c < geom_.columns; ++c) {
    const bool r = (rows_[xa][c] != 0) == (rows_[xb][c] != 0);
    rows_[xa][c] = r ? 1 : 0;
    rows_[xb][c] = r ? 1 : 0;
    rows_[dst][c] = r ? 1 : 0;
  }
}

void GoldenSubArray::aap_xor(dram::RowAddr xa, dram::RowAddr xb,
                             dram::RowAddr dst) {
  check_compute(xa);
  check_compute(xb);
  check_row(dst);
  PIMA_CHECK(xa != xb, "two-row activation needs two distinct rows");
  for (std::size_t c = 0; c < geom_.columns; ++c) {
    const bool r = (rows_[xa][c] != 0) != (rows_[xb][c] != 0);
    rows_[xa][c] = r ? 1 : 0;
    rows_[xb][c] = r ? 1 : 0;
    rows_[dst][c] = r ? 1 : 0;
  }
}

void GoldenSubArray::aap_tra_carry(dram::RowAddr xa, dram::RowAddr xb,
                                   dram::RowAddr xc, dram::RowAddr dst) {
  check_compute(xa);
  check_compute(xb);
  check_compute(xc);
  check_row(dst);
  PIMA_CHECK(xa != xb && xb != xc && xa != xc,
             "TRA needs three distinct rows");
  for (std::size_t c = 0; c < geom_.columns; ++c) {
    const int ones = (rows_[xa][c] != 0 ? 1 : 0) + (rows_[xb][c] != 0 ? 1 : 0) +
                     (rows_[xc][c] != 0 ? 1 : 0);
    const bool maj = ones >= 2;
    rows_[xa][c] = maj ? 1 : 0;
    rows_[xb][c] = maj ? 1 : 0;
    rows_[xc][c] = maj ? 1 : 0;
    rows_[dst][c] = maj ? 1 : 0;
    latch_[c] = maj ? 1 : 0;
  }
}

void GoldenSubArray::sum_cycle(dram::RowAddr xa, dram::RowAddr xb,
                               dram::RowAddr dst) {
  check_compute(xa);
  check_compute(xb);
  check_row(dst);
  PIMA_CHECK(xa != xb, "two-row activation needs two distinct rows");
  for (std::size_t c = 0; c < geom_.columns; ++c) {
    const bool s =
        ((rows_[xa][c] != 0) != (rows_[xb][c] != 0)) != (latch_[c] != 0);
    rows_[xa][c] = s ? 1 : 0;
    rows_[xb][c] = s ? 1 : 0;
    rows_[dst][c] = s ? 1 : 0;
  }
}

void GoldenSubArray::reset_latch() {
  for (auto& l : latch_) l = 0;
}

void GoldenSubArray::add_vertical(const std::vector<dram::RowAddr>& a_rows,
                                  const std::vector<dram::RowAddr>& b_rows,
                                  const std::vector<dram::RowAddr>& sum_rows,
                                  dram::RowAddr carry_out_row) {
  const std::size_t m = a_rows.size();
  PIMA_CHECK(m > 0, "addition needs at least one bit row");
  PIMA_CHECK(b_rows.size() == m && sum_rows.size() == m,
             "operand/result row spans must have equal length");
  check_row(carry_out_row);
  // Grade-school binary addition, one independent ripple per column.
  for (std::size_t c = 0; c < geom_.columns; ++c) {
    int carry = 0;
    std::vector<int> sum_bits(m, 0);
    for (std::size_t i = 0; i < m; ++i) {
      const int a = get(a_rows[i], c) ? 1 : 0;
      const int b = get(b_rows[i], c) ? 1 : 0;
      const int total = a + b + carry;
      sum_bits[i] = total & 1;
      carry = total >> 1;
    }
    // Writes happen after the reads of the column are done, so aliased
    // sum/operand spans still add the *original* operands — the property
    // the production kernel must also uphold (it stages operands first).
    for (std::size_t i = 0; i < m; ++i) set(sum_rows[i], c, sum_bits[i] != 0);
    set(carry_out_row, c, carry != 0);
  }
}

void GoldenSubArray::compare_rows(dram::RowAddr a, dram::RowAddr b,
                                  dram::RowAddr result_row) {
  check_row(a);
  check_row(b);
  check_row(result_row);
  for (std::size_t c = 0; c < geom_.columns; ++c)
    set(result_row, c, get(a, c) == get(b, c));
}

bool GoldenSubArray::rows_match(dram::RowAddr a, dram::RowAddr b,
                                std::size_t width) const {
  check_row(a);
  check_row(b);
  PIMA_CHECK(width <= geom_.columns, "reduce width exceeds row");
  for (std::size_t c = 0; c < width; ++c)
    if (get(a, c) != get(b, c)) return false;
  return true;
}

GoldenDevice::GoldenDevice(const dram::Geometry& geometry) : geom_(geometry) {
  geom_.validate();
}

GoldenSubArray& GoldenDevice::subarray(std::size_t flat) {
  PIMA_CHECK(flat < geom_.total_subarrays(), "sub-array index out of device");
  auto it = subarrays_.find(flat);
  if (it == subarrays_.end())
    it = subarrays_.emplace(flat, GoldenSubArray(geom_)).first;
  return it->second;
}

const GoldenSubArray* GoldenDevice::subarray_if(std::size_t flat) const {
  const auto it = subarrays_.find(flat);
  return it == subarrays_.end() ? nullptr : &it->second;
}

GoldenResults execute(GoldenDevice& device, const dram::Program& program) {
  using dram::Opcode;
  GoldenResults results;
  for (const auto& inst : program) {
    GoldenSubArray& sa = device.subarray(inst.subarray);
    PIMA_CHECK(inst.size == 1 || inst.op == Opcode::kAapCopy ||
                   inst.op == Opcode::kRowWrite ||
                   inst.op == Opcode::kRowRead ||
                   inst.op == Opcode::kDpuAnd || inst.op == Opcode::kDpuOr ||
                   inst.op == Opcode::kDpuPopcount,
               "multi-row size only valid on copy/read/write/reduce");
    for (std::size_t r = 0; r < inst.size; ++r) {
      switch (inst.op) {
        case Opcode::kAapCopy:
          sa.aap_copy(inst.src1 + r, inst.dst + r);
          break;
        case Opcode::kAapXnor:
          sa.aap_xnor(inst.src1, inst.src2, inst.dst + r);
          break;
        case Opcode::kAapXor:
          sa.aap_xor(inst.src1, inst.src2, inst.dst + r);
          break;
        case Opcode::kAapTra:
          sa.aap_tra_carry(inst.src1, inst.src2, inst.src3, inst.dst + r);
          break;
        case Opcode::kSum:
          sa.sum_cycle(inst.src1, inst.src2, inst.dst + r);
          break;
        case Opcode::kResetLatch:
          sa.reset_latch();
          break;
        case Opcode::kRowWrite:
          PIMA_CHECK(inst.payload.size() == sa.geometry().columns,
                     "ROW_WRITE payload width mismatch");
          sa.write_row(inst.src1 + r, inst.payload);
          break;
        case Opcode::kRowRead:
          results.rows_read.push_back(sa.read_row(inst.src1 + r));
          break;
        case Opcode::kDpuAnd: {
          PIMA_CHECK(inst.width <= sa.geometry().columns,
                     "reduce width exceeds row");
          bool all = true;
          for (std::size_t c = 0; c < inst.width; ++c)
            if (!sa.get(inst.src1 + r, c)) all = false;
          results.reductions.push_back(all);
          break;
        }
        case Opcode::kDpuOr: {
          PIMA_CHECK(inst.width <= sa.geometry().columns,
                     "reduce width exceeds row");
          bool any = false;
          for (std::size_t c = 0; c < inst.width; ++c)
            if (sa.get(inst.src1 + r, c)) any = true;
          results.reductions.push_back(any);
          break;
        }
        case Opcode::kDpuPopcount: {
          PIMA_CHECK(inst.width <= sa.geometry().columns,
                     "reduce width exceeds row");
          std::size_t n = 0;
          for (std::size_t c = 0; c < inst.width; ++c)
            if (sa.get(inst.src1 + r, c)) ++n;
          results.popcounts.push_back(n);
          break;
        }
      }
    }
  }
  return results;
}

std::vector<std::uint32_t> column_sums(const std::vector<BitVector>& rows) {
  if (rows.empty()) return {};
  std::vector<std::uint32_t> sums(rows.front().size(), 0);
  for (const auto& row : rows) {
    PIMA_CHECK(row.size() == sums.size(), "adjacency rows differ in width");
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row.get(c)) ++sums[c];
  }
  return sums;
}

std::uint64_t column_value(const GoldenSubArray& sa,
                           const std::vector<dram::RowAddr>& rows,
                           std::size_t col) {
  PIMA_CHECK(rows.size() <= 64, "vertical number wider than 64 bits");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < rows.size(); ++i)
    if (sa.get(rows[i], col)) v |= std::uint64_t{1} << i;
  return v;
}

}  // namespace pima::golden
