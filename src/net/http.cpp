#include "net/http.hpp"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>

#include <poll.h>
#include <unistd.h>

#include "common/error.hpp"
#include "common/fsio.hpp"

namespace pima::net {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int poll_timeout_ms(double remaining_s) {
  if (remaining_s <= 0.0) return 0;
  const double ms = std::ceil(remaining_s * 1000.0);
  return ms > 2147483647.0 ? 2147483647 : static_cast<int>(ms);
}

}  // namespace

bool read_http_request(int fd, HttpRequest& request, double timeout_s) {
  std::string head;
  const double start = now_s();
  // Read until the head terminator. LF-only line endings are tolerated —
  // the request line parse below strips either.
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    if (head.size() > kMaxHttpHeadBytes)
      throw IoError("http request head exceeds " +
                    std::to_string(kMaxHttpHeadBytes) + " bytes");
    if (timeout_s > 0.0) {
      const double remaining = timeout_s - (now_s() - start);
      struct pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLIN;
      int rc;
      do {
        rc = ::poll(&pfd, 1, poll_timeout_ms(remaining));
      } while (rc < 0 && errno == EINTR);
      if (rc < 0) throw IoError(std::string("poll: ") + std::strerror(errno));
      if (rc == 0)
        throw DeadlineExceededError("http request read deadline exceeded (" +
                                    std::to_string(timeout_s) + " s)");
    }
    char chunk[1024];
    const ssize_t n = fsio::read(fd, chunk, sizeof chunk, "http");
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("http read: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (head.empty()) return false;  // clean EOF between requests
      throw IoError("http peer closed mid-request");
    }
    head.append(chunk, static_cast<std::size_t>(n));
  }
  const std::size_t eol = head.find('\n');
  std::string line = head.substr(0, eol);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.compare(sp2 + 1, 5, "HTTP/") != 0)
    throw IoError("malformed http request line: " + line.substr(0, 120));
  request.method = line.substr(0, sp1);
  request.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t q = request.target.find('?');
  if (q != std::string::npos) request.target.resize(q);
  return true;
}

const char* http_status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

std::string http_response(int status, const std::string& content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    http_status_reason(status) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace pima::net
