// Minimal HTTP/1.1 server-side plumbing for the daemon's introspection
// plane (`pima_asm serve --http PORT`, DESIGN.md §16).
//
// Deliberately tiny: GET-only, one request per connection (`Connection:
// close` on every response), headers parsed only far enough to find the
// request line, 16 KiB request cap. That is exactly what `curl`,
// Prometheus scrapers and a browser need from /metrics, /healthz and
// /jobs — anything fancier (keep-alive, chunking, TLS) belongs behind a
// real reverse proxy, not in the assembler.
#pragma once

#include <cstdint>
#include <string>

namespace pima::net {

struct HttpRequest {
  std::string method;  ///< "GET", "HEAD", ...
  std::string target;  ///< origin-form, query string stripped
};

/// Reads one request head (through the blank line) from a connected
/// socket and parses its request line. Returns false on EOF before a
/// complete head. Throws IoError on socket errors, oversized heads
/// (> kMaxHttpHeadBytes) or a malformed request line;
/// DeadlineExceededError when `timeout_s` > 0 expires. Any request body
/// is ignored (the verbs served here have none).
bool read_http_request(int fd, HttpRequest& request, double timeout_s = 0.0);

/// Formats a complete response: status line, Content-Type,
/// Content-Length, Connection: close, then the body.
std::string http_response(int status, const std::string& content_type,
                          const std::string& body);

/// The reason phrase for the handful of statuses this plane emits.
const char* http_status_reason(int status);

inline constexpr std::size_t kMaxHttpHeadBytes = 16u << 10;  // 16 KiB

}  // namespace pima::net
