#include "net/socket.hpp"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.hpp"
#include "common/fsio.hpp"

namespace pima::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

/// Monotonic seconds; deadlines must not jump with wall-clock changes.
double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Remaining budget (seconds) → poll timeout in ms. Deadline already
/// expired → 0 (poll returns immediately and the caller throws).
int poll_timeout_ms(double remaining_s) {
  if (remaining_s <= 0.0) return 0;
  const double ms = std::ceil(remaining_s * 1000.0);
  return ms > 2147483647.0 ? 2147483647 : static_cast<int>(ms);
}

[[noreturn]] void throw_deadline(const char* what, double budget_s) {
  throw DeadlineExceededError(std::string(what) + " deadline exceeded (" +
                              std::to_string(budget_s) + " s)");
}

void set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd, F_SETFL, want) != 0)
    throw_errno("fcntl(F_SETFL)");
}

/// Shared connect path for both transports. Non-blocking connect so a
/// deadline can bound the handshake: start the connect, poll POLLOUT
/// within the remaining budget, then read SO_ERROR for the real outcome.
/// EINTR (real or injected) retries the connect; EISCONN after a retried
/// in-progress connect counts as success. `hint` is appended to
/// refused/absent-endpoint errors — the actionable "start the daemon"
/// message.
ScopedFd connect_with_deadline(ScopedFd fd, const sockaddr* addr,
                               socklen_t len, const std::string& what,
                               double timeout_s, const std::string& hint) {
  const double start = now_s();
  set_nonblocking(fd.get(), true);

  bool in_progress = false;
  for (;;) {
    if (fsio::connect(fd.get(), addr, len, "connect") == 0) break;
    if (errno == EINTR) {
      // Interrupted (or injected) before the attempt started: retry. If a
      // real attempt was already in flight the retry reports EALREADY /
      // EISCONN, handled below — we never poll a socket that has no
      // connect in progress (POLLOUT would falsely report ready).
      if (timeout_s > 0.0 && now_s() - start >= timeout_s)
        throw_deadline("connect", timeout_s);
      continue;
    }
    if (errno == EISCONN) break;  // earlier interrupted attempt completed
    if (errno == EINPROGRESS || errno == EALREADY) {
      in_progress = true;
      break;
    }
    if (errno == ECONNREFUSED || errno == ENOENT)
      throw IoError(what + ": " + std::strerror(errno) + hint);
    throw_errno(what);
  }

  if (in_progress) {
    pollfd pfd{fd.get(), POLLOUT, 0};
    for (;;) {
      int timeout_ms = -1;  // no deadline: wait forever
      if (timeout_s > 0.0) {
        const double remaining = timeout_s - (now_s() - start);
        if (remaining <= 0.0) throw_deadline("connect", timeout_s);
        timeout_ms = poll_timeout_ms(remaining);
      }
      const int rc = ::poll(&pfd, 1, timeout_ms);
      if (rc > 0) break;
      if (rc == 0) {
        if (timeout_s > 0.0) throw_deadline("connect", timeout_s);
        continue;  // spurious zero without a deadline; keep waiting
      }
      if (errno != EINTR) throw_errno(what + ": poll");
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &err_len) != 0)
      throw_errno(what + ": getsockopt(SO_ERROR)");
    if (err != 0) {
      errno = err;
      if (err == ECONNREFUSED || err == ENOENT)
        throw IoError(what + ": " + std::strerror(err) + hint);
      throw_errno(what);
    }
  }

  set_nonblocking(fd.get(), false);
  return fd;
}

constexpr char kDaemonHint[] =
    " — is the daemon running? start it with `pima_asm serve --state-dir "
    "<dir>`";

}  // namespace

void ScopedFd::close_fd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ScopedFd listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw IoError("unix socket path too long (" + std::to_string(path.size()) +
                  " bytes, limit " + std::to_string(sizeof(addr.sun_path) - 1) +
                  "): " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  ScopedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(AF_UNIX)");
  // A SIGKILLed daemon leaves its socket file behind; rebinding requires
  // removing it. A *live* daemon is protected by the per-daemon state dir
  // convention, not by this call.
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    throw_errno("bind(" + path + ")");
  if (::listen(fd.get(), backlog) != 0) throw_errno("listen(" + path + ")");
  return fd;
}

ScopedFd listen_tcp(std::uint16_t port, int backlog) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    throw_errno("bind(127.0.0.1:" + std::to_string(port) + ")");
  if (::listen(fd.get(), backlog) != 0)
    throw_errno("listen(tcp:" + std::to_string(port) + ")");
  return fd;
}

ScopedFd connect_unix(const std::string& path, double timeout_s) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw IoError("unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ScopedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(AF_UNIX)");
  return connect_with_deadline(std::move(fd),
                               reinterpret_cast<const sockaddr*>(&addr),
                               sizeof(addr), "connect(" + path + ")",
                               timeout_s, kDaemonHint);
}

ScopedFd connect_tcp(std::uint16_t port, double timeout_s) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return connect_with_deadline(
      std::move(fd), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr),
      "connect(127.0.0.1:" + std::to_string(port) + ")", timeout_s,
      kDaemonHint);
}

ScopedFd accept_connection(int listener_fd) {
  for (;;) {
    const int fd = ::accept(listener_fd, nullptr, nullptr);
    if (fd >= 0) return ScopedFd(fd);
    if (errno == EINTR) continue;
    // The daemon shuts its listener down (shutdown()/close()) to break the
    // accept loop; every resulting errno means "stop accepting".
    return ScopedFd();
  }
}

void LineChannel::wait_ready(short events, const char* what) {
  if (deadline_s_ <= 0.0) return;  // no deadline: rely on blocking syscalls
  const double start = now_s();
  pollfd pfd{fd_, events, 0};
  for (;;) {
    const double remaining = deadline_s_ - (now_s() - start);
    if (remaining <= 0.0) throw_deadline(what, deadline_s_);
    const int rc = ::poll(&pfd, 1, poll_timeout_ms(remaining));
    if (rc > 0) return;  // readable/writable (or error — the syscall tells)
    if (rc == 0) throw_deadline(what, deadline_s_);
    if (errno != EINTR) throw_errno(std::string(what) + ": poll");
  }
}

bool LineChannel::read_line(std::string& line) {
  for (;;) {
    const auto nl = buffer_.find('\n', scan_from_);
    if (nl != std::string::npos) {
      line.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      scan_from_ = 0;
      return true;
    }
    scan_from_ = buffer_.size();
    if (buffer_.size() > kMaxLineBytes)
      throw IoError("wire line exceeds " + std::to_string(kMaxLineBytes) +
                    " bytes");
    wait_ready(POLLIN, "read");
    char chunk[4096];
    ssize_t n;
    do {
      n = fsio::read(fd_, chunk, sizeof chunk, "wire");
    } while (n < 0 && errno == EINTR);
    if (n < 0) throw_errno("read");
    if (n == 0) return false;  // EOF; any partial line is dropped
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void LineChannel::write_line(const std::string& line) {
  std::string framed = line;
  framed += '\n';
  std::size_t off = 0;
  while (off < framed.size()) {
    wait_ready(POLLOUT, "send");
    ssize_t n;
    do {
      // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE → IoError instead
      // of SIGPIPE killing the daemon.
      n = fsio::send(fd_, framed.data() + off, framed.size() - off,
                     MSG_NOSIGNAL, "wire");
    } while (n < 0 && errno == EINTR);
    if (n <= 0) throw_errno("send");
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace pima::net
