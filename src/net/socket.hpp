// Thin POSIX socket layer for the service wire protocol.
//
// The daemon listens on a unix-domain stream socket (the default: local,
// permission-guarded by the filesystem) and optionally on a loopback TCP
// port. Both carry the same newline-delimited JSON protocol, so the
// client code is transport-agnostic once connected.
//
// Everything here throws IoError on OS failures (mapping to the
// documented I/O exit code) and retries EINTR, so callers never see
// partial reads/writes or signal-induced short counts. All reads, writes
// and connects go through the fsio fault-injection shim (common/fsio.hpp,
// sites "wire" / "connect"), so chaos tests can storm EINTRs, cut peers
// mid-line, or refuse connections deterministically.
//
// Deadlines: connect_unix/connect_tcp and LineChannel take an optional
// timeout in seconds (0 = wait forever, the daemon-side default). A
// connect or a wait for bytes that exceeds its budget throws
// DeadlineExceededError — the client's --timeout / exit code 9 path —
// implemented with poll(2), never busy-waiting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace pima::net {

/// Owning file descriptor (move-only). -1 = empty.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { close_fd(); }
  ScopedFd(ScopedFd&& other) noexcept : fd_(other.release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      close_fd();
      fd_ = other.release();
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void close_fd();

 private:
  int fd_ = -1;
};

/// Binds and listens on a unix stream socket. An existing socket file at
/// `path` is unlinked first (a daemon SIGKILLed mid-run leaves one
/// behind); a live daemon on the same path would lose its listener, so
/// callers use distinct state dirs per daemon. Throws IoError if the path
/// exceeds sockaddr_un limits or any syscall fails.
ScopedFd listen_unix(const std::string& path, int backlog = 16);

/// Binds and listens on loopback (127.0.0.1) TCP with SO_REUSEADDR.
ScopedFd listen_tcp(std::uint16_t port, int backlog = 16);

/// Connects to a unix socket / loopback TCP port. Retries EINTR and
/// completes in-progress connects with poll(2). `timeout_s` bounds the
/// whole attempt (0 = no deadline) → DeadlineExceededError on expiry.
/// ECONNREFUSED / ENOENT throw an IoError whose message says how to start
/// the daemon — the actionable "is it running?" path.
ScopedFd connect_unix(const std::string& path, double timeout_s = 0.0);
ScopedFd connect_tcp(std::uint16_t port, double timeout_s = 0.0);

/// Accepts one connection; retries EINTR. Returns an empty fd when the
/// listener has been closed/shut down (daemon shutdown path).
ScopedFd accept_connection(int listener_fd);

/// Buffered line-framed I/O over a connected socket. One LineChannel per
/// connection, single-threaded use.
class LineChannel {
 public:
  explicit LineChannel(int fd) : fd_(fd) {}

  /// Bounds every subsequent blocking wait (for readable/writable) to
  /// `seconds`; 0 disables the deadline. Expiry throws
  /// DeadlineExceededError with the budget in the message.
  void set_deadline(double seconds) { deadline_s_ = seconds; }

  /// Reads up to and including the next '\n'; the returned line excludes
  /// it. Returns false on clean EOF with no buffered partial line. A
  /// closed-by-peer mid-line counts as EOF (the partial line is dropped —
  /// NDJSON frames are only valid once terminated). Lines beyond
  /// kMaxLineBytes throw IoError (protocol abuse guard).
  bool read_line(std::string& line);

  /// Writes `line` plus '\n', looping over partial writes. Throws IoError
  /// on any socket error (including EPIPE when the peer vanished).
  void write_line(const std::string& line);

  static constexpr std::size_t kMaxLineBytes = 64u << 20;  // 64 MiB

 private:
  /// poll() for `events` within the deadline budget; throws
  /// DeadlineExceededError on expiry, IoError on poll failure.
  void wait_ready(short events, const char* what);

  int fd_;
  double deadline_s_ = 0.0;
  std::string buffer_;
  std::size_t scan_from_ = 0;
};

}  // namespace pima::net
