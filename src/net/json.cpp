#include "net/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace pima::net {

namespace {

[[noreturn]] void type_error(const char* want, Json::Type got) {
  static const char* const names[] = {"null",   "bool",  "number",
                                      "string", "array", "object"};
  throw InputFormatError(std::string("json: expected ") + want + ", got " +
                         names[static_cast<int>(got)]);
}

// Shortest round-trip-exact rendering (same discipline as the metrics
// registry): equal doubles always serialize to equal bytes, and integers
// below 2^53 render without an exponent or trailing ".0".
std::string format_number(double v) {
  if (!std::isfinite(v))
    throw InputFormatError("json: non-finite number cannot be serialized");
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::fabs(v) < 9.007199254740992e15) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(static_cast<std::int64_t>(v)));
    return buf;
  }
  char buf[40];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  return buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json run() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw InputFormatError("json: " + msg + " at byte " +
                           std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(const char* literal, Json value, Json& out) {
    for (const char* p = literal; *p != '\0'; ++p)
      if (pos_ >= text_.size() || text_[pos_++] != *p)
        fail(std::string("invalid literal (expected '") + literal + "')");
    out = std::move(value);
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': {
        Json v;
        expect("true", Json(true), v);
        return v;
      }
      case 'f': {
        Json v;
        expect("false", Json(false), v);
        return v;
      }
      case 'n': {
        Json v;
        expect("null", Json(), v);
        return v;
      }
      default: return parse_number();
    }
  }

  Json parse_object() {
    next();  // '{'
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      next();
      return obj;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("object key must be a string");
      std::string key = parse_string();
      skip_ws();
      if (next() != ':') fail("expected ':' after object key");
      obj.set(key, parse_value());
      skip_ws();
      const char c = next();
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    next();  // '['
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      next();
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<unsigned>(c - 'A' + 10);
      else
        fail("invalid \\u escape digit");
    }
    return v;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    next();  // '"'
    std::string out;
    for (;;) {
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char e = next();
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Surrogate pair: the low half must follow immediately.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              fail("unpaired high surrogate");
            pos_ += 2;
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') next();
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    const std::string token = text_.substr(start, pos_ - start);
    // A plain non-negative integer parses into the exact u64 view first,
    // so counters above 2^53 survive a round trip byte-for-byte. Anything
    // else (sign, fraction, exponent, > 2^64-1) falls through to double.
    if (!token.empty() && token[0] != '-' &&
        token.find_first_of(".eE") == std::string::npos) {
      std::uint64_t u = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), u);
      if (ec == std::errc() && ptr == token.data() + token.size())
        return Json(u);
    }
    double v = 0.0;
    int consumed = 0;
    if (token.empty() ||
        std::sscanf(token.c_str(), "%lf%n", &v, &consumed) != 1 ||
        static_cast<std::size_t>(consumed) != token.size()) {
      pos_ = start;
      fail("invalid number '" + token + "'");
    }
    return Json(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

std::uint64_t Json::as_uint64() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  if (uint_exact_) return uint_;
  if (!(number_ >= 0.0) || number_ >= 18446744073709551616.0 ||
      number_ != std::floor(number_))
    throw InputFormatError("json: number is not an unsigned 64-bit integer");
  return static_cast<std::uint64_t>(number_);
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

bool Json::has(const std::string& key) const { return find(key) != nullptr; }

const Json& Json::get(const std::string& key) const {
  static const Json null;
  const Json* v = find(key);
  return v != nullptr ? *v : null;
}

std::string Json::get_string(const std::string& key,
                             const std::string& fallback) const {
  const Json* v = find(key);
  return v != nullptr ? v->as_string() : fallback;
}

double Json::get_number(const std::string& key, double fallback) const {
  const Json* v = find(key);
  return v != nullptr ? v->as_number() : fallback;
}

std::uint64_t Json::get_uint64(const std::string& key,
                               std::uint64_t fallback) const {
  const Json* v = find(key);
  return v != nullptr ? v->as_uint64() : fallback;
}

bool Json::get_bool(const std::string& key, bool fallback) const {
  const Json* v = find(key);
  return v != nullptr ? v->as_bool() : fallback;
}

Json& Json::set(const std::string& key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(value));
  return *this;
}

std::string Json::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Json::dump() const {
  switch (type_) {
    case Type::kNull: return "null";
    case Type::kBool: return bool_ ? "true" : "false";
    case Type::kNumber: {
      if (uint_exact_) {
        char buf[24];
        std::snprintf(buf, sizeof buf, "%llu",
                      static_cast<unsigned long long>(uint_));
        return buf;
      }
      return format_number(number_);
    }
    case Type::kString: return '"' + escape(string_) + '"';
    case Type::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        out += array_[i].dump();
      }
      return out + ']';
    }
    case Type::kObject: {
      std::string out = "{";
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        out += '"' + escape(object_[i].first) + "\":" + object_[i].second.dump();
      }
      return out + '}';
    }
  }
  return "null";  // unreachable
}

Json Json::parse(const std::string& text) { return Parser(text).run(); }

}  // namespace pima::net
