// Minimal JSON value for the service wire protocol (service/protocol).
//
// The daemon speaks newline-delimited JSON: one request object per line,
// one or more response objects per line. This is the complete value model
// that protocol needs — null, bool, number, string, array, object — with
// a recursive-descent parser and a deterministic writer (object keys
// serialize in insertion order; numbers use the shortest round-trip-exact
// rendering, so equal values always produce equal bytes). Numbers carry a
// double view plus, for non-negative integers, an exact unsigned 64-bit
// view: u64 counters (sequence numbers, base counts, k-mer counts) round
// trip losslessly above 2^53, where the double alone would round.
//
// Parse errors throw InputFormatError with byte-offset context — a
// malformed request maps to the documented "malformed input" exit/error
// class, exactly like a malformed FASTA file. The parser accepts anything
// `python3 -m json.tool` accepts for the subset we emit, including
// \uXXXX escapes (decoded to UTF-8, surrogate pairs included).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pima::net {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double n) : type_(Type::kNumber), number_(n) {}
  Json(int n) : Json(static_cast<std::int64_t>(n)) {}
  Json(std::int64_t n) : type_(Type::kNumber), number_(static_cast<double>(n)) {
    if (n >= 0) {
      uint_ = static_cast<std::uint64_t>(n);
      uint_exact_ = true;
    }
  }
  Json(std::uint64_t n)  // covers size_t
      : type_(Type::kNumber),
        number_(static_cast<double>(n)),
        uint_(n),
        uint_exact_(true) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw InputFormatError on a type mismatch so a
  /// protocol handler can treat "wrong field type" like any other
  /// malformed input.
  bool as_bool() const;
  double as_number() const;
  /// Exact unsigned 64-bit view of a number. Lossless for any value that
  /// was constructed from (or parsed as) a non-negative integer, even
  /// above 2^53; for other numbers falls back to a checked cast of the
  /// double and throws InputFormatError on negative, fractional, or
  /// out-of-range values.
  std::uint64_t as_uint64() const;
  const std::string& as_string() const;
  const std::vector<Json>& items() const;

  /// Object field access. `get` returns null for a missing key; the
  /// typed variants apply a default when the key is absent and throw on a
  /// type mismatch (a present-but-wrong-type field is a protocol error,
  /// not a default).
  bool has(const std::string& key) const;
  const Json& get(const std::string& key) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback = {}) const;
  double get_number(const std::string& key, double fallback = 0.0) const;
  std::uint64_t get_uint64(const std::string& key,
                           std::uint64_t fallback = 0) const;
  bool get_bool(const std::string& key, bool fallback = false) const;

  /// Object/array builders (object keys keep insertion order for
  /// deterministic serialization). `set` replaces an existing key's value
  /// in place.
  Json& set(const std::string& key, Json value);
  Json& push_back(Json value);

  /// Serializes on one line (no newline) — NDJSON framing appends it.
  std::string dump() const;

  /// Parses a complete JSON document; trailing non-whitespace is an
  /// error. Throws InputFormatError with byte offset context.
  static Json parse(const std::string& text);

  /// Escapes a string for embedding in JSON output (exposed for tests).
  static std::string escape(const std::string& s);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  // Exact integer view alongside the double: set whenever the value was
  // constructed from or parsed as a non-negative integer.
  std::uint64_t uint_ = 0;
  bool uint_exact_ = false;
  std::string string_;
  std::vector<Json> array_;
  // Insertion-ordered object storage: (key, value) pairs plus an index for
  // O(log n) lookup. Small objects only — wire messages.
  std::vector<std::pair<std::string, Json>> object_;

  const Json* find(const std::string& key) const;
};

}  // namespace pima::net
