#include "circuit/area.hpp"

#include "common/error.hpp"

namespace pima::circuit {

AreaReport estimate_area(const AreaModelParams& params) {
  PIMA_CHECK(params.columns > 0 && params.rows > 0,
             "sub-array geometry must be non-empty");
  // Sense-amplifier add-ons: one reconfigurable SA per bit-line.
  const std::size_t sa = params.sa_addon_per_bitline * params.columns;
  // Modified row decoder: two extra transistors in each of the 8 compute-row
  // WL driver buffer chains (paper: 16 add-on transistors total).
  const std::size_t mrd = params.mrd_addon_total;
  // Controller: enable-bit drivers and the small FSM; the paper folds this
  // into its 51-row bound, so by default we budget the remainder of one row.
  const std::size_t row_transistors =
      params.columns * params.transistors_per_cell;
  const std::size_t ctrl = params.ctrl_addon_rows_equiv > 0
                               ? params.ctrl_addon_rows_equiv * row_transistors
                               : row_transistors - (mrd % row_transistors);

  AreaReport r{};
  r.addon_transistors = sa + mrd + ctrl;
  r.rows_equivalent =
      static_cast<double>(r.addon_transistors) /
      static_cast<double>(row_transistors);
  const double array_transistors =
      static_cast<double>(params.rows) * static_cast<double>(row_transistors);
  r.overhead_fraction =
      static_cast<double>(r.addon_transistors) / array_transistors;
  return r;
}

}  // namespace pima::circuit
