// Behavioural model of the PIM-Assembler reconfigurable sense amplifier
// (paper Fig. 2a).
//
// The SA is a regular DRAM sense amplifier augmented with: two shifted-VTC
// inverters (low-Vs ⇒ NOR2 threshold detector, high-Vs ⇒ NAND2), a CMOS AND
// gate with one inverted input (⇒ XOR2), an XOR gate plus D-latch for the
// addition datapath, and a 4:1 MUX that selects what drives the bit-line
// during sense amplification. Five enable signals (Enm, Enx, Enmux, Enc1,
// Enc2) configure the mode per the control table in Fig. 2a.
//
// This model is the single source of truth for the analog behaviour: the
// functional DRAM model's word-parallel kernels are validated against it
// bit-by-bit in tests, and the Monte-Carlo engine perturbs its parameters.
#pragma once

#include <array>
#include <cstdint>

#include "circuit/charge_sharing.hpp"
#include "circuit/tech.hpp"

namespace pima::circuit {

/// SA operating mode = a named enable-signal configuration
/// (paper Fig. 2a control-signal table).
enum class SaMode : std::uint8_t {
  kMemory,  ///< normal read/write: Enm=1, Enx=1, Enmux=0
  kXnor2,   ///< two-row activation XNOR: enable set 01110
  kCarry,   ///< TRA majority, result latched: enable set 11101-class
  kSum,     ///< XOR of latched carry with two-row XOR: enable set 11100-class
};

/// The five enable bits for a mode (for introspection/tests; the behaviour
/// functions below dispatch on SaMode directly).
struct EnableSet {
  bool en_m, en_x, en_mux, en_c1, en_c2;
};

/// Returns the enable-signal configuration of a mode (paper Fig. 2a table).
EnableSet enables_for(SaMode mode);

/// Detector thresholds designed for this technology (see tech.hpp note):
/// midpoints between adjacent nominal charge-sharing levels.
struct DetectorThresholds {
  double low_vs;     ///< V, low-Vs inverter (NOR detector, 2-row levels)
  double high_vs;    ///< V, high-Vs inverter (NAND detector, 2-row levels)
  double normal_vs;  ///< V, regular SA reference (TRA majority point)
};

DetectorThresholds design_thresholds(const TechParams& tech);

/// One sense amplifier instance with a carry latch.
class SenseAmp {
 public:
  explicit SenseAmp(const TechParams& tech)
      : tech_(tech), th_(design_thresholds(tech)) {}

  /// Construct with explicit (e.g. Monte-Carlo perturbed) thresholds.
  SenseAmp(const TechParams& tech, const DetectorThresholds& th)
      : tech_(tech), th_(th) {}

  /// Evaluates the two-row activation datapath from a settled bit-line
  /// voltage: returns {nor2, nand2, xor2, xnor2} as seen at the gates.
  struct TwoRowOutputs {
    bool nor2, nand2, xor2, xnor2;
  };
  TwoRowOutputs sense_two_row(double v_bl) const;

  /// Convenience: logic-level two-row XNOR of two stored bits through the
  /// full analog path (charge share → detectors → gates).
  bool xnor2(bool di, bool dj) const;

  /// Evaluates the TRA (triple-row activation) majority from the settled
  /// bit-line voltage and latches it as the carry.
  bool sense_carry(double v_bl);
  /// TRA carry of three stored bits through the analog path; latches carry.
  bool carry(bool a, bool b, bool c);

  /// Sum stage: XOR of the latched carry with the two-row XOR of the two
  /// new operand bits (paper's 2-cycle addition: carry cycle then sum
  /// cycle). Does not modify the latch.
  bool sum(bool di, bool dj) const;

  bool latched_carry() const { return latch_; }
  void reset_latch() { latch_ = false; }

  const DetectorThresholds& thresholds() const { return th_; }

 private:
  TechParams tech_;
  DetectorThresholds th_;
  bool latch_ = false;
};

}  // namespace pima::circuit
