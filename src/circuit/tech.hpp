// Technology and timing constants for the 45 nm-class DRAM process.
//
// The paper characterizes its sub-array in Cadence Spectre with the NCSU
// FreePDK45 kit and scales DRAM cell parameters from the Rambus power model.
// We carry the corresponding behavioural constants here: nominal voltages,
// capacitances for the charge-sharing solver, DDR-class command timings, and
// per-command energies used by the architecture-level accounting. Values are
// representative of published 45 nm DDR3/DDR4 characterizations (Ambit,
// DRISA and the Rambus model report figures in these ranges); EXPERIMENTS.md
// notes where a constant was calibrated.
#pragma once

namespace pima::circuit {

/// Static process/voltage parameters of the modelled DRAM.
struct TechParams {
  double vdd = 1.2;              ///< V, array supply
  double cell_cap_ff = 22.0;     ///< fF, storage cell capacitor (Cs)
  double bitline_cap_ff = 85.0;  ///< fF, bit-line parasitic (Cwbl+Ccross+Cs)
  /// Small-signal gain of the inverter around its switching point; only the
  /// sign of (Vin - Vs) matters for logic, the gain shapes transients.
  ///
  /// Note on detector thresholds: the paper's idealized model (Vi = n·Vdd/C)
  /// places the low-Vs/high-Vs inverter switching points at Vdd/4 and
  /// 3Vdd/4. With a finite bit-line capacitance the charge-shared levels
  /// compress toward Vdd/2, so SenseAmp designs its actual thresholds as
  /// midpoints between adjacent nominal levels (which reduces to Vdd/4 and
  /// 3Vdd/4 in the C_bl → 0 limit the paper assumes).
  double inverter_gain = 25.0;
};

/// DRAM command timing (ns) — DDR4-2133-class, matching the paper's CPU
/// memory configuration.
struct TimingParams {
  double t_rcd_ns = 13.75;  ///< ACTIVATE to column access
  double t_ras_ns = 35.0;   ///< ACTIVATE to PRECHARGE (row cycle floor)
  double t_rp_ns = 13.75;   ///< PRECHARGE duration
  double t_cl_ns = 13.75;   ///< CAS latency (column read)
  double t_bl_ns = 3.75;    ///< burst transfer of one column chunk
  /// One AAP (ACTIVATE-ACTIVATE-PRECHARGE) primitive. Ambit reports AAP ≈
  /// 2×tRAS + tRP using back-to-back activates within the row cycle.
  double aap_ns() const { return 2.0 * t_ras_ns + t_rp_ns; }
  /// One AP (single ACTIVATE + PRECHARGE) — used for multi-row activations
  /// that complete in one row cycle (two-row XNOR, TRA carry).
  double ap_ns() const { return t_ras_ns + t_rp_ns; }
};

/// Per-command energies (pJ) for a 256-column sub-array row operation,
/// derived from the Rambus DRAM power model scaled to 45 nm (same source as
/// the paper). Energy scales linearly with activated width.
struct EnergyParams {
  double e_activate_pj = 90.0;    ///< one row ACTIVATE (row buffer fill)
  double e_precharge_pj = 50.0;   ///< one PRECHARGE
  double e_multirow_extra_pj = 25.0;  ///< extra per additional simultaneous row
  double e_sa_logic_pj = 6.0;     ///< add-on SA gates toggling, per row op
  double e_dpu_pj = 10.0;         ///< MAT-level DPU reduction, per row
  double e_read_col_pj = 2.5;     ///< column read through GRB, per 64 bits
  double e_write_col_pj = 2.8;    ///< column write, per 64 bits
  /// Background/static power of one active chip (W) for power roll-ups.
  double static_power_w = 0.35;
};

/// Bundled technology description.
struct Technology {
  TechParams tech;
  TimingParams timing;
  EnergyParams energy;
};

/// The default modelled technology (45 nm-class, DDR4-2133 timing).
inline const Technology& default_technology() {
  static const Technology t{};
  return t;
}

}  // namespace pima::circuit
