#include "circuit/transient.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pima::circuit {
namespace {

// First-order settling from v0 toward v_target with time constant tau.
double settle(double v0, double v_target, double t_ns, double tau_ns) {
  return v_target + (v0 - v_target) * std::exp(-t_ns / tau_ns);
}

}  // namespace

double restored_cell_voltage(const TechParams& tech, bool di, bool dj) {
  SenseAmp sa(tech);
  return sa.xnor2(di, dj) ? tech.vdd : 0.0;
}

std::vector<TransientPoint> simulate_xnor2_transient(
    const TechParams& tech, bool di, bool dj, double dt_ns,
    const TransientPhases& phases) {
  PIMA_CHECK(dt_ns > 0.0, "sample step must be positive");
  PIMA_CHECK(phases.precharge_end_ns < phases.share_end_ns &&
                 phases.share_end_ns < phases.sense_end_ns,
             "phase boundaries must be increasing");

  const int n = static_cast<int>(di) + static_cast<int>(dj);
  const double v_share = share_nominal(tech, 2, n).v_bl;
  const double v_final = restored_cell_voltage(tech, di, dj);
  const double v_pre = tech.vdd * 0.5;

  // Time constants: precharge equalization and charge sharing are fast
  // (sub-ns RC of BL), the SA restore is the slow full-swing phase.
  const double tau_pre = 0.4, tau_share = 0.8, tau_sense = 3.0;

  std::vector<TransientPoint> out;
  const double v_cell_initial = tech.vdd * (n > 0 ? 1.0 : 0.0);
  for (double t = 0.0; t <= phases.sense_end_ns + 1e-9; t += dt_ns) {
    TransientPoint p{};
    p.t_ns = t;
    if (t < phases.precharge_end_ns) {
      p.v_bl = settle(0.0, v_pre, t, tau_pre);
      p.v_cell = v_cell_initial;
    } else if (t < phases.share_end_ns) {
      const double dt = t - phases.precharge_end_ns;
      p.v_bl = settle(v_pre, v_share, dt, tau_share);
      // Activated cells equalize with the BL during sharing.
      p.v_cell = settle(v_cell_initial, v_share, dt, tau_share);
    } else {
      const double dt = t - phases.share_end_ns;
      p.v_bl = settle(v_share, v_final, dt, tau_sense);
      p.v_cell = settle(v_share, v_final, dt, tau_sense);
    }
    out.push_back(p);
  }
  return out;
}

}  // namespace pima::circuit
