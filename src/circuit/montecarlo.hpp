// Monte-Carlo process-variation analysis (reproduces paper Table I).
//
// The paper runs 10,000 Spectre trials per variation level (±5%…±30%) on
// both the Ambit-style triple-row activation (TRA) and PIM-Assembler's
// two-row activation, counting functional failures. We reproduce this with
// a behavioural variation model: each trial perturbs the storage-cell
// capacitances, the bit-line capacitance, the restored cell voltage and the
// SA detector switching points with Gaussian deviates scaled by the
// variation level, then checks whether the sensed logic output still equals
// the ideal one for a random operand combination.
//
// Why two-row wins structurally: a two-cell share has three voltage levels
// separated by Vdd·Ccell/(Cbl+2Ccell) while a three-cell share has four
// levels separated by Vdd·Ccell/(Cbl+3Ccell) — the TRA margin is strictly
// smaller, so the same parameter noise crosses it first. The Monte-Carlo
// makes that quantitative.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/tech.hpp"

namespace pima::circuit {

/// How a "±x%" variation level maps onto per-parameter Gaussian sigmas.
/// Capacitor and stored-voltage mismatch follow the common 3-sigma reading;
/// the dominant term is the sense-margin noise, which differs by mechanism:
/// the reconfigurable SA's static shifted-VTC detectors degrade roughly
/// linearly with device mismatch, while the TRA differential sense
/// compounds the three-cell charge division with the sense race and
/// degrades superlinearly (modelled quadratic). The two sense coefficients
/// are the calibrated constants of this model — fitted once against the
/// paper's Table I and recorded in EXPERIMENTS.md (E3).
struct VariationModel {
  double cell_cap_rel_sigma_per_x = 1.0 / 3.0;   ///< σ(Ccell)/Ccell per unit x
  double bl_cap_rel_sigma_per_x = 1.0 / 3.0;     ///< σ(Cbl)/Cbl per unit x
  double cell_v_rel_sigma_per_x = 1.0 / 6.0;     ///< σ(Vcell)/Vdd per unit x
  double two_row_sense_sigma_per_x = 0.22;  ///< σ(Vs)/Vdd = 0.22·x (2-row)
  double tra_sense_sigma_per_x2 = 2.6;      ///< σ(Vs)/Vdd = 2.6·x² (TRA)
};

/// Which in-memory mechanism a trial exercises.
enum class Mechanism : std::uint8_t {
  kTripleRowActivation,  ///< Ambit-style MAJ3 (baseline)
  kTwoRowActivation,     ///< PIM-Assembler XNOR2
};

struct VariationResult {
  double variation;        ///< the ±x level as a fraction (0.10 = ±10%)
  std::size_t trials;
  std::size_t failures;
  double failure_percent;  ///< 100 · failures / trials
};

/// Runs `trials` Monte-Carlo trials of `mechanism` at variation level
/// `variation` (e.g. 0.15 for ±15%). Deterministic in `seed`.
VariationResult run_variation_trials(const TechParams& tech,
                                     Mechanism mechanism, double variation,
                                     std::size_t trials, std::uint64_t seed,
                                     const VariationModel& model = {});

/// Full Table I sweep: both mechanisms over the paper's variation levels
/// {±5, ±10, ±15, ±20, ±30}%.
struct VariationTable {
  std::vector<double> levels;
  std::vector<VariationResult> tra;
  std::vector<VariationResult> two_row;
};

VariationTable run_variation_table(const TechParams& tech, std::size_t trials,
                                   std::uint64_t seed,
                                   const VariationModel& model = {});

}  // namespace pima::circuit
