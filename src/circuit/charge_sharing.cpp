#include "circuit/charge_sharing.hpp"

#include "common/error.hpp"

namespace pima::circuit {

ChargeShareResult share_nominal(const TechParams& tech, int k, int n) {
  PIMA_CHECK(k >= 1, "must activate at least one row");
  PIMA_CHECK(n >= 0 && n <= k, "ones count must be within activated rows");
  const double c_cells = static_cast<double>(k) * tech.cell_cap_ff;
  const double q = tech.bitline_cap_ff * tech.vdd * 0.5 +
                   static_cast<double>(n) * tech.cell_cap_ff * tech.vdd;
  const double v = q / (tech.bitline_cap_ff + c_cells);
  return {v, v / tech.vdd};
}

ChargeShareResult share_varied(double vdd, double bitline_cap_ff,
                               std::span<const double> cell_caps_ff,
                               std::span<const bool> cell_vals) {
  PIMA_CHECK(cell_caps_ff.size() == cell_vals.size(),
             "cap/value spans must match");
  PIMA_CHECK(!cell_caps_ff.empty(), "must activate at least one cell");
  double c_total = bitline_cap_ff;
  double q = bitline_cap_ff * vdd * 0.5;
  for (std::size_t i = 0; i < cell_caps_ff.size(); ++i) {
    c_total += cell_caps_ff[i];
    if (cell_vals[i]) q += cell_caps_ff[i] * vdd;
  }
  const double v = q / c_total;
  return {v, v / vdd};
}

bool inverter_out(double vin, double vs) { return vin <= vs; }

}  // namespace pima::circuit
