// Transient waveform generator for the in-memory XNOR2 operation
// (reproduces paper Fig. 3a).
//
// The Spectre transient in the paper shows, for each operand combination
// DiDj ∈ {00,01,10,11}, the bit-line settling through three phases:
// precharge (BL at Vdd/2), charge sharing after the two-row ACTIVATE, and
// sense amplification where the reconfigured SA drives BL to the full-swing
// XNOR2 result (Vdd for 00/11, GND for 01/10). We model each phase as a
// first-order RC settling toward the phase's target voltage, which captures
// the waveform shape the figure reports.
#pragma once

#include <vector>

#include "circuit/sense_amp.hpp"
#include "circuit/tech.hpp"

namespace pima::circuit {

/// One sampled point of the transient.
struct TransientPoint {
  double t_ns;
  double v_bl;     ///< bit-line voltage
  double v_cell;   ///< computation-cell capacitor voltage (restored value)
};

/// Phase boundaries used by the waveform (also returned for plotting).
struct TransientPhases {
  double precharge_end_ns = 5.0;
  double share_end_ns = 12.0;     ///< charge sharing settles (fast)
  double sense_end_ns = 35.0;     ///< SA full-swing restore (tRAS-class)
};

/// Simulates the XNOR2 transient for stored operand bits (di, dj).
/// Returns samples at `dt_ns` spacing covering all three phases.
std::vector<TransientPoint> simulate_xnor2_transient(
    const TechParams& tech, bool di, bool dj, double dt_ns = 0.1,
    const TransientPhases& phases = {});

/// Final restored cell voltage for (di,dj) — Vdd when XNOR2=1, 0 otherwise.
/// (Paper: "cell's capacitor is accordingly charged to Vdd when DiDj=00/11
/// or discharged to GND when DiDj=10/01".)
double restored_cell_voltage(const TechParams& tech, bool di, bool dj);

}  // namespace pima::circuit
