// Charge-sharing solver for multi-row activation.
//
// When k computation rows are activated simultaneously onto a precharged
// bit-line, the cell capacitors and the bit-line parasitic equalize:
//
//   V_bl = (C_bl·Vdd/2 + n·C_cell·Vdd) / (C_bl + k·C_cell)
//
// where n ≤ k is the number of activated cells storing '1'. The paper's
// simplified expression Vi = n·Vdd/C (C = number of unit capacitors) is the
// C_bl→0 limit; we keep the full form so the Monte-Carlo engine can model
// per-cell capacitor mismatch and bit-line variation realistically.
#pragma once

#include <span>

#include "circuit/tech.hpp"

namespace pima::circuit {

/// Result of one multi-row charge-sharing event.
struct ChargeShareResult {
  double v_bl;        ///< settled bit-line voltage (V)
  double v_bl_frac;   ///< as a fraction of Vdd
};

/// Nominal charge sharing: k activated cells, n of them storing '1'.
ChargeShareResult share_nominal(const TechParams& tech, int k, int n);

/// Charge sharing with explicit per-cell capacitances and values — used by
/// the Monte-Carlo engine. `cell_caps_ff[i]` is the (varied) capacitance of
/// activated cell i and `cell_vals[i]` its stored bit.
ChargeShareResult share_varied(double vdd, double bitline_cap_ff,
                               std::span<const double> cell_caps_ff,
                               std::span<const bool> cell_vals);

/// Ideal inverter threshold decision: output bit of an inverter with
/// switching voltage `vs` (V) driven by `vin` (V). Output is logic NOT of
/// (vin > vs).
bool inverter_out(double vin, double vs);

}  // namespace pima::circuit
