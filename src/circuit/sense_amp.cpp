#include "circuit/sense_amp.hpp"

#include "common/error.hpp"

namespace pima::circuit {

EnableSet enables_for(SaMode mode) {
  // Paper Fig. 2a control-signal table (W/R, XNOR2, Carry, Sum columns).
  switch (mode) {
    case SaMode::kMemory: return {true, true, false, false, false};
    case SaMode::kXnor2:  return {false, true, true, true, false};
    case SaMode::kCarry:  return {true, true, true, false, true};
    case SaMode::kSum:    return {true, true, true, false, false};
  }
  throw PreconditionError("unknown SA mode");
}

DetectorThresholds design_thresholds(const TechParams& tech) {
  // Two-row activation produces three nominal levels (n ∈ {0,1,2} cells
  // storing '1'); place the NOR/NAND detector thresholds midway between
  // adjacent levels for maximum noise margin. The regular SA reference sits
  // at the TRA majority point, midway between the n=1 and n=2 levels of a
  // three-cell share (= Vdd/2 by symmetry).
  const double v0 = share_nominal(tech, 2, 0).v_bl;
  const double v1 = share_nominal(tech, 2, 1).v_bl;
  const double v2 = share_nominal(tech, 2, 2).v_bl;
  const double t1 = share_nominal(tech, 3, 1).v_bl;
  const double t2 = share_nominal(tech, 3, 2).v_bl;
  return {(v0 + v1) / 2.0, (v1 + v2) / 2.0, (t1 + t2) / 2.0};
}

SenseAmp::TwoRowOutputs SenseAmp::sense_two_row(double v_bl) const {
  // Low-Vs inverter: output high only when the shared level is below the
  // lower threshold, i.e. both cells stored '0' ⇒ NOR2. High-Vs inverter:
  // output high unless both cells stored '1' ⇒ NAND2. The add-on AND gate
  // with one inverted input combines them into XOR2 = NAND2 ∧ ¬NOR2.
  const bool nor2 = inverter_out(v_bl, th_.low_vs);
  const bool nand2 = inverter_out(v_bl, th_.high_vs);
  const bool xor2 = nand2 && !nor2;
  return {nor2, nand2, xor2, !xor2};
}

bool SenseAmp::xnor2(bool di, bool dj) const {
  const int n = static_cast<int>(di) + static_cast<int>(dj);
  const double v = share_nominal(tech_, 2, n).v_bl;
  return sense_two_row(v).xnor2;
}

bool SenseAmp::sense_carry(double v_bl) {
  // Regular differential SA amplifies the deviation from its reference:
  // a three-cell share above the majority point means at least two '1's.
  latch_ = !inverter_out(v_bl, th_.normal_vs);
  return latch_;
}

bool SenseAmp::carry(bool a, bool b, bool c) {
  const int n = static_cast<int>(a) + static_cast<int>(b) + static_cast<int>(c);
  const double v = share_nominal(tech_, 3, n).v_bl;
  return sense_carry(v);
}

bool SenseAmp::sum(bool di, bool dj) const {
  // Sum cycle: two-row activation of the operand bits gives XOR2(di,dj) at
  // the add-on gates; the SA's XOR gate combines it with the latched carry
  // from the previous cycle: sum = di ⊕ dj ⊕ c_in.
  const int n = static_cast<int>(di) + static_cast<int>(dj);
  const double v = share_nominal(tech_, 2, n).v_bl;
  return sense_two_row(v).xor2 != latch_;
}

}  // namespace pima::circuit
