// Area-overhead model (reproduces the paper's §II.B estimate of ~5%).
//
// The paper counts three add-on cost sources per computational sub-array:
// ~50 extra transistors per sense amplifier (one per bit-line), 16 extra
// transistors in the modified row decoder drivers for the 8 computation
// rows, and the controller logic for the enable bits — totalling "51 DRAM
// rows (51×256 transistors) per sub-array at the most", i.e. about 5% of
// chip area. We reproduce the same transistor-count accounting.
#pragma once

#include <cstddef>

namespace pima::circuit {

/// Add-on transistor counts (paper §II.B "Area Overhead").
struct AreaModelParams {
  std::size_t columns = 256;               ///< bit-lines per sub-array
  std::size_t rows = 1024;                 ///< rows per sub-array
  std::size_t sa_addon_per_bitline = 50;   ///< reconfigurable-SA extras
  std::size_t mrd_addon_total = 16;        ///< modified row decoder extras
  std::size_t ctrl_addon_rows_equiv = 0;   ///< see ctrl_rows_equiv() below
  /// Transistors of one DRAM cell (1T1C) — the unit the paper normalizes by
  /// when expressing overhead as "rows of transistors".
  std::size_t transistors_per_cell = 1;
};

struct AreaReport {
  std::size_t addon_transistors;       ///< total add-on transistors/sub-array
  double rows_equivalent;              ///< add-on expressed in DRAM-row units
  double overhead_fraction;            ///< add-on / (data-array transistors)
};

/// Computes the add-on cost of one computational sub-array. The paper's own
/// bound (51 row-equivalents, ~5%) emerges from 50·256 SA transistors ≈ 50
/// rows plus decoder and control in the 51st row.
AreaReport estimate_area(const AreaModelParams& params = {});

}  // namespace pima::circuit
