#include "circuit/montecarlo.hpp"

#include <array>

#include "circuit/charge_sharing.hpp"
#include "circuit/sense_amp.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace pima::circuit {
namespace {

// One perturbed trial of the chosen mechanism. Returns true on failure.
bool trial_fails(const TechParams& tech, Mechanism mechanism, double x,
                 const VariationModel& model, Rng& rng) {
  const DetectorThresholds nominal = design_thresholds(tech);

  // Perturb detector switching points, referenced to Vdd. The sense-margin
  // noise coefficient depends on the mechanism (see VariationModel).
  const double vs_sigma =
      (mechanism == Mechanism::kTripleRowActivation
           ? model.tra_sense_sigma_per_x2 * x * x
           : model.two_row_sense_sigma_per_x * x) *
      tech.vdd;
  DetectorThresholds th = nominal;
  th.low_vs += rng.gaussian(0.0, vs_sigma);
  th.high_vs += rng.gaussian(0.0, vs_sigma);
  th.normal_vs += rng.gaussian(0.0, vs_sigma);

  // Perturb the array-side parameters.
  const double bl_cap =
      tech.bitline_cap_ff *
      (1.0 + rng.gaussian(0.0, model.bl_cap_rel_sigma_per_x * x));

  const int k = mechanism == Mechanism::kTripleRowActivation ? 3 : 2;
  std::array<double, 3> caps{};
  std::array<bool, 3> vals{};
  std::array<double, 3> cell_v{};
  for (int i = 0; i < k; ++i) {
    caps[static_cast<std::size_t>(i)] =
        tech.cell_cap_ff *
        (1.0 + rng.gaussian(0.0, model.cell_cap_rel_sigma_per_x * x));
    vals[static_cast<std::size_t>(i)] = rng.bernoulli(0.5);
    cell_v[static_cast<std::size_t>(i)] =
        tech.vdd *
        (1.0 + rng.gaussian(0.0, model.cell_v_rel_sigma_per_x * x));
  }

  // Charge sharing with imperfect stored voltages: Q = Cbl·Vdd/2 + Σ Ci·Vi
  // where Vi is the (perturbed) restored voltage of cells storing '1'.
  double c_total = bl_cap;
  double q = bl_cap * tech.vdd * 0.5;
  for (int i = 0; i < k; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    c_total += caps[idx];
    if (vals[idx]) q += caps[idx] * cell_v[idx];
  }
  const double v_bl = q / c_total;

  SenseAmp sa(tech, th);
  if (mechanism == Mechanism::kTripleRowActivation) {
    const bool ideal =
        (static_cast<int>(vals[0]) + static_cast<int>(vals[1]) +
         static_cast<int>(vals[2])) >= 2;
    return sa.sense_carry(v_bl) != ideal;
  }
  const bool ideal = vals[0] == vals[1];
  return sa.sense_two_row(v_bl).xnor2 != ideal;
}

}  // namespace

VariationResult run_variation_trials(const TechParams& tech,
                                     Mechanism mechanism, double variation,
                                     std::size_t trials, std::uint64_t seed,
                                     const VariationModel& model) {
  PIMA_CHECK(variation >= 0.0 && variation <= 1.0,
             "variation level must be a fraction in [0,1]");
  PIMA_CHECK(trials > 0, "need at least one trial");
  Rng rng(seed);
  std::size_t failures = 0;
  for (std::size_t t = 0; t < trials; ++t)
    if (trial_fails(tech, mechanism, variation, model, rng)) ++failures;
  return {variation, trials, failures,
          100.0 * static_cast<double>(failures) / static_cast<double>(trials)};
}

VariationTable run_variation_table(const TechParams& tech, std::size_t trials,
                                   std::uint64_t seed,
                                   const VariationModel& model) {
  VariationTable table;
  table.levels = {0.05, 0.10, 0.15, 0.20, 0.30};
  for (std::size_t i = 0; i < table.levels.size(); ++i) {
    const double x = table.levels[i];
    table.tra.push_back(run_variation_trials(
        tech, Mechanism::kTripleRowActivation, x, trials, seed + 2 * i, model));
    table.two_row.push_back(run_variation_trials(
        tech, Mechanism::kTwoRowActivation, x, trials, seed + 2 * i + 1,
        model));
  }
  return table;
}

}  // namespace pima::circuit
