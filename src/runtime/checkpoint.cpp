#include "runtime/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>

#include "common/error.hpp"
#include "common/fsio.hpp"
#include "telemetry/telemetry.hpp"

namespace pima::runtime {

namespace {

constexpr char kMagic[8] = {'P', 'I', 'M', 'A', 'C', 'K', 'P', 'T'};
constexpr char kShardMagic[8] = {'P', 'I', 'M', 'A', 'S', 'H', 'R', 'D'};

[[noreturn]] void corrupt(const std::string& path, const std::string& why) {
  throw CorruptCheckpointError("corrupt checkpoint " + path + ": " + why);
}

// ---- little-endian primitive serialization --------------------------------

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void bytes(const void* data, std::size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }
  const std::string& str() const { return buf_; }

 private:
  std::string buf_;
};

class Reader {
 public:
  Reader(const std::string& buf, const std::string& path)
      : buf_(buf), path_(path) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }
  std::uint32_t u32() {
    const char* p = take(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
           << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    const char* p = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
           << (8 * i);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string bytes(std::size_t n) { return std::string(take(n), n); }
  bool exhausted() const { return pos_ == buf_.size(); }

 private:
  const char* take(std::size_t n) {
    if (pos_ + n > buf_.size())
      corrupt(path_, "truncated payload (wanted " + std::to_string(n) +
                         " bytes at offset " + std::to_string(pos_) + ")");
    const char* p = buf_.data() + pos_;
    pos_ += n;
    return p;
  }

  const std::string& buf_;
  std::string path_;
  std::size_t pos_ = 0;
};

// ---- field serializers ----------------------------------------------------

void put_fingerprint(Writer& w, const CheckpointFingerprint& f) {
  w.u64(f.k);
  w.u64(f.hash_shards);
  w.u64(f.devices);
  w.u64(f.shard);
  w.u32(f.graph_intervals);
  w.u8(f.use_multiplicity ? 1 : 0);
  w.u8(f.euler_contigs ? 1 : 0);
  w.u8(f.traversal);
  w.u64(f.rows);
  w.u64(f.compute_rows);
  w.u64(f.columns);
  w.u64(f.subarrays_per_mat);
  w.u64(f.mats_per_bank);
  w.u64(f.banks);
  w.f64(f.fault_variation);
  w.u64(f.fault_seed);
  w.f64(f.fault_retention);
  w.f64(f.fault_weak_rows);
  w.u8(f.recovery_mode);
}

CheckpointFingerprint get_fingerprint(Reader& r) {
  CheckpointFingerprint f;
  f.k = r.u64();
  f.hash_shards = r.u64();
  f.devices = r.u64();
  f.shard = r.u64();
  f.graph_intervals = r.u32();
  f.use_multiplicity = r.u8() != 0;
  f.euler_contigs = r.u8() != 0;
  f.traversal = r.u8();
  f.rows = r.u64();
  f.compute_rows = r.u64();
  f.columns = r.u64();
  f.subarrays_per_mat = r.u64();
  f.mats_per_bank = r.u64();
  f.banks = r.u64();
  f.fault_variation = r.f64();
  f.fault_seed = r.u64();
  f.fault_retention = r.f64();
  f.fault_weak_rows = r.f64();
  f.recovery_mode = r.u8();
  return f;
}

void put_device_stats(Writer& w, const dram::DeviceStats& s) {
  w.f64(s.time_ns);
  w.f64(s.serial_ns);
  w.f64(s.energy_pj);
  w.u64(s.commands);
  w.u64(s.subarrays_used);
}

dram::DeviceStats get_device_stats(Reader& r) {
  dram::DeviceStats s;
  s.time_ns = r.f64();
  s.serial_ns = r.f64();
  s.energy_pj = r.f64();
  s.commands = r.u64();
  s.subarrays_used = r.u64();
  return s;
}

void put_fault_stats(Writer& w, const FaultStats& s) {
  w.u64(s.injected);
  w.u64(s.detected);
  w.u64(s.retried);
  w.u64(s.remapped);
  w.u64(s.escaped);
  w.u64(s.vote_corrections);
  w.u64(s.host_fallbacks);
  w.u64(s.degraded_subarrays);
}

FaultStats get_fault_stats(Reader& r) {
  FaultStats s;
  s.injected = r.u64();
  s.detected = r.u64();
  s.retried = r.u64();
  s.remapped = r.u64();
  s.escaped = r.u64();
  s.vote_corrections = r.u64();
  s.host_fallbacks = r.u64();
  s.degraded_subarrays = r.u64();
  return s;
}

void put_kmer_list(
    Writer& w,
    const std::vector<std::pair<assembly::Kmer, std::uint32_t>>& list) {
  w.u64(list.size());
  for (const auto& [km, freq] : list) {
    w.u64(km.packed());
    w.u8(static_cast<std::uint8_t>(km.k()));
    w.u32(freq);
  }
}

std::vector<std::pair<assembly::Kmer, std::uint32_t>> get_kmer_list(
    Reader& r, const std::string& path) {
  const std::uint64_t n = r.u64();
  std::vector<std::pair<assembly::Kmer, std::uint32_t>> list;
  list.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t packed = r.u64();
    const std::uint8_t k = r.u8();
    const std::uint32_t freq = r.u32();
    if (k < 1 || k > assembly::Kmer::kMaxK ||
        (k < assembly::Kmer::kMaxK && (packed >> (2 * k)) != 0))
      corrupt(path, "k-mer entry " + std::to_string(i) + " out of range");
    list.emplace_back(assembly::Kmer(packed, k), freq);
  }
  return list;
}

void put_contigs(Writer& w, const std::vector<dna::Sequence>& contigs) {
  w.u64(contigs.size());
  for (const auto& c : contigs) {
    const std::string s = c.to_string();
    w.u64(s.size());
    w.bytes(s.data(), s.size());
  }
}

std::vector<dna::Sequence> get_contigs(Reader& r, const std::string& path) {
  const std::uint64_t n = r.u64();
  std::vector<dna::Sequence> contigs;
  contigs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t len = r.u64();
    const std::string s = r.bytes(len);
    for (const char c : s)
      if (!dna::is_valid_char(c))
        corrupt(path, "contig " + std::to_string(i) + " has a non-ACGT byte");
    contigs.push_back(dna::Sequence::from_string(s));
  }
  return contigs;
}

std::string serialize_payload(const PipelineSnapshot& snap) {
  Writer w;
  put_fingerprint(w, snap.fingerprint);
  w.u32(snap.stages_done);
  put_device_stats(w, snap.hashmap);
  put_device_stats(w, snap.debruijn);
  put_device_stats(w, snap.traverse);
  put_fault_stats(w, snap.fault_stats);
  w.u64(snap.distinct_kmers);
  put_kmer_list(w, snap.kmer_entries);
  put_kmer_list(w, snap.graph_edges);
  put_contigs(w, snap.contigs);
  return w.str();
}

PipelineSnapshot deserialize_payload(const std::string& payload,
                                     const std::string& path) {
  Reader r(payload, path);
  PipelineSnapshot snap;
  snap.fingerprint = get_fingerprint(r);
  snap.stages_done = r.u32();
  if (snap.stages_done < 1 || snap.stages_done > 3)
    corrupt(path, "stage count " + std::to_string(snap.stages_done) +
                      " out of range");
  snap.hashmap = get_device_stats(r);
  snap.debruijn = get_device_stats(r);
  snap.traverse = get_device_stats(r);
  snap.fault_stats = get_fault_stats(r);
  snap.distinct_kmers = r.u64();
  snap.kmer_entries = get_kmer_list(r, path);
  snap.graph_edges = get_kmer_list(r, path);
  snap.contigs = get_contigs(r, path);
  if (!r.exhausted()) corrupt(path, "trailing bytes after payload");
  return snap;
}

// POSIX write-the-whole-buffer with IoError on failure. Routed through
// the fsio shim so chaos tests can inject ENOSPC/short writes/torn-write
// crash points into checkpoint persistence (site "checkpoint").
void write_all(int fd, const char* data, std::size_t size,
               const std::string& path) {
  while (size > 0) {
    const ssize_t n = fsio::write(fd, data, size, "checkpoint");
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("write failed for " + path + ": " +
                    std::strerror(errno));
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

// Shared header + atomic-rename write for both checkpoint flavors.
void write_checkpoint_file(const std::string& path, const char magic[8],
                           const std::string& payload) {
  Writer header;
  header.bytes(magic, 8);
  header.u32(kCheckpointVersion);
  header.u64(payload.size());
  header.u32(crc32(payload.data(), payload.size()));

  const std::string tmp = path + ".tmp";
  const int fd =
      fsio::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644, "checkpoint");
  if (fd < 0)
    throw IoError("cannot create " + tmp + ": " + std::strerror(errno));
  try {
    write_all(fd, header.str().data(), header.str().size(), tmp);
    write_all(fd, payload.data(), payload.size(), tmp);
    if (fsio::fsync(fd, "checkpoint") != 0)
      throw IoError("fsync failed for " + tmp + ": " + std::strerror(errno));
  } catch (...) {
    ::close(fd);
    fsio::unlink(tmp.c_str(), "checkpoint");
    throw;
  }
  ::close(fd);
  if (fsio::rename(tmp.c_str(), path.c_str(), "checkpoint") != 0) {
    const int err = errno;
    fsio::unlink(tmp.c_str(), "checkpoint");
    throw IoError("cannot rename " + tmp + " to " + path + ": " +
                  std::strerror(err));
  }
  // Durability of the rename itself: fsync the containing directory. A
  // failure is survivable but counted + logged once (fsio satellite).
  fsio::fsync_parent_dir(path, "checkpoint");
}

// Shared header validation; returns the CRC-checked payload.
std::string read_checkpoint_file(const std::string& path,
                                 const char magic[8]) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open checkpoint: " + path);
  std::string file((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 4;
  if (file.size() < kHeaderSize) corrupt(path, "shorter than the header");
  if (std::memcmp(file.data(), magic, 8) != 0) corrupt(path, "bad magic");
  Reader header(file, path);
  (void)header.bytes(8);
  const std::uint32_t version = header.u32();
  if (version != kCheckpointVersion)
    corrupt(path, "version " + std::to_string(version) + " (expected " +
                      std::to_string(kCheckpointVersion) + ")");
  const std::uint64_t payload_size = header.u64();
  const std::uint32_t stored_crc = header.u32();
  if (file.size() - kHeaderSize != payload_size)
    corrupt(path, "payload size mismatch (header says " +
                      std::to_string(payload_size) + ", file holds " +
                      std::to_string(file.size() - kHeaderSize) + ")");
  const std::string payload = file.substr(kHeaderSize);
  const std::uint32_t actual_crc = crc32(payload.data(), payload.size());
  if (actual_crc != stored_crc) corrupt(path, "checksum mismatch");
  return payload;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i)
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

std::string CheckpointFingerprint::diff(
    const CheckpointFingerprint& o) const {
  if (k != o.k) return "k";
  if (hash_shards != o.hash_shards) return "hash_shards";
  if (devices != o.devices) return "devices";
  if (shard != o.shard) return "shard";
  if (graph_intervals != o.graph_intervals) return "graph_intervals";
  if (use_multiplicity != o.use_multiplicity) return "use_multiplicity";
  if (euler_contigs != o.euler_contigs) return "euler_contigs";
  if (traversal != o.traversal) return "traversal";
  if (rows != o.rows || compute_rows != o.compute_rows ||
      columns != o.columns || subarrays_per_mat != o.subarrays_per_mat ||
      mats_per_bank != o.mats_per_bank || banks != o.banks)
    return "device geometry";
  if (fault_variation != o.fault_variation) return "fault variation";
  if (fault_seed != o.fault_seed) return "fault seed";
  if (fault_retention != o.fault_retention) return "fault retention";
  if (fault_weak_rows != o.fault_weak_rows) return "fault weak rows";
  if (recovery_mode != o.recovery_mode) return "recovery mode";
  return "";
}

void save_checkpoint(const std::string& path, const PipelineSnapshot& snap) {
  PIMA_TEL_SPAN("checkpoint:save");
#if PIMA_TELEMETRY
  const auto t0 = std::chrono::steady_clock::now();
  struct Timer {
    std::chrono::steady_clock::time_point t0;
    ~Timer() {
      if (!telemetry::metrics_enabled()) return;
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      telemetry::metrics()
          .histogram("pima_checkpoint_write_seconds",
                     "checkpoint write+fsync duration",
                     {0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0})
          .observe(secs);
    }
  } timer{t0};
#endif
  write_checkpoint_file(path, kMagic, serialize_payload(snap));
}

PipelineSnapshot load_checkpoint(const std::string& path) {
  return deserialize_payload(read_checkpoint_file(path, kMagic), path);
}

void save_shard_checkpoint(const std::string& path,
                           const ShardCheckpoint& sc) {
  Writer w;
  put_fingerprint(w, sc.fingerprint);
  w.u32(sc.stages_done);
  write_checkpoint_file(path, kShardMagic, w.str());
}

ShardCheckpoint load_shard_checkpoint(const std::string& path) {
  const std::string payload = read_checkpoint_file(path, kShardMagic);
  Reader r(payload, path);
  ShardCheckpoint sc;
  sc.fingerprint = get_fingerprint(r);
  sc.stages_done = r.u32();
  if (sc.stages_done > 3)
    corrupt(path,
            "stage count " + std::to_string(sc.stages_done) + " out of range");
  if (!r.exhausted()) corrupt(path, "trailing bytes after payload");
  return sc;
}

void validate_compatible(const PipelineSnapshot& snap,
                         const CheckpointFingerprint& current) {
  const std::string field = snap.fingerprint.diff(current);
  if (!field.empty())
    throw CorruptCheckpointError(
        "checkpoint incompatible with this run: " + field +
        " differs from the interrupted run — resume with the original "
        "configuration or start fresh without --resume");
}

}  // namespace pima::runtime
