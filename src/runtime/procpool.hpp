// Process-isolated device shards with a fault-tolerant supervisor
// (DESIGN.md §15).
//
// PR 8's DevicePool shards a run over N simulated devices inside one
// address space; this layer moves each shard into its own child process
// (`pima_devd`) so a crashed, wedged, or chaos-injected device worker
// cannot take the assembly down with it. The parent keeps the PR-8
// contract — owner = flat % devices, folds in logical flat order — and
// owns the robustness machinery:
//
//   * transport: one socketpair per worker, newline-delimited JSON framed
//     by net::LineChannel, every byte through the fsio fault shim (site
//     "wire" in the workers, "procpool" for spawn/reap/kill), so
//     PIMA_IOFAULT chaos reaches the process boundary like every other
//     I/O path;
//   * liveness: workers heartbeat (`{"hb":1}`) from a side thread that
//     keeps beating while the engine watchdog runs, so a long in-memory
//     stage does not trip the parent's deadline; the deadline bounds every
//     wait for worker bytes and a silent worker is declared wedged,
//     SIGKILLed and reaped;
//   * reaping: waitpid with typed exit classification — clean shutdown,
//     EngineStalledError (exit 6), injected torn-write crash (exit 86),
//     death by signal, or a torn protocol stream (EOF/garbage mid-request,
//     or a clean exit without a shutdown handshake);
//   * restart: bounded restart-with-backoff. Every state-mutating request
//     is journaled; a restarted worker is re-initialized, validated
//     against its per-device shard checkpoint (fingerprint v3 pins the
//     shard id) and replayed to exactly the pre-crash state. Journals are
//     truncated at stage boundaries (the shard checkpoint records the
//     truncation point), so replay cost is bounded by one stage;
//   * degrade: when the restart budget is exhausted the supervisor throws
//     ProcPoolDegradedError and the pipeline falls back to the in-process
//     DevicePool — a typed, logged transition, bit-identical output.
//
// Determinism: a worker's device state is a pure function of its request
// journal, and all cross-shard data flows through the parent's Exchange
// folds in logical flat order, so a run with K worker crashes is
// bit-identical to a crash-free run (and to the in-process run).
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "net/json.hpp"
#include "net/socket.hpp"
#include "runtime/checkpoint.hpp"

namespace pima::runtime {

/// Typed classification of a worker's demise, derived from waitpid status
/// plus protocol context.
enum class WorkerExitClass : std::uint8_t {
  kClean,      ///< exited 0 after a shutdown handshake
  kStalled,    ///< exited with the EngineStalledError code (6)
  kCrashExit,  ///< non-zero exit (incl. fsio's torn-write crash, 86)
  kSignal,     ///< killed by a signal (SIGKILL, SIGSEGV, ...)
  kTorn,       ///< protocol torn: EOF/garbage mid-request or exit 0 mid-run
  kWedged,     ///< liveness deadline expired; SIGKILLed by the supervisor
};

const char* to_string(WorkerExitClass c);

/// Raised when the restart budget is exhausted: the signal to degrade to
/// the in-process DevicePool. Carries the final crash's identity so the
/// pipeline can convert it into WorkerCrashedError when degrading is
/// disabled.
class ProcPoolDegradedError : public SimulationError {
 public:
  ProcPoolDegradedError(std::size_t device, WorkerExitClass exit_class,
                        const std::string& detail)
      : SimulationError("device worker " + std::to_string(device) +
                        " failed (" + runtime::to_string(exit_class) +
                        ") with the restart budget exhausted: " + detail),
        device_(device),
        exit_class_(exit_class),
        detail_(detail) {}

  std::size_t device() const { return device_; }
  WorkerExitClass exit_class() const { return exit_class_; }
  const std::string& detail() const { return detail_; }

 private:
  std::size_t device_;
  WorkerExitClass exit_class_;
  std::string detail_;
};

struct ProcPoolOptions {
  std::size_t devices = 1;
  /// Path of the pima_devd binary. Empty = $PIMA_DEVD_PATH, then
  /// alongside /proc/self/exe, then ../tools relative to it.
  std::string devd_path;
  /// Bounds every wait for worker bytes (heartbeats re-arm it). 0 = wait
  /// forever — the unsupervised in-process semantics.
  double liveness_timeout_s = 0.0;
  /// Total restarts allowed across all workers before degrading.
  std::size_t restart_budget = 3;
  /// Base backoff before a restart; doubles per consecutive restart of the
  /// same worker, capped at 2 s.
  double restart_backoff_ms = 50.0;
  /// False keeps the full journal for the whole run (required when the
  /// run captures a trace: a restarted worker must replay every command).
  bool journal_truncation = true;
  /// Directory for `shard-<d>.ckpt` files; empty disables them.
  std::string checkpoint_dir;
  /// Whole-run fingerprint (shard = kWholeRunShard); the supervisor pins
  /// fingerprint.shard = d for worker d's checkpoint.
  CheckpointFingerprint fingerprint;
  /// PIMA_IOFAULT spec installed in the children's environment; empty
  /// inherits the parent's environment unchanged. Lets chaos tests aim a
  /// fault plan at the workers while the parent stays clean (the parent
  /// uses the process-local install_plan for its own faults).
  std::string child_iofault;
};

/// Owns the worker processes of one isolated run. Single-threaded use by
/// the pipeline (the parent is the only controller; concurrency lives in
/// the workers' engines).
class ProcSupervisor {
 public:
  /// `make_init` builds the init request for a device; it is re-sent
  /// verbatim on every restart of that worker.
  ProcSupervisor(ProcPoolOptions options,
                 std::function<net::Json(std::size_t)> make_init);
  ~ProcSupervisor();

  ProcSupervisor(const ProcSupervisor&) = delete;
  ProcSupervisor& operator=(const ProcSupervisor&) = delete;

  /// Spawns and initializes every worker (validating shard checkpoints
  /// left by a previous run of the same directory).
  void start();

  std::size_t devices() const { return options_.devices; }

  /// State-mutating request: journaled for crash replay. Returns the ok
  /// response; child-side typed errors are rethrown as their original
  /// exception types (no restart — they are deterministic). Transport
  /// failures and liveness expiries trigger classify → restart → replay,
  /// bounded by the restart budget (ProcPoolDegradedError thereafter).
  net::Json rpc(std::size_t device, const net::Json& request);

  /// Read-only request: same failure handling, not journaled.
  net::Json query(std::size_t device, const net::Json& request);

  /// Stage boundary: harvests worker span buffers (when the controller
  /// tracer is live), truncates journals (when enabled) and writes the
  /// per-device shard checkpoints.
  void mark_stage_done(std::uint32_t stage);

  /// Fetches every live worker's cumulative span buffer over the
  /// `telemetry` verb and installs it in the controller tracer as that
  /// incarnation's ProcessTrace (timestamps shifted by the clock offset
  /// sampled at init). No-op when tracing is disabled. Uses the normal
  /// rpc failure handling, so a dead worker is restarted (and its spans
  /// since the last harvest are lost — restarts appear as new tracks).
  void collect_telemetry();

  /// Graceful shutdown handshake with every live worker, then reap.
  /// Idempotent; also run by the destructor.
  void shutdown() noexcept;

  std::size_t restarts_used() const { return restarts_used_; }

 private:
  struct Worker {
    pid_t pid = -1;
    net::ScopedFd fd;
    std::unique_ptr<net::LineChannel> channel;
    std::vector<std::string> journal;  ///< since the last truncation
    std::size_t consecutive_restarts = 0;
    bool alive = false;
    std::size_t spawn_count = 0;        ///< incarnation = spawn_count - 1
    std::int64_t clock_offset_ns = 0;   ///< controller now − worker now
    std::thread stderr_relay;           ///< prefixes child stderr lines
  };

  std::string shard_checkpoint_path(std::size_t d) const;
  void validate_shard_checkpoint(std::size_t d) const;
  void spawn(std::size_t d);
  void respawn(std::size_t d);
  net::Json transact(Worker& w, const std::string& line);
  /// Classify + reap + log; throws ProcPoolDegradedError past the budget,
  /// otherwise sleeps the backoff and leaves the worker dead for respawn.
  void on_worker_failure(std::size_t d, bool wedged, const std::string& what);
  WorkerExitClass reap_worker(std::size_t d, bool wedged) noexcept;
  net::Json do_rpc(std::size_t device, const net::Json& request,
                   bool journaled);

  ProcPoolOptions options_;
  std::function<net::Json(std::size_t)> make_init_;
  std::string resolved_devd_;
  std::vector<Worker> workers_;
  std::uint32_t stages_done_ = 0;
  std::size_t restarts_used_ = 0;
  std::uint64_t flow_seq_ = 0;  ///< rpc flow-event ids (traced runs)
  int snapshot_id_ = -1;        ///< flight-recorder provider registration
  bool started_ = false;
};

/// Rethrows a worker's `{"ok":false,...}` response as the original typed
/// exception (EngineStalledError is reconstructed from its wire fields).
/// Shared with the client side of the daemon tests.
[[noreturn]] void throw_worker_error(const net::Json& response);

/// Resolves the pima_devd binary per ProcPoolOptions::devd_path rules.
/// Throws IoError when no candidate exists.
std::string resolve_devd_path(const std::string& requested);

}  // namespace pima::runtime
