// Work placement for the multi-channel runtime (paper §Data Mapping).
//
// The paper fans the workload out over chips and sub-arrays: M vertex
// intervals make M² edge blocks, blocks go to chips, a chip spreads its
// block over sub-arrays. The runtime models one chip/channel per worker
// thread and owns the placement decisions:
//
//   * sub-array → channel: flat index interleaved over the channels, so the
//     hash shards (consecutive flat indices) and the block grid both spread
//     evenly (round-robin chip assignment);
//   * block (i, j) → sub-array: the same modular layout the degree kernel
//     has always used, now in one authoritative place;
//   * ISA program → per-channel sub-programs: instructions are routed to
//     the channel owning their target sub-array, preserving per-sub-array
//     program order (the property that keeps results bit-identical for any
//     channel count).
#pragma once

#include <cstddef>
#include <vector>

#include "dram/isa.hpp"

namespace pima::runtime {

class Scheduler {
 public:
  /// `channels` executors over a device with `total_subarrays` sub-arrays.
  Scheduler(std::size_t total_subarrays, std::size_t channels);

  std::size_t channels() const { return channels_; }
  std::size_t total_subarrays() const { return total_subarrays_; }

  /// Owning channel of a sub-array (interleaved chip assignment).
  std::size_t channel_of(std::size_t subarray_flat) const {
    return subarray_flat % channels_;
  }

  /// Sub-array executing block (i, j) of an M² interval partition.
  /// `offset` selects a disjoint region of the block grid (the degree
  /// kernel places transposed blocks at offset M²).
  std::size_t block_subarray(std::size_t i, std::size_t j, std::size_t m,
                             std::size_t offset = 0) const;

  /// Splits a program into per-channel sub-programs (index = channel).
  /// Relative instruction order within each sub-array is preserved.
  std::vector<dram::Program> split(const dram::Program& program) const;

 private:
  std::size_t total_subarrays_;
  std::size_t channels_;
};

/// Free-function form of the block placement, for callers that do not hold
/// a Scheduler (the serial degree path).
std::size_t block_subarray(std::size_t total_subarrays, std::size_t i,
                           std::size_t j, std::size_t m,
                           std::size_t offset = 0);

}  // namespace pima::runtime
