// Fault-aware execution: verify-retry recovery over the stochastic fault
// process of dram::FaultInjector.
//
// Real in-array compute (Ambit-style TRA in particular) fails
// stochastically under process variation — the paper's Table I quantifies
// it. This layer keeps the platform producing correct results when the
// array misbehaves, at a measured latency/energy cost:
//
//   * Verify-after-op. Designated critical operations (the hash-probe row
//     compare, TRA majority) are executed through a RecoveryExecutor that
//     re-reads the driven result through the DPU path and checks it
//     against the controller's residual for the operation (the controller
//     staged both operands itself, so it holds enough redundancy to check
//     the result; the simulator implements the check as a golden
//     comparison, costed as one DPU_REDUCE readback).
//   * Bounded retry with exponential backoff. A detected mismatch
//     re-stages and re-executes, up to max_retries, waiting
//     backoff_base_ns << attempt on the sub-array's command stream between
//     attempts (sensing faults are transient; backoff models the
//     controller's recovery window).
//   * Weak-row remapping. Failures are blamed on the computation rows the
//     op staged through; a row whose failure counter crosses
//     weak_row_threshold is remapped to a spare computation row for all
//     subsequent ops (persistently-weak cells stop hurting).
//   * Triple-execute-and-vote. RecoveryMode::kVote runs the op three times
//     and takes the per-column majority — the classic TMR-in-time
//     alternative to verify-retry.
//   * Graceful degradation. When a sub-array's detected-failure count
//     exceeds subarray_failure_budget, the executor stops trusting its
//     compute rows entirely: critical ops fall back to host-side recompute
//     through the global row buffer (costed as row reads + a row write)
//     and the pipeline keeps running instead of throwing.
//
// Every decision draws only on per-sub-array state, so fault-aware runs
// remain deterministic in (seed, command sequence) for any channel count;
// per-channel FaultStats fold through the same deterministic reduction as
// DeviceStats.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "dram/device.hpp"
#include "runtime/scheduler.hpp"
#include "telemetry/metrics.hpp"

namespace pima::runtime {

class DevicePool;  // runtime/shard.hpp — recovery spans a sharded pool too

enum class RecoveryMode {
  kOff,    ///< execute unverified (faults land in the results)
  kRetry,  ///< verify-after-op + bounded re-execution
  kVote,   ///< triple-execute-and-vote (TMR in time)
};

constexpr const char* to_string(RecoveryMode m) {
  switch (m) {
    case RecoveryMode::kOff: return "off";
    case RecoveryMode::kRetry: return "retry";
    case RecoveryMode::kVote: return "vote";
  }
  return "?";
}

/// Parses "off" / "retry" / "vote" (CLI flag values).
std::optional<RecoveryMode> parse_recovery_mode(std::string_view s);

struct RecoveryOptions {
  RecoveryMode mode = RecoveryMode::kOff;
  /// Re-executions after the first detected failure of one op.
  std::size_t max_retries = 3;
  /// Idle wait before retry k is backoff_base_ns · 2^k (exponential),
  /// clamped to backoff_cap_ns.
  double backoff_base_ns = 100.0;
  /// Upper bound of one backoff wait. Without the clamp, large
  /// max_retries values would shift the base past 2^63 (overflow) or park
  /// a sub-array for absurd simulated aeons.
  double backoff_cap_ns = 1e6;  // 1 ms of simulated time
  /// Failures blamed on one computation row before it is remapped.
  std::size_t weak_row_threshold = 4;
  /// Detected failures on one sub-array before it degrades to host-side
  /// recompute for all further critical ops.
  std::size_t subarray_failure_budget = 256;
};

/// The backoff wait before retry `attempt`: backoff_base_ns · 2^attempt,
/// clamped to backoff_cap_ns (overflow-safe for any attempt count).
double recovery_backoff_ns(const RecoveryOptions& options,
                           std::size_t attempt);

/// Per-channel (or rolled-up) recovery statistics.
struct FaultStats {
  std::size_t injected = 0;        ///< corrupted columns (ground truth)
  std::size_t detected = 0;        ///< verification mismatches
  std::size_t retried = 0;         ///< re-executions performed
  std::size_t remapped = 0;        ///< computation rows retired to spares
  std::size_t escaped = 0;         ///< accepted results that were wrong
  std::size_t vote_corrections = 0;///< vote-mode results fixed by majority
  std::size_t host_fallbacks = 0;  ///< ops recomputed host-side (degraded)
  std::size_t degraded_subarrays = 0;

  FaultStats& operator+=(const FaultStats& o);
  bool operator==(const FaultStats&) const = default;
};

inline FaultStats operator+(FaultStats a, const FaultStats& b) {
  a += b;
  return a;
}

/// Folds per-channel FaultStats in channel order (deterministic, like
/// reduce_parallel for DeviceStats — counters simply add).
FaultStats reduce_fault_stats(const std::vector<FaultStats>& parts);

/// Verified execution of critical in-array ops on one sub-array.
///
/// Thread compatibility mirrors the sub-array itself: an executor is
/// touched only by the channel owning its sub-array.
class RecoveryExecutor {
 public:
  RecoveryExecutor(dram::Subarray& subarray, const RecoveryOptions& options);

  /// Row-parallel compare of data rows a, b with per-column match bits
  /// into result_row — the recovery-aware counterpart of
  /// Subarray::compare_rows. result_row must not be a staging row.
  void compare_rows(dram::RowAddr a, dram::RowAddr b,
                    dram::RowAddr result_row);

  /// TRA majority of data rows a, b, c into dst, verified/voted per mode.
  /// In kRetry an accepted result implies latch == MAJ3 as well; in kVote
  /// only dst is guaranteed (the latch keeps the last execution's value).
  void tra_majority(dram::RowAddr a, dram::RowAddr b, dram::RowAddr c,
                    dram::RowAddr dst);

  /// True once the failure budget is blown: critical ops now recompute
  /// host-side.
  bool degraded() const { return degraded_; }
  const FaultStats& stats() const { return stats_; }
  const RecoveryOptions& options() const { return options_; }
  /// Staging row currently mapped for logical slot i (tests).
  std::size_t staging_row(std::size_t i) const { return staging_.at(i); }

 private:
  // Stages the first n operands into the mapped computation rows and runs
  // the multi-row activation once into dst.
  void execute_once(const std::array<dram::RowAddr, 3>& operands,
                    std::size_t n_operands, dram::RowAddr dst);
  // The full checked-op state machine (verify / retry / vote / fallback).
  void run_checked(const std::array<dram::RowAddr, 3>& operands,
                   std::size_t n_operands, dram::RowAddr dst,
                   const BitVector& golden);
  void host_fallback(const BitVector& golden, dram::RowAddr dst,
                     const std::array<dram::RowAddr, 3>& operands,
                     std::size_t n_operands);
  void blame_staging(std::size_t n_operands);
  void note_detected();

  dram::Subarray& sa_;
  RecoveryOptions options_;
  FaultStats stats_;
  bool degraded_ = false;
  /// Logical staging slot -> compute-row offset (0-based). Slots 0..2 are
  /// the active operand rows; remapping swaps in spares.
  std::vector<std::size_t> staging_;
  std::vector<std::size_t> spares_;        ///< unused compute-row offsets
  std::vector<std::size_t> row_failures_;  ///< per compute-row offset
};

/// Lazily materializes one RecoveryExecutor per sub-array. Slot creation
/// and use follow the runtime's ownership discipline (a sub-array — hence
/// its executor — is touched by exactly one channel), so no locking is
/// needed, exactly like dram::Device's lazy sub-array creation.
class RecoveryManager {
 public:
  RecoveryManager(dram::Device& device, const RecoveryOptions& options);
  /// Pool-backed manager: executors resolve sub-arrays through the pool's
  /// owner routing, so one manager covers every shard. The determinism
  /// story is unchanged — executors are per logical flat, and FaultStats
  /// counters are integral, so folds commute exactly.
  RecoveryManager(DevicePool& pool, const RecoveryOptions& options);

  const RecoveryOptions& options() const { return options_; }

  RecoveryExecutor& executor_for(std::size_t subarray_flat);
  const RecoveryExecutor* executor_if(std::size_t subarray_flat) const;

  /// Per-channel FaultStats: executors fold into their owning channel in
  /// flat-index order. Call only when the engine is drained.
  std::vector<FaultStats> per_channel_stats(const Scheduler& scheduler) const;

  /// Device-wide roll-up, with `injected` filled from the device's
  /// injection counters.
  FaultStats roll_up() const;

  /// Exports per-sub-array recovery counters (retries, vote corrections,
  /// remapped rows, host fallbacks, …) labeled {subarray=<flat>}, folded in
  /// flat-index order, plus the device-wide injected total. Model-class:
  /// recovery decisions are deterministic in (seed, command sequence) for
  /// any channel count. Call only when the engine is drained.
  void export_metrics(telemetry::MetricsRegistry& registry) const;

 private:
  dram::Subarray& resolve_subarray(std::size_t flat);
  const dram::Subarray* resolve_subarray_if(std::size_t flat) const;
  dram::InjectionCounters injection_total() const;

  dram::Device* device_ = nullptr;  ///< exactly one of device_/pool_ is set
  DevicePool* pool_ = nullptr;
  RecoveryOptions options_;
  std::vector<std::unique_ptr<RecoveryExecutor>> executors_;
};

}  // namespace pima::runtime
