// Multi-device sharding: a pool of dram::Device instances that behaves,
// bit for bit, like one device (DESIGN.md §14).
//
// Partition function: every logical flat sub-array index is owned by
// device `flat % N` (ShardPlan::owner_of). The owner instantiates the
// sub-array at the *same* flat index inside its own full-geometry address
// space, so kernels keep addressing the logical flat space unchanged —
// sharding moves sub-arrays between devices without renumbering them.
// Because the k-mer hash table places shard s at flat first + s and
// shard_for(kmer) = hash(canonical kmer) % shards, the composition is the
// paper-style owner = hash(canonical_kmer) % N distribution of k-mers
// over devices.
//
// Determinism argument (what the shard test battery pins down):
//   * Per-sub-array command order is the controller's issue order for any
//     device count — routing is a pure function of the flat index, and each
//     per-device Engine preserves per-sub-array FIFO order (engine.hpp).
//   * Every cross-device hand-off goes through an Exchange: per-(src,dst)
//     ordered buffers merged by an explicit global key, so the merged order
//     is a function of the data, never of device count or thread timing.
//   * Every stat/metric fold iterates *logical* flat order 0..total-1
//     across the pool — the identical double-precision fold Device::roll_up
//     performs — so roll-ups, Prometheus model snapshots and checkpoints
//     are bitwise equal to the single-device run.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "dram/device.hpp"
#include "dram/isa.hpp"
#include "runtime/engine.hpp"
#include "telemetry/metrics.hpp"

namespace pima::runtime {

/// How a run is spread over simulated devices. devices == 1 is the
/// classic single-device path (owner_of is identically 0).
struct ShardPlan {
  std::size_t devices = 1;

  bool sharded() const { return devices > 1; }

  /// Owning device of a logical flat sub-array index.
  std::size_t owner_of(std::size_t flat) const {
    return devices <= 1 ? 0 : flat % devices;
  }

  bool operator==(const ShardPlan&) const = default;
};

/// Deterministic all-to-all hand-off used at every stage boundary that
/// crosses devices (k-mer count shuffle, edge-block redistribution, contig
/// hand-off). Producers append to per-(src, dst) buffers — each buffer is
/// ordered by push order — and gather(dst) merges a destination's buffers
/// by (key, src, push order). The key is a global sequence number chosen
/// by the caller (hash-table shard index, instruction sequence, walk
/// index), so the merged stream is identical for every device count:
/// with N == 1 it degenerates to plain key order, which is exactly what a
/// single-device run produces.
template <typename T>
class Exchange {
 public:
  explicit Exchange(std::size_t devices)
      : devices_(devices == 0 ? 1 : devices),
        buffers_(devices_ * devices_) {}

  std::size_t devices() const { return devices_; }

  void push(std::size_t src, std::size_t dst, std::uint64_t key, T item) {
    buffers_[src * devices_ + dst].push_back(
        Entry{key, std::move(item)});
  }

  /// Everything destined for `dst`, merged by (key, src, push order).
  /// Consumes the destination's buffers.
  std::vector<T> gather(std::size_t dst) {
    struct Tagged {
      std::uint64_t key;
      std::size_t src;
      std::size_t seq;  ///< push order within (src, dst)
      T* item;
    };
    std::vector<Tagged> order;
    for (std::size_t src = 0; src < devices_; ++src) {
      auto& buf = buffers_[src * devices_ + dst];
      for (std::size_t i = 0; i < buf.size(); ++i)
        order.push_back(Tagged{buf[i].key, src, i, &buf[i].item});
    }
    std::sort(order.begin(), order.end(),
              [](const Tagged& a, const Tagged& b) {
                if (a.key != b.key) return a.key < b.key;
                if (a.src != b.src) return a.src < b.src;
                return a.seq < b.seq;
              });
    std::vector<T> out;
    out.reserve(order.size());
    for (auto& t : order) out.push_back(std::move(*t.item));
    for (std::size_t src = 0; src < devices_; ++src)
      buffers_[src * devices_ + dst].clear();
    return out;
  }

 private:
  struct Entry {
    std::uint64_t key;
    T item;
  };

  std::size_t devices_;
  std::vector<std::vector<Entry>> buffers_;  // [src * devices_ + dst]
};

/// N devices presenting the single-device interface over the logical flat
/// index space. Device 0 is the caller's device (so single-device callers,
/// checkpoints and stats keep their identity); devices 1..N-1 are owned by
/// the pool and share the primary's geometry and technology.
///
/// Thread compatibility matches dram::Device: sub-array access is safe
/// from the owning device's channels; the fold/fan-out members
/// (roll_up, clear_stats, enable_*) are controller-side calls for a
/// drained pool.
class DevicePool {
 public:
  /// `devices` includes the primary; must be >= 1.
  DevicePool(dram::Device& primary, std::size_t devices);

  std::size_t size() const { return 1 + extras_.size(); }
  const ShardPlan& plan() const { return plan_; }
  const dram::Geometry& geometry() const { return primary_.geometry(); }
  std::size_t total_subarrays() const {
    return geometry().total_subarrays();
  }

  std::size_t owner_of(std::size_t flat) const {
    return plan_.owner_of(flat);
  }

  dram::Device& device(std::size_t d);
  const dram::Device& device(std::size_t d) const;

  /// Sub-array with logical flat index `flat`, created on first touch
  /// inside its owning device (at the same flat index).
  dram::Subarray& subarray(std::size_t flat) {
    return device(owner_of(flat)).subarray(flat);
  }
  const dram::Subarray* subarray_if(std::size_t flat) const {
    return device(owner_of(flat)).subarray_if(flat);
  }

  std::size_t instantiated_count() const;

  /// Pool-wide roll-up folded in *logical* flat order — the identical
  /// fold (and therefore identical doubles) as Device::roll_up on a
  /// single device that ran the same commands.
  dram::DeviceStats roll_up() const;

  /// Per-device roll-ups (reporting axis; combine with reduce_devices).
  std::vector<dram::DeviceStats> per_device_roll_up() const;

  /// Per-kind command stats folded in logical flat order (see
  /// Device::command_roll_up).
  dram::CommandStats command_roll_up() const;

  /// Injection counters folded over every device (integral adds).
  dram::InjectionCounters injection_roll_up() const;

  void clear_stats();
  void enable_faults(const dram::FaultConfig& config);
  void enable_tracing();
  void disable_tracing();

  /// Replayable capture of every traced command, merged across the pool in
  /// logical flat order — byte-identical to dram::captured_program() of a
  /// single-device run of the same commands. Requires tracing enabled
  /// (every pool device) before the commands ran.
  dram::Program captured_program() const;

 private:
  dram::Device& primary_;
  ShardPlan plan_;
  std::vector<std::unique_ptr<dram::Device>> extras_;  // devices 1..N-1
};

/// Per-device stats of a pool combined along the device axis. Devices run
/// concurrently and own disjoint sub-array shards, so this is the
/// reduce_parallel discipline: time is the maximum, everything else adds,
/// folded in device index order. For the bit-identity oracle use
/// DevicePool::roll_up (logical flat order) instead — the per-device
/// partial sums round differently in the last ulp.
dram::DeviceStats reduce_devices(const std::vector<dram::DeviceStats>& parts);

/// One Engine per pool device, presenting the single-engine submission
/// interface over logical flat indices. With devices > 1 every per-device
/// engine runs real workers (EngineOptions::force_worker) even at one
/// channel, so devices execute concurrently; with one device it reduces to
/// a plain Engine with the caller's options.
class PoolRunner {
 public:
  /// `per_device` is applied to every device's engine (channels is the
  /// per-device channel count).
  PoolRunner(DevicePool& pool, EngineOptions per_device);

  DevicePool& pool() { return pool_; }
  std::size_t devices() const { return engines_.size(); }
  Engine& engine(std::size_t d) { return *engines_.at(d); }
  const Engine& engine(std::size_t d) const { return *engines_.at(d); }

  std::size_t owner_of(std::size_t flat) const {
    return pool_.owner_of(flat);
  }

  /// Routes a task to the engine channel owning the logical flat index.
  void submit_to_subarray(std::size_t subarray_flat, Task task);

  /// Edge-block redistribution: splits an ISA program across owning
  /// devices through an Exchange keyed by the global instruction sequence,
  /// so each device executes its sub-stream in program order (per
  /// sub-array order is therefore the single-device order).
  void submit_program(dram::Program program);

  /// Barrier over every device's engine, drained in device index order.
  /// Rethrows the first failure (lowest device, then lowest channel —
  /// deterministic like Engine::drain) after all engines drained.
  void drain();

  /// Emergency barrier for exception unwind (see Engine::quiesce).
  void quiesce() noexcept;

  bool stalled() const;

  /// Device-indexed metrics reduction: each engine exports into a private
  /// registry tagged {device="<d>"} which is merged into `registry` in
  /// device index order (MetricsRegistry::merge_from discipline).
  void export_metrics(telemetry::MetricsRegistry& registry) const;

 private:
  DevicePool& pool_;
  std::vector<std::unique_ptr<Engine>> engines_;
};

}  // namespace pima::runtime
