// Multi-channel PIM execution engine.
//
// The functional DRAM model executes commands on host threads; this engine
// gives it the concurrency the hardware actually has. Each channel models
// one chip's command stream: a worker thread with a bounded FIFO of tasks
// (closures or ISA programs) that it retires in submission order against
// the sub-arrays it owns. Channels own disjoint sub-array sets (see
// Scheduler), so no lock is needed on the DRAM state itself — the queue is
// the only synchronization point.
//
// Determinism contract: for a fixed submission sequence, the commands
// applied to any single sub-array are identical for every channel count
// (including 1), because routing is a pure function of the target
// sub-array and each channel retires its queue FIFO. All CommandStats are
// therefore bit-identical between serial and parallel execution.
//
// channels == 1 is the single-threaded fallback: tasks run inline on the
// submitting thread, no worker is spawned, and behaviour reduces to the
// pre-runtime serial code path exactly.
//
// Supervision: with stall_timeout_ms > 0 a watchdog thread monitors a
// per-channel heartbeat (updated when a worker picks up and when it
// retires a task). A channel that holds a task longer than the timeout is
// declared stalled: the watchdog plants an EngineStalledError (carrying
// the channel, the stuck task's target sub-array and the last-retired
// task index) as the channel's failure, cancels the remaining queues
// cooperatively, and wakes drain() — which throws instead of blocking
// forever on the wedged worker. A stalled engine is poisoned: every later
// submit()/drain() refuses, and the destructor abandons (detaches) the
// wedged worker thread rather than deadlocking on join.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dram/device.hpp"
#include "dram/isa.hpp"
#include "runtime/scheduler.hpp"
#include "telemetry/metrics.hpp"

namespace pima::runtime {

/// A unit of channel work, executed on the owning channel's thread.
using Task = std::function<void()>;

struct EngineOptions {
  /// Worker channels. 1 = inline single-threaded fallback; 0 = one per
  /// hardware thread.
  std::size_t channels = 1;
  /// Per-channel queue capacity in tasks (backpressure bound).
  std::size_t queue_capacity = 64;
  /// Instructions per task when a submitted ISA program is chunked.
  std::size_t program_chunk = 512;
  /// Enables per-sub-array command capture on the device before any worker
  /// starts (Device::enable_tracing). Each sub-array's TraceSink is touched
  /// only by the channel owning it, so capture is race-free; the recorded
  /// streams replay through dram::captured_program() for the differential
  /// oracle.
  bool capture_trace = false;
  /// Per-task deadline enforced by the watchdog thread: a worker that
  /// holds one task longer than this without retiring it is declared
  /// stalled and drain() throws EngineStalledError instead of hanging.
  /// 0 disables supervision. Ignored in the inline (channels == 1)
  /// fallback, where tasks run synchronously on the caller.
  double stall_timeout_ms = 0.0;
  /// Spawns a real worker thread even for channels == 1 instead of the
  /// inline fallback. The device-pool runner (runtime/shard.hpp) sets this
  /// so N single-channel per-device engines execute concurrently — without
  /// it, a pool at --threads 1 would serialize every device on the
  /// controller thread. Model results are unaffected either way (the
  /// determinism contract above covers channels == 1 with a worker too).
  bool force_worker = false;
};

class Engine {
 public:
  explicit Engine(dram::Device& device, EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  dram::Device& device() { return device_; }
  const Scheduler& scheduler() const { return scheduler_; }
  std::size_t channels() const { return scheduler_.channels(); }
  std::size_t channel_of(std::size_t subarray_flat) const {
    return scheduler_.channel_of(subarray_flat);
  }

  /// Enqueues a task on a channel, blocking while its queue is full. The
  /// task must only touch sub-arrays owned by that channel.
  ///
  /// Fail-fast: once a task on the channel has failed, submit() throws
  /// SimulationError immediately instead of silently queueing behind a
  /// dead task stream, and tasks already queued behind the failure are
  /// dropped unexecuted. drain() collects the original failure and resets
  /// the channel.
  void submit(std::size_t channel, Task task);

  /// True while `channel` holds an uncollected task failure (submissions
  /// are rejected until drain() rethrows it).
  bool channel_failed(std::size_t channel) const;

  /// True once the watchdog has declared any channel stalled. The engine
  /// is poisoned from that point on: drain() throws the stall error once,
  /// then every submit()/drain() refuses with SimulationError.
  bool stalled() const { return stalled_.load(std::memory_order_acquire); }

  /// Routes a task to the channel owning `subarray_flat`.
  void submit_to_subarray(std::size_t subarray_flat, Task task);

  /// Splits an ISA program by owning channel and enqueues it in bounded
  /// chunks. Read/reduce results are discarded — data-dependent control
  /// flow belongs in closures on the owning channel.
  void submit_program(dram::Program program);

  /// Barrier: blocks until every submitted task has retired, or until the
  /// watchdog declares a stall. Rethrows the first exception raised by a
  /// task (lowest channel wins, so failure reporting is deterministic) and
  /// clears every channel's failure state, so one drain() fully resets the
  /// engine for the next submit cycle — except after a stall, which
  /// poisons the engine permanently.
  void drain();

  /// Emergency barrier for exception unwind: stops execution of queued
  /// tasks (they retire as skipped) and blocks until no task is running,
  /// without collecting or clearing failures. Call before destroying any
  /// object that in-flight tasks reference — e.g. a stage-local hash
  /// table — when an exception is about to unwind past it; otherwise a
  /// worker still executing a queued task races the destruction
  /// (use-after-free). Stalled channels are not waited on (their wedged
  /// worker is the watchdog's problem). noexcept, and the engine accepts
  /// new submits afterwards, so a success path running it is a no-op.
  void quiesce() noexcept;

  /// Per-channel roll-up over the channel's instantiated sub-arrays
  /// (time = max over the channel's sub-arrays, like Device::roll_up).
  /// Call only when drained.
  std::vector<dram::DeviceStats> channel_roll_up() const;

  /// Exports engine counters into `registry` in channel index order
  /// (host-class: task routing depends on the channel count). Call when
  /// drained; idempotent only in the sense that calling twice adds twice.
  void export_metrics(telemetry::MetricsRegistry& registry) const;

  /// Telemetry track ids (Chrome trace tid): 0 is the controller ("main"),
  /// 1..channels are the channel workers, channels+1 is the watchdog.
  static constexpr std::uint32_t kMainTrack = 0;
  std::uint32_t channel_track(std::size_t channel) const {
    return static_cast<std::uint32_t>(channel + 1);
  }
  std::uint32_t watchdog_track() const {
    return static_cast<std::uint32_t>(channels() + 1);
  }

 private:
  struct Channel;

  static void worker_loop(Channel& ch);
  void watchdog_loop();
  void submit_tagged(std::size_t channel, Task task, std::size_t subarray);

  dram::Device& device_;
  EngineOptions options_;
  Scheduler scheduler_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::atomic<std::uint64_t> inline_retired_{0};  // channels == 1 fallback

  // Watchdog state. stalled_ flips once and never resets (the wedged
  // worker still owns its sub-arrays, so the engine cannot be reused).
  std::atomic<bool> stalled_{false};
  std::thread watchdog_;
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_wake_;
  bool watchdog_stop_ = false;

  // Flight-recorder registration: per-channel queue/worker state for
  // crash_report.json. -1 = inline engine, nothing registered.
  int flight_snapshot_id_ = -1;
};

}  // namespace pima::runtime
