#include "runtime/recovery.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "runtime/shard.hpp"
#include "telemetry/progress.hpp"
#include "telemetry/telemetry.hpp"

namespace pima::runtime {

namespace {

// Live fault counters for the progress reporter: fault paths are rare and
// already expensive (re-stage + re-execute), so a registry lookup per event
// is fine. Integral atomic adds commute exactly, so the totals stay
// deterministic for any channel count.
void bump_live(const char* name, const char* help) {
#if PIMA_TELEMETRY
  if (telemetry::metrics_enabled())
    telemetry::metrics().counter(name, help).increment();
#else
  (void)name;
  (void)help;
#endif
}

}  // namespace

double recovery_backoff_ns(const RecoveryOptions& options,
                           std::size_t attempt) {
  // ldexp saturates to +inf for huge exponents instead of overflowing a
  // shift, so the clamp is exact at every attempt count.
  const double exponential =
      std::ldexp(options.backoff_base_ns,
                 attempt > 1024 ? 1024 : static_cast<int>(attempt));
  return std::min(options.backoff_cap_ns, exponential);
}

std::optional<RecoveryMode> parse_recovery_mode(std::string_view s) {
  if (s == "off") return RecoveryMode::kOff;
  if (s == "retry") return RecoveryMode::kRetry;
  if (s == "vote") return RecoveryMode::kVote;
  return std::nullopt;
}

FaultStats& FaultStats::operator+=(const FaultStats& o) {
  injected += o.injected;
  detected += o.detected;
  retried += o.retried;
  remapped += o.remapped;
  escaped += o.escaped;
  vote_corrections += o.vote_corrections;
  host_fallbacks += o.host_fallbacks;
  degraded_subarrays += o.degraded_subarrays;
  return *this;
}

FaultStats reduce_fault_stats(const std::vector<FaultStats>& parts) {
  FaultStats total;
  for (const auto& p : parts) total += p;
  return total;
}

RecoveryExecutor::RecoveryExecutor(dram::Subarray& subarray,
                                   const RecoveryOptions& options)
    : sa_(subarray), options_(options) {
  const std::size_t compute = sa_.geometry().compute_rows;
  // Slots 0..2 are the active operand staging rows; x4 (offset 3) is left
  // for the callers' result rows; everything above is a spare pool for
  // weak-row remapping.
  staging_ = {0, 1, 2};
  for (std::size_t off = 4; off < compute; ++off) spares_.push_back(off);
  row_failures_.assign(compute, 0);
}

void RecoveryExecutor::execute_once(
    const std::array<dram::RowAddr, 3>& operands, std::size_t n_operands,
    dram::RowAddr dst) {
  const auto x = [&](std::size_t slot) {
    return sa_.compute_row(staging_[slot]);
  };
  for (std::size_t i = 0; i < n_operands; ++i)
    sa_.aap_copy(operands[i], x(i));
  if (n_operands == 3)
    sa_.aap_tra_carry(x(0), x(1), x(2), dst);
  else
    sa_.aap_xnor(x(0), x(1), dst);
}

void RecoveryExecutor::note_detected() {
  ++stats_.detected;
  bump_live(telemetry::kFaultDetected, "verification mismatches detected");
  PIMA_TEL_INSTANT("fault:detected");
  if (!degraded_ && stats_.detected > options_.subarray_failure_budget) {
    degraded_ = true;
    ++stats_.degraded_subarrays;
    bump_live("pima_fault_degraded_subarrays_total",
              "sub-arrays degraded to host-side recompute");
    PIMA_TEL_INSTANT("fault:degraded");
  }
}

void RecoveryExecutor::blame_staging(std::size_t n_operands) {
  for (std::size_t slot = 0; slot < n_operands; ++slot) {
    const std::size_t offset = staging_[slot];
    if (++row_failures_[offset] < options_.weak_row_threshold) continue;
    if (spares_.empty()) continue;  // nothing left to remap onto
    staging_[slot] = spares_.back();
    spares_.pop_back();
    ++stats_.remapped;
    bump_live("pima_fault_remapped_rows_total",
              "computation rows retired to spares");
  }
}

void RecoveryExecutor::host_fallback(
    const BitVector& golden, dram::RowAddr dst,
    const std::array<dram::RowAddr, 3>& operands, std::size_t n_operands) {
  // The controller pulls the operands through the global row buffer,
  // recomputes, and writes the result back — no in-array compute trusted.
  for (std::size_t i = 0; i < n_operands; ++i) (void)sa_.read_row(operands[i]);
  sa_.write_row(dst, golden);
  ++stats_.host_fallbacks;
  bump_live(telemetry::kFaultHostFallbacks,
            "critical ops recomputed host-side");
}

void RecoveryExecutor::run_checked(
    const std::array<dram::RowAddr, 3>& operands, std::size_t n_operands,
    dram::RowAddr dst, const BitVector& golden) {
  for (std::size_t slot = 0; slot < n_operands; ++slot)
    PIMA_CHECK(dst != sa_.compute_row(staging_[slot]),
               "checked-op destination collides with a staging row");

  if (degraded_) {
    host_fallback(golden, dst, operands, n_operands);
    return;
  }

  if (options_.mode == RecoveryMode::kOff) {
    // Unverified execution: whatever the array sensed is the result.
    execute_once(operands, n_operands, dst);
    if (sa_.peek_row(dst) != golden) ++stats_.escaped;
    return;
  }

  if (options_.mode == RecoveryMode::kVote) {
    // TMR in time: three executions, per-column majority.
    std::array<BitVector, 3> results;
    for (auto& r : results) {
      execute_once(operands, n_operands, dst);
      r = sa_.dpu_fetch(dst);  // costed readback into the vote
    }
    const bool disagree =
        results[0] != results[1] || results[1] != results[2];
    if (disagree) {
      note_detected();
      blame_staging(n_operands);
    }
    const BitVector voted =
        BitVector::bit_maj3(results[0], results[1], results[2]);
    if (results[2] != voted) {
      sa_.write_row(dst, voted);  // fix the stored copy to the majority
      ++stats_.vote_corrections;
      bump_live("pima_fault_vote_corrections_total",
                "vote-mode results fixed by majority");
    }
    if (voted != golden) ++stats_.escaped;
    return;
  }

  // RecoveryMode::kRetry — verify-after-op with bounded re-execution.
  for (std::size_t attempt = 0;; ++attempt) {
    execute_once(operands, n_operands, dst);
    // Costed readback through the DPU path; the controller checks it
    // against its residual for the op.
    const BitVector& got = sa_.dpu_fetch(dst);
    if (got == golden) return;
    note_detected();
    blame_staging(n_operands);
    if (degraded_ || attempt >= options_.max_retries) {
      // Retry budget exhausted (or the sub-array just blew its failure
      // budget): recompute host-side rather than give up.
      host_fallback(golden, dst, operands, n_operands);
      return;
    }
    ++stats_.retried;
    bump_live(telemetry::kFaultRetried, "re-executions performed");
    // Exponential backoff (capped) on this sub-array's command stream.
    sa_.wait_ns(recovery_backoff_ns(options_, attempt));
  }
}

void RecoveryExecutor::compare_rows(dram::RowAddr a, dram::RowAddr b,
                                    dram::RowAddr result_row) {
  const BitVector golden =
      BitVector::bit_xnor(sa_.peek_row(a), sa_.peek_row(b));
  run_checked({a, b, 0}, 2, result_row, golden);
}

void RecoveryExecutor::tra_majority(dram::RowAddr a, dram::RowAddr b,
                                    dram::RowAddr c, dram::RowAddr dst) {
  const BitVector golden = BitVector::bit_maj3(
      sa_.peek_row(a), sa_.peek_row(b), sa_.peek_row(c));
  run_checked({a, b, c}, 3, dst, golden);
}

RecoveryManager::RecoveryManager(dram::Device& device,
                                 const RecoveryOptions& options)
    : device_(&device), options_(options) {
  executors_.resize(device.geometry().total_subarrays());
}

RecoveryManager::RecoveryManager(DevicePool& pool,
                                 const RecoveryOptions& options)
    : pool_(&pool), options_(options) {
  executors_.resize(pool.total_subarrays());
}

dram::Subarray& RecoveryManager::resolve_subarray(std::size_t flat) {
  return pool_ ? pool_->subarray(flat) : device_->subarray(flat);
}

const dram::Subarray* RecoveryManager::resolve_subarray_if(
    std::size_t flat) const {
  return pool_ ? pool_->subarray_if(flat) : device_->subarray_if(flat);
}

dram::InjectionCounters RecoveryManager::injection_total() const {
  return pool_ ? pool_->injection_roll_up() : device_->injection_roll_up();
}

RecoveryExecutor& RecoveryManager::executor_for(std::size_t subarray_flat) {
  PIMA_CHECK(subarray_flat < executors_.size(),
             "sub-array index out of device");
  if (!executors_[subarray_flat])
    executors_[subarray_flat] = std::make_unique<RecoveryExecutor>(
        resolve_subarray(subarray_flat), options_);
  return *executors_[subarray_flat];
}

const RecoveryExecutor* RecoveryManager::executor_if(
    std::size_t subarray_flat) const {
  PIMA_CHECK(subarray_flat < executors_.size(),
             "sub-array index out of device");
  return executors_[subarray_flat].get();
}

std::vector<FaultStats> RecoveryManager::per_channel_stats(
    const Scheduler& scheduler) const {
  std::vector<FaultStats> out(scheduler.channels());
  for (std::size_t flat = 0; flat < executors_.size(); ++flat) {
    FaultStats& s = out[scheduler.channel_of(flat)];
    if (executors_[flat]) s += executors_[flat]->stats();
    const dram::Subarray* sa = resolve_subarray_if(flat);
    if (sa != nullptr && sa->fault_injector() != nullptr)
      s.injected += sa->fault_injector()->counters().total_flips();
  }
  return out;
}

FaultStats RecoveryManager::roll_up() const {
  FaultStats total;
  for (const auto& ex : executors_)
    if (ex) total += ex->stats();
  total.injected = injection_total().total_flips();
  return total;
}

void RecoveryManager::export_metrics(
    telemetry::MetricsRegistry& registry) const {
  using telemetry::Labels;
  const auto add = [&](const char* name, const char* help,
                       const Labels& labels, std::size_t v) {
    if (v != 0) registry.counter(name, help, labels).add(static_cast<double>(v));
  };
  for (std::size_t flat = 0; flat < executors_.size(); ++flat) {
    const auto& ex = executors_[flat];
    if (!ex) continue;
    const FaultStats& s = ex->stats();
    const Labels labels = {{"subarray", std::to_string(flat)}};
    add("pima_recovery_detected_total",
        "verification mismatches per sub-array", labels, s.detected);
    add("pima_recovery_retries_total", "re-executions per sub-array", labels,
        s.retried);
    add("pima_recovery_vote_corrections_total",
        "vote-mode majority corrections per sub-array", labels,
        s.vote_corrections);
    add("pima_recovery_remapped_rows_total",
        "computation rows retired to spares per sub-array", labels,
        s.remapped);
    add("pima_recovery_host_fallbacks_total",
        "host-side recomputes per sub-array", labels, s.host_fallbacks);
    add("pima_recovery_escaped_total",
        "wrong results accepted per sub-array", labels, s.escaped);
    add("pima_recovery_degraded_total",
        "sub-array degraded to host-side recompute", labels,
        s.degraded_subarrays);
  }
  registry
      .counter("pima_fault_injected_total",
               "corrupted columns injected (ground truth)")
      .add(static_cast<double>(injection_total().total_flips()));
}

}  // namespace pima::runtime
