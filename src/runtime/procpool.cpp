#include "runtime/procpool.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

#include "common/fsio.hpp"

extern char** environ;

namespace pima::runtime {

namespace {

constexpr const char* kSite = "procpool";

// Pre-fork snapshot of the environment with PIMA_IOFAULT optionally
// replaced: only async-signal-safe work remains between fork and exec.
std::vector<std::string> child_environment(const std::string& iofault) {
  std::vector<std::string> env;
  for (char** e = environ; *e != nullptr; ++e) {
    if (!iofault.empty() &&
        std::strncmp(*e, "PIMA_IOFAULT=", 13) == 0)
      continue;
    env.emplace_back(*e);
  }
  if (!iofault.empty()) env.push_back("PIMA_IOFAULT=" + iofault);
  return env;
}

}  // namespace

const char* to_string(WorkerExitClass c) {
  switch (c) {
    case WorkerExitClass::kClean: return "clean exit";
    case WorkerExitClass::kStalled: return "engine stall";
    case WorkerExitClass::kCrashExit: return "crash exit";
    case WorkerExitClass::kSignal: return "killed by signal";
    case WorkerExitClass::kTorn: return "torn protocol";
    case WorkerExitClass::kWedged: return "wedged (liveness deadline)";
  }
  return "?";
}

[[noreturn]] void throw_worker_error(const net::Json& response) {
  const std::string type = response.get_string("error");
  const std::string message = response.get_string("message");
  if (type == "EngineStalledError")
    // Reconstructed from the wire fields; format() regenerates the exact
    // message the worker's engine produced.
    throw EngineStalledError(
        static_cast<std::size_t>(response.get_uint64("channel")),
        static_cast<std::size_t>(
            response.get_uint64("subarray", EngineStalledError::kNoSubarray)),
        response.get_uint64("last_retired"),
        response.get_number("timeout_ms"));
  if (type == "PreconditionError") throw PreconditionError(message);
  if (type == "CorruptCheckpointError") throw CorruptCheckpointError(message);
  if (type == "IoError") throw IoError(message);
  if (type == "InputFormatError") throw InputFormatError(message);
  if (type == "CancelledError") throw CancelledError(message);
  throw SimulationError(message.empty() ? "device worker error (" + type + ")"
                                        : message);
}

std::string resolve_devd_path(const std::string& requested) {
  std::vector<std::string> candidates;
  if (!requested.empty()) {
    candidates.push_back(requested);
  } else {
    if (const char* env = std::getenv("PIMA_DEVD_PATH");
        env != nullptr && *env != '\0')
      candidates.emplace_back(env);
    std::error_code ec;
    const auto self = std::filesystem::read_symlink("/proc/self/exe", ec);
    if (!ec) {
      const auto dir = self.parent_path();
      candidates.push_back((dir / "pima_devd").string());
      candidates.push_back((dir / ".." / "tools" / "pima_devd").string());
    }
  }
  for (const auto& c : candidates) {
    std::error_code ec;
    if (std::filesystem::exists(c, ec)) return c;
  }
  throw IoError(
      "cannot find the pima_devd device-worker binary (tried " +
      (candidates.empty() ? std::string("nothing")
                          : candidates.front() +
                                (candidates.size() > 1 ? " and friends" : "")) +
      "); build it alongside pima_asm or set PIMA_DEVD_PATH");
}

ProcSupervisor::ProcSupervisor(ProcPoolOptions options,
                               std::function<net::Json(std::size_t)> make_init)
    : options_(std::move(options)), make_init_(std::move(make_init)) {
  PIMA_CHECK(options_.devices >= 1, "process pool needs at least one device");
  PIMA_CHECK(make_init_ != nullptr, "process pool needs an init builder");
  workers_.resize(options_.devices);
}

ProcSupervisor::~ProcSupervisor() { shutdown(); }

std::string ProcSupervisor::shard_checkpoint_path(std::size_t d) const {
  return options_.checkpoint_dir + "/shard-" + std::to_string(d) + ".ckpt";
}

void ProcSupervisor::validate_shard_checkpoint(std::size_t d) const {
  if (options_.checkpoint_dir.empty()) return;
  const std::string path = shard_checkpoint_path(d);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return;
  const ShardCheckpoint sc = load_shard_checkpoint(path);
  CheckpointFingerprint expected = options_.fingerprint;
  expected.shard = static_cast<std::uint64_t>(d);
  const std::string field = sc.fingerprint.diff(expected);
  if (!field.empty())
    throw CorruptCheckpointError(
        "shard checkpoint " + path + " incompatible with this run: " + field +
        " differs — it was cut by a different run configuration (or for a "
        "different shard); remove the stale file or match the original "
        "configuration");
}

void ProcSupervisor::spawn(std::size_t d) {
  Worker& w = workers_[d];
  int sv[2] = {-1, -1};
  if (fsio::socketpair(AF_UNIX, SOCK_STREAM, 0, sv, kSite) != 0)
    throw IoError("socketpair failed for device worker " + std::to_string(d) +
                  ": " + std::strerror(errno));

  // Build argv/envp before forking: only dup2/close/execve afterwards.
  const std::string fd_str = "3";
  const std::string dev_str = std::to_string(d);
  std::vector<std::string> env = child_environment(options_.child_iofault);
  std::vector<char*> envp;
  envp.reserve(env.size() + 1);
  for (auto& e : env) envp.push_back(e.data());
  envp.push_back(nullptr);
  std::string exe = resolved_devd_;
  const char* argv[] = {exe.c_str(),     "--fd",     fd_str.c_str(),
                        "--device",      dev_str.c_str(), nullptr};

  const pid_t pid = ::fork();
  if (pid < 0) {
    const int err = errno;
    ::close(sv[0]);
    ::close(sv[1]);
    throw IoError("fork failed for device worker " + std::to_string(d) + ": " +
                  std::strerror(err));
  }
  if (pid == 0) {
    ::close(sv[0]);
    if (sv[1] != 3) {
      (void)::dup2(sv[1], 3);
      ::close(sv[1]);
    }
    ::execve(exe.c_str(), const_cast<char* const*>(argv), envp.data());
    std::_Exit(127);  // exec failed: classified as a crash exit by the parent
  }
  ::close(sv[1]);
  w.pid = pid;
  w.fd = net::ScopedFd(sv[0]);
  w.channel = std::make_unique<net::LineChannel>(w.fd.get());
  if (options_.liveness_timeout_s > 0)
    w.channel->set_deadline(options_.liveness_timeout_s);
  w.alive = true;
}

net::Json ProcSupervisor::transact(Worker& w, const std::string& line) {
  w.channel->write_line(line);
  std::string response;
  for (;;) {
    if (!w.channel->read_line(response))
      throw IoError("device worker closed the stream mid-request");
    net::Json j = net::Json::parse(response);
    if (j.has("hb")) continue;  // heartbeat: read_line already re-armed
    return j;
  }
}

void ProcSupervisor::respawn(std::size_t d) {
  validate_shard_checkpoint(d);
  spawn(d);
  Worker& w = workers_[d];
  // Re-init + journal replay. The responses were consumed before the
  // crash; any non-ok here is a deterministic child-side error and is
  // rethrown typed (it would have been thrown on the original send too).
  const net::Json init_resp = transact(w, make_init_(d).dump());
  if (!init_resp.get_bool("ok", false)) throw_worker_error(init_resp);
  for (const std::string& line : w.journal) {
    const net::Json resp = transact(w, line);
    if (!resp.get_bool("ok", false)) throw_worker_error(resp);
  }
}

WorkerExitClass ProcSupervisor::reap_worker(std::size_t d,
                                            bool wedged) noexcept {
  Worker& w = workers_[d];
  w.alive = false;
  w.channel.reset();
  w.fd = net::ScopedFd();
  if (w.pid <= 0) return WorkerExitClass::kTorn;
  // SIGKILL before the blocking reap: a zombie's exit status is
  // unaffected, and a live-but-garbling worker must not block waitpid.
  (void)fsio::kill(w.pid, SIGKILL, kSite);
  int status = 0;
  pid_t got;
  do {
    got = fsio::waitpid(w.pid, &status, 0, kSite);
  } while (got < 0 && errno == EINTR);
  w.pid = -1;
  if (wedged) return WorkerExitClass::kWedged;
  if (got < 0) return WorkerExitClass::kTorn;
  if (WIFEXITED(status)) {
    const int code = WEXITSTATUS(status);
    if (code == kExitEngineStalled) return WorkerExitClass::kStalled;
    // Exit 0 while the parent saw a broken stream = the worker tore the
    // protocol (it never completed the shutdown handshake).
    if (code == 0) return WorkerExitClass::kTorn;
    return WorkerExitClass::kCrashExit;
  }
  if (WIFSIGNALED(status)) return WorkerExitClass::kSignal;
  return WorkerExitClass::kTorn;
}

void ProcSupervisor::on_worker_failure(std::size_t d, bool wedged,
                                       const std::string& what) {
  Worker& w = workers_[d];
  const WorkerExitClass cls = reap_worker(d, wedged);
  std::fprintf(stderr, "pima: device worker %zu failed — %s (%s)\n", d,
               to_string(cls), what.c_str());
  if (restarts_used_ >= options_.restart_budget)
    throw ProcPoolDegradedError(d, cls, what);
  ++restarts_used_;
  ++w.consecutive_restarts;
  const double backoff_ms =
      std::min(options_.restart_backoff_ms *
                   static_cast<double>(std::uint64_t{1}
                                       << std::min<std::size_t>(
                                              w.consecutive_restarts - 1, 10)),
               2000.0);
  std::fprintf(stderr,
               "pima: restarting device worker %zu from its stage-%u shard "
               "checkpoint in %.0f ms (%zu/%zu restarts used)\n",
               d, stages_done_, backoff_ms, restarts_used_,
               options_.restart_budget);
  if (backoff_ms > 0)
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
}

void ProcSupervisor::start() {
  PIMA_CHECK(!started_, "process pool already started");
  resolved_devd_ = resolve_devd_path(options_.devd_path);
  started_ = true;
  for (std::size_t d = 0; d < options_.devices; ++d) {
    for (;;) {
      try {
        respawn(d);
        break;
      } catch (const DeadlineExceededError& e) {
        on_worker_failure(d, true, e.what());
      } catch (const CorruptCheckpointError&) {
        throw;
      } catch (const IoError& e) {
        on_worker_failure(d, false, e.what());
      } catch (const InputFormatError& e) {
        on_worker_failure(d, false, e.what());
      }
    }
  }
}

net::Json ProcSupervisor::do_rpc(std::size_t device, const net::Json& request,
                                 bool journaled) {
  PIMA_CHECK(started_, "process pool not started");
  PIMA_CHECK(device < workers_.size(), "device index out of range");
  const std::string line = request.dump();
  for (;;) {
    Worker& w = workers_[device];
    bool sent = false;
    net::Json response;
    try {
      if (!w.alive) respawn(device);
      response = transact(w, line);
      sent = true;
    } catch (const DeadlineExceededError& e) {
      on_worker_failure(device, true, e.what());
    } catch (const CorruptCheckpointError&) {
      throw;  // stale/foreign shard checkpoint: not survivable by restart
    } catch (const IoError& e) {
      on_worker_failure(device, false, e.what());
    } catch (const InputFormatError& e) {
      // Garbage on the wire (undecodable response line) = torn protocol.
      on_worker_failure(device, false, e.what());
    }
    if (!sent) continue;  // restarted; replay done — retry the request
    if (!response.get_bool("ok", false)) {
      // Deterministic child-side failure: no restart. A stalled engine
      // poisons the worker (it exits right after responding); mark it
      // dead so shutdown() does not handshake with it.
      if (response.get_string("error") == "EngineStalledError")
        (void)reap_worker(device, false);
      throw_worker_error(response);
    }
    w.consecutive_restarts = 0;
    if (journaled) w.journal.push_back(line);
    return response;
  }
}

net::Json ProcSupervisor::rpc(std::size_t device, const net::Json& request) {
  return do_rpc(device, request, true);
}

net::Json ProcSupervisor::query(std::size_t device, const net::Json& request) {
  return do_rpc(device, request, false);
}

void ProcSupervisor::mark_stage_done(std::uint32_t stage) {
  stages_done_ = stage;
  for (std::size_t d = 0; d < workers_.size(); ++d) {
    if (options_.journal_truncation) workers_[d].journal.clear();
    if (!options_.checkpoint_dir.empty()) {
      ShardCheckpoint sc;
      sc.fingerprint = options_.fingerprint;
      sc.fingerprint.shard = static_cast<std::uint64_t>(d);
      sc.stages_done = stage;
      save_shard_checkpoint(shard_checkpoint_path(d), sc);
    }
  }
}

void ProcSupervisor::shutdown() noexcept {
  if (!started_) return;
  static const std::string shutdown_line = [] {
    net::Json j = net::Json::object();
    j.set("op", "shutdown");
    return j.dump();
  }();
  for (std::size_t d = 0; d < workers_.size(); ++d) {
    Worker& w = workers_[d];
    if (w.alive && w.channel) {
      try {
        (void)transact(w, shutdown_line);
      } catch (...) {
        // The reap below classifies whatever happened.
      }
    }
    (void)reap_worker(d, false);
  }
  started_ = false;
}

}  // namespace pima::runtime
