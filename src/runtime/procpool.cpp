#include "runtime/procpool.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

#include "common/fsio.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/log.hpp"
#include "telemetry/session.hpp"

extern char** environ;

namespace pima::runtime {

namespace {

constexpr const char* kSite = "procpool";

// Span names must be string literals (the trace ring stores pointers).
const char* rpc_span_name(const std::string& op) {
  if (op == "kmers") return "rpc:kmers";
  if (op == "drain") return "rpc:drain";
  if (op == "extract") return "rpc:extract";
  if (op == "distinct") return "rpc:distinct";
  if (op == "program") return "rpc:program";
  if (op == "degree_block") return "rpc:degree_block";
  if (op == "stats") return "rpc:stats";
  if (op == "clear_stats") return "rpc:clear_stats";
  if (op == "trace") return "rpc:trace";
  if (op == "telemetry") return "rpc:telemetry";
  if (op == "ping") return "rpc:ping";
  return "rpc";
}

// Relays one child's raw stderr to the parent's, line-buffered and
// prefixed with the device id, so worker diagnostics stop interleaving
// illegibly with the controller's progress reporter.
void relay_stderr(int fd, std::size_t device) {
  std::string pending;
  char buf[1024];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    pending.append(buf, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = pending.find('\n', start);
      if (nl == std::string::npos) break;
      std::fprintf(stderr, "[devd %zu] %.*s\n", device,
                   static_cast<int>(nl - start), pending.data() + start);
      start = nl + 1;
    }
    pending.erase(0, start);
  }
  if (!pending.empty())
    std::fprintf(stderr, "[devd %zu] %s\n", device, pending.c_str());
  ::close(fd);
}

// Pre-fork snapshot of the environment with PIMA_IOFAULT optionally
// replaced: only async-signal-safe work remains between fork and exec.
std::vector<std::string> child_environment(const std::string& iofault) {
  std::vector<std::string> env;
  for (char** e = environ; *e != nullptr; ++e) {
    if (!iofault.empty() &&
        std::strncmp(*e, "PIMA_IOFAULT=", 13) == 0)
      continue;
    env.emplace_back(*e);
  }
  if (!iofault.empty()) env.push_back("PIMA_IOFAULT=" + iofault);
  return env;
}

}  // namespace

const char* to_string(WorkerExitClass c) {
  switch (c) {
    case WorkerExitClass::kClean: return "clean exit";
    case WorkerExitClass::kStalled: return "engine stall";
    case WorkerExitClass::kCrashExit: return "crash exit";
    case WorkerExitClass::kSignal: return "killed by signal";
    case WorkerExitClass::kTorn: return "torn protocol";
    case WorkerExitClass::kWedged: return "wedged (liveness deadline)";
  }
  return "?";
}

[[noreturn]] void throw_worker_error(const net::Json& response) {
  const std::string type = response.get_string("error");
  const std::string message = response.get_string("message");
  if (type == "EngineStalledError")
    // Reconstructed from the wire fields; format() regenerates the exact
    // message the worker's engine produced.
    throw EngineStalledError(
        static_cast<std::size_t>(response.get_uint64("channel")),
        static_cast<std::size_t>(
            response.get_uint64("subarray", EngineStalledError::kNoSubarray)),
        response.get_uint64("last_retired"),
        response.get_number("timeout_ms"));
  if (type == "PreconditionError") throw PreconditionError(message);
  if (type == "CorruptCheckpointError") throw CorruptCheckpointError(message);
  if (type == "IoError") throw IoError(message);
  if (type == "InputFormatError") throw InputFormatError(message);
  if (type == "CancelledError") throw CancelledError(message);
  throw SimulationError(message.empty() ? "device worker error (" + type + ")"
                                        : message);
}

std::string resolve_devd_path(const std::string& requested) {
  std::vector<std::string> candidates;
  if (!requested.empty()) {
    candidates.push_back(requested);
  } else {
    if (const char* env = std::getenv("PIMA_DEVD_PATH");
        env != nullptr && *env != '\0')
      candidates.emplace_back(env);
    std::error_code ec;
    const auto self = std::filesystem::read_symlink("/proc/self/exe", ec);
    if (!ec) {
      const auto dir = self.parent_path();
      candidates.push_back((dir / "pima_devd").string());
      candidates.push_back((dir / ".." / "tools" / "pima_devd").string());
    }
  }
  for (const auto& c : candidates) {
    std::error_code ec;
    if (std::filesystem::exists(c, ec)) return c;
  }
  throw IoError(
      "cannot find the pima_devd device-worker binary (tried " +
      (candidates.empty() ? std::string("nothing")
                          : candidates.front() +
                                (candidates.size() > 1 ? " and friends" : "")) +
      "); build it alongside pima_asm or set PIMA_DEVD_PATH");
}

ProcSupervisor::ProcSupervisor(ProcPoolOptions options,
                               std::function<net::Json(std::size_t)> make_init)
    : options_(std::move(options)), make_init_(std::move(make_init)) {
  PIMA_CHECK(options_.devices >= 1, "process pool needs at least one device");
  PIMA_CHECK(make_init_ != nullptr, "process pool needs an init builder");
  workers_.resize(options_.devices);
}

ProcSupervisor::~ProcSupervisor() { shutdown(); }

std::string ProcSupervisor::shard_checkpoint_path(std::size_t d) const {
  return options_.checkpoint_dir + "/shard-" + std::to_string(d) + ".ckpt";
}

void ProcSupervisor::validate_shard_checkpoint(std::size_t d) const {
  if (options_.checkpoint_dir.empty()) return;
  const std::string path = shard_checkpoint_path(d);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return;
  const ShardCheckpoint sc = load_shard_checkpoint(path);
  CheckpointFingerprint expected = options_.fingerprint;
  expected.shard = static_cast<std::uint64_t>(d);
  const std::string field = sc.fingerprint.diff(expected);
  if (!field.empty())
    throw CorruptCheckpointError(
        "shard checkpoint " + path + " incompatible with this run: " + field +
        " differs — it was cut by a different run configuration (or for a "
        "different shard); remove the stale file or match the original "
        "configuration");
}

void ProcSupervisor::spawn(std::size_t d) {
  Worker& w = workers_[d];
  int sv[2] = {-1, -1};
  if (fsio::socketpair(AF_UNIX, SOCK_STREAM, 0, sv, kSite) != 0)
    throw IoError("socketpair failed for device worker " + std::to_string(d) +
                  ": " + std::strerror(errno));
  // Dedicated stderr pipe: the child's raw diagnostics are relayed by a
  // parent thread with a `[devd <d>]` prefix instead of interleaving with
  // the controller's own stderr mid-line.
  int ep[2] = {-1, -1};
  if (::pipe(ep) != 0) {
    const int err = errno;
    ::close(sv[0]);
    ::close(sv[1]);
    throw IoError("stderr pipe failed for device worker " + std::to_string(d) +
                  ": " + std::strerror(err));
  }

  // Build argv/envp before forking: only dup2/close/execve afterwards.
  const std::string fd_str = "3";
  const std::string dev_str = std::to_string(d);
  std::vector<std::string> env = child_environment(options_.child_iofault);
  std::vector<char*> envp;
  envp.reserve(env.size() + 1);
  for (auto& e : env) envp.push_back(e.data());
  envp.push_back(nullptr);
  std::string exe = resolved_devd_;
  const char* argv[] = {exe.c_str(),     "--fd",     fd_str.c_str(),
                        "--device",      dev_str.c_str(), nullptr};

  const pid_t pid = ::fork();
  if (pid < 0) {
    const int err = errno;
    ::close(sv[0]);
    ::close(sv[1]);
    ::close(ep[0]);
    ::close(ep[1]);
    throw IoError("fork failed for device worker " + std::to_string(d) + ": " +
                  std::strerror(err));
  }
  if (pid == 0) {
    ::close(sv[0]);
    ::close(ep[0]);
    if (sv[1] != 3) {
      (void)::dup2(sv[1], 3);
      ::close(sv[1]);
    }
    (void)::dup2(ep[1], 2);
    ::close(ep[1]);
    ::execve(exe.c_str(), const_cast<char* const*>(argv), envp.data());
    std::_Exit(127);  // exec failed: classified as a crash exit by the parent
  }
  ::close(sv[1]);
  ::close(ep[1]);
  w.pid = pid;
  w.fd = net::ScopedFd(sv[0]);
  w.channel = std::make_unique<net::LineChannel>(w.fd.get());
  if (options_.liveness_timeout_s > 0)
    w.channel->set_deadline(options_.liveness_timeout_s);
  if (w.stderr_relay.joinable()) w.stderr_relay.join();
  w.stderr_relay = std::thread(relay_stderr, ep[0], d);
  w.alive = true;
  ++w.spawn_count;
}

net::Json ProcSupervisor::transact(Worker& w, const std::string& line) {
  w.channel->write_line(line);
  std::string response;
  for (;;) {
    if (!w.channel->read_line(response))
      throw IoError("device worker closed the stream mid-request");
    net::Json j = net::Json::parse(response);
    if (j.has("hb")) continue;  // heartbeat: read_line already re-armed
    return j;
  }
}

void ProcSupervisor::respawn(std::size_t d) {
  validate_shard_checkpoint(d);
  spawn(d);
  Worker& w = workers_[d];
  // Re-init + journal replay. The responses were consumed before the
  // crash; any non-ok here is a deterministic child-side error and is
  // rethrown typed (it would have been thrown on the original send too).
  telemetry::Tracer& tr = telemetry::tracer();
  const std::int64_t t0 = tr.enabled() ? tr.now_ns() : 0;
  const net::Json init_resp = transact(w, make_init_(d).dump());
  if (!init_resp.get_bool("ok", false)) throw_worker_error(init_resp);
  if (tr.enabled() && init_resp.has("now_ns")) {
    // Clock sync: the worker sampled its (fresh) tracer epoch somewhere
    // inside [t0, t1] on the controller clock; the midpoint bounds the
    // offset error by half the init round-trip.
    const std::int64_t t1 = tr.now_ns();
    const auto worker_now =
        static_cast<std::int64_t>(init_resp.get_number("now_ns"));
    w.clock_offset_ns = (t0 + t1) / 2 - worker_now;
  }
  for (const std::string& line : w.journal) {
    const net::Json resp = transact(w, line);
    if (!resp.get_bool("ok", false)) throw_worker_error(resp);
  }
}

WorkerExitClass ProcSupervisor::reap_worker(std::size_t d,
                                            bool wedged) noexcept {
  Worker& w = workers_[d];
  w.alive = false;
  w.channel.reset();
  w.fd = net::ScopedFd();
  if (w.pid <= 0) return WorkerExitClass::kTorn;
  // SIGKILL before the blocking reap: a zombie's exit status is
  // unaffected, and a live-but-garbling worker must not block waitpid.
  (void)fsio::kill(w.pid, SIGKILL, kSite);
  int status = 0;
  pid_t got;
  do {
    got = fsio::waitpid(w.pid, &status, 0, kSite);
  } while (got < 0 && errno == EINTR);
  w.pid = -1;
  // The dead child's stderr pipe is at EOF now; let the relay flush its
  // last lines before the failure is logged.
  try {
    if (w.stderr_relay.joinable()) w.stderr_relay.join();
  } catch (...) {
  }
  if (wedged) return WorkerExitClass::kWedged;
  if (got < 0) return WorkerExitClass::kTorn;
  if (WIFEXITED(status)) {
    const int code = WEXITSTATUS(status);
    if (code == kExitEngineStalled) return WorkerExitClass::kStalled;
    // Exit 0 while the parent saw a broken stream = the worker tore the
    // protocol (it never completed the shutdown handshake).
    if (code == 0) return WorkerExitClass::kTorn;
    return WorkerExitClass::kCrashExit;
  }
  if (WIFSIGNALED(status)) return WorkerExitClass::kSignal;
  return WorkerExitClass::kTorn;
}

void ProcSupervisor::on_worker_failure(std::size_t d, bool wedged,
                                       const std::string& what) {
  Worker& w = workers_[d];
  const WorkerExitClass cls = reap_worker(d, wedged);
  telemetry::log_event(telemetry::LogLevel::kWarn, "worker.failed",
                       "device worker " + std::to_string(d) + " failed — " +
                           to_string(cls) + " (" + what + ")",
                       {telemetry::LogField::uint("device", d),
                        telemetry::LogField::str("class", to_string(cls))});
  // Post-mortem artifact for every non-clean demise the classifier can
  // detect: the flight ring plus the registered state snapshots.
  telemetry::FlightRecorder::instance().dump(
      "worker_failure", "device " + std::to_string(d) + ": " +
                            to_string(cls) + " (" + what + ")");
  if (restarts_used_ >= options_.restart_budget) {
    telemetry::log_event(
        telemetry::LogLevel::kError, "pool.degraded",
        "device worker " + std::to_string(d) +
            " failed with the restart budget exhausted — degrading",
        {telemetry::LogField::uint("device", d),
         telemetry::LogField::uint("restarts", restarts_used_)});
    telemetry::FlightRecorder::instance().dump(
        "pool_degraded", "device " + std::to_string(d) + ": " + what);
    throw ProcPoolDegradedError(d, cls, what);
  }
  ++restarts_used_;
  ++w.consecutive_restarts;
  const double backoff_ms =
      std::min(options_.restart_backoff_ms *
                   static_cast<double>(std::uint64_t{1}
                                       << std::min<std::size_t>(
                                              w.consecutive_restarts - 1, 10)),
               2000.0);
  {
    char msg[160];
    std::snprintf(msg, sizeof msg,
                  "restarting device worker %zu from its stage-%u shard "
                  "checkpoint in %.0f ms (%zu/%zu restarts used)",
                  d, stages_done_, backoff_ms, restarts_used_,
                  options_.restart_budget);
    telemetry::log_event(telemetry::LogLevel::kInfo, "worker.restart", msg,
                         {telemetry::LogField::uint("device", d),
                          telemetry::LogField::num("backoff_ms", backoff_ms)});
  }
  if (backoff_ms > 0)
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
}

void ProcSupervisor::start() {
  PIMA_CHECK(!started_, "process pool already started");
  resolved_devd_ = resolve_devd_path(options_.devd_path);
  started_ = true;
  // Worker-state snapshot for crash reports. Dumps run on the controller
  // thread (the only thread that mutates workers_), so the reads are safe.
  snapshot_id_ = telemetry::FlightRecorder::instance().add_snapshot_provider(
      "procpool", [this] {
        std::string out = "{\"restarts_used\": " +
                          std::to_string(restarts_used_) +
                          ", \"restart_budget\": " +
                          std::to_string(options_.restart_budget) +
                          ", \"stages_done\": " + std::to_string(stages_done_) +
                          ", \"workers\": [";
        for (std::size_t d = 0; d < workers_.size(); ++d) {
          const Worker& w = workers_[d];
          out += d == 0 ? "" : ", ";
          out += "{\"device\": " + std::to_string(d) +
                 ", \"pid\": " + std::to_string(w.pid) +
                 ", \"alive\": " + (w.alive ? "true" : "false") +
                 ", \"incarnation\": " +
                 std::to_string(w.spawn_count == 0 ? 0 : w.spawn_count - 1) +
                 ", \"journal_len\": " + std::to_string(w.journal.size()) +
                 "}";
        }
        out += "]}";
        return out;
      });
  for (std::size_t d = 0; d < options_.devices; ++d) {
    for (;;) {
      try {
        respawn(d);
        break;
      } catch (const DeadlineExceededError& e) {
        on_worker_failure(d, true, e.what());
      } catch (const CorruptCheckpointError&) {
        throw;
      } catch (const IoError& e) {
        on_worker_failure(d, false, e.what());
      } catch (const InputFormatError& e) {
        on_worker_failure(d, false, e.what());
      }
    }
  }
}

net::Json ProcSupervisor::do_rpc(std::size_t device, const net::Json& request,
                                 bool journaled) {
  PIMA_CHECK(started_, "process pool not started");
  PIMA_CHECK(device < workers_.size(), "device index out of range");
  // Traced runs stamp each request with a flow id: the controller's
  // rpc:<op> span opens the flow, the worker's devd:<op> span finishes
  // it, and Perfetto draws the cross-process arrow. Journaled lines keep
  // their stamp — a replayed flow end is a harmless duplicate.
  telemetry::Tracer& tr = telemetry::tracer();
  const bool traced = tr.enabled();
  std::uint64_t flow = 0;
  std::string line;
  if (traced) {
    net::Json stamped = request;
    flow = ++flow_seq_;
    stamped.set("tel", flow);
    line = stamped.dump();
  } else {
    line = request.dump();
  }
  for (;;) {
    Worker& w = workers_[device];
    bool sent = false;
    net::Json response;
    std::int64_t t_start = 0;
    try {
      if (!w.alive) respawn(device);
      t_start = traced ? tr.now_ns() : 0;
      response = transact(w, line);
      sent = true;
    } catch (const DeadlineExceededError& e) {
      on_worker_failure(device, true, e.what());
    } catch (const CorruptCheckpointError&) {
      throw;  // stale/foreign shard checkpoint: not survivable by restart
    } catch (const IoError& e) {
      on_worker_failure(device, false, e.what());
    } catch (const InputFormatError& e) {
      // Garbage on the wire (undecodable response line) = torn protocol.
      on_worker_failure(device, false, e.what());
    }
    if (!sent) continue;  // restarted; replay done — retry the request
    if (traced) {
      tr.record_complete(rpc_span_name(request.get_string("op")), t_start,
                         tr.now_ns() - t_start);
      tr.record_flow("rpc", 's', flow, t_start);
    }
    if (!response.get_bool("ok", false)) {
      // Deterministic child-side failure: no restart. A stalled engine
      // poisons the worker (it exits right after responding); mark it
      // dead so shutdown() does not handshake with it.
      if (response.get_string("error") == "EngineStalledError")
        (void)reap_worker(device, false);
      throw_worker_error(response);
    }
    w.consecutive_restarts = 0;
    if (journaled) w.journal.push_back(line);
    return response;
  }
}

net::Json ProcSupervisor::rpc(std::size_t device, const net::Json& request) {
  return do_rpc(device, request, true);
}

net::Json ProcSupervisor::query(std::size_t device, const net::Json& request) {
  return do_rpc(device, request, false);
}

void ProcSupervisor::collect_telemetry() {
  telemetry::Tracer& tr = telemetry::tracer();
  if (!tr.enabled()) return;
  static const net::Json telemetry_req = [] {
    net::Json j = net::Json::object();
    j.set("op", "telemetry");
    return j;
  }();
  for (std::size_t d = 0; d < workers_.size(); ++d) {
    // A dead worker's unflushed spans died with it — skip rather than
    // respawn a process just to ask it for telemetry it no longer has.
    if (!workers_[d].alive) continue;
    // query() runs the full failure machinery, so a worker that fails
    // mid-harvest is restarted (losing its unflushed spans) rather than
    // aborting the harvest. The incarnation snapshot below is taken AFTER
    // the query: pid/offset must describe the process that answered.
    const net::Json resp = query(d, telemetry_req);
    Worker& w = workers_[d];
    telemetry::ProcessTrace pt;
    pt.pid = static_cast<std::int64_t>(w.pid);
    pt.name = "pima_devd d=" + std::to_string(d);
    const std::size_t incarnation = w.spawn_count == 0 ? 0 : w.spawn_count - 1;
    if (incarnation > 0)
      pt.name += " (restart " + std::to_string(incarnation) + ")";
    pt.sort_index = static_cast<int>(d) + 1;
    if (resp.has("tracks") && resp.get("tracks").is_array())
      for (const auto& entry : resp.get("tracks").items())
        pt.track_names[static_cast<std::uint32_t>(
            entry.get_uint64("track"))] = entry.get_string("name");
    if (resp.has("events") && resp.get("events").is_array()) {
      for (const auto& row : resp.get("events").items()) {
        if (!row.is_array() || row.items().size() < 8) continue;
        const auto& f = row.items();
        telemetry::ExportedTraceEvent e;
        e.name = f[0].as_string();
        const std::string phase = f[1].as_string();
        e.phase = phase.empty() ? 'X' : phase[0];
        e.track = static_cast<std::uint32_t>(f[2].as_uint64());
        e.ts_ns = static_cast<std::int64_t>(f[3].as_number()) +
                  w.clock_offset_ns;
        e.dur_ns = static_cast<std::int64_t>(f[4].as_number());
        e.value = f[5].as_number();
        e.arg_name = f[6].as_string();
        e.flow_id = f[7].as_uint64();
        pt.events.push_back(std::move(e));
      }
    }
    tr.put_process(std::move(pt));
  }
}

void ProcSupervisor::mark_stage_done(std::uint32_t stage) {
  collect_telemetry();
  stages_done_ = stage;
  for (std::size_t d = 0; d < workers_.size(); ++d) {
    if (options_.journal_truncation) workers_[d].journal.clear();
    if (!options_.checkpoint_dir.empty()) {
      ShardCheckpoint sc;
      sc.fingerprint = options_.fingerprint;
      sc.fingerprint.shard = static_cast<std::uint64_t>(d);
      sc.stages_done = stage;
      save_shard_checkpoint(shard_checkpoint_path(d), sc);
    }
  }
}

void ProcSupervisor::shutdown() noexcept {
  if (!started_) return;
  // Final span harvest before the handshake tears the workers down. Any
  // failure here (a dead worker, an exhausted budget) must not turn a
  // graceful shutdown into a throw.
  try {
    collect_telemetry();
  } catch (...) {
  }
  static const std::string shutdown_line = [] {
    net::Json j = net::Json::object();
    j.set("op", "shutdown");
    return j.dump();
  }();
  for (std::size_t d = 0; d < workers_.size(); ++d) {
    Worker& w = workers_[d];
    if (w.alive && w.channel) {
      try {
        (void)transact(w, shutdown_line);
      } catch (...) {
        // The reap below classifies whatever happened.
      }
    }
    (void)reap_worker(d, false);
  }
  if (snapshot_id_ >= 0) {
    telemetry::FlightRecorder::instance().remove_snapshot_provider(
        snapshot_id_);
    snapshot_id_ = -1;
  }
  started_ = false;
}

}  // namespace pima::runtime
