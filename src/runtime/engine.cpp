#include "runtime/engine.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "runtime/bounded_queue.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/log.hpp"
#include "telemetry/session.hpp"
#include "telemetry/telemetry.hpp"

namespace pima::runtime {

namespace {

using Clock = std::chrono::steady_clock;

std::size_t resolve_channels(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

struct Engine::Channel {
  explicit Channel(std::size_t capacity) : queue(capacity) {}

  struct Entry {
    Task task;
    std::size_t subarray = EngineStalledError::kNoSubarray;
    std::int64_t submit_ns = 0;  ///< host stamp for submit→retire latency
  };

  BoundedQueue<Entry> queue;
  std::thread worker;

  // Outstanding-task accounting for drain(): incremented before push,
  // decremented after the task retires. The heartbeat fields (busy,
  // last_activity, retired) feed the watchdog; `cancelled` makes a healthy
  // worker drop queued tasks after another channel stalled; `stalled`
  // marks this channel's worker as wedged (its pending count can never
  // reach zero again, so drain() stops waiting on it).
  std::mutex mutex;
  std::condition_variable idle;
  std::size_t pending = 0;
  std::exception_ptr failure;
  bool busy = false;
  std::size_t current_subarray = EngineStalledError::kNoSubarray;
  Clock::time_point last_activity = Clock::now();
  std::uint64_t retired = 0;
  bool cancelled = false;
  bool stalled = false;

  // Telemetry: the worker's trace track and (when metrics are enabled at
  // engine construction) a stable handle to its submit→retire latency
  // histogram. Null handle = one pointer check per task and nothing else.
  std::uint32_t track = 0;
  telemetry::Histogram* latency_hist = nullptr;
};

Engine::Engine(dram::Device& device, EngineOptions options)
    : device_(device),
      options_(options),
      scheduler_(device.geometry().total_subarrays(),
                 resolve_channels(options.channels)) {
  PIMA_CHECK(options_.program_chunk > 0, "program chunk must be positive");
  PIMA_CHECK(options_.stall_timeout_ms >= 0.0,
             "stall timeout must be non-negative");
  if (options_.capture_trace) device_.enable_tracing();
  // Inline fallback: no workers, no queues. force_worker opts out so a
  // device pool's single-channel per-device engines still run concurrently.
  if (channels() == 1 && !options_.force_worker) return;
  channels_.reserve(channels());
  for (std::size_t c = 0; c < channels(); ++c) {
    channels_.push_back(std::make_unique<Channel>(options_.queue_capacity));
    channels_.back()->track = channel_track(c);
    PIMA_TEL_NAME_TRACK(channel_track(c),
                        "channel " + std::to_string(c));
#if PIMA_TELEMETRY
    if (telemetry::metrics_enabled())
      channels_.back()->latency_hist = &telemetry::metrics().histogram(
          "pima_engine_task_latency_ns",
          "submit to retire latency per channel (host ns)",
          {1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9},
          {{"channel", std::to_string(c)}}, telemetry::MetricClass::kHost);
#endif
  }
  PIMA_TEL_NAME_TRACK(watchdog_track(), "watchdog");
  // Workers and the watchdog inherit the constructing thread's metrics
  // routing: a pipeline run started under a ScopedMetricsRegistry (a
  // service job's private registry) records its worker-side metrics —
  // recovery events, stall counters — into the same registry.
  telemetry::MetricsRegistry* const scoped_registry =
      telemetry::ScopedMetricsRegistry::current();
  for (auto& ch : channels_)
    ch->worker = std::thread([&ch = *ch, scoped_registry] {
      telemetry::ScopedMetricsRegistry scope(scoped_registry);
      worker_loop(ch);
    });
  if (options_.stall_timeout_ms > 0.0)
    watchdog_ = std::thread([this, scoped_registry] {
      telemetry::ScopedMetricsRegistry scope(scoped_registry);
      watchdog_loop();
    });
  // Flight-recorder state: per-channel queue/worker snapshots land in the
  // `state` section of crash_report.json. Names are sequenced because a
  // device pool owns one engine per device. Workers hold a channel mutex
  // only around bookkeeping (never across a kernel), so a wedged worker
  // cannot deadlock a dump.
  static std::atomic<int> engine_seq{0};
  flight_snapshot_id_ =
      telemetry::FlightRecorder::instance().add_snapshot_provider(
          "engine." + std::to_string(engine_seq.fetch_add(1)), [this] {
            std::string out = "{\"stalled\": ";
            out += stalled_.load(std::memory_order_acquire) ? "true" : "false";
            out += ", \"channels\": [";
            for (std::size_t c = 0; c < channels_.size(); ++c) {
              Channel& ch = *channels_[c];
              std::lock_guard lock(ch.mutex);
              if (c != 0) out += ", ";
              out += "{\"channel\": " + std::to_string(c) +
                     ", \"pending\": " + std::to_string(ch.pending) +
                     ", \"retired\": " + std::to_string(ch.retired) +
                     ", \"busy\": " + (ch.busy ? std::string("true")
                                              : std::string("false")) +
                     ", \"stalled\": " + (ch.stalled ? std::string("true")
                                                     : std::string("false")) +
                     ", \"cancelled\": " + (ch.cancelled
                                                ? std::string("true")
                                                : std::string("false")) +
                     "}";
            }
            out += "]}";
            return out;
          });
}

Engine::~Engine() {
  // The provider captures `this`; drop it before any member dies.
  if (flight_snapshot_id_ >= 0)
    telemetry::FlightRecorder::instance().remove_snapshot_provider(
        flight_snapshot_id_);
  if (watchdog_.joinable()) {
    {
      std::lock_guard lock(watchdog_mutex_);
      watchdog_stop_ = true;
    }
    watchdog_wake_.notify_all();
    watchdog_.join();
  }
  for (auto& ch : channels_) ch->queue.close();
  for (auto& ch : channels_) {
    bool wedged;
    {
      std::lock_guard lock(ch->mutex);
      wedged = ch->stalled && ch->busy;
    }
    if (!wedged) {
      if (ch->worker.joinable()) ch->worker.join();
      continue;
    }
    // The worker is stuck inside a task and may never return: joining
    // would trade the hang we just diagnosed for a destructor deadlock.
    // Abandon the thread instead and deliberately leak its Channel so the
    // detached worker's accounting writes land in live memory if the task
    // ever does finish.
    ch->worker.detach();
    (void)ch.release();
  }
}

void Engine::worker_loop(Channel& ch) {
  // Static: must stay valid on a detached thread after the Engine object
  // is gone, so it may touch only `ch` (leaked alive in that case).
  PIMA_TEL_SET_THREAD_TRACK(ch.track);
  while (auto entry = ch.queue.pop()) {
    bool skip;
    {
      // Fail-fast: a channel with an uncollected failure (or a
      // cancellation from another channel's stall) drops the rest of its
      // stream instead of executing tasks that assumed the failed task's
      // effects.
      std::lock_guard lock(ch.mutex);
      skip = static_cast<bool>(ch.failure) || ch.cancelled;
      ch.busy = true;
      ch.current_subarray = entry->subarray;
      ch.last_activity = Clock::now();
    }
    if (!skip) {
      PIMA_TEL_SPAN_ARG("task", "subarray",
                        entry->subarray == EngineStalledError::kNoSubarray
                            ? -1.0
                            : static_cast<double>(entry->subarray));
      try {
        (entry->task)();
      } catch (...) {
        std::lock_guard lock(ch.mutex);
        if (!ch.failure) ch.failure = std::current_exception();
      }
    }
    std::size_t queue_depth;
    std::uint64_t retired;
    {
      std::lock_guard lock(ch.mutex);
      ch.busy = false;
      ch.current_subarray = EngineStalledError::kNoSubarray;
      ch.last_activity = Clock::now();
      ++ch.retired;
      --ch.pending;
      queue_depth = ch.pending;
      retired = ch.retired;
    }
    ch.idle.notify_all();
    PIMA_TEL_COUNTER(ch.track, "queue_depth",
                     static_cast<double>(queue_depth));
    PIMA_TEL_COUNTER(ch.track, "retired", static_cast<double>(retired));
    if (ch.latency_hist != nullptr && entry->submit_ns != 0) {
      const std::int64_t now_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              Clock::now().time_since_epoch())
              .count();
      ch.latency_hist->observe(static_cast<double>(now_ns - entry->submit_ns));
    }
  }
}

void Engine::watchdog_loop() {
  const auto timeout = std::chrono::duration<double, std::milli>(
      options_.stall_timeout_ms);
  // Poll a few times per timeout window so a stall is reported promptly
  // after it exceeds the deadline, without burning a core.
  const auto poll = std::max(std::chrono::duration<double, std::milli>(1.0),
                             timeout / 4);
  PIMA_TEL_SET_THREAD_TRACK(watchdog_track());
  std::unique_lock watchdog_lock(watchdog_mutex_);
  while (!watchdog_stop_) {
    watchdog_wake_.wait_for(
        watchdog_lock,
        std::chrono::duration_cast<Clock::duration>(poll),
        [&] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    if (stalled_.load(std::memory_order_acquire)) continue;
    PIMA_TEL_INSTANT("watchdog:heartbeat");
    for (std::size_t c = 0; c < channels_.size(); ++c) {
      Channel& ch = *channels_[c];
      bool fire = false;
      std::size_t subarray = EngineStalledError::kNoSubarray;
      std::uint64_t retired = 0;
      {
        std::lock_guard lock(ch.mutex);
        if (ch.busy && !ch.stalled &&
            Clock::now() - ch.last_activity >=
                std::chrono::duration_cast<Clock::duration>(timeout)) {
          ch.stalled = true;
          fire = true;
          subarray = ch.current_subarray;
          retired = ch.retired;
        }
      }
      if (!fire) continue;
      stalled_.store(true, std::memory_order_release);
      {
        std::lock_guard lock(ch.mutex);
        if (!ch.failure)
          ch.failure = std::make_exception_ptr(EngineStalledError(
              c, subarray, retired, options_.stall_timeout_ms));
      }
      // Last words FIRST: mark the wedged channel's track and push
      // everything recorded so far to the configured sinks. This must
      // complete before the queues close below — closing them wakes
      // drain(), which rethrows the stall, and the trace file must
      // already be durable (the flush is an atomic tmp+fsync+rename) by
      // the time the caller can observe the failure. Sink failures are
      // swallowed — the stall diagnosis must still reach the caller.
      PIMA_TEL_INSTANT_ON(channel_track(c), "stall");
#if PIMA_TELEMETRY
      telemetry::metrics()
          .counter("pima_engine_stalls_total",
                   "channels declared stalled by the watchdog", {},
                   telemetry::MetricClass::kHost)
          .increment();
      try {
        telemetry::TelemetrySession::instance().flush();
      } catch (...) {
      }
#endif
      // Black-box data: the stall is a canonical flight-recorder trigger.
      // Log the typed event (it lands in the ring), then persist the ring
      // plus the registered state snapshots. Failures are swallowed — the
      // stall diagnosis must still reach the caller.
      try {
        telemetry::log_event(
            telemetry::LogLevel::kError, "engine.stalled",
            "engine watchdog fired: channel " + std::to_string(c) +
                " made no progress for " +
                std::to_string(options_.stall_timeout_ms) + " ms",
            {telemetry::LogField::uint("channel", c),
             telemetry::LogField::uint("retired", retired),
             telemetry::LogField::num("timeout_ms",
                                      options_.stall_timeout_ms)});
        telemetry::FlightRecorder::instance().dump(
            "engine_stall", "channel " + std::to_string(c) + " wedged");
      } catch (...) {
      }
      // Cooperative cancellation: healthy channels drop their remaining
      // queues instead of finishing work the caller will discard. Closing
      // the queues also unblocks any producer stuck in a backpressured
      // push() against the wedged channel — its submit is dropped (the
      // engine is poisoned anyway) instead of deadlocking.
      for (auto& other : channels_) {
        std::lock_guard lock(other->mutex);
        other->cancelled = true;
      }
      for (auto& other : channels_) {
        other->queue.close();
        other->idle.notify_all();
      }
      return;  // one stall poisons the engine; nothing further to watch
    }
  }
}

void Engine::submit_tagged(std::size_t channel, Task task,
                           std::size_t subarray) {
  PIMA_CHECK(channel < channels(), "channel index out of engine");
  if (stalled_.load(std::memory_order_acquire))
    throw SimulationError(
        "engine is stalled; the run must be restarted (a wedged channel "
        "worker was abandoned by the watchdog)");
  if (channels_.empty()) {
    // Single-threaded fallback: retire inline. The span lands on the
    // caller's track, so serial traces still show per-batch spans.
    PIMA_TEL_SPAN_ARG("task", "subarray",
                      subarray == EngineStalledError::kNoSubarray
                          ? -1.0
                          : static_cast<double>(subarray));
    task();
    inline_retired_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Channel& ch = *channels_[channel];
  {
    std::lock_guard lock(ch.mutex);
    if (ch.failure)
      throw SimulationError(
          "channel " + std::to_string(channel) +
          " has a failed task; drain() the engine to collect the failure "
          "before submitting more work");
    ++ch.pending;
  }
  std::int64_t submit_ns = 0;
  if (ch.latency_hist != nullptr)
    submit_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now().time_since_epoch())
                    .count();
  if (!ch.queue.push({std::move(task), subarray, submit_ns})) {
    std::lock_guard lock(ch.mutex);
    --ch.pending;  // engine shutting down; drop silently
  }
}

void Engine::submit(std::size_t channel, Task task) {
  submit_tagged(channel, std::move(task), EngineStalledError::kNoSubarray);
}

void Engine::submit_to_subarray(std::size_t subarray_flat, Task task) {
  submit_tagged(channel_of(subarray_flat), std::move(task), subarray_flat);
}

bool Engine::channel_failed(std::size_t channel) const {
  PIMA_CHECK(channel < channels(), "channel index out of engine");
  if (channels_.empty()) return false;  // inline mode: failures throw at once
  Channel& ch = *channels_[channel];
  std::lock_guard lock(ch.mutex);
  return static_cast<bool>(ch.failure);
}

void Engine::submit_program(dram::Program program) {
  for (auto& sub : scheduler_.split(program)) {
    if (sub.empty()) continue;
    const std::size_t subarray = sub.front().subarray;
    const std::size_t channel = channel_of(subarray);
    for (std::size_t begin = 0; begin < sub.size();
         begin += options_.program_chunk) {
      const std::size_t end =
          std::min(sub.size(), begin + options_.program_chunk);
      dram::Program chunk(sub.begin() + static_cast<std::ptrdiff_t>(begin),
                          sub.begin() + static_cast<std::ptrdiff_t>(end));
      submit_tagged(
          channel, [this, chunk = std::move(chunk)] {
            dram::execute(device_, chunk);
          },
          subarray);
    }
  }
}

void Engine::drain() {
  for (auto& ch : channels_) {
    std::unique_lock lock(ch->mutex);
    // A stalled channel's pending count can never reach zero (its worker
    // is wedged inside a task); the watchdog wakes this wait instead.
    ch->idle.wait(lock, [&] { return ch->pending == 0 || ch->stalled; });
  }
  // Collect the first failure in channel order, but clear every channel's
  // failure state before throwing: one drain() fully resets the engine so
  // the next submit()/drain() cycle starts clean even when several
  // channels failed in the same batch.
  std::exception_ptr first;
  for (auto& ch : channels_) {
    std::lock_guard lock(ch->mutex);
    if (ch->failure && !first) first = ch->failure;
    ch->failure = nullptr;
    if (!stalled_.load(std::memory_order_acquire)) ch->cancelled = false;
  }
  if (first) std::rethrow_exception(first);
  if (stalled_.load(std::memory_order_acquire))
    // The stall error was already collected by an earlier drain(); the
    // engine stays poisoned.
    throw SimulationError(
        "engine is stalled; the run must be restarted (a wedged channel "
        "worker was abandoned by the watchdog)");
}

void Engine::quiesce() noexcept {
  for (auto& ch : channels_) {
    {
      std::lock_guard lock(ch->mutex);
      ch->cancelled = true;  // workers skip, but still retire, queued tasks
    }
    ch->idle.notify_all();
  }
  for (auto& ch : channels_) {
    std::unique_lock lock(ch->mutex);
    ch->idle.wait(lock, [&] { return ch->pending == 0 || ch->stalled; });
  }
  // Re-arm for the next submit cycle (unless the engine is poisoned by a
  // stall, where cancelled must stay set so healthy workers keep dropping
  // their streams).
  if (!stalled_.load(std::memory_order_acquire))
    for (auto& ch : channels_) {
      std::lock_guard lock(ch->mutex);
      ch->cancelled = false;
    }
}

void Engine::export_metrics(telemetry::MetricsRegistry& registry) const {
  using telemetry::MetricClass;
  registry
      .gauge("pima_engine_channels", "engine channel count", {},
             MetricClass::kHost)
      .set(static_cast<double>(channels()));
  if (channels_.empty()) {
    registry
        .counter("pima_engine_tasks_retired_total",
                 "tasks retired per channel", {{"channel", "0"}},
                 MetricClass::kHost)
        .add(static_cast<double>(
            inline_retired_.load(std::memory_order_relaxed)));
    return;
  }
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    Channel& ch = *channels_[c];  // unique_ptr does not propagate const
    std::uint64_t retired;
    bool stalled;
    {
      std::lock_guard lock(ch.mutex);
      retired = ch.retired;
      stalled = ch.stalled;
    }
    registry
        .counter("pima_engine_tasks_retired_total",
                 "tasks retired per channel",
                 {{"channel", std::to_string(c)}}, MetricClass::kHost)
        .add(static_cast<double>(retired));
    if (stalled)
      registry
          .counter("pima_engine_stalled_channels_total",
                   "channels declared stalled by the watchdog",
                   {{"channel", std::to_string(c)}}, MetricClass::kHost)
          .increment();
  }
}

std::vector<dram::DeviceStats> Engine::channel_roll_up() const {
  std::vector<dram::DeviceStats> out(channels());
  const std::size_t total = device_.geometry().total_subarrays();
  for (std::size_t flat = 0; flat < total; ++flat) {
    const dram::Subarray* sa = device_.subarray_if(flat);
    if (!sa) continue;
    const auto& st = sa->stats();
    if (st.total_commands() == 0) continue;
    dram::DeviceStats& s = out[channel_of(flat)];
    ++s.subarrays_used;
    s.time_ns = std::max(s.time_ns, st.busy_ns);
    s.serial_ns += st.busy_ns;
    s.energy_pj += st.energy_pj;
    s.commands += st.total_commands();
  }
  return out;
}

}  // namespace pima::runtime
