#include "runtime/engine.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "runtime/bounded_queue.hpp"

namespace pima::runtime {

namespace {

std::size_t resolve_channels(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

struct Engine::Channel {
  explicit Channel(std::size_t capacity) : queue(capacity) {}

  BoundedQueue<Task> queue;
  std::thread worker;

  // Outstanding-task accounting for drain(): incremented before push,
  // decremented after the task retires.
  std::mutex mutex;
  std::condition_variable idle;
  std::size_t pending = 0;
  std::exception_ptr failure;
};

Engine::Engine(dram::Device& device, EngineOptions options)
    : device_(device),
      options_(options),
      scheduler_(device.geometry().total_subarrays(),
                 resolve_channels(options.channels)) {
  PIMA_CHECK(options_.program_chunk > 0, "program chunk must be positive");
  if (options_.capture_trace) device_.enable_tracing();
  if (channels() == 1) return;  // inline fallback: no workers, no queues
  channels_.reserve(channels());
  for (std::size_t c = 0; c < channels(); ++c)
    channels_.push_back(std::make_unique<Channel>(options_.queue_capacity));
  for (auto& ch : channels_)
    ch->worker = std::thread([this, &ch = *ch] { worker_loop(ch); });
}

Engine::~Engine() {
  for (auto& ch : channels_) ch->queue.close();
  for (auto& ch : channels_)
    if (ch->worker.joinable()) ch->worker.join();
}

void Engine::worker_loop(Channel& ch) {
  while (auto task = ch.queue.pop()) {
    bool skip;
    {
      // Fail-fast: a channel with an uncollected failure drops the rest of
      // its stream instead of executing tasks that assumed the failed
      // task's effects.
      std::lock_guard lock(ch.mutex);
      skip = static_cast<bool>(ch.failure);
    }
    if (!skip) {
      try {
        (*task)();
      } catch (...) {
        std::lock_guard lock(ch.mutex);
        if (!ch.failure) ch.failure = std::current_exception();
      }
    }
    {
      std::lock_guard lock(ch.mutex);
      --ch.pending;
    }
    ch.idle.notify_all();
  }
}

void Engine::submit(std::size_t channel, Task task) {
  PIMA_CHECK(channel < channels(), "channel index out of engine");
  if (channels_.empty()) {
    task();  // single-threaded fallback: retire inline
    return;
  }
  Channel& ch = *channels_[channel];
  {
    std::lock_guard lock(ch.mutex);
    if (ch.failure)
      throw SimulationError(
          "channel " + std::to_string(channel) +
          " has a failed task; drain() the engine to collect the failure "
          "before submitting more work");
    ++ch.pending;
  }
  if (!ch.queue.push(std::move(task))) {
    std::lock_guard lock(ch.mutex);
    --ch.pending;  // engine shutting down; drop silently
  }
}

void Engine::submit_to_subarray(std::size_t subarray_flat, Task task) {
  submit(channel_of(subarray_flat), std::move(task));
}

bool Engine::channel_failed(std::size_t channel) const {
  PIMA_CHECK(channel < channels(), "channel index out of engine");
  if (channels_.empty()) return false;  // inline mode: failures throw at once
  Channel& ch = *channels_[channel];
  std::lock_guard lock(ch.mutex);
  return static_cast<bool>(ch.failure);
}

void Engine::submit_program(dram::Program program) {
  for (auto& sub : scheduler_.split(program)) {
    if (sub.empty()) continue;
    const std::size_t channel = channel_of(sub.front().subarray);
    for (std::size_t begin = 0; begin < sub.size();
         begin += options_.program_chunk) {
      const std::size_t end =
          std::min(sub.size(), begin + options_.program_chunk);
      dram::Program chunk(sub.begin() + static_cast<std::ptrdiff_t>(begin),
                          sub.begin() + static_cast<std::ptrdiff_t>(end));
      submit(channel, [this, chunk = std::move(chunk)] {
        dram::execute(device_, chunk);
      });
    }
  }
}

void Engine::drain() {
  for (auto& ch : channels_) {
    std::unique_lock lock(ch->mutex);
    ch->idle.wait(lock, [&] { return ch->pending == 0; });
  }
  for (auto& ch : channels_) {
    std::lock_guard lock(ch->mutex);
    if (ch->failure) {
      auto failure = ch->failure;
      ch->failure = nullptr;
      std::rethrow_exception(failure);
    }
  }
}

std::vector<dram::DeviceStats> Engine::channel_roll_up() const {
  std::vector<dram::DeviceStats> out(channels());
  const std::size_t total = device_.geometry().total_subarrays();
  for (std::size_t flat = 0; flat < total; ++flat) {
    const dram::Subarray* sa = device_.subarray_if(flat);
    if (!sa) continue;
    const auto& st = sa->stats();
    if (st.total_commands() == 0) continue;
    dram::DeviceStats& s = out[channel_of(flat)];
    ++s.subarrays_used;
    s.time_ns = std::max(s.time_ns, st.busy_ns);
    s.serial_ns += st.busy_ns;
    s.energy_pj += st.energy_pj;
    s.commands += st.total_commands();
  }
  return out;
}

}  // namespace pima::runtime
