// Cooperative cancellation for long-running pipeline work.
//
// A CancelToken is a shared flag that cancellation *requesters* (signal
// handlers, the service daemon's `cancel` verb, graceful shutdown) set and
// that *workers* poll at natural safe points — per read in the k-mer
// stream, per program slice in the construction/traversal stages, and at
// every stage boundary. A triggered token surfaces as CancelledError on
// the polling thread, which unwinds through the engine's normal teardown:
// queued work is dropped, worker threads join, and any stage checkpoint
// already written stays valid, so a cancelled run is resumable exactly
// like a crashed one.
//
// request() is async-signal-safe (two relaxed/release atomic stores, no
// allocation, no locks), so a SIGINT/SIGTERM handler may call it directly.
// The reason string must be a string literal (static storage) for the same
// reason.
#pragma once

#include <atomic>

#include "common/error.hpp"

namespace pima::runtime {

class CancelToken {
 public:
  /// Requests cancellation. Safe from signal handlers; `reason` must point
  /// to static storage (a string literal). Idempotent — the first reason
  /// wins.
  void request(const char* reason = "cancelled") {
    const char* expected = nullptr;
    reason_.compare_exchange_strong(expected, reason,
                                    std::memory_order_relaxed);
    requested_.store(true, std::memory_order_release);
  }

  bool requested() const {
    return requested_.load(std::memory_order_acquire);
  }

  /// The first request()'s reason, or "" before any request.
  const char* reason() const {
    const char* r = reason_.load(std::memory_order_relaxed);
    return r == nullptr ? "" : r;
  }

  /// Cancellation point: throws CancelledError once the token has been
  /// triggered. One acquire load on the fast path.
  void throw_if_requested() const {
    if (requested()) [[unlikely]]
      throw CancelledError(std::string("cancelled: ") + reason());
  }

  /// Re-arms a token for reuse (tests; a requeued service job gets a fresh
  /// run). Not safe concurrently with request().
  void reset() {
    requested_.store(false, std::memory_order_release);
    reason_.store(nullptr, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> requested_{false};
  std::atomic<const char*> reason_{nullptr};
};

}  // namespace pima::runtime
