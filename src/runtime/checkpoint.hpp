// Versioned, checksummed pipeline snapshots for crash-safe assembly runs.
//
// The pipeline (core::run_pipeline) has three natural persistence points —
// the paper's Fig. 5 stage boundaries: k-mer analysis → de Bruijn
// construction → traversal. After each stage the run's resumable state is
// small and well-defined:
//
//   stage 1 done: the counted k-mer table (extracted (k-mer, freq) pairs)
//   stage 2 done: the de Bruijn graph (sorted edge list — from_edges()
//                 rebuilds the exact same node ids and adjacency)
//   stage 3 done: the contigs
//
// plus, cumulatively, the per-stage DeviceStats and the FaultStats
// roll-up. A snapshot always carries the full state through its last
// completed stage, so one file (`pipeline.ckpt`) is rewritten at each
// boundary and any crash leaves the previous complete snapshot behind.
//
// On-disk format (little-endian, fixed-width):
//
//   magic   "PIMACKPT"          8 bytes
//   version u32                 currently kCheckpointVersion
//   size    u64                 payload byte count
//   crc     u32                 CRC-32 (IEEE 802.3) over the payload
//   payload                     fingerprint + stage state (see .cpp)
//
// Writes are atomic: serialize to `<path>.tmp`, fsync, rename onto the
// final path, fsync the directory. A reader therefore sees either the old
// snapshot or the new one, never a torn file. Loads are all-or-nothing:
// any validation failure (magic, version, truncation, CRC, trailing bytes)
// throws CorruptCheckpointError before the caller's state is touched, and
// CRC-32 guarantees detection of every single-byte corruption.
//
// The fingerprint pins every input that the remaining stages' command
// streams depend on — geometry, k, sharding, traversal flags, fault seed —
// so a resumed run is provably bit-identical to an uninterrupted one
// (contigs, per-stage DeviceStats and FaultStats). Channel count is
// deliberately NOT part of the fingerprint: the runtime's determinism
// contract makes results identical for any --threads value, so a run
// checkpointed at --threads 4 may resume at --threads 1 and vice versa.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "assembly/kmer.hpp"
#include "dna/sequence.hpp"
#include "dram/device.hpp"
#include "runtime/recovery.hpp"

namespace pima::runtime {

// Version 2 added the `devices` fingerprint field (multi-device sharding,
// DESIGN.md §14); version 3 added the `shard` field (process-isolated
// device workers, DESIGN.md §15). Older snapshots are rejected as corrupt
// rather than silently resumed under a possibly different shard layout.
inline constexpr std::uint32_t kCheckpointVersion = 3;

/// `CheckpointFingerprint::shard` value of a whole-run snapshot
/// (pipeline.ckpt). Per-device shard checkpoints pin their own device
/// index instead, so a shard file can never seed another shard's worker.
inline constexpr std::uint64_t kWholeRunShard = ~std::uint64_t{0};

/// Run configuration pinned by a snapshot. A resume whose live
/// configuration differs in any field is rejected with
/// CorruptCheckpointError (the remaining stages would not reproduce the
/// interrupted run's command streams).
struct CheckpointFingerprint {
  // Pipeline shape.
  std::uint64_t k = 0;
  std::uint64_t hash_shards = 0;
  /// Simulated device count (ShardPlan). Pinned — unlike --threads —
  /// because the shard fingerprint is part of the run's identity: stage
  /// snapshots were cut under a specific owner = flat % devices layout.
  std::uint64_t devices = 1;
  /// Shard identity: kWholeRunShard for the whole-run snapshot, the device
  /// index for a per-device shard checkpoint (process isolation, §15).
  std::uint64_t shard = kWholeRunShard;
  std::uint32_t graph_intervals = 0;
  bool use_multiplicity = false;
  bool euler_contigs = false;
  std::uint8_t traversal = 0;
  // Device geometry.
  std::uint64_t rows = 0;
  std::uint64_t compute_rows = 0;
  std::uint64_t columns = 0;
  std::uint64_t subarrays_per_mat = 0;
  std::uint64_t mats_per_bank = 0;
  std::uint64_t banks = 0;
  // Stochastic inputs.
  double fault_variation = 0.0;
  std::uint64_t fault_seed = 0;
  double fault_retention = 0.0;
  double fault_weak_rows = 0.0;
  std::uint8_t recovery_mode = 0;

  bool operator==(const CheckpointFingerprint&) const = default;

  /// Human-readable name of the first differing field (for reject
  /// messages); empty when equal.
  std::string diff(const CheckpointFingerprint& other) const;
};

/// Everything run_pipeline needs to skip completed stages. Fields past
/// `stages_done` hold their defaults.
struct PipelineSnapshot {
  CheckpointFingerprint fingerprint;
  std::uint32_t stages_done = 0;  ///< 1 = hashmap, 2 = +debruijn, 3 = all

  dram::DeviceStats hashmap;
  dram::DeviceStats debruijn;
  dram::DeviceStats traverse;
  FaultStats fault_stats;  ///< roll-up through the last completed stage

  std::uint64_t distinct_kmers = 0;
  /// Stage ≥ 1: the counted k-mer table, in PimHashTable::extract() order.
  std::vector<std::pair<assembly::Kmer, std::uint32_t>> kmer_entries;
  /// Stage ≥ 2: de Bruijn edge list (k-mer, multiplicity), in
  /// DeBruijnGraph edge order — from_edges() reproduces the graph exactly.
  std::vector<std::pair<assembly::Kmer, std::uint32_t>> graph_edges;
  /// Stage ≥ 3: the assembled contigs.
  std::vector<dna::Sequence> contigs;

  bool operator==(const PipelineSnapshot&) const = default;
};

/// Serializes and atomically writes the snapshot (tmp + fsync + rename).
/// Throws IoError on OS failures.
void save_checkpoint(const std::string& path, const PipelineSnapshot& snap);

/// Loads and validates a snapshot. Throws IoError if the file cannot be
/// opened and CorruptCheckpointError on any validation failure.
PipelineSnapshot load_checkpoint(const std::string& path);

/// Validates that a loaded snapshot may seed a run with fingerprint
/// `current`; throws CorruptCheckpointError naming the mismatched field.
void validate_compatible(const PipelineSnapshot& snap,
                         const CheckpointFingerprint& current);

// ---- per-device shard checkpoints (process isolation, DESIGN.md §15) ------

/// The supervisor's per-device stage marker: which stages this worker's
/// journal has been truncated through, under which run configuration. The
/// fingerprint pins `shard` to the device index, so restarting worker 2
/// against worker 3's file — or against a file cut under different
/// geometry/k/devices — is rejected as corrupt.
struct ShardCheckpoint {
  CheckpointFingerprint fingerprint;  ///< fingerprint.shard = device index
  std::uint32_t stages_done = 0;

  bool operator==(const ShardCheckpoint&) const = default;
};

/// Atomic save / validated load of a shard checkpoint (`shard-<d>.ckpt`),
/// same header + CRC discipline as the whole-run snapshot but under its
/// own magic ("PIMASHRD"). Load throws IoError when the file cannot be
/// opened and CorruptCheckpointError on any validation failure.
void save_shard_checkpoint(const std::string& path, const ShardCheckpoint& sc);
ShardCheckpoint load_shard_checkpoint(const std::string& path);

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) — exposed for corruption
/// tests.
std::uint32_t crc32(const void* data, std::size_t size);

}  // namespace pima::runtime
