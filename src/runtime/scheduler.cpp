#include "runtime/scheduler.hpp"

#include "common/error.hpp"

namespace pima::runtime {

Scheduler::Scheduler(std::size_t total_subarrays, std::size_t channels)
    : total_subarrays_(total_subarrays), channels_(channels) {
  PIMA_CHECK(total_subarrays > 0, "scheduler needs a non-empty device");
  PIMA_CHECK(channels > 0, "scheduler needs at least one channel");
}

std::size_t Scheduler::block_subarray(std::size_t i, std::size_t j,
                                      std::size_t m,
                                      std::size_t offset) const {
  return runtime::block_subarray(total_subarrays_, i, j, m, offset);
}

std::size_t block_subarray(std::size_t total_subarrays, std::size_t i,
                           std::size_t j, std::size_t m, std::size_t offset) {
  return (i * m + j + offset) % total_subarrays;
}

std::vector<dram::Program> Scheduler::split(
    const dram::Program& program) const {
  std::vector<dram::Program> out(channels_);
  for (const auto& inst : program) {
    PIMA_CHECK(inst.subarray < total_subarrays_,
               "instruction targets a sub-array outside the device");
    out[channel_of(inst.subarray)].push_back(inst);
  }
  return out;
}

}  // namespace pima::runtime
