#include "runtime/stats.hpp"

#include <algorithm>

namespace pima::runtime {

dram::DeviceStats reduce_parallel(
    const std::vector<dram::DeviceStats>& parts) {
  dram::DeviceStats out{};
  for (const auto& p : parts) {
    out.time_ns = std::max(out.time_ns, p.time_ns);
    out.serial_ns += p.serial_ns;
    out.energy_pj += p.energy_pj;
    out.commands += p.commands;
    out.subarrays_used += p.subarrays_used;
  }
  return out;
}

dram::DeviceStats reduce_serial(const std::vector<dram::DeviceStats>& parts) {
  dram::DeviceStats out{};
  for (const auto& p : parts) out += p;
  return out;
}

}  // namespace pima::runtime
