// Deterministic reduction of per-channel DeviceStats.
//
// The platform's timing model distinguishes the two composition axes the
// roll-ups have always used:
//   * parallel (channels active concurrently): critical-path time is the
//     maximum over channels, energy/commands/serial-time are sums, and the
//     sub-array counts add because channels own disjoint sub-arrays;
//   * serial (phases back to back on the device): times add, the sub-array
//     count is the widest phase — exactly DeviceStats::operator+.
// Both reductions fold in channel/phase index order, so repeated runs give
// bit-identical doubles.
#pragma once

#include <vector>

#include "dram/device.hpp"

namespace pima::runtime {

/// Combines stats of concurrently active channels.
dram::DeviceStats reduce_parallel(const std::vector<dram::DeviceStats>& parts);

/// Combines stats of phases executed back to back.
dram::DeviceStats reduce_serial(const std::vector<dram::DeviceStats>& parts);

}  // namespace pima::runtime
