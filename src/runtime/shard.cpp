#include "runtime/shard.hpp"

#include <exception>
#include <iterator>

#include "common/error.hpp"

namespace pima::runtime {

DevicePool::DevicePool(dram::Device& primary, std::size_t devices)
    : primary_(primary) {
  PIMA_CHECK(devices >= 1, "device pool needs at least one device");
  plan_.devices = devices;
  extras_.reserve(devices - 1);
  for (std::size_t d = 1; d < devices; ++d)
    extras_.push_back(std::make_unique<dram::Device>(
        primary.geometry(), primary.technology()));
}

dram::Device& DevicePool::device(std::size_t d) {
  PIMA_CHECK(d < size(), "device index out of pool");
  return d == 0 ? primary_ : *extras_[d - 1];
}

const dram::Device& DevicePool::device(std::size_t d) const {
  PIMA_CHECK(d < size(), "device index out of pool");
  return d == 0 ? primary_ : *extras_[d - 1];
}

std::size_t DevicePool::instantiated_count() const {
  std::size_t n = primary_.instantiated_count();
  for (const auto& dev : extras_) n += dev->instantiated_count();
  return n;
}

// The folds below iterate logical flat indices 0..total-1 and apply the
// exact per-sub-array steps of the corresponding Device fold. A sharded
// run instantiates each flat only inside its owner, so visiting owners in
// logical order reproduces the single-device iteration — including the
// floating-point accumulation order.
dram::DeviceStats DevicePool::roll_up() const {
  dram::DeviceStats s{};
  const std::size_t total = total_subarrays();
  for (std::size_t flat = 0; flat < total; ++flat) {
    const dram::Subarray* sa = subarray_if(flat);
    if (!sa) continue;
    const auto& st = sa->stats();
    if (st.total_commands() == 0) continue;
    ++s.subarrays_used;
    s.time_ns = std::max(s.time_ns, st.busy_ns);
    s.serial_ns += st.busy_ns;
    s.energy_pj += st.energy_pj;
    s.commands += st.total_commands();
  }
  return s;
}

std::vector<dram::DeviceStats> DevicePool::per_device_roll_up() const {
  std::vector<dram::DeviceStats> out;
  out.reserve(size());
  for (std::size_t d = 0; d < size(); ++d)
    out.push_back(device(d).roll_up());
  return out;
}

dram::CommandStats DevicePool::command_roll_up() const {
  dram::CommandStats total{};
  const std::size_t n = total_subarrays();
  for (std::size_t flat = 0; flat < n; ++flat) {
    const dram::Subarray* sa = subarray_if(flat);
    if (sa) total.merge_serial(sa->stats());
  }
  return total;
}

dram::InjectionCounters DevicePool::injection_roll_up() const {
  dram::InjectionCounters total;
  for (std::size_t d = 0; d < size(); ++d) {
    const auto c = device(d).injection_roll_up();
    total.compute_flips += c.compute_flips;
    total.retention_flips += c.retention_flips;
    total.faulty_ops += c.faulty_ops;
  }
  return total;
}

void DevicePool::clear_stats() {
  for (std::size_t d = 0; d < size(); ++d) device(d).clear_stats();
}

void DevicePool::enable_faults(const dram::FaultConfig& config) {
  // Every device calibrates its model from the same (technology, config)
  // pair and seeds injectors from (model, flat, geometry) — the fault
  // process of a given logical flat is device-count invariant.
  for (std::size_t d = 0; d < size(); ++d) device(d).enable_faults(config);
}

dram::Program DevicePool::captured_program() const {
  dram::Program program;
  const std::size_t total = total_subarrays();
  for (std::size_t flat = 0; flat < total; ++flat) {
    const dram::Device& owner = device(owner_of(flat));
    PIMA_CHECK(owner.tracing(), "pool device is not capturing a trace");
    const dram::TraceSink* sink = owner.trace_if(flat);
    if (sink == nullptr || sink->entries().empty()) continue;
    dram::Program part = dram::program_from_trace(sink->entries(), flat,
                                                  geometry().columns);
    program.insert(program.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
  }
  return program;
}

void DevicePool::enable_tracing() {
  for (std::size_t d = 0; d < size(); ++d) device(d).enable_tracing();
}

void DevicePool::disable_tracing() {
  for (std::size_t d = 0; d < size(); ++d) device(d).disable_tracing();
}

dram::DeviceStats reduce_devices(
    const std::vector<dram::DeviceStats>& parts) {
  dram::DeviceStats total{};
  for (const auto& p : parts) {
    total.time_ns = std::max(total.time_ns, p.time_ns);
    total.serial_ns += p.serial_ns;
    total.energy_pj += p.energy_pj;
    total.commands += p.commands;
    total.subarrays_used += p.subarrays_used;
  }
  return total;
}

PoolRunner::PoolRunner(DevicePool& pool, EngineOptions per_device)
    : pool_(pool) {
  // With more than one device, even a one-channel engine must own a real
  // worker — otherwise all devices would retire inline on the controller
  // thread and the pool's device-level parallelism would be fiction.
  per_device.force_worker = pool.size() > 1;
  engines_.reserve(pool.size());
  for (std::size_t d = 0; d < pool.size(); ++d)
    engines_.push_back(
        std::make_unique<Engine>(pool.device(d), per_device));
}

void PoolRunner::submit_to_subarray(std::size_t subarray_flat, Task task) {
  engines_[owner_of(subarray_flat)]->submit_to_subarray(subarray_flat,
                                                        std::move(task));
}

void PoolRunner::submit_program(dram::Program program) {
  if (engines_.size() == 1) {
    engines_[0]->submit_program(std::move(program));
    return;
  }
  // The controller is the single producer here (src 0); the key is the
  // global instruction sequence, so each device's gathered sub-stream is
  // in program order and per-sub-array order matches a single device.
  Exchange<dram::Instruction> exchange(engines_.size());
  std::uint64_t seq = 0;
  for (auto& inst : program)
    exchange.push(0, pool_.owner_of(inst.subarray), seq++, std::move(inst));
  for (std::size_t d = 0; d < engines_.size(); ++d) {
    dram::Program part = exchange.gather(d);
    if (!part.empty()) engines_[d]->submit_program(std::move(part));
  }
}

void PoolRunner::drain() {
  std::exception_ptr first;
  for (auto& engine : engines_) {
    try {
      engine->drain();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

void PoolRunner::quiesce() noexcept {
  for (auto& engine : engines_) engine->quiesce();
}

bool PoolRunner::stalled() const {
  for (const auto& engine : engines_)
    if (engine->stalled()) return true;
  return false;
}

void PoolRunner::export_metrics(telemetry::MetricsRegistry& registry) const {
  // A one-device pool exports exactly like a bare Engine (no device
  // label), so the single-device metric surface is unchanged by the pool.
  if (engines_.size() == 1) {
    engines_[0]->export_metrics(registry);
    return;
  }
  for (std::size_t d = 0; d < engines_.size(); ++d) {
    telemetry::MetricsRegistry shard;
    shard.set_default_labels({{"device", std::to_string(d)}});
    engines_[d]->export_metrics(shard);
    registry.merge_from(shard);
  }
}

}  // namespace pima::runtime
