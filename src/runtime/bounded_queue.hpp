// Bounded MPSC/MPMC FIFO used as a per-channel command queue.
//
// Producers block in push() while the queue is at capacity — that is the
// runtime's backpressure mechanism: a host thread generating ISA programs
// faster than the channel executors can retire them is throttled instead of
// buffering unbounded work. pop() blocks while empty; close() wakes every
// waiter, after which push() fails and pop() drains the remaining items and
// then returns nullopt.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "common/error.hpp"

namespace pima::runtime {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    PIMA_CHECK(capacity > 0, "queue capacity must be positive");
  }

  std::size_t capacity() const { return capacity_; }

  /// Blocks while full. Returns false (dropping `value`) if closed.
  bool push(T value) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T value) {
    {
      std::unique_lock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Wakes all waiters; subsequent pushes fail, pops drain then end.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace pima::runtime
