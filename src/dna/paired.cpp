#include "dna/paired.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace pima::dna {

std::vector<ReadPair> sample_read_pairs(const Sequence& genome,
                                        const PairedReadParams& params) {
  PIMA_CHECK(params.read_length > 0, "read length must be positive");
  PIMA_CHECK(params.insert_mean >= 2.0 * static_cast<double>(params.read_length),
             "insert must fit two reads");
  PIMA_CHECK(genome.size() > params.insert_mean + 6.0 * params.insert_sd,
             "genome shorter than the insert distribution");

  std::size_t count = params.pair_count;
  if (count == 0) {
    PIMA_CHECK(params.coverage > 0.0, "coverage must be positive");
    count = static_cast<std::size_t>(
        params.coverage * static_cast<double>(genome.size()) /
        (2.0 * static_cast<double>(params.read_length)));
    count = std::max<std::size_t>(count, 1);
  }

  Rng rng(params.seed);
  std::vector<ReadPair> pairs;
  pairs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Draw the fragment length, clamped to something sampleable.
    const double raw = rng.gaussian(params.insert_mean, params.insert_sd);
    const auto insert = static_cast<std::size_t>(std::llround(std::clamp(
        raw, 2.0 * static_cast<double>(params.read_length),
        static_cast<double>(genome.size()))));
    const std::size_t start = rng.uniform(genome.size() - insert + 1);

    ReadPair pair;
    pair.true_insert = insert;
    pair.first = genome.subseq(start, params.read_length);
    pair.second =
        genome.subseq(start + insert - params.read_length, params.read_length)
            .reverse_complement();
    pairs.push_back(std::move(pair));
  }
  return pairs;
}

}  // namespace pima::dna
