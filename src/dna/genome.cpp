#include "dna/genome.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pima::dna {
namespace {

// Draws one base given the GC class decided by the Markov chain.
Base draw_base(Rng& rng, bool gc_class) {
  if (gc_class) return rng.bernoulli(0.5) ? Base::G : Base::C;
  return rng.bernoulli(0.5) ? Base::A : Base::T;
}

Base random_other_base(Rng& rng, Base b) {
  for (;;) {
    const Base cand = from_code(static_cast<std::uint8_t>(rng.uniform(4)));
    if (cand != b) return cand;
  }
}

}  // namespace

Sequence generate_genome(const GenomeParams& params) {
  PIMA_CHECK(params.length > 0, "genome length must be positive");
  PIMA_CHECK(params.gc_content > 0.0 && params.gc_content < 1.0,
             "gc_content must be in (0,1)");
  PIMA_CHECK(params.markov_persistence >= 0.0 &&
                 params.markov_persistence <= 1.0,
             "markov_persistence must be in [0,1]");
  Rng rng(params.seed);

  // Base composition via a two-state (GC / AT) Markov chain whose stationary
  // distribution matches gc_content. Persistence p keeps local composition
  // correlated like real chromatin isochores.
  const double p = params.markov_persistence;
  // Transition probabilities chosen so stationary P(GC) = gc_content:
  // stay-in-class prob differs per class around the persistence knob.
  const double to_gc_from_at =
      std::clamp((1.0 - p) * params.gc_content * 2.0, 0.0, 1.0);
  const double to_at_from_gc =
      std::clamp((1.0 - p) * (1.0 - params.gc_content) * 2.0, 0.0, 1.0);

  Sequence genome;
  bool gc_class = rng.bernoulli(params.gc_content);
  for (std::size_t i = 0; i < params.length; ++i) {
    genome.push_back(draw_base(rng, gc_class));
    if (gc_class)
      gc_class = !rng.bernoulli(to_at_from_gc);
    else
      gc_class = rng.bernoulli(to_gc_from_at);
  }

  // Plant interspersed repeats: one master element copied (with rare
  // divergence) to random positions, emulating Alu-like repeat families.
  if (params.repeat_count > 0 && params.repeat_length > 0 &&
      params.repeat_length < params.length) {
    Sequence element;
    Rng elem_rng = rng.fork(1);
    for (std::size_t i = 0; i < params.repeat_length; ++i)
      element.push_back(draw_base(elem_rng, elem_rng.bernoulli(0.5)));

    Sequence mutable_genome = genome;  // rebuild with repeats overlaid
    std::string s = mutable_genome.to_string();
    Rng place_rng = rng.fork(2);
    for (std::size_t r = 0; r < params.repeat_count; ++r) {
      const std::size_t pos =
          place_rng.uniform(params.length - params.repeat_length);
      for (std::size_t i = 0; i < params.repeat_length; ++i) {
        Base b = element.at(i);
        if (place_rng.bernoulli(0.02)) b = random_other_base(place_rng, b);
        s[pos + i] = to_char(b);
      }
    }
    genome = Sequence::from_string(s);
  }
  return genome;
}

std::vector<Sequence> sample_reads(const Sequence& genome,
                                   const ReadSamplerParams& params) {
  PIMA_CHECK(params.read_length > 0, "read length must be positive");
  PIMA_CHECK(genome.size() >= params.read_length,
             "genome shorter than read length");
  std::size_t count = params.read_count;
  if (count == 0) {
    PIMA_CHECK(params.coverage > 0.0, "coverage must be positive");
    count = static_cast<std::size_t>(
        params.coverage * static_cast<double>(genome.size()) /
        static_cast<double>(params.read_length));
    count = std::max<std::size_t>(count, 1);
  }

  Rng rng(params.seed);
  std::vector<Sequence> reads;
  reads.reserve(count);
  const std::size_t span = genome.size() - params.read_length + 1;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t pos = rng.uniform(span);
    Sequence read = genome.subseq(pos, params.read_length);
    if (params.error_rate > 0.0) {
      std::string s = read.to_string();
      for (auto& c : s)
        if (rng.bernoulli(params.error_rate))
          c = to_char(random_other_base(rng, from_char(c)));
      read = Sequence::from_string(s);
    }
    if (params.both_strands && rng.bernoulli(0.5))
      read = read.reverse_complement();
    reads.push_back(std::move(read));
  }
  return reads;
}

double gc_fraction(const Sequence& seq) {
  if (seq.empty()) return 0.0;
  std::size_t gc = 0;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const Base b = seq.at(i);
    if (b == Base::G || b == Base::C) ++gc;
  }
  return static_cast<double>(gc) / static_cast<double>(seq.size());
}

}  // namespace pima::dna
