// Synthetic genome generation and short-read sampling.
//
// The paper evaluates on human chromosome 14 (≈87 Mbp) with 45,711,162 reads
// of length 101 sampled uniformly at random. We cannot ship chr14, so this
// module generates a synthetic chromosome with the statistical features that
// matter to the assembly workload — GC bias, local composition correlation
// (first-order Markov chain), and interspersed repeats (which create the
// branching de Bruijn nodes that stress graph traversal) — and reproduces the
// paper's read-sampling protocol on it. See DESIGN.md §2 for the fidelity
// argument.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "dna/sequence.hpp"

namespace pima::dna {

/// Parameters of the synthetic chromosome.
struct GenomeParams {
  std::size_t length = 2'000'000;  ///< bases
  double gc_content = 0.42;        ///< human-like average GC fraction
  /// First-order Markov persistence: probability the next base stays in the
  /// same GC class as the previous one (0.5 = i.i.d.).
  double markov_persistence = 0.55;
  /// Interspersed repeats: `repeat_count` copies of a `repeat_length`-bp
  /// element are planted at random positions (Alu-like, creates graph
  /// branching). Set count to 0 for repeat-free genomes.
  std::size_t repeat_length = 300;
  std::size_t repeat_count = 20;
  std::uint64_t seed = 14;  ///< chr14 homage
};

/// Generates a synthetic chromosome.
Sequence generate_genome(const GenomeParams& params);

/// Parameters of the read sampler (paper: 45,711,162 reads × 101 bp from
/// chr14; scaled runs use proportional coverage).
struct ReadSamplerParams {
  std::size_t read_length = 101;
  std::size_t read_count = 0;    ///< if 0, derived from coverage
  double coverage = 20.0;        ///< used when read_count == 0
  /// Per-base substitution error rate (0 reproduces the paper's error-free
  /// random sampling; >0 available for robustness experiments).
  double error_rate = 0.0;
  /// Sample reads from both strands (reverse complement half the reads).
  bool both_strands = false;
  std::uint64_t seed = 101;
};

/// Uniformly samples short reads from `genome` per the paper's protocol.
std::vector<Sequence> sample_reads(const Sequence& genome,
                                   const ReadSamplerParams& params);

/// Fraction of G/C bases in a sequence (0 for empty input).
double gc_fraction(const Sequence& seq);

}  // namespace pima::dna
