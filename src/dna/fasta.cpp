#include "dna/fasta.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace pima::dna {
namespace {

// Deterministic substitute for an ambiguous call: cycles A,C,G,T by position
// so repeated runs produce identical sequences.
Base substitute_base(std::size_t pos) {
  static constexpr Base kCycle[4] = {Base::A, Base::C, Base::G, Base::T};
  return kCycle[pos % 4];
}

// Appends `line` to `seq`; returns false if the record must be skipped.
bool append_bases(Sequence& seq, const std::string& line,
                  AmbiguityPolicy policy) {
  for (const char c : line) {
    if (c == '\r' || c == ' ' || c == '\t') continue;
    if (is_valid_char(c)) {
      seq.push_back(from_char(c));
    } else {
      switch (policy) {
        case AmbiguityPolicy::kSkipRecord:
          return false;
        case AmbiguityPolicy::kSubstitute:
          seq.push_back(substitute_base(seq.size()));
          break;
        case AmbiguityPolicy::kThrow:
          throw SimulationError(std::string("non-ACGT character '") + c +
                                "' in sequence data");
      }
    }
  }
  return true;
}

}  // namespace

std::vector<Record> read_fasta(std::istream& in, AmbiguityPolicy policy) {
  std::vector<Record> records;
  std::string line;
  Record current;
  bool in_record = false;
  bool skip = false;

  auto flush = [&] {
    if (in_record && !skip && !current.seq.empty())
      records.push_back(std::move(current));
    current = Record{};
    skip = false;
  };

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '>') {
      flush();
      in_record = true;
      current.id = line.substr(1);
      while (!current.id.empty() &&
             (current.id.back() == '\r' || current.id.back() == ' '))
        current.id.pop_back();
    } else if (in_record && !skip) {
      if (!append_bases(current.seq, line, policy)) skip = true;
    }
  }
  flush();
  return records;
}

std::vector<Record> read_fasta_file(const std::string& path,
                                    AmbiguityPolicy policy) {
  std::ifstream in(path);
  if (!in) throw SimulationError("cannot open FASTA file: " + path);
  return read_fasta(in, policy);
}

std::vector<Record> read_fastq(std::istream& in, AmbiguityPolicy policy) {
  std::vector<Record> records;
  std::string header, bases, plus, qual;
  while (std::getline(in, header)) {
    if (header.empty()) continue;
    PIMA_CHECK(header[0] == '@', "FASTQ record must start with '@'");
    if (!std::getline(in, bases) || !std::getline(in, plus) ||
        !std::getline(in, qual))
      throw SimulationError("truncated FASTQ record: " + header);
    PIMA_CHECK(!plus.empty() && plus[0] == '+', "FASTQ separator must be '+'");
    while (!bases.empty() && bases.back() == '\r') bases.pop_back();
    while (!qual.empty() && qual.back() == '\r') qual.pop_back();
    if (qual.size() != bases.size())
      throw SimulationError("FASTQ quality length mismatch: " + header);
    Record rec;
    rec.id = header.substr(1);
    if (append_bases(rec.seq, bases, policy)) records.push_back(std::move(rec));
  }
  return records;
}

void write_fasta(std::ostream& out, const std::vector<Record>& records,
                 std::size_t line_width) {
  PIMA_CHECK(line_width > 0, "line width must be positive");
  for (const auto& rec : records) {
    out << '>' << rec.id << '\n';
    const std::string s = rec.seq.to_string();
    for (std::size_t i = 0; i < s.size(); i += line_width)
      out << s.substr(i, line_width) << '\n';
  }
}

void write_fasta_file(const std::string& path,
                      const std::vector<Record>& records,
                      std::size_t line_width) {
  std::ofstream out(path);
  if (!out) throw SimulationError("cannot open FASTA file for write: " + path);
  write_fasta(out, records, line_width);
}

}  // namespace pima::dna
