#include "dna/fasta.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace pima::dna {
namespace {

// Deterministic substitute for an ambiguous call: cycles A,C,G,T by position
// so repeated runs produce identical sequences.
Base substitute_base(std::size_t pos) {
  static constexpr Base kCycle[4] = {Base::A, Base::C, Base::G, Base::T};
  return kCycle[pos % 4];
}

// IUPAC nucleotide ambiguity codes (everything sequencers legitimately
// emit beyond ACGT, plus U for RNA-style input and '-'/'.' gap characters
// some aligners leave in). These are subject to AmbiguityPolicy; anything
// else in a sequence line is a hard format error.
bool is_ambiguity_char(char c) {
  switch (c) {
    case 'N': case 'n': case 'U': case 'u': case 'R': case 'r':
    case 'Y': case 'y': case 'S': case 's': case 'W': case 'w':
    case 'K': case 'k': case 'M': case 'm': case 'B': case 'b':
    case 'D': case 'd': case 'H': case 'h': case 'V': case 'v':
    case '-': case '.':
      return true;
    default:
      return false;
  }
}

[[noreturn]] void fail_at(const std::string& source, std::size_t line,
                          const std::string& msg) {
  throw InputFormatError(source + ":" + std::to_string(line) + ": " + msg);
}

// Appends `line` to `seq`; returns false if the record must be skipped.
bool append_bases(Sequence& seq, const std::string& line,
                  AmbiguityPolicy policy, const std::string& source,
                  std::size_t line_no) {
  for (const char c : line) {
    if (c == '\r' || c == ' ' || c == '\t') continue;
    if (is_valid_char(c)) {
      seq.push_back(from_char(c));
    } else if (is_ambiguity_char(c)) {
      switch (policy) {
        case AmbiguityPolicy::kSkipRecord:
          return false;
        case AmbiguityPolicy::kSubstitute:
          seq.push_back(substitute_base(seq.size()));
          break;
        case AmbiguityPolicy::kThrow:
          fail_at(source, line_no,
                  std::string("ambiguous nucleotide '") + c +
                      "' rejected by policy");
      }
    } else {
      // Outside the IUPAC alphabet entirely: binary junk, digits, stray
      // '>' glued mid-line… never valid under any policy.
      const bool printable = c >= 0x20 && c < 0x7f;
      const std::string shown =
          printable ? std::string(1, c)
                    : "\\x" + std::to_string(static_cast<unsigned char>(c));
      fail_at(source, line_no,
              "invalid character '" + shown + "' in sequence data");
    }
  }
  return true;
}

}  // namespace

std::vector<Record> read_fasta(std::istream& in, AmbiguityPolicy policy,
                               const std::string& source) {
  std::vector<Record> records;
  std::string line;
  Record current;
  bool in_record = false;
  bool skip = false;
  std::size_t line_no = 0;
  std::size_t header_line = 0;   ///< line of the open record's '>'
  std::size_t data_lines = 0;    ///< sequence lines seen for the open record

  auto flush = [&] {
    // A header followed by no sequence lines at all is a truncated record
    // (policy-skipped records had data — they don't count as truncated).
    if (in_record && data_lines == 0)
      fail_at(source, header_line, "truncated record '" + current.id +
                                       "': header with no sequence");
    if (in_record && !skip && !current.seq.empty())
      records.push_back(std::move(current));
    current = Record{};
    skip = false;
    data_lines = 0;
  };

  while (std::getline(in, line)) {
    ++line_no;
    // Tolerate CRLF: strip one trailing '\r' before classifying the line.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      flush();
      in_record = true;
      header_line = line_no;
      current.id = line.substr(1);
      while (!current.id.empty() && current.id.back() == ' ')
        current.id.pop_back();
    } else if (!in_record) {
      fail_at(source, line_no, "sequence data before first '>' header");
    } else {
      ++data_lines;
      if (!skip &&
          !append_bases(current.seq, line, policy, source, line_no))
        skip = true;
    }
  }
  flush();
  if (!in_record)
    fail_at(source, line_no == 0 ? 1 : line_no,
            "no FASTA records found (empty input)");
  return records;
}

std::vector<Record> read_fasta_file(const std::string& path,
                                    AmbiguityPolicy policy) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open FASTA file: " + path);
  return read_fasta(in, policy, path);
}

std::vector<Record> read_fastq(std::istream& in, AmbiguityPolicy policy,
                               const std::string& source) {
  std::vector<Record> records;
  std::string header, bases, plus, qual;
  std::size_t line_no = 0;
  auto next = [&](std::string& out) {
    if (!std::getline(in, out)) return false;
    ++line_no;
    if (!out.empty() && out.back() == '\r') out.pop_back();
    return true;
  };
  while (next(header)) {
    if (header.empty()) continue;
    if (header[0] != '@')
      fail_at(source, line_no, "FASTQ record must start with '@'");
    const std::size_t record_line = line_no;
    if (!next(bases) || !next(plus) || !next(qual))
      fail_at(source, line_no, "truncated FASTQ record: " + header);
    if (plus.empty() || plus[0] != '+')
      fail_at(source, record_line + 2, "FASTQ separator must be '+'");
    if (qual.size() != bases.size())
      fail_at(source, record_line + 3,
              "FASTQ quality length mismatch: " + header);
    Record rec;
    rec.id = header.substr(1);
    if (append_bases(rec.seq, bases, policy, source, record_line + 1))
      records.push_back(std::move(rec));
  }
  if (line_no == 0)
    fail_at(source, 1, "no FASTQ records found (empty input)");
  return records;
}

void write_fasta(std::ostream& out, const std::vector<Record>& records,
                 std::size_t line_width) {
  PIMA_CHECK(line_width > 0, "line width must be positive");
  for (const auto& rec : records) {
    out << '>' << rec.id << '\n';
    const std::string s = rec.seq.to_string();
    for (std::size_t i = 0; i < s.size(); i += line_width)
      out << s.substr(i, line_width) << '\n';
  }
}

void write_fasta_file(const std::string& path,
                      const std::vector<Record>& records,
                      std::size_t line_width) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open FASTA file for write: " + path);
  write_fasta(out, records, line_width);
}

}  // namespace pima::dna
