// Paired-end read simulation.
//
// Scaffolding (the paper's stage 3, left as future work there) needs mate
// pairs: two reads sequenced from the ends of one DNA fragment of a known
// approximate length (the insert). We simulate the standard FR protocol:
// the first read is the fragment's 5' prefix on the forward strand, the
// second is the reverse complement of the fragment's 3' suffix.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "dna/sequence.hpp"

namespace pima::dna {

struct ReadPair {
  Sequence first;    ///< forward-strand prefix of the fragment
  Sequence second;   ///< reverse complement of the fragment's suffix
  std::size_t true_insert = 0;  ///< actual fragment length (ground truth)
};

struct PairedReadParams {
  std::size_t read_length = 101;
  double insert_mean = 500.0;   ///< fragment length mean
  double insert_sd = 30.0;      ///< fragment length standard deviation
  std::size_t pair_count = 0;   ///< if 0, derived from coverage
  double coverage = 20.0;       ///< read-base coverage when pair_count == 0
  std::uint64_t seed = 404;
};

/// Samples mate pairs from `genome` per the FR protocol.
std::vector<ReadPair> sample_read_pairs(const Sequence& genome,
                                        const PairedReadParams& params);

}  // namespace pima::dna
