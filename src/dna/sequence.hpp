// 2-bit packed DNA sequence container.
//
// Sequences are immutable-length after construction-by-append; bases are
// packed 4 per byte using the paper's T/G/A/C encoding (see base.hpp). The
// packed words are what the mapping layer writes into simulated DRAM rows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bitvector.hpp"
#include "dna/base.hpp"

namespace pima::dna {

/// Growable 2-bit packed DNA sequence.
class Sequence {
 public:
  Sequence() = default;

  /// Parses an ACGT string (throws on other characters).
  static Sequence from_string(std::string_view s);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  Base at(std::size_t i) const {
    PIMA_CHECK(i < size_, "sequence index out of range");
    const auto word = packed_[i / kBasesPerWord];
    const auto shift = 2 * (i % kBasesPerWord);
    return from_code(static_cast<std::uint8_t>((word >> shift) & 0b11u));
  }

  void push_back(Base b);
  void append(const Sequence& other);

  /// Subsequence [pos, pos+len).
  Sequence subseq(std::size_t pos, std::size_t len) const;

  /// Reverse complement of the whole sequence.
  Sequence reverse_complement() const;

  std::string to_string() const;

  /// Packs bases [pos, pos+len) into a BitVector of 2*len bits, base i at
  /// bit offset 2*i (LSB-first) — the exact row image used by the DRAM
  /// mapping layer (128 bp fill a 256-bit row).
  BitVector to_bits(std::size_t pos, std::size_t len) const;

  /// Inverse of to_bits: decodes 2*len bits starting at bit `lo`.
  static Sequence from_bits(const BitVector& bits, std::size_t lo,
                            std::size_t len);

  bool operator==(const Sequence& o) const;

 private:
  static constexpr std::size_t kBasesPerWord = 32;  // 64-bit words, 2b/base

  std::size_t size_ = 0;
  std::vector<std::uint64_t> packed_;
};

}  // namespace pima::dna
