// Minimal FASTA / FASTQ reading and writing.
//
// The paper samples reads from the NCBI chr14 FASTA; our examples and tests
// exchange data in the same formats. 'N' (and other IUPAC ambiguity codes)
// are policy-controlled: skip the record or substitute a deterministic base —
// mirroring how assemblers preprocess ambiguous calls.
//
// Parsing is hardened against malformed input: truncated records (a header
// with no sequence), sequence data before any header, empty files, and
// characters outside the IUPAC nucleotide alphabet raise InputFormatError
// with source:line context instead of crashing or silently mis-parsing.
// CRLF line endings and blank lines are tolerated everywhere.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "dna/sequence.hpp"

namespace pima::dna {

/// One FASTA/FASTQ record: id line (without '>'/'@') and the sequence.
struct Record {
  std::string id;
  Sequence seq;
};

/// What to do with IUPAC ambiguity codes (N, R, Y, …) while parsing.
/// Characters outside the IUPAC nucleotide alphabet are never subject to
/// policy — they always raise InputFormatError.
enum class AmbiguityPolicy {
  kSkipRecord,      ///< drop the whole record (assembler default for reads)
  kSubstitute,      ///< replace with a base derived from the position
  kThrow,           ///< reject the file (InputFormatError)
};

/// Parses FASTA text from a stream. Multi-line sequences are supported.
/// `source` names the stream in InputFormatError messages ("source:line").
std::vector<Record> read_fasta(std::istream& in,
                               AmbiguityPolicy policy = AmbiguityPolicy::kSkipRecord,
                               const std::string& source = "<fasta>");

/// Parses FASTA from a file path. Throws IoError if the file cannot be
/// opened, InputFormatError if it is empty or malformed.
std::vector<Record> read_fasta_file(const std::string& path,
                                    AmbiguityPolicy policy = AmbiguityPolicy::kSkipRecord);

/// Parses FASTQ text (4-line records; quality line is validated for length
/// and discarded — the simulator models error-free sampling separately).
std::vector<Record> read_fastq(std::istream& in,
                               AmbiguityPolicy policy = AmbiguityPolicy::kSkipRecord,
                               const std::string& source = "<fastq>");

/// Writes records as FASTA with the given line width.
void write_fasta(std::ostream& out, const std::vector<Record>& records,
                 std::size_t line_width = 70);

void write_fasta_file(const std::string& path,
                      const std::vector<Record>& records,
                      std::size_t line_width = 70);

}  // namespace pima::dna
