// Minimal FASTA / FASTQ reading and writing.
//
// The paper samples reads from the NCBI chr14 FASTA; our examples and tests
// exchange data in the same formats. 'N' (and other non-ACGT) characters are
// policy-controlled: skip the record or substitute a deterministic base —
// mirroring how assemblers preprocess ambiguous calls.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "dna/sequence.hpp"

namespace pima::dna {

/// One FASTA/FASTQ record: id line (without '>'/'@') and the sequence.
struct Record {
  std::string id;
  Sequence seq;
};

/// What to do with non-ACGT characters while parsing.
enum class AmbiguityPolicy {
  kSkipRecord,      ///< drop the whole record (assembler default for reads)
  kSubstitute,      ///< replace with a base derived from the position
  kThrow,           ///< reject the file
};

/// Parses FASTA text from a stream. Multi-line sequences are supported.
std::vector<Record> read_fasta(std::istream& in,
                               AmbiguityPolicy policy = AmbiguityPolicy::kSkipRecord);

/// Parses FASTA from a file path.
std::vector<Record> read_fasta_file(const std::string& path,
                                    AmbiguityPolicy policy = AmbiguityPolicy::kSkipRecord);

/// Parses FASTQ text (4-line records; quality line is validated for length
/// and discarded — the simulator models error-free sampling separately).
std::vector<Record> read_fastq(std::istream& in,
                               AmbiguityPolicy policy = AmbiguityPolicy::kSkipRecord);

/// Writes records as FASTA with the given line width.
void write_fasta(std::ostream& out, const std::vector<Record>& records,
                 std::size_t line_width = 70);

void write_fasta_file(const std::string& path,
                      const std::vector<Record>& records,
                      std::size_t line_width = 70);

}  // namespace pima::dna
