// DNA base alphabet and the 2-bit binary encoding used by PIM-Assembler.
//
// The paper (Fig. 7) encodes bases as: T=00, G=01, A=10, C=11. We keep that
// exact encoding so that the bit patterns stored in the simulated DRAM rows
// match the paper's mapping figure, and so that complementarity is a bitwise
// NOT (A=10 ↔ T=00? no — see complement()).
#pragma once

#include <cstdint>

#include "common/error.hpp"

namespace pima::dna {

/// The four DNA bases with the paper's 2-bit code as the underlying value.
enum class Base : std::uint8_t { T = 0b00, G = 0b01, A = 0b10, C = 0b11 };

/// 2-bit code of a base (T=00, G=01, A=10, C=11 — paper Fig. 7).
constexpr std::uint8_t to_code(Base b) { return static_cast<std::uint8_t>(b); }

/// Base from a 2-bit code. Codes 0..3 are all valid.
constexpr Base from_code(std::uint8_t code) {
  return static_cast<Base>(code & 0b11u);
}

/// Base from an ASCII character (accepts lower/upper case). Throws on
/// non-ACGT characters; callers handling 'N's must filter first.
constexpr Base from_char(char c) {
  switch (c) {
    case 'A': case 'a': return Base::A;
    case 'C': case 'c': return Base::C;
    case 'G': case 'g': return Base::G;
    case 'T': case 't': return Base::T;
    default:
      throw PreconditionError("invalid DNA character");
  }
}

constexpr char to_char(Base b) {
  switch (b) {
    case Base::A: return 'A';
    case Base::C: return 'C';
    case Base::G: return 'G';
    case Base::T: return 'T';
  }
  return '?';
}

/// Watson–Crick complement (A↔T, C↔G). With this encoding the complement is
/// code XOR 0b10: T(00)↔A(10), G(01)↔C(11).
constexpr Base complement(Base b) {
  return from_code(static_cast<std::uint8_t>(to_code(b) ^ 0b10u));
}

/// True for A/C/G/T (upper or lower case).
constexpr bool is_valid_char(char c) {
  switch (c) {
    case 'A': case 'a': case 'C': case 'c':
    case 'G': case 'g': case 'T': case 't':
      return true;
    default:
      return false;
  }
}

}  // namespace pima::dna
