#include "dna/sequence.hpp"

namespace pima::dna {

Sequence Sequence::from_string(std::string_view s) {
  Sequence seq;
  seq.packed_.reserve((s.size() + kBasesPerWord - 1) / kBasesPerWord);
  for (const char c : s) seq.push_back(from_char(c));
  return seq;
}

void Sequence::push_back(Base b) {
  const std::size_t word = size_ / kBasesPerWord;
  const std::size_t shift = 2 * (size_ % kBasesPerWord);
  if (word == packed_.size()) packed_.push_back(0);
  packed_[word] |= static_cast<std::uint64_t>(to_code(b)) << shift;
  ++size_;
}

void Sequence::append(const Sequence& other) {
  for (std::size_t i = 0; i < other.size(); ++i) push_back(other.at(i));
}

Sequence Sequence::subseq(std::size_t pos, std::size_t len) const {
  PIMA_CHECK(pos + len <= size_, "subseq out of range");
  Sequence out;
  out.packed_.reserve((len + kBasesPerWord - 1) / kBasesPerWord);
  for (std::size_t i = 0; i < len; ++i) out.push_back(at(pos + i));
  return out;
}

Sequence Sequence::reverse_complement() const {
  Sequence out;
  out.packed_.reserve(packed_.size());
  for (std::size_t i = size_; i > 0; --i) out.push_back(complement(at(i - 1)));
  return out;
}

std::string Sequence::to_string() const {
  std::string s(size_, '?');
  for (std::size_t i = 0; i < size_; ++i) s[i] = to_char(at(i));
  return s;
}

BitVector Sequence::to_bits(std::size_t pos, std::size_t len) const {
  PIMA_CHECK(pos + len <= size_, "to_bits range out of sequence");
  BitVector bits(2 * len);
  for (std::size_t i = 0; i < len; ++i) {
    const auto code = to_code(at(pos + i));
    bits.set(2 * i, (code & 0b01u) != 0);
    bits.set(2 * i + 1, (code & 0b10u) != 0);
  }
  return bits;
}

Sequence Sequence::from_bits(const BitVector& bits, std::size_t lo,
                             std::size_t len) {
  PIMA_CHECK(lo + 2 * len <= bits.size(), "from_bits range out of vector");
  Sequence seq;
  for (std::size_t i = 0; i < len; ++i) {
    const auto b0 = static_cast<std::uint8_t>(bits.get(lo + 2 * i) ? 1 : 0);
    const auto b1 =
        static_cast<std::uint8_t>(bits.get(lo + 2 * i + 1) ? 1 : 0);
    seq.push_back(from_code(static_cast<std::uint8_t>(b0 | (b1 << 1))));
  }
  return seq;
}

bool Sequence::operator==(const Sequence& o) const {
  if (size_ != o.size_) return false;
  for (std::size_t i = 0; i < size_; ++i)
    if (at(i) != o.at(i)) return false;
  return true;
}

}  // namespace pima::dna
