#include "dram/device.hpp"

#include <algorithm>

#include "common/units.hpp"

namespace pima::dram {

double DeviceStats::dynamic_power_w() const {
  return power_watts(energy_pj, time_ns);
}

DeviceStats& DeviceStats::operator+=(const DeviceStats& o) {
  time_ns += o.time_ns;
  serial_ns += o.serial_ns;
  energy_pj += o.energy_pj;
  commands += o.commands;
  subarrays_used = std::max(subarrays_used, o.subarrays_used);
  return *this;
}

Device::Device(const Geometry& geometry, const circuit::Technology& tech)
    : geom_(geometry), tech_(tech) {
  geom_.validate();
  subarrays_.resize(geom_.total_subarrays());
}

Subarray& Device::subarray(const SubarrayId& id) {
  return subarray(flat_index(geom_, id));
}

Subarray& Device::subarray(std::size_t flat) {
  PIMA_CHECK(flat < subarrays_.size(), "sub-array index out of device");
  if (!subarrays_[flat]) {
    subarrays_[flat] = std::make_unique<Subarray>(geom_, tech_);
    if (fault_model_ != nullptr)
      subarrays_[flat]->attach_fault_injector(
          std::make_shared<FaultInjector>(fault_model_, flat, geom_));
    if (tracing_) {
      traces_[flat] = std::make_unique<TraceSink>();
      subarrays_[flat]->attach_trace(traces_[flat].get());
    }
  }
  return *subarrays_[flat];
}

const Subarray* Device::subarray_if(std::size_t flat) const {
  PIMA_CHECK(flat < subarrays_.size(), "sub-array index out of device");
  return subarrays_[flat].get();
}

std::size_t Device::instantiated_count() const {
  return static_cast<std::size_t>(
      std::count_if(subarrays_.begin(), subarrays_.end(),
                    [](const auto& p) { return p != nullptr; }));
}

DeviceStats Device::roll_up() const {
  DeviceStats s{};
  for (const auto& sa : subarrays_) {
    if (!sa) continue;
    const auto& st = sa->stats();
    if (st.total_commands() == 0) continue;
    ++s.subarrays_used;
    s.time_ns = std::max(s.time_ns, st.busy_ns);
    s.serial_ns += st.busy_ns;
    s.energy_pj += st.energy_pj;
    s.commands += st.total_commands();
  }
  return s;
}

CommandStats Device::command_roll_up() const {
  CommandStats total{};
  for (const auto& sa : subarrays_)
    if (sa) total.merge_serial(sa->stats());
  return total;
}

void Device::clear_stats() {
  for (const auto& sa : subarrays_)
    if (sa) sa->clear_stats();
}

void Device::enable_faults(const FaultConfig& config) {
  if (!config.enabled()) {
    fault_model_ = nullptr;
    for (const auto& sa : subarrays_)
      if (sa) sa->attach_fault_injector(nullptr);
    return;
  }
  fault_model_ = std::make_shared<const FaultModel>(tech_.tech, config);
  for (std::size_t flat = 0; flat < subarrays_.size(); ++flat)
    if (subarrays_[flat])
      subarrays_[flat]->attach_fault_injector(
          std::make_shared<FaultInjector>(fault_model_, flat, geom_));
}

void Device::enable_tracing() {
  if (tracing_) return;
  tracing_ = true;
  traces_.resize(subarrays_.size());
  for (std::size_t flat = 0; flat < subarrays_.size(); ++flat) {
    if (!subarrays_[flat]) continue;
    traces_[flat] = std::make_unique<TraceSink>();
    subarrays_[flat]->attach_trace(traces_[flat].get());
  }
}

void Device::disable_tracing() {
  if (!tracing_) return;
  tracing_ = false;
  for (const auto& sa : subarrays_)
    if (sa) sa->attach_trace(nullptr);
  traces_.clear();
}

const TraceSink* Device::trace_if(std::size_t flat) const {
  PIMA_CHECK(flat < subarrays_.size(), "sub-array index out of device");
  return flat < traces_.size() ? traces_[flat].get() : nullptr;
}

InjectionCounters Device::injection_roll_up() const {
  InjectionCounters total;
  for (const auto& sa : subarrays_) {
    if (!sa || sa->fault_injector() == nullptr) continue;
    const auto& c = sa->fault_injector()->counters();
    total.compute_flips += c.compute_flips;
    total.retention_flips += c.retention_flips;
    total.faulty_ops += c.faulty_ops;
  }
  return total;
}

}  // namespace pima::dram
