// Stochastic fault model for in-array computation (paper Table I, made
// executable).
//
// The paper quantifies sensing-failure rates of the Ambit-style triple-row
// activation vs PIM-Assembler's two-row activation under ±5%…±30% process
// variation with 10,000 Spectre Monte-Carlo trials per point. This module
// turns those rates into a behavioural fault process the functional
// simulator can inject:
//
//   * FaultModel calibrates per-operation, per-column sensing-error
//     probabilities by running the same Monte-Carlo used for Table I
//     (circuit::run_variation_trials) at the configured variation level.
//     TRA errors dominate two-row errors structurally — the 3-cell charge
//     share has strictly smaller margins — and the calibrated rates carry
//     that asymmetry into the architecture layer.
//   * A small fraction of computation rows are "weak" (persistently
//     degraded cells): multi-row activations touching them fail at an
//     elevated rate. This is what the runtime's row-remapping recovery is
//     for.
//   * An optional retention process flips stored data-row cells between
//     accesses (variable-retention-time / particle-strike model).
//
// Each sub-array owns a FaultInjector with an RNG stream forked
// deterministically from (seed, flat sub-array index). Because every
// sub-array's command sequence is identical for any channel count (the
// runtime's determinism contract), the injected fault sequence — and hence
// every faulty run — is reproducible from the seed alone, serial or
// parallel.
//
// A default-constructed FaultConfig (variation = 0, retention = 0) is
// fault-free: no injector is attached and the simulator is bit-identical
// to the un-instrumented build.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "circuit/tech.hpp"
#include "common/bitvector.hpp"
#include "common/rng.hpp"
#include "dram/command.hpp"
#include "dram/geometry.hpp"

namespace pima::dram {

struct FaultConfig {
  /// Process-variation level as a fraction (0.10 = ±10%). 0 disables
  /// sensing faults.
  double variation = 0.0;
  /// Master seed of every fault stream; echoed by the CLI so any faulty
  /// run can be reproduced exactly.
  std::uint64_t seed = 2020;
  /// Monte-Carlo trials used to calibrate the per-op error rates from the
  /// Table I model (more trials = tighter rate estimate).
  std::size_t calibration_trials = 4000;
  /// Probability per executed command of one retention flip in a stored
  /// data-row cell. 0 disables the retention process.
  double retention_flip_per_op = 0.0;
  /// Fraction of computation rows that are persistently weak.
  double weak_row_fraction = 0.0;
  /// Error-rate multiplier for activations touching a weak row.
  double weak_row_multiplier = 50.0;
  /// Global rate scale (accelerated-test knob for experiments; 1 = as
  /// calibrated).
  double rate_multiplier = 1.0;

  bool enabled() const {
    return variation > 0.0 || retention_flip_per_op > 0.0;
  }
};

/// Immutable per-device fault-rate table, calibrated once from the
/// Monte-Carlo variation model and shared by every sub-array's injector.
class FaultModel {
 public:
  FaultModel(const circuit::TechParams& tech, const FaultConfig& config);

  const FaultConfig& config() const { return config_; }

  /// Per-column probability that one execution of `k` senses the wrong
  /// value (0 for commands with no multi-row activation).
  double column_error(CommandKind k) const;

  double tra_column_error() const { return tra_rate_; }
  double two_row_column_error() const { return two_row_rate_; }

 private:
  FaultConfig config_;
  double tra_rate_ = 0.0;      ///< per column, per TRA
  double two_row_rate_ = 0.0;  ///< per column, per 2-row activation
};

/// Counters of what an injector actually did (ground truth for the
/// recovery layer's detection accounting).
struct InjectionCounters {
  std::size_t compute_flips = 0;    ///< corrupted result columns
  std::size_t retention_flips = 0;  ///< decayed stored cells
  std::size_t faulty_ops = 0;       ///< ops with >= 1 corrupted column

  std::size_t total_flips() const { return compute_flips + retention_flips; }
};

/// Per-sub-array fault process. Owned by the sub-array; the RNG stream is
/// forked from (config.seed, subarray_flat) so the sequence of injected
/// faults depends only on the sub-array's own command sequence.
class FaultInjector {
 public:
  FaultInjector(std::shared_ptr<const FaultModel> model,
                std::size_t subarray_flat, const Geometry& geometry);

  /// Corrupts the sensed result of a multi-row activation in place.
  /// `activated` are the activated row addresses (weak rows raise the
  /// rate). Returns the number of flipped columns.
  std::size_t corrupt_activation(CommandKind kind,
                                 std::initializer_list<RowAddr> activated,
                                 BitVector& result);

  /// One retention tick (called per executed command): with probability
  /// config.retention_flip_per_op picks a stored data-row cell to flip.
  /// Returns the target, or nothing this tick.
  struct CellAddr {
    RowAddr row;
    std::size_t col;
  };
  std::optional<CellAddr> retention_target();

  bool is_weak_row(RowAddr r) const;
  const InjectionCounters& counters() const { return counters_; }
  const FaultModel& model() const { return *model_; }

 private:
  std::shared_ptr<const FaultModel> model_;
  Geometry geom_;
  Rng rng_;
  std::vector<bool> weak_compute_rows_;  ///< indexed by compute-row offset
  InjectionCounters counters_;
};

}  // namespace pima::dram
