// Device-level controller: a collection of computational sub-arrays with
// parallelism-aware time/energy roll-up (paper Fig. 1a Ctrl).
//
// Sub-arrays compute independently — that is the whole point of the
// platform — so device time is the maximum of the per-sub-array busy times
// of the sub-arrays that participated, while device energy is the sum.
// Sub-arrays are instantiated lazily: a full device has 2048 sub-arrays but
// a given workload usually touches a few.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "circuit/tech.hpp"
#include "dram/geometry.hpp"
#include "dram/subarray.hpp"

namespace pima::dram {

/// Rolled-up execution statistics of a device (or a kernel run on it).
struct DeviceStats {
  double time_ns = 0.0;      ///< critical path: max busy time over sub-arrays
  double serial_ns = 0.0;    ///< sum of busy times (1-sub-array equivalent)
  double energy_pj = 0.0;
  std::size_t commands = 0;
  std::size_t subarrays_used = 0;

  /// Average dynamic power in watts over the rolled-up interval.
  double dynamic_power_w() const;

  /// Serial composition: phases executed back to back. Times and energy
  /// add; the sub-array footprint is the widest phase.
  DeviceStats& operator+=(const DeviceStats& o);

  bool operator==(const DeviceStats&) const = default;
};

inline DeviceStats operator+(DeviceStats a, const DeviceStats& b) {
  a += b;
  return a;
}

class Device {
 public:
  explicit Device(const Geometry& geometry,
                  const circuit::Technology& tech =
                      circuit::default_technology());

  const Geometry& geometry() const { return geom_; }
  const circuit::Technology& technology() const { return tech_; }

  /// Sub-array handle (created on first touch).
  Subarray& subarray(const SubarrayId& id);
  Subarray& subarray(std::size_t flat);

  /// Read-only handle if the sub-array has been instantiated, else null.
  const Subarray* subarray_if(std::size_t flat) const;

  std::size_t instantiated_count() const;

  /// Rolls up stats over all instantiated sub-arrays.
  DeviceStats roll_up() const;

  /// Folds every instantiated sub-array's CommandStats in flat-index order
  /// (serial merge). Feed through breakdown_from_stats() for the per-kind
  /// energy/latency split — telemetry exports derive from this so they can
  /// never drift from the Fig. 9-style tables.
  CommandStats command_roll_up() const;

  /// Clears every sub-array's command statistics (contents preserved).
  void clear_stats();

  /// Enables Table-I-driven fault injection: calibrates a FaultModel at
  /// `config.variation` and attaches a deterministic per-sub-array
  /// injector to every instantiated and future sub-array. A disabled
  /// config (all rates zero) detaches the process again.
  void enable_faults(const FaultConfig& config);

  /// The active fault model, or null when fault-free.
  const FaultModel* fault_model() const { return fault_model_.get(); }

  /// Sum of every sub-array's injection counters, folded in flat-index
  /// order (deterministic ground truth for recovery accounting).
  InjectionCounters injection_roll_up() const;

  /// Per-sub-array command capture for oracle replay: attaches a private
  /// TraceSink to every instantiated and future sub-array. Each sink is
  /// touched only by the channel owning its sub-array, so capture is safe
  /// under the parallel runtime. isa.hpp's captured_program() turns the
  /// recorded streams back into a replayable AAP program.
  void enable_tracing();
  /// Detaches and discards every capture sink.
  void disable_tracing();
  bool tracing() const { return tracing_; }
  /// The capture sink of one sub-array, or null if never instantiated (or
  /// tracing is off).
  const TraceSink* trace_if(std::size_t flat) const;

 private:
  Geometry geom_;
  circuit::Technology tech_;
  std::vector<std::unique_ptr<Subarray>> subarrays_;
  std::shared_ptr<const FaultModel> fault_model_;
  std::vector<std::unique_ptr<TraceSink>> traces_;
  bool tracing_ = false;
};

}  // namespace pima::dram
