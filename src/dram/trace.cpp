#include "dram/trace.hpp"

#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"

namespace pima::dram {

std::string TraceSink::to_csv() const {
  // Column order is part of the format (kCsvHeader); floats are rendered at
  // fixed %.6f so the export is byte-stable across ostream state and
  // locale, and parse_csv can round-trip it exactly at ns/fJ granularity.
  std::ostringstream out;
  out << kCsvHeader << '\n';
  char num[3 * 32];
  for (const auto& e : entries_) {
    std::snprintf(num, sizeof num, "%.6f,%.6f,%.6f", e.start_ns, e.latency_ns,
                  e.energy_pj);
    out << to_string(e.kind) << ',' << e.row_a << ',' << e.row_b << ','
        << e.row_c << ',' << e.dst << ',' << num << '\n';
  }
  return out.str();
}

std::vector<TraceEntry> TraceSink::parse_csv(const std::string& csv) {
  // Malformed input is a data error (InputFormatError), not a caller bug:
  // the CSV typically comes from disk, not from this process.
  std::istringstream in(csv);
  std::string line;
  if (!std::getline(in, line) || line != kCsvHeader)
    throw InputFormatError("trace CSV header mismatch");
  std::vector<TraceEntry> entries;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto comma = line.find(',');
    if (comma == std::string::npos)
      throw InputFormatError("malformed trace CSV row: " + line);
    const std::string kind_name = line.substr(0, comma);
    TraceEntry e;
    bool known = false;
    for (std::size_t k = 0; k < kCommandKindCount; ++k) {
      if (kind_name == to_string(static_cast<CommandKind>(k))) {
        e.kind = static_cast<CommandKind>(k);
        known = true;
        break;
      }
    }
    if (!known)
      throw InputFormatError("unknown command kind in trace CSV: " +
                             kind_name);
    unsigned long row_a = 0, row_b = 0, row_c = 0, dst = 0;
    double start_ns = 0.0, latency_ns = 0.0, energy_pj = 0.0;
    const int got =
        std::sscanf(line.c_str() + comma + 1, "%lu,%lu,%lu,%lu,%lf,%lf,%lf",
                    &row_a, &row_b, &row_c, &dst, &start_ns, &latency_ns,
                    &energy_pj);
    if (got != 7) throw InputFormatError("malformed trace CSV row: " + line);
    e.row_a = row_a;
    e.row_b = row_b;
    e.row_c = row_c;
    e.dst = dst;
    e.start_ns = start_ns;
    e.latency_ns = latency_ns;
    e.energy_pj = energy_pj;
    entries.push_back(std::move(e));
  }
  return entries;
}

std::string EnergyBreakdown::render(const std::string& title) const {
  TextTable table(title);
  table.set_header({"command", "count", "time (ns)", "energy (pJ)",
                    "energy share"});
  for (const auto& row : rows) {
    const double share =
        total_energy_pj > 0.0 ? row.energy_pj / total_energy_pj : 0.0;
    table.add_row({std::string(to_string(row.kind)),
                   std::to_string(row.count), TextTable::num(row.time_ns, 5),
                   TextTable::num(row.energy_pj, 5),
                   TextTable::num(share * 100.0, 3) + "%"});
  }
  table.add_row({"total", "", TextTable::num(total_time_ns, 5),
                 TextTable::num(total_energy_pj, 5), "100%"});
  return table.render();
}

namespace {

EnergyBreakdown finish(std::vector<EnergyBreakdown::Row> acc) {
  EnergyBreakdown b;
  for (auto& row : acc) {
    if (row.count == 0) continue;
    b.total_energy_pj += row.energy_pj;
    b.total_time_ns += row.time_ns;
    b.rows.push_back(row);
  }
  return b;
}

}  // namespace

EnergyBreakdown breakdown_from_trace(const std::vector<TraceEntry>& trace) {
  std::vector<EnergyBreakdown::Row> acc(kCommandKindCount);
  for (std::size_t k = 0; k < kCommandKindCount; ++k)
    acc[k].kind = static_cast<CommandKind>(k);
  for (const auto& e : trace) {
    auto& row = acc[static_cast<std::size_t>(e.kind)];
    ++row.count;
    row.energy_pj += e.energy_pj;
    row.time_ns += e.latency_ns;
  }
  return finish(std::move(acc));
}

EnergyBreakdown breakdown_from_stats(const CommandStats& stats,
                                     std::size_t columns,
                                     const circuit::Technology& tech) {
  std::vector<EnergyBreakdown::Row> acc(kCommandKindCount);
  for (std::size_t k = 0; k < kCommandKindCount; ++k) {
    const auto kind = static_cast<CommandKind>(k);
    acc[k].kind = kind;
    acc[k].count = stats.counts[k];
    acc[k].time_ns = static_cast<double>(stats.counts[k]) *
                     command_latency_ns(kind, tech.timing);
    acc[k].energy_pj = static_cast<double>(stats.counts[k]) *
                       command_energy_pj(kind, columns, tech.energy);
  }
  return finish(std::move(acc));
}

}  // namespace pima::dram
