#include "dram/trace.hpp"

#include <sstream>

#include "common/table.hpp"

namespace pima::dram {

std::string TraceSink::to_csv() const {
  std::ostringstream out;
  out << "kind,row_a,row_b,row_c,dst,start_ns,latency_ns,energy_pj\n";
  for (const auto& e : entries_) {
    out << to_string(e.kind) << ',' << e.row_a << ',' << e.row_b << ','
        << e.row_c << ',' << e.dst << ',' << e.start_ns << ','
        << e.latency_ns << ',' << e.energy_pj << '\n';
  }
  return out.str();
}

std::string EnergyBreakdown::render(const std::string& title) const {
  TextTable table(title);
  table.set_header({"command", "count", "time (ns)", "energy (pJ)",
                    "energy share"});
  for (const auto& row : rows) {
    const double share =
        total_energy_pj > 0.0 ? row.energy_pj / total_energy_pj : 0.0;
    table.add_row({std::string(to_string(row.kind)),
                   std::to_string(row.count), TextTable::num(row.time_ns, 5),
                   TextTable::num(row.energy_pj, 5),
                   TextTable::num(share * 100.0, 3) + "%"});
  }
  table.add_row({"total", "", TextTable::num(total_time_ns, 5),
                 TextTable::num(total_energy_pj, 5), "100%"});
  return table.render();
}

namespace {

EnergyBreakdown finish(std::vector<EnergyBreakdown::Row> acc) {
  EnergyBreakdown b;
  for (auto& row : acc) {
    if (row.count == 0) continue;
    b.total_energy_pj += row.energy_pj;
    b.total_time_ns += row.time_ns;
    b.rows.push_back(row);
  }
  return b;
}

}  // namespace

EnergyBreakdown breakdown_from_trace(const std::vector<TraceEntry>& trace) {
  std::vector<EnergyBreakdown::Row> acc(kCommandKindCount);
  for (std::size_t k = 0; k < kCommandKindCount; ++k)
    acc[k].kind = static_cast<CommandKind>(k);
  for (const auto& e : trace) {
    auto& row = acc[static_cast<std::size_t>(e.kind)];
    ++row.count;
    row.energy_pj += e.energy_pj;
    row.time_ns += e.latency_ns;
  }
  return finish(std::move(acc));
}

EnergyBreakdown breakdown_from_stats(const CommandStats& stats,
                                     std::size_t columns,
                                     const circuit::Technology& tech) {
  std::vector<EnergyBreakdown::Row> acc(kCommandKindCount);
  for (std::size_t k = 0; k < kCommandKindCount; ++k) {
    const auto kind = static_cast<CommandKind>(k);
    acc[k].kind = kind;
    acc[k].count = stats.counts[k];
    acc[k].time_ns = static_cast<double>(stats.counts[k]) *
                     command_latency_ns(kind, tech.timing);
    acc[k].energy_pj = static_cast<double>(stats.counts[k]) *
                       command_energy_pj(kind, columns, tech.energy);
  }
  return finish(std::move(acc));
}

}  // namespace pima::dram
