#include "dram/isa.hpp"

#include <istream>
#include <sstream>

#include "dram/dpu.hpp"

namespace pima::dram {
namespace {

struct OpcodeName {
  Opcode op;
  const char* name;
};

constexpr OpcodeName kOpcodeNames[] = {
    {Opcode::kAapCopy, "AAP_COPY"},   {Opcode::kAapXnor, "AAP2_XNOR"},
    {Opcode::kAapXor, "AAP2_XOR"},    {Opcode::kAapTra, "AAP3_TRA"},
    {Opcode::kSum, "SUM"},            {Opcode::kResetLatch, "RST_LATCH"},
    {Opcode::kRowWrite, "ROW_WRITE"}, {Opcode::kRowRead, "ROW_READ"},
    {Opcode::kDpuAnd, "DPU_AND"},     {Opcode::kDpuOr, "DPU_OR"},
    {Opcode::kDpuPopcount, "DPU_POPCOUNT"},
};

const char* name_of(Opcode op) {
  for (const auto& e : kOpcodeNames)
    if (e.op == op) return e.name;
  throw PreconditionError("unknown opcode");
}

std::optional<Opcode> opcode_of(const std::string& name) {
  for (const auto& e : kOpcodeNames)
    if (name == e.name) return e.op;
  return std::nullopt;
}

// Field sets by opcode: which operands the text format carries.
bool has_src2(Opcode op) {
  return op == Opcode::kAapXnor || op == Opcode::kAapXor ||
         op == Opcode::kAapTra || op == Opcode::kSum;
}
bool has_src3(Opcode op) { return op == Opcode::kAapTra; }
bool has_dst(Opcode op) {
  switch (op) {
    case Opcode::kAapCopy:
    case Opcode::kAapXnor:
    case Opcode::kAapXor:
    case Opcode::kAapTra:
    case Opcode::kSum:
      return true;
    default:
      return false;
  }
}
bool has_src1(Opcode op) {
  switch (op) {
    case Opcode::kResetLatch:
      return false;
    case Opcode::kRowWrite:
    case Opcode::kRowRead:
    case Opcode::kDpuAnd:
    case Opcode::kDpuOr:
    case Opcode::kDpuPopcount:
      return true;  // src1 = the addressed row
    default:
      return true;
  }
}
bool has_width(Opcode op) {
  return op == Opcode::kDpuAnd || op == Opcode::kDpuOr ||
         op == Opcode::kDpuPopcount;
}

}  // namespace

std::string to_text(const Instruction& inst) {
  std::ostringstream out;
  out << name_of(inst.op) << " sa=" << inst.subarray;
  if (has_src1(inst.op)) out << " src1=" << inst.src1;
  if (has_src2(inst.op)) out << " src2=" << inst.src2;
  if (has_src3(inst.op)) out << " src3=" << inst.src3;
  if (has_dst(inst.op)) out << " dst=" << inst.dst;
  out << " size=" << inst.size;
  if (has_width(inst.op)) out << " width=" << inst.width;
  if (inst.op == Opcode::kRowWrite) out << " data=" << inst.payload.to_string();
  return out.str();
}

std::optional<Instruction> parse_instruction(const std::string& line) {
  std::istringstream in(line);
  std::string mnemonic;
  if (!(in >> mnemonic)) return std::nullopt;   // blank line
  if (mnemonic[0] == '#') return std::nullopt;  // comment

  const auto op = opcode_of(mnemonic);
  PIMA_CHECK(op.has_value(), "unknown mnemonic: " + mnemonic);
  Instruction inst;
  inst.op = *op;

  std::string field;
  while (in >> field) {
    const auto eq = field.find('=');
    PIMA_CHECK(eq != std::string::npos, "malformed field: " + field);
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "data") {
      inst.payload = BitVector::from_string(value);
      continue;
    }
    std::size_t num = 0;
    try {
      num = std::stoul(value);
    } catch (const std::exception&) {
      throw PreconditionError("non-numeric field value: " + field);
    }
    if (key == "sa")
      inst.subarray = num;
    else if (key == "src1")
      inst.src1 = num;
    else if (key == "src2")
      inst.src2 = num;
    else if (key == "src3")
      inst.src3 = num;
    else if (key == "dst")
      inst.dst = num;
    else if (key == "size")
      inst.size = num;
    else if (key == "width")
      inst.width = num;
    else
      throw PreconditionError("unknown field: " + key);
  }
  PIMA_CHECK(inst.size >= 1, "instruction size must be >= 1");
  return inst;
}

std::string to_text(const Program& program) {
  std::string out;
  for (const auto& inst : program) out += to_text(inst) + "\n";
  return out;
}

Program parse_program(std::istream& in) {
  Program program;
  std::string line;
  while (std::getline(in, line)) {
    if (auto inst = parse_instruction(line)) program.push_back(std::move(*inst));
  }
  return program;
}

Program program_from_trace(const std::vector<TraceEntry>& entries,
                           std::size_t subarray_flat, std::size_t columns) {
  Program program;
  program.reserve(entries.size());
  for (const auto& e : entries) {
    Instruction inst;
    inst.op = e.op;
    inst.subarray = subarray_flat;
    inst.size = 1;
    switch (e.op) {
      case Opcode::kAapCopy:
        inst.src1 = e.row_a;
        inst.dst = e.dst;
        break;
      case Opcode::kAapXnor:
      case Opcode::kAapXor:
      case Opcode::kSum:
        inst.src1 = e.row_a;
        inst.src2 = e.row_b;
        inst.dst = e.dst;
        break;
      case Opcode::kAapTra:
        inst.src1 = e.row_a;
        inst.src2 = e.row_b;
        inst.src3 = e.row_c;
        inst.dst = e.dst;
        break;
      case Opcode::kResetLatch:
        break;
      case Opcode::kRowWrite:
        inst.src1 = e.row_a;
        inst.payload = e.payload;
        PIMA_CHECK(inst.payload.size() == columns,
                   "traced ROW_WRITE payload width does not match geometry");
        break;
      case Opcode::kRowRead:
        inst.src1 = e.row_a;
        break;
      case Opcode::kDpuAnd:
      case Opcode::kDpuOr:
      case Opcode::kDpuPopcount:
        // The trace records the DPU fetch, not the reduce flavour/width;
        // a full-width popcount reproduces the command cost and (like any
        // reduce) leaves the row state untouched.
        inst.op = Opcode::kDpuPopcount;
        inst.src1 = e.row_a;
        inst.width = columns;
        break;
    }
    program.push_back(std::move(inst));
  }
  return program;
}

Program captured_program(const Device& device) {
  PIMA_CHECK(device.tracing(), "device is not capturing a trace");
  Program program;
  const std::size_t total = device.geometry().total_subarrays();
  for (std::size_t flat = 0; flat < total; ++flat) {
    const TraceSink* sink = device.trace_if(flat);
    if (sink == nullptr || sink->entries().empty()) continue;
    Program part = program_from_trace(sink->entries(), flat,
                                      device.geometry().columns);
    program.insert(program.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
  }
  return program;
}

ExecutionResults execute(Device& device, const Program& program) {
  ExecutionResults results;
  for (const auto& inst : program) {
    Subarray& sa = device.subarray(inst.subarray);
    // Multi-row activations destroy their operand rows, so a bulk op over
    // size > 1 rows is not expressible as one instruction — the controller
    // re-stages operands between ops (that is what the kernels do).
    PIMA_CHECK(inst.size == 1 || inst.op == Opcode::kAapCopy ||
                   inst.op == Opcode::kRowWrite ||
                   inst.op == Opcode::kRowRead ||
                   inst.op == Opcode::kDpuAnd || inst.op == Opcode::kDpuOr ||
                   inst.op == Opcode::kDpuPopcount,
               "multi-row size only valid on copy/read/write/reduce");
    for (std::size_t r = 0; r < inst.size; ++r) {
      switch (inst.op) {
        case Opcode::kAapCopy:
          sa.aap_copy(inst.src1 + r, inst.dst + r);
          break;
        case Opcode::kAapXnor:
          sa.aap_xnor(inst.src1, inst.src2, inst.dst + r);
          break;
        case Opcode::kAapXor:
          sa.aap_xor(inst.src1, inst.src2, inst.dst + r);
          break;
        case Opcode::kAapTra:
          sa.aap_tra_carry(inst.src1, inst.src2, inst.src3, inst.dst + r);
          break;
        case Opcode::kSum:
          sa.sum_cycle(inst.src1, inst.src2, inst.dst + r);
          break;
        case Opcode::kResetLatch:
          sa.reset_latch();
          break;
        case Opcode::kRowWrite: {
          PIMA_CHECK(inst.payload.size() == sa.geometry().columns,
                     "ROW_WRITE payload width mismatch");
          sa.write_row(inst.src1 + r, inst.payload);
          break;
        }
        case Opcode::kRowRead:
          results.rows_read.push_back(sa.read_row(inst.src1 + r));
          break;
        case Opcode::kDpuAnd:
          results.reductions.push_back(
              Dpu::and_reduce(sa, inst.src1 + r, inst.width));
          break;
        case Opcode::kDpuOr:
          results.reductions.push_back(
              Dpu::or_reduce(sa, inst.src1 + r, inst.width));
          break;
        case Opcode::kDpuPopcount:
          results.popcounts.push_back(
              Dpu::popcount(sa, inst.src1 + r, inst.width));
          break;
      }
    }
  }
  return results;
}

}  // namespace pima::dram
