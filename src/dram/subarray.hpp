// Bit-accurate functional model of one computational sub-array
// (paper Fig. 1b / Fig. 2a).
//
// The sub-array stores real row contents (one BitVector per row) and
// executes the PIM command set with the exact electrical side effects of
// the mechanisms it models:
//   * AAP copy (RowClone): destination row ← source row.
//   * Two-row activation: both activated computation rows are destroyed by
//     charge sharing and restored to the result the SA drives on the
//     bit-lines (XNOR2 or XOR2, per MUX configuration); the result is also
//     written to a destination row within the same AAP.
//   * TRA: the three activated rows are overwritten with MAJ3 (Ambit
//     semantics), the per-column carry latch captures MAJ3, destination
//     row ← MAJ3.
//   * Sum cycle: two-row activation whose SA XOR gate combines the fresh
//     XOR2 with the latched carry; activated rows and destination get the
//     sum bits.
// Multi-row activation is only legal on computation rows (x1..x8) — the
// modified row decoder enforces this — while AAP copies may address any row.
//
// Every operation records its latency and energy into CommandStats.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "circuit/tech.hpp"
#include "common/bitvector.hpp"
#include "dram/command.hpp"
#include "dram/fault.hpp"
#include "dram/geometry.hpp"
#include "dram/trace.hpp"

namespace pima::dram {

class Subarray {
 public:
  Subarray(const Geometry& geometry, const circuit::Technology& tech);

  const Geometry& geometry() const { return geom_; }

  /// Address of computation row x{i+1}, i in [0, compute_rows).
  RowAddr compute_row(std::size_t i) const;
  bool is_compute_row(RowAddr r) const;

  /// Host-side row access through the row buffer (costed as ROW_READ/WRITE).
  const BitVector& read_row(RowAddr r);
  void write_row(RowAddr r, const BitVector& bits);

  /// Zero-cost inspection for tests/verification (no commands recorded).
  const BitVector& peek_row(RowAddr r) const;
  const BitVector& peek_latch() const { return latch_; }

  /// Fault injection for reliability experiments: flips one stored cell in
  /// place without issuing a command (models a retention failure or
  /// particle strike between accesses). Works on data and computation rows
  /// alike — a flip in x1..x8 corrupts staged operands exactly like a weak
  /// compute cell would.
  void inject_bit_flip(RowAddr r, std::size_t col);

  /// Flips one bit of the per-column carry latch (Fig. 2a latch upset);
  /// consumed by the next sum cycle. Zero-cost like inject_bit_flip.
  void inject_latch_flip(std::size_t col);

  /// Attaches the stochastic fault process (nullptr = fault-free). The
  /// injector corrupts multi-row activation results per its calibrated
  /// Table-I rates and drives the retention-flip process.
  void attach_fault_injector(std::shared_ptr<FaultInjector> injector) {
    fault_ = std::move(injector);
  }
  const FaultInjector* fault_injector() const { return fault_.get(); }

  /// Models idle time on this sub-array's command stream (retry backoff):
  /// advances the busy clock without issuing a command or spending dynamic
  /// energy.
  void wait_ns(double ns) { stats_.busy_ns += ns; }

  // ---- PIM primitives (each is one costed command) ----

  /// Type-1 AAP: RowClone copy src → dst. src == dst is rejected: the AAP
  /// would activate the same row twice, which is electrically a plain
  /// refresh, and silently accepting it hides controller bugs (the fuzzer
  /// found the aliased form diverging from its intended semantics).
  void aap_copy(RowAddr src, RowAddr dst);

  /// Type-2 AAP: two-row activation of computation rows xa, xb; the SA MUX
  /// drives XNOR2 onto the bit-lines. xa, xb and dst all end up holding the
  /// XNOR2 result.
  void aap_xnor(RowAddr xa, RowAddr xb, RowAddr dst);

  /// Same mechanism with the MUX selecting the complementary output (XOR2).
  void aap_xor(RowAddr xa, RowAddr xb, RowAddr dst);

  /// Type-3 AAP: TRA majority of computation rows xa, xb, xc. All three
  /// rows, the destination, and the per-column carry latch get MAJ3.
  void aap_tra_carry(RowAddr xa, RowAddr xb, RowAddr xc, RowAddr dst);

  /// Sum cycle: two-row activation of xa, xb combined with the latched
  /// carry: dst ← xa ⊕ xb ⊕ latch (per column). xa, xb also get the sum.
  /// The latch is preserved (it is consumed by the XOR gate, not cleared).
  void sum_cycle(RowAddr xa, RowAddr xb, RowAddr dst);

  /// Clears the carry latch (Rst signal in Fig. 2a). Uncosted (the pulse
  /// rides the surrounding AAP envelope) but recorded in the trace as a
  /// LATCH_RST entry so replays reproduce the latch state exactly.
  void reset_latch();

  /// Records one DPU reduction (row read into the GRB + combinational
  /// reduce) and returns the row contents for the DPU to reduce. Used by
  /// dram::Dpu; costed as DPU_REDUCE.
  const BitVector& dpu_fetch(RowAddr r);

  // ---- Composite operations built from the primitives ----

  /// Full bit-serial vertical addition (paper Fig. 8): interprets
  /// `a_rows`/`b_rows` as m-bit operands stored LSB-first across rows
  /// (element j of each operand lives in column j), writes the m-bit sum to
  /// `sum_rows` and the final carry-out to `carry_out_row`. All row spans
  /// must have the same length m and address data rows; computation rows
  /// x1..x3 are used as scratch. Cost: per bit, 4 staging copies + 1 sum
  /// cycle + 1 TRA (the paper's "2×m cycles" counts the compute cycles).
  void add_vertical(const std::vector<RowAddr>& a_rows,
                    const std::vector<RowAddr>& b_rows,
                    const std::vector<RowAddr>& sum_rows,
                    RowAddr carry_out_row);

  /// Row-wide compare of two data rows (the PIM_XNOR building block):
  /// stages both rows into x1/x2, performs the single-cycle XNOR, and
  /// leaves the per-column match bits in `result_row`. The DPU reduces the
  /// result separately.
  void compare_rows(RowAddr a, RowAddr b, RowAddr result_row);

  const CommandStats& stats() const { return stats_; }
  void clear_stats() { stats_ = CommandStats{}; }

  /// Attaches a trace sink; every subsequent command is recorded into it
  /// (nullptr detaches). The sink must outlive the sub-array's use.
  void attach_trace(TraceSink* sink) { trace_ = sink; }

 private:
  void check_row(RowAddr r) const;
  void check_compute(RowAddr r, const char* what) const;
  void record(CommandKind k, Opcode op, RowAddr a = 0, RowAddr b = 0,
              RowAddr c = 0, RowAddr dst = 0,
              const BitVector* payload = nullptr);

  Geometry geom_;
  circuit::Technology tech_;
  std::vector<BitVector> rows_;
  BitVector latch_;       ///< per-column carry latch
  CommandStats stats_;
  TraceSink* trace_ = nullptr;
  std::shared_ptr<FaultInjector> fault_;
};

}  // namespace pima::dram
