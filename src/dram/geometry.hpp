// Physical organization of the PIM-Assembler memory (paper Fig. 1).
//
// chip → banks → MATs → computational sub-arrays. Each sub-array has 1024
// rows × 256 columns: 1016 data rows behind the regular row decoder and 8
// computation rows (x1..x8) behind the modified row decoder that supports
// multi-row activation. The paper's evaluation configuration is 1024×256
// sub-arrays, 4×4 MATs per bank, 16×16 banks per group; the bulk-throughput
// comparison (Fig. 3b) uses 8 banks of computational sub-arrays.
#pragma once

#include <cstddef>

#include "common/error.hpp"

namespace pima::dram {

/// Row address inside a sub-array: [0, data_rows) are data rows,
/// [data_rows, rows) are the computation rows x1..x8.
using RowAddr = std::size_t;

struct Geometry {
  std::size_t rows = 1024;          ///< total rows per sub-array
  std::size_t compute_rows = 8;     ///< x1..x8, multi-row-activatable
  std::size_t columns = 256;        ///< bit-lines per sub-array
  std::size_t subarrays_per_mat = 16;
  std::size_t mats_per_bank = 16;   ///< 4×4 (paper §IV setup)
  std::size_t banks = 8;            ///< computational banks in the device

  std::size_t data_rows() const { return rows - compute_rows; }
  std::size_t subarrays_per_bank() const {
    return subarrays_per_mat * mats_per_bank;
  }
  std::size_t total_subarrays() const { return subarrays_per_bank() * banks; }
  /// Bits processed by one row-wide operation.
  std::size_t row_bits() const { return columns; }

  void validate() const {
    PIMA_CHECK(rows > compute_rows, "need at least one data row");
    PIMA_CHECK(compute_rows >= 4,
               "two-row ops + TRA + carry/result rows need >= 4 compute rows");
    PIMA_CHECK(columns > 0 && subarrays_per_mat > 0 && mats_per_bank > 0 &&
                   banks > 0,
               "geometry dimensions must be positive");
  }
};

/// Address of one sub-array within the device.
struct SubarrayId {
  std::size_t bank = 0;
  std::size_t mat = 0;
  std::size_t subarray = 0;

  bool operator==(const SubarrayId&) const = default;
};

/// Flat index of a sub-array for table lookups.
inline std::size_t flat_index(const Geometry& g, const SubarrayId& id) {
  PIMA_CHECK(id.bank < g.banks && id.mat < g.mats_per_bank &&
                 id.subarray < g.subarrays_per_mat,
             "sub-array id out of geometry");
  return (id.bank * g.mats_per_bank + id.mat) * g.subarrays_per_mat +
         id.subarray;
}

}  // namespace pima::dram
