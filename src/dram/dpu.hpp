// MAT-level Digital Processing Unit (paper Fig. 1a).
//
// The DPU is the low-overhead digital block each MAT uses for the non-bulk
// scalar part of PIM kernels: after a row-wide PIM_XNOR leaves 256 match
// bits in a result row, the DPU reads that row through the global row
// buffer and reduces it — e.g. a built-in AND tree that tells the
// controller whether an entire k-mer row matched the query (paper Fig. 7).
#pragma once

#include <cstddef>

#include "circuit/tech.hpp"
#include "common/bitvector.hpp"
#include "dram/command.hpp"

namespace pima::dram {

class Subarray;

/// Reduction flavours the DPU supports.
enum class DpuReduce { kAnd, kOr, kPopcount };

/// Stateless DPU attached to a MAT: every reduce costs one DPU_REDUCE
/// command on the sub-array it reads from.
class Dpu {
 public:
  /// AND-reduction over a masked prefix of the row: returns true iff the
  /// first `width` bits are all 1. With width == row size this is the
  /// full-row match test. Records the command on `sa`.
  static bool and_reduce(Subarray& sa, std::size_t row, std::size_t width);

  /// OR-reduction over the first `width` bits.
  static bool or_reduce(Subarray& sa, std::size_t row, std::size_t width);

  /// Popcount over the first `width` bits.
  static std::size_t popcount(Subarray& sa, std::size_t row,
                              std::size_t width);

  /// Popcount over the bit range [lo, lo+width) — the DPU's column mask
  /// lets kernels reduce an arbitrary field of the row.
  static std::size_t popcount_range(Subarray& sa, std::size_t row,
                                    std::size_t lo, std::size_t width);

  /// Counts 2-bit groups in [lo, lo + 2·pairs) whose BOTH bits are 1 —
  /// with XNOR match bits in the row this is the number of matching
  /// bases, so (pairs − result) is the base-level Hamming distance
  /// (pair-AND feeding the popcount tree).
  static std::size_t popcount_pairs(Subarray& sa, std::size_t row,
                                    std::size_t lo, std::size_t pairs);
};

}  // namespace pima::dram
