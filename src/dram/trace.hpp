// Command tracing and energy breakdown.
//
// A TraceSink attached to a sub-array records every command it executes
// (kind, rows, start time) — the raw material for waveform-style debugging,
// replay through the ISA layer, and the per-command-kind energy breakdown
// tables the architecture evaluation wants. Tracing is opt-in and costs
// nothing when disabled.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitvector.hpp"
#include "dram/command.hpp"
#include "dram/geometry.hpp"

namespace pima::dram {

/// One traced command. `kind` is the cost class; `op` is the replay-exact
/// opcode (kAapTwoRow is XNOR or XOR depending on the MUX — the trace keeps
/// the distinction so a recorded run can be replayed bit-exactly).
struct TraceEntry {
  CommandKind kind;
  Opcode op = Opcode::kAapCopy;  ///< replay-precise operation
  RowAddr row_a = 0;       ///< first source row (or the addressed row)
  RowAddr row_b = 0;       ///< second source (multi-row ops), else 0
  RowAddr row_c = 0;       ///< third source (TRA), else 0
  RowAddr dst = 0;         ///< destination row, else 0
  double start_ns = 0.0;   ///< sub-array-local issue time
  double latency_ns = 0.0;
  double energy_pj = 0.0;
  BitVector payload;       ///< ROW_WRITE data (empty otherwise)
};

/// Append-only trace buffer shared by the sub-arrays it is attached to.
class TraceSink {
 public:
  void record(const TraceEntry& e) { entries_.push_back(e); }

  const std::vector<TraceEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

  /// The CSV column order — part of the format contract.
  static constexpr const char* kCsvHeader =
      "kind,row_a,row_b,row_c,dst,start_ns,latency_ns,energy_pj";

  /// CSV rendering in kCsvHeader column order; floats at fixed %.6f
  /// precision, so the output is byte-stable and parse_csv() round-trips
  /// it exactly at that granularity.
  std::string to_csv() const;

  /// Parses a to_csv() rendering back into entries. The CSV does not carry
  /// `op` or `payload`, so those fields come back defaulted; everything
  /// else round-trips exactly. Throws InputFormatError on a malformed row
  /// or header.
  static std::vector<TraceEntry> parse_csv(const std::string& csv);

 private:
  std::vector<TraceEntry> entries_;
};

/// Aggregated per-command-kind totals over a trace (or a CommandStats).
struct EnergyBreakdown {
  struct Row {
    CommandKind kind;
    std::size_t count = 0;
    double energy_pj = 0.0;
    double time_ns = 0.0;
  };
  std::vector<Row> rows;   ///< one per command kind that occurred
  double total_energy_pj = 0.0;
  double total_time_ns = 0.0;

  /// Aligned text table for reports.
  std::string render(const std::string& title) const;
};

EnergyBreakdown breakdown_from_trace(const std::vector<TraceEntry>& trace);

/// Breakdown from accumulated CommandStats (no trace needed): uses the
/// technology's per-command cost model for the energy/time split.
EnergyBreakdown breakdown_from_stats(const CommandStats& stats,
                                     std::size_t columns,
                                     const circuit::Technology& tech);

}  // namespace pima::dram
