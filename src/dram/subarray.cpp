#include "dram/subarray.hpp"

#include <utility>

namespace pima::dram {

Subarray::Subarray(const Geometry& geometry, const circuit::Technology& tech)
    : geom_(geometry), tech_(tech), latch_(geometry.columns) {
  geom_.validate();
  rows_.assign(geom_.rows, BitVector(geom_.columns));
}

RowAddr Subarray::compute_row(std::size_t i) const {
  PIMA_CHECK(i < geom_.compute_rows, "compute row index out of range");
  return geom_.data_rows() + i;
}

bool Subarray::is_compute_row(RowAddr r) const {
  return r >= geom_.data_rows() && r < geom_.rows;
}

void Subarray::check_row(RowAddr r) const {
  PIMA_CHECK(r < geom_.rows, "row address out of sub-array");
}

void Subarray::check_compute(RowAddr r, const char* what) const {
  check_row(r);
  PIMA_CHECK(is_compute_row(r),
             std::string("multi-row activation outside computation rows: ") +
                 what);
}

void Subarray::record(CommandKind k, Opcode op, RowAddr a, RowAddr b,
                      RowAddr c, RowAddr dst, const BitVector* payload) {
  if (fault_ != nullptr) {
    // Retention process: one tick per executed command, occasionally
    // decaying a stored data-row cell.
    if (const auto cell = fault_->retention_target())
      rows_[cell->row].set(cell->col, !rows_[cell->row].get(cell->col));
  }
  const double latency = command_latency_ns(k, tech_.timing);
  const double energy = command_energy_pj(k, geom_.columns, tech_.energy);
  if (trace_ != nullptr) {
    TraceEntry e;
    e.kind = k;
    e.op = op;
    e.row_a = a;
    e.row_b = b;
    e.row_c = c;
    e.dst = dst;
    e.start_ns = stats_.busy_ns;
    e.latency_ns = latency;
    e.energy_pj = energy;
    if (payload != nullptr) e.payload = *payload;
    trace_->record(e);
  }
  stats_.record(k, latency, energy);
}

const BitVector& Subarray::read_row(RowAddr r) {
  check_row(r);
  record(CommandKind::kRowRead, Opcode::kRowRead, r);
  return rows_[r];
}

void Subarray::write_row(RowAddr r, const BitVector& bits) {
  check_row(r);
  PIMA_CHECK(bits.size() == geom_.columns, "row width mismatch");
  record(CommandKind::kRowWrite, Opcode::kRowWrite, r, 0, 0, 0, &bits);
  rows_[r] = bits;
}

const BitVector& Subarray::peek_row(RowAddr r) const {
  check_row(r);
  return rows_[r];
}

void Subarray::inject_bit_flip(RowAddr r, std::size_t col) {
  check_row(r);
  PIMA_CHECK(col < geom_.columns, "fault column out of row");
  rows_[r].set(col, !rows_[r].get(col));
}

void Subarray::inject_latch_flip(std::size_t col) {
  PIMA_CHECK(col < geom_.columns, "fault column out of latch");
  latch_.set(col, !latch_.get(col));
}

void Subarray::aap_copy(RowAddr src, RowAddr dst) {
  check_row(src);
  check_row(dst);
  PIMA_CHECK(src != dst,
             "AAP copy with src == des aliases the activated row; a "
             "self-copy is a refresh, not a RowClone — issue it explicitly "
             "if that is what the controller means");
  record(CommandKind::kAapCopy, Opcode::kAapCopy, src, 0, 0, dst);
  rows_[dst] = rows_[src];
}

void Subarray::aap_xnor(RowAddr xa, RowAddr xb, RowAddr dst) {
  check_compute(xa, "xnor operand a");
  check_compute(xb, "xnor operand b");
  check_row(dst);
  PIMA_CHECK(xa != xb, "two-row activation needs two distinct rows");
  record(CommandKind::kAapTwoRow, Opcode::kAapXnor, xa, xb, 0, dst);
  BitVector result = BitVector::bit_xnor(rows_[xa], rows_[xb]);
  // A sensing fault corrupts what the SA drives — every copy of the result
  // (restored operands, destination) gets the same wrong bits.
  if (fault_ != nullptr)
    fault_->corrupt_activation(CommandKind::kAapTwoRow, {xa, xb}, result);
  // Charge sharing destroys both operands; the SA restores the result.
  // dst may alias an operand row — move into it only when it is distinct,
  // or the dst store would read the just-overwritten operand.
  rows_[xa] = result;
  rows_[xb] = result;
  if (dst != xa && dst != xb) rows_[dst] = std::move(result);
}

void Subarray::aap_xor(RowAddr xa, RowAddr xb, RowAddr dst) {
  check_compute(xa, "xor operand a");
  check_compute(xb, "xor operand b");
  check_row(dst);
  PIMA_CHECK(xa != xb, "two-row activation needs two distinct rows");
  record(CommandKind::kAapTwoRow, Opcode::kAapXor, xa, xb, 0, dst);
  BitVector result = BitVector::bit_xor(rows_[xa], rows_[xb]);
  if (fault_ != nullptr)
    fault_->corrupt_activation(CommandKind::kAapTwoRow, {xa, xb}, result);
  rows_[xa] = result;
  rows_[xb] = result;
  if (dst != xa && dst != xb) rows_[dst] = std::move(result);
}

void Subarray::aap_tra_carry(RowAddr xa, RowAddr xb, RowAddr xc, RowAddr dst) {
  check_compute(xa, "tra operand a");
  check_compute(xb, "tra operand b");
  check_compute(xc, "tra operand c");
  check_row(dst);
  PIMA_CHECK(xa != xb && xb != xc && xa != xc,
             "TRA needs three distinct rows");
  record(CommandKind::kAapTra, Opcode::kAapTra, xa, xb, xc, dst);
  BitVector maj = BitVector::bit_maj3(rows_[xa], rows_[xb], rows_[xc]);
  if (fault_ != nullptr)
    fault_->corrupt_activation(CommandKind::kAapTra, {xa, xb, xc}, maj);
  rows_[xa] = maj;
  rows_[xb] = maj;
  rows_[xc] = maj;
  // add_vertical issues TRA with dst == xc, so the alias case is routine
  // production traffic, not a controller error.
  if (dst != xa && dst != xb && dst != xc) rows_[dst] = maj;
  latch_ = std::move(maj);
}

void Subarray::sum_cycle(RowAddr xa, RowAddr xb, RowAddr dst) {
  check_compute(xa, "sum operand a");
  check_compute(xb, "sum operand b");
  check_row(dst);
  PIMA_CHECK(xa != xb, "two-row activation needs two distinct rows");
  record(CommandKind::kSumCycle, Opcode::kSum, xa, xb, 0, dst);
  BitVector sum =
      BitVector::bit_xor(BitVector::bit_xor(rows_[xa], rows_[xb]), latch_);
  if (fault_ != nullptr)
    fault_->corrupt_activation(CommandKind::kSumCycle, {xa, xb}, sum);
  rows_[xa] = sum;
  rows_[xb] = sum;
  if (dst != xa && dst != xb) rows_[dst] = std::move(sum);
}

void Subarray::reset_latch() {
  // Uncosted (no CommandStats record), but replay-relevant: without the
  // LATCH_RST entry a replayed sum cycle could consume a stale carry.
  if (trace_ != nullptr) {
    TraceEntry e;
    e.kind = CommandKind::kLatchReset;
    e.op = Opcode::kResetLatch;
    e.start_ns = stats_.busy_ns;
    trace_->record(e);
  }
  latch_.fill(false);
}

const BitVector& Subarray::dpu_fetch(RowAddr r) {
  check_row(r);
  record(CommandKind::kDpuReduce, Opcode::kDpuPopcount, r);
  return rows_[r];
}

void Subarray::add_vertical(const std::vector<RowAddr>& a_rows,
                            const std::vector<RowAddr>& b_rows,
                            const std::vector<RowAddr>& sum_rows,
                            RowAddr carry_out_row) {
  const std::size_t m = a_rows.size();
  PIMA_CHECK(m > 0, "addition needs at least one bit row");
  PIMA_CHECK(b_rows.size() == m && sum_rows.size() == m,
             "operand/result row spans must have equal length");
  const RowAddr x1 = compute_row(0), x2 = compute_row(1), x3 = compute_row(2);

  // Initialize carry chain: latch ← 0, x3 ← 0 (x3 carries c_i between bits;
  // the latch carries it into the sum cycle).
  reset_latch();
  // Carry-in = 0: zero x3 via a host row write (a dedicated all-zero row
  // plus an AAP copy would be equivalent in cost).
  write_row(x3, BitVector(geom_.columns));

  for (std::size_t i = 0; i < m; ++i) {
    // Sum cycle uses the carry latched by the previous bit's TRA (c_i).
    aap_copy(a_rows[i], x1);
    aap_copy(b_rows[i], x2);
    sum_cycle(x1, x2, sum_rows[i]);
    // The sum cycle destroyed x1/x2; restage for the carry TRA. x3 holds
    // c_i from the previous TRA write-back.
    aap_copy(a_rows[i], x1);
    aap_copy(b_rows[i], x2);
    aap_tra_carry(x1, x2, x3, x3);  // latch ← c_{i+1}, x3 ← c_{i+1}
  }
  aap_copy(x3, carry_out_row);
}

void Subarray::compare_rows(RowAddr a, RowAddr b, RowAddr result_row) {
  const RowAddr x1 = compute_row(0), x2 = compute_row(1);
  aap_copy(a, x1);
  aap_copy(b, x2);
  aap_xnor(x1, x2, result_row);
}

}  // namespace pima::dram
