#include "dram/dpu.hpp"

#include "dram/subarray.hpp"

namespace pima::dram {
namespace {

// Reads the row via a costed DPU_REDUCE command and returns the prefix.
BitVector fetch_prefix(Subarray& sa, std::size_t row, std::size_t width) {
  PIMA_CHECK(width <= sa.geometry().columns, "reduce width exceeds row");
  return sa.dpu_fetch(row).slice(0, width);
}

}  // namespace

bool Dpu::and_reduce(Subarray& sa, std::size_t row, std::size_t width) {
  return fetch_prefix(sa, row, width).all();
}

bool Dpu::or_reduce(Subarray& sa, std::size_t row, std::size_t width) {
  return fetch_prefix(sa, row, width).any();
}

std::size_t Dpu::popcount(Subarray& sa, std::size_t row, std::size_t width) {
  return fetch_prefix(sa, row, width).popcount();
}

std::size_t Dpu::popcount_range(Subarray& sa, std::size_t row, std::size_t lo,
                                std::size_t width) {
  PIMA_CHECK(lo + width <= sa.geometry().columns, "reduce range exceeds row");
  return sa.dpu_fetch(row).slice(lo, width).popcount();
}

std::size_t Dpu::popcount_pairs(Subarray& sa, std::size_t row, std::size_t lo,
                                std::size_t pairs) {
  PIMA_CHECK(lo + 2 * pairs <= sa.geometry().columns,
             "pair range exceeds row");
  const BitVector& bits = sa.dpu_fetch(row);
  std::size_t n = 0;
  for (std::size_t p = 0; p < pairs; ++p)
    if (bits.get(lo + 2 * p) && bits.get(lo + 2 * p + 1)) ++n;
  return n;
}

}  // namespace pima::dram
