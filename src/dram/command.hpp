// The PIM-Assembler command set and per-command cost accounting.
//
// The platform is programmed with ACTIVATE-ACTIVATE-PRECHARGE (AAP)
// primitives (paper §II.B "Software Support"):
//   AAP(src, des)                — RowClone copy (type-1)
//   AAP(src1, src2, des)        — two-row activation op, result to des
//   AAP(src1, src2, src3, des) — Ambit TRA, result to des (type-3)
// plus ordinary row read/write through the global row buffer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "circuit/tech.hpp"

namespace pima::dram {

enum class CommandKind : std::uint8_t {
  kRowRead,       ///< ACTIVATE + column reads + PRECHARGE
  kRowWrite,      ///< ACTIVATE + column writes + PRECHARGE
  kAapCopy,       ///< type-1 AAP: RowClone src → des
  kAapTwoRow,     ///< type-2 AAP: two-row activation (XNOR2/XOR2) → des
  kAapTra,        ///< type-3 AAP: triple-row activation (MAJ3 carry) → des
  kSumCycle,      ///< two-row activation + latch XOR (sum stage) → des
  kDpuReduce,     ///< MAT-level DPU row reduction (AND/OR/popcount)
  kLatchReset,    ///< Rst pulse on the carry latch — uncosted, trace-only
};

constexpr std::string_view to_string(CommandKind k) {
  switch (k) {
    case CommandKind::kRowRead: return "ROW_READ";
    case CommandKind::kRowWrite: return "ROW_WRITE";
    case CommandKind::kAapCopy: return "AAP_COPY";
    case CommandKind::kAapTwoRow: return "AAP_2ROW";
    case CommandKind::kAapTra: return "AAP_TRA";
    case CommandKind::kSumCycle: return "SUM_CYCLE";
    case CommandKind::kDpuReduce: return "DPU_REDUCE";
    case CommandKind::kLatchReset: return "LATCH_RST";
  }
  return "?";
}

constexpr std::size_t kCommandKindCount = 8;

/// Instruction opcodes of the AAP ISA (isa.hpp gives them a text format and
/// an executor). Declared here, next to CommandKind, because the trace layer
/// records the precise opcode alongside the costed command kind: CommandKind
/// is the cost/energy class (XNOR and XOR are both kAapTwoRow) while Opcode
/// is the replay-exact operation.
enum class Opcode : std::uint8_t {
  kAapCopy,    ///< type-1: AAP(src, des, size)
  kAapXnor,    ///< type-2: AAP(src1, src2, des, size), MUX → XNOR2
  kAapXor,     ///< type-2 with the complementary MUX selection
  kAapTra,     ///< type-3: AAP(src1, src2, src3, des, size)
  kSum,        ///< sum cycle: two-row activation + latch XOR
  kResetLatch, ///< Rst on the carry latch
  kRowWrite,   ///< host row write through the GRB (data in `payload`)
  kRowRead,    ///< host row read through the GRB
  kDpuAnd,     ///< DPU AND-reduce over `width` bits of a row
  kDpuOr,      ///< DPU OR-reduce
  kDpuPopcount ///< DPU popcount
};

/// Latency of one command (ns) under the given timing parameters.
inline double command_latency_ns(CommandKind k,
                                 const circuit::TimingParams& t) {
  switch (k) {
    case CommandKind::kRowRead:
    case CommandKind::kRowWrite:
      // One row cycle incl. the column burst through the row buffer.
      return t.t_rcd_ns + t.t_cl_ns + t.t_bl_ns + t.t_rp_ns;
    case CommandKind::kAapCopy:
      return t.aap_ns();  // two back-to-back activates + precharge
    case CommandKind::kAapTwoRow:
    case CommandKind::kAapTra:
    case CommandKind::kSumCycle:
      // Multi-row activate, sense+drive result, write-back activate,
      // precharge — same envelope as an AAP.
      return t.aap_ns();
    case CommandKind::kDpuReduce:
      // Row read into the GRB plus the DPU combinational pass.
      return t.t_rcd_ns + t.t_cl_ns + t.t_bl_ns + t.t_rp_ns;
    case CommandKind::kLatchReset:
      // The Rst pulse rides the surrounding AAP envelope: no extra cycle.
      return 0.0;
  }
  return 0.0;
}

/// Energy of one command (pJ) for a row of `columns` bits.
inline double command_energy_pj(CommandKind k, std::size_t columns,
                                const circuit::EnergyParams& e) {
  const double col64 = static_cast<double>(columns) / 64.0;
  switch (k) {
    case CommandKind::kRowRead:
      return e.e_activate_pj + e.e_precharge_pj + e.e_read_col_pj * col64;
    case CommandKind::kRowWrite:
      return e.e_activate_pj + e.e_precharge_pj + e.e_write_col_pj * col64;
    case CommandKind::kAapCopy:
      return 2.0 * e.e_activate_pj + e.e_precharge_pj;
    case CommandKind::kAapTwoRow:
    case CommandKind::kSumCycle:
      return 2.0 * e.e_activate_pj + e.e_multirow_extra_pj +
             e.e_precharge_pj + e.e_sa_logic_pj;
    case CommandKind::kAapTra:
      return 2.0 * e.e_activate_pj + 2.0 * e.e_multirow_extra_pj +
             e.e_precharge_pj + e.e_sa_logic_pj;
    case CommandKind::kDpuReduce:
      return e.e_activate_pj + e.e_precharge_pj + e.e_read_col_pj * col64 +
             e.e_dpu_pj;
    case CommandKind::kLatchReset:
      return 0.0;
  }
  return 0.0;
}

/// Accumulated command statistics for one sub-array (or rolled up).
struct CommandStats {
  std::size_t counts[kCommandKindCount] = {};
  double busy_ns = 0.0;    ///< serialized time on this resource
  double energy_pj = 0.0;

  void record(CommandKind k, double latency_ns, double energy) {
    ++counts[static_cast<std::size_t>(k)];
    busy_ns += latency_ns;
    energy_pj += energy;
  }

  void merge_serial(const CommandStats& o) {
    for (std::size_t i = 0; i < kCommandKindCount; ++i)
      counts[i] += o.counts[i];
    busy_ns += o.busy_ns;
    energy_pj += o.energy_pj;
  }

  std::size_t total_commands() const {
    std::size_t n = 0;
    for (const auto c : counts) n += c;
    return n;
  }
};

}  // namespace pima::dram
