#include "dram/fault.hpp"

#include "circuit/montecarlo.hpp"
#include "common/error.hpp"

namespace pima::dram {

FaultModel::FaultModel(const circuit::TechParams& tech,
                       const FaultConfig& config)
    : config_(config) {
  PIMA_CHECK(config.variation >= 0.0 && config.variation <= 1.0,
             "variation level must be a fraction in [0,1]");
  PIMA_CHECK(config.retention_flip_per_op >= 0.0 &&
                 config.retention_flip_per_op <= 1.0,
             "retention flip probability must be in [0,1]");
  PIMA_CHECK(config.weak_row_fraction >= 0.0 &&
                 config.weak_row_fraction <= 1.0,
             "weak row fraction must be in [0,1]");
  PIMA_CHECK(config.rate_multiplier >= 0.0, "rate multiplier must be >= 0");
  if (config.variation <= 0.0) return;
  PIMA_CHECK(config.calibration_trials > 0,
             "rate calibration needs at least one Monte-Carlo trial");
  // Calibrate against the Table I Monte-Carlo: a trial is one column sense,
  // so failure_percent/100 is directly the per-column error probability of
  // one activation. Distinct sub-seeds keep the two estimates independent.
  const auto tra = circuit::run_variation_trials(
      tech, circuit::Mechanism::kTripleRowActivation, config.variation,
      config.calibration_trials, config.seed ^ 0x7ab1e001ull);
  const auto two_row = circuit::run_variation_trials(
      tech, circuit::Mechanism::kTwoRowActivation, config.variation,
      config.calibration_trials, config.seed ^ 0x7ab1e002ull);
  tra_rate_ = tra.failure_percent / 100.0 * config.rate_multiplier;
  two_row_rate_ = two_row.failure_percent / 100.0 * config.rate_multiplier;
}

double FaultModel::column_error(CommandKind k) const {
  switch (k) {
    case CommandKind::kAapTra:
      return tra_rate_;
    case CommandKind::kAapTwoRow:
    case CommandKind::kSumCycle:
      return two_row_rate_;
    default:
      return 0.0;
  }
}

FaultInjector::FaultInjector(std::shared_ptr<const FaultModel> model,
                             std::size_t subarray_flat,
                             const Geometry& geometry)
    : model_(std::move(model)),
      geom_(geometry),
      rng_(Rng(model_->config().seed).fork(subarray_flat)) {
  weak_compute_rows_.assign(geom_.compute_rows, false);
  const double f = model_->config().weak_row_fraction;
  if (f > 0.0)
    for (std::size_t i = 0; i < geom_.compute_rows; ++i)
      weak_compute_rows_[i] = rng_.bernoulli(f);
}

bool FaultInjector::is_weak_row(RowAddr r) const {
  if (r < geom_.data_rows() || r >= geom_.rows) return false;
  return weak_compute_rows_[r - geom_.data_rows()];
}

std::size_t FaultInjector::corrupt_activation(
    CommandKind kind, std::initializer_list<RowAddr> activated,
    BitVector& result) {
  double rate = model_->column_error(kind);
  if (rate <= 0.0) return 0;
  for (const RowAddr r : activated)
    if (is_weak_row(r)) {
      rate *= model_->config().weak_row_multiplier;
      break;
    }
  if (rate > 1.0) rate = 1.0;
  std::size_t flips = 0;
  for (std::size_t col = 0; col < result.size(); ++col)
    if (rng_.bernoulli(rate)) {
      result.set(col, !result.get(col));
      ++flips;
    }
  if (flips > 0) {
    counters_.compute_flips += flips;
    ++counters_.faulty_ops;
  }
  return flips;
}

std::optional<FaultInjector::CellAddr> FaultInjector::retention_target() {
  const double p = model_->config().retention_flip_per_op;
  if (p <= 0.0 || !rng_.bernoulli(p)) return std::nullopt;
  ++counters_.retention_flips;
  return CellAddr{rng_.uniform(geom_.data_rows()),
                  rng_.uniform(geom_.columns)};
}

}  // namespace pima::dram
