// The AAP instruction set (paper §II.B "Software Support").
//
// PIM-Assembler is programmed with ACTIVATE-ACTIVATE-PRECHARGE primitives;
// the paper defines three instruction types that differ only in the number
// of activated source rows:
//
//   type-1  AAP(src, des, size)               — RowClone copy
//   type-2  AAP(src1, src2, des, size)        — two-row activation (X(N)OR)
//   type-3  AAP(src1, src2, src3, des, size)  — Ambit-TRA (MAJ3 carry)
//
// plus ordinary row reads/writes, the sum cycle, DPU reductions and latch
// reset as host-visible operations. `size` is in row units: "the size of
// input vectors for in-memory computation must be a multiple of DRAM row
// size, otherwise the application must pad it with dummy data" — an
// instruction with size = n expands to n consecutive-row operations.
//
// This module gives the command stream a concrete form: an Instruction
// value type, a tiny assembler/disassembler for a human-readable text
// format, and an executor that runs programs against a dram::Device. The
// higher-level kernels drive Subarray directly for speed; the ISA layer is
// the documented contract (and lets tests replay traces).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "dram/device.hpp"

namespace pima::dram {

// Opcode itself lives in command.hpp (next to CommandKind) so the trace
// layer can record the replay-exact operation without a circular include.

/// One decoded instruction. Unused fields are zero.
struct Instruction {
  Opcode op = Opcode::kAapCopy;
  std::size_t subarray = 0;  ///< flat sub-array index
  RowAddr src1 = 0;
  RowAddr src2 = 0;
  RowAddr src3 = 0;
  RowAddr dst = 0;
  std::size_t size = 1;      ///< row count (consecutive-row expansion)
  std::size_t width = 0;     ///< DPU reduce width in bits
  BitVector payload;         ///< ROW_WRITE data (row-sized)

  bool operator==(const Instruction& o) const = default;
};

/// A program is a flat instruction sequence.
using Program = std::vector<Instruction>;

/// Renders one instruction in the text format, e.g.
///   `AAP2_XNOR sa=3 src1=1016 src2=1017 dst=42 size=1`
std::string to_text(const Instruction& inst);

/// Parses one text line (inverse of to_text). Throws PreconditionError on
/// malformed input. Blank lines and '#' comments yield std::nullopt.
std::optional<Instruction> parse_instruction(const std::string& line);

/// Serializes / parses whole programs.
std::string to_text(const Program& program);
Program parse_program(std::istream& in);

/// Result values produced by the read/reduce instructions, in program
/// order.
struct ExecutionResults {
  std::vector<BitVector> rows_read;        ///< one per ROW_READ
  std::vector<bool> reductions;            ///< one per DPU_AND / DPU_OR
  std::vector<std::size_t> popcounts;      ///< one per DPU_POPCOUNT
};

/// Executes a program against a device. Each instruction expands its
/// `size` consecutive-row repetitions. Costs accrue on the touched
/// sub-arrays exactly as if the kernels had issued the commands directly.
ExecutionResults execute(Device& device, const Program& program);

// ---- Trace replay (the oracle's capture path) ----------------------------
//
// Any production run executed with Device::enable_tracing() can be turned
// back into an ISA program and replayed — e.g. through the golden model for
// differential verification (`pima_asm pim-run --dump-trace` →
// `pima_fuzz --replay`).

/// Rebuilds a replayable single-sub-array program from a recorded trace.
/// Every entry maps 1:1 to an instruction (ROW_WRITE keeps its payload,
/// LATCH_RST round-trips, DPU reductions replay as full-width popcounts —
/// state- and cost-neutral either way).
Program program_from_trace(const std::vector<TraceEntry>& entries,
                           std::size_t subarray_flat, std::size_t columns);

/// Concatenates the replay programs of every traced sub-array in flat-index
/// order. Sub-arrays share no state, so any interleaving that preserves
/// per-sub-array order is an exact replay; flat order is the canonical one.
Program captured_program(const Device& device);

}  // namespace pima::dram
