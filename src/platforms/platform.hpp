// Analytic platform models for the paper's comparison targets.
//
// The paper compares PIM-Assembler against an Intel i7 CPU, an NVIDIA GTX
// 1080Ti GPU, HMC 2.0, Ambit, DRISA-1T1C and DRISA-3T1C on bulk bit-wise
// XNOR/addition microbenchmarks (Fig. 3b) and on the assembly application
// (Figs. 9–11). We model each platform the way the paper does:
//
//  * Von-Neumann platforms (CPU/GPU/HMC host path) are bandwidth-limited on
//    bulk bit-wise ops: every result bit forces `bytes_touched_per_result
//    byte` of traffic over the platform's effective memory bandwidth. The
//    GPU additionally pays host↔device staging over PCIe for data that
//    originates in host memory (the paper's "limited memory capacity"
//    argument).
//  * Processing-in-DRAM platforms execute row-wide operations whose cost is
//    a per-design number of AAP row cycles (e.g. Ambit needs 7 memory
//    cycles per XNOR including row initialization; PIM-Assembler needs 1
//    compute cycle plus 2 operand-staging copies). Throughput scales with
//    the number of concurrently activated sub-arrays.
//
// Per-design cycle counts and the concurrency/efficiency calibration are
// documented in presets.cpp and EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <string>

namespace pima::platforms {

/// Bulk bit-wise operations the microbenchmark exercises.
enum class BulkOp : std::uint8_t { kXnor, kAdd };

enum class PlatformKind : std::uint8_t { kVonNeumann, kProcessingInMemory };

/// One modelled platform.
struct PlatformSpec {
  std::string name;
  PlatformKind kind = PlatformKind::kVonNeumann;

  // --- Von-Neumann parameters ---
  double mem_bw_gbs = 0.0;        ///< effective memory bandwidth, GB/s
  double bw_efficiency = 1.0;     ///< achieved fraction of peak on streaming
  double staging_bw_gbs = 0.0;    ///< host↔device link (0 = data is local)
  /// Bytes moved per result byte for a two-operand bulk op (read a, read b,
  /// write r = 3 in the streaming case).
  double bytes_per_result_byte = 3.0;

  // --- PIM parameters ---
  double row_cycle_ns = 0.0;      ///< one AAP primitive (≈ 2·tRAS + tRP)
  std::size_t row_bits = 256;     ///< bits produced by one row-wide op
  std::size_t concurrent_subarrays = 0;  ///< simultaneously active sub-arrays
  double xnor_cycles = 0.0;       ///< AAP cycles per row-wide XNOR (total,
                                  ///  incl. operand staging / row init)
  double add_cycles_per_bit = 0.0;///< AAP cycles per bit of a vertical add

  // --- Power model (application-level figures) ---
  double idle_power_w = 0.0;      ///< static/background power while running
  double peak_dynamic_power_w = 0.0;  ///< dynamic power at full utilization

  /// Extra row cycles a PIM design pays per hash-probe compare beyond its
  /// X(N)OR sequence — row initialization and result readout on designs
  /// without the reconfigurable SA + MAT-DPU fast path (0 for P-A).
  double pim_aux_cycles = 0.0;

  /// Architectural utilization ceiling: the fraction of theoretical peak
  /// the platform sustains when not stalled on data (pipeline bubbles,
  /// decode/dispatch, bank conflicts). Used for the RUR figure.
  double arch_utilization = 0.6;

  // --- Application-level behaviour (Figs. 9/11) ---
  /// Fraction of wall time the platform stalls on on-/off-chip data
  /// transfer for this workload class (Memory Bottleneck Ratio baseline at
  /// k=16; the model grows it with k for bandwidth-bound platforms).
  double mbr_base = 0.0;
  /// How strongly MBR grows with k-mer length (bits moved per query grow
  /// with k on load/store platforms; PIM rows absorb the growth).
  double mbr_k_slope = 0.0;
};

/// Throughput of `op` on bulk vectors of `vector_bits` bits each, in
/// result-bits per second. `element_bits` is the operand word width for
/// addition (the paper's vectors are bit-wise XNOR and element-wise add).
double bulk_throughput_bits_per_s(const PlatformSpec& p, BulkOp op,
                                  double vector_bits,
                                  std::size_t element_bits = 32);

/// Average power (W) while running the bulk microbenchmark.
double bulk_power_w(const PlatformSpec& p, BulkOp op);

/// Time (s) to process one bulk op over `vector_bits`-bit vectors.
double bulk_time_s(const PlatformSpec& p, BulkOp op, double vector_bits,
                   std::size_t element_bits = 32);

}  // namespace pima::platforms
