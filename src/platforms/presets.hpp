// The seven evaluated platforms (paper §II.B and §IV).
//
// Each preset documents where its parameters come from (public spec sheets,
// the cited papers' mechanisms, or calibration noted in EXPERIMENTS.md).
#pragma once

#include <vector>

#include "platforms/platform.hpp"

namespace pima::platforms {

/// Intel Core i7-6700: 4C/8T, two 64-bit DDR4-1866/2133 channels.
PlatformSpec cpu_corei7();

/// NVIDIA GTX 1080Ti: 3584 CUDA cores @1.5 GHz, 352-bit GDDR5X, PCIe 3 x16.
PlatformSpec gpu_1080ti();

/// HMC 2.0: 32 vaults × 10 GB/s.
PlatformSpec hmc2();

/// Ambit (Seshadri et al., MICRO'17): TRA-based bulk ops; X(N)OR costs 7
/// memory cycles including row initialization.
PlatformSpec ambit();

/// DRISA-1T1C (Li et al., MICRO'17), "D1".
PlatformSpec drisa_1t1c();

/// DRISA-3T1C (Li et al., MICRO'17), "D3".
PlatformSpec drisa_3t1c();

/// PIM-Assembler ("P-A"): single-cycle two-row X(N)OR + 2 staging copies;
/// 2 compute cycles/bit addition + operand staging.
PlatformSpec pim_assembler();

/// All seven, in the paper's Fig. 3b order.
std::vector<PlatformSpec> all_platforms();

/// The five application-level platforms of Figs. 9–11
/// (GPU, P-A, Ambit, D3, D1 — in the paper's bar order).
std::vector<PlatformSpec> application_platforms();

}  // namespace pima::platforms
