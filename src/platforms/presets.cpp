#include "platforms/presets.hpp"

#include "circuit/tech.hpp"

namespace pima::platforms {
namespace {

double default_aap_ns() {
  return circuit::default_technology().timing.aap_ns();
}

PlatformSpec pim_base(std::string name) {
  PlatformSpec p;
  p.name = std::move(name);
  p.kind = PlatformKind::kProcessingInMemory;
  p.row_cycle_ns = default_aap_ns();
  p.row_bits = 256;
  // Identical physical memory configuration for every PIM platform (paper:
  // "an identical physical memory configuration is also considered"). The
  // concurrency level — how many sub-arrays the power/thermal budget allows
  // to activate simultaneously — is the one calibrated constant shared by
  // all PIM presets (EXPERIMENTS.md, E2).
  p.concurrent_subarrays = 512;
  return p;
}

}  // namespace

PlatformSpec cpu_corei7() {
  PlatformSpec p;
  p.name = "CPU";
  p.kind = PlatformKind::kVonNeumann;
  p.mem_bw_gbs = 34.1;      // 2 × 64-bit DDR4-2133
  p.bw_efficiency = 0.70;   // achieved streaming fraction of peak
  p.bytes_per_result_byte = 3.0;
  p.idle_power_w = 20.0;
  p.peak_dynamic_power_w = 45.0;
  p.arch_utilization = 0.50;
  p.mbr_base = 0.55;
  p.mbr_k_slope = 0.10;
  return p;
}

PlatformSpec gpu_1080ti() {
  PlatformSpec p;
  p.name = "GPU";
  p.kind = PlatformKind::kVonNeumann;
  p.mem_bw_gbs = 484.0;     // 352-bit GDDR5X
  p.bw_efficiency = 0.75;
  p.staging_bw_gbs = 15.8;  // PCIe 3.0 ×16 effective — the paper's "limited
                            // memory capacity" penalty: assembly datasets
                            // stream through host memory
  p.bytes_per_result_byte = 3.0;
  p.idle_power_w = 55.0;
  p.peak_dynamic_power_w = 195.0;
  p.arch_utilization = 0.55;
  p.mbr_base = 0.58;
  p.mbr_k_slope = 0.12;
  return p;
}

PlatformSpec hmc2() {
  PlatformSpec p;
  p.name = "HMC";
  p.kind = PlatformKind::kVonNeumann;  // logic-layer compute, vault-limited
  p.mem_bw_gbs = 320.0;     // 32 vaults × 10 GB/s
  p.bw_efficiency = 0.50;   // packetization + vault conflicts
  p.bytes_per_result_byte = 3.0;
  p.idle_power_w = 12.0;
  p.peak_dynamic_power_w = 18.0;
  p.arch_utilization = 0.58;
  p.mbr_base = 0.40;
  p.mbr_k_slope = 0.08;
  return p;
}

PlatformSpec ambit() {
  PlatformSpec p = pim_base("Ambit");
  // X(N)OR needs 7 memory cycles including row initialization (paper §I);
  // a full-adder bit from majority logic costs ≈12 cycles with staging.
  p.xnor_cycles = 7.0;
  p.add_cycles_per_bit = 12.0;
  // Row initialization before TRA-based ops plus result readout to the
  // host (no MAT-level DPU).
  p.pim_aux_cycles = 5.0;
  p.idle_power_w = 10.0;
  p.peak_dynamic_power_w = 194.0;
  p.arch_utilization = 0.65;
  p.mbr_base = 0.30;
  p.mbr_k_slope = 0.08;
  return p;
}

PlatformSpec drisa_1t1c() {
  PlatformSpec p = pim_base("DRISA-1T1C");
  // 1T1C-NOR logic: X(N)OR composed from NOR steps (≈6 row cycles total);
  // addition ≈10 cycles/bit.
  p.xnor_cycles = 6.0;
  p.add_cycles_per_bit = 10.0;
  p.pim_aux_cycles = 3.0;  // shift/latch staging, host-side reduce
  p.idle_power_w = 10.0;
  p.peak_dynamic_power_w = 220.0;
  p.arch_utilization = 0.66;
  p.mbr_base = 0.32;
  p.mbr_k_slope = 0.09;
  return p;
}

PlatformSpec drisa_3t1c() {
  PlatformSpec p = pim_base("DRISA-3T1C");
  // 3T1C cells compute NOR natively but the larger cell trades density and
  // needs more steps for X(N)OR (≈11 cycles) and addition (≈14/bit).
  p.xnor_cycles = 11.0;
  p.add_cycles_per_bit = 14.0;
  p.pim_aux_cycles = 4.0;  // inter-lane moves in the 3T1C array
  p.idle_power_w = 10.0;
  p.peak_dynamic_power_w = 260.0;
  p.arch_utilization = 0.63;
  p.mbr_base = 0.35;
  p.mbr_k_slope = 0.10;
  return p;
}

PlatformSpec pim_assembler() {
  PlatformSpec p = pim_base("P-A");
  // Single-cycle two-row X(N)OR + 2 operand-staging RowClones = 3 cycles;
  // addition: sum + TRA (2 compute cycles) + 4 staging copies = 6
  // cycles/bit (the paper's "2×m cycles" counts the compute cycles).
  p.xnor_cycles = 3.0;
  p.add_cycles_per_bit = 6.0;
  p.pim_aux_cycles = 0.0;  // reconfigurable SA + MAT DPU close the loop
  p.idle_power_w = 8.0;
  p.peak_dynamic_power_w = 50.0;
  p.arch_utilization = 0.72;
  p.mbr_base = 0.09;
  p.mbr_k_slope = 0.07;
  return p;
}

std::vector<PlatformSpec> all_platforms() {
  return {cpu_corei7(), gpu_1080ti(), hmc2(),        ambit(),
          drisa_1t1c(), drisa_3t1c(), pim_assembler()};
}

std::vector<PlatformSpec> application_platforms() {
  return {gpu_1080ti(), pim_assembler(), ambit(), drisa_3t1c(),
          drisa_1t1c()};
}

}  // namespace pima::platforms
