#include "platforms/platform.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pima::platforms {
namespace {

double von_neumann_throughput(const PlatformSpec& p) {
  PIMA_CHECK(p.mem_bw_gbs > 0.0, "von-Neumann platform needs bandwidth");
  const double mem_bits_per_s =
      p.mem_bw_gbs * 1e9 * 8.0 * p.bw_efficiency / p.bytes_per_result_byte;
  if (p.staging_bw_gbs <= 0.0) return mem_bits_per_s;
  // Operands staged over the host link (2 in, 1 out per result byte).
  const double link_bits_per_s =
      p.staging_bw_gbs * 1e9 * 8.0 / p.bytes_per_result_byte;
  return std::min(mem_bits_per_s, link_bits_per_s);
}

double pim_throughput(const PlatformSpec& p, BulkOp op,
                      std::size_t element_bits) {
  PIMA_CHECK(p.row_cycle_ns > 0.0 && p.concurrent_subarrays > 0,
             "PIM platform needs row cycle and concurrency");
  const double rows_per_s =
      static_cast<double>(p.concurrent_subarrays) / (p.row_cycle_ns * 1e-9);
  switch (op) {
    case BulkOp::kXnor:
      PIMA_CHECK(p.xnor_cycles > 0.0, "PIM platform needs XNOR cycle count");
      return rows_per_s * static_cast<double>(p.row_bits) / p.xnor_cycles;
    case BulkOp::kAdd: {
      PIMA_CHECK(p.add_cycles_per_bit > 0.0,
                 "PIM platform needs add cycle count");
      // Vertical layout: one row-op slice per operand bit; a full element
      // costs add_cycles_per_bit · element_bits row cycles and yields
      // row_bits · element_bits result bits.
      const double cycles = p.add_cycles_per_bit *
                            static_cast<double>(element_bits);
      return rows_per_s *
             static_cast<double>(p.row_bits * element_bits) / cycles;
    }
  }
  return 0.0;
}

}  // namespace

double bulk_throughput_bits_per_s(const PlatformSpec& p, BulkOp op,
                                  double vector_bits,
                                  std::size_t element_bits) {
  PIMA_CHECK(vector_bits > 0.0, "vector must be non-empty");
  if (p.kind == PlatformKind::kVonNeumann) return von_neumann_throughput(p);
  return pim_throughput(p, op, element_bits);
}

double bulk_power_w(const PlatformSpec& p, BulkOp op) {
  // Bulk streaming keeps the platform near full utilization; addition's
  // longer in-memory occupancy raises PIM dynamic power slightly.
  const double util = (p.kind == PlatformKind::kProcessingInMemory &&
                       op == BulkOp::kAdd)
                          ? 1.0
                          : 0.9;
  return p.idle_power_w + util * p.peak_dynamic_power_w;
}

double bulk_time_s(const PlatformSpec& p, BulkOp op, double vector_bits,
                   std::size_t element_bits) {
  return vector_bits / bulk_throughput_bits_per_s(p, op, vector_bits,
                                                  element_bits);
}

}  // namespace pima::platforms
