// The PIM-Assembler execution pipeline (paper Fig. 5): k-mer analysis →
// de Bruijn construction → traversal, run end-to-end on the functional DRAM
// model with per-stage time/energy roll-ups.
//
// This is the bit-accurate counterpart of the paper's behavioural
// simulator: it produces real contigs (verifiable against the reference
// genome) *and* the exact command mix each stage issued, which the
// full-scale cost model (cost_model.hpp) scales to the paper's chr14
// workload.
//
// All DRAM work is submitted through the multi-channel runtime
// (runtime::Engine): the hash shards, the graph sub-arrays and the
// partition's edge blocks are sharded over per-chip channel executors.
// `PipelineOptions::threads` picks the channel count; every output —
// contigs, graph, per-stage DeviceStats — is bit-identical for any value,
// because work routing is a pure function of the target sub-array.
// Run resilience: with PipelineOptions::checkpoint_dir set, the pipeline
// writes a versioned, checksummed snapshot (runtime/checkpoint.hpp) at
// every stage boundary — atomically, so a crash at any instant leaves a
// loadable file. `resume` skips the stages a snapshot already covers and
// provably reproduces the uninterrupted run bit-for-bit (contigs, per-stage
// DeviceStats, FaultStats) for fault-free configurations; fault-injected
// runs cannot resume because per-sub-array RNG stream positions are not
// part of the snapshot. `stall_timeout_ms` arms the engine watchdog so a
// wedged channel worker surfaces as EngineStalledError instead of hanging
// the run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "assembly/assembler.hpp"
#include "assembly/debruijn.hpp"
#include "core/pim_hash_table.hpp"
#include "dram/device.hpp"
#include "dram/fault.hpp"
#include "dram/isa.hpp"
#include "runtime/cancel.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/recovery.hpp"

namespace pima::core {

struct PipelineOptions {
  std::size_t k = 16;
  std::size_t hash_shards = 4;     ///< sub-arrays for the hash table
  std::uint32_t graph_intervals = 0;  ///< M; 0 = derived from graph size
  bool use_multiplicity = false;   ///< Euler over edge multiplicities
  bool euler_contigs = true;       ///< Euler walks vs unitigs
  assembly::TraversalAlgorithm traversal =
      assembly::TraversalAlgorithm::kHierholzer;
  /// Runtime channel executors per device. 1 = single-threaded fallback
  /// (tasks run inline on the caller, the pre-runtime behaviour); 0 = one
  /// channel per hardware thread. With devices > 1 every device gets its
  /// own engine with this many channels (total workers = devices ×
  /// threads).
  std::size_t threads = 1;
  /// Simulated devices the run is sharded over (runtime/shard.hpp). The
  /// caller's device is shard 0; the pipeline owns the rest for the run.
  /// Sub-arrays are partitioned owner = flat % devices — for the hash
  /// table that is owner = hash(canonical_kmer) % devices — and every
  /// output (contigs, per-stage DeviceStats, model-class metrics,
  /// checkpoints) is bit-identical for any value. Unlike threads, the
  /// device count IS part of the checkpoint fingerprint: a resume must use
  /// the device count the snapshot was cut under.
  std::size_t devices = 1;
  /// Per-channel command-queue capacity (backpressure bound).
  std::size_t queue_capacity = 64;
  /// Process isolation (runtime/procpool.hpp, DESIGN.md §15): run every
  /// device shard in its own `pima_devd` child process under the
  /// fault-tolerant supervisor. A crashed/wedged/chaos-killed worker is
  /// restarted from its per-device shard checkpoint and journal-replayed,
  /// so the outputs stay bit-identical to the in-process run — including
  /// runs where workers died mid-stage. When the restart budget runs out
  /// the pipeline degrades to the in-process DevicePool (isolate_opts
  /// .allow_degrade) or fails typed (WorkerCrashedError, exit 10).
  /// Incompatible with fault injection and recovery: those are simulated
  /// per-device state the init request does not carry.
  bool isolate = false;
  struct IsolateOptions {
    /// pima_devd binary; empty = $PIMA_DEVD_PATH, then alongside the
    /// running executable.
    std::string devd_path;
    /// Total worker restarts allowed before degrading/failing.
    std::size_t restart_budget = 3;
    /// Base restart backoff; doubles per consecutive restart, capped 2 s.
    double restart_backoff_ms = 50.0;
    /// Liveness deadline on worker responses/heartbeats; 0 = wait forever.
    double liveness_timeout_s = 0.0;
    /// Exhausted budget: true reruns in-process (logged, typed
    /// transition), false throws WorkerCrashedError.
    bool allow_degrade = true;
    /// PIMA_IOFAULT spec installed in the workers' environment (chaos
    /// aimed at the process boundary); empty inherits the parent's.
    std::string child_iofault;
  } isolate_opts;
  /// Stochastic fault injection (Table I calibrated). Defaults to
  /// fault-free: every output stays bit-identical to the unfaulted build.
  dram::FaultConfig fault;
  /// Verify-retry/vote recovery for the critical in-array ops. Engaged
  /// when faults are enabled or the mode is not kOff (so recovery overhead
  /// can be measured at zero fault rate).
  runtime::RecoveryOptions recovery;
  /// Captures every DRAM command the pipeline issues into per-sub-array
  /// trace sinks (Device::enable_tracing via the engine). The capture
  /// replays through dram::captured_program() — e.g. `pima_asm pim-run
  /// --dump-trace` → `pima_fuzz --replay` for oracle verification.
  bool capture_trace = false;
  /// Directory for stage-boundary snapshots. Empty disables checkpointing.
  /// The snapshot file is `<checkpoint_dir>/pipeline.ckpt`, rewritten
  /// atomically after each completed stage.
  std::string checkpoint_dir;
  /// Resume from `<checkpoint_dir>/pipeline.ckpt` if it exists: completed
  /// stages are skipped and re-seeded from the snapshot, and the run's
  /// outputs are bit-identical to the uninterrupted run. Requires
  /// checkpoint_dir; a missing snapshot file simply starts fresh. Resume is
  /// refused (SimulationError) when fault injection is enabled — the fault
  /// streams' RNG positions are not part of the snapshot.
  bool resume = false;
  /// Per-task watchdog deadline forwarded to EngineOptions::stall_timeout_ms
  /// (0 = unsupervised). A wedged channel worker surfaces as
  /// EngineStalledError instead of hanging the run.
  double stall_timeout_ms = 0.0;
  /// Periodic progress reporting on stderr (reads/s, k-mers/s, ETA, live
  /// fault counters), sampled from the telemetry registry every this many
  /// seconds. 0 disables the reporter thread.
  double progress_interval_s = 0.0;
  /// Test hook: invoked after each stage snapshot has been durably written
  /// (stage number 1..3, path of the snapshot file). The kill-and-resume
  /// crash test SIGKILLs itself from here.
  std::function<void(std::uint32_t stage, const std::string& path)>
      on_checkpoint;
  /// Cooperative cancellation (runtime/cancel.hpp). Polled per read in the
  /// k-mer stream, per program slice in construction/traversal, and at
  /// every stage boundary; a triggered token raises CancelledError on the
  /// controller thread. Checkpoints already written stay valid, so a
  /// cancelled run resumes like a crashed one. Null = not cancellable.
  const runtime::CancelToken* cancel = nullptr;
};

/// Per-stage roll-up (device stats snapshot over the stage's commands).
struct StageStats {
  dram::DeviceStats device;
  const char* name = "";
};

struct PipelineResult {
  std::vector<dna::Sequence> contigs;
  assembly::ContigStats contig_stats;
  assembly::DeBruijnGraph graph;   ///< the traversed de Bruijn graph
  StageStats hashmap;
  StageStats debruijn;
  StageStats traverse;
  std::size_t distinct_kmers = 0;
  std::size_t graph_nodes = 0;
  std::size_t graph_edges = 0;
  /// Fault-aware execution roll-up (all zero on a fault-free run with
  /// recovery off). `injected` counts raw bit flips the fault model
  /// applied; the rest count the recovery layer's responses.
  runtime::FaultStats fault_stats;
  /// With capture_trace: the replayable AAP program, merged across the
  /// device pool in logical flat order — identical for every device count
  /// (the extra pool devices die with the run, so their traces are
  /// harvested here). Empty when capture_trace is off.
  dram::Program trace;

  dram::DeviceStats total() const;
};

/// Runs the full pipeline on `device`. The device's sub-array contents and
/// stats are consumed (stats cleared per stage).
PipelineResult run_pipeline(dram::Device& device,
                            const std::vector<dna::Sequence>& reads,
                            const PipelineOptions& options);

}  // namespace pima::core
