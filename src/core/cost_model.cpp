#include "core/cost_model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pima::core {
namespace {

using platforms::PlatformKind;
using platforms::PlatformSpec;

double key_words(std::size_t k) {
  return std::ceil(static_cast<double>(2 * k) / 32.0);
}

// Platform utilization of its power envelope at this operating point.
// PIM: activation budget scales with Pd (Pd=4 ⇒ the full 512-sub-array
// budget). Von-Neumann: near-full under the streaming assembly load, with
// a mild k-dependence (wider keys keep more of the memory system busy).
double power_utilization(const PlatformSpec& p, std::size_t k, unsigned pd,
                         const CostModelParams& prm) {
  if (p.kind == PlatformKind::kProcessingInMemory)
    return static_cast<double>(pd) * prm.units_per_pd /
           static_cast<double>(p.concurrent_subarrays);
  return 0.90 + 0.05 * static_cast<double>(k >= 16 ? k - 16 : 0) / 16.0;
}

double platform_power_w(const PlatformSpec& p, std::size_t k, unsigned pd,
                        const CostModelParams& prm) {
  return p.idle_power_w +
         p.peak_dynamic_power_w * power_utilization(p, k, pd, prm);
}

// PIM stage time from a serial row-cycle count: parallel part spread over
// the active sub-arrays plus an Amdahl serial floor at Pd = 1 concurrency.
double pim_stage_time_s(double cycles, double row_cycle_ns, double units,
                        double base_units, double serial_fraction) {
  const double serial_s = cycles * row_cycle_ns * 1e-9;
  return serial_s / units + serial_fraction * serial_s / base_units;
}

}  // namespace

AppCost estimate_application(const PlatformSpec& platform,
                             const WorkloadParams& w, unsigned pd,
                             const CostModelParams& prm) {
  PIMA_CHECK(pd >= 1, "parallelism degree must be >= 1");
  PIMA_CHECK(w.read_length >= w.k, "reads shorter than k");
  AppCost cost{};

  const double nq = w.queries();
  const double d = w.distinct_kmers();
  const double hits = nq - d;
  const double e_edges = d;  // one de Bruijn edge per distinct k-mer
  const double words = key_words(w.k);

  if (platform.kind == PlatformKind::kProcessingInMemory) {
    const double rc = platform.row_cycle_ns;
    const double compare = platform.xnor_cycles + platform.pim_aux_cycles +
                           prm.dpu_cycles;

    // Stage 1: temp-row staging + probe chain per query; counter RMW on
    // hits; RowClone insert on new keys. One row compare covers the whole
    // key regardless of k — the PIM advantage that widens with k.
    const double hash_cycles = nq * (1.0 + prm.probes_per_query * compare) +
                               hits * prm.counter_rmw_cycles +
                               d * prm.insert_cycles;

    // Stage 2a: two node probes + three MEM_inserts per distinct k-mer.
    const double debruijn_cycles =
        d * (2.0 * prm.probes_per_query * compare +
             3.0 * prm.graph_insert_cycles);

    // Stage 2b: degree computation over adjacency rows (carry-save 3:2
    // compression + bit-serial adds) and one row read per walked edge.
    const double adj_rows = 2.0 * e_edges / static_cast<double>(platform.row_bits);
    const double traverse_cycles =
        e_edges * 1.0 + adj_rows * (9.0 + 3.0 * platform.add_cycles_per_bit);

    const double units = prm.units_per_pd * pd;
    const double base = prm.units_per_pd;
    const double graph_units =
        std::max(1.0, units * prm.graph_parallel_fraction);
    const double graph_base = std::max(1.0, base * prm.graph_parallel_fraction);

    cost.hashmap.time_s =
        pim_stage_time_s(hash_cycles, rc, units, base, prm.serial_fraction);
    cost.debruijn.time_s =
        pim_stage_time_s(debruijn_cycles, rc, units, base,
                         prm.serial_fraction);
    cost.traverse.time_s = pim_stage_time_s(traverse_cycles, rc, graph_units,
                                            graph_base, prm.serial_fraction);
  } else {
    // Von-Neumann (the paper's application baseline is the GPU): hash
    // probing is random-access bound and scales with the key word count;
    // graph stages pay per-operation costs of the GPU-Euler class.
    const double query_ns =
        prm.gpu_query_base_ns + prm.gpu_query_word_ns * words;
    const double graph_op_ns =
        prm.gpu_graph_op_ns * (1.0 + prm.gpu_graph_word_factor * (words - 1.0));
    cost.hashmap.time_s = nq * query_ns * 1e-9;
    cost.debruijn.time_s = 3.0 * d * graph_op_ns * 1e-9;
    cost.traverse.time_s = 1.5 * e_edges * graph_op_ns * 1e-9;
  }

  cost.total_time_s =
      cost.hashmap.time_s + cost.debruijn.time_s + cost.traverse.time_s;
  cost.avg_power_w = platform_power_w(platform, w.k, pd, prm);
  cost.hashmap.energy_j = cost.avg_power_w * cost.hashmap.time_s;
  cost.debruijn.energy_j = cost.avg_power_w * cost.debruijn.time_s;
  cost.traverse.energy_j = cost.avg_power_w * cost.traverse.time_s;

  // Memory-bottleneck ratio: workload stall profile (presets document the
  // provenance) with the paper's k-dependence; RUR is the non-stalled
  // fraction capped by the architecture's utilization ceiling.
  const double k_scale =
      static_cast<double>(w.k >= 16 ? w.k - 16 : 0) / 16.0;
  cost.mbr = platform.mbr_base + platform.mbr_k_slope * k_scale;
  cost.rur = (1.0 - cost.mbr) * platform.arch_utilization;
  return cost;
}

}  // namespace pima::core
