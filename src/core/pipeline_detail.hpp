// Shared internals of the two run_pipeline bodies (pipeline.cpp runs the
// in-process DevicePool, pipeline_isolated.cpp drives pima_devd workers
// through the process-pool supervisor). Both must agree on the checkpoint
// fingerprint and the graph partition choice, or a resume could cross the
// isolation boundary onto an incompatible run.
#pragma once

#include <vector>

#include "core/graph_map.hpp"
#include "core/pipeline.hpp"
#include "runtime/checkpoint.hpp"

namespace pima::core::detail {

/// Picks the number of vertex intervals so every interval fits the column
/// width of a sub-array row (hash distribution is near-uniform; retry with
/// more intervals if an outlier interval overflows).
GraphPartition partition_fitting(const assembly::DeBruijnGraph& g,
                                 const dram::Geometry& geom,
                                 std::uint32_t requested);

/// The run configuration the stages' command streams depend on — what a
/// snapshot pins and a resume must match. Identical for the in-process and
/// the isolated path: isolation changes where commands execute, never
/// which commands run.
runtime::CheckpointFingerprint make_fingerprint(const dram::Geometry& geom,
                                                const PipelineOptions& o);

/// The isolated pipeline body: every device shard in its own pima_devd
/// process. Throws runtime::ProcPoolDegradedError when the restart budget
/// is exhausted — run_pipeline catches it and degrades (or fails typed).
PipelineResult run_pipeline_isolated(dram::Device& device,
                                     const std::vector<dna::Sequence>& reads,
                                     const PipelineOptions& options);

}  // namespace pima::core::detail
