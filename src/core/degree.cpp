#include "core/degree.hpp"

#include <algorithm>
#include <functional>

#include "common/error.hpp"
#include "runtime/shard.hpp"

namespace pima::core {
namespace {

// Row allocator over a sub-array's data rows with recycling: carry-save
// intermediates are freed as soon as they are consumed, so the reduction
// runs in O(live numbers) rows instead of O(total intermediates).
class RowAllocator {
 public:
  explicit RowAllocator(const dram::Geometry& g) : limit_(g.data_rows()) {}

  dram::RowAddr alloc() {
    if (!free_.empty()) {
      const auto r = free_.back();
      free_.pop_back();
      return r;
    }
    PIMA_CHECK(next_ < limit_, "sub-array out of reserved rows");
    return next_++;
  }

  std::vector<dram::RowAddr> alloc_span(std::size_t n) {
    std::vector<dram::RowAddr> s(n);
    for (auto& r : s) r = alloc();
    return s;
  }

  void free(dram::RowAddr r) { free_.push_back(r); }

 private:
  dram::RowAddr next_ = 0;
  std::size_t limit_;
  std::vector<dram::RowAddr> free_;
};

// A vertical multi-bit number: row addresses LSB-first.
using Number = std::vector<dram::RowAddr>;

// XOR3 of three data rows into a fresh row: x1 ← a, x2 ← b, XOR → x1 holds
// a⊕b; x2 ← c, XOR → dst.
dram::RowAddr xor3(dram::Subarray& sa, RowAllocator& alloc, dram::RowAddr a,
                   dram::RowAddr b, dram::RowAddr c) {
  const auto x1 = sa.compute_row(0), x2 = sa.compute_row(1);
  const auto dst = alloc.alloc();
  sa.aap_copy(a, x1);
  sa.aap_copy(b, x2);
  sa.aap_xor(x1, x2, x1);  // x1 = x2 = a⊕b
  sa.aap_copy(c, x2);
  sa.aap_xor(x1, x2, dst);
  return dst;
}

// MAJ3 of three data rows into a fresh row via TRA.
dram::RowAddr maj3(dram::Subarray& sa, RowAllocator& alloc, dram::RowAddr a,
                   dram::RowAddr b, dram::RowAddr c) {
  const auto x1 = sa.compute_row(0), x2 = sa.compute_row(1),
             x3 = sa.compute_row(2);
  const auto dst = alloc.alloc();
  sa.aap_copy(a, x1);
  sa.aap_copy(b, x2);
  sa.aap_copy(c, x3);
  sa.aap_tra_carry(x1, x2, x3, dst);
  return dst;
}

// 3:2 compression of three equal-width numbers: returns {sum, carry<<1}.
std::pair<Number, Number> compress(dram::Subarray& sa, RowAllocator& alloc,
                                   dram::RowAddr zero_row, const Number& a,
                                   const Number& b, const Number& c) {
  const std::size_t w = std::max({a.size(), b.size(), c.size()});
  auto bit = [&](const Number& n, std::size_t i) {
    return i < n.size() ? n[i] : zero_row;
  };
  Number sum, carry;
  carry.push_back(zero_row);  // carry has weight 2: shift left one bit
  for (std::size_t i = 0; i < w; ++i) {
    sum.push_back(xor3(sa, alloc, bit(a, i), bit(b, i), bit(c, i)));
    carry.push_back(maj3(sa, alloc, bit(a, i), bit(b, i), bit(c, i)));
  }
  return {std::move(sum), std::move(carry)};
}

// Bit-serial addition of two numbers via Subarray::add_vertical.
Number add(dram::Subarray& sa, RowAllocator& alloc, dram::RowAddr zero_row,
           const Number& a, const Number& b) {
  const std::size_t w = std::max(a.size(), b.size());
  Number ap = a, bp = b;
  ap.resize(w, zero_row);
  bp.resize(w, zero_row);
  Number out = alloc.alloc_span(w);
  const auto carry_out = alloc.alloc();
  sa.add_vertical(ap, bp, out, carry_out);
  out.push_back(carry_out);
  return out;
}

}  // namespace

std::vector<std::uint32_t> pim_column_sums(
    dram::Subarray& sa, const std::vector<BitVector>& rows) {
  const std::size_t width = sa.geometry().columns;
  RowAllocator alloc(sa.geometry());

  // Dedicated all-zero row for padding narrower numbers.
  const auto zero_row = alloc.alloc();
  sa.write_row(zero_row, BitVector(width));

  if (rows.empty()) return std::vector<std::uint32_t>(width, 0);

  // Map the adjacency rows in (paper "mapping" stage).
  std::vector<Number> numbers;
  numbers.reserve(rows.size());
  for (const auto& r : rows) {
    PIMA_CHECK(r.size() == width, "adjacency row width mismatch");
    const auto addr = alloc.alloc();
    sa.write_row(addr, r);
    numbers.push_back(Number{addr});
  }

  // Carry-save reduction: 3 → 2 until two numbers remain. Consumed
  // operand rows are recycled immediately (the reserved-row budget of a
  // sub-array is finite).
  auto free_number = [&](const Number& n) {
    for (const auto r : n)
      if (r != zero_row) alloc.free(r);
  };
  while (numbers.size() > 2) {
    std::vector<Number> next;
    std::size_t i = 0;
    for (; i + 3 <= numbers.size(); i += 3) {
      auto [s, c] = compress(sa, alloc, zero_row, numbers[i], numbers[i + 1],
                             numbers[i + 2]);
      free_number(numbers[i]);
      free_number(numbers[i + 1]);
      free_number(numbers[i + 2]);
      next.push_back(std::move(s));
      next.push_back(std::move(c));
    }
    for (; i < numbers.size(); ++i) next.push_back(std::move(numbers[i]));
    numbers = std::move(next);
  }

  // Final bit-serial addition.
  Number result = numbers[0];
  if (numbers.size() == 2) {
    result = add(sa, alloc, zero_row, numbers[0], numbers[1]);
    free_number(numbers[0]);
    free_number(numbers[1]);
  }

  // Read the vertical result out through the row buffer.
  std::vector<std::uint32_t> sums(width, 0);
  for (std::size_t bitpos = 0; bitpos < result.size(); ++bitpos) {
    PIMA_CHECK(bitpos < 32, "degree exceeds 32-bit readout");
    const BitVector& row = sa.read_row(result[bitpos]);
    for (std::size_t c = 0; c < width; ++c)
      if (row.get(c)) sums[c] |= std::uint32_t{1} << bitpos;
  }
  return sums;
}

namespace {

// Shared body of the device- and pool-backed entry points: `resolve` maps
// a logical flat index to its sub-array, `dispatch` routes a block kernel
// to the owner (or runs it inline), `barrier` drains the runtime.
DegreeResult pim_degrees_impl(
    const dram::Geometry& geometry, const assembly::DeBruijnGraph& g,
    const GraphPartition& partition,
    const std::function<dram::Subarray&(std::size_t)>& resolve,
    const std::function<void(std::size_t, runtime::Task)>& dispatch,
    const std::function<void()>& barrier) {
  const auto width = geometry.columns;
  const auto total = geometry.total_subarrays();
  DegreeResult result;
  result.in_degree.assign(g.node_count(), 0);
  result.out_degree.assign(g.node_count(), 0);

  // Each block produces its partial column sums into its own slot; the
  // controller accumulates them in block order after the barrier so the
  // result is independent of channel interleaving.
  const auto m = partition.intervals;
  std::vector<std::vector<std::uint32_t>> in_sums(
      static_cast<std::size_t>(m) * m);
  std::vector<std::vector<std::uint32_t>> out_sums(
      static_cast<std::size_t>(m) * m);

  for (std::uint32_t i = 0; i < m; ++i) {
    for (std::uint32_t j = 0; j < m; ++j) {
      const EdgeBlock& block = partition.block(i, j);
      if (block.edges.empty()) continue;
      const auto& src_vertices = partition.interval_vertices[i];
      const auto& dst_vertices = partition.interval_vertices[j];
      PIMA_CHECK(dst_vertices.size() <= width,
                 "interval too wide for one sub-array row — increase M");
      PIMA_CHECK(src_vertices.size() <= width,
                 "interval too wide for one sub-array row — increase M");
      const std::size_t block_index = static_cast<std::size_t>(i) * m + j;

      // In-degrees: column sums of the block's adjacency rows.
      {
        const std::size_t flat = runtime::block_subarray(total, i, j, m);
        dispatch(flat, [&resolve, &block, &src_vertices, flat, width,
                        sums = &in_sums[block_index]] {
          const auto rows =
              block_adjacency_rows(block, src_vertices.size(), width);
          *sums = pim_column_sums(resolve(flat), rows);
        });
      }

      // Out-degrees: column sums of the transposed block.
      {
        const std::size_t flat = runtime::block_subarray(
            total, j, i, m, static_cast<std::size_t>(m) * m);
        dispatch(flat, [&resolve, &block, i, j, &dst_vertices, flat, width,
                        sums = &out_sums[block_index]] {
          EdgeBlock transposed;
          transposed.source_interval = j;
          transposed.dest_interval = i;
          transposed.edges.reserve(block.edges.size());
          for (const auto& e : block.edges)
            transposed.edges.push_back({e.to, e.from, e.multiplicity});
          const auto rows =
              block_adjacency_rows(transposed, dst_vertices.size(), width);
          *sums = pim_column_sums(resolve(flat), rows);
        });
      }
    }
  }
  barrier();

  for (std::uint32_t i = 0; i < m; ++i) {
    for (std::uint32_t j = 0; j < m; ++j) {
      const std::size_t block_index = static_cast<std::size_t>(i) * m + j;
      const auto& src_vertices = partition.interval_vertices[i];
      const auto& dst_vertices = partition.interval_vertices[j];
      if (!in_sums[block_index].empty()) {
        const auto& sums = in_sums[block_index];
        for (std::size_t c = 0; c < dst_vertices.size(); ++c)
          result.in_degree[dst_vertices[c]] += sums[c];
      }
      if (!out_sums[block_index].empty()) {
        const auto& sums = out_sums[block_index];
        for (std::size_t c = 0; c < src_vertices.size(); ++c)
          result.out_degree[src_vertices[c]] += sums[c];
      }
    }
  }
  return result;
}

}  // namespace

DegreeResult pim_degrees(dram::Device& device,
                         const assembly::DeBruijnGraph& g,
                         const GraphPartition& partition,
                         runtime::Engine* engine) {
  return pim_degrees_impl(
      device.geometry(), g, partition,
      [&device](std::size_t flat) -> dram::Subarray& {
        return device.subarray(flat);
      },
      [&](std::size_t flat, runtime::Task task) {
        if (engine)
          engine->submit_to_subarray(flat, std::move(task));
        else
          task();
      },
      [&] {
        if (engine) engine->drain();
      });
}

DegreeResult pim_degrees(runtime::DevicePool& pool,
                         const assembly::DeBruijnGraph& g,
                         const GraphPartition& partition,
                         runtime::PoolRunner* runner) {
  return pim_degrees_impl(
      pool.geometry(), g, partition,
      [&pool](std::size_t flat) -> dram::Subarray& {
        return pool.subarray(flat);
      },
      [&](std::size_t flat, runtime::Task task) {
        if (runner)
          runner->submit_to_subarray(flat, std::move(task));
        else
          task();
      },
      [&] {
        if (runner) runner->drain();
      });
}

}  // namespace pima::core
