#include "core/pd_optimizer.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pima::core {

std::vector<PdPoint> sweep_parallelism(const platforms::PlatformSpec& platform,
                                       const WorkloadParams& workload,
                                       const std::vector<unsigned>& pds,
                                       const CostModelParams& params) {
  PIMA_CHECK(!pds.empty(), "empty Pd sweep");
  std::vector<PdPoint> points;
  points.reserve(pds.size());
  for (const auto pd : pds) {
    const AppCost c = estimate_application(platform, workload, pd, params);
    PdPoint pt;
    pt.pd = pd;
    pt.delay_s = c.total_time_s;
    pt.power_w = c.avg_power_w;
    pt.energy_j = c.avg_power_w * c.total_time_s;
    pt.edp = pt.energy_j * pt.delay_s;
    points.push_back(pt);
  }
  return points;
}

PdPoint optimal_parallelism(const platforms::PlatformSpec& platform,
                            const WorkloadParams& workload,
                            const std::vector<unsigned>& pds,
                            const CostModelParams& params) {
  const auto points = sweep_parallelism(platform, workload, pds, params);
  return *std::min_element(points.begin(), points.end(),
                           [](const PdPoint& a, const PdPoint& b) {
                             return a.energy_j < b.energy_j;
                           });
}

}  // namespace pima::core
