#include "core/shard_worker.hpp"

#include <sstream>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "core/degree.hpp"
#include "dram/isa.hpp"
#include "telemetry/session.hpp"

namespace pima::core {

namespace {

net::Json ok_response() {
  net::Json j = net::Json::object();
  j.set("ok", true);
  return j;
}

[[noreturn]] void bad_request(const std::string& why) {
  throw InputFormatError("device worker request: " + why);
}

// Span names must be string literals (the trace ring stores pointers).
const char* verb_span_name(const std::string& op) {
  if (op == "kmers") return "devd:kmers";
  if (op == "drain") return "devd:drain";
  if (op == "extract") return "devd:extract";
  if (op == "distinct") return "devd:distinct";
  if (op == "program") return "devd:program";
  if (op == "degree_block") return "devd:degree_block";
  if (op == "stats") return "devd:stats";
  if (op == "clear_stats") return "devd:clear_stats";
  if (op == "trace") return "devd:trace";
  if (op == "telemetry") return "devd:telemetry";
  if (op == "ping") return "devd:ping";
  if (op == "shutdown") return "devd:shutdown";
  return "devd:rpc";
}

}  // namespace

net::Json worker_init_to_json(const WorkerInit& init) {
  net::Json j = net::Json::object();
  j.set("op", "init");
  j.set("device", init.device);
  j.set("devices", init.devices);
  net::Json geom = net::Json::object();
  geom.set("rows", init.geometry.rows);
  geom.set("compute_rows", init.geometry.compute_rows);
  geom.set("columns", init.geometry.columns);
  geom.set("subarrays_per_mat", init.geometry.subarrays_per_mat);
  geom.set("mats_per_bank", init.geometry.mats_per_bank);
  geom.set("banks", init.geometry.banks);
  j.set("geometry", std::move(geom));
  // Exact wire image of the modelled technology: the worker's cost model
  // must be the parent's, or stats would drift from the in-process run.
  net::Json tech = net::Json::array();
  const auto& t = init.technology;
  for (const double v :
       {t.tech.vdd, t.tech.cell_cap_ff, t.tech.bitline_cap_ff,
        t.tech.inverter_gain, t.timing.t_rcd_ns, t.timing.t_ras_ns,
        t.timing.t_rp_ns, t.timing.t_cl_ns, t.timing.t_bl_ns,
        t.energy.e_activate_pj, t.energy.e_precharge_pj,
        t.energy.e_multirow_extra_pj, t.energy.e_sa_logic_pj,
        t.energy.e_dpu_pj, t.energy.e_read_col_pj, t.energy.e_write_col_pj,
        t.energy.static_power_w})
    tech.push_back(net::Json(v));
  j.set("technology", std::move(tech));
  j.set("k", init.k);
  j.set("hash_shards", init.hash_shards);
  j.set("channels", init.channels);
  j.set("queue_capacity", init.queue_capacity);
  j.set("program_chunk", init.program_chunk);
  j.set("capture_trace", init.capture_trace);
  j.set("trace_spans", init.trace_spans);
  j.set("stall_timeout_ms", init.stall_timeout_ms);
  return j;
}

WorkerInit worker_init_from_json(const net::Json& j) {
  WorkerInit init;
  init.device = static_cast<std::size_t>(j.get_uint64("device"));
  init.devices = static_cast<std::size_t>(j.get_uint64("devices", 1));
  if (!j.has("geometry") || !j.get("geometry").is_object())
    bad_request("init needs a geometry object");
  const net::Json& geom = j.get("geometry");
  init.geometry.rows = static_cast<std::size_t>(geom.get_uint64("rows"));
  init.geometry.compute_rows =
      static_cast<std::size_t>(geom.get_uint64("compute_rows"));
  init.geometry.columns = static_cast<std::size_t>(geom.get_uint64("columns"));
  init.geometry.subarrays_per_mat =
      static_cast<std::size_t>(geom.get_uint64("subarrays_per_mat"));
  init.geometry.mats_per_bank =
      static_cast<std::size_t>(geom.get_uint64("mats_per_bank"));
  init.geometry.banks = static_cast<std::size_t>(geom.get_uint64("banks"));
  if (!j.has("technology") || !j.get("technology").is_array() ||
      j.get("technology").items().size() != 17)
    bad_request("init needs the 17-field technology array");
  const auto& tech = j.get("technology").items();
  auto& t = init.technology;
  double* slots[17] = {&t.tech.vdd,
                       &t.tech.cell_cap_ff,
                       &t.tech.bitline_cap_ff,
                       &t.tech.inverter_gain,
                       &t.timing.t_rcd_ns,
                       &t.timing.t_ras_ns,
                       &t.timing.t_rp_ns,
                       &t.timing.t_cl_ns,
                       &t.timing.t_bl_ns,
                       &t.energy.e_activate_pj,
                       &t.energy.e_precharge_pj,
                       &t.energy.e_multirow_extra_pj,
                       &t.energy.e_sa_logic_pj,
                       &t.energy.e_dpu_pj,
                       &t.energy.e_read_col_pj,
                       &t.energy.e_write_col_pj,
                       &t.energy.static_power_w};
  for (std::size_t i = 0; i < 17; ++i) *slots[i] = tech[i].as_number();
  init.k = static_cast<std::size_t>(j.get_uint64("k"));
  init.hash_shards = static_cast<std::size_t>(j.get_uint64("hash_shards", 1));
  init.channels = static_cast<std::size_t>(j.get_uint64("channels", 1));
  init.queue_capacity =
      static_cast<std::size_t>(j.get_uint64("queue_capacity", 64));
  init.program_chunk =
      static_cast<std::size_t>(j.get_uint64("program_chunk", 512));
  init.capture_trace = j.get_bool("capture_trace", false);
  init.trace_spans = j.get_bool("trace_spans", false);
  init.stall_timeout_ms = j.get_number("stall_timeout_ms", 0.0);
  if (init.k < 1 || init.k > assembly::Kmer::kMaxK)
    bad_request("init k out of range");
  if (init.hash_shards < 1) bad_request("init hash_shards out of range");
  return init;
}

ShardWorkerCore::ShardWorkerCore(const net::Json& init)
    : init_(worker_init_from_json(init)),
      device_(init_.geometry, init_.technology) {
  runtime::EngineOptions eopt;
  eopt.channels = init_.channels;
  eopt.queue_capacity = init_.queue_capacity;
  eopt.program_chunk = init_.program_chunk;
  eopt.capture_trace = init_.capture_trace;
  eopt.stall_timeout_ms = init_.stall_timeout_ms;
  // A real worker thread even at channels == 1: the request loop must stay
  // responsive (heartbeats, liveness) while kernels execute.
  eopt.force_worker = true;
  engine_ = std::make_unique<runtime::Engine>(device_, eopt);
  table_ = std::make_unique<PimHashTable>(device_, init_.hash_shards, 0,
                                          MappingPolicy::kCorrelated);
  table_->bind_key_length(init_.k);
}

ShardWorkerCore::~ShardWorkerCore() {
  engine_->quiesce();
  try {
    engine_->drain();
  } catch (...) {
  }
}

net::Json ShardWorkerCore::handle(const net::Json& request) {
  const std::string op = request.get_string("op");
  // One span per rpc verb; the controller stamps traced requests with a
  // `tel` flow id whose start point lives inside its own rpc:<op> span, so
  // Perfetto draws an arrow from the controller call to this execution.
  telemetry::ScopedSpan span(verb_span_name(op));
  {
    telemetry::Tracer& tr = telemetry::tracer();
    const std::uint64_t flow = request.get_uint64("tel", 0);
    if (flow != 0 && tr.enabled())
      tr.record_flow("rpc", 'f', flow, tr.now_ns());
  }
  if (op == "kmers") return op_kmers(request);
  if (op == "drain") return op_drain();
  if (op == "extract") return op_extract(request);
  if (op == "distinct") return op_distinct();
  if (op == "program") return op_program(request);
  if (op == "degree_block") return op_degree_block(request);
  if (op == "stats") return op_stats();
  if (op == "clear_stats") return op_clear_stats();
  if (op == "trace") return op_trace();
  if (op == "telemetry") return op_telemetry();
  if (op == "ping") return ok_response();
  if (op == "shutdown") {
    shutdown_ = true;
    return ok_response();
  }
  if (op == "init") bad_request("worker already initialized");
  bad_request("unknown op '" + op + "'");
}

net::Json ShardWorkerCore::op_kmers(const net::Json& req) {
  const std::size_t channel =
      static_cast<std::size_t>(req.get_uint64("channel"));
  if (!req.has("kmers") || !req.get("kmers").is_array())
    bad_request("kmers needs a packed-kmer array");
  std::vector<assembly::Kmer> batch;
  batch.reserve(req.get("kmers").items().size());
  for (const auto& item : req.get("kmers").items())
    batch.emplace_back(item.as_uint64(), init_.k);
  try {
    engine_->submit(channel, [this, batch = std::move(batch)] {
      for (const auto& kmer : batch) table_->insert_or_increment(kmer);
    });
  } catch (const SimulationError&) {
    // Fail-fast submit after a poisoned channel: surface the root failure
    // (mirrors the pipeline's stage-1 quiesce-drain-throw discipline).
    engine_->quiesce();
    engine_->drain();
    throw;
  } catch (...) {
    engine_->quiesce();
    throw;
  }
  return ok_response();
}

net::Json ShardWorkerCore::op_drain() {
  engine_->drain();
  return ok_response();
}

net::Json ShardWorkerCore::op_extract(const net::Json& req) {
  const std::size_t shard = static_cast<std::size_t>(req.get_uint64("shard"));
  if (shard >= table_->shard_count()) bad_request("extract shard out of range");
  net::Json entries = net::Json::array();
  for (const auto& [kmer, freq] : table_->extract_shard(shard)) {
    net::Json pair = net::Json::array();
    pair.push_back(net::Json(kmer.packed()));
    pair.push_back(net::Json(static_cast<std::uint64_t>(freq)));
    entries.push_back(std::move(pair));
  }
  net::Json resp = ok_response();
  resp.set("entries", std::move(entries));
  return resp;
}

net::Json ShardWorkerCore::op_distinct() {
  net::Json resp = ok_response();
  resp.set("value", static_cast<std::uint64_t>(table_->distinct_kmers()));
  return resp;
}

net::Json ShardWorkerCore::op_program(const net::Json& req) {
  std::istringstream in(req.get_string("text"));
  dram::Program program;
  try {
    program = dram::parse_program(in);
  } catch (const PreconditionError& e) {
    // A malformed program line is a torn/corrupt frame from the parent's
    // point of view, not a worker bug.
    bad_request(std::string("unparseable program: ") + e.what());
  }
  try {
    engine_->submit_program(std::move(program));
  } catch (const SimulationError&) {
    engine_->quiesce();
    engine_->drain();
    throw;
  } catch (...) {
    engine_->quiesce();
    throw;
  }
  return ok_response();
}

net::Json ShardWorkerCore::op_degree_block(const net::Json& req) {
  const std::size_t flat = static_cast<std::size_t>(req.get_uint64("flat"));
  if (flat >= device_.geometry().total_subarrays())
    bad_request("degree_block flat index out of range");
  if (!req.has("rows") || !req.get("rows").is_array())
    bad_request("degree_block needs adjacency rows");
  std::vector<BitVector> rows;
  rows.reserve(req.get("rows").items().size());
  for (const auto& item : req.get("rows").items())
    rows.push_back(BitVector::from_string(item.as_string()));
  try {
    engine_->submit_to_subarray(flat, [this, flat, rows = std::move(rows)] {
      // Sums are discarded: the pipeline only keeps the device work (the
      // in-process path discards DegreeResult the same way).
      (void)pim_column_sums(device_.subarray(flat), rows);
    });
  } catch (const SimulationError&) {
    engine_->quiesce();
    engine_->drain();
    throw;
  } catch (...) {
    engine_->quiesce();
    throw;
  }
  return ok_response();
}

net::Json ShardWorkerCore::op_stats() {
  const std::size_t total = device_.geometry().total_subarrays();
  net::Json subarrays = net::Json::array();
  for (std::size_t flat = 0; flat < total; ++flat) {
    const dram::Subarray* sa = device_.subarray_if(flat);
    if (sa == nullptr) continue;
    const dram::CommandStats& st = sa->stats();
    if (st.total_commands() == 0) continue;  // identity under both folds
    net::Json entry = net::Json::object();
    entry.set("flat", static_cast<std::uint64_t>(flat));
    net::Json counts = net::Json::array();
    for (const std::size_t c : st.counts)
      counts.push_back(net::Json(static_cast<std::uint64_t>(c)));
    entry.set("counts", std::move(counts));
    entry.set("busy_ns", st.busy_ns);
    entry.set("energy_pj", st.energy_pj);
    subarrays.push_back(std::move(entry));
  }
  net::Json resp = ok_response();
  resp.set("subarrays", std::move(subarrays));
  return resp;
}

net::Json ShardWorkerCore::op_clear_stats() {
  device_.clear_stats();
  return ok_response();
}

net::Json ShardWorkerCore::op_trace() {
  net::Json programs = net::Json::array();
  if (device_.tracing()) {
    const std::size_t total = device_.geometry().total_subarrays();
    for (std::size_t flat = 0; flat < total; ++flat) {
      const dram::TraceSink* sink = device_.trace_if(flat);
      if (sink == nullptr || sink->entries().empty()) continue;
      const dram::Program program = dram::program_from_trace(
          sink->entries(), flat, device_.geometry().columns);
      net::Json entry = net::Json::object();
      entry.set("flat", static_cast<std::uint64_t>(flat));
      entry.set("text", dram::to_text(program));
      programs.push_back(std::move(entry));
    }
  }
  net::Json resp = ok_response();
  resp.set("programs", std::move(programs));
  return resp;
}

net::Json ShardWorkerCore::op_telemetry() {
  // Cumulative export: published ring prefixes only, so this is safe while
  // engine workers are still recording. The supervisor replaces this
  // incarnation's stored trace wholesale on every harvest, which makes the
  // repeat-at-stage-boundary flush idempotent.
  telemetry::Tracer& tr = telemetry::tracer();
  net::Json resp = ok_response();
  resp.set("now_ns", tr.now_ns());
  net::Json tracks = net::Json::array();
  for (const auto& [track, name] : tr.track_names()) {
    net::Json entry = net::Json::object();
    entry.set("track", static_cast<std::uint64_t>(track));
    entry.set("name", name);
    tracks.push_back(std::move(entry));
  }
  resp.set("tracks", std::move(tracks));
  // Positional event rows keep the wire line compact:
  // [name, phase, track, ts_ns, dur_ns, value, arg_name, flow_id].
  net::Json events = net::Json::array();
  for (const auto& e : tr.export_events()) {
    net::Json row = net::Json::array();
    row.push_back(net::Json(e.name));
    row.push_back(net::Json(std::string(1, e.phase)));
    row.push_back(net::Json(static_cast<std::uint64_t>(e.track)));
    row.push_back(net::Json(e.ts_ns));
    row.push_back(net::Json(e.dur_ns));
    row.push_back(net::Json(e.value));
    row.push_back(net::Json(e.arg_name));
    row.push_back(net::Json(e.flow_id));
    events.push_back(std::move(row));
  }
  resp.set("events", std::move(events));
  resp.set("dropped", tr.dropped_count());
  return resp;
}

const char* worker_error_type(const std::exception& e) {
  if (dynamic_cast<const EngineStalledError*>(&e) != nullptr)
    return "EngineStalledError";
  if (dynamic_cast<const CorruptCheckpointError*>(&e) != nullptr)
    return "CorruptCheckpointError";
  if (dynamic_cast<const IoError*>(&e) != nullptr) return "IoError";
  if (dynamic_cast<const InputFormatError*>(&e) != nullptr)
    return "InputFormatError";
  if (dynamic_cast<const CancelledError*>(&e) != nullptr)
    return "CancelledError";
  if (dynamic_cast<const PreconditionError*>(&e) != nullptr)
    return "PreconditionError";
  if (dynamic_cast<const SimulationError*>(&e) != nullptr)
    return "SimulationError";
  return "RuntimeError";
}

net::Json worker_error_response(const std::exception& e) {
  net::Json resp = net::Json::object();
  resp.set("ok", false);
  resp.set("error", worker_error_type(e));
  resp.set("message", std::string(e.what()));
  if (const auto* stalled = dynamic_cast<const EngineStalledError*>(&e)) {
    resp.set("channel", static_cast<std::uint64_t>(stalled->channel()));
    resp.set("subarray", static_cast<std::uint64_t>(stalled->subarray()));
    resp.set("last_retired", stalled->last_retired());
    resp.set("timeout_ms", stalled->timeout_ms());
  }
  return resp;
}

}  // namespace pima::core
