#include "core/pim_bfs.hpp"

#include "common/error.hpp"
#include "dram/dpu.hpp"

namespace pima::core {
namespace {

// Fixed row plan within the sub-array's data region: adjacency rows first,
// then the working rows.
struct BfsRows {
  dram::RowAddr ones;      ///< constant all-ones row (TRA OR operand)
  dram::RowAddr frontier;  ///< current frontier bits
  dram::RowAddr visited;   ///< accumulated visited bits
  dram::RowAddr next;      ///< OR accumulator for the next frontier
};

BfsRows plan_rows(const dram::Subarray& sa, std::size_t n_adjacency) {
  PIMA_CHECK(n_adjacency + 4 <= sa.geometry().data_rows(),
             "graph too large for one sub-array");
  BfsRows r;
  r.ones = n_adjacency;
  r.frontier = n_adjacency + 1;
  r.visited = n_adjacency + 2;
  r.next = n_adjacency + 3;
  return r;
}

// next ← next ∨ adjacency[v]: TRA(next, adj, ones) = MAJ3 with a constant
// one = OR. Operands staged into compute rows as always.
void or_into_next(dram::Subarray& sa, const BfsRows& rows,
                  dram::RowAddr adj_row) {
  const auto x1 = sa.compute_row(0), x2 = sa.compute_row(1),
             x3 = sa.compute_row(2);
  sa.aap_copy(rows.next, x1);
  sa.aap_copy(adj_row, x2);
  sa.aap_copy(rows.ones, x3);
  sa.aap_tra_carry(x1, x2, x3, rows.next);
}

// dst ← a ∧ ¬b, computed with the in-memory ops:
//   t = a ⊕ b (two-row XOR), dst = t ∧ a = MAJ3(t, a, 0)… MAJ3 needs a
// constant zero; a ∧ ¬b = (a ⊕ b) ∧ a, and AND(x, y) = MAJ3(x, y, 0).
void and_not(dram::Subarray& sa, const BfsRows&, dram::RowAddr a,
             dram::RowAddr b, dram::RowAddr dst, dram::RowAddr zero_row) {
  const auto x1 = sa.compute_row(0), x2 = sa.compute_row(1),
             x3 = sa.compute_row(2);
  sa.aap_copy(a, x1);
  sa.aap_copy(b, x2);
  sa.aap_xor(x1, x2, x1);      // x1 = a ⊕ b
  sa.aap_copy(a, x2);
  sa.aap_copy(zero_row, x3);
  sa.aap_tra_carry(x1, x2, x3, dst);  // MAJ3(a⊕b, a, 0) = (a⊕b) ∧ a
}

}  // namespace

ReachabilityResult pim_reachability(dram::Subarray& sa,
                                    const std::vector<BitVector>& adjacency,
                                    std::size_t start) {
  const std::size_t width = sa.geometry().columns;
  const std::size_t n = adjacency.size();
  PIMA_CHECK(n > 0 && n <= width, "vertex count must fit one row");
  PIMA_CHECK(start < n, "start vertex out of graph");

  const BfsRows rows = plan_rows(sa, n);

  // Map the graph and constants in.
  for (std::size_t v = 0; v < n; ++v) {
    PIMA_CHECK(adjacency[v].size() == width, "adjacency row width mismatch");
    sa.write_row(v, adjacency[v]);
  }
  BitVector ones(width);
  ones.fill(true);
  sa.write_row(rows.ones, ones);
  BitVector seed(width);
  seed.set(start, true);
  sa.write_row(rows.frontier, seed);
  sa.write_row(rows.visited, seed);

  ReachabilityResult result;
  for (;;) {
    // next ← 0, then OR in the adjacency row of every frontier vertex.
    sa.write_row(rows.next, BitVector(width));
    const BitVector frontier_bits = sa.dpu_fetch(rows.frontier);
    bool any = false;
    for (std::size_t v = 0; v < n; ++v) {
      if (!frontier_bits.get(v)) continue;
      any = true;
      or_into_next(sa, rows, v);
    }
    if (!any) break;
    ++result.levels;

    // frontier ← next ∧ ¬visited. A scratch zero row is needed; write one
    // into the (already consumed) frontier row.
    sa.write_row(rows.frontier, BitVector(width));
    and_not(sa, rows, rows.next, rows.visited, rows.frontier,
            rows.frontier);
    // visited ← visited ∨ frontier.
    const auto x1 = sa.compute_row(0), x2 = sa.compute_row(1),
               x3 = sa.compute_row(2);
    sa.aap_copy(rows.visited, x1);
    sa.aap_copy(rows.frontier, x2);
    sa.aap_copy(rows.ones, x3);
    sa.aap_tra_carry(x1, x2, x3, rows.visited);
    if (!dram::Dpu::or_reduce(sa, rows.frontier, width)) break;
  }

  const BitVector visited = sa.dpu_fetch(rows.visited);
  result.reachable.assign(n, false);
  for (std::size_t v = 0; v < n; ++v) result.reachable[v] = visited.get(v);
  return result;
}

std::vector<std::uint32_t> pim_components(
    dram::Subarray& sa, const std::vector<BitVector>& adjacency) {
  const std::size_t n = adjacency.size();
  const std::size_t width = sa.geometry().columns;
  PIMA_CHECK(n <= width, "vertex count must fit one row");

  // Symmetrize: und[u][v] = adj[u][v] ∨ adj[v][u].
  std::vector<BitVector> und = adjacency;
  for (std::size_t u = 0; u < n; ++u)
    for (std::size_t v = 0; v < n; ++v)
      if (adjacency[u].get(v)) und[v].set(u, true);

  std::vector<std::uint32_t> comp(n, ~std::uint32_t{0});
  std::uint32_t next_id = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (comp[s] != ~std::uint32_t{0}) continue;
    const auto reach = pim_reachability(sa, und, s);
    for (std::size_t v = 0; v < n; ++v)
      if (reach.reachable[v]) comp[v] = next_id;
    ++next_id;
  }
  return comp;
}

}  // namespace pima::core
