// Mapping optimization framework (paper §II.B item 3 / Fig. 10).
//
// The behavioural simulator "has a mapping optimization framework to
// maximize the performance according to the available resources": it sweeps
// the parallelism degree Pd (number of replicated sub-array groups) and
// picks the operating point that balances delay against the power cost of
// extra activation. Larger Pd always shrinks delay and grows power; below
// the Amdahl knee the delay gain outruns the power cost (energy falls),
// past it extra activation burns watts for little speedup (energy rises) —
// so the optimizer minimizes energy (power × delay). The paper lands on
// Pd ≈ 2.
#pragma once

#include <vector>

#include "core/cost_model.hpp"

namespace pima::core {

/// One point of the Fig. 10 trade-off curve.
struct PdPoint {
  unsigned pd = 1;
  double delay_s = 0.0;
  double power_w = 0.0;
  double energy_j = 0.0;        ///< power × delay
  double edp = 0.0;             ///< energy × delay
};

/// Evaluates the trade-off at each Pd in `pds` (default {1,2,4,8}).
std::vector<PdPoint> sweep_parallelism(const platforms::PlatformSpec& platform,
                                       const WorkloadParams& workload,
                                       const std::vector<unsigned>& pds =
                                           {1, 2, 4, 8},
                                       const CostModelParams& params = {});

/// The Pd minimizing energy (power × delay) over the sweep.
PdPoint optimal_parallelism(const platforms::PlatformSpec& platform,
                            const WorkloadParams& workload,
                            const std::vector<unsigned>& pds = {1, 2, 4, 8},
                            const CostModelParams& params = {});

}  // namespace pima::core
